(** A collected MATE set for a whole circuit.

    The per-wire search often discovers the same boolean term for several
    faulty flip-flops (the paper: "one active MATE indicates the masking
    of more than one fault" — e.g. the operand-select MATE of a mov-style
    operation masks every bit of the unselected operand). Building a set
    merges identical terms and records all flip-flops each term masks. *)

type mate = {
  term : Term.t;
  flop_ids : int list;  (** flops whose fault this term proves benign *)
}

type t = { mates : mate array }

val build : (int * Term.t list) list -> t
(** From [(flop_id, terms)] pairs; merges duplicate terms. *)

val of_report : Search.report -> t
(** Collect every MATE found by a whole-circuit search. *)

val size : t -> int

val subset : t -> int list -> t
(** Restrict to the given mate indices (e.g. a top-N selection). *)

val without : t -> int list -> t
(** Drop the given mate indices (e.g. mates quarantined by the audit
    sentinel); out-of-range indices are ignored. *)

val describe : Pruning_netlist.Netlist.t -> t -> int -> string
(** Human-readable one-liner for mate [i] (its term over named wires and
    how many flops it masks) — used by audit summaries. *)

val total_masked_flops : t -> int
(** Sum over mates of |flop_ids| (an upper bound on usefulness). *)
