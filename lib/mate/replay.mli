(** Trace replay: evaluating a MATE set against a recorded fault-free
    execution (Figure 1b / Section 5.3 of the paper).

    MATE literals mention only wires outside the hypothetical fault's
    cone, so their fault-free (golden) trace values are exactly the values
    a MATE-enriched HAFI platform would see; a term that holds in cycle
    [t] removes its flip-flops' (flop, t) faults from the fault space. *)

type triggers
(** Per-mate trigger bitsets over trace cycles (the expensive replay pass,
    computed once and reused by coverage, selection and cost analyses). *)

val triggers : Mateset.t -> Pruning_sim.Trace.t -> triggers

val n_cycles : triggers -> int

val triggered : triggers -> mate:int -> cycle:int -> bool

val trigger_count : triggers -> int -> int
(** Cycles in which mate [i] held. *)

val effective_indices : triggers -> int list
(** Mates that triggered at least once ("#Effective MATEs"). *)

val masked : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> ?subset:int list -> unit -> bool array array
(** [masked set trig ~space ()] is indexed [cycle].(space flop index): the
    (flop, cycle) faults proven benign. [subset] restricts to chosen mate
    indices. If the space spans more cycles than the recorded trace, the
    replay is clamped to [min space.cycles trace_cycles] — like
    {!raw_masked_per_mate} — and the rows beyond the trace are all-false
    (nothing can be proven benign without trace data). *)

val masked_count : bool array array -> int

val reduction_percent : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> ?subset:int list -> unit -> float
(** Percentage of the fault space proven benign ("Masked Faults"). *)

val raw_masked_per_mate : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> int array
(** Per-mate masked-fault count ignoring overlap with other mates (the
    ranking key used before greedy selection). Clamps to
    [min space.cycles trace_cycles], like {!masked}. *)
