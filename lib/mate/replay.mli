(** Trace replay: evaluating a MATE set against a recorded fault-free
    execution (Figure 1b / Section 5.3 of the paper).

    MATE literals mention only wires outside the hypothetical fault's
    cone, so their fault-free (golden) trace values are exactly the values
    a MATE-enriched HAFI platform would see; a term that holds in cycle
    [t] removes its flip-flops' (flop, t) faults from the fault space. *)

type triggers
(** Per-mate trigger bitsets over trace cycles (the expensive replay pass,
    computed once and reused by coverage, selection and cost analyses). *)

val triggers : Mateset.t -> Pruning_sim.Trace.t -> triggers

val n_cycles : triggers -> int

val triggered : triggers -> mate:int -> cycle:int -> bool

val trigger_count : triggers -> int -> int
(** Cycles in which mate [i] held. *)

val effective_indices : triggers -> int list
(** Mates that triggered at least once ("#Effective MATEs"). *)

val masked : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> ?subset:int list -> unit -> bool array array
(** [masked set trig ~space ()] is indexed [cycle].(space flop index): the
    (flop, cycle) faults proven benign. [subset] restricts to chosen mate
    indices. If the space spans more cycles than the recorded trace, the
    replay is clamped to [min space.cycles trace_cycles] — like
    {!raw_masked_per_mate} — and the rows beyond the trace are all-false
    (nothing can be proven benign without trace data). *)

val masked_count : bool array array -> int

val reduction_percent : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> ?subset:int list -> unit -> float
(** Percentage of the fault space proven benign ("Masked Faults"). *)

type pruner
(** An online skip predicate over (flop, cycle) faults, backed by a MATE
    set and its trigger bitsets, with support for disabling mates
    mid-campaign. This is what a durable campaign's audit sentinel needs:
    when a MATE is caught misclassifying a fault it claimed benign, it is
    {!quarantine}d and the campaign degrades from "prune" to "inject" for
    its flops instead of producing wrong statistics. *)

val pruner :
  Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> ?subset:int list -> unit -> pruner
(** [subset] restricts the initially enabled mates (like {!masked}). *)

val pruned : pruner -> flop_id:int -> cycle:int -> bool
(** Some enabled mate proves the fault benign. Cycles beyond the recorded
    trace are never pruned. A [flop_id] outside the fault space is an
    explicit error path — logged once, counted in {!unknown_count}, and
    reported not-pruned so the fault is injected rather than silently
    mis-skipped. *)

val masking : pruner -> flop_id:int -> cycle:int -> int list
(** The enabled mates that prune this fault (the candidates to quarantine
    when an audit injection contradicts them); [[]] iff not {!pruned}. *)

val quarantine : pruner -> int -> unit
(** Disable one mate for the rest of the campaign (idempotent).
    Thread-safe; concurrent {!pruned} callers see the update on their
    next lookup. *)

val quarantined : pruner -> int list
(** Mates quarantined so far, in quarantine order. *)

val unknown_count : pruner -> int
(** Prune lookups for flops outside the fault space (each one a caller
    bug or a stale fault list — see {!pruned}). *)

val enabled_indices : pruner -> int list

val pruner_masked_count : pruner -> int
(** Faults currently proven benign by the enabled mates (the {!masked}
    count after quarantines). *)

val describe_mate : pruner -> int -> string
(** {!Mateset.describe} against the pruner's netlist. *)

val raw_masked_per_mate : Mateset.t -> triggers -> space:Pruning_fi.Fault_space.t -> int array
(** Per-mate masked-fault count ignoring overlap with other mates (the
    ranking key used before greedy selection). Clamps to
    [min space.cycles trace_cycles], like {!masked}. *)
