module Trace = Pruning_sim.Trace
module Fault_space = Pruning_fi.Fault_space
module Netlist = Pruning_netlist.Netlist

type triggers = {
  t_cycles : int;
  words : int array array;
      (** per mate, column-packed bitset over cycles: bit [c mod word_size]
          of word [c / word_size] *)
}

(* Evaluating a term over the whole trace is a handful of word-wide
   AND/ANDN operations on column-packed wire histories: one word op
   covers [Trace.bits_per_word] cycles, and columns are shared between
   mates that mention the same wire. *)
let triggers (set : Mateset.t) trace =
  let cycles = Trace.n_cycles trace in
  let n_words = Trace.n_words trace in
  let columns = Hashtbl.create 64 in
  let column wire =
    match Hashtbl.find_opt columns wire with
    | Some c -> c
    | None ->
      let c = Trace.column trace ~wire in
      Hashtbl.add columns wire c;
      c
  in
  (* All-ones out to [cycles], zero beyond: conjunction identity that
     also masks the undefined tail bits of the last word. *)
  let tail = cycles - (n_words - 1) * Trace.bits_per_word in
  let full_word w = if w = n_words - 1 && tail < Trace.bits_per_word then (1 lsl tail) - 1 else -1 in
  let words =
    Array.map
      (fun (m : Mateset.mate) ->
        let acc = Array.init n_words full_word in
        List.iter
          (fun (l : Term.literal) ->
            let col = column l.Term.wire in
            if l.Term.value then
              for w = 0 to n_words - 1 do
                acc.(w) <- acc.(w) land col.(w)
              done
            else
              for w = 0 to n_words - 1 do
                acc.(w) <- acc.(w) land lnot col.(w)
              done)
          (Term.literals m.Mateset.term);
        acc)
      set.Mateset.mates
  in
  { t_cycles = cycles; words }

let n_cycles t = t.t_cycles

let triggered t ~mate ~cycle =
  (t.words.(mate).(cycle / Trace.bits_per_word) lsr (cycle mod Trace.bits_per_word)) land 1 <> 0

let popcount n =
  let c = ref 0 in
  let n = ref n in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let trigger_count t i = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words.(i)

let effective_indices t =
  let out = ref [] in
  for i = Array.length t.words - 1 downto 0 do
    if trigger_count t i > 0 then out := i :: !out
  done;
  !out

let masked (set : Mateset.t) t ~space ?subset () =
  let cycles = space.Fault_space.cycles in
  (* Cycles beyond the recorded trace cannot be proven benign: clamp the
     replay to the trace length and leave the excess rows all-false. *)
  let covered = min cycles t.t_cycles in
  let nf = Array.length space.Fault_space.flops in
  let table = space.Fault_space.index in
  let matrix = Array.init cycles (fun _ -> Array.make nf false) in
  let indices =
    match subset with
    | Some l -> l
    | None -> List.init (Array.length set.Mateset.mates) Fun.id
  in
  List.iter
    (fun i ->
      let m = set.Mateset.mates.(i) in
      let space_flops =
        List.filter_map
          (fun fid -> if fid < Array.length table && table.(fid) >= 0 then Some table.(fid) else None)
          m.Mateset.flop_ids
      in
      if space_flops <> [] then
        for cycle = 0 to covered - 1 do
          if triggered t ~mate:i ~cycle then
            List.iter (fun fi -> matrix.(cycle).(fi) <- true) space_flops
        done)
    indices;
  matrix

let masked_count matrix =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 matrix

let reduction_percent set t ~space ?subset () =
  let matrix = masked set t ~space ?subset () in
  Pruning_util.Stats.percentage (masked_count matrix) (Fault_space.size space)

let raw_masked_per_mate (set : Mateset.t) t ~space =
  let table = space.Fault_space.index in
  let cycles = min space.Fault_space.cycles t.t_cycles in
  Array.mapi
    (fun i (m : Mateset.mate) ->
      let nf =
        List.length
          (List.filter
             (fun fid -> fid < Array.length table && table.(fid) >= 0)
             m.Mateset.flop_ids)
      in
      let count = ref 0 in
      for cycle = 0 to cycles - 1 do
        if triggered t ~mate:i ~cycle then incr count
      done;
      !count * nf)
    set.Mateset.mates
