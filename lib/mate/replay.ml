module Trace = Pruning_sim.Trace
module Fault_space = Pruning_fi.Fault_space
module Netlist = Pruning_netlist.Netlist

type triggers = {
  t_cycles : int;
  words : int array array;
      (** per mate, column-packed bitset over cycles: bit [c mod word_size]
          of word [c / word_size] *)
}

(* Evaluating a term over the whole trace is a handful of word-wide
   AND/ANDN operations on column-packed wire histories: one word op
   covers [Trace.bits_per_word] cycles, and columns are shared between
   mates that mention the same wire. *)
let triggers (set : Mateset.t) trace =
  let cycles = Trace.n_cycles trace in
  let n_words = Trace.n_words trace in
  let columns = Hashtbl.create 64 in
  let column wire =
    match Hashtbl.find_opt columns wire with
    | Some c -> c
    | None ->
      let c = Trace.column trace ~wire in
      Hashtbl.add columns wire c;
      c
  in
  (* All-ones out to [cycles], zero beyond: conjunction identity that
     also masks the undefined tail bits of the last word. *)
  let tail = cycles - (n_words - 1) * Trace.bits_per_word in
  let full_word w = if w = n_words - 1 && tail < Trace.bits_per_word then (1 lsl tail) - 1 else -1 in
  let words =
    Array.map
      (fun (m : Mateset.mate) ->
        let acc = Array.init n_words full_word in
        List.iter
          (fun (l : Term.literal) ->
            let col = column l.Term.wire in
            if l.Term.value then
              for w = 0 to n_words - 1 do
                acc.(w) <- acc.(w) land col.(w)
              done
            else
              for w = 0 to n_words - 1 do
                acc.(w) <- acc.(w) land lnot col.(w)
              done)
          (Term.literals m.Mateset.term);
        acc)
      set.Mateset.mates
  in
  { t_cycles = cycles; words }

let n_cycles t = t.t_cycles

let triggered t ~mate ~cycle =
  (t.words.(mate).(cycle / Trace.bits_per_word) lsr (cycle mod Trace.bits_per_word)) land 1 <> 0

let popcount n =
  let c = ref 0 in
  let n = ref n in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let trigger_count t i = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words.(i)

let effective_indices t =
  let out = ref [] in
  for i = Array.length t.words - 1 downto 0 do
    if trigger_count t i > 0 then out := i :: !out
  done;
  !out

let masked (set : Mateset.t) t ~space ?subset () =
  let cycles = space.Fault_space.cycles in
  (* Cycles beyond the recorded trace cannot be proven benign: clamp the
     replay to the trace length and leave the excess rows all-false. *)
  let covered = min cycles t.t_cycles in
  let nf = Array.length space.Fault_space.flops in
  let table = space.Fault_space.index in
  let matrix = Array.init cycles (fun _ -> Array.make nf false) in
  let indices =
    match subset with
    | Some l -> l
    | None -> List.init (Array.length set.Mateset.mates) Fun.id
  in
  List.iter
    (fun i ->
      let m = set.Mateset.mates.(i) in
      let space_flops =
        List.filter_map
          (fun fid -> if fid < Array.length table && table.(fid) >= 0 then Some table.(fid) else None)
          m.Mateset.flop_ids
      in
      if space_flops <> [] then
        for cycle = 0 to covered - 1 do
          if triggered t ~mate:i ~cycle then
            List.iter (fun fi -> matrix.(cycle).(fi) <- true) space_flops
        done)
    indices;
  matrix

let masked_count matrix =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 matrix

let reduction_percent set t ~space ?subset () =
  let matrix = masked set t ~space ?subset () in
  Pruning_util.Stats.percentage (masked_count matrix) (Fault_space.size space)

(* ------------------------------------------------------------------ *)
(* Online pruner: the skip predicate a durable campaign consults per
   fault, with two properties the precomputed [masked] matrix lacks:
   individual mates can be disabled mid-run (the audit sentinel
   quarantines a mate caught misclassifying), and a lookup for a flop
   outside the fault space is an explicit, counted error path instead of
   a silent "not pruned". *)

type pruner = {
  p_set : Mateset.t;
  p_trig : triggers;
  p_space : Fault_space.t;
  p_enabled : bool array;
  p_by_flop : int list array;  (* space flop index -> mates masking it *)
  p_quarantined : int list ref;  (* newest first *)
  p_unknown : int ref;
  p_warned : bool ref;
  p_lock : Mutex.t;
}

let pruner (set : Mateset.t) t ~space ?subset () =
  let n_mates = Array.length set.Mateset.mates in
  let enabled = Array.make n_mates (subset = None) in
  (match subset with
  | None -> ()
  | Some l -> List.iter (fun i -> enabled.(i) <- true) l);
  let table = space.Fault_space.index in
  let by_flop = Array.make (Array.length space.Fault_space.flops) [] in
  Array.iteri
    (fun i (m : Mateset.mate) ->
      if enabled.(i) then
        List.iter
          (fun fid ->
            if fid >= 0 && fid < Array.length table && table.(fid) >= 0 then
              by_flop.(table.(fid)) <- i :: by_flop.(table.(fid)))
          m.Mateset.flop_ids)
    set.Mateset.mates;
  {
    p_set = set;
    p_trig = t;
    p_space = space;
    p_enabled = enabled;
    p_by_flop = Array.map List.rev by_flop;
    p_quarantined = ref [];
    p_unknown = ref 0;
    p_warned = ref false;
    p_lock = Mutex.create ();
  }

let unknown_flop p flop_id =
  Mutex.lock p.p_lock;
  incr p.p_unknown;
  let first = not !(p.p_warned) in
  p.p_warned := true;
  Mutex.unlock p.p_lock;
  if first then
    Printf.eprintf
      "[mate] warning: prune lookup for flop %d, which is outside the fault space — the fault \
       will be injected, not silently treated as pruned (further occurrences are counted, not \
       logged)\n\
       %!"
      flop_id

let masking p ~flop_id ~cycle =
  match Fault_space.flop_index p.p_space flop_id with
  | None ->
    unknown_flop p flop_id;
    []
  | Some fi ->
    if cycle < 0 || cycle >= p.p_trig.t_cycles then []
    else
      List.filter
        (fun m -> p.p_enabled.(m) && triggered p.p_trig ~mate:m ~cycle)
        p.p_by_flop.(fi)

let pruned p ~flop_id ~cycle = masking p ~flop_id ~cycle <> []

let quarantine p m =
  if m < 0 || m >= Array.length p.p_enabled then invalid_arg "Replay.quarantine: no such mate";
  Mutex.lock p.p_lock;
  if p.p_enabled.(m) then begin
    p.p_enabled.(m) <- false;
    p.p_quarantined := m :: !(p.p_quarantined)
  end;
  Mutex.unlock p.p_lock

let quarantined p = List.rev !(p.p_quarantined)
let unknown_count p = !(p.p_unknown)

let enabled_indices p =
  let out = ref [] in
  for i = Array.length p.p_enabled - 1 downto 0 do
    if p.p_enabled.(i) then out := i :: !out
  done;
  !out

let pruner_masked_count p =
  masked p.p_set p.p_trig ~space:p.p_space ~subset:(enabled_indices p) () |> masked_count

let describe_mate p m =
  Mateset.describe p.p_space.Fault_space.netlist p.p_set m

let raw_masked_per_mate (set : Mateset.t) t ~space =
  let table = space.Fault_space.index in
  let cycles = min space.Fault_space.cycles t.t_cycles in
  Array.mapi
    (fun i (m : Mateset.mate) ->
      let nf =
        List.length
          (List.filter
             (fun fid -> fid < Array.length table && table.(fid) >= 0)
             m.Mateset.flop_ids)
      in
      let count = ref 0 in
      for cycle = 0 to cycles - 1 do
        if triggered t ~mate:i ~cycle then incr count
      done;
      !count * nf)
    set.Mateset.mates
