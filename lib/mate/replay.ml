module Trace = Pruning_sim.Trace
module Fault_space = Pruning_fi.Fault_space
module Netlist = Pruning_netlist.Netlist

type triggers = {
  t_cycles : int;
  bits : Bytes.t array;  (** per mate, bitset over cycles *)
}

let triggers (set : Mateset.t) trace =
  let cycles = Trace.n_cycles trace in
  let bytes_per_mate = (cycles + 7) / 8 in
  let bits =
    Array.map
      (fun (m : Mateset.mate) ->
        let b = Bytes.make bytes_per_mate '\000' in
        let literals = Array.of_list (Term.literals m.Mateset.term) in
        for cycle = 0 to cycles - 1 do
          let holds = ref true in
          let i = ref 0 in
          let n = Array.length literals in
          while !holds && !i < n do
            let l = literals.(!i) in
            if Trace.get trace ~cycle l.Term.wire <> l.Term.value then holds := false;
            incr i
          done;
          if !holds then
            Bytes.set b (cycle lsr 3)
              (Char.chr (Char.code (Bytes.get b (cycle lsr 3)) lor (1 lsl (cycle land 7))))
        done;
        b)
      set.Mateset.mates
  in
  { t_cycles = cycles; bits }

let n_cycles t = t.t_cycles

let triggered t ~mate ~cycle =
  Char.code (Bytes.get t.bits.(mate) (cycle lsr 3)) land (1 lsl (cycle land 7)) <> 0

let trigger_count t i =
  let count = ref 0 in
  Bytes.iter
    (fun c ->
      let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
      count := !count + pop (Char.code c))
    t.bits.(i);
  !count

let effective_indices t =
  let out = ref [] in
  for i = Array.length t.bits - 1 downto 0 do
    if trigger_count t i > 0 then out := i :: !out
  done;
  !out

let masked (set : Mateset.t) t ~space ?subset () =
  let cycles = space.Fault_space.cycles in
  (* Cycles beyond the recorded trace cannot be proven benign: clamp the
     replay to the trace length and leave the excess rows all-false. *)
  let covered = min cycles t.t_cycles in
  let nf = Array.length space.Fault_space.flops in
  let table = space.Fault_space.index in
  let matrix = Array.init cycles (fun _ -> Array.make nf false) in
  let indices =
    match subset with
    | Some l -> l
    | None -> List.init (Array.length set.Mateset.mates) Fun.id
  in
  List.iter
    (fun i ->
      let m = set.Mateset.mates.(i) in
      let space_flops =
        List.filter_map
          (fun fid -> if fid < Array.length table && table.(fid) >= 0 then Some table.(fid) else None)
          m.Mateset.flop_ids
      in
      if space_flops <> [] then
        for cycle = 0 to covered - 1 do
          if triggered t ~mate:i ~cycle then
            List.iter (fun fi -> matrix.(cycle).(fi) <- true) space_flops
        done)
    indices;
  matrix

let masked_count matrix =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 matrix

let reduction_percent set t ~space ?subset () =
  let matrix = masked set t ~space ?subset () in
  Pruning_util.Stats.percentage (masked_count matrix) (Fault_space.size space)

let raw_masked_per_mate (set : Mateset.t) t ~space =
  let table = space.Fault_space.index in
  let cycles = min space.Fault_space.cycles t.t_cycles in
  Array.mapi
    (fun i (m : Mateset.mate) ->
      let nf =
        List.length
          (List.filter
             (fun fid -> fid < Array.length table && table.(fid) >= 0)
             m.Mateset.flop_ids)
      in
      let count = ref 0 in
      for cycle = 0 to cycles - 1 do
        if triggered t ~mate:i ~cycle then incr count
      done;
      !count * nf)
    set.Mateset.mates
