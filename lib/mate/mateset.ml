type mate = {
  term : Term.t;
  flop_ids : int list;
}

type t = { mates : mate array }

let build pairs =
  let by_term : (Term.t, int list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (flop_id, terms) ->
      List.iter
        (fun term ->
          match Hashtbl.find_opt by_term term with
          | Some flops -> if not (List.mem flop_id !flops) then flops := flop_id :: !flops
          | None -> Hashtbl.add by_term term (ref [ flop_id ]))
        terms)
    pairs;
  let mates =
    Hashtbl.fold
      (fun term flops acc -> { term; flop_ids = List.sort compare !flops } :: acc)
      by_term []
  in
  (* Deterministic order: by term shape. *)
  { mates = Array.of_list (List.sort (fun a b -> Term.compare a.term b.term) mates) }

let of_report (report : Search.report) =
  build
    (List.filter_map
       (fun (fr : Search.flop_result) ->
         match fr.Search.result.Search.outcome with
         | Search.Unmaskable -> None
         | Search.Mates terms -> Some (fr.Search.flop.Pruning_netlist.Netlist.flop_id, terms))
       report.Search.flop_results)

let size t = Array.length t.mates

let subset t indices =
  { mates = Array.of_list (List.map (fun i -> t.mates.(i)) indices) }

let without t indices =
  let drop = Array.make (Array.length t.mates) false in
  List.iter
    (fun i -> if i >= 0 && i < Array.length drop then drop.(i) <- true)
    indices;
  {
    mates =
      Array.of_list
        (List.filteri (fun i _ -> not drop.(i)) (Array.to_list t.mates));
  }

let describe nl t i =
  let m = t.mates.(i) in
  Printf.sprintf "MATE %s over %d flop(s)"
    (Term.to_string nl m.term)
    (List.length m.flop_ids)

let total_masked_flops t =
  Array.fold_left (fun acc m -> acc + List.length m.flop_ids) 0 t.mates
