(** A complete hardware-software system under test: a synthesized core,
    its environment devices (ROM/RAM or unified memory) and a loaded
    program — the unit the fault-injection substrate and the evaluation
    harness operate on. *)

type kind =
  | Avr
  | Msp430

type t = {
  kind : kind;
  name : string;  (** e.g. ["avr8/fib"] *)
  netlist : Pruning_netlist.Netlist.t;
  sim : Pruning_sim.Sim.t;  (** devices attached, program loaded *)
  ram : Memory.backing;
      (** AVR: the 256-byte data RAM; MSP430: the unified word memory *)
  rf_prefix : string;
}

val create_avr : ?pins:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> t
(** [create_avr ~program name]. [netlist] allows reusing an already
    synthesized core (the netlist itself is stateless). *)

val create_msp : ?words:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> t
(** [words] is the unified memory size (default 2048 words). *)

val save_state : t -> unit -> unit
(** Whole-system snapshot: wire/flop values, cycle count and every
    attached device's internal state — including the RAM backing, which
    memory devices capture through their [dev_save] hook. Returns a
    restorer closure; the campaign engine uses this for checkpointing. *)

val run : t -> cycles:int -> unit

val record : t -> cycles:int -> Pruning_sim.Trace.t
(** Run while recording every wire each cycle. *)

val avr_netlist : unit -> Pruning_netlist.Netlist.t
(** Build (once per call) the AVR core netlist. *)

val msp_netlist : unit -> Pruning_netlist.Netlist.t
