(** A complete hardware-software system under test: a synthesized core,
    its environment devices (ROM/RAM or unified memory) and a loaded
    program — the unit the fault-injection substrate and the evaluation
    harness operate on. *)

type kind =
  | Avr
  | Msp430

type t = {
  kind : kind;
  name : string;  (** e.g. ["avr8/fib"] *)
  netlist : Pruning_netlist.Netlist.t;
  sim : Pruning_sim.Sim.t;  (** devices attached, program loaded *)
  ram : Memory.backing;
      (** AVR: the 256-byte data RAM; MSP430: the unified word memory *)
  rf_prefix : string;
}

val create_avr : ?pins:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> t
(** [create_avr ~program name]. [netlist] allows reusing an already
    synthesized core (the netlist itself is stateless). *)

val create_msp : ?words:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> t
(** [words] is the unified memory size (default 2048 words). *)

type lanes = {
  l_kind : kind;
  l_name : string;
  l_netlist : Pruning_netlist.Netlist.t;
  l_bsim : Pruning_sim.Bitsim.t;  (** lane-aware devices attached, program loaded *)
  l_ram : Memory.lane_backing;
      (** copy-on-write lane view of the data RAM / unified memory *)
}
(** The same system over the lane-parallel simulator: all
    {!Pruning_sim.Bitsim.n_lanes} lanes start identical (so a run with no
    injected divergence is cycle-identical to {!t}), and the batched
    campaign engine flips individual lanes' flops. *)

val create_avr_lanes :
  ?pins:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> lanes

val create_msp_lanes :
  ?words:int -> ?netlist:Pruning_netlist.Netlist.t -> program:int array -> string -> lanes

type delta = {
  d_kind : kind;
  d_name : string;
  d_netlist : Pruning_netlist.Netlist.t;
  d_dsim : Pruning_sim.Deltasim.t;  (** delta devices attached, program loaded *)
}
(** The same system over the activity-gated delta kernel: the faulty
    run is represented as a sparse difference against a golden trace
    recorded from {!t} (see {!record}). *)

val create_avr_delta :
  ?netlist:Pruning_netlist.Netlist.t ->
  program:int array ->
  trace:Pruning_sim.Trace.t ->
  string ->
  delta
(** [trace] must be a golden recording of the {e same} core, program
    and pin values (the delta devices replay its write stream). *)

val create_msp_delta :
  ?words:int ->
  ?netlist:Pruning_netlist.Netlist.t ->
  program:int array ->
  trace:Pruning_sim.Trace.t ->
  string ->
  delta

type delta_batch = {
  db_kind : kind;
  db_name : string;
  db_netlist : Pruning_netlist.Netlist.t;
  db_dbsim : Pruning_sim.Deltabatch.t;  (** lane-masked delta devices attached *)
}
(** The same system over the batched activity-gated kernel: many
    in-flight faulty runs, each a sparse difference against one golden
    trace recorded from {!t} (see {!record}), sharing one levelized
    schedule and one golden RAM replay. *)

val create_avr_delta_batch :
  ?netlist:Pruning_netlist.Netlist.t ->
  program:int array ->
  trace:Pruning_sim.Trace.t ->
  string ->
  delta_batch
(** [trace] must be a golden recording of the {e same} core, program
    and pin values (the batch delta devices replay its write stream). *)

val create_msp_delta_batch :
  ?words:int ->
  ?netlist:Pruning_netlist.Netlist.t ->
  program:int array ->
  trace:Pruning_sim.Trace.t ->
  string ->
  delta_batch

val save_lanes_state : lanes -> unit -> unit
(** Whole-system snapshot of a lane-parallel system (packed wire words,
    cycle count, lane-memory base + overlay). *)

val save_state : t -> unit -> unit
(** Whole-system snapshot: wire/flop values, cycle count and every
    attached device's internal state — including the RAM backing, which
    memory devices capture through their [dev_save] hook. Returns a
    restorer closure; the campaign engine uses this for checkpointing. *)

val run : t -> cycles:int -> unit

val record : t -> cycles:int -> Pruning_sim.Trace.t
(** Run while recording every wire each cycle. *)

val avr_netlist : unit -> Pruning_netlist.Netlist.t
(** Build (once per call) the AVR core netlist. *)

val msp_netlist : unit -> Pruning_netlist.Netlist.t
