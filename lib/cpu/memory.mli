(** Environment devices for the two cores: instruction ROM, data RAM,
    unified memory, and input pins. These model everything outside the
    synthesized netlist (the paper's system model injects faults only into
    the CPU's flip-flops; memories are architectural state). *)

type backing = int array
(** Live view of a memory device's contents. *)

val read_port : Pruning_netlist.Netlist.port -> Pruning_sim.Sim.reader -> int
(** Decode a port's wires into an integer (LSB first). *)

val write_port : Pruning_netlist.Netlist.port -> Pruning_sim.Sim.writer -> int -> unit

val avr_rom : Pruning_netlist.Netlist.t -> program:int array -> Pruning_sim.Sim.device
(** Combinational program ROM: drives [instr] with [program.(pmem_addr)]
    (NOP beyond the end). *)

val avr_ram : Pruning_netlist.Netlist.t -> backing * Pruning_sim.Sim.device
(** 256-byte data RAM on ports [dmem_addr]/[dmem_rdata]/[dmem_wdata]/
    [dmem_wen]. Reads are combinational; writes latch at the clock edge. *)

val avr_pins : Pruning_netlist.Netlist.t -> value:int -> Pruning_sim.Sim.device
(** Constant input pins on [io_in]. *)

val msp_memory :
  Pruning_netlist.Netlist.t -> words:int -> program:int array -> backing * Pruning_sim.Sim.device
(** Unified 16-bit-word memory for the MSP430 core on ports [mem_addr]
    (byte address; bit 0 ignored) / [mem_rdata] / [mem_wdata] / [mem_wen].
    [program] is loaded from word 0. *)

(** {1 Lane-aware devices}

    Counterparts of the devices above for the bit-parallel simulator
    ({!Pruning_sim.Bitsim}). Memory contents are shared across lanes and
    split copy-on-write: a per-lane vector for an address materializes
    only when some lane's write diverges from lane 0 (different address,
    data or write-enable). While every lane agrees — packed port words
    all 0 or all ones — reads and writes take a uniform fast path with
    scalar-device cost. *)

type lane_backing = {
  lb_base : int array;  (** value of every lane at non-diverged addresses *)
  lb_overlay : (int, int array) Hashtbl.t;
      (** addr -> per-lane values, present only for diverged addresses *)
}

val lane_create : int -> lane_backing
val lane_size : lane_backing -> int

val lane_read : lane_backing -> lane:int -> int -> int

val lane_write : lane_backing -> lane:int -> int -> int -> unit
(** Write one lane's cell, materializing the per-lane vector on first
    divergence from the base value. *)

val lane_write_uniform : lane_backing -> int -> int -> unit
(** All lanes write the same value: collapses any overlay entry. *)

val lane_diff_mask : lane_backing -> int
(** Bit [l] set iff lane [l]'s memory differs from lane 0 anywhere. *)

val lane_diffs : lane_backing -> lane:int -> (int * int) list
(** [(addr, value)] cells where [lane] differs from lane 0, ascending by
    address — the RAM half of the campaign's memo keys. *)

val lane_reset : lane_backing -> lane:int -> unit
(** Re-synchronize one lane with lane 0 (lane retirement/refill). *)

val lane_compact : lane_backing -> unit
(** Fold overlay entries whose lanes have all re-converged back into the
    base array. *)

val lane_saver : lane_backing -> unit -> unit -> unit
(** [dev_save]-shaped snapshot of base + overlay. *)

val read_port_uniform :
  Pruning_netlist.Netlist.port -> Pruning_sim.Bitsim.reader -> int option
(** Decode a port when every lane agrees ([Some value]), [None] if any
    wire's packed word mixes lanes. *)

val read_port_lane : Pruning_netlist.Netlist.port -> Pruning_sim.Bitsim.reader -> lane:int -> int
(** Decode one lane's view of a port. *)

val write_port_uniform : Pruning_netlist.Netlist.port -> Pruning_sim.Bitsim.writer -> int -> unit
(** Drive the same value into every lane of a port. *)

val write_port_lanes :
  Pruning_netlist.Netlist.port -> Pruning_sim.Bitsim.writer -> (int -> int) -> unit
(** [write_port_lanes port write f] drives lane [l] of the port with
    [f l] (the per-lane transpose path). *)

val avr_rom_lanes : Pruning_netlist.Netlist.t -> program:int array -> Pruning_sim.Bitsim.device

val avr_ram_lanes : Pruning_netlist.Netlist.t -> lane_backing * Pruning_sim.Bitsim.device

val avr_pins_lanes : Pruning_netlist.Netlist.t -> value:int -> Pruning_sim.Bitsim.device

val msp_memory_lanes :
  Pruning_netlist.Netlist.t ->
  words:int ->
  program:int array ->
  lane_backing * Pruning_sim.Bitsim.device

(** {1 Delta devices}

    Counterparts for the activity-gated kernel
    ({!Pruning_sim.Deltasim}). The golden device behaviour is baked
    into the recorded trace, so these model only the {e difference}
    between the faulty device and the golden one: ROMs are stateless
    recomputes, RAMs keep the golden contents replayed from the
    trace's write stream plus a sparse diff of faulty addresses. A
    clean faulty run keeps the diff empty and clocks in O(1). *)

val read_port_delta : Pruning_netlist.Netlist.port -> Pruning_sim.Deltasim.t -> int
(** Decode a port's faulty value (LSB first). *)

val write_port_delta : Pruning_netlist.Netlist.port -> Pruning_sim.Deltasim.t -> int -> unit
(** Drive a port's faulty value. *)

val avr_rom_delta :
  Pruning_sim.Deltasim.t ->
  Pruning_netlist.Netlist.t ->
  program:int array ->
  Pruning_sim.Deltasim.device

val avr_ram_delta :
  Pruning_sim.Deltasim.t ->
  Pruning_netlist.Netlist.t ->
  trace:Pruning_sim.Trace.t ->
  Pruning_sim.Deltasim.device
(** [trace] must be the same golden trace the kernel was created
    over (its write stream defines the golden RAM contents). *)

val msp_memory_delta :
  Pruning_sim.Deltasim.t ->
  Pruning_netlist.Netlist.t ->
  trace:Pruning_sim.Trace.t ->
  words:int ->
  program:int array ->
  Pruning_sim.Deltasim.device

(** {1 Lane-masked delta devices}

    Counterparts for the batched activity-gated kernel
    ({!Pruning_sim.Deltabatch}): the golden replay — prescanned write
    stream, snapshots, the golden RAM image — is shared by every lane
    and paid once per clock; each lane carries only its own sparse
    diff table, summarized in a dirty mask so a clock edge with no
    diverged or port-flipped lane is O(1). Per-lane updates follow the
    scalar delta devices exactly, so diff tables (and therefore memo
    keys and Latent verdicts) are bit-identical to the scalar
    engine's. *)

val read_port_delta_batch_lane :
  Pruning_netlist.Netlist.port -> Pruning_sim.Deltabatch.t -> lane:int -> int
(** Decode one lane's faulty view of a port (LSB first). *)

val write_port_delta_batch :
  Pruning_netlist.Netlist.port -> Pruning_sim.Deltabatch.t -> mask:int -> (int -> int) -> unit
(** [write_port_delta_batch port db ~mask f] drives lane [l] of the
    port with [f l] for every lane in [mask], leaving other lanes'
    flip bits untouched. *)

val avr_rom_delta_batch :
  Pruning_sim.Deltabatch.t ->
  Pruning_netlist.Netlist.t ->
  program:int array ->
  Pruning_sim.Deltabatch.device

val avr_ram_delta_batch :
  Pruning_sim.Deltabatch.t ->
  Pruning_netlist.Netlist.t ->
  trace:Pruning_sim.Trace.t ->
  Pruning_sim.Deltabatch.device
(** [trace] must be the same golden trace the kernel was created
    over (its write stream defines the golden RAM contents). *)

val msp_memory_delta_batch :
  Pruning_sim.Deltabatch.t ->
  Pruning_netlist.Netlist.t ->
  trace:Pruning_sim.Trace.t ->
  words:int ->
  program:int array ->
  Pruning_sim.Deltabatch.device
