module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Bitsim = Pruning_sim.Bitsim
module Deltasim = Pruning_sim.Deltasim
module Deltabatch = Pruning_sim.Deltabatch
module Trace = Pruning_sim.Trace

type backing = int array

let read_port (port : Netlist.port) (read : Sim.reader) =
  let v = ref 0 in
  Array.iteri (fun i w -> if read w then v := !v lor (1 lsl i)) port.Netlist.port_wires;
  !v

let write_port (port : Netlist.port) (write : Sim.writer) value =
  Array.iteri (fun i w -> write w (value land (1 lsl i) <> 0)) port.Netlist.port_wires

let array_saver mem () =
  let copy = Array.copy mem in
  fun () -> Array.blit copy 0 mem 0 (Array.length mem)

let avr_rom nl ~program =
  let addr_port = Netlist.find_output_port nl "pmem_addr" in
  let instr_port = Netlist.find_input_port nl "instr" in
  Sim.pure_device "avr-rom" (fun read write ->
      let addr = read_port addr_port read in
      let word = if addr < Array.length program then program.(addr) else 0 (* NOP *) in
      write_port instr_port write word)

let avr_ram nl =
  let mem = Array.make 256 0 in
  let addr_port = Netlist.find_output_port nl "dmem_addr" in
  let rdata_port = Netlist.find_input_port nl "dmem_rdata" in
  let wdata_port = Netlist.find_output_port nl "dmem_wdata" in
  let wen_port = Netlist.find_output_port nl "dmem_wen" in
  let device =
    {
      Sim.dev_name = "avr-ram";
      dev_comb =
        (fun read write -> write_port rdata_port write mem.(read_port addr_port read land 0xFF));
      dev_clock =
        (fun read ->
          if read_port wen_port read = 1 then
            mem.(read_port addr_port read land 0xFF) <- read_port wdata_port read land 0xFF);
      dev_save = array_saver mem;
    }
  in
  (mem, device)

let avr_pins nl ~value =
  let io_port = Netlist.find_input_port nl "io_in" in
  Sim.pure_device "avr-pins" (fun _read write -> write_port io_port write value)

(* ------------------------------------------------------------------ *)
(* Lane-aware devices for the bit-parallel simulator.

   A lane memory is a base array (the value every lane agrees on) plus a
   copy-on-write overlay: the first write that makes some lane's cell
   differ from the others materializes a per-lane vector for that
   address. As long as every lane presents the same address, data and
   write-enable — packed words that are all 0 or all ones — reads and
   writes stay on the uniform fast path and never touch the overlay, so
   a batch whose faulty lanes have not (yet) diverged costs the same as
   the scalar device. *)

type lane_backing = {
  lb_base : int array;
  lb_overlay : (int, int array) Hashtbl.t;
      (* addr -> per-lane values; present only for diverged addresses *)
}

let lane_create size = { lb_base = Array.make size 0; lb_overlay = Hashtbl.create 16 }

let lane_size m = Array.length m.lb_base

let lane_read m ~lane addr =
  match Hashtbl.find_opt m.lb_overlay addr with
  | Some lanes -> lanes.(lane)
  | None -> m.lb_base.(addr)

let lane_write m ~lane addr v =
  match Hashtbl.find_opt m.lb_overlay addr with
  | Some lanes -> lanes.(lane) <- v
  | None ->
    if m.lb_base.(addr) <> v then begin
      let lanes = Array.make Bitsim.n_lanes m.lb_base.(addr) in
      lanes.(lane) <- v;
      Hashtbl.replace m.lb_overlay addr lanes
    end

let lane_write_uniform m addr v =
  Hashtbl.remove m.lb_overlay addr;
  m.lb_base.(addr) <- v

let lane_diff_mask m =
  Hashtbl.fold
    (fun _ lanes acc ->
      let g = lanes.(0) in
      let acc = ref acc in
      for lane = 1 to Bitsim.n_lanes - 1 do
        if lanes.(lane) <> g then acc := !acc lor (1 lsl lane)
      done;
      !acc)
    m.lb_overlay 0

let lane_diffs m ~lane =
  Hashtbl.fold
    (fun addr lanes acc -> if lanes.(lane) <> lanes.(0) then (addr, lanes.(lane)) :: acc else acc)
    m.lb_overlay []
  |> List.sort compare

let lane_reset m ~lane = Hashtbl.iter (fun _ lanes -> lanes.(lane) <- lanes.(0)) m.lb_overlay

let lane_compact m =
  let uniform =
    Hashtbl.fold
      (fun addr lanes acc ->
        let v = lanes.(0) in
        if Array.for_all (Int.equal v) lanes then (addr, v) :: acc else acc)
      m.lb_overlay []
  in
  List.iter
    (fun (addr, v) ->
      Hashtbl.remove m.lb_overlay addr;
      m.lb_base.(addr) <- v)
    uniform

let lane_saver m () =
  let base = Array.copy m.lb_base in
  let overlay =
    Hashtbl.fold (fun addr lanes acc -> (addr, Array.copy lanes) :: acc) m.lb_overlay []
  in
  fun () ->
    Array.blit base 0 m.lb_base 0 (Array.length base);
    Hashtbl.reset m.lb_overlay;
    List.iter (fun (addr, lanes) -> Hashtbl.replace m.lb_overlay addr (Array.copy lanes)) overlay

(* Packed-port helpers. A packed word is "uniform" when every lane holds
   the same bit, i.e. the word is 0 or all-ones. *)

let read_port_uniform (port : Netlist.port) (read : Bitsim.reader) =
  let wires = port.Netlist.port_wires in
  let n = Array.length wires in
  let v = ref 0 in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let w = read wires.(!i) in
    if w = -1 then v := !v lor (1 lsl !i) else if w <> 0 then ok := false;
    incr i
  done;
  if !ok then Some !v else None

let read_port_lane (port : Netlist.port) (read : Bitsim.reader) ~lane =
  let v = ref 0 in
  Array.iteri
    (fun i w -> if (read w lsr lane) land 1 = 1 then v := !v lor (1 lsl i))
    port.Netlist.port_wires;
  !v

let write_port_uniform (port : Netlist.port) (write : Bitsim.writer) value =
  Array.iteri
    (fun i w -> write w (Bitsim.splat (value land (1 lsl i) <> 0)))
    port.Netlist.port_wires

(* Gather a per-lane value function into packed words and drive the
   port: the transpose that pays for lane divergence. *)
let write_port_lanes (port : Netlist.port) (write : Bitsim.writer) f =
  let wires = port.Netlist.port_wires in
  let width = Array.length wires in
  let words = Array.make width 0 in
  for lane = 0 to Bitsim.n_lanes - 1 do
    let v = f lane in
    for i = 0 to width - 1 do
      if (v lsr i) land 1 = 1 then words.(i) <- words.(i) lor (1 lsl lane)
    done
  done;
  Array.iteri (fun i w -> write w words.(i)) wires

let avr_rom_lanes nl ~program =
  let addr_port = Netlist.find_output_port nl "pmem_addr" in
  let instr_port = Netlist.find_input_port nl "instr" in
  let fetch addr = if addr < Array.length program then program.(addr) else 0 (* NOP *) in
  Bitsim.pure_device "avr-rom" (fun read write ->
      match read_port_uniform addr_port read with
      | Some addr -> write_port_uniform instr_port write (fetch addr)
      | None ->
        write_port_lanes instr_port write (fun lane ->
            fetch (read_port_lane addr_port read ~lane)))

let avr_ram_lanes nl =
  let mem = lane_create 256 in
  let addr_port = Netlist.find_output_port nl "dmem_addr" in
  let rdata_port = Netlist.find_input_port nl "dmem_rdata" in
  let wdata_port = Netlist.find_output_port nl "dmem_wdata" in
  let wen_port = Netlist.find_output_port nl "dmem_wen" in
  let device =
    {
      Bitsim.dev_name = "avr-ram";
      dev_comb =
        (fun read write ->
          match read_port_uniform addr_port read with
          | Some addr -> (
            let addr = addr land 0xFF in
            match Hashtbl.find_opt mem.lb_overlay addr with
            | None -> write_port_uniform rdata_port write mem.lb_base.(addr)
            | Some lanes -> write_port_lanes rdata_port write (fun lane -> lanes.(lane)))
          | None ->
            write_port_lanes rdata_port write (fun lane ->
                lane_read mem ~lane (read_port_lane addr_port read ~lane land 0xFF)));
      dev_clock =
        (fun read ->
          match
            ( read_port_uniform wen_port read,
              read_port_uniform addr_port read,
              read_port_uniform wdata_port read )
          with
          | Some wen, Some addr, Some wdata ->
            if wen = 1 then lane_write_uniform mem (addr land 0xFF) (wdata land 0xFF)
          | _ ->
            for lane = 0 to Bitsim.n_lanes - 1 do
              if read_port_lane wen_port read ~lane = 1 then
                lane_write mem ~lane
                  (read_port_lane addr_port read ~lane land 0xFF)
                  (read_port_lane wdata_port read ~lane land 0xFF)
            done);
      dev_save = lane_saver mem;
    }
  in
  (mem, device)

let avr_pins_lanes nl ~value =
  let io_port = Netlist.find_input_port nl "io_in" in
  Bitsim.pure_device "avr-pins" (fun _read write -> write_port_uniform io_port write value)

let msp_memory_lanes nl ~words ~program =
  if Array.length program > words then invalid_arg "Memory.msp_memory_lanes: program too large";
  let mem = lane_create words in
  Array.blit program 0 mem.lb_base 0 (Array.length program);
  let addr_port = Netlist.find_output_port nl "mem_addr" in
  let rdata_port = Netlist.find_input_port nl "mem_rdata" in
  let wdata_port = Netlist.find_output_port nl "mem_wdata" in
  let wen_port = Netlist.find_output_port nl "mem_wen" in
  let word_index addr = addr lsr 1 mod words in
  let device =
    {
      Bitsim.dev_name = "msp-memory";
      dev_comb =
        (fun read write ->
          match read_port_uniform addr_port read with
          | Some addr -> (
            let addr = word_index addr in
            match Hashtbl.find_opt mem.lb_overlay addr with
            | None -> write_port_uniform rdata_port write mem.lb_base.(addr)
            | Some lanes -> write_port_lanes rdata_port write (fun lane -> lanes.(lane)))
          | None ->
            write_port_lanes rdata_port write (fun lane ->
                lane_read mem ~lane (word_index (read_port_lane addr_port read ~lane))));
      dev_clock =
        (fun read ->
          match
            ( read_port_uniform wen_port read,
              read_port_uniform addr_port read,
              read_port_uniform wdata_port read )
          with
          | Some wen, Some addr, Some wdata ->
            if wen = 1 then lane_write_uniform mem (word_index addr) (wdata land 0xFFFF)
          | _ ->
            for lane = 0 to Bitsim.n_lanes - 1 do
              if read_port_lane wen_port read ~lane = 1 then
                lane_write mem ~lane
                  (word_index (read_port_lane addr_port read ~lane))
                  (read_port_lane wdata_port read ~lane land 0xFFFF)
            done);
      dev_save = lane_saver mem;
    }
  in
  (mem, device)

(* ------------------------------------------------------------------ *)
(* Delta devices for the activity-gated kernel.

   The golden device behaviour is already baked into the recorded
   trace, so a delta device only models the *difference* between the
   faulty device and the golden one. ROMs and constant pins are
   stateless: the faulty output is a pure function of the faulty
   address, so a plain recompute-and-drive suffices (and constant pins
   need no delta device at all — their faulty value can never differ).
   RAMs carry state: we keep the golden contents [gram] replayed from
   the trace's write stream (with periodic snapshots so [dd_seek] is
   cheap) plus a sparse [diff] table of addresses where the faulty
   contents diverge. A clean faulty run keeps [diff] empty and clocks
   in O(1). *)

let read_port_delta (port : Netlist.port) ds =
  let v = ref 0 in
  Array.iteri
    (fun i w -> if Deltasim.faulty ds w then v := !v lor (1 lsl i))
    port.Netlist.port_wires;
  !v

let write_port_delta (port : Netlist.port) ds value =
  Array.iteri
    (fun i w -> Deltasim.drive ds w (value land (1 lsl i) <> 0))
    port.Netlist.port_wires

let trace_port trace (port : Netlist.port) ~cycle =
  let v = ref 0 in
  Array.iteri
    (fun i w -> if Trace.get trace ~cycle w then v := !v lor (1 lsl i))
    port.Netlist.port_wires;
  !v

let avr_rom_delta ds nl ~program =
  let addr_port = Netlist.find_output_port nl "pmem_addr" in
  let instr_port = Netlist.find_input_port nl "instr" in
  {
    Deltasim.dd_name = "avr-rom";
    dd_comb =
      (fun () ->
        let addr = read_port_delta addr_port ds in
        let word = if addr < Array.length program then program.(addr) else 0 (* NOP *) in
        write_port_delta instr_port ds word);
    dd_clock = (fun () -> ());
    dd_seek = (fun _ -> ());
    dd_clean = (fun () -> true);
    dd_diffs = (fun () -> []);
    dd_watch = Array.append addr_port.Netlist.port_wires instr_port.Netlist.port_wires;
  }

(* Shared golden-replay RAM: [index] maps a port address to a cell,
   [mask] truncates write data, [init_image] is the power-on contents.
   Golden writes are prescanned from the trace once; snapshots every
   [snap_interval] cycles bound the replay cost of a mid-trace seek. *)
let delta_ram ds ~name ~trace ~index ~mask ~init_image ~addr_port ~rdata_port ~wdata_port
    ~wen_port =
  let size = Array.length init_image in
  let total = Trace.n_cycles trace in
  let g_wen = Array.make total false in
  let g_addr = Array.make total 0 in
  let g_data = Array.make total 0 in
  for c = 0 to total - 1 do
    g_wen.(c) <- trace_port trace wen_port ~cycle:c = 1;
    g_addr.(c) <- index (trace_port trace addr_port ~cycle:c);
    g_data.(c) <- trace_port trace wdata_port ~cycle:c land mask
  done;
  let snap_interval = 64 in
  let n_snaps = (total + snap_interval - 1) / snap_interval in
  let snaps = Array.make (max n_snaps 1) [||] in
  let state = Array.copy init_image in
  for c = 0 to total - 1 do
    if c mod snap_interval = 0 then snaps.(c / snap_interval) <- Array.copy state;
    if g_wen.(c) then state.(g_addr.(c)) <- g_data.(c)
  done;
  if snaps.(0) = [||] then snaps.(0) <- Array.copy init_image;
  let gram = Array.copy init_image in
  let diff : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let cur = ref 0 in
  let faulty_at a = match Hashtbl.find_opt diff a with Some v -> v | None -> gram.(a) in
  {
    Deltasim.dd_name = name;
    dd_comb =
      (fun () ->
        let a = index (read_port_delta addr_port ds) in
        write_port_delta rdata_port ds (faulty_at a));
    dd_clock =
      (fun () ->
        let c = !cur in
        if c < total then begin
          let fwen = read_port_delta wen_port ds = 1 in
          let faddr = index (read_port_delta addr_port ds) in
          let fdata = read_port_delta wdata_port ds land mask in
          let gwen = g_wen.(c) and gaddr = g_addr.(c) and gdata = g_data.(c) in
          if fwen || gwen then begin
            (* New faulty value at the golden write address, computed
               before any mutation (the faulty write may hit it too). *)
            let nf_gaddr =
              if gwen then if fwen && faddr = gaddr then fdata else faulty_at gaddr else 0
            in
            if gwen then gram.(gaddr) <- gdata;
            if fwen then
              if fdata = gram.(faddr) then Hashtbl.remove diff faddr
              else Hashtbl.replace diff faddr fdata;
            if gwen && ((not fwen) || faddr <> gaddr) then
              if nf_gaddr = gram.(gaddr) then Hashtbl.remove diff gaddr
              else Hashtbl.replace diff gaddr nf_gaddr
          end
        end;
        incr cur);
    dd_seek =
      (fun cycle ->
        Hashtbl.reset diff;
        let s = cycle / snap_interval in
        Array.blit snaps.(s) 0 gram 0 size;
        for c = s * snap_interval to cycle - 1 do
          if g_wen.(c) then gram.(g_addr.(c)) <- g_data.(c)
        done;
        cur := cycle);
    dd_clean = (fun () -> Hashtbl.length diff = 0);
    dd_diffs =
      (fun () -> Hashtbl.fold (fun a v acc -> (a, v) :: acc) diff [] |> List.sort compare);
    dd_watch =
      Array.concat
        [
          addr_port.Netlist.port_wires;
          rdata_port.Netlist.port_wires;
          wdata_port.Netlist.port_wires;
          wen_port.Netlist.port_wires;
        ];
  }

let avr_ram_delta ds nl ~trace =
  delta_ram ds ~name:"avr-ram" ~trace
    ~index:(fun a -> a land 0xFF)
    ~mask:0xFF ~init_image:(Array.make 256 0)
    ~addr_port:(Netlist.find_output_port nl "dmem_addr")
    ~rdata_port:(Netlist.find_input_port nl "dmem_rdata")
    ~wdata_port:(Netlist.find_output_port nl "dmem_wdata")
    ~wen_port:(Netlist.find_output_port nl "dmem_wen")

let msp_memory_delta ds nl ~trace ~words ~program =
  if Array.length program > words then invalid_arg "Memory.msp_memory_delta: program too large";
  let init_image = Array.make words 0 in
  Array.blit program 0 init_image 0 (Array.length program);
  delta_ram ds ~name:"msp-memory" ~trace
    ~index:(fun a -> a lsr 1 mod words)
    ~mask:0xFFFF ~init_image
    ~addr_port:(Netlist.find_output_port nl "mem_addr")
    ~rdata_port:(Netlist.find_input_port nl "mem_rdata")
    ~wdata_port:(Netlist.find_output_port nl "mem_wdata")
    ~wen_port:(Netlist.find_output_port nl "mem_wen")

(* ------------------------------------------------------------------ *)
(* Lane-masked delta devices for the batched activity-gated kernel.

   The batch composition of the two families above: the golden device
   behaviour is baked into the recorded trace (shared by every lane),
   and each lane models only its own difference from it. The golden
   RAM replay — prescanned write stream, periodic snapshots, the
   [gram] image — is paid once per clock for all lanes; divergence
   lives in per-lane sparse diff tables whose union is summarized in a
   dirty mask so a pass full of re-converged lanes clocks in O(1). *)

let rec lsb_index v i = if v land 1 = 1 then i else lsb_index (v lsr 1) (i + 1)

let read_port_delta_batch_lane (port : Netlist.port) db ~lane =
  let v = ref 0 in
  Array.iteri
    (fun i w -> if Deltabatch.faulty db w ~lane then v := !v lor (1 lsl i))
    port.Netlist.port_wires;
  !v

let golden_port (port : Netlist.port) db =
  let v = ref 0 in
  Array.iteri (fun i w -> if Deltabatch.golden db w then v := !v lor (1 lsl i)) port.Netlist.port_wires;
  !v

let port_flips (port : Netlist.port) db =
  Array.fold_left (fun acc w -> acc lor Deltabatch.flip_word db w) 0 port.Netlist.port_wires

(* Gather per-lane faulty port values into packed words and drive only
   the lanes in [mask] — the batch-delta transpose path. *)
let write_port_delta_batch (port : Netlist.port) db ~mask f =
  let wires = port.Netlist.port_wires in
  let width = Array.length wires in
  let words = Array.make width 0 in
  let m = ref mask in
  while !m <> 0 do
    let lane = lsb_index !m 0 in
    m := !m land (!m - 1);
    let v = f lane in
    for i = 0 to width - 1 do
      if (v lsr i) land 1 = 1 then words.(i) <- words.(i) lor (1 lsl lane)
    done
  done;
  Array.iteri (fun i w -> Deltabatch.drive_masked db w ~mask words.(i)) wires

let avr_rom_delta_batch db nl ~program =
  let addr_port = Netlist.find_output_port nl "pmem_addr" in
  let instr_port = Netlist.find_input_port nl "instr" in
  let fetch addr = if addr < Array.length program then program.(addr) else 0 (* NOP *) in
  {
    Deltabatch.db_name = "avr-rom";
    db_comb =
      (fun mask ->
        write_port_delta_batch instr_port db ~mask (fun lane ->
            fetch (read_port_delta_batch_lane addr_port db ~lane)));
    db_clock = (fun () -> ());
    db_seek = (fun _ -> ());
    db_dirty = (fun () -> 0);
    db_diffs = (fun ~lane:_ -> []);
    db_reset = (fun ~lane:_ -> ());
    db_watch = Array.append addr_port.Netlist.port_wires instr_port.Netlist.port_wires;
  }

(* Shared golden-replay RAM with per-lane diffs: the batch mirror of
   [delta_ram]. One golden write stream and one [gram] image serve all
   lanes; a lane participates in a clock edge only when its write
   ports are flipped or its diff table is non-empty while the golden
   run writes (the golden write may create or clear its divergence at
   the written address). Each participating lane follows exactly the
   scalar [delta_ram] update — faulty value at the golden write
   address computed before the golden write mutates [gram] — so the
   per-lane diff tables are bit-identical to the scalar engine's. *)
let delta_ram_batch db ~name ~trace ~index ~mask:vmask ~init_image ~addr_port ~rdata_port
    ~wdata_port ~wen_port =
  let size = Array.length init_image in
  let total = Trace.n_cycles trace in
  let g_wen = Array.make total false in
  let g_addr = Array.make total 0 in
  let g_data = Array.make total 0 in
  for c = 0 to total - 1 do
    g_wen.(c) <- trace_port trace wen_port ~cycle:c = 1;
    g_addr.(c) <- index (trace_port trace addr_port ~cycle:c);
    g_data.(c) <- trace_port trace wdata_port ~cycle:c land vmask
  done;
  let snap_interval = 64 in
  let n_snaps = (total + snap_interval - 1) / snap_interval in
  let snaps = Array.make (max n_snaps 1) [||] in
  let state = Array.copy init_image in
  for c = 0 to total - 1 do
    if c mod snap_interval = 0 then snaps.(c / snap_interval) <- Array.copy state;
    if g_wen.(c) then state.(g_addr.(c)) <- g_data.(c)
  done;
  if snaps.(0) = [||] then snaps.(0) <- Array.copy init_image;
  let gram = Array.copy init_image in
  let diffs = Array.init Deltabatch.n_lanes (fun _ -> Hashtbl.create 8) in
  (* Reverse index of the per-lane diff tables: address -> mask of
     lanes holding a diff there. It is what lets the per-cycle hooks
     touch only the lanes an access can actually affect, instead of
     every dirty lane. *)
  let addr_lanes : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let dirty_mask = ref 0 in
  let cur = ref 0 in
  let faulty_at lane a =
    match Hashtbl.find_opt diffs.(lane) a with
    | Some v -> v
    | None -> gram.(a)
  in
  let lanes_at a = match Hashtbl.find_opt addr_lanes a with Some m -> m | None -> 0 in
  let diff_put lane a v =
    if not (Hashtbl.mem diffs.(lane) a) then Hashtbl.replace addr_lanes a (lanes_at a lor (1 lsl lane));
    Hashtbl.replace diffs.(lane) a v;
    dirty_mask := !dirty_mask lor (1 lsl lane)
  in
  let diff_drop lane a =
    if Hashtbl.mem diffs.(lane) a then begin
      Hashtbl.remove diffs.(lane) a;
      let m = lanes_at a land lnot (1 lsl lane) in
      if m = 0 then Hashtbl.remove addr_lanes a else Hashtbl.replace addr_lanes a m;
      if Hashtbl.length diffs.(lane) = 0 then dirty_mask := !dirty_mask land lnot (1 lsl lane)
    end
  in
  (* Per-lane scratch for the clock edge's two-phase update. *)
  let l_wen = Array.make Deltabatch.n_lanes false in
  let l_addr = Array.make Deltabatch.n_lanes 0 in
  let l_data = Array.make Deltabatch.n_lanes 0 in
  let l_nfg = Array.make Deltabatch.n_lanes 0 in
  {
    Deltabatch.db_name = name;
    db_comb =
      (fun mask ->
        (* A lane with clean address-port wires reads at the golden
           address; it can diverge on rdata only through a diff entry
           there. So the per-lane transpose is confined to lanes whose
           address really flipped ([hard]) or whose diff table covers
           the golden address ([hits]); every other masked lane reads
           golden data, and only those with stale rdata flips need a
           word-wide clear. *)
        let aflips = port_flips addr_port db in
        let hard = mask land aflips in
        let easy = mask land lnot aflips in
        let ga = index (golden_port addr_port db) in
        let hits = lanes_at ga land easy in
        let recompute = hard lor hits in
        if recompute <> 0 then
          write_port_delta_batch rdata_port db ~mask:recompute (fun lane ->
              if hard land (1 lsl lane) <> 0 then
                faulty_at lane (index (read_port_delta_batch_lane addr_port db ~lane))
              else faulty_at lane ga);
        let stale = easy land lnot hits land port_flips rdata_port db in
        if stale <> 0 then
          Array.iter
            (fun w ->
              Deltabatch.drive_masked db w ~mask:stale (if Deltabatch.golden db w then -1 else 0))
            rdata_port.Netlist.port_wires);
    db_clock =
      (fun () ->
        let c = !cur in
        if c < total then begin
          let gwen = g_wen.(c) and gaddr = g_addr.(c) and gdata = g_data.(c) in
          let pf =
            port_flips wen_port db lor port_flips addr_port db lor port_flips wdata_port db
          in
          if pf <> 0 then begin
            (* Phase 1: read every port-flipped lane's faulty write
               port and its pre-write faulty value at the golden write
               address. *)
            let m = ref pf in
            while !m <> 0 do
              let lane = lsb_index !m 0 in
              m := !m land (!m - 1);
              let fwen = read_port_delta_batch_lane wen_port db ~lane = 1 in
              let faddr = index (read_port_delta_batch_lane addr_port db ~lane) in
              let fdata = read_port_delta_batch_lane wdata_port db ~lane land vmask in
              l_wen.(lane) <- fwen;
              l_addr.(lane) <- faddr;
              l_data.(lane) <- fdata;
              l_nfg.(lane) <-
                (if gwen then if fwen && faddr = gaddr then fdata else faulty_at lane gaddr
                 else 0)
            done;
            (* Phase 2: the one shared golden write, then each lane's
               faulty write and diff update against the new [gram]. A
               clean-port dirty lane performs the identical write the
               golden machine does, so its only possible state change
               is a diff at the golden address being overwritten away. *)
            if gwen then begin
              gram.(gaddr) <- gdata;
              let m = ref (lanes_at gaddr land lnot pf) in
              while !m <> 0 do
                let lane = lsb_index !m 0 in
                m := !m land (!m - 1);
                diff_drop lane gaddr
              done
            end;
            let m = ref pf in
            while !m <> 0 do
              let lane = lsb_index !m 0 in
              m := !m land (!m - 1);
              if l_wen.(lane) then begin
                let faddr = l_addr.(lane) and fdata = l_data.(lane) in
                if fdata = gram.(faddr) then diff_drop lane faddr else diff_put lane faddr fdata
              end;
              if gwen && ((not l_wen.(lane)) || l_addr.(lane) <> gaddr) then
                if l_nfg.(lane) = gram.(gaddr) then diff_drop lane gaddr
                else diff_put lane gaddr l_nfg.(lane)
            done
          end
          else begin
            if gwen then begin
              gram.(gaddr) <- gdata;
              (* No lane has a flipped write port: every lane writes
                 [gdata] at [gaddr] exactly like golden, clearing any
                 diff at that address. *)
              let m = ref (lanes_at gaddr) in
              while !m <> 0 do
                let lane = lsb_index !m 0 in
                m := !m land (!m - 1);
                diff_drop lane gaddr
              done
            end
          end
        end;
        incr cur);
    db_seek =
      (fun cycle ->
        Array.iter Hashtbl.reset diffs;
        Hashtbl.reset addr_lanes;
        dirty_mask := 0;
        let s = cycle / snap_interval in
        Array.blit snaps.(s) 0 gram 0 size;
        for c = s * snap_interval to cycle - 1 do
          if g_wen.(c) then gram.(g_addr.(c)) <- g_data.(c)
        done;
        cur := cycle);
    db_dirty = (fun () -> !dirty_mask);
    db_diffs =
      (fun ~lane ->
        Hashtbl.fold (fun a v acc -> (a, v) :: acc) diffs.(lane) [] |> List.sort compare);
    db_reset =
      (fun ~lane ->
        Hashtbl.iter
          (fun a _ ->
            let m = lanes_at a land lnot (1 lsl lane) in
            if m = 0 then Hashtbl.remove addr_lanes a else Hashtbl.replace addr_lanes a m)
          diffs.(lane);
        Hashtbl.reset diffs.(lane);
        dirty_mask := !dirty_mask land lnot (1 lsl lane));
    db_watch =
      Array.concat
        [
          addr_port.Netlist.port_wires;
          rdata_port.Netlist.port_wires;
          wdata_port.Netlist.port_wires;
          wen_port.Netlist.port_wires;
        ];
  }

let avr_ram_delta_batch db nl ~trace =
  delta_ram_batch db ~name:"avr-ram" ~trace
    ~index:(fun a -> a land 0xFF)
    ~mask:0xFF ~init_image:(Array.make 256 0)
    ~addr_port:(Netlist.find_output_port nl "dmem_addr")
    ~rdata_port:(Netlist.find_input_port nl "dmem_rdata")
    ~wdata_port:(Netlist.find_output_port nl "dmem_wdata")
    ~wen_port:(Netlist.find_output_port nl "dmem_wen")

let msp_memory_delta_batch db nl ~trace ~words ~program =
  if Array.length program > words then
    invalid_arg "Memory.msp_memory_delta_batch: program too large";
  let init_image = Array.make words 0 in
  Array.blit program 0 init_image 0 (Array.length program);
  delta_ram_batch db ~name:"msp-memory" ~trace
    ~index:(fun a -> a lsr 1 mod words)
    ~mask:0xFFFF ~init_image
    ~addr_port:(Netlist.find_output_port nl "mem_addr")
    ~rdata_port:(Netlist.find_input_port nl "mem_rdata")
    ~wdata_port:(Netlist.find_output_port nl "mem_wdata")
    ~wen_port:(Netlist.find_output_port nl "mem_wen")

let msp_memory nl ~words ~program =
  if Array.length program > words then invalid_arg "Memory.msp_memory: program too large";
  let mem = Array.make words 0 in
  Array.blit program 0 mem 0 (Array.length program);
  let addr_port = Netlist.find_output_port nl "mem_addr" in
  let rdata_port = Netlist.find_input_port nl "mem_rdata" in
  let wdata_port = Netlist.find_output_port nl "mem_wdata" in
  let wen_port = Netlist.find_output_port nl "mem_wen" in
  let word_index read = read_port addr_port read lsr 1 mod words in
  let device =
    {
      Sim.dev_name = "msp-memory";
      dev_comb = (fun read write -> write_port rdata_port write mem.(word_index read));
      dev_clock =
        (fun read ->
          if read_port wen_port read = 1 then
            mem.(word_index read) <- read_port wdata_port read land 0xFFFF);
      dev_save = array_saver mem;
    }
  in
  (mem, device)
