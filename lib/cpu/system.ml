module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Trace = Pruning_sim.Trace

type kind =
  | Avr
  | Msp430

type t = {
  kind : kind;
  name : string;
  netlist : Netlist.t;
  sim : Sim.t;
  ram : Memory.backing;
  rf_prefix : string;
}

let avr_netlist () = Avr_core.build ()
let msp_netlist () = Msp_core.build ()

let create_avr ?(pins = 0x5A) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> avr_netlist ()
  in
  let sim = Sim.create netlist in
  Sim.add_device sim (Memory.avr_rom netlist ~program);
  let ram, ram_device = Memory.avr_ram netlist in
  Sim.add_device sim ram_device;
  Sim.add_device sim (Memory.avr_pins netlist ~value:pins);
  { kind = Avr; name; netlist; sim; ram; rf_prefix = Avr_core.rf_prefix }

let create_msp ?(words = 2048) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> msp_netlist ()
  in
  let sim = Sim.create netlist in
  let ram, mem_device = Memory.msp_memory netlist ~words ~program in
  Sim.add_device sim mem_device;
  { kind = Msp430; name; netlist; sim; ram; rf_prefix = Msp_core.rf_prefix }

let save_state t = Sim.save_state t.sim

let run t ~cycles = Sim.run t.sim ~cycles ()

let record t ~cycles =
  let trace = Trace.create ~n_wires:(Netlist.n_wires t.netlist) in
  Sim.run t.sim ~trace ~cycles ();
  trace
