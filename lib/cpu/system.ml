module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Bitsim = Pruning_sim.Bitsim
module Deltasim = Pruning_sim.Deltasim
module Deltabatch = Pruning_sim.Deltabatch
module Trace = Pruning_sim.Trace

type kind =
  | Avr
  | Msp430

type t = {
  kind : kind;
  name : string;
  netlist : Netlist.t;
  sim : Sim.t;
  ram : Memory.backing;
  rf_prefix : string;
}

let avr_netlist () = Avr_core.build ()
let msp_netlist () = Msp_core.build ()

let create_avr ?(pins = 0x5A) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> avr_netlist ()
  in
  let sim = Sim.create netlist in
  Sim.add_device sim (Memory.avr_rom netlist ~program);
  let ram, ram_device = Memory.avr_ram netlist in
  Sim.add_device sim ram_device;
  Sim.add_device sim (Memory.avr_pins netlist ~value:pins);
  { kind = Avr; name; netlist; sim; ram; rf_prefix = Avr_core.rf_prefix }

let create_msp ?(words = 2048) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> msp_netlist ()
  in
  let sim = Sim.create netlist in
  let ram, mem_device = Memory.msp_memory netlist ~words ~program in
  Sim.add_device sim mem_device;
  { kind = Msp430; name; netlist; sim; ram; rf_prefix = Msp_core.rf_prefix }

(* Lane-parallel counterpart: the same core and environment over the
   bit-parallel simulator, with copy-on-write lane memories. *)
type lanes = {
  l_kind : kind;
  l_name : string;
  l_netlist : Netlist.t;
  l_bsim : Bitsim.t;
  l_ram : Memory.lane_backing;
}

let create_avr_lanes ?(pins = 0x5A) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> avr_netlist ()
  in
  let bsim = Bitsim.create netlist in
  Bitsim.add_device bsim (Memory.avr_rom_lanes netlist ~program);
  let ram, ram_device = Memory.avr_ram_lanes netlist in
  Bitsim.add_device bsim ram_device;
  Bitsim.add_device bsim (Memory.avr_pins_lanes netlist ~value:pins);
  { l_kind = Avr; l_name = name; l_netlist = netlist; l_bsim = bsim; l_ram = ram }

let create_msp_lanes ?(words = 2048) ?netlist ~program name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> msp_netlist ()
  in
  let bsim = Bitsim.create netlist in
  let ram, mem_device = Memory.msp_memory_lanes netlist ~words ~program in
  Bitsim.add_device bsim mem_device;
  { l_kind = Msp430; l_name = name; l_netlist = netlist; l_bsim = bsim; l_ram = ram }

(* Delta counterpart: the same core and environment as a sparse
   difference against a recorded golden trace. *)
type delta = {
  d_kind : kind;
  d_name : string;
  d_netlist : Netlist.t;
  d_dsim : Deltasim.t;
}

let create_avr_delta ?netlist ~program ~trace name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> avr_netlist ()
  in
  let dsim = Deltasim.create netlist trace in
  Deltasim.add_device dsim (Memory.avr_rom_delta dsim netlist ~program);
  Deltasim.add_device dsim (Memory.avr_ram_delta dsim netlist ~trace);
  (* Constant pins need no delta device: their faulty value can never
     differ from the recorded golden one. *)
  { d_kind = Avr; d_name = name; d_netlist = netlist; d_dsim = dsim }

let create_msp_delta ?(words = 2048) ?netlist ~program ~trace name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> msp_netlist ()
  in
  let dsim = Deltasim.create netlist trace in
  Deltasim.add_device dsim (Memory.msp_memory_delta dsim netlist ~trace ~words ~program);
  { d_kind = Msp430; d_name = name; d_netlist = netlist; d_dsim = dsim }

(* Batched-delta counterpart: the same core and environment as many
   independent sparse differences against one recorded golden trace. *)
type delta_batch = {
  db_kind : kind;
  db_name : string;
  db_netlist : Netlist.t;
  db_dbsim : Deltabatch.t;
}

let create_avr_delta_batch ?netlist ~program ~trace name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> avr_netlist ()
  in
  let dbsim = Deltabatch.create netlist trace in
  Deltabatch.add_device dbsim (Memory.avr_rom_delta_batch dbsim netlist ~program);
  Deltabatch.add_device dbsim (Memory.avr_ram_delta_batch dbsim netlist ~trace);
  (* Constant pins need no delta device: no lane's faulty value can
     ever differ from the recorded golden one. *)
  { db_kind = Avr; db_name = name; db_netlist = netlist; db_dbsim = dbsim }

let create_msp_delta_batch ?(words = 2048) ?netlist ~program ~trace name =
  let netlist =
    match netlist with
    | Some nl -> nl
    | None -> msp_netlist ()
  in
  let dbsim = Deltabatch.create netlist trace in
  Deltabatch.add_device dbsim (Memory.msp_memory_delta_batch dbsim netlist ~trace ~words ~program);
  { db_kind = Msp430; db_name = name; db_netlist = netlist; db_dbsim = dbsim }

let save_state t = Sim.save_state t.sim

let save_lanes_state t = Bitsim.save_state t.l_bsim

let run t ~cycles = Sim.run t.sim ~cycles ()

let record t ~cycles =
  let trace = Trace.create ~n_wires:(Netlist.n_wires t.netlist) in
  Sim.run t.sim ~trace ~cycles ();
  trace
