(** Ground truth for single-cycle fault masking.

    [one_cycle_benign] performs the experiment a MATE predicts: flip one
    flip-flop at the current cycle, re-evaluate the combinational logic
    (devices included) and compare every flip-flop's next-state input and
    every primary output with the fault-free evaluation. If nothing
    differs, the SEU provably dies at the next clock edge.

    MATEs are {e sufficient} conditions, so the library-wide soundness
    invariant (tested extensively) is: whenever a MATE triggers, this
    oracle says benign. The converse need not hold. *)

val one_cycle_benign : Pruning_sim.Sim.t -> flop_id:int -> bool
(** Must be called on an evaluated simulator ([Sim.eval] already run for
    the current cycle); restores the simulator state (including a final
    re-eval) before returning. *)

val pair_benign : Pruning_sim.Sim.t -> flop_a:int -> flop_b:int -> bool
(** Section 6.2 extension: simultaneous 2-bit upset. Flip both flops and
    check all next-state inputs and primary outputs as in
    {!one_cycle_benign}. *)

val multi_benign : Pruning_sim.Sim.t -> flop_ids:int list -> bool
(** {!pair_benign} generalized to an arbitrary simultaneous flip set —
    the ground truth for one-cycle masking of a SET expansion or an MBU
    cluster. Benign iff the whole set dies at the next clock edge with
    every flip applied at once (which single-flop masking terms cannot
    establish — hence the model-aware audit). *)

val sustained_benign : Pruning_sim.Sim.t -> flop_id:int -> hold:int -> bool
(** Section 6.2 extension: an upset that holds the flip-flop at the wrong
    value for [hold] consecutive cycles (starting at the current cycle).
    Benign iff every flip-flop next-state input and every primary output
    matches the golden run in each of the [hold] cycles — after the
    window, the state is then provably golden again. The simulator is
    restored (same cycle, golden state) before returning. *)

val defers : Pruning_sim.Sim.t -> flop_id:int -> bool
(** Inter-cycle equivalence (the paper's complementary pruning for
    register-file faults): true when a fault in the flop at the current
    cycle transfers {e unchanged} into the next cycle without any other
    effect — every other flip-flop's D input and every primary output
    matches the golden run, and the flop reloads its own (flipped) value.
    Then the fault (flop, t) is equivalent to (flop, t+1): a campaign
    needs to inject only one representative of the run. *)

val sweep :
  Pruning_sim.Sim.t ->
  flops:Pruning_netlist.Netlist.flop array ->
  cycles:int ->
  bool array array
(** Run the simulation [cycles] cycles forward from its current state; the
    result is indexed [cycle].(flop position in [flops]) and holds the
    benign verdict of each (flop, cycle) fault. The simulator is advanced
    by [cycles] cycles. *)
