(** Durable, supervised, self-auditing campaigns.

    {!Campaign} classifies faults fast; this layer makes a long campaign
    survive the real world on top of it:

    - {b Crash safety}: with [~journal], every verdict is streamed into
      an append-only, CRC-checksummed {!Journal} the moment it is
      produced. A campaign killed at any point — SIGKILL included — is
      resumed with [~resume:true]: the journal header pins the campaign
      identity (core, program, cycles, seed, sample count, prune/audit
      configuration, shard count and every serialized PRNG state), the
      fault list is re-derived from the restored sampler, recorded
      verdicts are replayed, and only the missing experiments run. The
      final statistics are bit-identical to an uninterrupted run.

    - {b Supervision}: the sample list is split into per-domain shards.
      Each experiment runs under an optional simulated-cycle watchdog
      ({!Campaign.Budget_exceeded}); an experiment that raises — watchdog,
      simulator bug, test-injected chaos — is retried up to [retries]
      times, each time on a freshly built system
      ({!Campaign.fresh_worker}), and a persistent failure is recorded as
      [Crashed] in the stats instead of aborting the campaign.

    - {b MATE soundness sentinel}: with [~audit:(p, hooks)], a
      [p]-fraction of the faults the [skip] predicate claims pruned are
      injected anyway. A non-[Benign] verdict for a "pruned" fault is a
      soundness violation: the offending MATEs are quarantined through
      [hooks] (their flops stop being pruned for the rest of the run),
      the event is journaled, and the fault is counted by its real
      verdict — the campaign degrades from "prune" to "inject" rather
      than producing wrong statistics. Audited faults whose verdict is
      [Benign] stay counted as [skipped], so a campaign over sound MATEs
      reports statistics identical to an unaudited one. *)

type audit_hooks = {
  masking : flop_id:int -> cycle:int -> int list;
      (** the enabled MATEs that claimed this fault benign *)
  quarantine : int -> unit;  (** disable one MATE for the rest of the run *)
  describe : int -> string;  (** for the audit summary *)
}
(** The pruning side of the audit sentinel, kept abstract so this library
    does not depend on the MATE layer; [Pruning_mate.Replay.pruner]
    provides a direct implementation ([masking]/[quarantine]/
    [describe_mate]). *)

type violation = {
  v_index : int;  (** sample index *)
  v_flop_id : int;
  v_cycle : int;
  v_verdict : Campaign.verdict;  (** the real, non-benign verdict *)
  v_mates : int list;  (** MATEs quarantined for it *)
}

type audit_report = {
  audited : int;  (** pruned faults injected for auditing (this process) *)
  violations : violation list;  (** in detection order *)
  quarantined : int list;
      (** every quarantined MATE, journal-replayed ones included *)
}

type result = {
  stats : Campaign.stats;
  audit : audit_report;
  completed : bool;  (** false iff [should_stop] ended the run early *)
  recovered : int;  (** verdicts replayed from the journal, not re-run *)
  dropped_bytes : int;  (** torn journal tail truncated on resume *)
  retried : int;  (** supervisor retries performed *)
}

val run :
  Campaign.t ->
  space:Fault_space.t ->
  seed:int ->
  n:int ->
  ?ident:string * string ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  ?audit:float * audit_hooks ->
  ?jobs:int ->
  ?batched:bool ->
  ?kernel:Campaign.kernel ->
  ?lanes:int ->
  ?budget:int ->
  ?retries:int ->
  ?retry_backoff:Pruning_util.Backoff.policy ->
  ?journal:string ->
  ?resume:bool ->
  ?records_per_segment:int ->
  ?should_stop:(unit -> bool) ->
  ?chaos:Chaos.t ->
  ?fault:(shard:int -> index:int -> attempt:int -> unit) ->
  unit ->
  result
(** Durable counterpart of {!Campaign.run_sample} /
    {!Campaign.run_sample_batched}: draws the identical fault list for
    the same [seed] (so its stats are bit-identical to theirs when
    nothing crashes), then runs it under journal + supervisor + sentinel.

    [ident] is the (core, program) pair recorded in the journal header
    and checked on resume. [skip] marks pruned faults; it may be called
    from several domains and must be pure except for quarantine effects.
    [audit] enables the sentinel ([p] in \[0, 1\]; audit decisions are
    drawn from per-shard PRNGs whose states live in the journal header,
    so a resumed run audits exactly the faults the original would have).
    [jobs] is the shard/domain count for the scalar path; [batched] uses
    the lane-parallel engine on one shard ([jobs] is ignored). [kernel]
    selects the engine directly ([Scalar] (default), [Batched], the
    activity-gated [Delta], or the batched-delta [Delta_batched]); it
    subsumes [batched], and passing both [~batched:true] and a
    non-[Batched] [kernel] is an error. The delta-family kernels, like
    the batched one, run on a single shard; their journals carry the
    same header shape as scalar [jobs = 1] runs, and since the kernels
    are verdict-bit-identical those resume interchangeably ([Scalar],
    [Delta] and [Delta_batched] journals are mutually compatible;
    [Batched] alone marks its header, a historical distinction
    {!Journal.require_match} still enforces). [lanes] caps the in-flight
    faults per pass of the [Batched] / [Delta_batched] kernels (default:
    the engine's maximum; rejected for the per-fault kernels). [budget]
    is the per-experiment watchdog in simulated cycles
    (scalar and delta paths only). [retries] (default 2) bounds the supervisor's fresh-system
    retries per experiment (per window for the windowed kernels); between
    retries the shard sleeps per [retry_backoff] (default
    {!Pruning_util.Backoff.retry_policy}: capped exponential with jitter
    drawn deterministically from the shard's pinned PRNG state, so reruns
    hitting the same failures pace identically).
    [journal] is the journal directory; [resume] reopens it instead of
    creating it, raising {!Journal.Error} with an actionable message if
    the header does not match the invocation. [should_stop] is polled
    between experiments for cooperative shutdown (SIGINT/SIGTERM
    handlers); a stopped run journals everything it finished and reports
    [completed = false].

    [chaos] arms this run's deterministic infrastructure fault plan:
    execution chaos around every experiment attempt (a {!Chaos.Injected}
    crash is retried without consuming [retries], so chaos never
    manufactures [Crashed] verdicts) and journal chaos on the writer
    (short writes, injected ENOSPC/EIO, fsync failures, torn seal
    renames — all surfacing as {!Journal.Error}, from which [resume]
    completes the campaign bit-identically). Chaos draws are not
    synchronized across shards; with [jobs > 1] the plan is still
    injected but not reproducible draw-for-draw. [fault] is a test-only
    fault-injection hook for the supervisor itself, called before every
    attempt; an exception it raises is handled exactly like a crashed
    experiment. *)
