module Crc = Pruning_util.Crc
module Mono = Pruning_util.Mono

type outcome =
  | Benign
  | Latent
  | Sdc of int
  | Skipped
  | Crashed

type entry =
  | Outcome of int * outcome
  | Quarantine of int
  | Poisoned of int
  | Arbitrated of {
      index : int;
      outcome : outcome;
      loser : outcome;
      voters : int;
      overturned : bool;
    }

type header = {
  core : string;
  program : string;
  cycles : int;
  seed : int;
  samples : int;
  prune : bool;
  audit : float;
  shards : int;
  batched : bool;
  epoch : int;
  fault_model : Fault_model.t;
  prng : string;
  shard_prng : string array;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Records: [model:4 bits | kind:4 bits][a:4 LE][b:4 LE]
   [crc32(first 9 bytes):4 LE]. The high nibble of the first byte pins
   the fault model the record was classified under (Fault_model.id);
   journals written before fault models existed carry nibble 0 = seu,
   so the layout is bit-compatible with every historical journal. *)

let record_size = 13

let kind_of_entry = function
  | Outcome (_, Benign) -> 0
  | Outcome (_, Latent) -> 1
  | Outcome (_, Sdc _) -> 2
  | Outcome (_, Skipped) -> 3
  | Outcome (_, Crashed) -> 4
  | Quarantine _ -> 5
  | Poisoned _ -> 6
  | Arbitrated _ -> 7

(* Arbitrated packs its provenance into the b word:
     bits 0..2   winner outcome kind (same coding as record kinds 0..4)
     bits 3..5   losing outcome kind
     bit  6      overturned (winner differs from the first-recorded verdict)
     bits 7..10  quorum ballot count (saturates at 15)
     bits 11..31 winner's Sdc detection cycle (saturates at 2^21 - 1)
   The loser's Sdc cycle is dropped — it lost the vote; only its kind
   matters for audit — so a losing [Sdc c] decodes as [Sdc 0]. *)
let outcome_kind = function
  | Benign -> 0
  | Latent -> 1
  | Sdc _ -> 2
  | Skipped -> 3
  | Crashed -> 4

let outcome_of_kind k arg =
  match k with
  | 0 -> Benign
  | 1 -> Latent
  | 2 -> Sdc arg
  | 3 -> Skipped
  | _ -> Crashed

let args_of_entry = function
  | Outcome (i, Sdc c) -> (i, c)
  | Outcome (i, _) -> (i, 0)
  | Quarantine m -> (m, 0)
  | Poisoned c -> (c, 0)
  | Arbitrated { index; outcome; loser; voters; overturned } ->
    let cycle = match outcome with Sdc c -> min c 0x1FFFFF | _ -> 0 in
    ( index,
      outcome_kind outcome
      lor (outcome_kind loser lsl 3)
      lor ((if overturned then 1 else 0) lsl 6)
      lor (min voters 15 lsl 7)
      lor (cycle lsl 11) )

let put32 buf pos v =
  for k = 0 to 3 do
    Bytes.set buf (pos + k) (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

let get32 buf pos =
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get buf (pos + k))
  done;
  !v

let encode_record ?(model = 0) buf entry =
  Bytes.set buf 0 (Char.chr (((model land 0xF) lsl 4) lor kind_of_entry entry));
  let a, b = args_of_entry entry in
  put32 buf 1 a;
  put32 buf 5 b;
  put32 buf 9 (Crc.bytes buf ~pos:0 ~len:9)

(* [None] on CRC mismatch or unknown kind (a torn or corrupt record).
   The model nibble is returned as-is, even for ids no decoder knows
   yet: a CRC-intact record from a future model is data to report, not
   corruption ({!fsck} surfaces unknown ids as problems). *)
let decode_record buf pos =
  let crc = get32 buf (pos + 9) in
  if crc <> Crc.bytes buf ~pos ~len:9 then None
  else
    let byte = Char.code (Bytes.get buf pos) in
    let model = byte lsr 4 in
    let a = get32 buf (pos + 1) and b = get32 buf (pos + 5) in
    match byte land 0xF with
    | 0 -> Some (model, Outcome (a, Benign))
    | 1 -> Some (model, Outcome (a, Latent))
    | 2 -> Some (model, Outcome (a, Sdc b))
    | 3 -> Some (model, Outcome (a, Skipped))
    | 4 -> Some (model, Outcome (a, Crashed))
    | 5 -> Some (model, Quarantine a)
    | 6 -> Some (model, Poisoned a)
    | 7 ->
      Some
        ( model,
          Arbitrated
            {
              index = a;
              outcome = outcome_of_kind (b land 0x7) (b lsr 11);
              loser = outcome_of_kind ((b lsr 3) land 0x7) 0;
              voters = (b lsr 7) land 0xF;
              overturned = b land 0x40 <> 0;
            } )
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Paths and atomic writes.                                            *)

let header_file dir = Filename.concat dir "header"
let active_file dir = Filename.concat dir "active.bin"
let segment_file dir i = Filename.concat dir (Printf.sprintf "seg-%06d.bin" i)

(* Filesystems that simply cannot fsync this descriptor (directories on
   some FS, odd mounts) degrade the journal to
   crash-safe-but-not-power-loss-safe — tolerable, and exactly what it
   was before fsync support. A failing fsync that *was* supported
   (ENOSPC, EIO) is different: the records the OS accepted may never
   reach the platter, so continuing would record verdicts that a power
   loss silently unrecords. Surface those as {!Error} and let the
   campaign fail cleanly and be resumed. *)
let fsync_fd fd =
  try Unix.fsync fd with
  | Unix.Unix_error ((Unix.EINVAL | Unix.EOPNOTSUPP | Unix.ENOSYS), _, _) -> ()
  | Unix.Unix_error (e, _, _) -> error "fsync failed: %s" (Unix.error_message e)

let fsync_channel oc =
  flush oc;
  fsync_fd (Unix.descr_of_out_channel oc)

(* A rename is only durable once the directory entry itself is on disk;
   fsync the directory after every rename that must survive power loss. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> fsync_fd fd)

(* Tempfile + rename: readers and resumers never observe a half-written
   file, and a kill mid-write leaves only a stale [.tmp] behind. The
   content is fsynced before the rename and the directory after it, so
   the renamed file is durable, not merely atomic. *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  fsync_channel oc;
  close_out oc;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  buf

(* ------------------------------------------------------------------ *)
(* Header serialization: key=value lines guarded by a trailing CRC.    *)

let magic = "pruning-verdict-journal v1"

let header_to_string h =
  let b = Buffer.create 256 in
  Buffer.add_string b (magic ^ "\n");
  let kv k v = Buffer.add_string b (Printf.sprintf "%s=%s\n" k v) in
  kv "core" h.core;
  kv "program" h.program;
  kv "cycles" (string_of_int h.cycles);
  kv "seed" (string_of_int h.seed);
  kv "samples" (string_of_int h.samples);
  kv "prune" (if h.prune then "1" else "0");
  (* %h is exact: the audit fraction must survive the round-trip
     bit-for-bit for resumed audit draws to replay identically. *)
  kv "audit" (Printf.sprintf "%h" h.audit);
  kv "shards" (string_of_int h.shards);
  kv "batched" (if h.batched then "1" else "0");
  kv "epoch" (string_of_int h.epoch);
  kv "fault_model" (Fault_model.name h.fault_model);
  kv "prng" h.prng;
  Array.iteri (fun i s -> kv (Printf.sprintf "shard%d" i) s) h.shard_prng;
  let body = Buffer.contents b in
  body ^ Printf.sprintf "crc=%08x\n" (Crc.string body)

let header_of_string ~what:dir s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> l <> "") lines in
  (match lines with
  | m :: _ when m = magic -> ()
  | _ -> error "%s: not a verdict journal (bad magic)" dir);
  let fields = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match String.index_opt line '=' with
      | None -> ()
      | Some i ->
        Hashtbl.replace fields (String.sub line 0 i)
          (String.sub line (i + 1) (String.length line - i - 1)))
    (List.tl lines);
  let get k =
    match Hashtbl.find_opt fields k with
    | Some v -> v
    | None -> error "%s: journal header is missing field %S" dir k
  in
  let crc_line = Printf.sprintf "crc=%s\n" (get "crc") in
  let body_len = String.length s - String.length crc_line in
  if body_len < 0 || String.sub s body_len (String.length crc_line) <> crc_line then
    error "%s: journal header CRC line is malformed" dir;
  if Printf.sprintf "%08x" (Crc.string (String.sub s 0 body_len)) <> get "crc" then
    error "%s: journal header CRC mismatch" dir;
  let int k =
    match int_of_string_opt (get k) with
    | Some v -> v
    | None -> error "%s: journal header field %S is not an integer" dir k
  in
  let shards = int "shards" in
  {
    core = get "core";
    program = get "program";
    cycles = int "cycles";
    seed = int "seed";
    samples = int "samples";
    prune = get "prune" = "1";
    audit =
      (match float_of_string_opt (get "audit") with
      | Some f -> f
      | None -> error "%s: journal header field \"audit\" is not a float" dir);
    shards;
    batched = get "batched" = "1";
    (* Journals written before coordinator epochs existed have no epoch
       field; they are generation zero. *)
    epoch =
      (match Hashtbl.find_opt fields "epoch" with
      | None -> 0
      | Some v -> (
        match int_of_string_opt v with
        | Some e -> e
        | None -> error "%s: journal header field \"epoch\" is not an integer" dir));
    (* Same backward-compat rule as epoch: journals written before fault
       models existed are SEU journals. *)
    fault_model =
      (match Hashtbl.find_opt fields "fault_model" with
      | None -> Fault_model.Seu
      | Some v -> (
        match Fault_model.of_string v with
        | Ok m -> m
        | Error msg -> error "%s: journal header field \"fault_model\": %s" dir msg));
    prng = get "prng";
    shard_prng = Array.init shards (fun i -> get (Printf.sprintf "shard%d" i));
  }

(* Resuming (or serving) under a different invocation would silently
   change what the recorded verdicts mean; refuse with a message naming
   every mismatched identity field. *)
let require_match ~what (h : header) (want : header) =
  let problems = ref [] in
  let chk name same render_h render_w =
    if not same then
      problems :=
        Printf.sprintf "%s: journal has %s, invocation has %s" name render_h render_w :: !problems
  in
  chk "core" (h.core = want.core) h.core want.core;
  chk "program" (h.program = want.program) h.program want.program;
  chk "cycles" (h.cycles = want.cycles) (string_of_int h.cycles) (string_of_int want.cycles);
  chk "seed" (h.seed = want.seed) (string_of_int h.seed) (string_of_int want.seed);
  chk "samples" (h.samples = want.samples) (string_of_int h.samples) (string_of_int want.samples);
  chk "prune" (h.prune = want.prune) (string_of_bool h.prune) (string_of_bool want.prune);
  chk "audit" (h.audit = want.audit)
    (Printf.sprintf "%g" h.audit)
    (Printf.sprintf "%g" want.audit);
  chk "shards (--jobs)" (h.shards = want.shards) (string_of_int h.shards)
    (string_of_int want.shards);
  chk "batched" (h.batched = want.batched) (string_of_bool h.batched) (string_of_bool want.batched);
  chk "fault_model"
    (h.fault_model = want.fault_model)
    (Fault_model.name h.fault_model)
    (Fault_model.name want.fault_model);
  chk "prng" (h.prng = want.prng) h.prng want.prng;
  (* The epoch is deliberately NOT checked: it is the coordinator's
     restart generation, not campaign identity — every supervised
     failover resumes under a bumped epoch by design. *)
  if !problems <> [] then
    error "%s: cannot resume, the journal was written by a different campaign:\n  %s" what
      (String.concat "\n  " (List.rev !problems))

(* Campaign identity modulo the restart generation: what a worker's
   engine cache may key on, and what decides whether two headers
   describe the same verdicts. *)
let same_campaign (a : header) (b : header) =
  { a with epoch = 0 } = { b with epoch = 0 }

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)

type writer = {
  dir : string;
  records_per_segment : int;
  model : int;  (* Fault_model.id of the header's model, stamped on every record *)
  lock : Mutex.t;
  chaos : Chaos.t option;
  mutable chan : out_channel;  (* the active segment *)
  mutable in_active : int;  (* records in the active segment *)
  mutable next_segment : int;
  mutable closed : bool;
  mutable failed : string option;  (* first failure; all later appends refuse *)
  mutable slow_until : float;  (* Mono deadline while the writer is degraded *)
}

let default_rps = 4096

(* An append slower than this marks the writer degraded for the cooldown
   window; {!stalled} then reads true and the coordinator answers [Wait]
   instead of leasing more chunks — backpressure instead of ballooning
   in-flight state over a struggling disk. *)
let slow_append_threshold = 0.25
let slow_cooldown = 2.0

(* Transient real ENOSPC: pause and retry this many times (an operator
   or log rotation freeing space mid-campaign) before declaring the
   sticky failure that [--resume] recovers from. *)
let enospc_retries = 8
let enospc_pause = 0.25

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* strerror(ENOSPC) is "No space left on device"; Sys_error gives us only
   the rendered message, so match on its distinctive word. *)
let is_no_space msg = string_contains msg "space"

(* Disk failures are sticky: after the first failed write/fsync/rename
   the writer refuses every further append with the original message.
   Limping on past a failure would leave silent holes in the verdict
   stream; failing fast keeps the journal a truthful prefix that
   [resume] completes from. *)
let fail w fmt =
  Printf.ksprintf
    (fun msg ->
      let msg = w.dir ^ ": " ^ msg in
      w.failed <- Some msg;
      raise (Error msg))
    fmt

let chaos_draw w site =
  match w.chaos with
  | None -> Chaos.Pass
  | Some c -> Chaos.draw c site

let rotate w =
  (match chaos_draw w Chaos.Journal_fsync with
  | Chaos.Fsync_fail -> fail w "injected fsync failure sealing segment %d" w.next_segment
  | _ -> ());
  (* Push the segment's bytes all the way to disk before the seal
     rename: [flush] alone only hands them to the OS, and a power loss
     after the rename would otherwise leave a "finalized" segment with
     missing tail records — indistinguishable from corruption. *)
  fsync_channel w.chan;
  close_out w.chan;
  (* The cruellest instant for a crash: the active segment is closed but
     not yet sealed under its final name. *)
  (match chaos_draw w Chaos.Seal with
  | Chaos.Kill -> Chaos.kill_self ()
  | Chaos.Stall s -> Unix.sleepf s
  | _ -> ());
  (match chaos_draw w Chaos.Journal_rename with
  | Chaos.Torn_rename ->
    (* The seal rename is lost, as if power died between the close and
       the rename: the over-full active segment stays behind, which
       [resume] seals on reopen. *)
    fail w "injected torn rename sealing segment %d" w.next_segment
  | _ -> Sys.rename (active_file w.dir) (segment_file w.dir w.next_segment));
  fsync_dir w.dir;
  w.next_segment <- w.next_segment + 1;
  w.chan <- open_out_bin (active_file w.dir);
  w.in_active <- 0

let append w entry =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) @@ fun () ->
  if w.closed then error "%s: journal writer is closed" w.dir;
  (match w.failed with Some msg -> raise (Error msg) | None -> ());
  let t0 = Mono.now () in
  let mark_slow () = w.slow_until <- Mono.now () +. slow_cooldown in
  let buf = Bytes.create record_size in
  encode_record ~model:w.model buf entry;
  (* Transient disk pressure: wait it out, re-consulting the plan each
     round. The chaos budget bounds the loop; the writer is marked
     degraded so the coordinator stops leasing until it drains. *)
  let rec disk_pressure () =
    match chaos_draw w Chaos.Disk with
    | Chaos.Disk_full ->
      mark_slow ();
      Unix.sleepf 0.02;
      disk_pressure ()
    | Chaos.Stall s ->
      mark_slow ();
      Unix.sleepf s
    | _ -> ()
  in
  disk_pressure ();
  (match chaos_draw w Chaos.Journal_write with
  | Chaos.Short_write f ->
    (* Leave the torn prefix a crash mid-write would leave — [resume]
       must truncate it — then fail like the disk just died. *)
    let keep = max 0 (min (record_size - 1) (int_of_float (f *. float_of_int record_size))) in
    (try
       output_bytes w.chan (Bytes.sub buf 0 keep);
       flush w.chan
     with Sys_error _ -> ());
    fail w "injected short write (%d of %d bytes)" keep record_size
  | Chaos.Io_error e -> fail w "injected %s on journal append" (Unix.error_message e)
  | _ -> ());
  (match output_bytes w.chan buf with
  | () -> ()
  | exception Sys_error msg -> fail w "journal append failed: %s" msg);
  (* Flush every record: a SIGKILL then loses at most the record the
     OS was handed mid-write (the torn tail resume truncates), never a
     buffered batch. A real ENOSPC here is retried for a bounded while
     (space is often freed within seconds) before the sticky failure
     that --resume recovers from; the channel buffer keeps the
     undelivered bytes across retries, so no record is torn by it. *)
  let rec flush_retry tries =
    match flush w.chan with
    | () -> ()
    | exception Sys_error msg when is_no_space msg && tries < enospc_retries ->
      mark_slow ();
      Unix.sleepf enospc_pause;
      flush_retry (tries + 1)
    | exception Sys_error msg -> fail w "journal append failed: %s" msg
  in
  flush_retry 0;
  w.in_active <- w.in_active + 1;
  (match
     if w.in_active >= w.records_per_segment then rotate w
   with
  | () -> ()
  | exception Sys_error msg -> fail w "segment rotation failed: %s" msg
  | exception Error msg ->
    w.failed <- Some msg;
    raise (Error msg));
  if Mono.now () -. t0 > slow_append_threshold then mark_slow ()

let stalled w = Mono.now () < w.slow_until

let close w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) @@ fun () ->
  if not w.closed then begin
    w.closed <- true;
    match close_out w.chan with
    | () -> ()
    | exception Sys_error _ when w.failed <> None -> ()
  end

let exists ~dir = Sys.file_exists (header_file dir)

let create ?(records_per_segment = default_rps) ?chaos ~dir header =
  if records_per_segment <= 0 then invalid_arg "Journal.create: records_per_segment must be positive";
  if exists ~dir then
    error "%s: a journal already exists here (resume it with --resume, or remove it)" dir;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_atomic (header_file dir) (header_to_string header);
  {
    dir;
    records_per_segment;
    model = Fault_model.id header.fault_model;
    lock = Mutex.create ();
    chaos;
    chan = open_out_bin (active_file dir);
    in_active = 0;
    next_segment = 0;
    closed = false;
    failed = None;
    slow_until = neg_infinity;
  }

(* ------------------------------------------------------------------ *)
(* Reading back.                                                       *)

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f = String.length "seg-000000.bin"
         && String.sub f 0 4 = "seg-"
         && Filename.check_suffix f ".bin")
  |> List.sort compare

(* Decode a whole segment buffer into (model, entry) pairs. [strict]
   (finalized segments) raises on any damage; otherwise (the active
   segment) decoding stops at the first short or corrupt record and the
   number of dropped tail bytes is returned alongside the intact
   prefix. *)
let decode_buffer ~strict ~what buf =
  let len = Bytes.length buf in
  let n_whole = len / record_size in
  let out = ref [] in
  let good = ref 0 in
  (try
     for r = 0 to n_whole - 1 do
       match decode_record buf (r * record_size) with
       | Some e ->
         out := e :: !out;
         incr good
       | None ->
         if strict then error "%s: corrupt record %d in finalized segment" what r;
         raise Exit
     done;
     if strict && len mod record_size <> 0 then
       error "%s: finalized segment has a partial trailing record" what
   with Exit -> ());
  (List.rev !out, len - (!good * record_size))

let read_journal ~dir =
  if not (exists ~dir) then error "%s: no journal here (missing header)" dir;
  let header = header_of_string ~what:dir (Bytes.to_string (read_file (header_file dir))) in
  let segments = list_segments dir in
  let finalized =
    List.concat_map
      (fun seg ->
        let entries, _ =
          decode_buffer ~strict:true ~what:(Filename.concat dir seg)
            (read_file (Filename.concat dir seg))
        in
        entries)
      segments
  in
  let active, dropped =
    if Sys.file_exists (active_file dir) then
      decode_buffer ~strict:false ~what:(active_file dir) (read_file (active_file dir))
    else ([], 0)
  in
  (header, finalized, active, dropped, List.length segments)

let read_header ~dir =
  if not (exists ~dir) then error "%s: no journal here (missing header)" dir;
  header_of_string ~what:dir (Bytes.to_string (read_file (header_file dir)))

let load ~dir =
  let header, finalized, active, dropped, _ = read_journal ~dir in
  (header, Array.of_list (List.map snd (finalized @ active)), dropped)

let resume ?(records_per_segment = default_rps) ?chaos ~dir () =
  if records_per_segment <= 0 then invalid_arg "Journal.resume: records_per_segment must be positive";
  let header, finalized, active, dropped, n_segments = read_journal ~dir in
  (* Truncate the torn tail by atomically rewriting the active segment
     with only its intact records — each re-encoded under its own model
     nibble, so the rewrite is byte-preserving — then reopen it for
     appending. *)
  let buf = Bytes.create (List.length active * record_size) in
  List.iteri
    (fun i (model, e) ->
      let rec_buf = Bytes.create record_size in
      encode_record ~model rec_buf e;
      Bytes.blit rec_buf 0 buf (i * record_size) record_size)
    active;
  write_atomic (active_file dir) (Bytes.to_string buf);
  let w =
    {
      dir;
      records_per_segment;
      model = Fault_model.id header.fault_model;
      lock = Mutex.create ();
      chaos;
      chan = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 (active_file dir);
      in_active = List.length active;
      next_segment = n_segments;
      closed = false;
      failed = None;
      slow_until = neg_infinity;
    }
  in
  if w.in_active >= w.records_per_segment then rotate w;
  (header, Array.of_list (List.map snd (finalized @ active)), dropped, w)

(* Atomic header replacement, for epoch bumps on supervised failover.
   The header file is independent of the segments, so this never races
   an append; write_atomic means a crash mid-bump leaves the old header
   (same campaign, stale epoch — harmless, the next resume bumps past
   it). *)
let update_header ~dir header =
  if not (exists ~dir) then error "%s: no journal here (missing header)" dir;
  write_atomic (header_file dir) (header_to_string header)

(* ------------------------------------------------------------------ *)
(* fsck: offline, read-only trust check.                                *)

type fsck_report = {
  fsck_header : header option;
  fsck_segments : int;
  fsck_records : int;
  fsck_active : int option;
  fsck_torn_bytes : int;
  fsck_counts : int array;
  fsck_models : (int * int array) list;
  fsck_covered : int;
  fsck_overturned : int;
  fsck_arb_ballots : int;
  fsck_errors : (string * string) list;
}

let fsck ~dir =
  let errors = ref [] in
  let err file msg = errors := (file, msg) :: !errors in
  let header =
    if not (Sys.file_exists (header_file dir)) then begin
      err "header" "missing header file";
      None
    end
    else
      match header_of_string ~what:dir (Bytes.to_string (read_file (header_file dir))) with
      | h -> Some h
      | exception Error msg -> err "header" msg; None
  in
  let header_model = Option.map (fun h -> Fault_model.id h.fault_model) header in
  let counts = Array.make 8 0 in
  let model_counts : (int, int array) Hashtbl.t = Hashtbl.create 4 in
  let unknown_models = Hashtbl.create 4 in
  let foreign_models = Hashtbl.create 4 in
  let covered = Hashtbl.create 1024 in
  let records = ref 0 in
  let overturned = ref 0 in
  let arb_ballots = ref 0 in
  let scan file entries =
    List.iter
      (fun (model, e) ->
        incr records;
        counts.(kind_of_entry e) <- counts.(kind_of_entry e) + 1;
        let mc =
          match Hashtbl.find_opt model_counts model with
          | Some a -> a
          | None ->
            let a = Array.make 8 0 in
            Hashtbl.replace model_counts model a;
            a
        in
        mc.(kind_of_entry e) <- mc.(kind_of_entry e) + 1;
        (* Unknown or header-disagreeing model nibbles are problems to
           report, never crashes: the record itself is CRC-intact. One
           problem row per (file, model) keeps the report readable. *)
        (if Fault_model.base_name_of_id model = None && not (Hashtbl.mem unknown_models (file, model))
         then begin
           Hashtbl.replace unknown_models (file, model) ();
           err file (Printf.sprintf "records carry unknown fault-model id %d" model)
         end);
        (match header_model with
        | Some hm when model <> hm && not (Hashtbl.mem foreign_models (file, model)) ->
          Hashtbl.replace foreign_models (file, model) ();
          err file
            (Printf.sprintf "records carry fault-model id %d but the header pins %s" model
               (match header with Some h -> Fault_model.name h.fault_model | None -> "?"))
        | _ -> ());
        match e with
        | Outcome (i, _) -> Hashtbl.replace covered i ()
        | Arbitrated a ->
          Hashtbl.replace covered a.index ();
          arb_ballots := !arb_ballots + a.voters;
          if a.overturned then begin
            incr overturned;
            (* The override supersedes the first-recorded Outcome already
               tallied above: move one verdict from the loser's kind to
               the winner's, so the verdict summary matches what a
               resume (which applies overrides) reports. *)
            let lk = kind_of_entry (Outcome (a.index, a.loser)) in
            let wk = kind_of_entry (Outcome (a.index, a.outcome)) in
            (* Clamped: in a journal whose losing Outcome record was lost
               with a torn segment there is nothing to move away from. *)
            counts.(lk) <- max 0 (counts.(lk) - 1);
            counts.(wk) <- counts.(wk) + 1
          end
        | _ -> ())
      entries
  in
  let segments =
    match list_segments dir with
    | segs -> segs
    | exception Sys_error msg -> err dir msg; []
  in
  List.iter
    (fun seg ->
      let path = Filename.concat dir seg in
      match decode_buffer ~strict:true ~what:path (read_file path) with
      | entries, _ -> scan seg entries
      | exception Error msg -> err seg msg
      | exception Sys_error msg -> err seg msg)
    segments;
  let active, torn =
    if Sys.file_exists (active_file dir) then
      match decode_buffer ~strict:false ~what:(active_file dir) (read_file (active_file dir)) with
      | entries, dropped ->
        scan "active.bin" entries;
        (Some (List.length entries), dropped)
      | exception Sys_error msg -> err "active.bin" msg; (None, 0)
    else (None, 0)
  in
  {
    fsck_header = header;
    fsck_segments = List.length segments;
    fsck_records = !records;
    fsck_active = active;
    fsck_torn_bytes = torn;
    fsck_counts = counts;
    fsck_models =
      Hashtbl.fold (fun m a acc -> (m, a) :: acc) model_counts [] |> List.sort compare;
    fsck_covered = Hashtbl.length covered;
    fsck_overturned = !overturned;
    fsck_arb_ballots = !arb_ballots;
    fsck_errors = List.rev !errors;
  }
