(** The fault space of a HAFI campaign: (flip-flops x clock cycles), per
    the paper's system model. An SEU manifests as a state flip of one
    flip-flop in one cycle. *)

type t = {
  netlist : Pruning_netlist.Netlist.t;
  flops : Pruning_netlist.Netlist.flop array;  (** flops under injection *)
  cycles : int;
  index : int array;
      (** flop_id -> dense flop index, [-1] for flops outside the space
          (precomputed so {!flop_index} is O(1)) *)
}

val full : Pruning_netlist.Netlist.t -> cycles:int -> t
(** Every flip-flop ("FF" in the paper's tables). *)

val without_prefix : Pruning_netlist.Netlist.t -> prefix:string -> cycles:int -> t
(** Excluding a named register bank, e.g. the register file ("FF w/o RF"). *)

val size : t -> int
(** |flops| x |cycles|. *)

val flop_index : t -> int -> int option
(** Map a netlist [flop_id] to this space's dense flop index. *)
