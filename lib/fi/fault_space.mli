(** The fault space of a HAFI campaign. Historically (flip-flops x clock
    cycles), per the paper's system model: an SEU manifests as a state
    flip of one flip-flop in one cycle. With first-class fault models
    the space generalizes to (keys x cycles), where the {!Fault_model.t}
    decides what a key ranges over ({!draw_key}) and what corruption it
    denotes ({!expand}, {!hold}). [Seu] keys are netlist flop ids, so
    SEU campaigns are bit-identical to the historical behavior. *)

type t = {
  netlist : Pruning_netlist.Netlist.t;
  flops : Pruning_netlist.Netlist.flop array;  (** flops under injection *)
  cycles : int;
  index : int array;
      (** flop_id -> dense flop index, [-1] for flops outside the space
          (precomputed so {!flop_index} is O(1)) *)
  model : Fault_model.t;  (** the fault model this space enumerates *)
  cone_cache : (int, int array) Hashtbl.t;
      (** per-gate SET expansion cache; guard with [cone_lock] *)
  cone_lock : Mutex.t;
}

val full : ?model:Fault_model.t -> Pruning_netlist.Netlist.t -> cycles:int -> t
(** Every flip-flop ("FF" in the paper's tables). [model] defaults to
    [Seu]; raises [Invalid_argument] for an invalid model (e.g. an MBU
    cluster larger than the flop count). *)

val without_prefix :
  ?model:Fault_model.t -> Pruning_netlist.Netlist.t -> prefix:string -> cycles:int -> t
(** Excluding a named register bank, e.g. the register file ("FF w/o RF"). *)

val n_keys : t -> int
(** Distinct fault keys the model enumerates: |flops| for [Seu] and
    [Intermittent], |gates| for [Set], |flops| - K + 1 for [Mbu K]. *)

val size : t -> int
(** {!n_keys} x cycles. *)

val flop_index : t -> int -> int option
(** Map a netlist [flop_id] to this space's dense flop index. *)

val draw_key : t -> int -> int
(** The key for a uniform draw [i] in [0, {!n_keys}): the netlist flop
    id for flop-keyed models (preserving historical SEU sampling), the
    gate index for [Set], the cluster start position for [Mbu]. *)

val expand : t -> int -> int array
(** The netlist flop ids a key corrupts at the injection cycle: the
    key itself for [Seu]/[Intermittent], the flops latching from the
    gate's output cone for [Set] (possibly empty — a pulse nothing
    latches, trivially benign), the K adjacent flops for [Mbu K]. SET
    expansions are cached per gate and safe to query concurrently. *)

val hold : t -> int
(** Cycles the fault is re-armed for: N for [Intermittent N], else 1. *)

val lift_pruned : t -> pruned:(flop_id:int -> cycle:int -> bool) -> flop_id:int -> cycle:int -> bool
(** Lift a per-(flop, cycle) SEU prune predicate to this model's keys
    ([~flop_id] is the fault {e key}). Sound by construction: prunes
    only instances provably equivalent to covered SEUs — pass-through
    for [Seu]; every forced cycle masked for [Intermittent]; singleton
    expansions only for [Set]; never for [Mbu K >= 2] (one-cycle
    masking terms do not compose across simultaneous flips). *)

val lift_masking :
  t -> masking:(flop_id:int -> cycle:int -> 'a list) -> flop_id:int -> cycle:int -> 'a list
(** The violation-attribution counterpart of {!lift_pruned}: the union
    of the per-member, per-forced-cycle masking terms the lifted prune
    rests on. *)
