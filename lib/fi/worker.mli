(** A stateless campaign worker.

    A worker connects to a {!Coordinator}, learns the campaign identity
    from the [Welcome] header, builds (or reuses) a local engine through
    the caller's [resolve] callback, re-derives the exact fault list from
    the header's pinned PRNG state ({!Campaign.draw_samples}), and then
    pulls chunk leases and streams verdicts back until the coordinator
    says [Done].

    Workers hold no campaign state the coordinator depends on: killing
    one — SIGKILL included — costs at most the un-submitted remainder of
    its current chunk, which the coordinator re-dispatches. Conversely a
    worker outliving its coordinator reconnects with capped exponential
    backoff ({!Pruning_util.Backoff}) and gives up cleanly after
    [max_reconnects] consecutive failures.

    Verdict production reuses the single-process engines unchanged
    (scalar {!Campaign.inject_with}, the lane-parallel
    {!Campaign.inject_batch}, the activity-gated
    {!Campaign.inject_delta} or the batched-delta
    {!Campaign.inject_delta_batch}); since all four produce
    bit-identical verdicts, a fleet may freely mix workers running
    different kernels. The delta-family workers record the golden
    baseline once per campaign identity (cached by header across
    reconnects and chunk re-execution; see {!Campaign.golden_trace}).
    Experiments are
    supervised exactly like {!Durable}: a raising experiment is retried
    on a fresh system with backoff, a persistent failure is reported as
    [Crashed]. *)

type engine = {
  campaign : Campaign.t;
  space : Fault_space.t;
  skip : (flop_id:int -> cycle:int -> bool) option;
      (** the local pruner; must be the same deterministic predicate on
          every worker (quarantine-free), or verdicts will mismatch *)
  kernel : Campaign.kernel;
      (** which classification engine this worker drives; any mix across
          a fleet yields identical verdicts *)
}

type ended =
  | Campaign_done  (** the coordinator reported the campaign complete *)
  | Stopped  (** [should_stop] returned true *)
  | Gave_up of string  (** [max_reconnects] consecutive failures *)

type report = {
  ended : ended;
  chunks : int;  (** chunks fully processed and acknowledged *)
  submitted : int;  (** verdict records sent *)
  crashes : int;  (** experiments reported [Crashed] *)
  reconnects : int;  (** sessions lost and re-established *)
  redelivered : int;  (** Results frames replayed into a new epoch *)
  epochs : int;  (** distinct coordinator generations handshook with *)
  suspicion : int;
      (** this worker's reputation score as reported by the last
          [Welcome] — non-zero means the coordinator has evidence
          against this name (arbitration losses, corrupt frames, lease
          expiries) *)
}

val run :
  host:string ->
  port:int ->
  resolve:(Journal.header -> engine) ->
  ?name:string ->
  ?heartbeat:float ->
  ?recv_timeout:float ->
  ?retries:int ->
  ?retry_backoff:Pruning_util.Backoff.policy ->
  ?reconnect_backoff:Pruning_util.Backoff.policy ->
  ?max_reconnects:int ->
  ?results_per_frame:int ->
  ?replay_frames:int ->
  ?readdress:(unit -> (string * int) option) ->
  ?should_stop:(unit -> bool) ->
  ?chaos:Chaos.t ->
  ?fault:(chunk_id:int -> index:int -> attempt:int -> unit) ->
  unit ->
  report
(** Work for the coordinator at [host]:[port] until the campaign is done.

    [resolve] builds the engine for a campaign identity — typically a
    core/program lookup plus a deterministic MATE-pruner build when
    [header.prune] is set; it runs once per distinct header (cached
    across reconnects) and may raise to refuse an unknown identity
    (the exception escapes [run]). [name] (default ["worker-PID"])
    identifies the worker in coordinator logs and must be unique per
    connection. [heartbeat] (default [1.]) is the maximum silence
    between frames while computing; keep it well under the
    coordinator's lease. [recv_timeout] (default [30.]) is the read
    deadline mirroring the coordinator's write timeout: a coordinator
    silent that long mid-reply counts as a lost session and the worker
    backs off and reconnects instead of hanging. [retries] /
    [retry_backoff] supervise each experiment like {!Durable.run}.
    [reconnect_backoff] / [max_reconnects] (default 8) pace session
    re-establishment — the counter resets after every successful
    handshake. [results_per_frame] (default 64) batches verdict
    streaming. [should_stop] is polled between experiments for
    cooperative shutdown.

    {b Coordinator failover.} The worker remembers the coordinator
    epoch it last handshook with and announces it in every [Hello].
    When a reconnect lands on a {e different} epoch (a supervised
    coordinator died and was resumed), the worker drops its stale lease
    assumptions and re-delivers its [replay_frames] (default 32) most
    recent Results frames — verdicts the dead coordinator journaled
    deduplicate, verdicts it lost are recovered without re-running the
    experiments. [readdress] (called before every connection attempt,
    exceptions treated as "no change") lets a worker follow a
    coordinator that came back on a different port, e.g. by re-reading
    the port file a supervised [serve] rewrites on every restart.

    [chaos] arms this worker's deterministic fault plan: network chaos
    on every frame sent and received, execution chaos around every
    experiment attempt (a {!Chaos.Injected} crash is retried without
    consuming the retry budget, so chaos never manufactures [Crashed]
    verdicts), and duplicate-verdict replay at results flushes. [fault]
    is a test-only hook called before every experiment attempt; an
    exception it raises is handled exactly like a crashed experiment. *)
