module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim

let output_wires nl =
  List.concat_map
    (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
    nl.Netlist.outputs
  |> Array.of_list

let observe nl out_wires sim =
  let flops = nl.Netlist.flops in
  let nf = Array.length flops in
  let no = Array.length out_wires in
  let snapshot = Array.make (nf + no) false in
  for i = 0 to nf - 1 do
    snapshot.(i) <- Sim.peek sim flops.(i).Netlist.d
  done;
  for i = 0 to no - 1 do
    snapshot.(nf + i) <- Sim.peek sim out_wires.(i)
  done;
  snapshot

let one_cycle_benign sim ~flop_id =
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  let golden = observe nl out_wires sim in
  let original = Sim.get_flop sim flop_id in
  Sim.set_flop sim flop_id (not original);
  Sim.eval sim;
  let faulty = observe nl out_wires sim in
  Sim.set_flop sim flop_id original;
  Sim.eval sim;
  golden = faulty

let defers sim ~flop_id =
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  let flops = nl.Netlist.flops in
  let own = flops.(flop_id) in
  let golden = observe nl out_wires sim in
  let original = Sim.get_flop sim flop_id in
  Sim.set_flop sim flop_id (not original);
  Sim.eval sim;
  let faulty = observe nl out_wires sim in
  let self_d = Sim.peek sim own.Netlist.d in
  Sim.set_flop sim flop_id original;
  Sim.eval sim;
  (* Everything but the flop's own D must match; the own D must carry the
     flipped value forward, and would have carried the original one in the
     golden run (a reload that merely coincides with the flip is an
     overwrite, not a deferral). *)
  let nf = Array.length flops in
  let ok = ref (self_d = not original && golden.(flop_id) = original) in
  for i = 0 to nf - 1 do
    if i <> flop_id && faulty.(i) <> golden.(i) then ok := false
  done;
  for i = nf to nf + Array.length out_wires - 1 do
    if faulty.(i) <> golden.(i) then ok := false
  done;
  !ok

let pair_benign sim ~flop_a ~flop_b =
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  let golden = observe nl out_wires sim in
  let va = Sim.get_flop sim flop_a and vb = Sim.get_flop sim flop_b in
  Sim.set_flop sim flop_a (not va);
  Sim.set_flop sim flop_b (not vb);
  Sim.eval sim;
  let faulty = observe nl out_wires sim in
  Sim.set_flop sim flop_a va;
  Sim.set_flop sim flop_b vb;
  Sim.eval sim;
  golden = faulty

let multi_benign sim ~flop_ids =
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  let golden = observe nl out_wires sim in
  let originals = List.map (fun f -> (f, Sim.get_flop sim f)) flop_ids in
  List.iter (fun (f, v) -> Sim.set_flop sim f (not v)) originals;
  Sim.eval sim;
  let faulty = observe nl out_wires sim in
  List.iter (fun (f, v) -> Sim.set_flop sim f v) originals;
  Sim.eval sim;
  golden = faulty

let sustained_benign sim ~flop_id ~hold =
  if hold < 1 then invalid_arg "Oracle.sustained_benign: hold must be positive";
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  let restore = Sim.save_state sim in
  (* Golden observables and the flop's golden per-cycle value. *)
  let golden =
    Array.init hold (fun _ ->
        let v = Sim.get_flop sim flop_id in
        Sim.eval sim;
        let obs = observe nl out_wires sim in
        Sim.latch sim;
        (v, obs))
  in
  restore ();
  (* Faulty run: force the complement of the golden value each cycle. *)
  let benign = ref true in
  Array.iter
    (fun (golden_v, golden_obs) ->
      if !benign then begin
        Sim.set_flop sim flop_id (not golden_v);
        Sim.eval sim;
        (* Observe with the golden flop value restored virtually: the
           upset is in the flop itself; its victims are the D inputs and
           outputs, which [observe] covers. *)
        if observe nl out_wires sim <> golden_obs then benign := false else Sim.latch sim
      end)
    golden;
  restore ();
  Sim.eval sim;
  !benign

let sweep sim ~flops ~cycles =
  let nl = Sim.netlist sim in
  let out_wires = output_wires nl in
  Array.init cycles (fun _ ->
      Sim.eval sim;
      let golden = observe nl out_wires sim in
      let verdicts =
        Array.map
          (fun (f : Netlist.flop) ->
            let original = Sim.get_flop sim f.Netlist.flop_id in
            Sim.set_flop sim f.Netlist.flop_id (not original);
            Sim.eval sim;
            let faulty = observe nl out_wires sim in
            Sim.set_flop sim f.Netlist.flop_id original;
            faulty = golden)
          flops
      in
      Sim.eval sim;
      Sim.latch sim;
      verdicts)
