module Netlist = Pruning_netlist.Netlist

type t = {
  netlist : Netlist.t;
  flops : Netlist.flop array;
  cycles : int;
  index : int array;
}

let check_cycles cycles = if cycles <= 0 then invalid_arg "Fault_space: cycles must be positive"

(* Dense flop_id -> space-index table, so lookups are O(1) instead of a
   linear scan per fault (campaign skip predicates call this per sample). *)
let make_index (netlist : Netlist.t) flops =
  let max_id =
    Array.fold_left (fun acc (f : Netlist.flop) -> max acc f.Netlist.flop_id) (-1) netlist.Netlist.flops
  in
  let table = Array.make (max_id + 1) (-1) in
  Array.iteri (fun i (f : Netlist.flop) -> table.(f.Netlist.flop_id) <- i) flops;
  table

let full netlist ~cycles =
  check_cycles cycles;
  let flops = Array.copy netlist.Netlist.flops in
  { netlist; flops; cycles; index = make_index netlist flops }

let without_prefix netlist ~prefix ~cycles =
  check_cycles cycles;
  let flops = Array.of_list (Netlist.flops_excluding netlist ~prefix) in
  { netlist; flops; cycles; index = make_index netlist flops }

let size t = Array.length t.flops * t.cycles

let flop_index t flop_id =
  if flop_id < 0 || flop_id >= Array.length t.index then None
  else
    match t.index.(flop_id) with
    | -1 -> None
    | i -> Some i
