module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone

type t = {
  netlist : Netlist.t;
  flops : Netlist.flop array;
  cycles : int;
  index : int array;
  model : Fault_model.t;
  cone_cache : (int, int array) Hashtbl.t;
  cone_lock : Mutex.t;
}

let check_cycles cycles = if cycles <= 0 then invalid_arg "Fault_space: cycles must be positive"

(* Dense flop_id -> space-index table, so lookups are O(1) instead of a
   linear scan per fault (campaign skip predicates call this per sample). *)
let make_index (netlist : Netlist.t) flops =
  let max_id =
    Array.fold_left (fun acc (f : Netlist.flop) -> max acc f.Netlist.flop_id) (-1) netlist.Netlist.flops
  in
  let table = Array.make (max_id + 1) (-1) in
  Array.iteri (fun i (f : Netlist.flop) -> table.(f.Netlist.flop_id) <- i) flops;
  table

let check_model model flops =
  Fault_model.validate model;
  match model with
  | Fault_model.Mbu k when k > Array.length flops ->
    invalid_arg
      (Printf.sprintf "Fault_space: MBU cluster size %d exceeds the %d flops in the space" k
         (Array.length flops))
  | _ -> ()

let full ?(model = Fault_model.Seu) netlist ~cycles =
  check_cycles cycles;
  let flops = Array.copy netlist.Netlist.flops in
  check_model model flops;
  {
    netlist;
    flops;
    cycles;
    index = make_index netlist flops;
    model;
    cone_cache = Hashtbl.create 64;
    cone_lock = Mutex.create ();
  }

let without_prefix ?(model = Fault_model.Seu) netlist ~prefix ~cycles =
  check_cycles cycles;
  let flops = Array.of_list (Netlist.flops_excluding netlist ~prefix) in
  check_model model flops;
  {
    netlist;
    flops;
    cycles;
    index = make_index netlist flops;
    model;
    cone_cache = Hashtbl.create 64;
    cone_lock = Mutex.create ();
  }

(* How many distinct keys the model enumerates: what the sampler draws
   its first coordinate from. *)
let n_keys t =
  match t.model with
  | Fault_model.Seu | Fault_model.Intermittent _ -> Array.length t.flops
  | Fault_model.Set -> Array.length t.netlist.Netlist.gates
  | Fault_model.Mbu k -> Array.length t.flops - k + 1

let size t = n_keys t * t.cycles

let flop_index t flop_id =
  if flop_id < 0 || flop_id >= Array.length t.index then None
  else
    match t.index.(flop_id) with
    | -1 -> None
    | i -> Some i

(* The i-th key, for [i] uniform in [0, n_keys): for the flop-keyed
   models the key is the netlist flop_id (so SEU sampling is
   bit-identical to the historical draw); for SET it is the gate index
   and for MBU the cluster's start position in the space flop order. *)
let draw_key t i =
  match t.model with
  | Fault_model.Seu | Fault_model.Intermittent _ -> t.flops.(i).Netlist.flop_id
  | Fault_model.Set | Fault_model.Mbu _ -> i

(* SET expansion: the flop ids whose D pin lies in the gate output's
   fault cone — the multi-flop SEU set that would latch the corrupted
   value, per the RTL representation of gate-level SETs. Cached per
   gate (cone computation walks the netlist) and mutex-guarded: durable
   scalar shards consult skip predicates from several domains. *)
let set_members t gate_idx =
  Mutex.lock t.cone_lock;
  let cached = Hashtbl.find_opt t.cone_cache gate_idx in
  Mutex.unlock t.cone_lock;
  match cached with
  | Some m -> m
  | None ->
    let gate = t.netlist.Netlist.gates.(gate_idx) in
    let cone = Cone.compute t.netlist gate.Netlist.output in
    let members = Array.of_list (List.sort_uniq compare cone.Cone.sinks_flops) in
    Mutex.lock t.cone_lock;
    Hashtbl.replace t.cone_cache gate_idx members;
    Mutex.unlock t.cone_lock;
    members

let check_key t key =
  if key < 0 || key >= n_keys t then
    invalid_arg (Printf.sprintf "Fault_space: key %d outside [0, %d)" key (n_keys t))

(* The physical corruption a key denotes: the netlist flop ids flipped
   at the injection cycle. An empty SET expansion (cone with no flop
   sink) is a pulse nothing latches — trivially benign under the
   multi-SEU representation; engines short-circuit it. *)
let expand t key =
  match t.model with
  | Fault_model.Seu | Fault_model.Intermittent _ -> [| key |]
  | Fault_model.Set ->
    check_key t key;
    set_members t key
  | Fault_model.Mbu k ->
    check_key t key;
    Array.init k (fun j -> t.flops.(key + j).Netlist.flop_id)

(* Cycles the fault is re-armed for: 1 for the single-cycle models, N
   for intermittent stuck-at-N. *)
let hold t =
  match t.model with
  | Fault_model.Intermittent n -> n
  | _ -> 1

(* ------------------------------------------------------------------ *)
(* MATE-soundness lifting. A MATE masking term proves exactly one
   thing: a single-flop flip at one cycle, everything else golden, dies
   within that cycle. Lifting a per-(flop, cycle) predicate to a model
   key must therefore prune only fault instances that are provably
   equivalent to covered SEUs:

   - seu: the instance IS the SEU — pass through.
   - intermittent:N: sound iff the flip is masked at {e every} cycle of
     the hold window (clipped to the horizon). Induction: masking at
     cycle c with rest-of-state golden leaves the next state fully
     golden; re-arming restores "golden except the held flop", which is
     the hypothesis for cycle c+1. After the window nothing is forced,
     so the state is golden and the fault is benign.
   - set: sound only when the expansion is a singleton {f} — then the
     instance is exactly the SEU on f. Multi-flop expansions are never
     pruned: one-cycle masking terms do not compose across simultaneous
     flips (each term assumes the {e rest} of the state is golden).
   - mbu:1 is an SEU; mbu:K>=2 is never pruned, same argument as set.

   An empty SET expansion is trivially benign but is still injected
   (cheaply — engines short-circuit): no MATE claims it, so pruning it
   would invent a claim the audit could never check. *)

let lift_pruned t ~pruned =
  match t.model with
  | Fault_model.Seu -> fun ~flop_id ~cycle -> pruned ~flop_id ~cycle
  | Fault_model.Intermittent n ->
    fun ~flop_id ~cycle ->
      let window_end = min t.cycles (cycle + n) in
      let rec all c = c >= window_end || (pruned ~flop_id ~cycle:c && all (c + 1)) in
      all cycle
  | Fault_model.Set -> (
    fun ~flop_id ~cycle ->
      match expand t flop_id with
      | [| f |] -> pruned ~flop_id:f ~cycle
      | _ -> false)
  | Fault_model.Mbu 1 -> fun ~flop_id ~cycle -> pruned ~flop_id:t.flops.(flop_id).Netlist.flop_id ~cycle
  | Fault_model.Mbu _ -> fun ~flop_id:_ ~cycle:_ -> false

(* The matching violation-attribution lift: the MATEs whose claims the
   lifted prune rested on, i.e. the union of the per-member,
   per-forced-cycle masking sets. Only meaningful where {!lift_pruned}
   can return true. *)
let lift_masking t ~masking =
  match t.model with
  | Fault_model.Seu -> fun ~flop_id ~cycle -> masking ~flop_id ~cycle
  | Fault_model.Intermittent n ->
    fun ~flop_id ~cycle ->
      let window_end = min t.cycles (cycle + n) in
      let acc = ref [] in
      for c = cycle to window_end - 1 do
        acc := List.rev_append (masking ~flop_id ~cycle:c) !acc
      done;
      List.sort_uniq compare !acc
  | Fault_model.Set -> (
    fun ~flop_id ~cycle ->
      match expand t flop_id with
      | [| f |] -> masking ~flop_id:f ~cycle
      | _ -> [])
  | Fault_model.Mbu 1 ->
    fun ~flop_id ~cycle -> masking ~flop_id:t.flops.(flop_id).Netlist.flop_id ~cycle
  | Fault_model.Mbu _ -> fun ~flop_id:_ ~cycle:_ -> []
