(** Worker reputation: per-name suspicion scores.

    The coordinator cannot tell a lying worker from an unlucky one on a
    single observation, so it accumulates evidence instead: every
    observable misbehaviour maps to an {!event} with a fixed integer
    weight, and a worker whose accumulated score crosses the campaign's
    [--suspect-threshold] is quarantined (excluded from arbitration
    voting, its completed chunks always cross-validated).

    The module is deliberately pure bookkeeping — no clocks, no I/O, no
    randomness — so a worker's score is a function of the event sequence
    alone ({!of_events} folds a sequence into the same table that
    incremental {!record} calls build).  This is load-bearing for audit:
    the serve log's reputation events fully determine the final scores. *)

type event =
  | Arbitration_loss  (** held a verdict a quorum voted down (weight 3) *)
  | Corrupt_frame  (** sent a frame that failed CRC/decode (weight 2) *)
  | Lease_expiry  (** let a chunk lease lapse while connected (weight 1) *)

val weight : event -> int
(** Fixed integer weight added to the score per event (3 / 2 / 1). *)

val event_to_string : event -> string
(** Stable lower-case label, used in serve-log lines. *)

type t
(** Mutable score table, keyed by worker name. *)

val create : unit -> t
(** Empty table; every name scores 0. *)

val score : t -> string -> int
(** Current score for [name] (0 if never seen). *)

val record : t -> name:string -> event -> int
(** Add [weight event] to [name]'s score and return the new score. *)

val suspect : t -> threshold:int -> string -> bool
(** [true] when [threshold > 0] and the name's score has reached it.
    A threshold of 0 disables suspicion entirely. *)

val of_events : (string * event) list -> t
(** Fold an event sequence into a fresh table.  Equal to replaying the
    same events through {!record} in order — scores are a pure function
    of the sequence (tested by a qcheck property). *)

val scores : t -> (string * int) list
(** All (name, score) pairs, sorted by name for deterministic output. *)
