module Prng = Pruning_util.Prng
module Backoff = Pruning_util.Backoff
module Mono = Pruning_util.Mono

type engine = {
  campaign : Campaign.t;
  space : Fault_space.t;
  skip : (flop_id:int -> cycle:int -> bool) option;
  kernel : Campaign.kernel;
}

type ended =
  | Campaign_done
  | Stopped
  | Gave_up of string

type report = {
  ended : ended;
  chunks : int;
  submitted : int;
  crashes : int;
  reconnects : int;
  redelivered : int;
  epochs : int;
  suspicion : int;
}

(* Cooperative shutdown mid-chunk: flush what we have, close the session,
   report [Stopped]. *)
exception Stop

let outcome_of_verdict : Campaign.verdict -> Journal.outcome = function
  | Campaign.Benign -> Journal.Benign
  | Campaign.Latent -> Journal.Latent
  | Campaign.Sdc c -> Journal.Sdc c

(* A Byzantine verdict rewrite ({!Chaos.Lie}): deterministic in the
   drawn key, always different from the truth, applied before the frame
   is built — so the frame's CRC covers the lie and nothing on the wire
   can catch it. Benign flips to a fault verdict; every fault verdict
   flips to Benign, the most damaging lie (it hides real faults). *)
let lie k (o : Journal.outcome) : Journal.outcome =
  match o with
  | Journal.Benign -> if k land 1 = 0 then Journal.Latent else Journal.Sdc (1 + (k land 0xFF))
  | _ -> Journal.Benign

let connect host port =
  let addrs =
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  in
  let addrs =
    if addrs = [] then
      [
        {
          Unix.ai_family = Unix.PF_INET;
          ai_socktype = Unix.SOCK_STREAM;
          ai_protocol = 0;
          ai_addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port);
          ai_canonname = "";
        };
      ]
    else addrs
  in
  let rec try_addrs = function
    | [] -> raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", host))
    | ai :: rest -> (
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype ai.Unix.ai_protocol in
      match Unix.connect fd ai.Unix.ai_addr with
      | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        fd
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if rest = [] then raise e else try_addrs rest)
  in
  try_addrs addrs

let run ~host ~port ~resolve ?name ?(heartbeat = 1.) ?(recv_timeout = 30.) ?(retries = 2)
    ?(retry_backoff = Backoff.retry_policy) ?(reconnect_backoff = Backoff.default_policy)
    ?(max_reconnects = 8) ?(results_per_frame = 64) ?(replay_frames = 32) ?readdress
    ?(should_stop = fun () -> false) ?chaos ?fault () =
  if heartbeat <= 0. then invalid_arg "Worker.run: heartbeat must be positive";
  if recv_timeout <= 0. then invalid_arg "Worker.run: recv_timeout must be positive";
  if retries < 0 then invalid_arg "Worker.run: retries must be non-negative";
  if max_reconnects < 0 then invalid_arg "Worker.run: max_reconnects must be non-negative";
  if results_per_frame < 1 then invalid_arg "Worker.run: results_per_frame must be positive";
  if replay_frames < 0 then invalid_arg "Worker.run: replay_frames must be non-negative";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
  in
  (* Jitter sources are seeded from the worker name: schedules differ
     across a fleet (no reconnect stampede) yet are stable per worker. *)
  let rbo = Backoff.create ~policy:reconnect_backoff (Prng.create (Hashtbl.hash (name, "rc"))) in
  let ebo = Backoff.create ~policy:retry_backoff (Prng.create (Hashtbl.hash (name, "xp"))) in
  let chunks = ref 0 in
  let submitted = ref 0 in
  let crashes = ref 0 in
  let reconnects = ref 0 in
  let failures = ref 0 in
  let redelivered = ref 0 in
  let epochs = ref 0 in
  (* The coordinator generation we last handshook with; -1 = never. *)
  let last_epoch = ref (-1) in
  (* Bounded buffer of the most recent Results frames sent: after a
     coordinator failover (epoch change) they are re-delivered wholesale.
     Verdicts the dead coordinator journaled deduplicate; verdicts it
     lost (accepted but not yet flushed, or in flight when it died) are
     recovered without re-running the experiments. *)
  let replay : Proto.msg Queue.t = Queue.create () in
  let remember msg =
    if replay_frames > 0 then begin
      Queue.push msg replay;
      while Queue.length replay > replay_frames do
        ignore (Queue.pop replay)
      done
    end
  in
  (* One engine per distinct campaign identity, cached across
     reconnects; the fault list is re-derived from the header's pinned
     master PRNG state — the same list every worker and the
     single-process engines compute. *)
  let cache : (Journal.header * engine * (int * int) array * Campaign.worker option ref) option ref
      =
    ref None
  in
  let resolve_cached header =
    match !cache with
    (* Modulo the epoch: a failed-over coordinator serves the same
       campaign under a new generation — no engine rebuild. *)
    | Some (h, e, s, w) when Journal.same_campaign h header -> (e, s, w)
    | _ ->
      let e = resolve header in
      if Campaign.total_cycles e.campaign <> header.Journal.cycles then
        invalid_arg "Worker.run: resolve built an engine with the wrong cycle horizon";
      let samples =
        Campaign.draw_samples e.campaign ~space:e.space
          ~rng:(Prng.restore header.Journal.prng)
          ~n:header.Journal.samples
      in
      let w = ref None in
      cache := Some (header, e, samples, w);
      (e, samples, w)
  in
  (* ---------------------------------------------------------------- *)
  (* One chunk, scalar or batched, streaming results as they appear.   *)
  let run_chunk fd engine samples cworker { Proto.chunk_id; lo; hi; model; model_param; purpose = _ } =
    let own = engine.space.Fault_space.model in
    if model <> Fault_model.id own || model_param <> Fault_model.param own then
      raise
        (Proto.Error
           (Printf.sprintf "chunk %d pins fault model %d:%d but the campaign is %s"
              chunk_id model model_param (Fault_model.name own)));
    let last_sent = ref (Mono.now ()) in
    let tell msg =
      Proto.send ?chaos fd msg;
      last_sent := Mono.now ()
    in
    let acc = ref [] in
    let acc_n = ref 0 in
    let flush () =
      if !acc_n > 0 then begin
        let msg = Proto.Results { chunk_id; results = Array.of_list (List.rev !acc) } in
        tell msg;
        remember msg;
        (* Duplicate-verdict replay: deliver the frame twice and let the
           coordinator's dedup swallow the echo. *)
        (match Option.map (fun c -> Chaos.draw c Chaos.Exec) chaos with
        | Some Chaos.Duplicate -> tell msg
        | _ -> ());
        submitted := !submitted + !acc_n;
        acc := [];
        acc_n := 0
      end
    in
    let push idx outcome =
      (* Byzantine chaos: one Verdict-site draw per verdict reported.
         A [Lie] rewrites the outcome before it is accumulated — every
         downstream byte (frame, CRC, replay buffer) carries the lie. *)
      let outcome =
        match Option.map (fun c -> Chaos.draw c Chaos.Verdict) chaos with
        | Some (Chaos.Lie k) -> lie k outcome
        | _ -> outcome
      in
      acc := (idx, outcome) :: !acc;
      incr acc_n;
      if !acc_n >= results_per_frame then flush ()
    in
    let alive () =
      if Mono.now () -. !last_sent > heartbeat then
        if !acc_n > 0 then flush () else tell Proto.Heartbeat
    in
    let fresh_scalar () =
      let w = Campaign.fresh_worker engine.campaign in
      cworker := Some w;
      w
    in
    let get_scalar () =
      match !cworker with
      | Some w -> w
      | None -> fresh_scalar ()
    in
    let is_pruned ~flop_id ~cycle =
      match engine.skip with
      | Some f -> f ~flop_id ~cycle
      | None -> false
    in
    let fault_hook ~index ~attempt =
      match fault with
      | Some f -> f ~chunk_id ~index ~attempt
      | None -> ()
    in
    (* Infrastructure chaos around one experiment attempt: a [Crash]
       raises {!Chaos.Injected}, which the supervisor retries without
       consuming its retry budget — injected faults must never turn a
       healthy experiment into a [Crashed] verdict. *)
    let exec_chaos () =
      match Option.map (fun c -> Chaos.draw c Chaos.Exec) chaos with
      | Some Chaos.Crash -> raise (Chaos.Injected "experiment crashed")
      | Some (Chaos.Stall s) -> Unix.sleepf s
      | _ -> ()
    in
    (match engine.kernel with
    | (Campaign.Batched | Campaign.Delta_batched) as kernel -> begin
      (* Classify the skip decisions first, then push the remainder
         through a whole-chunk engine (lane-parallel or batched-delta)
         in one supervised batch. *)
      let inject_all, recover =
        match kernel with
        | Campaign.Delta_batched ->
          ( (fun ~faults -> Campaign.inject_delta_batch engine.campaign ~faults ()),
            fun () -> Campaign.reset_delta_batch_worker engine.campaign )
        | _ ->
          ( (fun ~faults -> Campaign.inject_batch engine.campaign ~faults ()),
            fun () -> Campaign.reset_lane_worker engine.campaign )
      in
      alive ();
      let inject_idx = ref [] in
      for idx = lo to hi do
        let flop_id, cycle = samples.(idx) in
        if is_pruned ~flop_id ~cycle then push idx Journal.Skipped
        else inject_idx := idx :: !inject_idx
      done;
      let inject_idx = Array.of_list (List.rev !inject_idx) in
      if Array.length inject_idx > 0 then begin
        let faults = Array.map (fun idx -> samples.(idx)) inject_idx in
        Backoff.reset ebo;
        let rec attempt k =
          match
            exec_chaos ();
            fault_hook ~index:inject_idx.(0) ~attempt:k;
            inject_all ~faults
          with
          | verdicts -> Some verdicts
          | exception Stop -> raise Stop
          | exception Chaos.Injected _ -> attempt k
          | exception _ ->
            recover ();
            if k < retries then begin
              Unix.sleepf (Backoff.next ebo);
              attempt (k + 1)
            end
            else None
        in
        match attempt 0 with
        | None ->
          crashes := !crashes + Array.length inject_idx;
          Array.iter (fun idx -> push idx Journal.Crashed) inject_idx
        | Some verdicts ->
          Array.iteri (fun j idx -> push idx (outcome_of_verdict verdicts.(j))) inject_idx
      end
    end
    | (Campaign.Scalar | Campaign.Delta) as kernel ->
      (* The two per-fault kernels share the chunk loop; they differ only
         in the injector and in how a crashed worker is recovered. *)
      let inject, recover =
        match kernel with
        | Campaign.Scalar ->
          ( (fun ~flop_id ~cycle ->
              Campaign.inject_fault engine.campaign (get_scalar ()) ~space:engine.space
                ~key:flop_id ~cycle),
            fun () -> ignore (fresh_scalar ()) )
        | _ ->
          ( (fun ~flop_id ~cycle ->
              Campaign.inject_fault_delta engine.campaign ~space:engine.space ~key:flop_id
                ~cycle),
            fun () -> Campaign.reset_delta_worker engine.campaign )
      in
      for idx = lo to hi do
        if should_stop () then begin
          flush ();
          raise Stop
        end;
        let flop_id, cycle = samples.(idx) in
        if is_pruned ~flop_id ~cycle then push idx Journal.Skipped
        else begin
          Backoff.reset ebo;
          let rec attempt k =
            match
              exec_chaos ();
              fault_hook ~index:idx ~attempt:k;
              inject ~flop_id ~cycle
            with
            | v -> Some v
            | exception Stop -> raise Stop
            | exception Chaos.Injected _ -> attempt k
            | exception _ ->
              recover ();
              if k < retries then begin
                Unix.sleepf (Backoff.next ebo);
                attempt (k + 1)
              end
              else None
          in
          (match attempt 0 with
          | None ->
            incr crashes;
            push idx Journal.Crashed
          | Some v -> push idx (outcome_of_verdict v));
          alive ()
        end
      done);
    flush ();
    tell (Proto.Chunk_done { chunk_id });
    incr chunks
  in
  (* ---------------------------------------------------------------- *)
  (* One session: handshake, then pull work until Done/Stop/error.     *)
  (* Mirror of the coordinator's write_timeout on our read side: a
     coordinator that stops talking mid-reply (half-dead, slow-loris)
     raises [Proto.Error] here, which the outer loop treats as a lost
     session — backoff and reconnect instead of hanging forever. *)
  let recv fd = Proto.recv ~deadline:(Mono.now () +. recv_timeout) ?chaos fd in
  let suspicion = ref 0 in
  let session fd =
    Proto.send ?chaos fd (Proto.Hello { version = Proto.version; name; epoch = !last_epoch });
    match recv fd with
    | Proto.Welcome { header; suspicion = susp } ->
      (* Our own standing as the coordinator sees it: a worker past the
         quarantine threshold keeps working (its chunks are simply
         always cross-validated) but the score is surfaced in the
         report for operators. *)
      suspicion := susp;
      let engine, samples, cworker = resolve_cached header in
      let ep = header.Journal.epoch in
      if ep <> !last_epoch then begin
        incr epochs;
        if !last_epoch >= 0 then begin
          (* A different generation answered: the coordinator we lost is
             gone, its lease state with it. Drop ours (any in-flight
             chunk will be re-assigned) and re-deliver the buffered
             Results frames — first-verdict-wins dedup makes this safe,
             and it saves the new coordinator re-running whatever the
             old one died holding. *)
          Queue.iter (fun msg -> Proto.send ?chaos fd msg) replay;
          redelivered := !redelivered + Queue.length replay
        end;
        last_epoch := ep
      end;
      (* Handshake complete: the coordinator is reachable and sane, so
         reconnect accounting starts afresh. *)
      failures := 0;
      Backoff.reset rbo;
      let rec loop () =
        if should_stop () then raise Stop;
        Proto.send ?chaos fd Proto.Request;
        match recv fd with
        | Proto.Assign chunk ->
          run_chunk fd engine samples cworker chunk;
          loop ()
        | Proto.Wait ->
          Unix.sleepf 0.1;
          loop ()
        | Proto.Done -> Campaign_done
        | Proto.Heartbeat -> loop ()
        | _ -> raise (Proto.Error "unexpected message from coordinator")
      in
      loop ()
    | _ -> raise (Proto.Error "expected Welcome")
  in
  let result = ref None in
  let cur_host = ref host and cur_port = ref port in
  (* A supervised coordinator may come back on a different ephemeral
     port: re-read the advertised address (the port file) before every
     connection attempt. A readdress failure (file mid-rewrite, not yet
     written by the restarting coordinator) just keeps the old address
     for this attempt. *)
  let refresh_address () =
    match readdress with
    | None -> ()
    | Some f -> (
      match (try f () with _ -> None) with
      | Some (h, p) ->
        cur_host := h;
        cur_port := p
      | None -> ())
  in
  while !result = None do
    if should_stop () then result := Some Stopped
    else begin
      refresh_address ();
      match connect !cur_host !cur_port with
      | exception Unix.Unix_error (e, _, _) ->
        incr failures;
        if !failures > max_reconnects then
          result := Some (Gave_up ("cannot reach coordinator: " ^ Unix.error_message e))
        else Unix.sleepf (Backoff.next rbo)
      | fd -> (
        let close () = try Unix.close fd with Unix.Unix_error _ -> () in
        match session fd with
        | ended ->
          close ();
          result := Some ended
        | exception Stop ->
          close ();
          result := Some Stopped
        | exception (Proto.Closed | Proto.Error _ | Unix.Unix_error _) ->
          (* Lost session: any chunk in flight is abandoned here and
             re-dispatched by the coordinator's lease machinery; our
             already-submitted verdicts deduplicate over there. *)
          close ();
          incr reconnects;
          incr failures;
          if !failures > max_reconnects then result := Some (Gave_up "connection lost")
          else Unix.sleepf (Backoff.next rbo))
    end
  done;
  {
    ended = Option.get !result;
    chunks = !chunks;
    submitted = !submitted;
    crashes = !crashes;
    reconnects = !reconnects;
    redelivered = !redelivered;
    epochs = !epochs;
    suspicion = !suspicion;
  }
