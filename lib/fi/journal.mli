(** Crash-safe verdict journal for fault-injection campaigns.

    A journal is a directory holding one immutable [header] file plus a
    sequence of binary record segments. Every verdict a campaign produces
    is appended as a fixed-size CRC-32-checksummed record and flushed to
    the OS before the campaign moves on, so a campaign killed at any
    point (including SIGKILL) can be resumed from the journal and finish
    with final statistics bit-identical to an uninterrupted run.

    Layout:
    - [header]: textual key=value block (campaign identity: core,
      program, cycles, seed, sample count, prune/audit configuration,
      shard count and the serialized {!Pruning_util.Prng} state of the
      master sampler and of every shard), protected by a trailing CRC-32
      line and written atomically (tempfile + rename);
    - [seg-NNNNNN.bin]: finalized segments of exactly
      [records_per_segment] records each, sealed by an atomic rename of
      the active segment — a finalized segment is never written again,
      so any CRC failure inside one is real corruption;
    - [active.bin]: the segment currently being appended to. Only its
      final record can be torn by a kill; {!resume} detects the torn
      tail (short or CRC-mismatching record), truncates it — again via
      tempfile + rename — and reports how many bytes were dropped.

    Record layout (13 bytes, little-endian): one byte holding the fault
    model id in its high nibble ({!Fault_model.id}; 0 = seu, so
    pre-fault-model journals are bit-compatible) and the record kind in
    its low nibble, two 32-bit arguments, CRC-32 of the preceding
    9 bytes. *)

type outcome =
  | Benign
  | Latent
  | Sdc of int  (** first divergence cycle *)
  | Skipped  (** pruned (or audited and confirmed benign), not injected *)
  | Crashed  (** experiment failed persistently under the supervisor *)

type entry =
  | Outcome of int * outcome  (** sample index, its classification *)
  | Quarantine of int
      (** MATE of this index was caught misclassifying and is disabled
          for the rest of the campaign *)
  | Poisoned of int
      (** distributed campaigns: this chunk id killed enough distinct
          workers to be quarantined and skipped; its samples have no
          verdicts. Resume ignores these entries, so a resumed campaign
          retries the chunk fresh. *)
  | Arbitrated of {
      index : int;  (** sample whose verdict was disputed *)
      outcome : outcome;  (** quorum winner — authoritative on resume *)
      loser : outcome;
          (** the defeated verdict. Its Sdc cycle is not preserved by
              the 13-byte record (a losing [Sdc c] decodes as [Sdc 0]);
              only the kind matters for audit. *)
      voters : int;  (** quorum ballots beyond the two disputants
                         (saturates at 15 in the record) *)
      overturned : bool;
          (** the quorum voted down the first-recorded verdict; on
              resume this entry overrides the earlier [Outcome] *)
    }
      (** distributed campaigns: a verdict mismatch on [index] was
          settled by majority vote among re-issued workers. Written
          *after* the disputed [Outcome] record; {!resume} and fsck
          apply it as an override, so replay order preserves the
          arbitrated truth. *)

type header = {
  core : string;
  program : string;
  cycles : int;
  seed : int;
  samples : int;
  prune : bool;
  audit : float;  (** audited fraction of pruned faults, 0 = off *)
  shards : int;
  batched : bool;
  epoch : int;
      (** coordinator restart generation: bumped (and persisted) on every
          [serve --resume] so reconnecting workers can tell a restarted
          coordinator from the one they lost. Not campaign identity —
          {!require_match} ignores it; journals written before epochs
          existed parse as generation 0. *)
  fault_model : Fault_model.t;
      (** the fault model every recorded verdict was classified under;
          journals written before fault models existed parse as [Seu].
          Campaign identity: {!require_match} refuses a mismatch and the
          coordinator's [Welcome] payload carries it to every worker. *)
  prng : string;  (** master sampler state, before any draw *)
  shard_prng : string array;  (** per-shard audit-sampler states *)
}

type writer

val header_to_string : header -> string
(** The textual key=value rendering (trailing CRC-32 line included) used
    for the on-disk header file — and, verbatim, as the coordinator's
    [Welcome] payload on the distributed-campaign wire protocol, so both
    sides pin the identical campaign identity. *)

val header_of_string : what:string -> string -> header
(** Parse {!header_to_string}'s output, verifying the CRC. [what] names
    the source (a directory, a network peer) in error messages. Raises
    {!Error}. *)

val require_match : what:string -> header -> header -> unit
(** [require_match ~what recorded wanted] raises {!Error} with a message
    naming every mismatched campaign-identity field unless the two
    headers describe the same campaign. Resuming — locally or in the
    distributed coordinator — under a different invocation would
    silently change what recorded verdicts mean. The [epoch] field is
    exempt: it is the restart generation, not identity. *)

val same_campaign : header -> header -> bool
(** Equality modulo [epoch]: do two headers describe the same campaign
    (and thus the same engine compilation, the same verdict meaning)?
    Workers key their engine caches on this, so a coordinator failover
    does not force an engine rebuild. *)

exception Error of string
(** Unusable or failing journal: corrupt finalized segment, malformed
    header, an attempt to create over an existing journal, or a disk
    failure (real or injected) while appending — write errors, ENOSPC,
    EIO, a supported-but-failing fsync. Disk failures are sticky: once a
    writer has raised, every later {!append} re-raises the original
    message, so a campaign fails fast instead of recording into a hole.
    The campaign on top maps this to a clean resumable exit. *)

val exists : dir:string -> bool
(** A journal (its header) is present at [dir]. *)

val create : ?records_per_segment:int -> ?chaos:Chaos.t -> dir:string -> header -> writer
(** Start a fresh journal ([records_per_segment] defaults to 4096).
    Creates [dir] if needed; raises {!Error} if a journal already lives
    there (resume it or remove it explicitly — never overwrite).
    [chaos] arms the writer's fault plan: appends consult
    {!Chaos.Journal_write} (short writes, injected ENOSPC/EIO), segment
    seals consult {!Chaos.Journal_fsync} and {!Chaos.Journal_rename};
    injected faults raise {!Error} exactly as the real failure would. *)

val resume : ?records_per_segment:int -> ?chaos:Chaos.t -> dir:string -> unit -> header * entry array * int * writer
(** Reopen a journal for appending: validates the header and every
    finalized segment, truncates a torn tail of the active segment, and
    returns the header, every intact entry in append order, the number
    of torn bytes dropped, and a writer positioned after the last intact
    record. *)

val load : dir:string -> header * entry array * int
(** Read-only {!resume}: same validation and torn-tail detection, but
    nothing on disk is modified and no writer is opened. *)

val read_header : dir:string -> header
(** Parse and CRC-check just the header file, touching no segments —
    the cheap pre-flight for resume-compatibility checks (e.g. refusing
    a [--fault-model] that contradicts the journal before any engine is
    built). Raises {!Error}. *)

val update_header : dir:string -> header -> unit
(** Atomically replace the header file of an {e existing} journal —
    the supervised-failover epoch bump. Never races appends (the header
    is a separate file); a crash mid-update leaves the old header, which
    the next resume simply bumps past. Raises {!Error} if no journal
    lives at [dir]. *)

val append : writer -> entry -> unit
(** Append one record and flush it to the OS. Thread-safe (campaign
    shards on several domains share one writer). A {e real} transient
    ENOSPC is absorbed: the writer pauses and retries for a bounded
    while (space freed by an operator or log rotation mid-campaign)
    before declaring the sticky failure; an injected
    [Chaos.Io_error ENOSPC] stays immediately sticky, preserving the
    injected-fault contract. *)

val stalled : writer -> bool
(** The writer is currently degraded: a recent append was slow (disk
    pressure, injected stall, ENOSPC retry) and the cooldown window has
    not elapsed. The coordinator consults this to pause dispatch —
    backpressure instead of ballooning leases over a struggling disk. *)

val close : writer -> unit

(** {1 Offline integrity check} *)

type fsck_report = {
  fsck_header : header option;  (** [None] if missing or unreadable *)
  fsck_segments : int;  (** sealed segments scanned *)
  fsck_records : int;  (** intact records across all files *)
  fsck_active : int option;  (** records in [active.bin], [None] if absent *)
  fsck_torn_bytes : int;  (** torn tail bytes in [active.bin] *)
  fsck_counts : int array;
      (** per-kind record counts, indexed by record kind: benign, latent,
          sdc, skipped, crashed, quarantine, poisoned, arbitrated. The
          verdict kinds (0..4) have overturned arbitrations applied — one
          count moved from the losing kind to the winning — so they match
          the statistics a resume reconstructs. *)
  fsck_models : (int * int array) list;
      (** per-fault-model record counts: (model id, per-kind counts as
          in [fsck_counts]), ascending by model id. Records whose model
          nibble is unknown ({!Fault_model.base_name_of_id} = [None]) or
          disagrees with the header's pinned model additionally get an
          [fsck_errors] row — reported, never a crash. *)
  fsck_covered : int;  (** distinct sample indices holding a verdict *)
  fsck_overturned : int;
      (** arbitrated records whose quorum overturned the first verdict *)
  fsck_arb_ballots : int;  (** total quorum ballots across arbitrations *)
  fsck_errors : (string * string) list;  (** (file, problem) pairs *)
}

val fsck : dir:string -> fsck_report
(** Read-only CRC-32 scan of a journal directory: every finalized
    segment strictly, the active segment leniently (torn tail counted,
    not an error). Never modifies anything and never raises on damage —
    each problem becomes an [fsck_errors] row — so an operator can
    assess a journal mid-failover without touching it. A report with
    [fsck_errors = []] is a journal {!resume} will accept. *)
