(** Seeded, deterministic infrastructure fault injection ("self-chaos").

    The campaign service's own medicine: the same systematic,
    reproducible fault-space exploration the paper demands for hardware
    faults, applied to the service's I/O seams. A {!t} is a {e fault
    plan}: a pure function of its seed and {!profile}, consulted at
    well-defined {!site}s — protocol send/receive ({!Proto}), journal
    file operations ({!Journal}), experiment execution
    ({!Worker}/{!Durable}) — and answering with the {!action} to inject
    there, [Pass] for "behave normally".

    {b Determinism.} Every site draws from its own PRNG stream derived
    from the one seed, so the action sequence a given site observes is a
    pure function of [(seed, profile, site, draw index)] — independent
    of how draws at other sites interleave. Replaying a seed replays the
    plan byte-for-byte ({!plan} / {!plan_to_string}, property-tested).
    Draws are not synchronized across threads: share one [t] per
    single-threaded component (one worker, one coordinator), not across
    domains.

    {b Budget.} A plan injects at most [profile.budget] faults, then
    goes permanently quiet ([Pass] forever). A finite budget is what
    makes the chaos invariant checkable: any chaos campaign eventually
    runs fault-free, so it must either complete with statistics
    bit-identical to the chaos-free reference or fail with a documented,
    resumable exit code.

    {b Application semantics.} A consultation point draws one action and
    applies it if meaningful there, ignoring actions that only make
    sense elsewhere (e.g. [Duplicate] drawn at an execution-attempt
    point). Injected failures are raised either as the exact exception a
    real fault would produce (a [Unix_error] connection reset, a
    {!Journal.Error} disk failure) or as {!Injected} for faults with no
    errno — supervisors retry {!Injected} without consuming their retry
    budget, so a finite chaos plan can never convert a healthy
    experiment into a [Crashed] verdict. *)

exception Injected of string
(** An injected infrastructure fault with no natural exception to
    borrow (e.g. a crash-at-cycle inside an experiment). Supervisors
    retry these for free (no retry-budget consumption): chaos must
    perturb the campaign's path, never its verdicts. *)

type action =
  | Pass  (** behave normally *)
  | Delay of float  (** sleep this many seconds before the operation *)
  | Corrupt_bit of int  (** flip payload bit [k mod bits] (CRC must catch it) *)
  | Truncate of float  (** send only this fraction of the frame, then reset *)
  | Reset  (** fail the operation with a connection reset *)
  | Slow_loris of float  (** dribble the frame out with this much total stalling *)
  | Short_write of float  (** write only this fraction of the record, then fail *)
  | Io_error of Unix.error  (** injected errno ([ENOSPC], [EIO]) on a file op *)
  | Fsync_fail  (** fsync reports a real (non-ignorable) failure *)
  | Torn_rename  (** the segment-seal rename is lost before it happens *)
  | Crash  (** raise {!Injected} inside the experiment *)
  | Stall of float  (** stall the experiment this long (past leases/watchdogs) *)
  | Duplicate  (** send the results frame twice (duplicate verdict replay) *)
  | Kill  (** SIGKILL the drawing process itself ({!kill_self}) *)
  | Disk_full  (** transient disk pressure: the journal pauses and retries *)
  | Lie of int
      (** Byzantine verdict corruption: deterministically rewrite the
          verdict about to be reported, keyed by [k], {e before} framing
          — the frame's CRC is computed over the lie, so nothing on the
          wire can catch it. Only cross-validation and quorum
          arbitration can. *)

type site =
  | Send  (** {!Proto} frame transmission *)
  | Recv  (** {!Proto} frame reception *)
  | Journal_write  (** {!Journal.append} record write *)
  | Journal_fsync  (** {!Journal} fsync points *)
  | Journal_rename  (** {!Journal} segment-seal rename *)
  | Exec  (** one experiment attempt (and one results flush) *)
  | Dispatch  (** coordinator, just before sending an [Assign] *)
  | Drain  (** coordinator, each iteration of the shutdown drain loop *)
  | Seal  (** coordinator journal, mid segment seal (between close and rename) *)
  | Disk  (** journal append, before the record write (disk-pressure point) *)
  | Verdict  (** worker, per verdict about to be reported (liar point) *)

val site_name : site -> string

type profile = {
  net_delay : float;  (** P(Delay) at [Send]/[Recv] *)
  net_corrupt : float;  (** P(Corrupt_bit) at [Send] *)
  net_truncate : float;  (** P(Truncate) at [Send] *)
  net_reset : float;  (** P(Reset) at [Send]/[Recv] *)
  net_slow : float;  (** P(Slow_loris) at [Send] *)
  max_delay : float;  (** upper bound on injected delays, seconds *)
  journal_short : float;  (** P(Short_write) at [Journal_write] *)
  journal_enospc : float;  (** P(Io_error ENOSPC) at [Journal_write] *)
  journal_eio : float;  (** P(Io_error EIO) at [Journal_write] *)
  journal_fsync : float;  (** P(Fsync_fail) at [Journal_fsync] *)
  journal_torn : float;  (** P(Torn_rename) at [Journal_rename] *)
  exec_crash : float;  (** P(Crash) per experiment attempt *)
  exec_stall : float;  (** P(Stall) per experiment attempt *)
  exec_dup : float;  (** P(Duplicate) per results flush *)
  exec_lie : float;  (** P(Lie) at [Verdict], per verdict reported *)
  proc_kill : float;  (** P(Kill) at [Dispatch]/[Drain]/[Seal] *)
  proc_stall : float;  (** P(Stall) at [Dispatch]/[Drain]/[Seal] *)
  disk_full : float;  (** P(Disk_full) at [Disk] *)
  disk_stall : float;  (** P(Stall) at [Disk] (drives writer backpressure) *)
  stall : float;  (** Stall duration, seconds *)
  budget : int;  (** total faults injected before the plan goes quiet *)
}
(** Per-class fault rates. Rates at one site should sum to at most 1;
    the remainder is the probability of [Pass]. *)

val default_profile : profile
(** Moderate rates at every I/O site, [budget = 64], [stall = 0.3] s.
    Whole-process kill and disk-pressure rates are {e zero}: a plain
    [--chaos N] run keeps the documented exit-code contract. *)

val process_profile : profile
(** {!default_profile} plus whole-process SIGKILLs ([Dispatch]/[Drain]/
    [Seal]) and transient disk pressure ([Disk]), minus the sticky
    injected disk faults (short writes, ENOSPC/EIO, fsync, torn rename):
    a restarted coordinator re-arms the same seeded plan, so a
    deterministic sticky fault would re-fire every incarnation and
    exhaust the restart budget instead of soaking failover. Only
    meaningful under {!Supervisor} — an unsupervised process dies
    un-resumed. *)

val quiet_profile : profile
(** All rates (and the budget) zero — a no-op plan; start from this to
    enable one fault class at a time. *)

val liar_profile : profile
(** A Byzantine worker: healthy on the wire and on time, but roughly a
    quarter of its verdicts are lies ([exec_lie = 0.25], [budget = 64],
    everything else zero). Deterministic per seed, so a lying fleet
    member is exactly reproducible. Only meaningful in a fleet with
    enough honest peers to outvote it ([--quorum]). *)

type t

val create : ?profile:profile -> seed:int -> unit -> t
(** A fresh fault plan. Same [seed] and [profile], same plan. *)

val draw : t -> site -> action
(** The next action of the plan at this site ([Pass] once the budget is
    exhausted). Consumes one draw of the site's stream either way. *)

val injected : t -> int
(** Faults injected (non-[Pass] draws) so far. *)

val exhausted : t -> bool
(** The budget is spent: every future {!draw} returns [Pass]. *)

val kill_self : unit -> unit
(** Apply a [Kill]: SIGKILL the calling process. No flush, no unwind —
    the most brutal crash a consultation point can inject. *)

(** {1 Materialized plans} (determinism tests, logging) *)

val plan : ?profile:profile -> seed:int -> site -> n:int -> action array
(** The first [n] actions a fresh plan would answer at [site]. *)

val action_to_string : action -> string
(** Exact rendering (floats via [%h]): two plans render identically iff
    they are identical. *)

val plan_to_string : action array -> string
