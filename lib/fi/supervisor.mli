(** Self-healing process-tree supervision for campaign services.

    The supervisor owns a campaign end-to-end: it spawns the coordinator
    and the worker fleet as child processes, watches their liveness, and
    restarts any child that dies abnormally — under
    {!Pruning_util.Backoff} pacing and a sliding-window restart
    {!Budget} — with {e zero operator intervention}. The campaign-side
    contract that makes this sound is built in the layers below: every
    verdict is journaled before it counts ({!Journal}), a restarted
    coordinator resumes from the journal under a bumped {e epoch}
    (persisted in the header, announced in [Welcome]), and surviving
    workers detect the epoch change, drop stale leases and re-deliver
    in-flight verdicts ({!Worker}) — safe under first-verdict-wins
    dedup. SIGKILLing the coordinator (or any worker) at an arbitrary
    point of a supervised campaign therefore yields final statistics
    bit-identical to an undisturbed run.

    {b Policy.}
    - A child exiting 0 is {e finished}: the critical child (the
      coordinator) completing ends the whole service ([Completed 0],
      remaining children are released with SIGTERM → grace → SIGKILL);
      a non-critical child finishing is left done (its campaign is
      over), never restarted.
    - Any other end — nonzero exit, fatal signal — is restarted after a
      backoff delay, if the child's restart budget (at most
      [max_restarts] within the sliding [window]) admits it. A child
      that ran longer than a full window gets its backoff reset first.
    - Budget exhaustion escalates: every child is shut down and the
      supervisor returns [Exhausted] — mapped to a documented resumable
      exit upstairs, the pre-supervisor behavior. The journal is intact;
      a later supervised (or manual [--resume]) run finishes the
      campaign.
    - Optional liveness probing catches the wedged-but-alive
      coordinator that pid-watching cannot: [probe_strikes] consecutive
      probe failures SIGKILL the critical child, and the normal restart
      path takes over.

    {b Processes, not threads.} Children are real processes identified
    by a pid-returning [spawn]: [Unix.fork] in the CLI (which forks
    before any domain exists), [Unix.create_process] in tests. The
    supervisor never blocks on one specific pid — it reaps in completion
    order — so no child death can hide behind another's, and every child
    is waited on before {!run} returns (no zombies). *)

(** Sliding-window restart budgets, exposed for direct testing. *)
module Budget : sig
  type t

  val create : max_restarts:int -> window:float -> t
  (** At most [max_restarts] admitted restarts within any [window]
      seconds. Raises [Invalid_argument] if [max_restarts < 0] or
      [window <= 0]. *)

  val note : t -> now:float -> bool
  (** Ask to restart at time [now]: [true] admits (and records) the
      restart, [false] refuses it — the window is full. Refused requests
      are not recorded (nothing restarted). Timestamps older than
      [window] are pruned first, so the budget regenerates as quiet time
      passes. *)

  val used : t -> now:float -> int
  (** Restarts currently inside the window. *)
end

type spec = {
  name : string;  (** for events and logs *)
  spawn : unit -> int;  (** start (or re-start) the child; returns its pid *)
  critical : bool;
      (** exactly one child must be critical (the coordinator): its
          clean exit completes the service, and it is the probe target *)
}

type event =
  | Started of { name : string; pid : int }
  | Exited of { name : string; pid : int; code : int; signaled : bool }
      (** [signaled] distinguishes death-by-signal (code = signal
          number) from a plain exit *)
  | Restarting of { name : string; delay : float; restarts : int }
  | Finished of { name : string; pid : int }
      (** a non-critical child exited 0 and stays down *)
  | Probe_failed of { name : string; strikes : int }
  | Probe_killed of { name : string; pid : int }
      (** unresponsive past [probe_strikes]; SIGKILLed for restart *)
  | Gave_up of { name : string; restarts : int }

val pp_event : Format.formatter -> event -> unit

type outcome =
  | Completed of int  (** the critical child exited cleanly *)
  | Exhausted of { name : string; last_code : int }
      (** [name]'s restart budget ran out; [last_code] is its final
          exit code or fatal signal — escalate to a resumable exit *)
  | Stopped  (** [should_stop] requested shutdown *)

type result = {
  outcome : outcome;
  restarts : int;  (** total restarts performed, all children *)
  probe_kills : int;  (** SIGKILLs delivered by the liveness prober *)
}

type config = {
  max_restarts : int;  (** per-child budget within [window] *)
  window : float;  (** sliding budget window, seconds *)
  backoff : Pruning_util.Backoff.policy;  (** pacing between restarts *)
  grace : float;  (** SIGTERM → SIGKILL escalation window at shutdown *)
  tick : float;  (** supervision loop period *)
  probe_interval : float;  (** seconds between probes; 0 disables *)
  probe_strikes : int;  (** consecutive failures before a probe kill *)
}

val default_config : config
(** [{ max_restarts = 5; window = 60.; backoff = { base = 0.1; cap = 5.;
      factor = 2. }; grace = 5.; tick = 0.05; probe_interval = 0.;
      probe_strikes = 3 }] *)

val run :
  ?config:config ->
  ?probe:(unit -> bool) ->
  ?should_stop:(unit -> bool) ->
  ?on_event:(event -> unit) ->
  spec list ->
  result
(** Supervise the children until the critical one completes, a restart
    budget is exhausted, or [should_stop] (polled every [tick]) asks for
    shutdown. All three paths shut the remaining fleet down (SIGTERM,
    [grace], SIGKILL) and reap every child before returning. [probe]
    must itself be bounded (connect/handshake with deadlines): it is
    called inline from the supervision loop. Raises [Invalid_argument]
    unless exactly one spec is critical. *)
