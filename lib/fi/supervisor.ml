module Backoff = Pruning_util.Backoff
module Mono = Pruning_util.Mono
module Prng = Pruning_util.Prng

(* ------------------------------------------------------------------ *)
(* Sliding-window restart budget.                                      *)

module Budget = struct
  type t = {
    max_restarts : int;
    window : float;
    mutable times : float list;  (* restart timestamps, newest first *)
  }

  let create ~max_restarts ~window =
    if max_restarts < 0 then invalid_arg "Supervisor.Budget.create: max_restarts must be non-negative";
    if window <= 0. then invalid_arg "Supervisor.Budget.create: window must be positive";
    { max_restarts; window; times = [] }

  (* Ask for one restart at time [now]: prune entries older than the
     window, then admit the restart iff the window still has room.
     Admitted restarts are recorded; refused ones are not (the caller
     escalates instead of restarting, so nothing happened). *)
  let note t ~now =
    t.times <- List.filter (fun ts -> now -. ts < t.window) t.times;
    if List.length t.times >= t.max_restarts then false
    else begin
      t.times <- now :: t.times;
      true
    end

  let used t ~now =
    t.times <- List.filter (fun ts -> now -. ts < t.window) t.times;
    List.length t.times
end

(* ------------------------------------------------------------------ *)
(* Supervisor.                                                         *)

type spec = {
  name : string;
  spawn : unit -> int;
  critical : bool;
}

type event =
  | Started of { name : string; pid : int }
  | Exited of { name : string; pid : int; code : int; signaled : bool }
  | Restarting of { name : string; delay : float; restarts : int }
  | Finished of { name : string; pid : int }
  | Probe_failed of { name : string; strikes : int }
  | Probe_killed of { name : string; pid : int }
  | Gave_up of { name : string; restarts : int }

(* [Unix.WSIGNALED] carries OCaml's internal signal numbers (negative
   for the portable ones); name the common deaths instead of leaking
   them into the event log. *)
let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigbus then "SIGBUS"
  else if n = Sys.sigpipe then "SIGPIPE"
  else string_of_int n

let pp_event ppf = function
  | Started { name; pid } -> Format.fprintf ppf "started %s (pid %d)" name pid
  | Exited { name; pid; code; signaled } ->
    if signaled then Format.fprintf ppf "%s (pid %d) died on %s" name pid (signal_name code)
    else Format.fprintf ppf "%s (pid %d) exited with code %d" name pid code
  | Restarting { name; delay; restarts } ->
    Format.fprintf ppf "restarting %s in %.2fs (restart %d in window)" name delay restarts
  | Finished { name; pid } -> Format.fprintf ppf "%s (pid %d) finished" name pid
  | Probe_failed { name; strikes } ->
    Format.fprintf ppf "liveness probe of %s failed (%d consecutive)" name strikes
  | Probe_killed { name; pid } ->
    Format.fprintf ppf "%s (pid %d) unresponsive, killed for restart" name pid
  | Gave_up { name; restarts } ->
    Format.fprintf ppf "restart budget exhausted on %s (%d restarts in window)" name restarts

type outcome =
  | Completed of int
  | Exhausted of { name : string; last_code : int }
  | Stopped

type result = {
  outcome : outcome;
  restarts : int;
  probe_kills : int;
}

type config = {
  max_restarts : int;
  window : float;
  backoff : Backoff.policy;
  grace : float;
  tick : float;
  probe_interval : float;
  probe_strikes : int;
}

let default_config =
  {
    max_restarts = 5;
    window = 60.;
    backoff = { Backoff.base = 0.1; cap = 5.0; factor = 2.0 };
    grace = 5.;
    tick = 0.05;
    probe_interval = 0.;
    probe_strikes = 3;
  }

(* Per-child supervision state. [pid = None] means the child is between
   incarnations: either waiting out its restart backoff ([restart_at])
   or permanently finished ([finished]). *)
type child = {
  spec : spec;
  budget : Budget.t;
  backoff : Backoff.t;
  mutable pid : int option;
  mutable restart_at : float option;
  mutable last_start : float;
  mutable finished : bool;
}

let run ?(config = default_config) ?probe ?(should_stop = fun () -> false)
    ?(on_event = fun _ -> ()) specs =
  if specs = [] then invalid_arg "Supervisor.run: no children to supervise";
  (match List.filter (fun s -> s.critical) specs with
  | [ _ ] -> ()
  | _ -> invalid_arg "Supervisor.run: exactly one critical child required");
  if config.grace < 0. then invalid_arg "Supervisor.run: grace must be non-negative";
  if config.tick <= 0. then invalid_arg "Supervisor.run: tick must be positive";
  let restarts = ref 0 in
  let probe_kills = ref 0 in
  let children =
    List.map
      (fun spec ->
        {
          spec;
          budget = Budget.create ~max_restarts:config.max_restarts ~window:config.window;
          backoff =
            Backoff.create ~policy:config.backoff
              (Prng.create (Hashtbl.hash ("supervisor", spec.name)));
          pid = None;
          restart_at = None;
          last_start = 0.;
          finished = false;
        })
      specs
  in
  let start child =
    let pid = child.spec.spawn () in
    child.pid <- Some pid;
    child.restart_at <- None;
    child.last_start <- Mono.now ();
    on_event (Started { name = child.spec.name; pid })
  in
  let find_pid pid = List.find_opt (fun c -> c.pid = Some pid) children in
  let kill_pid signal pid = try Unix.kill pid signal with Unix.Unix_error _ -> () in
  (* Reap everything still alive: SIGTERM, a grace window, then SIGKILL
     the stubborn. Zombies are a failure mode this module exists to
     prevent — every child is waited on before [run] returns. *)
  let shutdown_children () =
    let alive () = List.filter_map (fun c -> c.pid) children in
    List.iter (kill_pid Sys.sigterm) (alive ());
    let deadline = Mono.now () +. config.grace in
    let reap_one blocking =
      match Unix.waitpid (if blocking then [] else [ Unix.WNOHANG ]) (-1) with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        List.iter (fun c -> c.pid <- None) children;
        false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
      | 0, _ -> true
      | pid, _ ->
        (match find_pid pid with Some c -> c.pid <- None | None -> ());
        true
    in
    let rec drain () =
      if alive () <> [] then
        if Mono.now () >= deadline then begin
          List.iter (kill_pid Sys.sigkill) (alive ());
          while reap_one true && alive () <> [] do
            ()
          done
        end
        else begin
          if reap_one false then Unix.sleepf 0.02;
          drain ()
        end
    in
    drain ()
  in
  let finish outcome =
    shutdown_children ();
    { outcome; restarts = !restarts; probe_kills = !probe_kills }
  in
  List.iter start children;
  let critical = List.find (fun c -> c.spec.critical) children in
  let last_probe = ref (Mono.now ()) in
  let probe_failures = ref 0 in
  let result = ref None in
  while !result = None do
    if should_stop () then result := Some (finish Stopped)
    else begin
      (* Reap in completion order — never blocked on one specific pid
         while another child lies dead. *)
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | exception Unix.Unix_error ((Unix.ECHILD | Unix.EINTR), _, _) -> ()
        | 0, _ -> ()
        | pid, status -> (
          match find_pid pid with
          | None -> reap ()  (* not ours to supervise (e.g. a probe helper) *)
          | Some child ->
            child.pid <- None;
            let code, signaled =
              match status with
              | Unix.WEXITED c -> (c, false)
              | Unix.WSIGNALED s | Unix.WSTOPPED s -> (s, true)
            in
            on_event (Exited { name = child.spec.name; pid; code; signaled });
            if (not signaled) && code = 0 then
              if child.spec.critical then
                (* The campaign is complete: release the fleet. *)
                result := Some (finish (Completed 0))
              else begin
                child.finished <- true;
                on_event (Finished { name = child.spec.name; pid })
              end
            else begin
              (* Any abnormal end — nonzero exit, SIGKILL, crash — is a
                 restart candidate, budget permitting. A child that ran
                 cleanly for a full window deserves a fresh backoff. *)
              let now = Mono.now () in
              if now -. child.last_start > config.window then Backoff.reset child.backoff;
              if Budget.note child.budget ~now then begin
                incr restarts;
                let delay = Backoff.next child.backoff in
                child.restart_at <- Some (now +. delay);
                on_event
                  (Restarting
                     { name = child.spec.name; delay; restarts = Budget.used child.budget ~now })
              end
              else begin
                on_event (Gave_up { name = child.spec.name; restarts = Budget.used child.budget ~now });
                result := Some (finish (Exhausted { name = child.spec.name; last_code = code }))
              end
            end;
            if !result = None then reap ())
      in
      reap ();
      if !result = None then begin
        (* Start children whose backoff has elapsed. *)
        let now = Mono.now () in
        List.iter
          (fun child ->
            match child.restart_at with
            | Some t when now >= t -> start child
            | _ -> ())
          children;
        (* Liveness probing of the critical child: a wedged-but-alive
           coordinator (stuck syscall, livelock) never exits, so pid
           watching alone cannot catch it. Enough consecutive probe
           failures and it is SIGKILLed — the reaper then restarts it
           under the normal budget. *)
        (match probe with
        | Some p
          when config.probe_interval > 0.
               && now -. !last_probe >= config.probe_interval
               && critical.pid <> None ->
          last_probe := now;
          if (try p () with _ -> false) then probe_failures := 0
          else begin
            incr probe_failures;
            on_event (Probe_failed { name = critical.spec.name; strikes = !probe_failures });
            if !probe_failures >= config.probe_strikes then begin
              probe_failures := 0;
              match critical.pid with
              | Some pid ->
                incr probe_kills;
                on_event (Probe_killed { name = critical.spec.name; pid });
                kill_pid Sys.sigkill pid
              | None -> ()
            end
          end
        | _ -> ());
        Unix.sleepf config.tick
      end
    end
  done;
  Option.get !result
