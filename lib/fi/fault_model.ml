(* The fault-model vocabulary of the campaign stack. A fault instance is
   always a [(key, cycle)] pair; the model decides what a key ranges
   over and what physical corruption the pair denotes (see
   {!Fault_space.expand} for the expansion into flop flips). *)

type t =
  | Seu
  | Set
  | Mbu of int
  | Intermittent of int

let validate = function
  | Seu | Set -> ()
  | Mbu k -> if k < 1 then invalid_arg "Fault_model: MBU cluster size must be positive"
  | Intermittent n -> if n < 1 then invalid_arg "Fault_model: intermittent hold must be positive"

let name = function
  | Seu -> "seu"
  | Set -> "set"
  | Mbu k -> Printf.sprintf "mbu:%d" k
  | Intermittent n -> Printf.sprintf "intermittent:%d" n

(* Stable wire/journal ids: pinned in record kind bytes and proto chunk
   descriptors, so they must never be renumbered. *)
let id = function
  | Seu -> 0
  | Set -> 1
  | Mbu _ -> 2
  | Intermittent _ -> 3

let base_name_of_id = function
  | 0 -> Some "seu"
  | 1 -> Some "set"
  | 2 -> Some "mbu"
  | 3 -> Some "intermittent"
  | _ -> None

(* The model parameter as carried next to {!id} on the wire: cluster
   size for MBU, hold cycles for intermittent, 0 for the others. *)
let param = function
  | Seu | Set -> 0
  | Mbu k -> k
  | Intermittent n -> n

let of_id_param model param =
  match model with
  | 0 -> Some Seu
  | 1 -> Some Set
  | 2 -> if param >= 1 then Some (Mbu param) else None
  | 3 -> if param >= 1 then Some (Intermittent param) else None
  | _ -> None

let of_string s =
  let parse_n what conv rest =
    match int_of_string_opt rest with
    | Some n when n >= 1 -> Ok (conv n)
    | Some n -> Error (Printf.sprintf "%s parameter must be >= 1 (got %d)" what n)
    | None -> Error (Printf.sprintf "%s parameter %S is not an integer" what rest)
  in
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "seu" -> Ok Seu
    | "set" -> Ok Set
    | "mbu" -> Error "mbu needs a cluster size, e.g. mbu:2"
    | "intermittent" -> Error "intermittent needs a hold count, e.g. intermittent:3"
    | _ -> Error (Printf.sprintf "unknown fault model %S (valid: seu|set|mbu:K|intermittent:N)" s))
  | Some i -> (
    let base = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match base with
    | "mbu" -> parse_n "mbu" (fun k -> Mbu k) rest
    | "intermittent" -> parse_n "intermittent" (fun n -> Intermittent n) rest
    | _ -> Error (Printf.sprintf "unknown fault model %S (valid: seu|set|mbu:K|intermittent:N)" s))
