(** Wire protocol of the distributed campaign layer.

    {b Framing.} Every message travels in a frame:
    [\[len:4 LE\]\[crc:4 LE\]\[payload:len bytes\]] where [crc] is the
    CRC-32 ({!Pruning_util.Crc}) of the payload. A frame whose CRC does
    not match, whose length field exceeds {!max_frame}, or whose stream
    ends mid-frame raises {!Error} — a coordinator never acts on bytes a
    flaky link or a half-dead peer mangled.

    {b Messages.} The conversation is worker-driven: a worker greets with
    [Hello], the coordinator pins the campaign identity with [Welcome]
    (the {!Journal.header}, verbatim in its CRC-guarded textual form),
    and the worker then pulls [Request] → [Assign]/[Wait]/[Done], streams
    [Results] while computing, and closes each chunk with [Chunk_done].
    Any frame counts as liveness for the heartbeat/lease machinery;
    [Heartbeat] exists for when a worker has nothing else to say. *)

exception Error of string
(** Corrupt, truncated or oversized frame, or an undecodable message. *)

exception Closed
(** The peer closed the connection at a clean frame boundary. *)

val max_frame : int
(** Upper bound on a frame's payload size (frames above it are treated
    as corruption, not honored — a garbage length field must not make
    the receiver allocate gigabytes). *)

(** {1 Frames} *)

val encode_frame : string -> string
(** The full frame encoding of a payload (for tests and buffering). *)

val write_frame : ?deadline:float -> ?chaos:Chaos.t -> Unix.file_descr -> string -> unit
(** Write one frame, looping over partial writes. [deadline] (absolute,
    {!Pruning_util.Mono} monotonic clock) bounds the total time spent
    blocked on an unwritable socket — needed on non-blocking
    descriptors, where EAGAIN is awaited with [select] until the
    deadline, then {!Error} is raised (a stalled peer must not wedge the
    coordinator). [chaos] consults the fault plan at {!Chaos.Send}
    before writing: injected delays and slow-loris dribbles keep the
    frame intact; bit corruption flips one payload bit {e after} the CRC
    was computed (the receiver must detect it); truncation and resets
    raise the [ECONNRESET] a real dying link would. *)

val read_frame : ?deadline:float -> ?chaos:Chaos.t -> Unix.file_descr -> string
(** Blocking read of one frame's payload. [deadline] (absolute,
    {!Pruning_util.Mono} clock) bounds the total wait for the peer's
    bytes — {!Error} once it passes, so a slow-loris or half-dead sender
    cannot hang the reader. [chaos] consults the plan at {!Chaos.Recv}
    (delays and connection resets only). Raises {!Closed} on EOF at a
    frame boundary, {!Error} on EOF mid-frame or CRC mismatch. *)

(** {1 Streaming decoder}

    For select-loop receivers: feed whatever bytes arrived, pop complete
    frames. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. *)

val next_frame : decoder -> string option
(** Pop the next complete frame's payload, [None] if more bytes are
    needed. Raises {!Error} on a corrupt or oversized frame. *)

(** {1 Messages} *)

val version : int
(** Protocol version; [Hello]/[Welcome] with a different version are
    refused. Version 2 added the worker's last-seen coordinator epoch
    to [Hello]; version 3 pins the fault model on every [Assign] chunk
    descriptor; version 4 tags every chunk with its {!purpose}
    (arbitration re-issue descriptors) and reports the worker's own
    suspicion score in [Welcome]. *)

type purpose =
  | Data  (** first issue of the chunk *)
  | Verify  (** cross-validation re-run ([--verify-frac]) *)
  | Arbitrate  (** quorum ballot: re-run to vote on a disputed verdict *)
      (** Why a chunk is being issued. Workers execute all three
          identically — determinism is the contract — the tag exists for
          logs, tests and future scheduling policy. *)

val purpose_name : purpose -> string
(** ["data" | "verify" | "arbitrate"]. *)

type chunk = {
  chunk_id : int;
  lo : int;  (** first sample index, inclusive *)
  hi : int;  (** last sample index, inclusive *)
  model : int;
      (** {!Fault_model.id} of the model the chunk's samples are
          classified under — must agree with the Welcome header's model;
          a worker refuses a contradicting lease *)
  model_param : int;  (** {!Fault_model.param} (cluster size / hold cycles) *)
  purpose : purpose;
}

type msg =
  | Hello of { version : int; name : string; epoch : int }
      (** worker → coordinator. [epoch] is the coordinator generation the
          worker last spoke to ([-1] = never): a coordinator seeing a
          stale epoch knows this worker survived a failover and is about
          to re-deliver its in-flight verdicts (safe: first-verdict-wins
          dedup). *)
  | Welcome of { header : Journal.header; suspicion : int }
      (** coordinator → worker: campaign identity (the {!Journal.header},
          including the current [epoch] — how a reconnecting worker
          detects a restarted coordinator and drops stale lease state)
          plus the coordinator's current suspicion score for this
          worker's name ({!Reputation}); a worker rejoining past the
          quarantine threshold learns it is sidelined *)
  | Request  (** worker → coordinator: give me a chunk *)
  | Assign of chunk
  | Wait  (** nothing assignable now; heartbeat and ask again *)
  | Results of { chunk_id : int; results : (int * Journal.outcome) array }
      (** worker → coordinator: classified sample indices, streamed as
          they are produced *)
  | Chunk_done of { chunk_id : int }
  | Heartbeat  (** worker → coordinator: liveness only *)
  | Done  (** coordinator → worker: campaign complete, disconnect *)

val encode : msg -> string
(** Message payload bytes (to be framed). *)

val decode : string -> msg
(** Raises {!Error} on undecodable payloads (including a [Welcome]
    header whose own CRC fails). *)

val send : ?deadline:float -> ?chaos:Chaos.t -> Unix.file_descr -> msg -> unit
(** [write_frame] ∘ [encode]. *)

val recv : ?deadline:float -> ?chaos:Chaos.t -> Unix.file_descr -> msg
(** [decode] ∘ [read_frame]. *)
