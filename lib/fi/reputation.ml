(* Worker reputation: per-name suspicion scores fed by observable
   misbehaviour.  Pure bookkeeping — no clocks, no I/O — so that the
   score of a worker is a function of the event sequence alone and the
   coordinator can replay or audit it deterministically. *)

type event = Arbitration_loss | Corrupt_frame | Lease_expiry

let weight = function
  | Arbitration_loss -> 3 (* voted against a quorum: strongest signal *)
  | Corrupt_frame -> 2 (* CRC/decode failure on its frames *)
  | Lease_expiry -> 1 (* slow or wedged, not necessarily malicious *)

let event_to_string = function
  | Arbitration_loss -> "arbitration-loss"
  | Corrupt_frame -> "corrupt-frame"
  | Lease_expiry -> "lease-expiry"

type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 8
let score (t : t) name = Option.value ~default:0 (Hashtbl.find_opt t name)

let record (t : t) ~name ev =
  let s = score t name + weight ev in
  Hashtbl.replace t name s;
  s

let suspect (t : t) ~threshold name = threshold > 0 && score t name >= threshold

let of_events events =
  let t = create () in
  List.iter (fun (name, ev) -> ignore (record t ~name ev)) events;
  t

let scores (t : t) =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t []
  |> List.sort compare
