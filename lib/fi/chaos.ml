module Prng = Pruning_util.Prng

exception Injected of string

type action =
  | Pass
  | Delay of float
  | Corrupt_bit of int
  | Truncate of float
  | Reset
  | Slow_loris of float
  | Short_write of float
  | Io_error of Unix.error
  | Fsync_fail
  | Torn_rename
  | Crash
  | Stall of float
  | Duplicate
  | Kill
  | Disk_full
  | Lie of int

type site =
  | Send
  | Recv
  | Journal_write
  | Journal_fsync
  | Journal_rename
  | Exec
  | Dispatch
  | Drain
  | Seal
  | Disk
  | Verdict

let site_index = function
  | Send -> 0
  | Recv -> 1
  | Journal_write -> 2
  | Journal_fsync -> 3
  | Journal_rename -> 4
  | Exec -> 5
  | Dispatch -> 6
  | Drain -> 7
  | Seal -> 8
  | Disk -> 9
  | Verdict -> 10

let n_sites = 11

let site_name = function
  | Send -> "send"
  | Recv -> "recv"
  | Journal_write -> "journal-write"
  | Journal_fsync -> "journal-fsync"
  | Journal_rename -> "journal-rename"
  | Exec -> "exec"
  | Dispatch -> "dispatch"
  | Drain -> "drain"
  | Seal -> "seal"
  | Disk -> "disk"
  | Verdict -> "verdict"

type profile = {
  net_delay : float;
  net_corrupt : float;
  net_truncate : float;
  net_reset : float;
  net_slow : float;
  max_delay : float;
  journal_short : float;
  journal_enospc : float;
  journal_eio : float;
  journal_fsync : float;
  journal_torn : float;
  exec_crash : float;
  exec_stall : float;
  exec_dup : float;
  exec_lie : float;
  proc_kill : float;
  proc_stall : float;
  disk_full : float;
  disk_stall : float;
  stall : float;
  budget : int;
}

(* Moderate rates everywhere: enough to exercise every recovery path in
   a short campaign without starving it of forward progress. *)
let default_profile =
  {
    net_delay = 0.02;
    net_corrupt = 0.01;
    net_truncate = 0.005;
    net_reset = 0.005;
    net_slow = 0.005;
    max_delay = 0.05;
    journal_short = 0.002;
    journal_enospc = 0.001;
    journal_eio = 0.001;
    journal_fsync = 0.002;
    journal_torn = 0.02;
    exec_crash = 0.02;
    exec_stall = 0.005;
    exec_dup = 0.02;
    (* Lies are off everywhere except {!liar_profile}: a lying worker
       violates the determinism contract on purpose, which only makes
       sense in a fleet with enough honest peers to outvote it. *)
    exec_lie = 0.;
    (* Whole-process kills and disk pressure are off by default: a plain
       [--chaos N] run must keep the documented exit-code contract
       (0 | 17 | 19 | 20). They only fire under {!process_profile},
       whose natural habitat is a supervised campaign. *)
    proc_kill = 0.;
    proc_stall = 0.;
    disk_full = 0.;
    disk_stall = 0.;
    stall = 0.3;
    budget = 64;
  }

let quiet_profile =
  {
    net_delay = 0.;
    net_corrupt = 0.;
    net_truncate = 0.;
    net_reset = 0.;
    net_slow = 0.;
    max_delay = 0.;
    journal_short = 0.;
    journal_enospc = 0.;
    journal_eio = 0.;
    journal_fsync = 0.;
    journal_torn = 0.;
    exec_crash = 0.;
    exec_stall = 0.;
    exec_dup = 0.;
    exec_lie = 0.;
    proc_kill = 0.;
    proc_stall = 0.;
    disk_full = 0.;
    disk_stall = 0.;
    stall = 0.;
    budget = 0;
  }

(* Supervised-soak profile: everything the default profile injects, plus
   whole-process SIGKILLs at the coordinator's dispatch/drain/seal sites
   and transient disk pressure at the journal's disk site. Only safe
   under a supervisor — an unsupervised process dies un-resumed. *)
let process_profile =
  {
    default_profile with
    proc_kill = 0.01;
    proc_stall = 0.005;
    disk_full = 0.01;
    disk_stall = 0.01;
    (* The sticky injected disk faults are off here: a restarted
       coordinator re-arms the same seeded plan, so a deterministic
       early [Journal.Error] re-fires every incarnation and turns the
       run into a restart-budget exhaustion test instead of a failover
       soak. Kills, stalls, disk pressure and wire faults are the
       classes a supervisor can actually heal. *)
    journal_short = 0.;
    journal_enospc = 0.;
    journal_eio = 0.;
    journal_fsync = 0.;
    journal_torn = 0.;
  }

(* Byzantine-worker profile: the worker stays perfectly healthy on the
   wire and on time — it just lies. Roughly a quarter of its verdicts
   are deterministically corrupted before framing (so every CRC passes
   and nothing but cross-validation can catch it), until the budget
   runs dry. Meant for fleets with enough honest peers to outvote it:
   the soak invariant is bit-identical stats *despite* this worker. *)
let liar_profile = { quiet_profile with exec_lie = 0.25; budget = 64 }

type t = {
  profile : profile;
  streams : Prng.t array;
  mutable remaining : int;
  mutable injected : int;
}

(* Each site draws from its own PRNG stream, all derived from the one
   seed: the action sequence a given site sees is a pure function of
   (seed, profile, site, draw index), independent of how draws at other
   sites interleave with it. *)
let create ?(profile = default_profile) ~seed () =
  if profile.budget < 0 then invalid_arg "Chaos.create: budget must be non-negative";
  {
    profile;
    streams =
      Array.init n_sites (fun i ->
          Prng.split (Prng.create (seed + ((i + 1) * 0x9E3779B9))));
    remaining = profile.budget;
    injected = 0;
  }

let injected t = t.injected
let exhausted t = t.remaining <= 0

let draw t site =
  if t.remaining <= 0 then Pass
  else begin
    let p = t.profile in
    let g = t.streams.(site_index site) in
    let r = Prng.float g in
    let choose classes =
      let rec go acc = function
        | [] -> Pass
        | (prob, mk) :: rest ->
          let acc = acc +. prob in
          if r < acc then mk () else go acc rest
      in
      go 0. classes
    in
    let a =
      match site with
      | Send ->
        choose
          [
            (p.net_delay, fun () -> Delay (Prng.float g *. p.max_delay));
            (p.net_corrupt, fun () -> Corrupt_bit (Prng.int g 0x3FFFFFFF));
            (p.net_truncate, fun () -> Truncate (Prng.float g));
            (p.net_reset, fun () -> Reset);
            (p.net_slow, fun () -> Slow_loris (Prng.float g *. p.max_delay));
          ]
      | Recv ->
        choose
          [
            (p.net_delay, fun () -> Delay (Prng.float g *. p.max_delay));
            (p.net_reset, fun () -> Reset);
          ]
      | Journal_write ->
        choose
          [
            (p.journal_short, fun () -> Short_write (Prng.float g));
            (p.journal_enospc, fun () -> Io_error Unix.ENOSPC);
            (p.journal_eio, fun () -> Io_error Unix.EIO);
          ]
      | Journal_fsync -> choose [ (p.journal_fsync, fun () -> Fsync_fail) ]
      | Journal_rename -> choose [ (p.journal_torn, fun () -> Torn_rename) ]
      | Exec ->
        choose
          [
            (p.exec_crash, fun () -> Crash);
            (p.exec_stall, fun () -> Stall p.stall);
            (p.exec_dup, fun () -> Duplicate);
          ]
      | Dispatch | Drain | Seal ->
        choose
          [
            (p.proc_kill, fun () -> Kill);
            (p.proc_stall, fun () -> Stall p.stall);
          ]
      | Disk ->
        choose
          [
            (p.disk_full, fun () -> Disk_full);
            (p.disk_stall, fun () -> Stall p.stall);
          ]
      | Verdict -> choose [ (p.exec_lie, fun () -> Lie (Prng.int g 0x3FFFFFFF)) ]
    in
    (match a with
    | Pass -> ()
    | _ ->
      t.remaining <- t.remaining - 1;
      t.injected <- t.injected + 1);
    a
  end

(* ------------------------------------------------------------------ *)
(* Plans: materialized draw sequences, for determinism tests and logs.  *)

(* %h renders floats exactly, so two plans compare byte-identical iff
   every drawn parameter is bit-identical. *)
let action_to_string = function
  | Pass -> "pass"
  | Delay s -> Printf.sprintf "delay(%h)" s
  | Corrupt_bit k -> Printf.sprintf "corrupt-bit(%d)" k
  | Truncate f -> Printf.sprintf "truncate(%h)" f
  | Reset -> "reset"
  | Slow_loris s -> Printf.sprintf "slow-loris(%h)" s
  | Short_write f -> Printf.sprintf "short-write(%h)" f
  | Io_error e -> Printf.sprintf "io-error(%s)" (Unix.error_message e)
  | Fsync_fail -> "fsync-fail"
  | Torn_rename -> "torn-rename"
  | Crash -> "crash"
  | Stall s -> Printf.sprintf "stall(%h)" s
  | Duplicate -> "duplicate"
  | Kill -> "kill"
  | Disk_full -> "disk-full"
  | Lie k -> Printf.sprintf "lie(%d)" k

(* The action a [Kill] consultation point applies: SIGKILL to self — the
   most brutal crash available, no atexit, no flush, no unwind. *)
let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let plan ?profile ~seed site ~n =
  if n < 0 then invalid_arg "Chaos.plan: n must be non-negative";
  let t = create ?profile ~seed () in
  Array.init n (fun _ -> draw t site)

let plan_to_string actions =
  String.concat ";" (Array.to_list (Array.map action_to_string actions))
