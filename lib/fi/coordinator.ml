module Mono = Pruning_util.Mono
module Prng = Pruning_util.Prng

type config = {
  listen : string;
  port : int;
  chunk_size : int;
  lease : float;
  write_timeout : float;
  tick : float;
  drain : float;
  idle_timeout : float;
  poison_threshold : int;
  blacklist_threshold : int;
  verify_frac : float;
  max_inflight : int;
  quorum : int;
  suspect_threshold : int;
  arb_patience : float;
}

let default_config =
  {
    listen = "127.0.0.1";
    port = 0;
    chunk_size = 256;
    lease = 10.;
    write_timeout = 5.;
    tick = 0.05;
    drain = 5.;
    idle_timeout = 30.;
    poison_threshold = 3;
    blacklist_threshold = 3;
    verify_frac = 0.;
    max_inflight = 1024;
    quorum = 3;
    suspect_threshold = 5;
    arb_patience = 30.;
  }

type event =
  | Joined of { worker : string }
  | Left of { worker : string; reason : string }
  | Assigned of { worker : string; chunk : Proto.chunk }
  | Redispatched of { worker : string; chunk_id : int; reason : string }
  | Progress of { done_ : int; total : int }
  | Duplicate of { worker : string; index : int }
  | Mismatch of { worker : string; index : int }
  | Quarantined of { chunk_id : int; deaths : int }
  | Blacklisted of { worker : string; strikes : int }
  | Verified of { chunk_id : int; worker : string }
  | Rejoined of { worker : string; stale_epoch : int; epoch : int }
  | Arbitrating of { chunk_id : int; index : int; challenger : string }
  | Arbitrated of {
      chunk_id : int;
      index : int;
      outcome : Journal.outcome;
      overturned : bool;
      voters : string list;
      losers : string list;
    }
  | Arbitration_failed of { chunk_id : int; index : int; reason : string }
  | Suspected of { worker : string; score : int }
  | Completed

let outcome_name = function
  | Journal.Benign -> "benign"
  | Journal.Latent -> "latent"
  | Journal.Sdc c -> Printf.sprintf "sdc@%d" c
  | Journal.Skipped -> "skipped"
  | Journal.Crashed -> "crashed"

let pp_event ppf = function
  | Joined { worker } -> Format.fprintf ppf "worker %s joined" worker
  | Left { worker; reason } -> Format.fprintf ppf "worker %s left (%s)" worker reason
  | Assigned { worker; chunk } ->
    Format.fprintf ppf "chunk %d [%d..%d] -> %s" chunk.Proto.chunk_id chunk.Proto.lo
      chunk.Proto.hi worker
  | Redispatched { worker; chunk_id; reason } ->
    Format.fprintf ppf "chunk %d requeued from %s (%s)" chunk_id worker reason
  | Progress { done_; total } -> Format.fprintf ppf "%d/%d verdicts" done_ total
  | Duplicate { worker; index } ->
    Format.fprintf ppf "duplicate verdict for sample %d from %s (deduplicated)" index worker
  | Mismatch { worker; index } ->
    Format.fprintf ppf "VERDICT MISMATCH on sample %d from %s" index worker
  | Quarantined { chunk_id; deaths } ->
    Format.fprintf ppf "chunk %d POISONED (killed %d distinct workers), quarantined" chunk_id
      deaths
  | Blacklisted { worker; strikes } ->
    Format.fprintf ppf "worker %s blacklisted after %d corrupt frames" worker strikes
  | Verified { chunk_id; worker } ->
    Format.fprintf ppf "chunk %d cross-validated by %s" chunk_id worker
  | Rejoined { worker; stale_epoch; epoch } ->
    Format.fprintf ppf "worker %s rejoined from epoch %d into epoch %d" worker stale_epoch epoch
  | Arbitrating { chunk_id; index; challenger } ->
    Format.fprintf ppf "verdict dispute on sample %d (chunk %d) raised by %s: arbitrating" index
      chunk_id challenger
  | Arbitrated { chunk_id; index; outcome; overturned; voters; losers } ->
    Format.fprintf ppf "sample %d (chunk %d) arbitrated to %s by quorum [%s]: first verdict %s%s"
      index chunk_id (outcome_name outcome)
      (String.concat ", " voters)
      (if overturned then "OVERTURNED" else "upheld")
      (match losers with
      | [] -> ""
      | l -> Printf.sprintf "; outvoted: %s" (String.concat ", " l))
  | Arbitration_failed { chunk_id; index; reason } ->
    Format.fprintf ppf "verdict dispute on sample %d (chunk %d) UNRESOLVED: %s" index chunk_id
      reason
  | Suspected { worker; score } ->
    Format.fprintf ppf "worker %s quarantined as suspect (suspicion %d)" worker score
  | Completed -> Format.fprintf ppf "campaign complete"

type result = {
  stats : Campaign.stats;
  completed : bool;
  recovered : int;
  dropped_bytes : int;
  duplicates : int;
  mismatches : int;
  redispatched : int;
  workers : int;
  poisoned : int list;
  blacklisted : int;
  verified : int;
  rejoined : int;
  epoch : int;
  arb_resolved : int;
  arb_overturned : int;
  arb_unresolved : int;
  suspects : (string * int) list;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  mutable served : bool;
}

let rec restart f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let create ?(config = default_config) () =
  if config.chunk_size < 1 then invalid_arg "Coordinator.create: chunk_size must be positive";
  if config.lease <= 0. then invalid_arg "Coordinator.create: lease must be positive";
  if config.drain < 0. then invalid_arg "Coordinator.create: drain must be non-negative";
  if config.poison_threshold < 0 then
    invalid_arg "Coordinator.create: poison_threshold must be non-negative";
  if config.blacklist_threshold < 0 then
    invalid_arg "Coordinator.create: blacklist_threshold must be non-negative";
  if config.verify_frac < 0. || config.verify_frac > 1. then
    invalid_arg "Coordinator.create: verify_frac must be in [0, 1]";
  if config.max_inflight < 0 then
    invalid_arg "Coordinator.create: max_inflight must be non-negative";
  if config.quorum < 1 then invalid_arg "Coordinator.create: quorum must be at least 1";
  if config.suspect_threshold < 0 then
    invalid_arg "Coordinator.create: suspect_threshold must be non-negative";
  if config.arb_patience <= 0. then
    invalid_arg "Coordinator.create: arb_patience must be positive";
  (* A worker death must surface as a socket error on our side, not kill
     the coordinator process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.listen, config.port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  { config; listen_fd = fd; served = false }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> 0

(* ------------------------------------------------------------------ *)
(* Per-connection state.                                               *)

type conn = {
  fd : Unix.file_descr;
  dec : Proto.decoder;
  mutable name : string;  (* peer address until Hello names it *)
  mutable greeted : bool;
  mutable last_seen : float;  (* Mono.now of the last complete message *)
  mutable leases : int list;  (* chunk ids this connection holds *)
  mutable vleases : int list;  (* chunk ids held for cross-validation *)
  mutable aleases : int list;  (* chunk ids held as arbitration ballots *)
}

type chunk_state =
  | Pending
  | Leased
  | Complete
  | Poisoned  (* quarantined: killed too many workers, never re-dispatched *)

(* One open arbitration per disputed chunk. [disputes] carries the
   contested samples with both claims and their claimants; [ballots] the
   completed full-chunk re-runs by voters (neither disputant may vote);
   [voter] the one ballot currently out on a lease — voting is
   sequential so the cheapest sufficient quorum is used. [since] is the
   last time the arbitration made progress; {!config.arb_patience} past
   it with no ballot in flight, the dispute is declared unresolvable. *)
type arb = {
  achunk : int;
  mutable disputes :
    (int * Journal.outcome * string * Journal.outcome * string) list;
      (* sample, recorded verdict, its origin, claimed verdict, claimant *)
  mutable ballots : (string * (int, Journal.outcome) Hashtbl.t) list;
  mutable voter : (string * (int, Journal.outcome) Hashtbl.t) option;
  mutable since : float;
}

let serve t ~header ?journal ?(resume = false) ?records_per_segment ?chaos
    ?(should_stop = fun () -> false) ?(on_event = fun _ -> ()) () =
  if t.served then invalid_arg "Coordinator.serve: already served";
  t.served <- true;
  if header.Journal.audit <> 0. then
    invalid_arg "Coordinator.serve: the audit sentinel is single-process only (audit must be 0)";
  if resume && journal = None then invalid_arg "Coordinator.serve: resume requires a journal";
  let cfg = t.config in
  let n = header.Journal.samples in
  let outcomes : Journal.outcome option array = Array.make n None in
  let n_done = ref 0 in
  let recovered = ref 0 in
  let dropped_bytes = ref 0 in
  let duplicates = ref 0 in
  let mismatches = ref 0 in
  let redispatched = ref 0 in
  let workers = Hashtbl.create 16 in
  (* Poisoning: per-chunk distinct worker names that died (connection
     gone, not merely a lapsed lease) while holding it. *)
  let deaths : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let poisoned = ref [] in
  let poisoned_holes = ref 0 in
  (* Blacklisting: per-name corrupt-frame/protocol-violation strikes. *)
  let strikes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let refused : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let verified = ref 0 in
  let rejoined = ref 0 in
  (* Quorum arbitration: one open [arb] per disputed chunk, plus the
     set of ever-disputed chunks (a disputed chunk never counts as
     cleanly cross-validated) and per-sample origins so arbitration
     losses can be attributed to the worker whose verdict they were. *)
  let arbs : (int, arb) Hashtbl.t = Hashtbl.create 4 in
  let disputed : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let origins = Array.make n "" in
  let arb_resolved = ref 0 in
  let arb_overturned = ref 0 in
  let arb_unresolved = ref 0 in
  let reputation = Reputation.create () in
  let suspects : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let draining = ref false in
  let writer, header =
    match journal with
    | None -> (None, header)
    | Some dir when resume ->
      let h, entries, dropped, w = Journal.resume ?records_per_segment ?chaos ~dir () in
      Journal.require_match ~what:dir h header;
      Array.iter
        (function
          | Journal.Outcome (i, o) ->
            if i >= 0 && i < n && outcomes.(i) = None then begin
              outcomes.(i) <- Some o;
              incr n_done;
              incr recovered
            end
          (* An [Arbitrated] record supersedes the disputed [Outcome] it
             follows: on replay the quorum's verdict wins, so a resumed
             campaign carries the arbitrated truth, not the first claim. *)
          | Journal.Arbitrated { index = i; outcome = o; _ } ->
            if i >= 0 && i < n then begin
              if outcomes.(i) = None then begin
                incr n_done;
                incr recovered
              end;
              outcomes.(i) <- Some o
            end
          (* A recorded [Poisoned] is deliberately ignored: a resumed
             campaign retries the quarantined chunk from scratch, with
             the death count reset — quarantine is a property of one
             service run, not of the fault space. *)
          | Journal.Quarantine _ | Journal.Poisoned _ -> ())
        entries;
      dropped_bytes := dropped;
      (* Every resume is a new coordinator generation: bump the epoch,
         persist it, and announce it in Welcome — workers that survived
         the previous coordinator use the change to drop stale leases
         and re-deliver their in-flight verdicts. *)
      let h = { h with Journal.epoch = h.Journal.epoch + 1 } in
      Journal.update_header ~dir h;
      (Some w, h)
    | Some dir -> (Some (Journal.create ?records_per_segment ?chaos ~dir header), header)
  in
  (* ---------------------------------------------------------------- *)
  (* Chunk table. Coverage of the outcome range is the ground truth;   *)
  (* the state array only caches whether a chunk is queued, out on a   *)
  (* lease, or retired.                                                *)
  let n_chunks = (n + cfg.chunk_size - 1) / cfg.chunk_size in
  let chunk_lo c = c * cfg.chunk_size in
  let chunk_hi c = min (n - 1) (((c + 1) * cfg.chunk_size) - 1) in
  let covered c =
    let ok = ref true in
    for i = chunk_lo c to chunk_hi c do
      if outcomes.(i) = None then ok := false
    done;
    !ok
  in
  let state = Array.make n_chunks Pending in
  let pending = Queue.create () in
  for c = 0 to n_chunks - 1 do
    if covered c then state.(c) <- Complete else Queue.push c pending
  done;
  (* [pending] may hold stale ids (requeued chunks completed meanwhile by
     a straggler's duplicates); [pop_chunk] re-validates on the way out. *)
  let rec pop_chunk () =
    match Queue.pop pending with
    | exception Queue.Empty -> None
    | c when state.(c) <> Pending -> pop_chunk ()
    | c when covered c ->
      state.(c) <- Complete;
      pop_chunk ()
    | c -> Some c
  in
  (* ---------------------------------------------------------------- *)
  (* Cross-validation. Whether a chunk gets re-issued for verification *)
  (* is a deterministic per-chunk draw from the campaign seed, so the  *)
  (* verified subset is reproducible across runs and restarts.         *)
  let vpending = ref [] in
  let vorigin : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let verify_outstanding = ref 0 in
  let should_verify c =
    cfg.verify_frac > 0.
    && Prng.float (Prng.create (header.Journal.seed lxor ((c + 1) * 0x9E3779B9))) < cfg.verify_frac
  in
  (* [force] bypasses the sampling draw: chunks completed by a
     quarantined (suspect) worker are always cross-validated. *)
  let schedule_verify ?(force = false) ~origin c =
    if (force || should_verify c) && not (Hashtbl.mem vorigin c) then begin
      Hashtbl.replace vorigin c origin;
      vpending := !vpending @ [ c ];
      incr verify_outstanding
    end
  in
  let quarantine ~deaths:d c =
    state.(c) <- Poisoned;
    poisoned := c :: !poisoned;
    for i = chunk_lo c to chunk_hi c do
      if outcomes.(i) = None then incr poisoned_holes
    done;
    (match writer with
    | Some w -> Journal.append w (Journal.Poisoned c)
    | None -> ());
    on_event (Quarantined { chunk_id = c; deaths = d })
  in
  (* Release a connection's chunk claims. [death] distinguishes a dead
     connection from a merely lapsed lease: only deaths count toward
     poisoning, and only once per distinct worker name — a flaky worker
     that reconnects and dies on the same chunk again is one data point,
     not an accumulating vote. *)
  let release ~death ~reason conn =
    List.iter
      (fun c ->
        if state.(c) = Leased then
          if covered c then state.(c) <- Complete
          else begin
            let killers =
              if not death then Option.value ~default:[] (Hashtbl.find_opt deaths c)
              else begin
                let prev = Option.value ~default:[] (Hashtbl.find_opt deaths c) in
                let cur = if List.mem conn.name prev then prev else conn.name :: prev in
                Hashtbl.replace deaths c cur;
                cur
              end
            in
            if death && cfg.poison_threshold > 0 && List.length killers >= cfg.poison_threshold
            then quarantine ~deaths:(List.length killers) c
            else begin
              state.(c) <- Pending;
              Queue.push c pending;
              incr redispatched;
              on_event (Redispatched { worker = conn.name; chunk_id = c; reason })
            end
          end)
      conn.leases;
    conn.leases <- [];
    List.iter (fun c -> vpending := c :: !vpending) conn.vleases;
    conn.vleases <- [];
    (* An in-flight arbitration ballot is simply discarded: the next
       eligible Request recruits a replacement voter. *)
    List.iter
      (fun c ->
        match Hashtbl.find_opt arbs c with
        | Some ({ voter = Some (vname, _); _ } as a) when vname = conn.name ->
          a.voter <- None;
          a.since <- Mono.now ()
        | _ -> ())
      conn.aleases;
    conn.aleases <- []
  in
  (* ---------------------------------------------------------------- *)
  (* Connections.                                                      *)
  let conns : conn list ref = ref [] in
  let drop ?(death = false) ~reason conn =
    if List.memq conn !conns then begin
      conns := List.filter (fun c -> not (c == conn)) !conns;
      release ~death ~reason conn;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      on_event (Left { worker = conn.name; reason })
    end
  in
  (* One strike per dropped-for-misbehavior connection, keyed by the
     announced worker name (the peer address until Hello): enough
     strikes and the name's next Hello is refused. *)
  let strike conn =
    if cfg.blacklist_threshold > 0 then
      Hashtbl.replace strikes conn.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt strikes conn.name))
  in
  (* Reputation: accumulate suspicion per worker name; crossing the
     threshold quarantines the name — excluded from arbitration voting,
     its completed chunks always cross-validated. Quarantine is never
     lifted within a service run. *)
  let suspected name = Hashtbl.mem suspects name in
  let repute name ev =
    if name <> "" then begin
      let s = Reputation.record reputation ~name ev in
      if
        cfg.suspect_threshold > 0
        && s >= cfg.suspect_threshold
        && not (Hashtbl.mem suspects name)
      then begin
        Hashtbl.replace suspects name ();
        on_event (Suspected { worker = name; score = s })
      end
    end
  in
  let send conn msg =
    try Proto.send ~deadline:(Mono.now () +. cfg.write_timeout) ?chaos conn.fd msg with
    | Proto.Error reason -> drop ~death:true ~reason conn
    | Unix.Unix_error (e, _, _) -> drop ~death:true ~reason:(Unix.error_message e) conn
  in
  (* Pick a verification chunk for this connection, preferring one whose
     original verdicts came from a different worker — re-running on the
     same worker only checks repeatability, not the worker. With a lone
     connection the origin is accepted rather than stalling the drain. *)
  let pop_verify conn =
    let alone = match !conns with [] | [ _ ] -> true | _ -> false in
    let rec go acc = function
      | [] -> None
      | c :: rest when alone || Hashtbl.find_opt vorigin c <> Some conn.name ->
        vpending := List.rev_append acc rest;
        Some c
      | c :: rest -> go (c :: acc) rest
    in
    go [] !vpending
  in
  let record ~origin i o =
    outcomes.(i) <- Some o;
    origins.(i) <- origin;
    incr n_done;
    let c = i / cfg.chunk_size in
    if state.(c) = Poisoned then begin
      (* A straggler is filling a quarantined range after all. *)
      decr poisoned_holes;
      if covered c then begin
        state.(c) <- Complete;
        poisoned := List.filter (fun p -> p <> c) !poisoned
      end
    end;
    (* The cross-validation draw happens the moment the chunk is covered,
       not at the worker's [Chunk_done] claim: [n_done] reaches [n] on
       the last verdict, so deferring the draw would leave a gap where
       [finished] holds and completion is declared with the verification
       pass silently skipped (and a worker dying between its last
       results frame and [Chunk_done] would dodge the check entirely). *)
    if state.(c) <> Poisoned && covered c then
      schedule_verify ~force:(suspected origin) ~origin c;
    match writer with
    | Some w -> Journal.append w (Journal.Outcome (i, o))
    | None -> ()
  in
  (* ---------------------------------------------------------------- *)
  (* Quorum arbitration.                                               *)
  (* A verdict mismatch opens (or extends) the chunk's arbitration:    *)
  (* the chunk is re-issued to voters — workers that are neither the   *)
  (* recorded verdict's origin nor the challenger — one ballot at a    *)
  (* time, until every disputed sample has a strict majority among     *)
  (* {both claims} ∪ {ballots}, or [quorum] ballots have been spent.   *)
  let open_dispute conn ~chunk_id ~index ~recorded ~claimed =
    incr mismatches;
    on_event (Mismatch { worker = conn.name; index });
    Hashtbl.replace disputed chunk_id ();
    if !draining then begin
      (* Completion was already declared; no voters can be recruited.
         Keep the recorded verdict, surface the violation (exit 19
         upstairs), and drop the late dissenter. *)
      incr arb_unresolved;
      on_event
        (Arbitration_failed
           { chunk_id; index; reason = "mismatch after completion (no voters reachable)" });
      raise (Proto.Error (Printf.sprintf "determinism violation on sample %d" index))
    end
    else begin
      (* Arbitration supersedes a verification pass: the ballots re-run
         the chunk anyway, so a challenging verifier's lease is settled
         here rather than left outstanding (it can never count as a
         clean [Verified] — the chunk is in [disputed] for good). *)
      if List.mem chunk_id conn.vleases then begin
        conn.vleases <- List.filter (fun c -> c <> chunk_id) conn.vleases;
        decr verify_outstanding
      end;
      let a =
        match Hashtbl.find_opt arbs chunk_id with
        | Some a -> a
        | None ->
          let a =
            { achunk = chunk_id; disputes = []; ballots = []; voter = None; since = Mono.now () }
          in
          Hashtbl.replace arbs chunk_id a;
          a
      in
      if not (List.exists (fun (j, _, _, _, _) -> j = index) a.disputes) then begin
        a.disputes <- (index, recorded, origins.(index), claimed, conn.name) :: a.disputes;
        a.since <- Mono.now ();
        on_event (Arbitrating { chunk_id; index; challenger = conn.name })
      end
    end
  in
  (* An arbitration this connection may vote on: not a disputant, not
     already voted, not quarantined as a suspect, no ballot in flight. *)
  let pop_arb conn =
    if suspected conn.name then None
    else
      Hashtbl.fold
        (fun _ a acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if
              a.voter = None
              && (not (List.mem_assoc conn.name a.ballots))
              && not
                   (List.exists
                      (fun (_, _, rorigin, _, claimant) ->
                        rorigin = conn.name || claimant = conn.name)
                      a.disputes)
            then Some a
            else acc)
        arbs None
  in
  let try_resolve a =
    let n_ballots = List.length a.ballots in
    let tally votes =
      let counts = Hashtbl.create 4 in
      List.iter
        (fun (o, _) ->
          Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
        votes;
      Hashtbl.fold (fun o k acc -> (o, k) :: acc) counts []
    in
    let decided = ref [] in
    let undecided = ref [] in
    List.iter
      (fun ((index, recorded, rorigin, claimed, claimant) as d) ->
        (* Electorate for this sample: both disputant claims plus every
           completed ballot's verdict (the recorded origin may be ""
           after a journal recovery — it still casts its claim, it just
           cannot be blamed). A strict majority of at least 3 cast votes
           decides. *)
        let votes =
          (recorded, rorigin) :: (claimed, claimant)
          :: List.filter_map
               (fun (vname, tbl) -> Option.map (fun o -> (o, vname)) (Hashtbl.find_opt tbl index))
               a.ballots
        in
        let total = List.length votes in
        match List.find_opt (fun (_, k) -> 2 * k > total) (tally votes) with
        | Some (winner, _) when total >= 3 -> decided := (d, winner, votes) :: !decided
        | _ -> undecided := d :: !undecided)
      a.disputes;
    (* Settle when every dispute has a majority, or the quorum budget is
       spent (whatever remains undecided is declared unresolved). *)
    if !undecided = [] || n_ballots >= cfg.quorum then begin
      let voters = List.rev_map fst a.ballots in
      List.iter
        (fun ((index, recorded, _rorigin, claimed, _claimant), winner, votes) ->
          let overturned = winner <> recorded in
          if overturned then outcomes.(index) <- Some winner;
          incr arb_resolved;
          if overturned then incr arb_overturned;
          (match writer with
          | Some w ->
            Journal.append w
              (Journal.Arbitrated
                 {
                   index;
                   outcome = winner;
                   loser = (if overturned then recorded else claimed);
                   voters = n_ballots;
                   overturned;
                 })
          | None -> ());
          (* Everyone whose verdict lost the vote — disputant or voter —
             takes an arbitration-loss suspicion hit. *)
          let losers =
            List.filter_map
              (fun (o, who) -> if o <> winner && who <> "" then Some who else None)
              votes
          in
          List.iter (fun who -> repute who Reputation.Arbitration_loss) losers;
          on_event
            (Arbitrated { chunk_id = a.achunk; index; outcome = winner; overturned; voters; losers }))
        !decided;
      List.iter
        (fun (index, _, _, _, _) ->
          incr arb_unresolved;
          on_event
            (Arbitration_failed
               {
                 chunk_id = a.achunk;
                 index;
                 reason = Printf.sprintf "no majority after %d ballots" n_ballots;
               }))
        !undecided;
      Hashtbl.remove arbs a.achunk
    end
  in
  (* The service is over when every sample has a verdict or lies in a
     quarantined chunk, no cross-validation is still outstanding, and
     every opened arbitration has been settled one way or the other. *)
  let finished () =
    !n_done + !poisoned_holes >= n && !verify_outstanding <= 0 && Hashtbl.length arbs = 0
  in
  (* Whole-process chaos: the coordinator SIGKILLs itself mid-dispatch
     or mid-drain. Only a supervisor makes this survivable — which is
     the point: these sites exist to prove it is. *)
  let chaos_proc site =
    match Option.map (fun c -> Chaos.draw c site) chaos with
    | Some Chaos.Kill -> Chaos.kill_self ()
    | Some (Chaos.Stall s) -> Unix.sleepf s
    | _ -> ()
  in
  let inflight () = Array.fold_left (fun a s -> if s = Leased then a + 1 else a) 0 state in
  (* Graceful degradation, consulted per Request: while the journal
     writer is degraded (disk pressure, ENOSPC retries, injected stalls)
     or too many chunks are already out on leases, answer [Wait] instead
     of leasing more — backpressure instead of ballooning in-flight
     state the struggling journal cannot keep up with. Never during the
     finished/drain phase, where the only correct answer is [Done]. *)
  let degraded () =
    (not (finished ()))
    && ((match writer with Some w -> Journal.stalled w | None -> false)
       || (cfg.max_inflight > 0 && inflight () >= cfg.max_inflight))
  in
  (* Fatal per-connection protocol violations are raised as [Proto.Error]
     and only drop the offending connection, never the campaign. *)
  let handle conn msg =
    conn.last_seen <- Mono.now ();
    match msg with
    | Proto.Hello { version; name; epoch } ->
      if version <> Proto.version then
        raise (Proto.Error (Printf.sprintf "protocol version %d, expected %d" version Proto.version));
      conn.name <- name;
      (match Hashtbl.find_opt strikes name with
      | Some k when cfg.blacklist_threshold > 0 && k >= cfg.blacklist_threshold ->
        if not (Hashtbl.mem refused name) then begin
          Hashtbl.replace refused name ();
          on_event (Blacklisted { worker = name; strikes = k })
        end;
        raise (Proto.Error "blacklisted for repeated corrupt frames")
      | _ -> ());
      conn.greeted <- true;
      Hashtbl.replace workers name ();
      (* A worker announcing a different (non-fresh) epoch survived a
         coordinator it lost: it is about to re-deliver its in-flight
         verdicts, which first-verdict-wins dedup absorbs. *)
      if epoch >= 0 && epoch <> header.Journal.epoch then begin
        incr rejoined;
        on_event (Rejoined { worker = name; stale_epoch = epoch; epoch = header.Journal.epoch })
      end;
      on_event (Joined { worker = name });
      send conn (Proto.Welcome { header; suspicion = Reputation.score reputation name })
    | _ when not conn.greeted -> raise (Proto.Error "first message must be Hello")
    | Proto.Request ->
      if degraded () then send conn Proto.Wait
      else begin
        let mk purpose c =
          {
            Proto.chunk_id = c;
            lo = chunk_lo c;
            hi = chunk_hi c;
            model = Fault_model.id header.Journal.fault_model;
            model_param = Fault_model.param header.Journal.fault_model;
            purpose;
          }
        in
        let assign chunk =
          on_event (Assigned { worker = conn.name; chunk });
          chaos_proc Chaos.Dispatch;
          send conn (Proto.Assign chunk)
        in
        (* Assignment priority: fresh data, then arbitration ballots
           (disputes block completion, so they are on the critical
           path), then cross-validation re-runs. *)
        match pop_chunk () with
        | Some c ->
          state.(c) <- Leased;
          conn.leases <- c :: conn.leases;
          assign (mk Proto.Data c)
        | None -> (
          match pop_arb conn with
          | Some a ->
            a.voter <- Some (conn.name, Hashtbl.create 16);
            a.since <- Mono.now ();
            conn.aleases <- a.achunk :: conn.aleases;
            assign (mk Proto.Arbitrate a.achunk)
          | None -> (
            match pop_verify conn with
            | Some c ->
              conn.vleases <- c :: conn.vleases;
              assign (mk Proto.Verify c)
            | None -> send conn (if finished () then Proto.Done else Proto.Wait)))
      end
    | Proto.Results { chunk_id; results } ->
      if chunk_id < 0 || chunk_id >= n_chunks then
        raise (Proto.Error (Printf.sprintf "results for unknown chunk %d" chunk_id));
      if List.mem chunk_id conn.aleases then begin
        (* An arbitration ballot: verdicts accumulate privately until
           the voter's Chunk_done and never touch the outcome table.
           Frames for an arbitration meanwhile abandoned (patience
           lapsed) or re-assigned are ignored. *)
        match Hashtbl.find_opt arbs chunk_id with
        | Some ({ voter = Some (vname, tbl); _ } as a) when vname = conn.name ->
          Array.iter
            (fun (i, o) ->
              if i < 0 || i >= n then
                raise (Proto.Error (Printf.sprintf "result for sample %d outside [0, %d)" i n));
              Hashtbl.replace tbl i o)
            results;
          a.since <- Mono.now ()
        | _ -> ()
      end
      else begin
        (* A disputed chunk's remaining (agreeing) verdicts are part of
           the settled verification pass, not straggler duplicates. *)
        let verifying = List.mem chunk_id conn.vleases || Hashtbl.mem disputed chunk_id in
        Array.iter
          (fun (i, o) ->
            if i < 0 || i >= n then
              raise (Proto.Error (Printf.sprintf "result for sample %d outside [0, %d)" i n));
            match outcomes.(i) with
            | None -> record ~origin:conn.name i o
            | Some prev when prev = o ->
              (* A verification pass or a re-dispatched chunk's second
                 delivery: verdicts are deterministic, so equal is the
                 only legal outcome — dropped, not double-counted. *)
              if not verifying then begin
                incr duplicates;
                on_event (Duplicate { worker = conn.name; index = i })
              end
            | Some prev ->
              (* Disagreement is no longer fail-stop: route the claim
                 into quorum arbitration and keep the connection — the
                 dissenter may be the honest one. *)
              open_dispute conn ~chunk_id ~index:i ~recorded:prev ~claimed:o)
          results;
        on_event (Progress { done_ = !n_done; total = n })
      end
    | Proto.Chunk_done { chunk_id } ->
      if chunk_id < 0 || chunk_id >= n_chunks then
        raise (Proto.Error (Printf.sprintf "done for unknown chunk %d" chunk_id));
      if List.mem chunk_id conn.aleases then begin
        conn.aleases <- List.filter (fun c -> c <> chunk_id) conn.aleases;
        match Hashtbl.find_opt arbs chunk_id with
        | Some ({ voter = Some (vname, tbl); _ } as a) when vname = conn.name ->
          a.voter <- None;
          a.ballots <- (vname, tbl) :: a.ballots;
          a.since <- Mono.now ();
          try_resolve a
        | _ -> ()
      end
      else if List.mem chunk_id conn.vleases then begin
        conn.vleases <- List.filter (fun c -> c <> chunk_id) conn.vleases;
        decr verify_outstanding;
        (* A chunk whose verification surfaced a dispute is settled by
           arbitration, not counted as cleanly cross-validated. *)
        if not (Hashtbl.mem disputed chunk_id) then begin
          incr verified;
          on_event (Verified { chunk_id; worker = conn.name })
        end
      end
      else begin
        conn.leases <- List.filter (fun c -> c <> chunk_id) conn.leases;
        if covered chunk_id then begin
          (* Verification (if drawn) was already scheduled when the last
             verdict landed — [Chunk_done] only retires the lease. *)
          if state.(chunk_id) <> Poisoned then state.(chunk_id) <- Complete
        end
        else if state.(chunk_id) = Leased then begin
          (* The worker claims completion but the range has holes (lost
             frames?): requeue rather than trust the claim. *)
          state.(chunk_id) <- Pending;
          Queue.push chunk_id pending;
          incr redispatched;
          on_event (Redispatched { worker = conn.name; chunk_id; reason = "incomplete chunk" })
        end
      end
    | Proto.Heartbeat -> ()
    | Proto.Welcome _ | Proto.Assign _ | Proto.Wait | Proto.Done ->
      raise (Proto.Error "coordinator-only message from a worker")
  in
  let accept () =
    match restart (fun () -> Unix.accept t.listen_fd) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | fd, peer ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let name =
        match peer with
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX s -> s
      in
      conns :=
        { fd; dec = Proto.decoder (); name; greeted = false; last_seen = Mono.now ();
          leases = []; vleases = []; aleases = [] }
        :: !conns
  in
  let read_buf = Bytes.create 65536 in
  let pump conn =
    match restart (fun () -> Unix.read conn.fd read_buf 0 (Bytes.length read_buf)) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> drop ~death:true ~reason:(Unix.error_message e) conn
    | 0 -> drop ~death:true ~reason:"disconnected" conn
    | k -> (
      Proto.feed conn.dec read_buf k;
      try
        let quit = ref false in
        while not !quit do
          match Proto.next_frame conn.dec with
          | None -> quit := true
          | Some payload -> handle conn (Proto.decode payload)
        done
      with Proto.Error reason ->
        (* Misbehavior (corrupt frame, protocol violation), not a death:
           strike the name, feed its reputation, drop the connection. *)
        strike conn;
        repute conn.name Reputation.Corrupt_frame;
        drop ~reason conn)
  in
  let expire_leases () =
    let now = Mono.now () in
    List.iter
      (fun conn ->
        (* A connection silent past the read deadline is gone (a live
           worker requests, streams or heartbeats well inside it): close
           it rather than carrying a dead peer forever. Short of that,
           keep the connection — a straggler may still deliver (its late
           results deduplicate); only its claim on the chunks lapses. *)
        if cfg.idle_timeout > 0. && now -. conn.last_seen > cfg.idle_timeout then
          drop ~death:true ~reason:"read deadline: peer silent past idle-timeout" conn
        else if
          (conn.leases <> [] || conn.vleases <> [] || conn.aleases <> [])
          && now -. conn.last_seen > cfg.lease
        then begin
          release ~death:false ~reason:"lease expired" conn;
          repute conn.name Reputation.Lease_expiry
        end)
      !conns;
    (* Arbitration liveness: a dispute that has made no progress for a
       whole patience window (no eligible voter exists, or voters keep
       dying) is declared unresolvable — the recorded verdict stands,
       the campaign completes, and the caller exits 19. *)
    let stale =
      Hashtbl.fold
        (fun _ a acc -> if now -. a.since > cfg.arb_patience then a :: acc else acc)
        arbs []
    in
    List.iter
      (fun a ->
        List.iter
          (fun (index, _, _, _, _) ->
            incr arb_unresolved;
            on_event
              (Arbitration_failed
                 {
                   chunk_id = a.achunk;
                   index;
                   reason =
                     Printf.sprintf "no quorum reachable within %.1fs patience" cfg.arb_patience;
                 }))
          a.disputes;
        Hashtbl.remove arbs a.achunk)
      stale
  in
  (* ---------------------------------------------------------------- *)
  (* Event loop.                                                       *)
  let select_tick () =
    let fds = t.listen_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ =
      match restart (fun () -> Unix.select fds [] [] cfg.tick) with
      | r -> r
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then accept ();
    (* [!conns] is a snapshot: [drop] inside [pump] only rebinds the ref,
       and [drop]/[pump] are harmless on already-dropped connections. *)
    List.iter (fun conn -> if List.memq conn.fd readable then pump conn) !conns
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Journal.close writer;
      try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  while (not (finished ())) && not (should_stop ()) do
    select_tick ();
    expire_leases ()
  done;
  let completed = !n_done >= n in
  (* Mismatches surfacing after this point (straggler re-deliveries
     during drain) cannot recruit voters any more: they are counted as
     unresolved instead of opening an arbitration nobody can settle. *)
  draining := true;
  if finished () then begin
    if completed then on_event Completed;
    (* Keep answering Requests (each now gets Done) until every worker
       reads its Done and hangs up, or the drain window lapses. Slamming
       the sockets shut here instead would race a worker's in-flight
       Request: the RST discards the buffered Done and the worker sees a
       lost session instead of a finished campaign. An interrupted
       campaign skips the drain: no Done is ever sent for an incomplete
       run, and workers fall back to their reconnect loop (the
       coordinator may be resumed). *)
    let deadline = Mono.now () +. cfg.drain in
    while !conns <> [] && Mono.now () < deadline do
      chaos_proc Chaos.Drain;
      select_tick ()
    done
  end;
  List.iter (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  let b = ref 0 and l = ref 0 and s = ref 0 and sk = ref 0 and cr = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some Journal.Benign -> incr b
      | Some Journal.Latent -> incr l
      | Some (Journal.Sdc _) -> incr s
      | Some Journal.Skipped -> incr sk
      | Some Journal.Crashed -> incr cr)
    outcomes;
  {
    stats =
      {
        Campaign.injections = !b + !l + !s;
        benign = !b;
        latent = !l;
        sdc = !s;
        skipped = !sk;
        crashed = !cr;
      };
    completed;
    recovered = !recovered;
    dropped_bytes = !dropped_bytes;
    duplicates = !duplicates;
    mismatches = !mismatches;
    redispatched = !redispatched;
    workers = Hashtbl.length workers;
    poisoned = List.sort compare !poisoned;
    blacklisted = Hashtbl.length refused;
    verified = !verified;
    rejoined = !rejoined;
    epoch = header.Journal.epoch;
    arb_resolved = !arb_resolved;
    arb_overturned = !arb_overturned;
    arb_unresolved = !arb_unresolved;
    suspects =
      Hashtbl.fold (fun name () acc -> (name, Reputation.score reputation name) :: acc) suspects []
      |> List.sort compare;
  }
