type config = {
  listen : string;
  port : int;
  chunk_size : int;
  lease : float;
  write_timeout : float;
  tick : float;
  drain : float;
}

let default_config =
  {
    listen = "127.0.0.1";
    port = 0;
    chunk_size = 256;
    lease = 10.;
    write_timeout = 5.;
    tick = 0.05;
    drain = 5.;
  }

type event =
  | Joined of { worker : string }
  | Left of { worker : string; reason : string }
  | Assigned of { worker : string; chunk : Proto.chunk }
  | Redispatched of { worker : string; chunk_id : int; reason : string }
  | Progress of { done_ : int; total : int }
  | Duplicate of { worker : string; index : int }
  | Mismatch of { worker : string; index : int }
  | Completed

let pp_event ppf = function
  | Joined { worker } -> Format.fprintf ppf "worker %s joined" worker
  | Left { worker; reason } -> Format.fprintf ppf "worker %s left (%s)" worker reason
  | Assigned { worker; chunk } ->
    Format.fprintf ppf "chunk %d [%d..%d] -> %s" chunk.Proto.chunk_id chunk.Proto.lo
      chunk.Proto.hi worker
  | Redispatched { worker; chunk_id; reason } ->
    Format.fprintf ppf "chunk %d requeued from %s (%s)" chunk_id worker reason
  | Progress { done_; total } -> Format.fprintf ppf "%d/%d verdicts" done_ total
  | Duplicate { worker; index } ->
    Format.fprintf ppf "duplicate verdict for sample %d from %s (deduplicated)" index worker
  | Mismatch { worker; index } ->
    Format.fprintf ppf "DETERMINISM VIOLATION on sample %d from %s (first verdict kept)" index
      worker
  | Completed -> Format.fprintf ppf "campaign complete"

type result = {
  stats : Campaign.stats;
  completed : bool;
  recovered : int;
  dropped_bytes : int;
  duplicates : int;
  mismatches : int;
  redispatched : int;
  workers : int;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  mutable served : bool;
}

let rec restart f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let create ?(config = default_config) () =
  if config.chunk_size < 1 then invalid_arg "Coordinator.create: chunk_size must be positive";
  if config.lease <= 0. then invalid_arg "Coordinator.create: lease must be positive";
  if config.drain < 0. then invalid_arg "Coordinator.create: drain must be non-negative";
  (* A worker death must surface as a socket error on our side, not kill
     the coordinator process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.listen, config.port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  { config; listen_fd = fd; served = false }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> 0

(* ------------------------------------------------------------------ *)
(* Per-connection state.                                               *)

type conn = {
  fd : Unix.file_descr;
  dec : Proto.decoder;
  mutable name : string;  (* peer address until Hello names it *)
  mutable greeted : bool;
  mutable last_seen : float;
  mutable leases : int list;  (* chunk ids this connection holds *)
}

type chunk_state =
  | Pending
  | Leased
  | Complete

let serve t ~header ?journal ?(resume = false) ?records_per_segment
    ?(should_stop = fun () -> false) ?(on_event = fun _ -> ()) () =
  if t.served then invalid_arg "Coordinator.serve: already served";
  t.served <- true;
  if header.Journal.audit <> 0. then
    invalid_arg "Coordinator.serve: the audit sentinel is single-process only (audit must be 0)";
  if resume && journal = None then invalid_arg "Coordinator.serve: resume requires a journal";
  let cfg = t.config in
  let n = header.Journal.samples in
  let outcomes : Journal.outcome option array = Array.make n None in
  let n_done = ref 0 in
  let recovered = ref 0 in
  let dropped_bytes = ref 0 in
  let duplicates = ref 0 in
  let mismatches = ref 0 in
  let redispatched = ref 0 in
  let workers = Hashtbl.create 16 in
  let writer =
    match journal with
    | None -> None
    | Some dir when resume ->
      let h, entries, dropped, w = Journal.resume ?records_per_segment ~dir () in
      Journal.require_match ~what:dir h header;
      Array.iter
        (function
          | Journal.Outcome (i, o) ->
            if i >= 0 && i < n && outcomes.(i) = None then begin
              outcomes.(i) <- Some o;
              incr n_done;
              incr recovered
            end
          | Journal.Quarantine _ -> ())
        entries;
      dropped_bytes := dropped;
      Some w
    | Some dir -> Some (Journal.create ?records_per_segment ~dir header)
  in
  (* ---------------------------------------------------------------- *)
  (* Chunk table. Coverage of the outcome range is the ground truth;   *)
  (* the state array only caches whether a chunk is queued, out on a   *)
  (* lease, or retired.                                                *)
  let n_chunks = (n + cfg.chunk_size - 1) / cfg.chunk_size in
  let chunk_lo c = c * cfg.chunk_size in
  let chunk_hi c = min (n - 1) (((c + 1) * cfg.chunk_size) - 1) in
  let covered c =
    let ok = ref true in
    for i = chunk_lo c to chunk_hi c do
      if outcomes.(i) = None then ok := false
    done;
    !ok
  in
  let state = Array.make n_chunks Pending in
  let pending = Queue.create () in
  for c = 0 to n_chunks - 1 do
    if covered c then state.(c) <- Complete else Queue.push c pending
  done;
  (* [pending] may hold stale ids (requeued chunks completed meanwhile by
     a straggler's duplicates); [pop_chunk] re-validates on the way out. *)
  let rec pop_chunk () =
    match Queue.pop pending with
    | exception Queue.Empty -> None
    | c when state.(c) <> Pending -> pop_chunk ()
    | c when covered c ->
      state.(c) <- Complete;
      pop_chunk ()
    | c -> Some c
  in
  let requeue ~reason conn =
    List.iter
      (fun c ->
        if state.(c) = Leased then begin
          state.(c) <- Pending;
          Queue.push c pending;
          incr redispatched;
          on_event (Redispatched { worker = conn.name; chunk_id = c; reason })
        end)
      conn.leases;
    conn.leases <- []
  in
  (* ---------------------------------------------------------------- *)
  (* Connections.                                                      *)
  let conns : conn list ref = ref [] in
  let drop ~reason conn =
    if List.memq conn !conns then begin
      conns := List.filter (fun c -> not (c == conn)) !conns;
      requeue ~reason conn;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      on_event (Left { worker = conn.name; reason })
    end
  in
  let send conn msg =
    try Proto.send ~deadline:(Unix.gettimeofday () +. cfg.write_timeout) conn.fd msg with
    | Proto.Error reason -> drop ~reason conn
    | Unix.Unix_error (e, _, _) -> drop ~reason:(Unix.error_message e) conn
  in
  let record i o =
    outcomes.(i) <- Some o;
    incr n_done;
    match writer with
    | Some w -> Journal.append w (Journal.Outcome (i, o))
    | None -> ()
  in
  (* Fatal per-connection protocol violations are raised as [Proto.Error]
     and only drop the offending connection, never the campaign. *)
  let handle conn msg =
    conn.last_seen <- Unix.gettimeofday ();
    match msg with
    | Proto.Hello { version; name } ->
      if version <> Proto.version then
        raise (Proto.Error (Printf.sprintf "protocol version %d, expected %d" version Proto.version));
      conn.name <- name;
      conn.greeted <- true;
      Hashtbl.replace workers name ();
      on_event (Joined { worker = name });
      send conn (Proto.Welcome header)
    | _ when not conn.greeted -> raise (Proto.Error "first message must be Hello")
    | Proto.Request -> (
      match pop_chunk () with
      | Some c ->
        state.(c) <- Leased;
        conn.leases <- c :: conn.leases;
        let chunk = { Proto.chunk_id = c; lo = chunk_lo c; hi = chunk_hi c } in
        on_event (Assigned { worker = conn.name; chunk });
        send conn (Proto.Assign chunk)
      | None -> send conn (if !n_done >= n then Proto.Done else Proto.Wait))
    | Proto.Results { chunk_id; results } ->
      if chunk_id < 0 || chunk_id >= n_chunks then
        raise (Proto.Error (Printf.sprintf "results for unknown chunk %d" chunk_id));
      Array.iter
        (fun (i, o) ->
          if i < 0 || i >= n then
            raise (Proto.Error (Printf.sprintf "result for sample %d outside [0, %d)" i n));
          match outcomes.(i) with
          | None -> record i o
          | Some prev when prev = o ->
            (* A re-dispatched chunk's second delivery: verdicts are
               deterministic, so equal is the only legal outcome —
               dropped, not double-counted. *)
            incr duplicates;
            on_event (Duplicate { worker = conn.name; index = i })
          | Some _ ->
            incr mismatches;
            on_event (Mismatch { worker = conn.name; index = i });
            raise (Proto.Error (Printf.sprintf "determinism violation on sample %d" i)))
        results;
      on_event (Progress { done_ = !n_done; total = n })
    | Proto.Chunk_done { chunk_id } ->
      if chunk_id < 0 || chunk_id >= n_chunks then
        raise (Proto.Error (Printf.sprintf "done for unknown chunk %d" chunk_id));
      conn.leases <- List.filter (fun c -> c <> chunk_id) conn.leases;
      if covered chunk_id then state.(chunk_id) <- Complete
      else if state.(chunk_id) = Leased then begin
        (* The worker claims completion but the range has holes (lost
           frames?): requeue rather than trust the claim. *)
        state.(chunk_id) <- Pending;
        Queue.push chunk_id pending;
        incr redispatched;
        on_event (Redispatched { worker = conn.name; chunk_id; reason = "incomplete chunk" })
      end
    | Proto.Heartbeat -> ()
    | Proto.Welcome _ | Proto.Assign _ | Proto.Wait | Proto.Done ->
      raise (Proto.Error "coordinator-only message from a worker")
  in
  let accept () =
    match restart (fun () -> Unix.accept t.listen_fd) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | fd, peer ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let name =
        match peer with
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX s -> s
      in
      conns :=
        { fd; dec = Proto.decoder (); name; greeted = false; last_seen = Unix.gettimeofday ();
          leases = [] }
        :: !conns
  in
  let read_buf = Bytes.create 65536 in
  let pump conn =
    match restart (fun () -> Unix.read conn.fd read_buf 0 (Bytes.length read_buf)) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> drop ~reason:(Unix.error_message e) conn
    | 0 -> drop ~reason:"disconnected" conn
    | k -> (
      Proto.feed conn.dec read_buf k;
      try
        let quit = ref false in
        while not !quit do
          match Proto.next_frame conn.dec with
          | None -> quit := true
          | Some payload -> handle conn (Proto.decode payload)
        done
      with Proto.Error reason -> drop ~reason conn)
  in
  let expire_leases () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun conn ->
        (* Keep the connection: a straggler may still deliver (its late
           results deduplicate); only its claim on the chunks lapses. *)
        if conn.leases <> [] && now -. conn.last_seen > cfg.lease then
          requeue ~reason:"lease expired" conn)
      !conns
  in
  (* ---------------------------------------------------------------- *)
  (* Event loop.                                                       *)
  let select_tick () =
    let fds = t.listen_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ =
      match restart (fun () -> Unix.select fds [] [] cfg.tick) with
      | r -> r
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then accept ();
    (* [!conns] is a snapshot: [drop] inside [pump] only rebinds the ref,
       and [drop]/[pump] are harmless on already-dropped connections. *)
    List.iter (fun conn -> if List.memq conn.fd readable then pump conn) !conns
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Journal.close writer;
      try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  while !n_done < n && not (should_stop ()) do
    select_tick ();
    expire_leases ()
  done;
  let completed = !n_done >= n in
  if completed then begin
    on_event Completed;
    (* Keep answering Requests (each now gets Done) until every worker
       reads its Done and hangs up, or the drain window lapses. Slamming
       the sockets shut here instead would race a worker's in-flight
       Request: the RST discards the buffered Done and the worker sees a
       lost session instead of a finished campaign. An interrupted
       campaign skips the drain: no Done is ever sent for an incomplete
       run, and workers fall back to their reconnect loop (the
       coordinator may be resumed). *)
    let deadline = Unix.gettimeofday () +. cfg.drain in
    while !conns <> [] && Unix.gettimeofday () < deadline do
      select_tick ()
    done
  end;
  List.iter (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  let b = ref 0 and l = ref 0 and s = ref 0 and sk = ref 0 and cr = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some Journal.Benign -> incr b
      | Some Journal.Latent -> incr l
      | Some (Journal.Sdc _) -> incr s
      | Some Journal.Skipped -> incr sk
      | Some Journal.Crashed -> incr cr)
    outcomes;
  {
    stats =
      {
        Campaign.injections = !b + !l + !s;
        benign = !b;
        latent = !l;
        sdc = !s;
        skipped = !sk;
        crashed = !cr;
      };
    completed;
    recovered = !recovered;
    dropped_bytes = !dropped_bytes;
    duplicates = !duplicates;
    mismatches = !mismatches;
    redispatched = !redispatched;
    workers = Hashtbl.length workers;
  }
