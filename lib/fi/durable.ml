module Prng = Pruning_util.Prng
module Backoff = Pruning_util.Backoff

type audit_hooks = {
  masking : flop_id:int -> cycle:int -> int list;
  quarantine : int -> unit;
  describe : int -> string;
}

type violation = {
  v_index : int;
  v_flop_id : int;
  v_cycle : int;
  v_verdict : Campaign.verdict;
  v_mates : int list;
}

type audit_report = {
  audited : int;
  violations : violation list;
  quarantined : int list;
}

type result = {
  stats : Campaign.stats;
  audit : audit_report;
  completed : bool;
  recovered : int;
  dropped_bytes : int;
  retried : int;
}

let outcome_of_verdict : Campaign.verdict -> Journal.outcome = function
  | Campaign.Benign -> Journal.Benign
  | Campaign.Latent -> Journal.Latent
  | Campaign.Sdc c -> Journal.Sdc c

let run campaign ~space ~seed ~n ?(ident = ("unknown", "unknown")) ?skip ?audit ?(jobs = 1)
    ?(batched = false) ?kernel ?lanes ?budget ?(retries = 2)
    ?(retry_backoff = Backoff.retry_policy) ?journal ?(resume = false) ?records_per_segment
    ?(should_stop = fun () -> false) ?chaos ?fault () =
  if n < 0 then invalid_arg "Durable.run: n must be non-negative";
  if jobs < 1 then invalid_arg "Durable.run: jobs must be positive";
  if retries < 0 then invalid_arg "Durable.run: retries must be non-negative";
  let kernel =
    match kernel with
    | Some k ->
      if batched && k <> Campaign.Batched then
        invalid_arg "Durable.run: ~batched:true conflicts with ~kernel";
      k
    | None -> if batched then Campaign.Batched else Campaign.Scalar
  in
  (match lanes with
  | None -> ()
  | Some l ->
    let max_l =
      match kernel with
      | Campaign.Batched -> Campaign.max_fault_lanes
      | Campaign.Delta_batched -> Campaign.max_delta_lanes
      | Campaign.Scalar | Campaign.Delta ->
        invalid_arg "Durable.run: ~lanes requires the batched or delta-batched kernel"
    in
    if l < 1 || l > max_l then
      invalid_arg (Printf.sprintf "Durable.run: lanes must be in [1, %d]" max_l));
  (* The lane-parallel engines carry exactly one flop flip per lane, so
     non-SEU fault models map each batched kernel to its scalar-family
     reference before anything derived from the kernel (shard count,
     header [batched] flag) is computed — the mapping is a pure function
     of (model, requested kernel), so resumed runs re-derive the same
     effective kernel and the same header. *)
  let kernel =
    match (space.Fault_space.model, kernel) with
    | Fault_model.Seu, k -> k
    | _, Campaign.Batched -> Campaign.Scalar
    | _, Campaign.Delta_batched -> Campaign.Delta
    | _, k -> k
  in
  (match audit with
  | Some (p, _) when not (p >= 0. && p <= 1.) ->
    invalid_arg "Durable.run: audit fraction must be in [0, 1]"
  | _ -> ());
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Durable.run: budget must be positive"
  | _ -> ());
  if resume && journal = None then invalid_arg "Durable.run: resume requires a journal";
  let core, program = ident in
  (* Identical draw order to [Campaign.run_sample]: the fault list is a
     function of the seed alone, so journal resume, jobs count and the
     batched engine all see the same samples. *)
  let rng = Prng.create seed in
  let master_state = Prng.save rng in
  let samples = Campaign.draw_samples campaign ~space ~rng ~n in
  (* One shard for the single-worker engines (the lane worker and the
     delta worker are shared, not domain-safe); the scalar engine fans
     out over [jobs] domains. *)
  let shards =
    match kernel with
    | Campaign.Batched | Campaign.Delta | Campaign.Delta_batched -> 1
    | Campaign.Scalar -> max 1 (min jobs (max 1 n))
  in
  (* Per-shard audit samplers, split off deterministically after the
     sample draw; their initial states are pinned in the journal header
     so a resumed run replays the identical audit decisions. *)
  let shard_states = Array.init shards (fun _ -> Prng.save (Prng.split rng)) in
  let audit_p, hooks =
    match audit with
    | Some (p, h) -> (p, Some h)
    | None -> (0., None)
  in
  let header : Journal.header =
    {
      Journal.core;
      program;
      cycles = Campaign.total_cycles campaign;
      seed;
      samples = n;
      prune = skip <> None;
      audit = audit_p;
      shards;
      batched = kernel = Campaign.Batched;
      epoch = 0;
      fault_model = space.Fault_space.model;
      prng = master_state;
      shard_prng = shard_states;
    }
  in
  (* Shared supervisor state; [lock] guards everything but [outcomes],
     whose cells are each written by exactly one shard. *)
  let lock = Mutex.create () in
  let outcomes : Journal.outcome option array = Array.make n None in
  let violations = ref [] in
  let quarantined = ref [] in
  let audited = ref 0 in
  let retried = ref 0 in
  let pre_quarantine m =
    match hooks with
    | Some h ->
      h.quarantine m;
      quarantined := m :: !quarantined
    | None -> quarantined := m :: !quarantined
  in
  let writer, recovered, dropped_bytes =
    match journal with
    | None -> (None, 0, 0)
    | Some dir when resume ->
      let h, entries, dropped, w = Journal.resume ?records_per_segment ?chaos ~dir () in
      Journal.require_match ~what:dir h header;
      let recovered = ref 0 in
      Array.iter
        (function
          | Journal.Outcome (i, o) ->
            if i >= 0 && i < n && outcomes.(i) = None then begin
              outcomes.(i) <- Some o;
              incr recovered
            end
          | Journal.Quarantine m -> pre_quarantine m
          (* Distributed-only arbitration override: the quorum's verdict
             supersedes the disputed Outcome recorded before it. *)
          | Journal.Arbitrated { index = i; outcome = o; _ } ->
            if i >= 0 && i < n then begin
              if outcomes.(i) = None then incr recovered;
              outcomes.(i) <- Some o
            end
          (* Distributed-only marker; a local journal never writes one,
             but resuming must not choke on it either. *)
          | Journal.Poisoned _ -> ())
        entries;
      (Some w, !recovered, dropped)
    | Some dir -> (Some (Journal.create ?records_per_segment ?chaos ~dir header), 0, 0)
  in
  (* Retry pacing: capped exponential backoff whose jitter is drawn from
     a generator split off the shard's pinned PRNG state — a rerun that
     hits the same failures sleeps the same schedule. *)
  let shard_backoff s =
    Backoff.create ~policy:retry_backoff (Prng.split (Prng.restore shard_states.(s)))
  in
  let journal_entry e =
    match writer with
    | Some w -> Journal.append w e
    | None -> ()
  in
  let record i (o : Journal.outcome) =
    outcomes.(i) <- Some o;
    journal_entry (Journal.Outcome (i, o))
  in
  let is_pruned ~flop_id ~cycle =
    match skip with
    | Some f -> f ~flop_id ~cycle
    | None -> false
  in
  (* A pruned fault's non-benign verdict: quarantine what claimed it
     benign, journal the quarantines before the verdict (so a resume
     replays them in order), and count the fault by its real verdict. *)
  let handle_violation i ~flop_id ~cycle v =
    let mates =
      match hooks with
      | Some h -> h.masking ~flop_id ~cycle
      | None -> []
    in
    Mutex.lock lock;
    (match hooks with
    | Some h -> List.iter h.quarantine mates
    | None -> ());
    quarantined := List.rev_append mates !quarantined;
    violations :=
      { v_index = i; v_flop_id = flop_id; v_cycle = cycle; v_verdict = v; v_mates = mates }
      :: !violations;
    Mutex.unlock lock;
    List.iter (fun m -> journal_entry (Journal.Quarantine m)) mates
  in
  let bump r =
    Mutex.lock lock;
    incr r;
    Mutex.unlock lock
  in
  (* Infrastructure chaos around one experiment attempt. A [Crash]
     raises {!Chaos.Injected}, retried without consuming the retry
     budget: a finite chaos plan must never turn a healthy experiment
     into a [Crashed] verdict, or chaos runs would change the stats. *)
  let exec_chaos () =
    match Option.map (fun c -> Chaos.draw c Chaos.Exec) chaos with
    | Some Chaos.Crash -> raise (Chaos.Injected "experiment crashed")
    | Some (Chaos.Stall s) -> Unix.sleepf s
    | _ -> ()
  in
  (* ---------------------------------------------------------------- *)
  (* Sequential (one-fault-at-a-time) shards: the scalar and delta
     kernels share this loop, differing only in the injector and in how
     a crashed worker is recovered.                                    *)
  let run_seq_shard ~shard ~inject ~recover arng lo hi =
    let bo = shard_backoff shard in
    let i = ref lo in
    while !i <= hi && not (should_stop ()) do
      let idx = !i in
      let flop_id, cycle = samples.(idx) in
      (* One audit draw per index, consumed whether or not it is used:
         resumed runs and quarantine-perturbed runs stay stream-aligned. *)
      let draw = Prng.float arng in
      if outcomes.(idx) = None then begin
        let pruned = is_pruned ~flop_id ~cycle in
        let auditing = pruned && hooks <> None && draw < audit_p in
        if pruned && not auditing then record idx Journal.Skipped
        else begin
          Backoff.reset bo;
          let rec attempt k =
            match
              exec_chaos ();
              (match fault with
              | Some f -> f ~shard ~index:idx ~attempt:k
              | None -> ());
              inject ~flop_id ~cycle
            with
            | v -> Some v
            | exception Chaos.Injected _ -> attempt k
            | exception _ ->
              (* The worker may be mid-run; rebuild it before retrying,
                 and back off so a systemic failure (disk full,
                 OOM-adjacent) is not hammered at full speed. *)
              recover ();
              bump retried;
              if k < retries then begin
                Unix.sleepf (Backoff.next bo);
                attempt (k + 1)
              end
              else None
          in
          match attempt 0 with
          | None -> record idx Journal.Crashed
          | Some v ->
            if auditing then begin
              bump audited;
              if v = Campaign.Benign then
                (* The prune was sound: keep the unaudited accounting. *)
                record idx Journal.Skipped
              else begin
                handle_violation idx ~flop_id ~cycle v;
                record idx (outcome_of_verdict v)
              end
            end
            else record idx (outcome_of_verdict v)
        end
      end;
      incr i
    done
  in
  (* Scalar instantiation: a private worker rebuilt from a fresh system
     ([make ()]) on crash. *)
  let run_scalar_shard ~shard worker0 arng lo hi =
    let worker = ref worker0 in
    run_seq_shard ~shard
      ~inject:(fun ~flop_id ~cycle ->
        Campaign.inject_fault ?budget campaign !worker ~space ~key:flop_id ~cycle)
      ~recover:(fun () -> worker := Campaign.fresh_worker campaign)
      arng lo hi
  in
  (* ---------------------------------------------------------------- *)
  (* Windowed (many-faults-at-once) shard: one domain, journaled per
     window. The lane-parallel and batched-delta kernels share this
     loop, differing only in the whole-window injector, the crashed
     worker recovery, and the window width.                            *)
  let run_windowed ~window ~inject_all ~recover arng =
    let bo = shard_backoff 0 in
    let lo = ref 0 in
    while !lo < n && not (should_stop ()) do
      let hi = min (n - 1) (!lo + window - 1) in
      (* Classify the window: what to record directly, what to inject.
         [fresh] excludes journal-recovered outcomes from re-journaling. *)
      let fresh = Array.init (hi - !lo + 1) (fun j -> outcomes.(!lo + j) = None) in
      let to_inject = ref [] in
      for idx = !lo to hi do
        let flop_id, cycle = samples.(idx) in
        let draw = Prng.float arng in
        if outcomes.(idx) = None then begin
          let pruned = is_pruned ~flop_id ~cycle in
          let auditing = pruned && hooks <> None && draw < audit_p in
          if pruned && not auditing then outcomes.(idx) <- Some Journal.Skipped
          else to_inject := (idx, auditing) :: !to_inject
        end
      done;
      let to_inject = List.rev !to_inject in
      (if to_inject <> [] then begin
         let faults = Array.of_list (List.map (fun (idx, _) -> samples.(idx)) to_inject) in
         Backoff.reset bo;
         let rec attempt k =
           match
             exec_chaos ();
             (match fault with
             | Some f -> f ~shard:0 ~index:!lo ~attempt:k
             | None -> ());
             inject_all ~faults
           with
           | verdicts -> Some verdicts
           | exception Chaos.Injected _ -> attempt k
           | exception _ ->
             (* The worker's lane state is unknown; rebuild it. *)
             recover ();
             bump retried;
             if k < retries then begin
               Unix.sleepf (Backoff.next bo);
               attempt (k + 1)
             end
             else None
         in
         match attempt 0 with
         | None ->
           (* A persistently failing window is recorded at window
              granularity — the batch engine classifies it as a unit. *)
           List.iter (fun (idx, _) -> outcomes.(idx) <- Some Journal.Crashed) to_inject
         | Some verdicts ->
           List.iteri
             (fun j (idx, auditing) ->
               let v = verdicts.(j) in
               let flop_id, cycle = samples.(idx) in
               if auditing then begin
                 bump audited;
                 if v = Campaign.Benign then outcomes.(idx) <- Some Journal.Skipped
                 else begin
                   handle_violation idx ~flop_id ~cycle v;
                   outcomes.(idx) <- Some (outcome_of_verdict v)
                 end
               end
               else outcomes.(idx) <- Some (outcome_of_verdict v))
             to_inject
       end);
      (* Journal the window's new outcomes in index order once it is
         classified (a kill mid-window loses at most one window of
         work, which the resume simply re-runs). *)
      for idx = !lo to hi do
        if fresh.(idx - !lo) then
          match outcomes.(idx) with
          | Some o -> journal_entry (Journal.Outcome (idx, o))
          | None -> ()
      done;
      lo := hi + 1
    done
  in
  Fun.protect ~finally:(fun () -> Option.iter Journal.close writer) @@ fun () ->
  (match kernel with
  | Campaign.Batched ->
    run_windowed
      ~window:(4 * Option.value lanes ~default:Campaign.max_fault_lanes)
      ~inject_all:(fun ~faults -> Campaign.inject_batch campaign ?lanes ~faults ())
      ~recover:(fun () -> Campaign.reset_lane_worker campaign)
      (Prng.restore shard_states.(0))
  | Campaign.Delta_batched ->
    run_windowed
      ~window:(4 * Option.value lanes ~default:Campaign.max_delta_lanes)
      ~inject_all:(fun ~faults -> Campaign.inject_delta_batch campaign ?lanes ~faults ())
      ~recover:(fun () -> Campaign.reset_delta_batch_worker campaign)
      (Prng.restore shard_states.(0))
  | Campaign.Delta ->
    (* The delta worker (shared golden trace + devices) is not
       domain-safe, so the delta kernel always runs one shard. *)
    run_seq_shard ~shard:0
      ~inject:(fun ~flop_id ~cycle ->
        Campaign.inject_fault_delta ?budget campaign ~space ~key:flop_id ~cycle)
      ~recover:(fun () -> Campaign.reset_delta_worker campaign)
      (Prng.restore shard_states.(0))
      0 (n - 1)
  | Campaign.Scalar ->
    if shards = 1 then
      run_scalar_shard ~shard:0 (Campaign.primary_worker campaign)
        (Prng.restore shard_states.(0))
        0 (n - 1)
    else begin
      let chunk = (n + shards - 1) / shards in
      let domains =
        List.init shards (fun s ->
            let lo = s * chunk in
            let hi = min (n - 1) (((s + 1) * chunk) - 1) in
            Domain.spawn (fun () ->
                if lo <= hi then
                  run_scalar_shard ~shard:s
                    (Campaign.fresh_worker campaign)
                    (Prng.restore shard_states.(s))
                    lo hi))
      in
      List.iter Domain.join domains
    end);
  let b = ref 0 and l = ref 0 and s = ref 0 and sk = ref 0 and cr = ref 0 and done_ = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some o ->
        incr done_;
        (match o with
        | Journal.Benign -> incr b
        | Journal.Latent -> incr l
        | Journal.Sdc _ -> incr s
        | Journal.Skipped -> incr sk
        | Journal.Crashed -> incr cr))
    outcomes;
  {
    stats =
      {
        Campaign.injections = !b + !l + !s;
        benign = !b;
        latent = !l;
        sdc = !s;
        skipped = !sk;
        crashed = !cr;
      };
    audit =
      {
        audited = !audited;
        violations = List.rev !violations;
        quarantined = List.rev !quarantined;
      };
    completed = !done_ = n;
    recovered;
    dropped_bytes;
    retried = !retried;
  }
