module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module System = Pruning_cpu.System
module Prng = Pruning_util.Prng

type verdict =
  | Benign
  | Latent
  | Sdc of int

(* A memo key is the exact architectural difference from the golden run at
   a checkpoint: (checkpoint index, differing flops with their faulty
   values, differing RAM cells with their faulty values), both in
   ascending index order. The simulator is deterministic, so equal state
   at an equal cycle implies an identical remainder of the run — the
   verdict can be replayed from the table instead of re-simulated. *)
type memo_key = int * (int * bool) list * (int * int) list

type worker = {
  w_sys : System.t;
  w_restores : (unit -> unit) array;
      (* w_restores.(i) rewinds w_sys to the start of cycle i*interval *)
}

type t = {
  make : unit -> System.t;
  total_cycles : int;
  interval : int;  (* checkpoint spacing in cycles *)
  out_wires : int array;
  golden_outputs : bool array array;  (** per cycle *)
  golden_flops : bool array;  (** at horizon *)
  golden_ram : int array;  (** at horizon *)
  cp_flops : bool array array;  (** golden flop state per checkpoint *)
  cp_ram : int array array;  (** golden RAM per checkpoint *)
  memo : (memo_key, verdict) Hashtbl.t;
      (* shared across workers: one domain's classified divergence state
         short-circuits every other domain's matching runs *)
  memo_lock : Mutex.t;
  primary : worker;  (** worker for the calling domain (not domain-safe) *)
}

let output_wires nl =
  List.concat_map
    (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
    nl.Netlist.outputs
  |> Array.of_list

let read_outputs sim out_wires = Array.map (fun w -> Sim.peek sim w) out_wires

let read_flops sim nl =
  Array.map (fun (f : Netlist.flop) -> Sim.peek sim f.Netlist.q) nl.Netlist.flops

let create ?checkpoint_interval ~make ~total_cycles () =
  if total_cycles <= 0 then invalid_arg "Campaign.create: total_cycles must be positive";
  let interval =
    match checkpoint_interval with
    | Some k ->
      if k <= 0 then invalid_arg "Campaign.create: checkpoint_interval must be positive";
      k
    | None -> max 1 (total_cycles / 64)
  in
  let n_cp = 1 + ((total_cycles - 1) / interval) in
  let sys = make () in
  let sim = sys.System.sim in
  let nl = sys.System.netlist in
  let out_wires = output_wires nl in
  let golden_outputs = Array.make total_cycles [||] in
  let cp_flops = Array.make n_cp [||] in
  let cp_ram = Array.make n_cp [||] in
  let restores = Array.make n_cp (fun () -> ()) in
  for cycle = 0 to total_cycles - 1 do
    if cycle mod interval = 0 then begin
      let i = cycle / interval in
      cp_flops.(i) <- read_flops sim nl;
      cp_ram.(i) <- Array.copy sys.System.ram;
      restores.(i) <- System.save_state sys
    end;
    Sim.eval sim;
    golden_outputs.(cycle) <- read_outputs sim out_wires;
    Sim.latch sim
  done;
  Sim.eval sim;
  {
    make;
    total_cycles;
    interval;
    out_wires;
    golden_outputs;
    golden_flops = read_flops sim nl;
    golden_ram = Array.copy sys.System.ram;
    cp_flops;
    cp_ram;
    memo = Hashtbl.create 256;
    memo_lock = Mutex.create ();
    primary = { w_sys = sys; w_restores = restores };
  }

let checkpoint_interval t = t.interval

(* A fresh worker for another domain: its own system plus its own
   checkpoint snapshots, rebuilt by replaying the golden run up to the
   last checkpoint (the prefix cost is paid once per worker and amortized
   over all its injections). *)
let fresh_worker t =
  let sys = t.make () in
  let sim = sys.System.sim in
  let n_cp = Array.length t.cp_flops in
  let restores = Array.make n_cp (fun () -> ()) in
  restores.(0) <- System.save_state sys;
  for cycle = 1 to (n_cp - 1) * t.interval do
    Sim.step sim ();
    if cycle mod t.interval = 0 then restores.(cycle / t.interval) <- System.save_state sys
  done;
  { w_sys = sys; w_restores = restores }

let outputs_match t sim cycle =
  let golden = t.golden_outputs.(cycle) in
  let n = Array.length t.out_wires in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if Sim.peek sim t.out_wires.(!i) <> golden.(!i) then ok := false;
    incr i
  done;
  !ok

(* Bound on tracked state differences: larger diffs (e.g. a derailed PC
   smearing state everywhere) almost never recur exactly, so memoizing
   them would only cost memory. *)
let max_memo_diff = 32
let max_memo_entries = 1 lsl 20

(* Architectural diff of the worker's current state against the golden
   state at checkpoint [cp]; [None] when more than [max_memo_diff] cells
   differ. [Some ([], [])] means the faulty run has re-converged. *)
let state_diff t w ~cp =
  let sim = w.w_sys.System.sim in
  let flops = w.w_sys.System.netlist.Netlist.flops in
  let gf = t.cp_flops.(cp) in
  let gr = t.cp_ram.(cp) in
  let ram = w.w_sys.System.ram in
  let exception Too_big in
  try
    let count = ref 0 in
    let fd = ref [] in
    for i = Array.length flops - 1 downto 0 do
      let v = Sim.peek sim flops.(i).Netlist.q in
      if v <> gf.(i) then begin
        incr count;
        if !count > max_memo_diff then raise Too_big;
        fd := (i, v) :: !fd
      end
    done;
    let rd = ref [] in
    for a = Array.length ram - 1 downto 0 do
      if ram.(a) <> gr.(a) then begin
        incr count;
        if !count > max_memo_diff then raise Too_big;
        rd := (a, ram.(a)) :: !rd
      end
    done;
    Some (!fd, !rd)
  with Too_big -> None

let inject_with t w ~flop_id ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then invalid_arg "Campaign.inject: cycle out of range";
  let sys = w.w_sys in
  let sim = sys.System.sim in
  let nl = sys.System.netlist in
  (* Rewind to the nearest checkpoint at or before the injection cycle and
     replay the (fault-free) remainder of the prefix. *)
  let cp = cycle / t.interval in
  w.w_restores.(cp) ();
  for _ = 1 to cycle - (cp * t.interval) do
    Sim.step sim ()
  done;
  Sim.eval sim;
  Sim.set_flop sim flop_id (not (Sim.get_flop sim flop_id));
  (* Continue, watching the outputs; at every checkpoint boundary compare
     the architectural state against the golden run to (a) return Benign
     as soon as the fault has been fully masked and (b) reuse or record a
     memoized verdict for the exact remaining divergence. *)
  let result = ref None in
  let pending = ref [] in
  let c = ref cycle in
  while !result = None && !c < t.total_cycles do
    if !c mod t.interval = 0 then begin
      let i = !c / t.interval in
      match state_diff t w ~cp:i with
      | Some ([], []) -> result := Some Benign
      | Some (fd, rd) -> (
        let key = (i, fd, rd) in
        Mutex.lock t.memo_lock;
        let hit = Hashtbl.find_opt t.memo key in
        Mutex.unlock t.memo_lock;
        match hit with
        | Some v -> result := Some v
        | None -> pending := key :: !pending)
      | None -> ()
    end;
    if !result = None then begin
      Sim.eval sim;
      if not (outputs_match t sim !c) then result := Some (Sdc !c)
      else begin
        Sim.latch sim;
        incr c
      end
    end
  done;
  let verdict =
    match !result with
    | Some v -> v
    | None ->
      Sim.eval sim;
      if read_flops sim nl = t.golden_flops && sys.System.ram = t.golden_ram then Benign
      else Latent
  in
  if !pending <> [] then begin
    Mutex.lock t.memo_lock;
    if Hashtbl.length t.memo < max_memo_entries then
      List.iter (fun key -> Hashtbl.replace t.memo key verdict) !pending;
    Mutex.unlock t.memo_lock
  end;
  verdict

let inject t ~flop_id ~cycle = inject_with t t.primary ~flop_id ~cycle

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
  skipped : int;
}

let count_chunk t w samples skipped lo hi =
  let b = ref 0 and l = ref 0 and s = ref 0 in
  for i = lo to hi do
    if not skipped.(i) then begin
      let flop_id, cycle = samples.(i) in
      match inject_with t w ~flop_id ~cycle with
      | Benign -> incr b
      | Latent -> incr l
      | Sdc _ -> incr s
    end
  done;
  (!b, !l, !s)

let run_sample t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) ?(jobs = 1) () =
  if n < 0 then invalid_arg "Campaign.run_sample: n must be non-negative";
  let flops = space.Fault_space.flops in
  let cycle_bound = min space.Fault_space.cycles t.total_cycles in
  (* Draw all samples up front with the single caller-provided generator:
     the fault list — and therefore the stats — is a function of the seed
     alone, independent of [jobs]. *)
  let samples = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let flop = flops.(Prng.int rng (Array.length flops)) in
    let cycle = Prng.int rng cycle_bound in
    samples.(i) <- (flop.Netlist.flop_id, cycle)
  done;
  let skipped = Array.map (fun (flop_id, cycle) -> skip ~flop_id ~cycle) samples in
  let n_skipped = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skipped in
  let jobs = max 1 (min jobs (max 1 n)) in
  let b, l, s =
    if jobs = 1 then count_chunk t t.primary samples skipped 0 (n - 1)
    else begin
      let chunk = (n + jobs - 1) / jobs in
      let domains =
        List.init jobs (fun j ->
            let lo = j * chunk in
            let hi = min (n - 1) ((j + 1) * chunk - 1) in
            Domain.spawn (fun () ->
                if lo > hi then (0, 0, 0)
                else count_chunk t (fresh_worker t) samples skipped lo hi))
      in
      List.fold_left
        (fun (b, l, s) d ->
          let b', l', s' = Domain.join d in
          (b + b', l + l', s + s'))
        (0, 0, 0) domains
    end
  in
  { injections = n - n_skipped; benign = b; latent = l; sdc = s; skipped = n_skipped }

let pp_verdict ppf = function
  | Benign -> Format.fprintf ppf "benign"
  | Latent -> Format.fprintf ppf "latent"
  | Sdc n -> Format.fprintf ppf "SDC@%d" n
