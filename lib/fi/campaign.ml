module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Bitsim = Pruning_sim.Bitsim
module Deltasim = Pruning_sim.Deltasim
module Deltabatch = Pruning_sim.Deltabatch
module Trace = Pruning_sim.Trace
module System = Pruning_cpu.System
module Memory = Pruning_cpu.Memory
module Prng = Pruning_util.Prng

type verdict =
  | Benign
  | Latent
  | Sdc of int

(* The four interchangeable classification engines. All are
   verdict-bit-identical (SDC cycles included); they differ only in how
   they spend the machine. *)
type kernel =
  | Scalar  (** one fault at a time, full netlist eval per cycle *)
  | Batched  (** 62 faults per pass in the bit-lanes of one simulation *)
  | Delta  (** one fault at a time, only the fault cone re-evaluated *)
  | Delta_batched  (** 63 faults per pass, one shared golden delta baseline *)

let kernel_name = function
  | Scalar -> "scalar"
  | Batched -> "batched"
  | Delta -> "delta"
  | Delta_batched -> "delta-batched"

let kernel_of_string = function
  | "scalar" -> Some Scalar
  | "batched" -> Some Batched
  | "delta" -> Some Delta
  | "delta-batched" -> Some Delta_batched
  | _ -> None

(* A memo key is the exact architectural difference from the golden run at
   a checkpoint: (checkpoint index, differing flops with their faulty
   values, differing RAM cells with their faulty values), both in
   ascending index order. The simulator is deterministic, so equal state
   at an equal cycle implies an identical remainder of the run — the
   verdict can be replayed from the table instead of re-simulated. *)
type memo_key = int * (int * bool) list * (int * int) list

type worker = {
  w_sys : System.t;
  w_restores : (unit -> unit) array;
      (* w_restores.(i) rewinds w_sys to the start of cycle i*interval *)
}

(* Lane-parallel worker: a Bitsim system plus its own checkpoint
   snapshots, rebuilt once by replaying the golden prefix with all lanes
   in lockstep. *)
type lane_worker = {
  lw_sys : System.lanes;
  lw_restores : (unit -> unit) array;
}

type t = {
  make : unit -> System.t;
  make_lanes : (unit -> System.lanes) option;
  make_delta : (trace:Trace.t -> System.delta) option;
  make_delta_batch : (trace:Trace.t -> System.delta_batch) option;
  mutable lane_worker : lane_worker option;  (* built lazily on first batched run *)
  mutable delta_worker : System.delta option;  (* built lazily on first delta run *)
  mutable delta_batch_worker : System.delta_batch option;  (* lazy, first batched-delta run *)
  mutable golden_trace : Trace.t option;
      (* the one golden recording shared by every delta-family worker:
         recorded once per (core, program, horizon) and kept across
         worker resets, durable shards and distributed chunk retries *)
  total_cycles : int;
  interval : int;  (* checkpoint spacing in cycles *)
  out_wires : int array;
  golden_outputs : bool array array;  (** per cycle *)
  golden_flops : bool array;  (** at horizon *)
  golden_ram : int array;  (** at horizon *)
  cp_flops : bool array array;  (** golden flop state per checkpoint *)
  cp_ram : int array array;  (** golden RAM per checkpoint *)
  memo : (memo_key, verdict) Hashtbl.t;
      (* shared across workers: one domain's classified divergence state
         short-circuits every other domain's matching runs *)
  memo_lock : Mutex.t;
  primary : worker;  (** worker for the calling domain (not domain-safe) *)
}

let output_wires nl =
  List.concat_map
    (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
    nl.Netlist.outputs
  |> Array.of_list

let read_outputs sim out_wires = Array.map (fun w -> Sim.peek sim w) out_wires

let read_flops sim nl =
  Array.map (fun (f : Netlist.flop) -> Sim.peek sim f.Netlist.q) nl.Netlist.flops

let create ?checkpoint_interval ?make_lanes ?make_delta ?make_delta_batch ~make ~total_cycles () =
  if total_cycles <= 0 then invalid_arg "Campaign.create: total_cycles must be positive";
  let interval =
    match checkpoint_interval with
    | Some k ->
      if k <= 0 then invalid_arg "Campaign.create: checkpoint_interval must be positive";
      k
    | None -> max 1 (total_cycles / 64)
  in
  let n_cp = 1 + ((total_cycles - 1) / interval) in
  let sys = make () in
  let sim = sys.System.sim in
  let nl = sys.System.netlist in
  let out_wires = output_wires nl in
  let golden_outputs = Array.make total_cycles [||] in
  let cp_flops = Array.make n_cp [||] in
  let cp_ram = Array.make n_cp [||] in
  let restores = Array.make n_cp (fun () -> ()) in
  for cycle = 0 to total_cycles - 1 do
    if cycle mod interval = 0 then begin
      let i = cycle / interval in
      cp_flops.(i) <- read_flops sim nl;
      cp_ram.(i) <- Array.copy sys.System.ram;
      restores.(i) <- System.save_state sys
    end;
    Sim.eval sim;
    golden_outputs.(cycle) <- read_outputs sim out_wires;
    Sim.latch sim
  done;
  Sim.eval sim;
  {
    make;
    make_lanes;
    make_delta;
    make_delta_batch;
    lane_worker = None;
    delta_worker = None;
    delta_batch_worker = None;
    golden_trace = None;
    total_cycles;
    interval;
    out_wires;
    golden_outputs;
    golden_flops = read_flops sim nl;
    golden_ram = Array.copy sys.System.ram;
    cp_flops;
    cp_ram;
    memo = Hashtbl.create 256;
    memo_lock = Mutex.create ();
    primary = { w_sys = sys; w_restores = restores };
  }

let checkpoint_interval t = t.interval
let total_cycles t = t.total_cycles

(* A fresh worker for another domain: its own system plus its own
   checkpoint snapshots, rebuilt by replaying the golden run up to the
   last checkpoint (the prefix cost is paid once per worker and amortized
   over all its injections). *)
let fresh_worker t =
  let sys = t.make () in
  let sim = sys.System.sim in
  let n_cp = Array.length t.cp_flops in
  let restores = Array.make n_cp (fun () -> ()) in
  restores.(0) <- System.save_state sys;
  for cycle = 1 to (n_cp - 1) * t.interval do
    Sim.step sim ();
    if cycle mod t.interval = 0 then restores.(cycle / t.interval) <- System.save_state sys
  done;
  { w_sys = sys; w_restores = restores }

let outputs_match t sim cycle =
  let golden = t.golden_outputs.(cycle) in
  let n = Array.length t.out_wires in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if Sim.peek sim t.out_wires.(!i) <> golden.(!i) then ok := false;
    incr i
  done;
  !ok

(* Bound on tracked state differences: larger diffs (e.g. a derailed PC
   smearing state everywhere) almost never recur exactly, so memoizing
   them would only cost memory. *)
let max_memo_diff = 32
let max_memo_entries = 1 lsl 20

(* Architectural diff of the worker's current state against the golden
   state at checkpoint [cp]; [None] when more than [max_memo_diff] cells
   differ. [Some ([], [])] means the faulty run has re-converged. *)
let state_diff t w ~cp =
  let sim = w.w_sys.System.sim in
  let flops = w.w_sys.System.netlist.Netlist.flops in
  let gf = t.cp_flops.(cp) in
  let gr = t.cp_ram.(cp) in
  let ram = w.w_sys.System.ram in
  let exception Too_big in
  try
    let count = ref 0 in
    let fd = ref [] in
    for i = Array.length flops - 1 downto 0 do
      let v = Sim.peek sim flops.(i).Netlist.q in
      if v <> gf.(i) then begin
        incr count;
        if !count > max_memo_diff then raise Too_big;
        fd := (i, v) :: !fd
      end
    done;
    let rd = ref [] in
    for a = Array.length ram - 1 downto 0 do
      if ram.(a) <> gr.(a) then begin
        incr count;
        if !count > max_memo_diff then raise Too_big;
        rd := (a, ram.(a)) :: !rd
      end
    done;
    Some (!fd, !rd)
  with Too_big -> None

exception Budget_exceeded

let inject_with ?budget t w ~flop_id ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then invalid_arg "Campaign.inject: cycle out of range";
  let sys = w.w_sys in
  let sim = sys.System.sim in
  let nl = sys.System.netlist in
  (* Cooperative watchdog: charge every simulated cycle (prefix replay
     included) against the caller's budget. The raise may abandon the
     worker mid-run, which is safe — every injection starts by restoring
     a checkpoint. *)
  let used = ref 0 in
  let charge =
    match budget with
    | None -> fun () -> ()
    | Some b ->
      fun () ->
        incr used;
        if !used > b then raise Budget_exceeded
  in
  (* Rewind to the nearest checkpoint at or before the injection cycle and
     replay the (fault-free) remainder of the prefix. *)
  let cp = cycle / t.interval in
  w.w_restores.(cp) ();
  for _ = 1 to cycle - (cp * t.interval) do
    charge ();
    Sim.step sim ()
  done;
  Sim.eval sim;
  Sim.set_flop sim flop_id (not (Sim.get_flop sim flop_id));
  (* Continue, watching the outputs; at every checkpoint boundary compare
     the architectural state against the golden run to (a) return Benign
     as soon as the fault has been fully masked and (b) reuse or record a
     memoized verdict for the exact remaining divergence. *)
  let result = ref None in
  let pending = ref [] in
  let c = ref cycle in
  while !result = None && !c < t.total_cycles do
    if !c mod t.interval = 0 then begin
      let i = !c / t.interval in
      match state_diff t w ~cp:i with
      | Some ([], []) -> result := Some Benign
      | Some (fd, rd) -> (
        let key = (i, fd, rd) in
        Mutex.lock t.memo_lock;
        let hit = Hashtbl.find_opt t.memo key in
        Mutex.unlock t.memo_lock;
        match hit with
        | Some v -> result := Some v
        | None -> pending := key :: !pending)
      | None -> ()
    end;
    if !result = None then begin
      Sim.eval sim;
      if not (outputs_match t sim !c) then result := Some (Sdc !c)
      else begin
        charge ();
        Sim.latch sim;
        incr c
      end
    end
  done;
  let verdict =
    match !result with
    | Some v -> v
    | None ->
      Sim.eval sim;
      (* Allocation-free horizon comparison: walk flops and RAM in place
         instead of materializing a flop array per injection. *)
      let flops = nl.Netlist.flops in
      let ram = sys.System.ram in
      let same = ref true in
      let i = ref 0 in
      let nf = Array.length flops in
      while !same && !i < nf do
        if Sim.peek sim flops.(!i).Netlist.q <> t.golden_flops.(!i) then same := false;
        incr i
      done;
      let a = ref 0 in
      let na = Array.length ram in
      while !same && !a < na do
        if ram.(!a) <> t.golden_ram.(!a) then same := false;
        incr a
      done;
      if !same then Benign else Latent
  in
  if !pending <> [] then begin
    Mutex.lock t.memo_lock;
    if Hashtbl.length t.memo < max_memo_entries then
      List.iter (fun key -> Hashtbl.replace t.memo key verdict) !pending;
    Mutex.unlock t.memo_lock
  end;
  verdict

let inject t ~flop_id ~cycle = inject_with t t.primary ~flop_id ~cycle
let primary_worker t = t.primary

(* The golden baseline shared by the delta-family engines: one full
   recorded run of the scalar system, cached for the campaign's
   lifetime. The trace is immutable, so worker resets (crash recovery),
   durable shards and distributed chunk re-execution all reuse the same
   recording instead of re-simulating golden. Also consulted by the
   scalar intermittent injector, which needs per-cycle golden flop
   values to re-arm against. *)
let golden_trace t =
  match t.golden_trace with
  | Some trace -> trace
  | None ->
    let sys = t.make () in
    let trace = System.record sys ~cycles:t.total_cycles in
    t.golden_trace <- Some trace;
    trace

(* Generalized scalar injection: flip every member flop of the model's
   expansion at the injection cycle, and for a hold window > 1 re-arm
   each member to the complement of its golden Q at the top of every
   window cycle (intermittent stuck-at semantics; the golden values come
   from the shared recorded trace). The verdict protocol is exactly
   [inject_with]'s, with one extra guard: memo reads/writes and Benign
   re-convergence retirement are disabled until the last forced cycle —
   while future forcing is still pending, equal-state-implies-equal-
   remainder does not hold, and the memo table is shared across models.
   For hold = 1 the guard is vacuous and single-member expansions
   retrace [inject_with] decision-for-decision. *)
let inject_expanded ?budget t w ~space ~key ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then invalid_arg "Campaign.inject: cycle out of range";
  let members = Fault_space.expand space key in
  (* A pulse nothing latches (empty SET cone): bit-exact golden run. *)
  if Array.length members = 0 then Benign
  else begin
    let hold = Fault_space.hold space in
    let window_end = min t.total_cycles (cycle + hold) in
    let trace = if hold > 1 then Some (golden_trace t) else None in
    let sys = w.w_sys in
    let sim = sys.System.sim in
    let nl = sys.System.netlist in
    let used = ref 0 in
    let charge =
      match budget with
      | None -> fun () -> ()
      | Some b ->
        fun () ->
          incr used;
          if !used > b then raise Budget_exceeded
    in
    let cp = cycle / t.interval in
    w.w_restores.(cp) ();
    for _ = 1 to cycle - (cp * t.interval) do
      charge ();
      Sim.step sim ()
    done;
    Sim.eval sim;
    Array.iter (fun fid -> Sim.set_flop sim fid (not (Sim.get_flop sim fid))) members;
    let result = ref None in
    let pending = ref [] in
    let c = ref cycle in
    while !result = None && !c < t.total_cycles do
      (match trace with
      | Some trace when !c > cycle && !c < window_end ->
        (* Re-arm: the state at the top of cycle !c is whatever the
           faulty machine latched, except the held flops are forced to
           the complement of their golden Q this cycle. *)
        Array.iter
          (fun fid ->
            Sim.set_flop sim fid (not (Trace.get trace ~cycle:!c nl.Netlist.flops.(fid).Netlist.q)))
          members
      | _ -> ());
      if !c mod t.interval = 0 && !c >= window_end - 1 then begin
        let i = !c / t.interval in
        match state_diff t w ~cp:i with
        | Some ([], []) -> result := Some Benign
        | Some (fd, rd) -> (
          let key = (i, fd, rd) in
          Mutex.lock t.memo_lock;
          let hit = Hashtbl.find_opt t.memo key in
          Mutex.unlock t.memo_lock;
          match hit with
          | Some v -> result := Some v
          | None -> pending := key :: !pending)
        | None -> ()
      end;
      if !result = None then begin
        Sim.eval sim;
        if not (outputs_match t sim !c) then result := Some (Sdc !c)
        else begin
          charge ();
          Sim.latch sim;
          incr c
        end
      end
    done;
    let verdict =
      match !result with
      | Some v -> v
      | None ->
        Sim.eval sim;
        let flops = nl.Netlist.flops in
        let ram = sys.System.ram in
        let same = ref true in
        let i = ref 0 in
        let nf = Array.length flops in
        while !same && !i < nf do
          if Sim.peek sim flops.(!i).Netlist.q <> t.golden_flops.(!i) then same := false;
          incr i
        done;
        let a = ref 0 in
        let na = Array.length ram in
        while !same && !a < na do
          if ram.(!a) <> t.golden_ram.(!a) then same := false;
          incr a
        done;
        if !same then Benign else Latent
    in
    if !pending <> [] then begin
      Mutex.lock t.memo_lock;
      if Hashtbl.length t.memo < max_memo_entries then
        List.iter (fun key -> Hashtbl.replace t.memo key verdict) !pending;
      Mutex.unlock t.memo_lock
    end;
    verdict
  end

(* ------------------------------------------------------------------ *)
(* Lane-parallel batched injection (PPSFP): lane 0 of a Bitsim worker
   replays the golden run, lanes 1..N each carry one pending fault. All
   comparisons are XOR-against-lane-0 masks, so one word operation
   checks every lane at once; verdict semantics are exactly the scalar
   engine's (the differential tests assert bit-identical results,
   divergence cycles included). *)

let fresh_lane_worker t make_lanes =
  let sys = make_lanes () in
  let bsim = sys.System.l_bsim in
  let n_cp = Array.length t.cp_flops in
  let restores = Array.make n_cp (fun () -> ()) in
  restores.(0) <- System.save_lanes_state sys;
  for cycle = 1 to (n_cp - 1) * t.interval do
    Bitsim.step bsim;
    if cycle mod t.interval = 0 then restores.(cycle / t.interval) <- System.save_lanes_state sys
  done;
  { lw_sys = sys; lw_restores = restores }

let lane_worker t =
  match t.lane_worker with
  | Some w -> w
  | None ->
    let make_lanes =
      match t.make_lanes with
      | Some f -> f
      | None ->
        invalid_arg "Campaign: batched injection needs ~make_lanes at Campaign.create"
    in
    let w = fresh_lane_worker t make_lanes in
    t.lane_worker <- Some w;
    w

(* Bit l of [v] as a full-width mask of lane 0's bit: a wire packed word
   XORed with [replicate_lane0 v] has bit l set iff lane l disagrees
   with the golden lane. *)
let replicate_lane0 v = -(v land 1)

let rec lsb_index v i = if v land 1 = 1 then i else lsb_index (v lsr 1) (i + 1)

(* One pass over the horizon: restore the checkpoint covering the
   earliest queued fault, then run forward, filling free lanes with
   queued faults whose injection cycle has not passed yet, flipping each
   lane's flop at its cycle, retiring lanes at checkpoint boundaries
   (re-convergence -> Benign, memo hit -> replayed verdict) and on
   output divergence (-> Sdc), and classifying survivors at the horizon.
   Returns the queue of faults whose injection cycle was overtaken
   before a lane freed up (classified by the next pass). *)
let run_lane_pass t lw ~lanes faults verdicts queue =
  let sys = lw.lw_sys in
  let bsim = sys.System.l_bsim in
  let nl = sys.System.l_netlist in
  let ram = sys.System.l_ram in
  let flops = nl.Netlist.flops in
  let n_flops = Array.length flops in
  let cp = (snd faults.(List.hd queue)) / t.interval in
  lw.lw_restores.(cp) ();
  let lane_fault = Array.make (lanes + 1) (-1) in
  let lane_pending = Array.make (lanes + 1) [] in
  let active = ref 0 in
  let injected = ref 0 in
  let free = ref (List.init lanes (fun i -> i + 1)) in
  let pending_q = ref queue in
  let leftover = ref [] in
  let c = ref (cp * t.interval) in
  let to_reset = ref 0 in
  let retire lane verdict =
    verdicts.(lane_fault.(lane)) <- verdict;
    (match lane_pending.(lane) with
    | [] -> ()
    | keys ->
      Mutex.lock t.memo_lock;
      if Hashtbl.length t.memo < max_memo_entries then
        List.iter (fun key -> Hashtbl.replace t.memo key verdict) keys;
      Mutex.unlock t.memo_lock;
      lane_pending.(lane) <- []);
    lane_fault.(lane) <- -1;
    let m = lnot (1 lsl lane) in
    active := !active land m;
    injected := !injected land m;
    to_reset := !to_reset lor (1 lsl lane);
    free := lane :: !free
  in
  (* Re-synchronize retired lanes with the golden lane so they stop
     producing divergence noise and can host the next fault. Deferred to
     just after the latch edge: [Bitsim.reset_lane] only rewrites flop Qs
     and primary inputs, so resetting before the latch would let the
     lane's stale faulty D values (and clocked device writes) leak right
     back into the supposedly clean lane. *)
  let flush_resets () =
    if !to_reset <> 0 then begin
      for lane = 1 to lanes do
        if !to_reset land (1 lsl lane) <> 0 then begin
          Bitsim.reset_lane bsim ~lane;
          Memory.lane_reset ram ~lane
        end
      done;
      to_reset := 0
    end
  in
  let flop_diff_mask () =
    let acc = ref 0 in
    for i = 0 to n_flops - 1 do
      let v = Bitsim.peek bsim flops.(i).Netlist.q in
      acc := !acc lor (v lxor replicate_lane0 v)
    done;
    !acc
  in
  (* Per-lane architectural diff against lane 0 at a checkpoint
     boundary: Benign retirement for re-converged lanes, memo lookup for
     small divergences — the batched mirror of [state_diff]. *)
  let boundary_check () =
    let flop_diff = flop_diff_mask () in
    let ram_mask = Memory.lane_diff_mask ram in
    let diff_mask = (flop_diff lor ram_mask) land !injected in
    let benign_mask = !injected land lnot diff_mask in
    if benign_mask <> 0 then
      for lane = 1 to lanes do
        if benign_mask land (1 lsl lane) <> 0 then retire lane Benign
      done;
    if diff_mask <> 0 then begin
      let counts = Array.make (lanes + 1) 0 in
      let fd = Array.make (lanes + 1) [] in
      let over = ref 0 in
      for i = 0 to n_flops - 1 do
        let v = Bitsim.peek bsim flops.(i).Netlist.q in
        let d = ref ((v lxor replicate_lane0 v) land diff_mask land lnot !over) in
        while !d <> 0 do
          let lane = lsb_index !d 0 in
          d := !d land (!d - 1);
          counts.(lane) <- counts.(lane) + 1;
          if counts.(lane) > max_memo_diff then over := !over lor (1 lsl lane)
          else fd.(lane) <- (i, (v lsr lane) land 1 = 1) :: fd.(lane)
        done
      done;
      let i_cp = !c / t.interval in
      for lane = 1 to lanes do
        if diff_mask land (1 lsl lane) <> 0 then begin
          let key =
            if !over land (1 lsl lane) <> 0 then None
            else begin
              let rd = Memory.lane_diffs ram ~lane in
              if counts.(lane) + List.length rd > max_memo_diff then None
              else Some (i_cp, List.rev fd.(lane), rd)
            end
          in
          match key with
          | None -> ()
          | Some key -> (
            Mutex.lock t.memo_lock;
            let hit = Hashtbl.find_opt t.memo key in
            Mutex.unlock t.memo_lock;
            match hit with
            | Some v -> retire lane v
            | None -> lane_pending.(lane) <- key :: lane_pending.(lane))
        end
      done
    end;
    Memory.lane_compact ram
  in
  (try
     while !c < t.total_cycles do
       (* Refill free lanes with queued faults still injectable at !c;
          overtaken faults go to the next pass. *)
       let rec refill () =
         match (!free, !pending_q) with
         | [], _ | _, [] -> ()
         | lane :: frest, idx :: qrest ->
           let _, fc = faults.(idx) in
           pending_q := qrest;
           if fc < !c then leftover := idx :: !leftover
           else begin
             free := frest;
             lane_fault.(lane) <- idx;
             active := !active lor (1 lsl lane)
           end;
           refill ()
       in
       refill ();
       if !active = 0 then raise Exit;
       let to_inject = !active land lnot !injected in
       if to_inject <> 0 then
         for lane = 1 to lanes do
           if to_inject land (1 lsl lane) <> 0 then begin
             let flop_id, fc = faults.(lane_fault.(lane)) in
             if fc = !c then begin
               Bitsim.flip_flop_lane bsim flop_id ~lane;
               injected := !injected lor (1 lsl lane)
             end
           end
         done;
       if !c mod t.interval = 0 && !injected <> 0 then boundary_check ();
       Bitsim.eval bsim;
       if !injected <> 0 then begin
         let sdc = ref 0 in
         Array.iter
           (fun w ->
             let v = Bitsim.peek bsim w in
             sdc := !sdc lor (v lxor replicate_lane0 v))
           t.out_wires;
         let sdc = !sdc land !injected in
         if sdc <> 0 then
           for lane = 1 to lanes do
             if sdc land (1 lsl lane) <> 0 then retire lane (Sdc !c)
           done
       end;
       Bitsim.latch bsim;
       flush_resets ();
       incr c
     done
   with Exit -> ());
  if !active <> 0 then begin
    (* Horizon: same final architectural comparison as the scalar path
       (lane 0 holds the golden horizon state). *)
    Bitsim.eval bsim;
    let diff = (flop_diff_mask () lor Memory.lane_diff_mask ram) land !active in
    for lane = 1 to lanes do
      if !active land (1 lsl lane) <> 0 then
        retire lane (if diff land (1 lsl lane) <> 0 then Latent else Benign)
    done
  end;
  flush_resets ();
  (* Unclassified faults for the next pass: those overtaken while every
     lane was busy, plus the queue tail never popped. Both lists are
     ascending by (cycle, index); keep the merged queue sorted so the
     next pass restores the right checkpoint for its head. *)
  let by_cycle a b =
    let ca = snd faults.(a) and cb = snd faults.(b) in
    if ca <> cb then compare ca cb else compare a b
  in
  List.merge by_cycle (List.rev !leftover) !pending_q

let max_fault_lanes = Bitsim.n_lanes - 1

(* Drop the (lazily rebuilt) lane worker — the supervisor's recovery
   path after an exception escaped mid-batch and left its lanes in an
   unknown state. *)
let reset_lane_worker t = t.lane_worker <- None

let inject_batch t ?lanes ~faults () =
  let lanes =
    match lanes with
    | None -> max_fault_lanes
    | Some l ->
      if l < 1 || l > max_fault_lanes then
        invalid_arg
          (Printf.sprintf "Campaign.inject_batch: lanes must be in [1, %d]" max_fault_lanes);
      l
  in
  Array.iter
    (fun (_, cycle) ->
      if cycle < 0 || cycle >= t.total_cycles then
        invalid_arg "Campaign.inject_batch: cycle out of range")
    faults;
  let lw = lane_worker t in
  let n = Array.length faults in
  let verdicts = Array.make n Benign in
  (* Classify in injection-cycle order so each pass drains as many
     faults as possible before their cycles are overtaken. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let ca = snd faults.(a) and cb = snd faults.(b) in
      if ca <> cb then compare ca cb else compare a b)
    order;
  let queue = ref (Array.to_list order) in
  while !queue <> [] do
    queue := run_lane_pass t lw ~lanes faults verdicts !queue
  done;
  verdicts

(* ------------------------------------------------------------------ *)
(* Delta injection: one fault at a time against the recorded golden
   trace, re-evaluating only the fault cone's active frontier. No
   checkpoint replay (attaching at the injection cycle is O(previous
   dirty set)). The dirty-set machinery retires re-converged faults at
   the earliest possible cycle, and at every checkpoint boundary the
   surviving divergence is read straight off the flip flags and device
   diffs to share the verdict memo with the scalar and batched engines:
   a latent stuck bit costs one partial interval of sparse simulation
   plus a memo lookup instead of a run to the horizon. *)

let delta_worker t =
  match t.delta_worker with
  | Some d -> d
  | None ->
    let make_delta =
      match t.make_delta with
      | Some f -> f
      | None -> invalid_arg "Campaign: delta injection needs ~make_delta at Campaign.create"
    in
    let d = make_delta ~trace:(golden_trace t) in
    t.delta_worker <- Some d;
    d

(* Discard the (lazily rebuilt) delta worker — recovery after an
   exception escaped mid-experiment and left its dirty set in an
   unknown state. The cached golden trace is immutable and survives. *)
let reset_delta_worker t = t.delta_worker <- None

let inject_delta ?budget t ~flop_id ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then
    invalid_arg "Campaign.inject_delta: cycle out of range";
  let d = delta_worker t in
  let ds = d.System.d_dsim in
  let used = ref 0 in
  let charge =
    match budget with
    | None -> fun () -> ()
    | Some b ->
      fun () ->
        incr used;
        if !used > b then raise Budget_exceeded
  in
  Deltasim.attach ds ~cycle;
  Deltasim.flip_flop ds flop_id;
  let flops = (Deltasim.netlist ds).Netlist.flops in
  (* The delta image of [state_diff]: a flipped Q flag is exactly a
     differing flop and a device diff entry exactly a differing RAM
     cell, so the scalar engine's memo keys fall out of the dirty set
     directly — same indices, same faulty values, same ascending
     order. *)
  let delta_diff () =
    let exception Too_big in
    try
      let count = ref 0 in
      let fd = ref [] in
      for i = Array.length flops - 1 downto 0 do
        let q = flops.(i).Netlist.q in
        if Deltasim.is_flipped ds q then begin
          incr count;
          if !count > max_memo_diff then raise Too_big;
          fd := (i, Deltasim.faulty ds q) :: !fd
        end
      done;
      let rd =
        List.concat_map snd (Deltasim.device_diffs ds) |> List.sort compare
      in
      if !count + List.length rd > max_memo_diff then raise Too_big;
      Some (!fd, rd)
    with Too_big -> None
  in
  (* Same observation order as the scalar loop: settle the cycle, check
     the outputs (SDC), then the clock edge. [converged] retires the
     experiment the instant the dirty set empties — the faulty machine
     is bit-exact golden, so by determinism the remainder is too. *)
  let result = ref None in
  let pending = ref [] in
  let c = ref cycle in
  while !result = None && !c < t.total_cycles do
    Deltasim.propagate ds;
    (* Checkpoint boundary: the scalar memo protocol. Checked after
       [propagate] — combinational settling leaves flops and RAM
       untouched, and the golden row must be current for [faulty]
       reads — and before the SDC check, preserving the scalar
       engine's priority between a memo hit and a same-cycle SDC. *)
    if !c mod t.interval = 0 && not (Deltasim.converged ds) then begin
      match delta_diff () with
      | Some (fd, rd) -> (
        let key = (!c / t.interval, fd, rd) in
        Mutex.lock t.memo_lock;
        let hit = Hashtbl.find_opt t.memo key in
        Mutex.unlock t.memo_lock;
        match hit with
        | Some v -> result := Some v
        | None -> pending := key :: !pending)
      | None -> ()
    end;
    if !result = None then begin
      if Deltasim.output_diverged ds then result := Some (Sdc !c)
      else if Deltasim.converged ds then result := Some Benign
      else begin
        charge ();
        Deltasim.latch ds;
        incr c
      end
    end
  done;
  let verdict =
    match !result with
    | Some v -> v
    | None ->
      (* Horizon: the Q flip flags and device diffs are exact after the
         final latch — the same flop + RAM comparison as the scalar path,
         read off in O(divergence). *)
      if Deltasim.flops_diverged ds || not (Deltasim.devices_clean ds) then Latent else Benign
  in
  if !pending <> [] then begin
    Mutex.lock t.memo_lock;
    if Hashtbl.length t.memo < max_memo_entries then
      List.iter (fun key -> Hashtbl.replace t.memo key verdict) !pending;
    Mutex.unlock t.memo_lock
  end;
  verdict

(* Generalized delta injection: the delta image of [inject_expanded].
   The model expansion becomes the initial dirty set (one flip per
   member), and a hold window re-arms by re-flipping any member whose Q
   flip flag has cleared — [Deltasim.flip_flop] toggles the flag, so
   "flip if not flipped" is exactly "force to the complement of golden",
   matching the scalar re-arm against the recorded trace. The memo and
   Benign-retirement guard until the last forced cycle mirrors the
   scalar injector; convergence cannot fire inside the window anyway
   (a just-re-armed member is a non-empty dirty set), so the guard only
   protects the shared memo table. *)
let inject_delta_expanded ?budget t ~space ~key ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then
    invalid_arg "Campaign.inject_delta: cycle out of range";
  let members = Fault_space.expand space key in
  if Array.length members = 0 then Benign
  else begin
    let hold = Fault_space.hold space in
    let window_end = min t.total_cycles (cycle + hold) in
    let d = delta_worker t in
    let ds = d.System.d_dsim in
    let used = ref 0 in
    let charge =
      match budget with
      | None -> fun () -> ()
      | Some b ->
        fun () ->
          incr used;
          if !used > b then raise Budget_exceeded
    in
    Deltasim.attach ds ~cycle;
    Array.iter (fun fid -> Deltasim.flip_flop ds fid) members;
    let flops = (Deltasim.netlist ds).Netlist.flops in
    let delta_diff () =
      let exception Too_big in
      try
        let count = ref 0 in
        let fd = ref [] in
        for i = Array.length flops - 1 downto 0 do
          let q = flops.(i).Netlist.q in
          if Deltasim.is_flipped ds q then begin
            incr count;
            if !count > max_memo_diff then raise Too_big;
            fd := (i, Deltasim.faulty ds q) :: !fd
          end
        done;
        let rd = List.concat_map snd (Deltasim.device_diffs ds) |> List.sort compare in
        if !count + List.length rd > max_memo_diff then raise Too_big;
        Some (!fd, rd)
      with Too_big -> None
    in
    let result = ref None in
    let pending = ref [] in
    let c = ref cycle in
    while !result = None && !c < t.total_cycles do
      if !c > cycle && !c < window_end then
        Array.iter
          (fun fid ->
            if not (Deltasim.is_flipped ds flops.(fid).Netlist.q) then Deltasim.flip_flop ds fid)
          members;
      Deltasim.propagate ds;
      if !c mod t.interval = 0 && !c >= window_end - 1 && not (Deltasim.converged ds) then begin
        match delta_diff () with
        | Some (fd, rd) -> (
          let key = (!c / t.interval, fd, rd) in
          Mutex.lock t.memo_lock;
          let hit = Hashtbl.find_opt t.memo key in
          Mutex.unlock t.memo_lock;
          match hit with
          | Some v -> result := Some v
          | None -> pending := key :: !pending)
        | None -> ()
      end;
      if !result = None then begin
        if Deltasim.output_diverged ds then result := Some (Sdc !c)
        else if !c >= window_end - 1 && Deltasim.converged ds then result := Some Benign
        else begin
          charge ();
          Deltasim.latch ds;
          incr c
        end
      end
    done;
    let verdict =
      match !result with
      | Some v -> v
      | None ->
        if Deltasim.flops_diverged ds || not (Deltasim.devices_clean ds) then Latent else Benign
    in
    if !pending <> [] then begin
      Mutex.lock t.memo_lock;
      if Hashtbl.length t.memo < max_memo_entries then
        List.iter (fun key -> Hashtbl.replace t.memo key verdict) !pending;
      Mutex.unlock t.memo_lock
    end;
    verdict
  end

(* Model dispatchers: [Seu] takes the historical single-flop fast paths
   byte-for-byte (the bit-identity anchor); every other model goes
   through the expanded injectors. [Intermittent 1] deliberately goes
   through the expanded path too — with hold = 1 it retraces the SEU
   protocol decision-for-decision, which the degeneracy tests pin. *)
let inject_fault ?budget t w ~space ~key ~cycle =
  match space.Fault_space.model with
  | Fault_model.Seu -> inject_with ?budget t w ~flop_id:key ~cycle
  | _ -> inject_expanded ?budget t w ~space ~key ~cycle

let inject_fault_delta ?budget t ~space ~key ~cycle =
  match space.Fault_space.model with
  | Fault_model.Seu -> inject_delta ?budget t ~flop_id:key ~cycle
  | _ -> inject_delta_expanded ?budget t ~space ~key ~cycle

(* ------------------------------------------------------------------ *)
(* Batched delta injection: many in-flight faults per pass, each an
   independent sparse XOR-delta against the same recorded golden trace,
   swept over one shared levelized schedule (Deltabatch). The pass has
   the [run_lane_pass] shape — cycle-sorted queue, mid-pass lane refill,
   per-lane retirement — but with the delta engine's semantics: no
   checkpoint replay (idle lanes are golden by construction, so the pass
   attaches at the head fault's exact cycle), per-lane earliest-cycle
   Benign retirement the instant a lane's dirty set empties, and memo
   keys read straight off the flip words and device diffs — identical to
   the scalar engine's. *)

let max_delta_lanes = Deltabatch.n_lanes

let delta_batch_worker t =
  match t.delta_batch_worker with
  | Some d -> d
  | None ->
    let make_delta_batch =
      match t.make_delta_batch with
      | Some f -> f
      | None ->
        invalid_arg "Campaign: batched delta injection needs ~make_delta_batch at Campaign.create"
    in
    let d = make_delta_batch ~trace:(golden_trace t) in
    t.delta_batch_worker <- Some d;
    d

(* Discard the (lazily rebuilt) batched delta worker — recovery after an
   exception escaped mid-pass and left its lanes in an unknown state.
   The cached golden trace is immutable and survives. *)
let reset_delta_batch_worker t = t.delta_batch_worker <- None

(* One pass over the horizon: attach at the head fault's cycle (every
   lane bit-exact golden), run forward filling free lanes with queued
   faults whose cycle has not passed, flipping each lane's flop at its
   cycle, and retiring lanes per the scalar delta engine's observation
   order — memo at checkpoint boundaries, SDC on output divergence,
   Benign the instant the lane re-converges — with survivors classified
   at the horizon. Returns the overtaken faults for the next pass. *)
let run_delta_batch_pass t ?on_benign_retire db ~lanes faults verdicts queue =
  let ds = db.System.db_dbsim in
  let flops = db.System.db_netlist.Netlist.flops in
  let n_flops = Array.length flops in
  let head_cycle = snd faults.(List.hd queue) in
  Deltabatch.attach ds ~cycle:head_cycle;
  let lane_fault = Array.make lanes (-1) in
  let lane_pending = Array.make lanes [] in
  let active = ref 0 in
  let injected = ref 0 in
  let free = ref (List.init lanes Fun.id) in
  let pending_q = ref queue in
  let leftover = ref [] in
  let c = ref head_cycle in
  let retire lane verdict =
    verdicts.(lane_fault.(lane)) <- verdict;
    (match lane_pending.(lane) with
    | [] -> ()
    | keys ->
      Mutex.lock t.memo_lock;
      if Hashtbl.length t.memo < max_memo_entries then
        List.iter (fun key -> Hashtbl.replace t.memo key verdict) keys;
      Mutex.unlock t.memo_lock;
      lane_pending.(lane) <- []);
    lane_fault.(lane) <- -1;
    let m = lnot (1 lsl lane) in
    active := !active land m;
    injected := !injected land m;
    (* Unlike the bit-parallel engine there is nothing to defer: wiping
       returns the lane to bit-exact golden, so nothing stale can leak
       back through the latch. *)
    Deltabatch.wipe_lane ds ~lane;
    free := lane :: !free
  in
  (* Per-lane architectural diff at a checkpoint boundary, built in one
     flop scan: a flipped Q bit is exactly a differing flop and a device
     diff entry exactly a differing RAM cell, so the scalar engine's
     memo keys fall out of the flip words directly — same indices, same
     faulty values, same ascending order. *)
  let boundary_check () =
    let check = !injected land Deltabatch.live_mask ds in
    if check <> 0 then begin
      let counts = Array.make lanes 0 in
      let fd = Array.make lanes [] in
      let over = ref 0 in
      for i = 0 to n_flops - 1 do
        let q = flops.(i).Netlist.q in
        let d = ref (Deltabatch.flip_word ds q land check land lnot !over) in
        if !d <> 0 then begin
          let fv = not (Deltabatch.golden ds q) in
          while !d <> 0 do
            let lane = lsb_index !d 0 in
            d := !d land (!d - 1);
            counts.(lane) <- counts.(lane) + 1;
            if counts.(lane) > max_memo_diff then over := !over lor (1 lsl lane)
            else fd.(lane) <- (i, fv) :: fd.(lane)
          done
        end
      done;
      let i_cp = !c / t.interval in
      for lane = 0 to lanes - 1 do
        if check land (1 lsl lane) <> 0 then begin
          let key =
            if !over land (1 lsl lane) <> 0 then None
            else begin
              let rd =
                List.concat_map snd (Deltabatch.device_diffs ds ~lane) |> List.sort compare
              in
              if counts.(lane) + List.length rd > max_memo_diff then None
              else Some (i_cp, List.rev fd.(lane), rd)
            end
          in
          match key with
          | None -> ()
          | Some key -> (
            Mutex.lock t.memo_lock;
            let hit = Hashtbl.find_opt t.memo key in
            Mutex.unlock t.memo_lock;
            match hit with
            | Some v -> retire lane v
            | None -> lane_pending.(lane) <- key :: lane_pending.(lane))
        end
      done
    end
  in
  (try
     while !c < t.total_cycles do
       (* Refill free lanes with queued faults still injectable at !c;
          overtaken faults go to the next pass. *)
       let rec refill () =
         match (!free, !pending_q) with
         | [], _ | _, [] -> ()
         | lane :: frest, idx :: qrest ->
           let _, fc = faults.(idx) in
           pending_q := qrest;
           if fc < !c then leftover := idx :: !leftover
           else begin
             free := frest;
             lane_fault.(lane) <- idx;
             active := !active lor (1 lsl lane)
           end;
           refill ()
       in
       refill ();
       if !active = 0 then raise Exit;
       let to_inject = !active land lnot !injected in
       if to_inject <> 0 then
         for lane = 0 to lanes - 1 do
           if to_inject land (1 lsl lane) <> 0 then begin
             let flop_id, fc = faults.(lane_fault.(lane)) in
             if fc = !c then begin
               Deltabatch.flip_flop_lane ds flop_id ~lane;
               injected := !injected lor (1 lsl lane)
             end
           end
         done;
       Deltabatch.propagate ds;
       (* Scalar delta observation order, per lane: boundary memo before
          the SDC check (preserving the memo-hit-vs-same-cycle-SDC
          priority), SDC before Benign, retirement before the latch. *)
       if !c mod t.interval = 0 && !injected <> 0 then boundary_check ();
       if !injected <> 0 then begin
         let sdc = Deltabatch.out_mask ds land !injected in
         if sdc <> 0 then
           for lane = 0 to lanes - 1 do
             if sdc land (1 lsl lane) <> 0 then retire lane (Sdc !c)
           done
       end;
       if !injected <> 0 then begin
         let conv = !injected land lnot (Deltabatch.live_mask ds) in
         if conv <> 0 then
           for lane = 0 to lanes - 1 do
             if conv land (1 lsl lane) <> 0 then begin
               (match on_benign_retire with
               | Some f -> f ~index:lane_fault.(lane) ~cycle:!c
               | None -> ());
               retire lane Benign
             end
           done
       end;
       Deltabatch.latch ds;
       incr c
     done
   with Exit -> ());
  if !active <> 0 then begin
    (* Horizon: the Q flip words and device diffs are exact after the
       final latch — the same flop + RAM comparison as the scalar path,
       read off in O(divergence). *)
    let diverged = (Deltabatch.q_mask ds lor Deltabatch.devices_dirty_mask ds) land !active in
    for lane = 0 to lanes - 1 do
      if !active land (1 lsl lane) <> 0 then
        retire lane (if diverged land (1 lsl lane) <> 0 then Latent else Benign)
    done
  end;
  (* Unclassified faults for the next pass: those overtaken while every
     lane was busy, plus the queue tail never popped. Both lists are
     ascending by (cycle, index); keep the merged queue sorted so the
     next pass attaches at the right cycle for its head. *)
  let by_cycle a b =
    let ca = snd faults.(a) and cb = snd faults.(b) in
    if ca <> cb then compare ca cb else compare a b
  in
  List.merge by_cycle (List.rev !leftover) !pending_q

let inject_delta_batch t ?lanes ?on_benign_retire ~faults () =
  let lanes =
    match lanes with
    | None -> max_delta_lanes
    | Some l ->
      if l < 1 || l > max_delta_lanes then
        invalid_arg
          (Printf.sprintf "Campaign.inject_delta_batch: lanes must be in [1, %d]" max_delta_lanes);
      l
  in
  Array.iter
    (fun (_, cycle) ->
      if cycle < 0 || cycle >= t.total_cycles then
        invalid_arg "Campaign.inject_delta_batch: cycle out of range")
    faults;
  let db = delta_batch_worker t in
  let n = Array.length faults in
  let verdicts = Array.make n Benign in
  (* Classify in injection-cycle order so each pass drains as many
     faults as possible before their cycles are overtaken. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let ca = snd faults.(a) and cb = snd faults.(b) in
      if ca <> cb then compare ca cb else compare a b)
    order;
  let queue = ref (Array.to_list order) in
  while !queue <> [] do
    queue := run_delta_batch_pass t ?on_benign_retire db ~lanes faults verdicts !queue
  done;
  verdicts

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
  skipped : int;
  crashed : int;
}

let count_chunk t w ~space samples skipped lo hi =
  let b = ref 0 and l = ref 0 and s = ref 0 in
  for i = lo to hi do
    if not skipped.(i) then begin
      let key, cycle = samples.(i) in
      match inject_fault t w ~space ~key ~cycle with
      | Benign -> incr b
      | Latent -> incr l
      | Sdc _ -> incr s
    end
  done;
  (!b, !l, !s)

(* The one sample-draw everybody shares: scalar, batched, durable and
   distributed campaigns all derive their fault list through this exact
   loop, so equal seeds yield equal fault lists — the foundation of every
   bit-identical-statistics guarantee in the stack (a worker fleet and a
   single process must classify the very same faults). The draw is over
   the space's model keys; for [Seu] the key index runs over the flop
   array and maps to netlist flop ids, making the PRNG call sequence and
   the drawn pairs byte-identical to the historical flop-only draw. *)
let draw_samples t ~space ~rng ~n =
  if n < 0 then invalid_arg "Campaign.draw_samples: n must be non-negative";
  let n_keys = Fault_space.n_keys space in
  let cycle_bound = min space.Fault_space.cycles t.total_cycles in
  let samples = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let key = Fault_space.draw_key space (Prng.int rng n_keys) in
    let cycle = Prng.int rng cycle_bound in
    samples.(i) <- (key, cycle)
  done;
  samples

let run_sample t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) ?(jobs = 1) () =
  (* Draw all samples up front with the single caller-provided generator:
     the fault list — and therefore the stats — is a function of the seed
     alone, independent of [jobs]. *)
  let samples = draw_samples t ~space ~rng ~n in
  let skipped = Array.map (fun (flop_id, cycle) -> skip ~flop_id ~cycle) samples in
  let n_skipped = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skipped in
  let jobs = max 1 (min jobs (max 1 n)) in
  let b, l, s =
    if jobs = 1 then count_chunk t t.primary ~space samples skipped 0 (n - 1)
    else begin
      let chunk = (n + jobs - 1) / jobs in
      let domains =
        List.init jobs (fun j ->
            let lo = j * chunk in
            let hi = min (n - 1) ((j + 1) * chunk - 1) in
            Domain.spawn (fun () ->
                if lo > hi then (0, 0, 0)
                else count_chunk t (fresh_worker t) ~space samples skipped lo hi))
      in
      List.fold_left
        (fun (b, l, s) d ->
          let b', l', s' = Domain.join d in
          (b + b', l + l', s + s'))
        (0, 0, 0) domains
    end
  in
  { injections = n - n_skipped; benign = b; latent = l; sdc = s; skipped = n_skipped; crashed = 0 }

let run_sample_batched t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) ?lanes () =
  (* Same draw order as [run_sample]: equal seeds yield equal fault
     lists, so the batched stats must equal the scalar stats exactly. *)
  let samples = draw_samples t ~space ~rng ~n in
  let skipped = Array.map (fun (flop_id, cycle) -> skip ~flop_id ~cycle) samples in
  let n_skipped = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skipped in
  match space.Fault_space.model with
  | Fault_model.Seu ->
    let faults = Array.make (n - n_skipped) (0, 0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if not skipped.(i) then begin
        faults.(!j) <- samples.(i);
        incr j
      end
    done;
    let verdicts = inject_batch t ?lanes ~faults () in
    let b = ref 0 and l = ref 0 and s = ref 0 in
    Array.iter
      (function
        | Benign -> incr b
        | Latent -> incr l
        | Sdc _ -> incr s)
      verdicts;
    {
      injections = n - n_skipped;
      benign = !b;
      latent = !l;
      sdc = !s;
      skipped = n_skipped;
      crashed = 0;
    }
  | _ ->
    (* The bit-lane engine carries exactly one flop flip per lane;
       non-SEU models fall back to the scalar reference injector,
       fault by fault (documented in the engine support matrix). *)
    let b, l, s = count_chunk t t.primary ~space samples skipped 0 (n - 1) in
    { injections = n - n_skipped; benign = b; latent = l; sdc = s; skipped = n_skipped; crashed = 0 }

let run_sample_delta t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) () =
  (* Same draw order again: equal seeds yield equal fault lists, so the
     delta stats must equal the scalar and batched stats exactly. *)
  let samples = draw_samples t ~space ~rng ~n in
  let skipped = Array.map (fun (flop_id, cycle) -> skip ~flop_id ~cycle) samples in
  let n_skipped = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skipped in
  let b = ref 0 and l = ref 0 and s = ref 0 in
  for i = 0 to n - 1 do
    if not skipped.(i) then begin
      let key, cycle = samples.(i) in
      match inject_fault_delta t ~space ~key ~cycle with
      | Benign -> incr b
      | Latent -> incr l
      | Sdc _ -> incr s
    end
  done;
  {
    injections = n - n_skipped;
    benign = !b;
    latent = !l;
    sdc = !s;
    skipped = n_skipped;
    crashed = 0;
  }

let run_sample_delta_batched t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) ?lanes
    () =
  (* Same draw order again: equal seeds yield equal fault lists, so the
     batched-delta stats must equal the other three engines exactly. *)
  let samples = draw_samples t ~space ~rng ~n in
  let skipped = Array.map (fun (flop_id, cycle) -> skip ~flop_id ~cycle) samples in
  let n_skipped = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 skipped in
  match space.Fault_space.model with
  | Fault_model.Seu ->
    let faults = Array.make (n - n_skipped) (0, 0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if not skipped.(i) then begin
        faults.(!j) <- samples.(i);
        incr j
      end
    done;
    let verdicts = inject_delta_batch t ?lanes ~faults () in
    let b = ref 0 and l = ref 0 and s = ref 0 in
    Array.iter
      (function
        | Benign -> incr b
        | Latent -> incr l
        | Sdc _ -> incr s)
      verdicts;
    {
      injections = n - n_skipped;
      benign = !b;
      latent = !l;
      sdc = !s;
      skipped = n_skipped;
      crashed = 0;
    }
  | _ ->
    (* One flop flip per lane word again; non-SEU models fall back to
       the single-fault delta injector (documented in the matrix). *)
    let b = ref 0 and l = ref 0 and s = ref 0 in
    for i = 0 to n - 1 do
      if not skipped.(i) then begin
        let key, cycle = samples.(i) in
        match inject_fault_delta t ~space ~key ~cycle with
        | Benign -> incr b
        | Latent -> incr l
        | Sdc _ -> incr s
      end
    done;
    {
      injections = n - n_skipped;
      benign = !b;
      latent = !l;
      sdc = !s;
      skipped = n_skipped;
      crashed = 0;
    }

let pp_verdict ppf = function
  | Benign -> Format.fprintf ppf "benign"
  | Latent -> Format.fprintf ppf "latent"
  | Sdc n -> Format.fprintf ppf "SDC@%d" n
