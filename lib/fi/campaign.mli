(** End-to-end fault-injection campaign: the experiment a HAFI platform
    runs for every non-pruned fault. Each experiment rewinds a simulated
    system to the injection cycle, flips one flip-flop, and runs to the
    campaign horizon while watching the primary outputs.

    Verdicts:
    - [Benign]: outputs matched the golden run at every cycle and the
      final architectural state (flip-flops + memory) is identical;
    - [Latent]: outputs matched throughout, but internal state differs at
      the horizon (the fault may still surface later);
    - [Sdc n]: silent data corruption — outputs first diverged from the
      golden run at cycle [n].

    The engine is checkpointed: the golden run records a whole-system
    snapshot plus the golden architectural state (flops + RAM) every
    [checkpoint_interval] cycles. An injection restores the nearest
    checkpoint at or before the injection cycle instead of re-simulating
    from reset, and the faulty run compares its architectural state
    against the golden checkpoints as it crosses them — a run that has
    re-converged returns [Benign] early, and runs whose exact state
    difference was classified before replay the memoized verdict. Both
    short cuts are sound (the simulator is deterministic, so equal state
    at an equal cycle implies an identical future), keeping verdicts
    bit-identical to a from-scratch simulation.

    Campaigns fan out over OCaml domains: {!run_sample} with [~jobs:k]
    classifies the same deterministic fault list on [k] domains, each with
    its own system and checkpoint set, and merges the per-domain counts.
    The stats are independent of [jobs]. *)

type verdict =
  | Benign
  | Latent
  | Sdc of int

type t

val create :
  ?checkpoint_interval:int -> make:(unit -> Pruning_cpu.System.t) -> total_cycles:int -> unit -> t
(** Runs the golden experiment once, caching its observables and the
    periodic checkpoints. [make] must produce a fresh, deterministic
    system each call (it is also invoked once per extra domain by
    {!run_sample}, so it must be safe to call from other domains).
    [checkpoint_interval] defaults to [max 1 (total_cycles / 64)]; a value
    larger than [total_cycles] effectively disables checkpointing (single
    snapshot at reset, no early verdicts). *)

val checkpoint_interval : t -> int
(** The checkpoint spacing actually in use. *)

val inject : t -> flop_id:int -> cycle:int -> verdict
(** One fault-injection experiment. [cycle] must be < [total_cycles]. Not
    safe to call concurrently from several domains (it reuses the
    campaign's primary worker); use {!run_sample} with [~jobs] for
    parallel campaigns. *)

type stats = {
  injections : int;  (** experiments actually executed *)
  benign : int;
  latent : int;
  sdc : int;
  skipped : int;  (** faults skipped by the [skip] predicate, not run *)
}
(** Invariant: [injections = benign + latent + sdc]; [skipped] is counted
    separately ([injections + skipped] = total faults sampled). *)

val run_sample :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  ?jobs:int ->
  unit ->
  stats
(** Randomly sample [n] faults from [space] and run them. [skip] marks
    faults already pruned (skipped without an experiment — exactly what a
    MATE-enriched platform would do); it is evaluated on the calling
    domain. [jobs] (default 1) fans the experiments out over that many
    OCaml domains; the sampled fault list is drawn up front from [rng],
    so the resulting stats are identical for every [jobs] value. *)

val pp_verdict : Format.formatter -> verdict -> unit
