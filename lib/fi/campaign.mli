(** End-to-end fault-injection campaign: the experiment a HAFI platform
    runs for every non-pruned fault. Each experiment rewinds a simulated
    system to the injection cycle, flips one flip-flop, and runs to the
    campaign horizon while watching the primary outputs.

    Verdicts:
    - [Benign]: outputs matched the golden run at every cycle and the
      final architectural state (flip-flops + memory) is identical;
    - [Latent]: outputs matched throughout, but internal state differs at
      the horizon (the fault may still surface later);
    - [Sdc n]: silent data corruption — outputs first diverged from the
      golden run at cycle [n].

    The engine is checkpointed: the golden run records a whole-system
    snapshot plus the golden architectural state (flops + RAM) every
    [checkpoint_interval] cycles. An injection restores the nearest
    checkpoint at or before the injection cycle instead of re-simulating
    from reset, and the faulty run compares its architectural state
    against the golden checkpoints as it crosses them — a run that has
    re-converged returns [Benign] early, and runs whose exact state
    difference was classified before replay the memoized verdict. Both
    short cuts are sound (the simulator is deterministic, so equal state
    at an equal cycle implies an identical future), keeping verdicts
    bit-identical to a from-scratch simulation.

    Campaigns fan out over OCaml domains: {!run_sample} with [~jobs:k]
    classifies the same deterministic fault list on [k] domains, each with
    its own system and checkpoint set, and merges the per-domain counts.
    The stats are independent of [jobs].

    The batched path ({!inject_batch}, {!run_sample_batched}) instead
    packs up to [Pruning_sim.Bitsim.n_lanes - 1] experiments into the
    bit-lanes of one lane-parallel simulation: lane 0 replays the golden
    run and every other lane carries one fault, so a single pass over the
    netlist advances all pending experiments at once. Lanes retire early
    exactly like the scalar engine (Benign re-convergence or memo hits at
    checkpoint boundaries, SDC on output divergence) and freed lanes are
    refilled from the remaining fault queue mid-run. Verdicts — including
    SDC cycles — are bit-identical to {!inject}.

    The delta path ({!inject_delta}, {!run_sample_delta}) instead
    simulates each faulty run as a sparse difference against a recorded
    golden trace ({!Pruning_sim.Deltasim}): only gates in the fault
    cone's active frontier are re-evaluated, the experiment retires the
    instant the difference dies out, and attaching at the injection
    cycle replaces the checkpoint-replay prefix entirely. Verdicts are
    again bit-identical to {!inject}.

    The batched delta path ({!inject_delta_batch},
    {!run_sample_delta_batched}) composes the two optimizations: up to
    {!Pruning_sim.Deltabatch.n_lanes} in-flight faults, each an
    independent sparse XOR-delta against the {e same} recorded golden
    trace, sweep one shared levelized schedule per cycle — a gate is
    re-evaluated once for the union of its dirty lanes instead of once
    per fault, and there is no golden lane to pay for (the trace is the
    golden reference). Lanes retire per the scalar delta engine's
    observation order (earliest-cycle Benign the instant a lane's dirty
    set empties, memo participation at checkpoint boundaries, SDC on
    output divergence) and freed lanes are refilled from the remaining
    fault queue mid-pass. Verdicts — including SDC cycles — are
    bit-identical to {!inject}.

    All four engines record the golden baseline once: the campaign
    caches the recorded trace per its (core, program, horizon) identity,
    so delta and batched-delta workers — including rebuilds after crash
    recovery, durable shards and distributed chunk re-execution — share
    one recording. *)

type verdict =
  | Benign
  | Latent
  | Sdc of int

type kernel =
  | Scalar  (** one fault at a time, full netlist eval per cycle *)
  | Batched  (** 62 faults per pass in the bit-lanes of one simulation *)
  | Delta  (** one fault at a time, only the fault cone re-evaluated *)
  | Delta_batched  (** 63 faults per pass, one shared golden delta baseline *)
(** The four interchangeable classification engines; selection changes
    throughput only, never verdicts. *)

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

type t

val create :
  ?checkpoint_interval:int ->
  ?make_lanes:(unit -> Pruning_cpu.System.lanes) ->
  ?make_delta:(trace:Pruning_sim.Trace.t -> Pruning_cpu.System.delta) ->
  ?make_delta_batch:(trace:Pruning_sim.Trace.t -> Pruning_cpu.System.delta_batch) ->
  make:(unit -> Pruning_cpu.System.t) ->
  total_cycles:int ->
  unit ->
  t
(** Runs the golden experiment once, caching its observables and the
    periodic checkpoints. [make] must produce a fresh, deterministic
    system each call (it is also invoked once per extra domain by
    {!run_sample}, so it must be safe to call from other domains).
    [make_lanes] builds the same system over the lane-parallel simulator
    and enables {!inject_batch} / {!run_sample_batched}; the lane worker
    (and its own checkpoint set) is built lazily on first batched call.
    [make_delta] builds the same system over the activity-gated delta
    kernel (from a golden trace the campaign records lazily on first
    delta call) and enables {!inject_delta} / {!run_sample_delta};
    [make_delta_batch] does the same over the batched delta kernel and
    enables {!inject_delta_batch} / {!run_sample_delta_batched}. The
    delta-family engines share one cached golden recording (see
    {!golden_trace}).
    [checkpoint_interval] defaults to [max 1 (total_cycles / 64)]; a value
    larger than [total_cycles] effectively disables checkpointing (single
    snapshot at reset, no early verdicts). *)

val checkpoint_interval : t -> int
(** The checkpoint spacing actually in use. *)

val total_cycles : t -> int
(** The campaign horizon. *)

val inject : t -> flop_id:int -> cycle:int -> verdict
(** One fault-injection experiment. [cycle] must be < [total_cycles]. Not
    safe to call concurrently from several domains (it reuses the
    campaign's primary worker); use {!run_sample} with [~jobs] for
    parallel campaigns. *)

type worker
(** One domain's private injection state: a system plus its own
    checkpoint snapshots. A worker must only ever be driven from one
    domain at a time. *)

val primary_worker : t -> worker
(** The calling domain's built-in worker (the one {!inject} uses). *)

val fresh_worker : t -> worker
(** Build a new worker by replaying the golden prefix on a fresh system
    from [make] — the unit of isolation for parallel shards, and the
    supervisor's recovery action after a worker is lost to a crash or a
    watchdog kill. Safe to call from any domain. *)

exception Budget_exceeded
(** Raised by {!inject_with} when an experiment's simulated-cycle budget
    runs out (the per-experiment watchdog). *)

val inject_with : ?budget:int -> t -> worker -> flop_id:int -> cycle:int -> verdict
(** {!inject} on an explicit worker. [budget], if given, bounds the
    simulated cycles the experiment may consume (checkpoint-replay prefix
    included); exceeding it raises {!Budget_exceeded}, after which the
    worker remains usable (every injection starts from a checkpoint
    restore). *)

val inject_fault :
  ?budget:int -> t -> worker -> space:Fault_space.t -> key:int -> cycle:int -> verdict
(** Model-aware scalar injection: classify the fault instance
    [(key, cycle)] under [space]'s fault model. [Seu] dispatches to
    {!inject_with} byte-for-byte; other models expand the key
    ({!Fault_space.expand}) into simultaneous member flips and re-arm
    held flops against the recorded golden trace for the hold window
    ({!Fault_space.hold}). An empty expansion (a SET pulse nothing
    latches) is [Benign] without simulating. Verdict-memo participation
    is deferred to the last forced cycle, so multi-cycle models never
    poison the state-determinism premise the shared memo rests on. *)

val inject_fault_delta : ?budget:int -> t -> space:Fault_space.t -> key:int -> cycle:int -> verdict
(** Model-aware delta injection: the delta image of {!inject_fault}
    (expansion = initial dirty set; re-arm = re-flip any member whose
    flip flag cleared). [Seu] dispatches to {!inject_delta}
    byte-for-byte; every model is verdict-bit-identical to
    {!inject_fault}. Requires [~make_delta] at {!create}. *)

type stats = {
  injections : int;  (** experiments actually executed *)
  benign : int;
  latent : int;
  sdc : int;
  skipped : int;  (** faults skipped by the [skip] predicate, not run *)
  crashed : int;
      (** experiments that failed persistently under a supervised
          ({!Durable}) run — never aborts the campaign; always [0] on the
          unsupervised paths *)
}
(** Invariant: [injections = benign + latent + sdc]; [skipped] and
    [crashed] are counted separately
    ([injections + skipped + crashed] = total faults sampled). *)

val draw_samples :
  t -> space:Fault_space.t -> rng:Pruning_util.Prng.t -> n:int -> (int * int) array
(** Draw the campaign's fault list: [n] [(key, cycle)] pairs sampled
    uniformly from [space]'s model keys (cycles clipped to the campaign
    horizon; for [Seu] the key {e is} the netlist flop id and the draw
    is byte-identical to the historical flop draw). This is {e the}
    canonical draw — {!run_sample}, {!run_sample_batched}, the durable
    runner and the distributed worker all use it, so every engine given
    generators in the same state classifies the identical faults. *)

val run_sample :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  ?jobs:int ->
  unit ->
  stats
(** Randomly sample [n] faults from [space] and run them. [skip] marks
    faults already pruned (skipped without an experiment — exactly what a
    MATE-enriched platform would do); it is evaluated on the calling
    domain. [jobs] (default 1) fans the experiments out over that many
    OCaml domains; the sampled fault list is drawn up front from [rng],
    so the resulting stats are identical for every [jobs] value. *)

val max_fault_lanes : int
(** Fault-carrying lanes per batch: [Pruning_sim.Bitsim.n_lanes - 1]
    (lane 0 is the golden reference). *)

val reset_lane_worker : t -> unit
(** Discard the cached lane worker; the next batched call rebuilds it
    from scratch. The supervisor's recovery action when an exception
    escaped mid-batch and the lanes' state is no longer trustworthy. *)

val inject_batch : t -> ?lanes:int -> faults:(int * int) array -> unit -> verdict array
(** Classify every [(flop_id, cycle)] fault on the lane-parallel worker
    and return the verdicts in input order. [lanes] (default
    {!max_fault_lanes}, must be in [\[1, max_fault_lanes\]]) caps how many
    faults are in flight at once. Requires [~make_lanes] at {!create}.
    Not safe to call concurrently from several domains (one shared lane
    worker), but composes with the scalar paths: both share the campaign's
    verdict memo. *)

val run_sample_batched :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  ?lanes:int ->
  unit ->
  stats
(** {!run_sample}, batched: draws the identical fault list for the same
    [rng] seed and classifies it with {!inject_batch}, so the stats are
    bit-identical to the scalar path's. The bit-lane engine carries one
    flop flip per lane, so non-[Seu] fault models fall back to the
    scalar reference injector fault-by-fault (stats still identical). *)

val reset_delta_worker : t -> unit
(** Discard the cached delta worker (trace and all); the next delta call
    rebuilds it. Recovery action when an exception escaped
    mid-experiment and the kernel's dirty set is no longer trustworthy. *)

val golden_trace : t -> Pruning_sim.Trace.t
(** The golden baseline shared by the delta-family engines: one full
    recorded run of the scalar system, made lazily on first use and
    cached for the campaign's lifetime. Because the campaign {e is} the
    (core, program, horizon) identity, every delta-family worker built
    from it — including rebuilds after {!reset_delta_worker} /
    {!reset_delta_batch_worker}, durable shards and distributed chunk
    re-execution — reuses this one recording. *)

val inject_delta : ?budget:int -> t -> flop_id:int -> cycle:int -> verdict
(** One experiment on the activity-gated delta kernel
    ({!Pruning_sim.Deltasim}): attach at the injection cycle (no replay
    prefix), flip, and propagate only the fault cone's active frontier,
    retiring the instant the difference against the golden trace dies
    out. Verdict-bit-identical to {!inject} — including SDC cycles — by
    determinism; participates in the shared verdict memo at checkpoint
    boundaries with keys read straight off the flip flags and device
    diffs (byte-identical to the scalar engine's). [budget] bounds
    simulated cycles as in {!inject_with}; the worker remains usable
    after {!Budget_exceeded}. Requires [~make_delta] at {!create}; the
    kernel (and its golden trace) is built lazily on first call. Not
    safe to call concurrently from several domains (one shared delta
    worker). *)

val run_sample_delta :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  unit ->
  stats
(** {!run_sample}, on the delta kernel: draws the identical fault list
    for the same [rng] seed and classifies it with {!inject_delta}, so
    the stats are bit-identical to the scalar and batched paths'. *)

val max_delta_lanes : int
(** Fault-carrying lanes per batched-delta pass:
    [Pruning_sim.Deltabatch.n_lanes]. Unlike {!max_fault_lanes} every
    lane carries a fault — the golden reference is the recorded trace,
    not a lane. *)

val reset_delta_batch_worker : t -> unit
(** Discard the cached batched delta worker; the next batched-delta
    call rebuilds it (reusing the cached golden trace). Recovery action
    when an exception escaped mid-pass and the lanes' state is no
    longer trustworthy. *)

val inject_delta_batch :
  t ->
  ?lanes:int ->
  ?on_benign_retire:(index:int -> cycle:int -> unit) ->
  faults:(int * int) array ->
  unit ->
  verdict array
(** Classify every [(flop_id, cycle)] fault on the batched delta
    worker and return the verdicts in input order. [lanes] (default
    {!max_delta_lanes}, must be in [\[1, max_delta_lanes\]]) caps how
    many faults are in flight at once. [on_benign_retire] is called
    (with the fault's index into [faults] and the retirement cycle) for
    every mid-pass Benign retirement — i.e. each time a lane's dirty
    set dies out before the horizon; the differential tests use it to
    confirm early retirements against scalar replay. Requires
    [~make_delta_batch] at {!create}. Not safe to call concurrently
    from several domains (one shared worker), but composes with the
    other engines: all four share the campaign's verdict memo. *)

val run_sample_delta_batched :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  ?lanes:int ->
  unit ->
  stats
(** {!run_sample}, on the batched delta kernel: draws the identical
    fault list for the same [rng] seed and classifies it with
    {!inject_delta_batch}, so the stats are bit-identical to the other
    three engines'. Non-[Seu] fault models fall back to the single-fault
    delta injector (stats still identical). *)

val pp_verdict : Format.formatter -> verdict -> unit
