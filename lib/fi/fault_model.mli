(** First-class fault models (the generalization of the implicit
    [(flop_id, cycle)] SEU).

    A fault instance is always a [(key, cycle)] pair drawn from a
    {!Fault_space.t}; the model decides what a key ranges over and what
    physical corruption the pair denotes:

    - {!Seu}: key = netlist flop id; flip that flop for one cycle (the
      paper's system model, and the historical default).
    - {!Set}: key = gate index; a transient pulse on the gate's output
      is represented as the set of flip-flops in the gate's fault cone
      simultaneously latching corrupted values (the multi-SEU RTL
      representation of a gate-level SET).
    - [Mbu k]: key = index of a cluster of [k] adjacent flops in the
      space's deterministic flop order; all [k] flip in the same cycle
      (a spatial multi-bit upset).
    - [Intermittent n]: key = netlist flop id; the flop is held at the
      complement of its golden value for [n] consecutive cycles
      (re-armed at every cycle of the window). [Intermittent 1] is
      exactly {!Seu}. *)

type t =
  | Seu
  | Set
  | Mbu of int
  | Intermittent of int

val validate : t -> unit
(** Raises [Invalid_argument] on a non-positive MBU cluster size or
    intermittent hold count. *)

val name : t -> string
(** Canonical spelling: ["seu"], ["set"], ["mbu:K"], ["intermittent:N"].
    Round-trips through {!of_string}; pinned in journal headers. *)

val of_string : string -> (t, string) result
(** Parse a [--fault-model] spec. The error string is user-facing. *)

val id : t -> int
(** Stable numeric id (seu 0, set 1, mbu 2, intermittent 3): pinned in
    journal record kind bytes and proto chunk descriptors. *)

val param : t -> int
(** The model parameter carried next to {!id} on the wire: cluster size
    for MBU, hold cycles for intermittent, 0 otherwise. *)

val of_id_param : int -> int -> t option
(** Inverse of ({!id}, {!param}); [None] for unknown ids or invalid
    parameters. *)

val base_name_of_id : int -> string option
(** Render a bare model id (e.g. from a journal record nibble) without
    its parameter; [None] for unknown ids. *)
