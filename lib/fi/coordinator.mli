(** The fault-tolerant campaign coordinator.

    One process owns the campaign: it derives nothing but hands out work
    — the fault list is a pure function of the journal header (seed), so
    the coordinator never touches a netlist or simulator. It shards the
    sample range into fixed-size chunks, leases them to whatever workers
    connect, collects verdict streams, journals every fresh verdict
    through {!Journal}, and declares the campaign complete when every
    sample index has exactly one verdict.

    {b Robustness model.}
    - {e Leases with heartbeat expiry}: any frame from a worker counts as
      liveness. A worker that stays silent longer than the lease window
      has its chunks requeued and re-dispatched to other workers — but
      its connection is kept: a straggler (not dead, just slow) may still
      deliver.
    - {e Idempotent dedup}: verdicts are deterministic per experiment, so
      a re-dispatched chunk's second result set must agree with the
      first. Duplicates are asserted equal and dropped, never
      double-counted; a disagreement opens a {e quorum arbitration}
      (below) instead of fail-stopping the campaign.
    - {e Quorum arbitration}: a verdict mismatch (duplicate delivery or
      cross-validation) re-issues the disputed chunk as ballots to up to
      [quorum] workers that are neither the recorded verdict's origin
      nor the challenger, one at a time. Each disputed sample is settled
      by strict majority among both claims plus the ballots; the winner
      is journaled as {!Journal.Arbitrated} (voter count, losing
      verdict, overturned flag — an override on resume) and every party
      that voted for a losing verdict takes a reputation hit. Disputes
      with no majority after [quorum] ballots, or no progress within
      [arb_patience] seconds (no eligible voter), are counted in
      [result.arb_unresolved] — the recorded verdict stands and the
      caller exits 19. Mismatches surfacing after completion (drain
      phase) cannot recruit voters and go straight to unresolved, with
      the late dissenter disconnected.
    - {e Worker reputation}: per-name suspicion scores ({!Reputation}),
      fed by arbitration losses (3), corrupt frames (2) and lease
      expiries (1). A name crossing [suspect_threshold] is quarantined
      for the rest of the run: excluded from arbitration voting, and
      every chunk it completes is cross-validated regardless of
      [verify_frac]. Quarantined names and scores are reported in
      [result.suspects]; the worker's own score travels in [Welcome].
    - {e Worker death}: EOF or a write failure requeues the worker's
      chunks immediately.
    - {e Poisoned-chunk quarantine}: a chunk whose execution kills
      [poison_threshold] {e distinct} workers (connection death while
      holding it — lease expiry is mere straggling) is quarantined
      instead of being re-dispatched forever: journaled as
      {!Journal.Poisoned}, skipped, and reported in [result.poisoned].
      The service then finishes degraded (exit 20 upstairs); resuming
      retries quarantined chunks from scratch.
    - {e Blacklisting}: every connection dropped for misbehavior
      (corrupt frame, protocol violation, determinism mismatch) is a
      strike against its announced worker name; a name with
      [blacklist_threshold] strikes has its next [Hello] refused.
    - {e Read deadline}: a connection silent past [idle_timeout] is
      closed (a live worker requests, streams or heartbeats well inside
      it) — the coordinator never carries a dead peer forever.
    - {e Cross-validation} ([verify_frac] > 0): a deterministic per-chunk
      draw from the campaign seed selects chunks to re-issue, after
      completion, to a second worker (preferring one that is not the
      chunk's origin). Re-delivered verdicts must dedup equal; a
      disagreement opens a quorum arbitration.
    - {e Coordinator death}: every verdict is already journaled; a new
      coordinator started with [resume:true] on the same journal picks
      up where the old one stopped. Every resume bumps the journal's
      {e epoch} (restart generation) and announces it in [Welcome]:
      workers that survived the old coordinator detect the change, drop
      stale lease state and re-deliver their in-flight verdicts (safe
      under first-verdict-wins dedup). Under {!Supervisor} this makes a
      coordinator SIGKILL a zero-intervention event.
    - {e Backpressure}: while the journal writer is degraded (disk
      pressure, ENOSPC retries — {!Journal.stalled}) or [max_inflight]
      chunks are already out on leases, [Request]s are answered [Wait]
      instead of leasing more — the coordinator degrades instead of
      ballooning in-flight state it cannot record.
    - {e Graceful degradation}: the campaign completes with bit-identical
      statistics as long as any non-empty subset of workers survives
      long enough to drain the chunk queue. *)

type config = {
  listen : string;  (** bind address *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  chunk_size : int;  (** samples per lease *)
  lease : float;
      (** seconds of worker silence before its chunks are re-dispatched;
          must comfortably exceed the time a worker needs between frames
          (one experiment, or one whole batched chunk) *)
  write_timeout : float;  (** per-frame send deadline towards a worker *)
  tick : float;  (** event-loop wakeup period (lease/stop polling) *)
  drain : float;
      (** after completion, how long to keep answering [Request]s with
          [Done] while workers hang up — closing immediately would race
          a worker's in-flight request and lose the buffered [Done] *)
  idle_timeout : float;
      (** read deadline: seconds of total silence before a connection is
          closed as dead; must exceed [lease]. 0 disables *)
  poison_threshold : int;
      (** distinct workers a chunk may kill before it is quarantined
          instead of re-dispatched. 0 disables quarantine *)
  blacklist_threshold : int;
      (** misbehavior strikes before a worker name's [Hello] is refused.
          0 disables blacklisting *)
  verify_frac : float;
      (** fraction of completed chunks re-issued to a second worker for
          cross-validation, in [0, 1]. 0 disables *)
  max_inflight : int;
      (** bound on chunks simultaneously out on leases; [Request]s past
          it are answered [Wait]. 0 disables the bound *)
  quorum : int;
      (** maximum ballots recruited per disputed chunk (≥ 1). Tolerates
          f lying parties per dispute when the electorate (2 disputants
          + ballots) holds a strict honest majority — f < K/2 for
          K = quorum against a lone liar *)
  suspect_threshold : int;
      (** suspicion score at which a worker name is quarantined
          (excluded from voting, chunks always verified). 0 disables
          reputation-based quarantine *)
  arb_patience : float;
      (** seconds an arbitration may sit with no progress (no ballot in
          flight or streaming) before its disputes are declared
          unresolved; must be positive and comfortably exceed [lease] in
          production (tests shrink it to force the no-quorum path) *)
}

val default_config : config
(** [{ listen = "127.0.0.1"; port = 0; chunk_size = 256; lease = 10.;
      write_timeout = 5.; tick = 0.05; drain = 5.; idle_timeout = 30.;
      poison_threshold = 3; blacklist_threshold = 3; verify_frac = 0.;
      max_inflight = 1024; quorum = 3; suspect_threshold = 5;
      arb_patience = 30. }] *)

type event =
  | Joined of { worker : string }
  | Left of { worker : string; reason : string }
  | Assigned of { worker : string; chunk : Proto.chunk }
  | Redispatched of { worker : string; chunk_id : int; reason : string }
      (** a lease expired (straggler) or its holder disconnected *)
  | Progress of { done_ : int; total : int }  (** after each results frame *)
  | Duplicate of { worker : string; index : int }
  | Mismatch of { worker : string; index : int }
      (** two workers disagreed on one experiment; arbitration follows
          (or, during drain, the dispute goes straight to unresolved) *)
  | Quarantined of { chunk_id : int; deaths : int }
      (** the chunk killed [deaths] distinct workers and is now skipped *)
  | Blacklisted of { worker : string; strikes : int }
      (** the name's [Hello] was refused after repeated misbehavior *)
  | Verified of { chunk_id : int; worker : string }
      (** a cross-validation pass re-derived identical verdicts *)
  | Rejoined of { worker : string; stale_epoch : int; epoch : int }
      (** the worker's [Hello] announced a previous coordinator's epoch:
          it survived a failover and is re-delivering in-flight verdicts *)
  | Arbitrating of { chunk_id : int; index : int; challenger : string }
      (** a dispute was opened on this sample; ballots will be recruited *)
  | Arbitrated of {
      chunk_id : int;
      index : int;
      outcome : Journal.outcome;  (** the quorum winner *)
      overturned : bool;  (** the first-recorded verdict lost *)
      voters : string list;  (** ballot-casting workers, in recruitment order *)
      losers : string list;  (** every party whose verdict lost the vote *)
    }  (** full arbitration provenance, also summarized in the journal *)
  | Arbitration_failed of { chunk_id : int; index : int; reason : string }
      (** no quorum: the recorded verdict stands, the dispute counts as
          unresolved (exit 19 upstairs) *)
  | Suspected of { worker : string; score : int }
      (** the name crossed [suspect_threshold] and is quarantined *)
  | Completed

val pp_event : Format.formatter -> event -> unit

type result = {
  stats : Campaign.stats;
  completed : bool;  (** false iff [should_stop] ended the run early *)
  recovered : int;  (** verdicts replayed from the journal on resume *)
  dropped_bytes : int;  (** torn journal tail truncated on resume *)
  duplicates : int;  (** re-submitted verdicts asserted equal, dropped *)
  mismatches : int;
      (** disputed samples (every mismatch, resolved or not); each is
          also counted in exactly one of [arb_resolved] /
          [arb_unresolved] *)
  redispatched : int;  (** chunk leases requeued (expiry or disconnect) *)
  workers : int;  (** distinct worker names that completed a handshake *)
  poisoned : int list;
      (** quarantined chunk ids, ascending; non-empty means the campaign
          finished degraded and should be resumed (exit 20 upstairs) *)
  blacklisted : int;  (** worker names refused at [Hello] *)
  verified : int;  (** chunks whose cross-validation pass agreed *)
  rejoined : int;  (** handshakes announcing a stale (pre-failover) epoch *)
  epoch : int;  (** the coordinator generation this run served under *)
  arb_resolved : int;  (** disputed samples settled by a quorum majority *)
  arb_overturned : int;
      (** resolved disputes where the quorum voted down the
          first-recorded verdict (subset of [arb_resolved]) *)
  arb_unresolved : int;
      (** disputes with no reachable quorum: the recorded verdict stood
          unvalidated — non-zero means exit 19 upstairs *)
  suspects : (string * int) list;
      (** quarantined worker names with their final suspicion scores,
          sorted by name *)
}

type t

val create : ?config:config -> unit -> t
(** Bind and listen. Raises [Unix.Unix_error] if the address is taken or
    unbindable — before any campaign state exists. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val serve :
  t ->
  header:Journal.header ->
  ?journal:string ->
  ?resume:bool ->
  ?records_per_segment:int ->
  ?chaos:Chaos.t ->
  ?should_stop:(unit -> bool) ->
  ?on_event:(event -> unit) ->
  unit ->
  result
(** Run the campaign described by [header] ([header.samples] is the
    sample count; [header.shards] should be [0], the distributed
    marker, so local resume refuses distributed journals and vice
    versa; [header.audit] must be [0.] — the audit sentinel is a
    single-process feature). Blocks until every sample has a verdict
    (or lies in a quarantined chunk) with no cross-validation
    outstanding, or until [should_stop] (polled every [tick]) returns
    true; either way every connection and the journal are closed before
    returning, and with [journal] every recorded verdict survives a
    SIGKILL of the coordinator itself. [chaos] arms the coordinator's
    own fault plan, threaded to its {!Proto} sends and the journal
    writer. Raises {!Journal.Error} on journal create/resume problems
    and on (real or injected) disk failures while appending — everything
    already recorded is resumable. [serve] consumes [t]: it closes the
    listening socket on return. *)
