module Crc = Pruning_util.Crc
module Mono = Pruning_util.Mono

exception Error of string
exception Closed

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
let max_frame = 1 lsl 24

(* v2: Hello carries the worker's last-seen coordinator epoch.
   v3: Assign pins the fault model (id + parameter) on every chunk
   descriptor, so a worker can refuse a lease that contradicts the
   campaign identity it resolved from Welcome.
   v4: Assign carries the chunk's purpose (data / verify / arbitrate
   re-issue) and Welcome carries the connecting worker's reputation
   (suspicion score) so a rejoining worker learns its own standing. *)
let version = 4

(* ------------------------------------------------------------------ *)
(* Little-endian integer plumbing shared by frames and messages.       *)

let put32 buf v =
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

let get32 s pos =
  let v = ref 0 in
  for k = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (String.unsafe_get s (pos + k))
  done;
  !v

(* EINTR-restarting wrappers: a SIGINT arriving mid-syscall must reach
   the signal handler and then resume the I/O, not kill the campaign. *)
let rec restart f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> restart f

(* ------------------------------------------------------------------ *)
(* Frames.                                                             *)

let frame_header_size = 8

let encode_frame payload =
  let len = String.length payload in
  if len > max_frame then error "frame payload of %d bytes exceeds the %d cap" len max_frame;
  let buf = Buffer.create (frame_header_size + len) in
  put32 buf len;
  put32 buf (Crc.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let write_all ?deadline fd s =
  let total = Bytes.length s in
  let off = ref 0 in
  while !off < total do
    match restart (fun () -> Unix.write fd s !off (total - !off)) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* Non-blocking socket with a full buffer: wait for writability,
         bounded by the caller's deadline so a stalled peer cannot wedge
         the writer forever. *)
      let timeout =
        match deadline with
        | None -> -1.
        | Some d ->
          let left = d -. Mono.now () in
          if left <= 0. then error "write stalled past its deadline" else left
      in
      ignore (restart (fun () -> Unix.select [] [ fd ] [] timeout))
  done

let injected_reset () = raise (Unix.Unix_error (Unix.ECONNRESET, "chaos", "injected"))

let write_frame ?deadline ?chaos fd payload =
  let frame = encode_frame payload in
  let plain () = write_all ?deadline fd (Bytes.unsafe_of_string frame) in
  match Option.map (fun c -> Chaos.draw c Chaos.Send) chaos with
  | None | Some Chaos.Pass -> plain ()
  | Some (Chaos.Delay s) ->
    Unix.sleepf s;
    plain ()
  | Some (Chaos.Corrupt_bit k) ->
    (* Flip one payload bit after the CRC was computed: the receiver
       must detect the corruption and drop us as misbehaving. *)
    let b = Bytes.of_string frame in
    let payload_bits = (Bytes.length b - frame_header_size) * 8 in
    if payload_bits > 0 then begin
      let bit = k mod payload_bits in
      let pos = frame_header_size + (bit / 8) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))))
    end;
    write_all ?deadline fd b
  | Some (Chaos.Truncate f) ->
    (* A connection reset mid-frame: the peer is left with a torn frame
       (never acted upon), we see the reset and reconnect. *)
    let keep = int_of_float (f *. float_of_int (String.length frame)) in
    let keep = max 0 (min keep (String.length frame - 1)) in
    write_all ?deadline fd (Bytes.unsafe_of_string (String.sub frame 0 keep));
    injected_reset ()
  | Some Chaos.Reset -> injected_reset ()
  | Some (Chaos.Slow_loris s) ->
    (* Dribble the frame out in four stalled installments — total extra
       latency [s], bounded, to exercise peer read deadlines. *)
    let len = String.length frame in
    let step = max 1 ((len + 3) / 4) in
    let off = ref 0 in
    while !off < len do
      let k = min step (len - !off) in
      write_all ?deadline fd (Bytes.unsafe_of_string (String.sub frame !off k));
      off := !off + k;
      if !off < len then Unix.sleepf (s /. 4.)
    done
  | Some _ -> plain ()

let check_len len =
  if len < 0 || len > max_frame then error "frame length %d is outside [0, %d]" len max_frame

(* Select-before-read: bounds the time spent blocked waiting for the
   peer's next bytes, so a slow-loris sender cannot wedge the reader. *)
let wait_readable ?deadline fd =
  match deadline with
  | None -> ()
  | Some d ->
    let left = d -. Mono.now () in
    if left <= 0. then error "read stalled past its deadline";
    let ready, _, _ = restart (fun () -> Unix.select [ fd ] [] [] left) in
    if ready = [] then error "read stalled past its deadline"

(* Read exactly [n] bytes. [at_boundary] selects whether EOF is a clean
   close ([Closed]) or a truncated frame ([Error]). *)
let really_read ?deadline fd n ~at_boundary =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    wait_readable ?deadline fd;
    let k = restart (fun () -> Unix.read fd buf !off (n - !off)) in
    if k = 0 then
      if !off = 0 && at_boundary then raise Closed else error "connection closed mid-frame";
    off := !off + k
  done;
  Bytes.unsafe_to_string buf

let read_frame ?deadline ?chaos fd =
  (match Option.map (fun c -> Chaos.draw c Chaos.Recv) chaos with
  | None | Some Chaos.Pass -> ()
  | Some (Chaos.Delay s) -> Unix.sleepf s
  | Some Chaos.Reset -> injected_reset ()
  | Some _ -> ());
  let header = really_read ?deadline fd frame_header_size ~at_boundary:true in
  let len = get32 header 0 in
  let crc = get32 header 4 in
  check_len len;
  let payload = really_read ?deadline fd len ~at_boundary:false in
  if Crc.string payload <> crc then error "frame CRC mismatch";
  payload

(* ------------------------------------------------------------------ *)
(* Streaming decoder.                                                  *)

type decoder = { mutable pending : Buffer.t }

let decoder () = { pending = Buffer.create 4096 }
let feed d buf n = Buffer.add_subbytes d.pending buf 0 n

let next_frame d =
  let have = Buffer.length d.pending in
  if have < frame_header_size then None
  else begin
    let s = Buffer.contents d.pending in
    let len = get32 s 0 in
    check_len len;
    if have < frame_header_size + len then None
    else begin
      let payload = String.sub s frame_header_size len in
      if Crc.string payload <> get32 s 4 then error "frame CRC mismatch";
      let rest = Buffer.create 4096 in
      Buffer.add_substring rest s (frame_header_size + len) (have - frame_header_size - len);
      d.pending <- rest;
      Some payload
    end
  end

(* ------------------------------------------------------------------ *)
(* Messages.                                                           *)

(* Why the chunk is being issued. Workers execute all three identically
   (determinism is the whole point); the tag exists so logs and tests can
   tell a first-issue lease from a cross-check or an arbitration ballot. *)
type purpose = Data | Verify | Arbitrate

let purpose_code = function Data -> 0 | Verify -> 1 | Arbitrate -> 2

let purpose_of_code = function
  | 0 -> Data
  | 1 -> Verify
  | 2 -> Arbitrate
  | k -> error "unknown chunk purpose %d" k

let purpose_name = function Data -> "data" | Verify -> "verify" | Arbitrate -> "arbitrate"

type chunk = {
  chunk_id : int;
  lo : int;
  hi : int;
  model : int;  (* Fault_model.id the chunk's samples are classified under *)
  model_param : int;  (* Fault_model.param (MBU cluster size / hold cycles) *)
  purpose : purpose;
}

type msg =
  | Hello of { version : int; name : string; epoch : int }
  | Welcome of { header : Journal.header; suspicion : int }
  | Request
  | Assign of chunk
  | Wait
  | Results of { chunk_id : int; results : (int * Journal.outcome) array }
  | Chunk_done of { chunk_id : int }
  | Heartbeat
  | Done

let add_string32 buf s =
  put32 buf (String.length s);
  Buffer.add_string buf s

(* Outcomes reuse the journal's record vocabulary: kind byte + one
   32-bit argument (the SDC divergence cycle). *)
let add_outcome buf (o : Journal.outcome) =
  let kind, arg =
    match o with
    | Journal.Benign -> (0, 0)
    | Journal.Latent -> (1, 0)
    | Journal.Sdc c -> (2, c)
    | Journal.Skipped -> (3, 0)
    | Journal.Crashed -> (4, 0)
  in
  Buffer.add_char buf (Char.chr kind);
  put32 buf arg

let encode msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { version; name; epoch } ->
    Buffer.add_char buf 'H';
    put32 buf version;
    add_string32 buf name;
    (* epoch >= -1 (-1 = "never connected"); shift by one so the wire
       field stays an unsigned 32-bit value. *)
    put32 buf (epoch + 1)
  | Welcome { header; suspicion } ->
    Buffer.add_char buf 'W';
    add_string32 buf (Journal.header_to_string header);
    put32 buf suspicion
  | Request -> Buffer.add_char buf 'R'
  | Assign { chunk_id; lo; hi; model; model_param; purpose } ->
    Buffer.add_char buf 'A';
    put32 buf chunk_id;
    put32 buf lo;
    put32 buf hi;
    put32 buf model;
    put32 buf model_param;
    put32 buf (purpose_code purpose)
  | Wait -> Buffer.add_char buf 'w'
  | Results { chunk_id; results } ->
    Buffer.add_char buf 'r';
    put32 buf chunk_id;
    put32 buf (Array.length results);
    Array.iter
      (fun (index, outcome) ->
        put32 buf index;
        add_outcome buf outcome)
      results
  | Chunk_done { chunk_id } ->
    Buffer.add_char buf 'C';
    put32 buf chunk_id
  | Heartbeat -> Buffer.add_char buf 'h'
  | Done -> Buffer.add_char buf 'D');
  Buffer.contents buf

(* A cursor over the payload; every read is bounds-checked so a short or
   trailing-garbage message fails loudly instead of decoding nonsense. *)
type cursor = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then error "truncated message"

let take_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let take_u32 c =
  need c 4;
  let v = get32 c.s c.pos in
  c.pos <- c.pos + 4;
  v

let take_string32 c =
  let len = take_u32 c in
  need c len;
  let v = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  v

let take_outcome c : Journal.outcome =
  let kind = take_u8 c in
  let arg = take_u32 c in
  match kind with
  | 0 -> Journal.Benign
  | 1 -> Journal.Latent
  | 2 -> Journal.Sdc arg
  | 3 -> Journal.Skipped
  | 4 -> Journal.Crashed
  | k -> error "unknown outcome kind %d" k

let decode payload =
  if payload = "" then error "empty message";
  let c = { s = payload; pos = 1 } in
  let msg =
    match payload.[0] with
    | 'H' ->
      let version = take_u32 c in
      let name = take_string32 c in
      let epoch = take_u32 c - 1 in
      Hello { version; name; epoch }
    | 'W' -> (
      let text = take_string32 c in
      let suspicion = take_u32 c in
      match Journal.header_of_string ~what:"peer" text with
      | h -> Welcome { header = h; suspicion }
      | exception Journal.Error msg -> error "bad Welcome header: %s" msg)
    | 'R' -> Request
    | 'A' ->
      let chunk_id = take_u32 c in
      let lo = take_u32 c in
      let hi = take_u32 c in
      let model = take_u32 c in
      let model_param = take_u32 c in
      let purpose = purpose_of_code (take_u32 c) in
      Assign { chunk_id; lo; hi; model; model_param; purpose }
    | 'w' -> Wait
    | 'r' ->
      let chunk_id = take_u32 c in
      let n = take_u32 c in
      (* 9 bytes per result: cheap sanity bound before allocating. *)
      if n * 9 > String.length payload then error "results count %d exceeds the payload" n;
      (* Explicit loop: [Array.init]'s evaluation order is unspecified
         and the cursor reads must happen left to right. *)
      let results = Array.make n (0, Journal.Benign) in
      for i = 0 to n - 1 do
        let index = take_u32 c in
        let outcome = take_outcome c in
        results.(i) <- (index, outcome)
      done;
      Results { chunk_id; results }
    | 'C' -> Chunk_done { chunk_id = take_u32 c }
    | 'h' -> Heartbeat
    | 'D' -> Done
    | t -> error "unknown message tag %C" t
  in
  if c.pos <> String.length payload then error "trailing garbage after message";
  msg

let send ?deadline ?chaos fd msg = write_frame ?deadline ?chaos fd (encode msg)
let recv ?deadline ?chaos fd = decode (read_frame ?deadline ?chaos fd)
