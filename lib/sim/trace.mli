(** Recorded wire-level execution trace.

    One packed bit row per clock cycle holding the stabilized value of
    every wire in that cycle (the paper's VCD-equivalent input to MATE
    selection and fault-space accounting). *)

type t

val create : n_wires:int -> t

val n_wires : t -> int

val n_cycles : t -> int

val append : t -> bool array -> unit
(** Record one cycle; the array length must equal [n_wires]. The array is
    copied. *)

val get : t -> cycle:int -> int -> bool
(** [get t ~cycle wire]. Raises [Invalid_argument] out of range. *)

val row : ?into:bool array -> t -> cycle:int -> bool array
(** All wire values of one cycle. With [~into] the values are written
    into the caller's buffer (length must be [n_wires]) and that buffer
    is returned — no allocation; otherwise a fresh array is allocated. *)

val row_bytes : t -> cycle:int -> Bytes.t
(** The internal packed row of one cycle (bit [w land 7] of byte
    [w lsr 3] is wire [w]): a zero-copy read-only view for the delta
    kernel's golden lookups. Callers must not mutate the bytes. *)

val bits_per_word : int
(** Cycles packed per word by {!column} ([Sys.int_size]). *)

val n_words : t -> int
(** Words per column: [ceil (n_cycles / bits_per_word)]. *)

val column : t -> wire:int -> int array
(** Column-packed view of one wire: bit [c mod bits_per_word] of word
    [c / bits_per_word] is the wire's value at cycle [c]. Lets replay
    loops (e.g. {!Pruning_mate.Replay.triggers}) evaluate a literal over
    [bits_per_word] cycles per machine operation. *)

val changed : t -> cycle:int -> int -> bool
(** [changed t ~cycle w] is true when the value of [w] differs from the
    previous cycle (always true at cycle 0): the VCD writer's delta
    source. *)
