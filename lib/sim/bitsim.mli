(** Lane-parallel (PPSFP) netlist simulator.

    The bit-parallel sibling of {!Sim}: every wire holds one packed
    machine word of {!n_lanes} independent simulation lanes — by
    convention lane 0 is the golden (fault-free) run and lanes
    [1 .. n_lanes - 1] carry faulty machines. Each gate is lowered once
    from its truth table into a straight-line bitwise formula
    ({!Pruning_cell.Lower}), so one pass over the packed gate array
    advances all lanes at once — the classic parallel fault simulation
    trick that gives the campaign engine its throughput multiplier.

    Two-phase semantics, devices and snapshots mirror {!Sim} exactly; a
    lane-parallel run whose lanes never diverge is cycle-identical to the
    scalar simulator (the differential tests assert this). Lane-aware
    devices read and drive whole packed words; see
    {!Pruning_cpu.Memory} for copy-on-write RAM models whose per-lane
    contents materialize only when a lane's address/data/write-enable
    diverges from lane 0. *)

type t

val n_lanes : int
(** Number of lanes per machine word ([Sys.int_size], 63 on 64-bit). *)

type reader = Pruning_netlist.Netlist.wire -> int
type writer = Pruning_netlist.Netlist.wire -> int -> unit

type device = {
  dev_name : string;
  dev_comb : reader -> writer -> unit;
      (** Combinational response over packed words: read outputs, drive
          primary inputs. *)
  dev_clock : reader -> unit;  (** Clocked side effect at the latch edge. *)
  dev_save : unit -> unit -> unit;
      (** [dev_save ()] captures internal state and returns a restorer. *)
}

val pure_device : string -> (reader -> writer -> unit) -> device

val create : Pruning_netlist.Netlist.t -> t
(** Fresh simulator; every lane of a flop starts at its [init] value,
    primary inputs at 0. *)

val netlist : t -> Pruning_netlist.Netlist.t
val cycle : t -> int

val add_device : t -> device -> unit

val set_input : t -> Pruning_netlist.Netlist.wire -> int -> unit
(** Drive a primary-input wire with a packed word. *)

val peek : t -> Pruning_netlist.Netlist.wire -> int
(** Packed word of any wire as of the last {!eval}. *)

val splat : bool -> int
(** [splat b] is the packed word holding [b] in every lane ([-1] or [0]). *)

val eval : t -> unit
(** Stabilize combinational logic and devices for the current cycle. *)

val latch : t -> unit
(** Clock edge: device clocked hooks, flop update, cycle advance. *)

val step : t -> unit
(** [eval] then [latch]. *)

val run : t -> cycles:int -> unit

val get_flop : t -> int -> int
(** Packed Q word of a flop (by [flop_id]). *)

val set_flop : t -> int -> int -> unit

val get_flop_lane : t -> int -> lane:int -> bool

val flip_flop_lane : t -> int -> lane:int -> unit
(** XOR one lane's bit of a flop's Q — the per-lane SEU injection
    primitive. Takes effect on the next {!eval}. *)

val reset_lane : t -> lane:int -> unit
(** Re-synchronize [lane] with the golden run at a cost proportional to
    the number of diverged flops, not the wire count: lane 0's bit is
    copied into [lane] only for flops tracked as diverged since the last
    full sync, plus every primary input. Combinational wires are left
    stale and repaired by the next {!eval}, so callers must invoke this
    between {!latch} and the next {!eval} — never between {!eval} and a
    read of combinational values. Device state is handled by the devices
    themselves, e.g. {!Pruning_cpu.Memory.lane_reset}. *)

val save_state : t -> unit -> unit
(** Whole-simulator snapshot (wire words, cycle count, device states);
    returns a restorer closure. *)
