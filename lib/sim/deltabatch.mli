(** Batched activity-gated delta simulation: many in-flight faulty runs
    as independent sparse XOR-deltas against one recorded golden trace.

    The fourth campaign kernel — the composition of {!Deltasim}
    (activity gating: only gates with a dirty input are re-evaluated,
    over one shared levelized bucket schedule) and {!Bitsim} (lane
    packing: each wire carries one machine word, bit [l] = lane [l]).
    Here bit [l] of a wire's {e flip word} is set iff lane [l]'s faulty
    value differs from the golden trace this cycle; a dirty gate is
    re-evaluated once per cycle through its Shannon-lowered formula
    over packed faulty words, classifying the union of dirty lanes in
    one pass instead of once per fault. There is no golden lane — the
    trace is the baseline — so all {!n_lanes} lanes carry faults.

    Dirty-set invariant (per lane): after {!propagate}, bit [l] of
    [flip_word t w] is set iff lane [l]'s value of [w] differs from the
    golden trace at the current cycle — exactly, for every wire.

    Retirement soundness (per lane): when lane [l] has a zero flip
    count and every device reports it clean, its machine is
    bit-identical to the golden one; simulation is deterministic, so
    all later cycles are golden too and the lane retires Benign without
    simulating them. {!wipe_lane} then frees the lane for the next
    queued fault without touching the other lanes. *)

module Netlist := Pruning_netlist.Netlist

type t

val n_lanes : int
(** Concurrent fault lanes per pass ([Sys.int_size]; every lane is a
    fault lane — the recorded trace plays the golden role). *)

type device = {
  db_name : string;
  db_comb : int -> unit;
      (** Fixed-point phase: recompute the lanes in the given mask from
          their faulty port values (via {!faulty}) and drive faulty
          words back (via {!drive_masked}). Only called with a nonzero
          mask — lanes whose state and watched ports are clean are
          already golden. *)
  db_clock : unit -> unit;
      (** Clock edge: advance all lanes one cycle. Called every cycle
          (must be O(1) when every lane is clean — golden replay). *)
  db_seek : int -> unit;
      (** Rewind internal state to golden at the start of a cycle. *)
  db_dirty : unit -> int;
      (** Mask of lanes whose internal state differs from golden. *)
  db_diffs : lane:int -> (int * int) list;
      (** [(address, faulty_value)] pairs where one lane's state
          diverges, sorted by address — the horizon Latent check and
          the memo-key RAM diff. *)
  db_reset : lane:int -> unit;
      (** Forget one lane's divergence (the lane retired). *)
  db_watch : int array;
      (** Port wires, read {e and} write side: a flip on any of them
          forces [db_comb] for the flipped lanes. *)
}

val create : Netlist.t -> Trace.t -> t
(** [create nl trace]: build a kernel over [nl] whose golden baseline
    is [trace]. Raises [Invalid_argument] on width mismatch or an
    empty trace. *)

val netlist : t -> Netlist.t

val cycle : t -> int
(** Current cycle (the trace row {!propagate} compares against). *)

val total_cycles : t -> int
(** Cycles in the golden trace; valid cycles are [0, total_cycles). *)

val add_device : t -> device -> unit
(** Attach a batch delta device. Comb hooks run in attach order. *)

val attach : t -> cycle:int -> unit
(** Clear all delta state and position the kernel at the start of
    [cycle]: every lane is bit-exact golden until the first
    {!flip_flop_lane} or {!drive_masked}. Reuses all internal buffers —
    the cost is proportional to the {e previous} pass's dirty set. *)

val flip_flop_lane : t -> int -> lane:int -> unit
(** Flip one flop's Q in one lane for the current cycle — the SEU. *)

val propagate : t -> unit
(** Settle the current cycle: refresh surviving flip words against this
    cycle's golden row and run gates + devices to a fixed point (the
    delta image of [Bitsim.eval]). Raises [Failure] if devices fail to
    stabilize within the same round budget as the other engines. *)

val latch : t -> unit
(** Clock edge: each Q's flip word for the next cycle becomes exactly
    its D's flip word this cycle; devices clock (golden replay when
    clean). Advances {!cycle}. *)

val wipe_lane : t -> lane:int -> unit
(** Return one lane to bit-exact golden: clear its bit from every dirty
    wire and reset its device divergence. Safe immediately at any
    retirement point — the lane's state is then exactly the trace, so
    nothing stale can leak back through the latch. *)

val golden : t -> Netlist.wire -> bool
(** Golden value of a wire at the current cycle. *)

val faulty : t -> Netlist.wire -> lane:int -> bool
(** One lane's faulty value: golden XOR flip bit. Exact after
    {!propagate}. *)

val flip_word : t -> Netlist.wire -> int
(** The wire's packed flip word (bit [l] = lane [l] differs). *)

val faulty_word : t -> Netlist.wire -> int
(** The wire's packed faulty word: [splat golden lxor flip_word]. *)

val drive_masked : t -> Netlist.wire -> mask:int -> int -> unit
(** Assert the faulty word of a port wire for the lanes in [mask],
    leaving other lanes' flip bits untouched (device comb hooks
    only). *)

val flips_mask : t -> int
(** Mask of lanes with at least one flipped wire. *)

val out_mask : t -> int
(** Mask of lanes with a flipped primary output this cycle (check
    after {!propagate} — the SDC test). *)

val q_mask : t -> int
(** Mask of lanes with a flipped flop Q (the horizon Latent test,
    with {!devices_dirty_mask}). *)

val devices_dirty_mask : t -> int
(** Mask of lanes with diverged device state. *)

val live_mask : t -> int
(** [flips_mask lor devices_dirty_mask]: lanes not yet re-converged.
    A lane absent from this mask is bit-exact golden and can retire
    Benign. *)

val device_diffs : t -> lane:int -> (string * (int * int) list) list
(** One lane's per-device divergence, for memo keys and tests. *)
