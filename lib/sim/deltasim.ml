module Netlist = Pruning_netlist.Netlist
module Cell = Pruning_cell.Cell

(* Activity-gated delta kernel: one faulty run simulated as a sparse
   difference against a recorded golden trace.

   Invariant (the "dirty-set invariant"): after every [propagate], for
   every wire [w], [flipped.(w)] is true iff the faulty value of [w]
   this cycle differs from the golden trace row, and every flipped wire
   is listed in the dirty set. Gates whose inputs are all clean are
   never re-evaluated — their golden output is already correct — so the
   per-cycle cost is proportional to the fault cone's active frontier,
   not to the netlist. When the dirty set empties and every attached
   device reports a clean diff, the faulty machine state is bit-exact
   golden; determinism makes every later cycle golden too, so the lane
   can retire immediately (same soundness argument as the campaign's
   early-Benign checkpoint compare). *)

type device = {
  dd_name : string;
  dd_comb : unit -> unit;  (* fixed-point phase: read faulty ports, drive faulty values *)
  dd_clock : unit -> unit;  (* clock edge: advance internal state one cycle *)
  dd_seek : int -> unit;  (* rewind internal state to the start of a cycle *)
  dd_clean : unit -> bool;  (* internal state identical to golden? *)
  dd_diffs : unit -> (int * int) list;  (* (address, faulty value), sorted *)
  dd_watch : int array;  (* port wires (read and write) whose flip wakes the device *)
}

(* One gate flattened for the sweep: truth table, input wires, output
   wire and logic level, indexed by gate id. *)
type dgate = {
  dg_table : int;
  dg_ins : int array;
  dg_out : int;
  dg_level : int;
}

type t = {
  nl : Netlist.t;
  trace : Trace.t;
  total : int;  (* trace cycles; faulty cycles run in [0, total) *)
  gates : dgate array;  (* indexed by gate id *)
  wire_readers : int array array;
  flop_readers : int array array;
  driver_gate : int array;  (* wire -> driving gate id, or -1 *)
  flop_q : int array;  (* flop id -> Q wire *)
  is_out : bool array;  (* wire is a primary output *)
  is_q : bool array;  (* wire is some flop's Q *)
  flipped : bool array;  (* wire differs from golden this cycle *)
  in_list : bool array;  (* wire present in [dirty] *)
  dirty : int array;  (* flipped wires (plus not-yet-compacted clears) *)
  mutable n_dirty : int;
  mutable flip_count : int;  (* wires currently flipped *)
  mutable out_count : int;  (* flipped primary outputs *)
  mutable q_count : int;  (* flipped flop Qs *)
  buckets : int array array;  (* scheduled gate ids, one bucket per level *)
  bucket_n : int array;
  scheduled : bool array;  (* per gate *)
  latch_list : int array;  (* flops latching a flipped D this edge *)
  mutable latch_n : int;
  mutable row : Bytes.t;  (* golden trace row of the current cycle *)
  mutable devices_rev : device list;
  mutable devices_ord : device list option;
  mutable drive_changed : bool;  (* a device changed a port flip this round *)
  mutable cyc : int;
}

let create nl trace =
  if Trace.n_wires trace <> Netlist.n_wires nl then
    invalid_arg "Deltasim.create: trace width does not match netlist";
  if Trace.n_cycles trace = 0 then invalid_arg "Deltasim.create: empty trace";
  let nw = Netlist.n_wires nl in
  let ng = Netlist.n_gates nl in
  let nf = Netlist.n_flops nl in
  let gates =
    Array.map
      (fun (g : Netlist.gate) ->
        {
          dg_table = g.Netlist.cell.Cell.table;
          dg_ins = g.Netlist.inputs;
          dg_out = g.Netlist.output;
          dg_level = nl.Netlist.level.(g.Netlist.gate_id);
        })
      nl.Netlist.gates
  in
  let max_level = Array.fold_left (fun acc g -> max acc g.dg_level) 0 gates in
  let per_level = Array.make (max_level + 1) 0 in
  Array.iter (fun g -> per_level.(g.dg_level) <- per_level.(g.dg_level) + 1) gates;
  let driver_gate =
    Array.map
      (function Netlist.Driver_gate g -> g | Netlist.Driver_input | Netlist.Driver_flop _ -> -1)
      nl.Netlist.driver
  in
  let is_q = Array.make nw false in
  let flop_q = Array.make nf 0 in
  Array.iter
    (fun (f : Netlist.flop) ->
      is_q.(f.Netlist.q) <- true;
      flop_q.(f.Netlist.flop_id) <- f.Netlist.q)
    nl.Netlist.flops;
  {
    nl;
    trace;
    total = Trace.n_cycles trace;
    gates;
    wire_readers = nl.Netlist.readers;
    flop_readers = nl.Netlist.flop_readers;
    driver_gate;
    flop_q;
    is_out = nl.Netlist.is_primary_output;
    is_q;
    flipped = Array.make nw false;
    in_list = Array.make nw false;
    dirty = Array.make nw 0;
    n_dirty = 0;
    flip_count = 0;
    out_count = 0;
    q_count = 0;
    buckets = Array.map (fun n -> Array.make (max n 1) 0) per_level;
    bucket_n = Array.make (max_level + 1) 0;
    scheduled = Array.make (max ng 1) false;
    latch_list = Array.make (max nf 1) 0;
    latch_n = 0;
    row = Trace.row_bytes trace ~cycle:0;
    devices_rev = [];
    devices_ord = None;
    drive_changed = false;
    cyc = 0;
  }

let netlist t = t.nl
let cycle t = t.cyc
let total_cycles t = t.total

let devices t =
  match t.devices_ord with
  | Some ds -> ds
  | None ->
    let ds = List.rev t.devices_rev in
    t.devices_ord <- Some ds;
    ds

let add_device t d =
  t.devices_rev <- d :: t.devices_rev;
  t.devices_ord <- None

let golden t w = Char.code (Bytes.unsafe_get t.row (w lsr 3)) land (1 lsl (w land 7)) <> 0
let faulty t w = golden t w <> Array.unsafe_get t.flipped w
let is_flipped t w = t.flipped.(w)

let schedule t gid =
  if not (Array.unsafe_get t.scheduled gid) then begin
    Array.unsafe_set t.scheduled gid true;
    let lvl = (Array.unsafe_get t.gates gid).dg_level in
    let n = Array.unsafe_get t.bucket_n lvl in
    (Array.unsafe_get t.buckets lvl).(n) <- gid;
    Array.unsafe_set t.bucket_n lvl (n + 1)
  end

(* Flip or clear one wire, maintaining the dirty set, the divergence
   counters, and the schedule: readers re-evaluate on both edges (an
   input going clean can clean the output too). *)
let set_flip t w nf =
  if t.flipped.(w) <> nf then begin
    t.flipped.(w) <- nf;
    let d = if nf then 1 else -1 in
    t.flip_count <- t.flip_count + d;
    if t.is_out.(w) then t.out_count <- t.out_count + d;
    if t.is_q.(w) then t.q_count <- t.q_count + d;
    if nf && not t.in_list.(w) then begin
      t.in_list.(w) <- true;
      t.dirty.(t.n_dirty) <- w;
      t.n_dirty <- t.n_dirty + 1
    end;
    let rs = t.wire_readers.(w) in
    for i = 0 to Array.length rs - 1 do
      schedule t (Array.unsafe_get rs i)
    done
  end

let eval_gate t gid =
  let g = Array.unsafe_get t.gates gid in
  let ins = g.dg_ins in
  let pattern = ref 0 in
  for j = 0 to Array.length ins - 1 do
    if faulty t (Array.unsafe_get ins j) then pattern := !pattern lor (1 lsl j)
  done;
  let fv = g.dg_table land (1 lsl !pattern) <> 0 in
  set_flip t g.dg_out (fv <> golden t g.dg_out)

(* Drain the schedule level by level. A gate's readers sit at strictly
   higher levels (Netlist invariant), so one pass settles all
   combinational fallout of the current flips. *)
let sweep t =
  let buckets = t.buckets in
  for lvl = 0 to Array.length buckets - 1 do
    let b = Array.unsafe_get buckets lvl in
    let n = Array.unsafe_get t.bucket_n lvl in
    Array.unsafe_set t.bucket_n lvl 0;
    for i = 0 to n - 1 do
      let gid = Array.unsafe_get b i in
      Array.unsafe_set t.scheduled gid false;
      eval_gate t gid
    done
  done

(* A device must run when its internal state differs from golden or any
   of its port wires (read or write side) is flipped: a stale flip on a
   write port can only be cleared by the device re-driving it. *)
let device_needed t d =
  (not (d.dd_clean ()))
  ||
  let watch = d.dd_watch in
  let n = Array.length watch in
  let rec scan i = i < n && (t.flipped.(watch.(i)) || scan (i + 1)) in
  scan 0

let max_device_rounds = 5

(* Called by device comb hooks: assert the faulty value of a port wire. *)
let drive t w v =
  let nf = v <> golden t w in
  if nf <> t.flipped.(w) then begin
    set_flip t w nf;
    t.drive_changed <- true
  end

(* Settle the current cycle: refresh stale flips against this cycle's
   golden row, then run gates and devices to a fixed point — the delta
   image of [Sim.eval]. *)
let propagate t =
  t.row <- Trace.row_bytes t.trace ~cycle:t.cyc;
  (* Cycle start: every surviving flip re-schedules its driver (so the
     flag is recomputed against the new golden row) and its readers;
     wires that went clean leave the dirty set here. *)
  let j = ref 0 in
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    if t.flipped.(w) then begin
      t.dirty.(!j) <- w;
      incr j;
      let dg = t.driver_gate.(w) in
      if dg >= 0 then schedule t dg;
      let rs = t.wire_readers.(w) in
      for k = 0 to Array.length rs - 1 do
        schedule t rs.(k)
      done
    end
    else t.in_list.(w) <- false
  done;
  t.n_dirty <- !j;
  sweep t;
  if t.devices_rev <> [] then begin
    let running = ref true in
    let rounds = ref 0 in
    while !running do
      t.drive_changed <- false;
      List.iter (fun d -> if device_needed t d then d.dd_comb ()) (devices t);
      if t.drive_changed then begin
        incr rounds;
        if !rounds > max_device_rounds then
          failwith "Deltasim.propagate: device inputs failed to stabilize";
        sweep t
      end
      else running := false
    done
  end

(* Clock edge. Golden latches D into Q, so the Q flip flag for the next
   cycle is exactly the D flip flag of this one — no golden lookup
   crosses the row boundary. Devices clock unconditionally: a clean
   device's clock is O(1) golden replay. *)
let latch t =
  List.iter (fun d -> d.dd_clock ()) (devices t);
  (* Phase A: snapshot the flops latching a flipped D before any flag
     changes (a Q wire may itself be another flop's D). *)
  t.latch_n <- 0;
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    if t.flipped.(w) then begin
      let frs = t.flop_readers.(w) in
      for k = 0 to Array.length frs - 1 do
        t.latch_list.(t.latch_n) <- frs.(k);
        t.latch_n <- t.latch_n + 1
      done
    end
  done;
  (* Phase B: clear every flipped Q; Phase C: flip the Qs that latched a
     flipped D. Gate-output flags go stale here by design — the next
     [propagate] refreshes them against the new golden row. *)
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    if t.flipped.(w) && t.is_q.(w) then set_flip t w false
  done;
  for i = 0 to t.latch_n - 1 do
    let q = t.flop_q.(t.latch_list.(i)) in
    if not t.flipped.(q) then set_flip t q true
  done;
  t.cyc <- t.cyc + 1

(* Reset all delta state and position the kernel at the start of
   [cycle], ready for an injection: the faulty machine is bit-exact
   golden until the first [flip_flop]/[drive]. *)
let attach t ~cycle =
  if cycle < 0 || cycle >= t.total then invalid_arg "Deltasim.attach: cycle out of range";
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    t.flipped.(w) <- false;
    t.in_list.(w) <- false
  done;
  t.n_dirty <- 0;
  t.flip_count <- 0;
  t.out_count <- 0;
  t.q_count <- 0;
  for lvl = 0 to Array.length t.buckets - 1 do
    let b = t.buckets.(lvl) in
    for i = 0 to t.bucket_n.(lvl) - 1 do
      t.scheduled.(b.(i)) <- false
    done;
    t.bucket_n.(lvl) <- 0
  done;
  t.drive_changed <- false;
  t.cyc <- cycle;
  t.row <- Trace.row_bytes t.trace ~cycle;
  List.iter (fun d -> d.dd_seek cycle) (devices t)

let flip_flop t fid =
  if fid < 0 || fid >= Netlist.n_flops t.nl then invalid_arg "Deltasim.flip_flop: bad flop id";
  let q = t.flop_q.(fid) in
  set_flip t q (not t.flipped.(q))

let devices_clean t = List.for_all (fun d -> d.dd_clean ()) (devices t)
let converged t = t.flip_count = 0 && devices_clean t
let output_diverged t = t.out_count > 0
let flops_diverged t = t.q_count > 0
let n_dirty t = t.flip_count

let device_diffs t = List.map (fun d -> (d.dd_name, d.dd_diffs ())) (devices t)
