module Netlist = Pruning_netlist.Netlist
module Cell = Pruning_cell.Cell

type reader = Netlist.wire -> bool
type writer = Netlist.wire -> bool -> unit

type device = {
  dev_name : string;
  dev_comb : reader -> writer -> unit;
  dev_clock : reader -> unit;
  dev_save : unit -> unit -> unit;
}

let pure_device name dev_comb =
  { dev_name = name; dev_comb; dev_clock = (fun _ -> ()); dev_save = (fun () () -> ()) }

(* Gates flattened for the inner loop: truth table + wire indices. *)
type packed_gate = {
  table : int;
  g_inputs : int array;
  g_output : int;
}

type t = {
  nl : Netlist.t;
  values : bool array;
  is_input : bool array;
  packed : packed_gate array; (* in topological order *)
  latch_buf : bool array; (* scratch for the two-phase flop update *)
  mutable devices_rev : device list; (* newest first; O(1) attach *)
  mutable devices_ord : device list option; (* cached attach order *)
  mutable cyc : int;
}

let create nl =
  let nw = Netlist.n_wires nl in
  let values = Array.make nw false in
  Array.iter (fun (f : Netlist.flop) -> values.(f.q) <- f.init) nl.Netlist.flops;
  let is_input = Array.make nw false in
  List.iter
    (fun (p : Netlist.port) -> Array.iter (fun w -> is_input.(w) <- true) p.Netlist.port_wires)
    nl.Netlist.inputs;
  let packed =
    Array.map
      (fun gid ->
        let g = nl.Netlist.gates.(gid) in
        { table = g.Netlist.cell.Cell.table; g_inputs = g.Netlist.inputs; g_output = g.Netlist.output })
      nl.Netlist.topo
  in
  {
    nl;
    values;
    is_input;
    packed;
    latch_buf = Array.make (Netlist.n_flops nl) false;
    devices_rev = [];
    devices_ord = None;
    cyc = 0;
  }

let netlist t = t.nl
let cycle t = t.cyc

let devices t =
  match t.devices_ord with
  | Some ds -> ds
  | None ->
    let ds = List.rev t.devices_rev in
    t.devices_ord <- Some ds;
    ds

let add_device t d =
  t.devices_rev <- d :: t.devices_rev;
  t.devices_ord <- None

let set_input t w v =
  if not t.is_input.(w) then
    invalid_arg (Printf.sprintf "Sim.set_input: %s is not a primary input" (Netlist.wire_name t.nl w));
  t.values.(w) <- v

let peek t w = t.values.(w)

let set_port t name value =
  let port = Netlist.find_input_port t.nl name in
  Array.iteri (fun i w -> set_input t w (value land (1 lsl i) <> 0)) port.Netlist.port_wires

let get_port t name =
  let port =
    try Netlist.find_output_port t.nl name
    with Not_found -> Netlist.find_input_port t.nl name
  in
  let v = ref 0 in
  Array.iteri (fun i w -> if t.values.(w) then v := !v lor (1 lsl i)) port.Netlist.port_wires;
  !v

let eval_combinational t =
  let values = t.values in
  Array.iter
    (fun g ->
      let pattern = ref 0 in
      let ins = g.g_inputs in
      for j = 0 to Array.length ins - 1 do
        if values.(ins.(j)) then pattern := !pattern lor (1 lsl j)
      done;
      values.(g.g_output) <- g.table land (1 lsl !pattern) <> 0)
    t.packed

let max_device_rounds = 5

let eval t =
  eval_combinational t;
  if t.devices_rev <> [] then begin
    let changed = ref true in
    let rounds = ref 0 in
    let reader w = t.values.(w) in
    let writer w v =
      if not t.is_input.(w) then
        invalid_arg
          (Printf.sprintf "Sim device: %s is not a primary input" (Netlist.wire_name t.nl w));
      if t.values.(w) <> v then begin
        t.values.(w) <- v;
        changed := true
      end
    in
    while !changed do
      changed := false;
      List.iter (fun d -> d.dev_comb reader writer) (devices t);
      if !changed then begin
        incr rounds;
        if !rounds > max_device_rounds then
          failwith "Sim.eval: device inputs failed to stabilize";
        eval_combinational t
      end
    done
  end

let latch t =
  let reader w = t.values.(w) in
  List.iter (fun d -> d.dev_clock reader) (devices t);
  let flops = t.nl.Netlist.flops in
  let n = Array.length flops in
  let next = t.latch_buf in
  for i = 0 to n - 1 do
    next.(i) <- t.values.(flops.(i).Netlist.d)
  done;
  for i = 0 to n - 1 do
    t.values.(flops.(i).Netlist.q) <- next.(i)
  done;
  t.cyc <- t.cyc + 1

let step t ?trace () =
  eval t;
  (match trace with
  | Some tr -> Trace.append tr t.values
  | None -> ());
  latch t

let run t ?trace ~cycles () =
  for _ = 1 to cycles do
    step t ?trace ()
  done

let get_flop t fid = t.values.(t.nl.Netlist.flops.(fid).Netlist.q)
let set_flop t fid v = t.values.(t.nl.Netlist.flops.(fid).Netlist.q) <- v

let save_state t =
  let values = Array.copy t.values in
  let cyc = t.cyc in
  let device_restores = List.map (fun d -> d.dev_save ()) (devices t) in
  fun () ->
    Array.blit values 0 t.values 0 (Array.length values);
    t.cyc <- cyc;
    List.iter (fun restore -> restore ()) device_restores
