type t = {
  n_wires : int;
  bytes_per_cycle : int;
  mutable rows : Bytes.t array; (* capacity-grown *)
  mutable n_cycles : int;
}

let create ~n_wires =
  if n_wires <= 0 then invalid_arg "Trace.create";
  { n_wires; bytes_per_cycle = (n_wires + 7) / 8; rows = Array.make 64 Bytes.empty; n_cycles = 0 }

let n_wires t = t.n_wires
let n_cycles t = t.n_cycles

let ensure_capacity t =
  if t.n_cycles >= Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) Bytes.empty in
    Array.blit t.rows 0 bigger 0 t.n_cycles;
    t.rows <- bigger
  end

let append t values =
  if Array.length values <> t.n_wires then invalid_arg "Trace.append: width mismatch";
  ensure_capacity t;
  (* Pack 8 wires per byte in one pass: accumulate the byte in a local
     int and store it once, instead of a read-modify-write through
     Char.code/Char.chr for every set bit. *)
  let row = Bytes.create t.bytes_per_cycle in
  let n = t.n_wires in
  for b = 0 to t.bytes_per_cycle - 1 do
    let base = b lsl 3 in
    let lim = min 8 (n - base) in
    let byte = ref 0 in
    for j = 0 to lim - 1 do
      if Array.unsafe_get values (base + j) then byte := !byte lor (1 lsl j)
    done;
    Bytes.unsafe_set row b (Char.unsafe_chr !byte)
  done;
  t.rows.(t.n_cycles) <- row;
  t.n_cycles <- t.n_cycles + 1

let check t ~cycle w =
  if cycle < 0 || cycle >= t.n_cycles then invalid_arg "Trace: cycle out of range";
  if w < 0 || w >= t.n_wires then invalid_arg "Trace: wire out of range"

let get_unchecked t cycle w =
  Char.code (Bytes.get t.rows.(cycle) (w lsr 3)) land (1 lsl (w land 7)) <> 0

let get t ~cycle w =
  check t ~cycle w;
  get_unchecked t cycle w

let row_bytes t ~cycle =
  if cycle < 0 || cycle >= t.n_cycles then invalid_arg "Trace.row_bytes: cycle out of range";
  t.rows.(cycle)

let row ?into t ~cycle =
  if cycle < 0 || cycle >= t.n_cycles then invalid_arg "Trace.row: cycle out of range";
  let out =
    match into with
    | None -> Array.make t.n_wires false
    | Some buf ->
      if Array.length buf <> t.n_wires then invalid_arg "Trace.row: buffer width mismatch";
      buf
  in
  for w = 0 to t.n_wires - 1 do
    out.(w) <- get_unchecked t cycle w
  done;
  out

let bits_per_word = Sys.int_size

let n_words t = (t.n_cycles + bits_per_word - 1) / bits_per_word

let column t ~wire =
  if wire < 0 || wire >= t.n_wires then invalid_arg "Trace.column: wire out of range";
  let words = Array.make (n_words t) 0 in
  let byte = wire lsr 3 and bit = wire land 7 in
  for cycle = 0 to t.n_cycles - 1 do
    if Char.code (Bytes.unsafe_get t.rows.(cycle) byte) land (1 lsl bit) <> 0 then
      words.(cycle / bits_per_word) <-
        words.(cycle / bits_per_word) lor (1 lsl (cycle mod bits_per_word))
  done;
  words

let changed t ~cycle w =
  check t ~cycle w;
  if cycle = 0 then true
  else get_unchecked t cycle w <> get_unchecked t (cycle - 1) w
