module Netlist = Pruning_netlist.Netlist
module Cell = Pruning_cell.Cell
module Lower = Pruning_cell.Lower

let n_lanes = Sys.int_size

type reader = Netlist.wire -> int
type writer = Netlist.wire -> int -> unit

type device = {
  dev_name : string;
  dev_comb : reader -> writer -> unit;
  dev_clock : reader -> unit;
  dev_save : unit -> unit -> unit;
}

let pure_device name dev_comb =
  { dev_name = name; dev_comb; dev_clock = (fun _ -> ()); dev_save = (fun () () -> ()) }

(* One gate of the packed array: the cell's Shannon-lowered formula,
   compiled once with the input wire indices baked in. *)
type packed_gate = {
  g_output : int;
  g_eval : int array -> int;
}

type t = {
  nl : Netlist.t;
  values : int array;  (* per wire: one packed word, bit l = lane l *)
  is_input : bool array;
  input_wires : int array;  (* primary-input wires, for cheap lane resets *)
  packed : packed_gate array;  (* in topological order *)
  latch_buf : int array;  (* scratch for the two-phase flop update *)
  (* Divergence summary: a conservative superset of the flops whose Q
     word is non-uniform across lanes. Exact after every [latch] (the
     latch loop rebuilds it for free); [flip_flop_lane]/[set_flop] add
     marks in between. Lets [reset_lane] touch only diverged state. *)
  div_mark : bool array;  (* per flop *)
  div_list : int array;  (* marked flop ids, first [div_count] entries *)
  mutable div_count : int;
  mutable devices_rev : device list;
  mutable devices_ord : device list option;
  mutable cyc : int;
}

let splat b = if b then -1 else 0

let create nl =
  let nw = Netlist.n_wires nl in
  let values = Array.make nw 0 in
  Array.iter
    (fun (f : Netlist.flop) -> values.(f.Netlist.q) <- splat f.Netlist.init)
    nl.Netlist.flops;
  let is_input = Array.make nw false in
  List.iter
    (fun (p : Netlist.port) -> Array.iter (fun w -> is_input.(w) <- true) p.Netlist.port_wires)
    nl.Netlist.inputs;
  (* The library has ~25 distinct cells; lower each (arity, table) once
     and share the expression across all its gate instances. *)
  let lowered = Hashtbl.create 32 in
  let lower (cell : Cell.t) =
    let key = (cell.Cell.arity, cell.Cell.table) in
    match Hashtbl.find_opt lowered key with
    | Some e -> e
    | None ->
      let e = Lower.of_cell cell in
      Hashtbl.add lowered key e;
      e
  in
  let packed =
    Array.map
      (fun gid ->
        let g = nl.Netlist.gates.(gid) in
        {
          g_output = g.Netlist.output;
          g_eval = Lower.compile (lower g.Netlist.cell) ~inputs:g.Netlist.inputs;
        })
      nl.Netlist.topo
  in
  let input_wires =
    List.concat_map
      (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
      nl.Netlist.inputs
    |> Array.of_list
  in
  let n_flops = Netlist.n_flops nl in
  {
    nl;
    values;
    is_input;
    input_wires;
    packed;
    latch_buf = Array.make n_flops 0;
    div_mark = Array.make n_flops false;
    div_list = Array.make n_flops 0;
    div_count = 0;
    devices_rev = [];
    devices_ord = None;
    cyc = 0;
  }

let netlist t = t.nl
let cycle t = t.cyc

let devices t =
  match t.devices_ord with
  | Some ds -> ds
  | None ->
    let ds = List.rev t.devices_rev in
    t.devices_ord <- Some ds;
    ds

let add_device t d =
  t.devices_rev <- d :: t.devices_rev;
  t.devices_ord <- None

let set_input t w v =
  if not t.is_input.(w) then
    invalid_arg
      (Printf.sprintf "Bitsim.set_input: %s is not a primary input" (Netlist.wire_name t.nl w));
  t.values.(w) <- v

let peek t w = t.values.(w)

let eval_combinational t =
  let values = t.values in
  let packed = t.packed in
  for i = 0 to Array.length packed - 1 do
    let g = Array.unsafe_get packed i in
    Array.unsafe_set values g.g_output (g.g_eval values)
  done

let max_device_rounds = 5

let eval t =
  eval_combinational t;
  if t.devices_rev <> [] then begin
    let changed = ref true in
    let rounds = ref 0 in
    let reader w = t.values.(w) in
    let writer w v =
      if not t.is_input.(w) then
        invalid_arg
          (Printf.sprintf "Bitsim device: %s is not a primary input" (Netlist.wire_name t.nl w));
      if t.values.(w) <> v then begin
        t.values.(w) <- v;
        changed := true
      end
    in
    while !changed do
      changed := false;
      List.iter (fun d -> d.dev_comb reader writer) (devices t);
      if !changed then begin
        incr rounds;
        if !rounds > max_device_rounds then
          failwith "Bitsim.eval: device inputs failed to stabilize";
        eval_combinational t
      end
    done
  end

let mark_flop t fid =
  if not t.div_mark.(fid) then begin
    t.div_mark.(fid) <- true;
    t.div_list.(t.div_count) <- fid;
    t.div_count <- t.div_count + 1
  end

(* Rebuild the divergence summary from the current Q words: the latch
   (and state-restore) loops already visit every flop, so exactness
   there costs one uniformity test per flop. *)
let rescan_divergence t =
  let flops = t.nl.Netlist.flops in
  let n = Array.length flops in
  for i = 0 to t.div_count - 1 do
    t.div_mark.(t.div_list.(i)) <- false
  done;
  t.div_count <- 0;
  for i = 0 to n - 1 do
    let v = t.values.(flops.(i).Netlist.q) in
    if v lxor - (v land 1) <> 0 then begin
      t.div_mark.(i) <- true;
      t.div_list.(t.div_count) <- i;
      t.div_count <- t.div_count + 1
    end
  done

let latch t =
  let reader w = t.values.(w) in
  List.iter (fun d -> d.dev_clock reader) (devices t);
  let flops = t.nl.Netlist.flops in
  let n = Array.length flops in
  let next = t.latch_buf in
  for i = 0 to n - 1 do
    next.(i) <- t.values.(flops.(i).Netlist.d)
  done;
  for i = 0 to t.div_count - 1 do
    t.div_mark.(t.div_list.(i)) <- false
  done;
  t.div_count <- 0;
  for i = 0 to n - 1 do
    let v = next.(i) in
    t.values.(flops.(i).Netlist.q) <- v;
    if v lxor - (v land 1) <> 0 then begin
      t.div_mark.(i) <- true;
      t.div_list.(t.div_count) <- i;
      t.div_count <- t.div_count + 1
    end
  done;
  t.cyc <- t.cyc + 1

let step t =
  eval t;
  latch t

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

let get_flop t fid = t.values.(t.nl.Netlist.flops.(fid).Netlist.q)

let set_flop t fid v =
  t.values.(t.nl.Netlist.flops.(fid).Netlist.q) <- v;
  if v lxor - (v land 1) <> 0 then mark_flop t fid

let check_lane lane =
  if lane < 0 || lane >= n_lanes then invalid_arg "Bitsim: lane out of range"

let get_flop_lane t fid ~lane =
  check_lane lane;
  (get_flop t fid lsr lane) land 1 <> 0

let flip_flop_lane t fid ~lane =
  check_lane lane;
  let q = t.nl.Netlist.flops.(fid).Netlist.q in
  t.values.(q) <- t.values.(q) lxor (1 lsl lane);
  mark_flop t fid

(* Only flop Q wires and primary inputs carry state across [eval]: every
   gate output is recomputed from them by the next [eval_combinational]
   before anything reads it. So a lane refill needs to copy lane 0's bit
   only into the (tracked) diverged Q words plus the handful of input
   wires — not all of the netlist's wires. *)
let reset_lane t ~lane =
  check_lane lane;
  let m = 1 lsl lane in
  let keep = lnot m in
  let values = t.values in
  let flops = t.nl.Netlist.flops in
  for i = 0 to t.div_count - 1 do
    let q = flops.(t.div_list.(i)).Netlist.q in
    let v = values.(q) in
    values.(q) <- v land keep lor ((v land 1) * m)
  done;
  let inputs = t.input_wires in
  for i = 0 to Array.length inputs - 1 do
    let w = inputs.(i) in
    let v = values.(w) in
    values.(w) <- v land keep lor ((v land 1) * m)
  done

let save_state t =
  let values = Array.copy t.values in
  let cyc = t.cyc in
  let device_restores = List.map (fun d -> d.dev_save ()) (devices t) in
  fun () ->
    Array.blit values 0 t.values 0 (Array.length values);
    t.cyc <- cyc;
    List.iter (fun restore -> restore ()) device_restores;
    rescan_divergence t
