(** Activity-gated delta simulation against a recorded golden trace.

    The third campaign kernel. A golden {!Sim} run recorded into a
    {!Trace} provides every wire's fault-free value; a faulty run is
    then represented only by its {e dirty set} — the sparse set of
    wires whose value differs from golden this cycle. Propagation is
    levelized and event-driven: flipping a flop schedules its fanout
    gates, and each cycle re-evaluates only gates with a dirty input,
    walking levels low to high (the [Netlist.level] array guarantees a
    gate's readers sit strictly above it, so one pass settles).

    Dirty-set invariant: after {!propagate}, [is_flipped t w] is true
    iff the faulty value of [w] differs from the golden trace at the
    current cycle — exactly, for every wire, not conservatively.

    Retirement soundness: when {!converged} holds (empty dirty set and
    every device diff empty) the faulty machine is bit-identical to the
    golden one; simulation is deterministic, so all later cycles are
    golden too and the experiment is Benign without simulating them. *)

module Netlist := Pruning_netlist.Netlist

type t

type device = {
  dd_name : string;
  dd_comb : unit -> unit;
      (** Fixed-point phase: read faulty port values (via {!faulty})
          and {!drive} faulty values onto output ports. Only called
          when the device's state diverges or a watched wire is
          flipped. *)
  dd_clock : unit -> unit;
      (** Clock edge: advance internal faulty state one cycle. Called
          every cycle (must be O(1) when clean — golden replay). *)
  dd_seek : int -> unit;
      (** Rewind internal state to golden at the start of a cycle. *)
  dd_clean : unit -> bool;
      (** True when internal state is identical to golden. *)
  dd_diffs : unit -> (int * int) list;
      (** [(address, faulty_value)] pairs where state diverges,
          sorted by address — the horizon Latent check. *)
  dd_watch : int array;
      (** Port wires, read {e and} write side: a flip on any of them
          forces [dd_comb] to run (a stale flip on a write port can
          only be cleared by the device re-driving it). *)
}

val create : Netlist.t -> Trace.t -> t
(** [create nl trace]: build a kernel over [nl] whose golden baseline
    is [trace] (one row per cycle, recorded post-[eval]). Raises
    [Invalid_argument] on width mismatch or an empty trace. *)

val netlist : t -> Netlist.t

val cycle : t -> int
(** Current cycle (the trace row {!propagate} compares against). *)

val total_cycles : t -> int
(** Cycles in the golden trace; valid cycles are [0, total_cycles). *)

val add_device : t -> device -> unit
(** Attach a delta device. Comb hooks run in attach order. *)

val attach : t -> cycle:int -> unit
(** Clear all delta state and position the kernel at the start of
    [cycle]: the faulty machine is bit-exact golden until the first
    {!flip_flop} or {!drive}. Reuses all internal buffers — the
    per-injection cost is proportional to the {e previous} fault's
    dirty set, not the netlist. *)

val flip_flop : t -> int -> unit
(** Flip one flop's Q for the current cycle — the SEU. *)

val propagate : t -> unit
(** Settle the current cycle: refresh surviving flips against this
    cycle's golden row and run gates + devices to a fixed point (the
    delta image of [Sim.eval]). Raises [Failure] if devices fail to
    stabilize within the same round budget as the scalar engine. *)

val latch : t -> unit
(** Clock edge: Q flips for the next cycle become exactly the D flips
    of this one; devices clock (golden replay when clean). Advances
    {!cycle}. *)

val golden : t -> Netlist.wire -> bool
(** Golden value of a wire at the current cycle. *)

val faulty : t -> Netlist.wire -> bool
(** Faulty value: golden XOR flip flag. Exact after {!propagate}. *)

val is_flipped : t -> Netlist.wire -> bool

val drive : t -> Netlist.wire -> bool -> unit
(** Assert the faulty value of a port wire (device comb hooks only). *)

val converged : t -> bool
(** Empty dirty set and every device clean: the lane is golden again
    and can retire Benign. *)

val output_diverged : t -> bool
(** Some primary output is flipped this cycle (check after
    {!propagate} — the SDC test). *)

val flops_diverged : t -> bool
(** Some flop Q is flipped (the horizon Latent test, with
    {!devices_clean}). *)

val devices_clean : t -> bool

val n_dirty : t -> int
(** Current dirty-set size (flipped wires). *)

val device_diffs : t -> (string * (int * int) list) list
(** Per-device divergence, for debugging and tests. *)
