module Netlist = Pruning_netlist.Netlist
module Cell = Pruning_cell.Cell
module Lower = Pruning_cell.Lower

(* Batched activity-gated delta kernel: many in-flight faulty runs, each
   a sparse XOR-delta against the same recorded golden trace.

   The composition of the two fast engines. From [Deltasim] it takes the
   dirty set and the levelized bucket sweep: only gates with a dirty
   input are re-evaluated, so per-cycle cost tracks the union of the
   fault cones' active frontiers, not the netlist. From [Bitsim] it
   takes lane packing: each wire carries one machine word whose bit [l]
   is set iff lane [l]'s faulty value differs from golden this cycle
   (there is no golden lane — the trace is the golden baseline — so all
   [Sys.int_size] lanes carry faults). A dirty gate is re-evaluated
   once per cycle through its Shannon-lowered formula over the packed
   faulty words, classifying every lane in one pass.

   Invariant (the dirty-set invariant, per lane): after every
   [propagate], bit [l] of [flip.(w)] is set iff lane [l]'s value of
   [w] differs from the golden trace row, and every wire with a nonzero
   flip word is in the dirty list. That makes every per-lane divergence
   question one word-OR scan of the dirty list ([flips_mask] and
   friends) with no per-lane bookkeeping on the [set_flip_word] hot
   path: when lane [l]'s bit is clear in every dirty wire and every
   device reports the lane clean, that lane's machine is bit-exact
   golden — determinism makes every later cycle golden too, so the lane
   retires Benign and [wipe_lane] frees it for the next fault without
   touching the other lanes. *)

let n_lanes = Sys.int_size

let splat b = if b then -1 else 0

type device = {
  db_name : string;
  db_comb : int -> unit;
      (* fixed-point phase: recompute the lanes in the given mask from
         their faulty ports and drive faulty values back *)
  db_clock : unit -> unit;  (* clock edge: advance all lanes one cycle *)
  db_seek : int -> unit;  (* rewind internal state to the start of a cycle *)
  db_dirty : unit -> int;  (* mask of lanes whose state differs from golden *)
  db_diffs : lane:int -> (int * int) list;  (* (address, faulty value), sorted *)
  db_reset : lane:int -> unit;  (* forget one lane's divergence *)
  db_watch : int array;  (* port wires (read and write) whose flip wakes the device *)
}

(* One gate flattened for the sweep: the cell's Shannon-lowered formula
   compiled over scratch pin slots, input wires, output wire, level. *)
type dgate = {
  dg_eval : int array -> int;
  dg_ins : int array;
  dg_out : int;
  dg_level : int;
}

type t = {
  nl : Netlist.t;
  trace : Trace.t;
  total : int;  (* trace cycles; faulty cycles run in [0, total) *)
  gates : dgate array;  (* indexed by gate id *)
  wire_readers : int array array;
  flop_readers : int array array;
  driver_gate : int array;  (* wire -> driving gate id, or -1 *)
  flop_q : int array;  (* flop id -> Q wire *)
  is_out : bool array;  (* wire is a primary output *)
  is_q : bool array;  (* wire is some flop's Q *)
  flip : int array;  (* per wire: bit l set iff lane l differs from golden *)
  in_list : bool array;  (* wire present in [dirty] *)
  dirty : int array;  (* wires with nonzero flip words (plus stale clears) *)
  mutable n_dirty : int;
  buckets : int array array;  (* scheduled gate ids, one bucket per level *)
  bucket_n : int array;
  scheduled : bool array;  (* per gate *)
  latch_flop : int array;  (* flops latching a flipped D this edge *)
  latch_word : int array;  (* the D flip word each of them latches *)
  mutable latch_n : int;
  scratch : int array;  (* packed faulty pin words for [dg_eval] *)
  mutable row : Bytes.t;  (* golden trace row of the current cycle *)
  mutable devices_rev : device list;
  mutable devices_ord : device list option;
  mutable drive_changed : bool;  (* a device changed a port flip this round *)
  mutable cyc : int;
}

let create nl trace =
  if Trace.n_wires trace <> Netlist.n_wires nl then
    invalid_arg "Deltabatch.create: trace width does not match netlist";
  if Trace.n_cycles trace = 0 then invalid_arg "Deltabatch.create: empty trace";
  let nw = Netlist.n_wires nl in
  let ng = Netlist.n_gates nl in
  let nf = Netlist.n_flops nl in
  (* The library has ~25 distinct cells; lower each (arity, table) once
     over identity pin slots and share the closure across instances. *)
  let lowered = Hashtbl.create 32 in
  let identity = Array.init (max Cell.max_arity 1) Fun.id in
  let compile (cell : Cell.t) =
    let key = (cell.Cell.arity, cell.Cell.table) in
    match Hashtbl.find_opt lowered key with
    | Some f -> f
    | None ->
      let f = Lower.compile (Lower.of_cell cell) ~inputs:identity in
      Hashtbl.add lowered key f;
      f
  in
  let gates =
    Array.map
      (fun (g : Netlist.gate) ->
        {
          dg_eval = compile g.Netlist.cell;
          dg_ins = g.Netlist.inputs;
          dg_out = g.Netlist.output;
          dg_level = nl.Netlist.level.(g.Netlist.gate_id);
        })
      nl.Netlist.gates
  in
  let max_level = Array.fold_left (fun acc g -> max acc g.dg_level) 0 gates in
  let per_level = Array.make (max_level + 1) 0 in
  Array.iter (fun g -> per_level.(g.dg_level) <- per_level.(g.dg_level) + 1) gates;
  let driver_gate =
    Array.map
      (function Netlist.Driver_gate g -> g | Netlist.Driver_input | Netlist.Driver_flop _ -> -1)
      nl.Netlist.driver
  in
  let is_q = Array.make nw false in
  let flop_q = Array.make nf 0 in
  Array.iter
    (fun (f : Netlist.flop) ->
      is_q.(f.Netlist.q) <- true;
      flop_q.(f.Netlist.flop_id) <- f.Netlist.q)
    nl.Netlist.flops;
  {
    nl;
    trace;
    total = Trace.n_cycles trace;
    gates;
    wire_readers = nl.Netlist.readers;
    flop_readers = nl.Netlist.flop_readers;
    driver_gate;
    flop_q;
    is_out = nl.Netlist.is_primary_output;
    is_q;
    flip = Array.make nw 0;
    in_list = Array.make nw false;
    dirty = Array.make nw 0;
    n_dirty = 0;
    buckets = Array.map (fun n -> Array.make (max n 1) 0) per_level;
    bucket_n = Array.make (max_level + 1) 0;
    scheduled = Array.make (max ng 1) false;
    latch_flop = Array.make (max nf 1) 0;
    latch_word = Array.make (max nf 1) 0;
    latch_n = 0;
    scratch = Array.make (max Cell.max_arity 1) 0;
    row = Trace.row_bytes trace ~cycle:0;
    devices_rev = [];
    devices_ord = None;
    drive_changed = false;
    cyc = 0;
  }

let netlist t = t.nl
let cycle t = t.cyc
let total_cycles t = t.total

let devices t =
  match t.devices_ord with
  | Some ds -> ds
  | None ->
    let ds = List.rev t.devices_rev in
    t.devices_ord <- Some ds;
    ds

let add_device t d =
  t.devices_rev <- d :: t.devices_rev;
  t.devices_ord <- None

let golden t w = Char.code (Bytes.unsafe_get t.row (w lsr 3)) land (1 lsl (w land 7)) <> 0
let flip_word t w = t.flip.(w)
let faulty_word t w = splat (golden t w) lxor t.flip.(w)
let faulty t w ~lane = (Array.unsafe_get t.flip w lsr lane) land 1 <> 0 <> golden t w

let schedule t gid =
  if not (Array.unsafe_get t.scheduled gid) then begin
    Array.unsafe_set t.scheduled gid true;
    let lvl = (Array.unsafe_get t.gates gid).dg_level in
    let n = Array.unsafe_get t.bucket_n lvl in
    (Array.unsafe_get t.buckets lvl).(n) <- gid;
    Array.unsafe_set t.bucket_n lvl (n + 1)
  end

(* Rewrite one wire's flip word, maintaining the dirty set and the
   schedule: readers re-evaluate on both edges (a lane going clean can
   clean the output's lane too). Deliberately no per-lane work here —
   this is the innermost write of the sweep; the per-lane divergence
   masks are recovered by scanning the dirty list on demand. *)
let set_flip_word t w nf =
  let old = Array.unsafe_get t.flip w in
  if old <> nf then begin
    Array.unsafe_set t.flip w nf;
    if nf <> 0 && not t.in_list.(w) then begin
      t.in_list.(w) <- true;
      t.dirty.(t.n_dirty) <- w;
      t.n_dirty <- t.n_dirty + 1
    end;
    let rs = t.wire_readers.(w) in
    for i = 0 to Array.length rs - 1 do
      schedule t (Array.unsafe_get rs i)
    done
  end

(* One word-parallel evaluation classifies every lane: lanes whose
   inputs are all clean see the golden pattern and produce the golden
   output, so their flip bit falls out zero for free. *)
let eval_gate t gid =
  let g = Array.unsafe_get t.gates gid in
  let ins = g.dg_ins in
  let scratch = t.scratch in
  for j = 0 to Array.length ins - 1 do
    let w = Array.unsafe_get ins j in
    Array.unsafe_set scratch j (splat (golden t w) lxor Array.unsafe_get t.flip w)
  done;
  let fout = g.dg_eval scratch in
  set_flip_word t g.dg_out (fout lxor splat (golden t g.dg_out))

(* Drain the schedule level by level. A gate's readers sit at strictly
   higher levels (Netlist invariant), so one pass settles all
   combinational fallout of the current flips. *)
let sweep t =
  let buckets = t.buckets in
  for lvl = 0 to Array.length buckets - 1 do
    let b = Array.unsafe_get buckets lvl in
    let n = Array.unsafe_get t.bucket_n lvl in
    Array.unsafe_set t.bucket_n lvl 0;
    for i = 0 to n - 1 do
      let gid = Array.unsafe_get b i in
      Array.unsafe_set t.scheduled gid false;
      eval_gate t gid
    done
  done

(* Lanes a device must recompute: those whose internal state diverges
   from golden plus those with a flip on any port wire (a stale flip on
   a write port can only be cleared by the device re-driving it). *)
let device_mask t d =
  let acc = ref (d.db_dirty ()) in
  let watch = d.db_watch in
  for i = 0 to Array.length watch - 1 do
    acc := !acc lor t.flip.(watch.(i))
  done;
  !acc

let max_device_rounds = 5

(* Called by device comb hooks: assert the faulty port word for the
   lanes in [mask], leaving the other lanes' flip bits untouched. *)
let drive_masked t w ~mask fword =
  let old = t.flip.(w) in
  let nf = (old land lnot mask) lor ((fword lxor splat (golden t w)) land mask) in
  if nf <> old then begin
    set_flip_word t w nf;
    t.drive_changed <- true
  end

(* Settle the current cycle: refresh stale flip words against this
   cycle's golden row, then run gates and devices to a fixed point —
   the delta image of [Bitsim.eval]. *)
let propagate t =
  t.row <- Trace.row_bytes t.trace ~cycle:t.cyc;
  (* Cycle start: every surviving flip word re-schedules its driver (so
     the word is recomputed against the new golden row) and its
     readers; wires that went fully clean leave the dirty set here. *)
  let j = ref 0 in
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    if t.flip.(w) <> 0 then begin
      t.dirty.(!j) <- w;
      incr j;
      let dg = t.driver_gate.(w) in
      if dg >= 0 then schedule t dg;
      let rs = t.wire_readers.(w) in
      for k = 0 to Array.length rs - 1 do
        schedule t rs.(k)
      done
    end
    else t.in_list.(w) <- false
  done;
  t.n_dirty <- !j;
  sweep t;
  if t.devices_rev <> [] then begin
    let running = ref true in
    let rounds = ref 0 in
    while !running do
      t.drive_changed <- false;
      List.iter
        (fun d ->
          let m = device_mask t d in
          if m <> 0 then d.db_comb m)
        (devices t);
      if t.drive_changed then begin
        incr rounds;
        if !rounds > max_device_rounds then
          failwith "Deltabatch.propagate: device inputs failed to stabilize";
        sweep t
      end
      else running := false
    done
  end

(* Clock edge. Golden latches D into Q, so each Q's flip word for the
   next cycle is exactly its D's flip word this cycle — no golden
   lookup crosses the row boundary. Devices clock unconditionally: a
   clean device's clock is O(1) golden replay. *)
let latch t =
  List.iter (fun d -> d.db_clock ()) (devices t);
  (* Phase A: snapshot the flops latching a flipped D before any word
     changes (a Q wire may itself be another flop's D). *)
  t.latch_n <- 0;
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    let fw = t.flip.(w) in
    if fw <> 0 then begin
      let frs = t.flop_readers.(w) in
      for k = 0 to Array.length frs - 1 do
        t.latch_flop.(t.latch_n) <- frs.(k);
        t.latch_word.(t.latch_n) <- fw;
        t.latch_n <- t.latch_n + 1
      done
    end
  done;
  (* Phase B: clear every flipped Q; Phase C: install the captured D
     words. Gate-output words go stale here by design — the next
     [propagate] refreshes them against the new golden row. *)
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    if t.flip.(w) <> 0 && t.is_q.(w) then set_flip_word t w 0
  done;
  for i = 0 to t.latch_n - 1 do
    let q = t.flop_q.(t.latch_flop.(i)) in
    set_flip_word t q t.latch_word.(i)
  done;
  t.cyc <- t.cyc + 1

(* Reset all delta state and position the kernel at the start of
   [cycle], ready for a fresh pass: every lane is bit-exact golden
   until the first [flip_flop_lane]/[drive_masked]. *)
let attach t ~cycle =
  if cycle < 0 || cycle >= t.total then invalid_arg "Deltabatch.attach: cycle out of range";
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    t.flip.(w) <- 0;
    t.in_list.(w) <- false
  done;
  t.n_dirty <- 0;
  for lvl = 0 to Array.length t.buckets - 1 do
    let b = t.buckets.(lvl) in
    for i = 0 to t.bucket_n.(lvl) - 1 do
      t.scheduled.(b.(i)) <- false
    done;
    t.bucket_n.(lvl) <- 0
  done;
  t.drive_changed <- false;
  t.cyc <- cycle;
  t.row <- Trace.row_bytes t.trace ~cycle;
  List.iter (fun d -> d.db_seek cycle) (devices t)

let check_lane lane =
  if lane < 0 || lane >= n_lanes then invalid_arg "Deltabatch: lane out of range"

let flip_flop_lane t fid ~lane =
  if fid < 0 || fid >= Netlist.n_flops t.nl then
    invalid_arg "Deltabatch.flip_flop_lane: bad flop id";
  check_lane lane;
  let q = t.flop_q.(fid) in
  set_flip_word t q (t.flip.(q) lxor (1 lsl lane))

(* Return one lane to bit-exact golden: clear its bit from every dirty
   wire and forget its device divergence. Safe at any retirement point
   (all of them sit between [propagate] and [latch], or after the final
   latch): the lane's state is then exactly the golden trace, so no
   re-evaluation is needed — unlike [Bitsim.reset_lane], nothing stale
   can leak back in through the latch. *)
let wipe_lane t ~lane =
  check_lane lane;
  let m = 1 lsl lane in
  for i = 0 to t.n_dirty - 1 do
    let w = t.dirty.(i) in
    let v = t.flip.(w) in
    if v land m <> 0 then set_flip_word t w (v land lnot m)
  done;
  List.iter (fun d -> d.db_reset ~lane) (devices t)

let devices_dirty_mask t = List.fold_left (fun acc d -> acc lor d.db_dirty ()) 0 (devices t)

(* The divergence masks are one word-OR scan of the dirty list (stale
   entries carry a zero flip word and contribute nothing). *)
let flips_mask t =
  let acc = ref 0 in
  for i = 0 to t.n_dirty - 1 do
    acc := !acc lor Array.unsafe_get t.flip (Array.unsafe_get t.dirty i)
  done;
  !acc

let masked_mask t sel =
  let acc = ref 0 in
  for i = 0 to t.n_dirty - 1 do
    let w = Array.unsafe_get t.dirty i in
    if Array.unsafe_get sel w then acc := !acc lor Array.unsafe_get t.flip w
  done;
  !acc

let out_mask t = masked_mask t t.is_out
let q_mask t = masked_mask t t.is_q
let live_mask t = flips_mask t lor devices_dirty_mask t

let device_diffs t ~lane =
  check_lane lane;
  List.map (fun d -> (d.db_name, d.db_diffs ~lane)) (devices t)
