(** Cycle-accurate netlist simulator.

    Two-phase semantics per clock cycle: {!eval} stabilizes the
    combinational logic (including attached {!device}s, to a fixed point),
    then {!latch} clocks every flip-flop with the value on its D wire and
    lets devices perform their clocked side effects (e.g. RAM writes).

    Devices model the circuit's environment — instruction ROM, data RAM,
    output monitors. A device's combinational callback may read any wire
    and drive primary-input wires; the simulator iterates until the inputs
    stop changing (diverging devices raise [Failure] after a few rounds).

    The simulator doubles as the hardware-assisted fault-injection (HAFI)
    platform stand-in: {!set_flop} flips state bits mid-run, and
    {!save_state}/restore snapshots support the one-cycle masking oracle. *)

type t

type reader = Pruning_netlist.Netlist.wire -> bool
type writer = Pruning_netlist.Netlist.wire -> bool -> unit

type device = {
  dev_name : string;
  dev_comb : reader -> writer -> unit;
      (** Combinational response: read outputs, drive primary inputs. *)
  dev_clock : reader -> unit;
      (** Clocked side effect, runs at the latch edge with pre-latch wire
          values. *)
  dev_save : unit -> unit -> unit;
      (** [dev_save ()] captures internal state and returns a restorer. *)
}

val pure_device : string -> (reader -> writer -> unit) -> device
(** A stateless combinational device. *)

val create : Pruning_netlist.Netlist.t -> t
(** Fresh simulator; flip-flops start at their [init] values, primary
    inputs at 0. *)

val netlist : t -> Pruning_netlist.Netlist.t
val cycle : t -> int

val add_device : t -> device -> unit

val set_input : t -> Pruning_netlist.Netlist.wire -> bool -> unit
(** Drive a primary-input wire. Raises [Invalid_argument] for wires not
    driven by a primary input. *)

val peek : t -> Pruning_netlist.Netlist.wire -> bool
(** Value of any wire as of the last {!eval}. *)

val set_port : t -> string -> int -> unit
(** Drive a whole input port with an integer (LSB-first). *)

val get_port : t -> string -> int
(** Read a whole output (or input) port as an integer. *)

val eval : t -> unit
(** Stabilize combinational logic and devices for the current cycle. *)

val latch : t -> unit
(** Clock edge: run device clocked hooks, update every flip-flop from its
    D wire, advance the cycle counter. Call after {!eval}. *)

val step : t -> ?trace:Trace.t -> unit -> unit
(** [eval]; optionally record all wire values into [trace]; [latch]. *)

val run : t -> ?trace:Trace.t -> cycles:int -> unit -> unit

val get_flop : t -> int -> bool
(** Current Q value of a flop (by [flop_id]). *)

val set_flop : t -> int -> bool -> unit
(** Overwrite a flop's Q value — the SEU injection primitive. Takes effect
    on the next {!eval}. *)

val save_state : t -> unit -> unit
(** Capture flop values, input values, cycle count and device states
    (every attached device's [dev_save], which for memory devices covers
    their RAM backing); returns a restorer closure. Snapshots are the
    basis of the masking oracle and of campaign checkpointing. *)
