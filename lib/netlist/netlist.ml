module Cell = Pruning_cell.Cell

type wire = int

type gate = {
  gate_id : int;
  cell : Cell.t;
  inputs : wire array;
  output : wire;
}

type flop = {
  flop_id : int;
  flop_name : string;
  d : wire;
  q : wire;
  init : bool;
}

type driver =
  | Driver_input
  | Driver_gate of int
  | Driver_flop of int

type port = {
  port_name : string;
  port_wires : wire array;
}

type t = {
  name : string;
  wire_names : string array;
  wire_index : (string, wire) Hashtbl.t;
  gates : gate array;
  flops : flop array;
  inputs : port list;
  outputs : port list;
  driver : driver array;
  readers : int array array;
  flop_readers : int array array;
  is_primary_output : bool array;
  topo : int array;
  level : int array;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let n_wires t = Array.length t.wire_names
let n_gates t = Array.length t.gates
let n_flops t = Array.length t.flops

let wire_name t w = t.wire_names.(w)

let find_wire t name =
  match Hashtbl.find_opt t.wire_index name with
  | Some w -> w
  | None -> raise Not_found

let find_flop t name =
  match Array.find_opt (fun f -> String.equal f.flop_name name) t.flops with
  | Some f -> f
  | None -> raise Not_found

let find_port ports name =
  match List.find_opt (fun p -> String.equal p.port_name name) ports with
  | Some p -> p
  | None -> raise Not_found

let find_input_port t name = find_port t.inputs name
let find_output_port t name = find_port t.outputs name

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let flops_matching t ~prefix =
  Array.to_list t.flops |> List.filter (fun f -> has_prefix ~prefix f.flop_name)

let flops_excluding t ~prefix =
  Array.to_list t.flops
  |> List.filter (fun f -> not (has_prefix ~prefix f.flop_name))

let cell_histogram t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let k = g.cell.Cell.kind in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    t.gates;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

module Builder = struct
  type builder = {
    bname : string;
    mutable bwires : string list; (* reversed *)
    mutable bn_wires : int;
    mutable bgates : (Cell.t * wire array * wire) list; (* reversed *)
    mutable bn_gates : int;
    mutable bflops : (string * wire * wire * bool) list; (* reversed *)
    mutable binputs : port list; (* reversed *)
    mutable boutputs : port list; (* reversed *)
  }

  type t = builder

  let create name =
    {
      bname = name;
      bwires = [];
      bn_wires = 0;
      bgates = [];
      bn_gates = 0;
      bflops = [];
      binputs = [];
      boutputs = [];
    }

  let add_wire b name =
    let w = b.bn_wires in
    b.bwires <- name :: b.bwires;
    b.bn_wires <- w + 1;
    w

  let add_gate b cell inputs output =
    b.bgates <- (cell, inputs, output) :: b.bgates;
    b.bn_gates <- b.bn_gates + 1

  let add_flop b ?(init = false) name ~d ~q =
    b.bflops <- (name, d, q, init) :: b.bflops

  let add_input_port b name wires =
    b.binputs <- { port_name = name; port_wires = wires } :: b.binputs

  let add_output_port b name wires =
    b.boutputs <- { port_name = name; port_wires = wires } :: b.boutputs

  let check_wire b what w =
    if w < 0 || w >= b.bn_wires then invalid "%s references unknown wire %d" what w

  let finalize b =
    let wire_names = Array.of_list (List.rev b.bwires) in
    let nw = Array.length wire_names in
    let gates =
      List.rev b.bgates
      |> List.mapi (fun gate_id (cell, inputs, output) -> { gate_id; cell; inputs; output })
      |> Array.of_list
    in
    let flops =
      List.rev b.bflops
      |> List.mapi (fun flop_id (flop_name, d, q, init) -> { flop_id; flop_name; d; q; init })
      |> Array.of_list
    in
    let inputs = List.rev b.binputs in
    let outputs = List.rev b.boutputs in
    (* Arity and range checks. *)
    Array.iter
      (fun (g : gate) ->
        if Array.length g.inputs <> g.cell.Cell.arity then
          invalid "gate %d (%s): %d connections for arity %d" g.gate_id
            g.cell.Cell.name (Array.length g.inputs) g.cell.Cell.arity;
        check_wire b (Printf.sprintf "gate %d" g.gate_id) g.output;
        Array.iter (check_wire b (Printf.sprintf "gate %d" g.gate_id)) g.inputs)
      gates;
    Array.iter
      (fun f ->
        check_wire b ("flop " ^ f.flop_name) f.d;
        check_wire b ("flop " ^ f.flop_name) f.q)
      flops;
    List.iter
      (fun p -> Array.iter (check_wire b ("port " ^ p.port_name)) p.port_wires)
      (inputs @ outputs);
    (* Single-driver discipline. *)
    let driver = Array.make nw None in
    let set_driver w d =
      match driver.(w) with
      | None -> driver.(w) <- Some d
      | Some _ -> invalid "wire %s has multiple drivers" wire_names.(w)
    in
    Array.iter (fun (g : gate) -> set_driver g.output (Driver_gate g.gate_id)) gates;
    Array.iter (fun f -> set_driver f.q (Driver_flop f.flop_id)) flops;
    List.iter
      (fun p -> Array.iter (fun w -> set_driver w Driver_input) p.port_wires)
      inputs;
    let driver =
      Array.mapi
        (fun w d ->
          match d with
          | Some d -> d
          | None -> invalid "wire %s has no driver" wire_names.(w))
        driver
    in
    (* Reader maps. *)
    let readers = Array.make nw [] in
    Array.iter
      (fun (g : gate) -> Array.iter (fun w -> readers.(w) <- g.gate_id :: readers.(w)) g.inputs)
      gates;
    let flop_readers = Array.make nw [] in
    Array.iter (fun f -> flop_readers.(f.d) <- f.flop_id :: flop_readers.(f.d)) flops;
    let readers = Array.map (fun l -> Array.of_list (List.rev l)) readers in
    let flop_readers = Array.map (fun l -> Array.of_list (List.rev l)) flop_readers in
    let is_primary_output = Array.make nw false in
    List.iter
      (fun p -> Array.iter (fun w -> is_primary_output.(w) <- true) p.port_wires)
      outputs;
    (* Kahn topological sort of gates; sources are wires driven by inputs
       or flop Q pins. *)
    let ng = Array.length gates in
    let pending = Array.make ng 0 in
    Array.iter
      (fun g ->
        Array.iter
          (fun w ->
            match driver.(w) with
            | Driver_gate _ -> pending.(g.gate_id) <- pending.(g.gate_id) + 1
            | Driver_input | Driver_flop _ -> ())
          g.inputs)
      gates;
    let queue = Queue.create () in
    Array.iter (fun g -> if pending.(g.gate_id) = 0 then Queue.add g.gate_id queue) gates;
    let topo = Array.make ng 0 in
    let level = Array.make ng 0 in
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let gid = Queue.pop queue in
      topo.(!count) <- gid;
      incr count;
      Array.iter
        (fun reader ->
          pending.(reader) <- pending.(reader) - 1;
          level.(reader) <- max level.(reader) (level.(gid) + 1);
          if pending.(reader) = 0 then Queue.add reader queue)
        readers.(gates.(gid).output)
    done;
    if !count <> ng then invalid "combinational cycle through %d gate(s)" (ng - !count);
    (* Name -> wire lookup table. Duplicate names keep the first (lowest)
       wire, preserving the linear-scan semantics this replaces. *)
    let wire_index = Hashtbl.create (2 * nw) in
    Array.iteri
      (fun w name -> if not (Hashtbl.mem wire_index name) then Hashtbl.add wire_index name w)
      wire_names;
    {
      name = b.bname;
      wire_names;
      wire_index;
      gates;
      flops;
      inputs;
      outputs;
      driver;
      readers;
      flop_readers;
      is_primary_output;
      topo;
      level;
    }
end
