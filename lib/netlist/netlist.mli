(** Flat gate-level netlist of a synchronous circuit.

    A netlist is a set of wires, each driven by exactly one of: a primary
    input, the output of a combinational gate (a {!Pruning_cell.Cell.t}
    instance), or the Q pin of a D flip-flop. Flip-flops are the state
    elements of the fault model: an SEU flips one flip-flop in one cycle.

    Netlists are immutable once built; construct them through {!Builder},
    whose [finalize] validates single-driver discipline, pin arities and
    combinational acyclicity, and precomputes the topological gate order
    used by the simulator and the fault-cone analysis. *)

type wire = int
(** Wire index, dense in [0, n_wires). *)

type gate = {
  gate_id : int;
  cell : Pruning_cell.Cell.t;
  inputs : wire array;
  output : wire;
}

type flop = {
  flop_id : int;
  flop_name : string;
  d : wire;
  q : wire;
  init : bool;  (** reset value *)
}

type driver =
  | Driver_input  (** primary input *)
  | Driver_gate of int  (** gate id *)
  | Driver_flop of int  (** flop id, via its Q pin *)

type port = {
  port_name : string;
  port_wires : wire array;  (** LSB first *)
}

type t = private {
  name : string;
  wire_names : string array;
  wire_index : (string, wire) Hashtbl.t;
      (** name -> wire, first occurrence wins (built at [finalize];
          {!find_wire} is O(1)) *)
  gates : gate array;
  flops : flop array;
  inputs : port list;  (** primary input ports *)
  outputs : port list;  (** primary output ports *)
  driver : driver array;  (** indexed by wire *)
  readers : int array array;  (** gate ids reading each wire *)
  flop_readers : int array array;  (** flop ids whose D is each wire *)
  is_primary_output : bool array;
  topo : int array;  (** gate ids in topological evaluation order *)
  level : int array;  (** logic level of each gate (inputs/flops at 0) *)
}

val n_wires : t -> int
val n_gates : t -> int
val n_flops : t -> int

val wire_name : t -> wire -> string

val find_wire : t -> string -> wire
(** Raises [Not_found] for unknown names. *)

val find_flop : t -> string -> flop
(** Find a flop by name. Raises [Not_found]. *)

val find_input_port : t -> string -> port
val find_output_port : t -> string -> port
(** Raise [Not_found] for unknown ports. *)

val flops_matching : t -> prefix:string -> flop list
(** All flops whose name starts with [prefix] (e.g. the register file). *)

val flops_excluding : t -> prefix:string -> flop list
(** All flops whose name does {e not} start with [prefix]. *)

val cell_histogram : t -> (Pruning_cell.Cell.kind * int) list
(** Gate count per cell kind, descending. *)

exception Invalid of string
(** Raised by {!Builder.finalize} on malformed netlists, with a message
    naming the offending wire or gate. *)

module Builder : sig
  type netlist := t

  type t

  val create : string -> t
  (** [create name] starts an empty netlist named [name]. *)

  val add_wire : t -> string -> wire
  (** Create a fresh wire. Names need not be unique but should be; lookup
      returns the first match. *)

  val add_gate : t -> Pruning_cell.Cell.t -> wire array -> wire -> unit
  (** [add_gate b cell inputs output]: instantiate [cell]. Arity is checked
      at [finalize]. *)

  val add_flop : t -> ?init:bool -> string -> d:wire -> q:wire -> unit
  (** Add a D flip-flop whose Q drives [q]. [init] defaults to [false]. *)

  val add_input_port : t -> string -> wire array -> unit
  val add_output_port : t -> string -> wire array -> unit

  val finalize : t -> netlist
  (** Validate and freeze. Raises {!Invalid} when a wire has zero or
      multiple drivers, a gate arity mismatches its cell, a port wire is
      out of range, or the combinational logic is cyclic. *)
end
