(** Lowering of cell truth tables to bitwise formulas.

    Every combinational cell is a truth table over at most
    {!Cell.max_arity} pins. [of_table] turns that table — once, at
    simulator-build time — into a straight-line formula over [land] /
    [lor] / [lxor] / [lnot] by recursive Shannon expansion, so a single
    evaluation over packed machine words computes the cell's output for
    [Sys.int_size] independent simulation lanes at once (classic
    parallel-pattern / parallel-fault simulation). *)

type expr =
  | Zero
  | One
  | Var of int  (** input pin index *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

val of_table : arity:int -> table:int -> expr
(** Shannon-lower a truth table (bit [p] of [table] = output for input
    pattern [p], pin [j] = bit [j] of [p]). Equal cofactors collapse, and
    complementary cofactors lower to [Xor], so e.g. XOR3 becomes two
    [lxor]s rather than a mux tree. Raises [Invalid_argument] if [arity]
    is negative or exceeds {!Cell.max_arity}. *)

val of_cell : Cell.t -> expr

val eval : expr -> int array -> int
(** [eval e ins] evaluates the formula bitwise; [ins.(j)] is the packed
    word of pin [j]. Lane [l] of the result is the cell output for lane
    [l] of the inputs. *)

val compile : expr -> inputs:int array -> int array -> int
(** [compile e ~inputs] specializes [e] into a closure mapping a wire
    value array to the packed output word, with [Var j] resolved to
    [values.(inputs.(j))]. The returned closure performs no allocation. *)

val op_count : expr -> int
(** Number of bitwise operators in the formula (cost metric). *)

val to_string : expr -> string
