(* Shannon lowering of cell truth tables to straight-line bitwise
   formulas, the kernel of the lane-parallel (PPSFP) simulator: one
   evaluation of the lowered formula over machine words advances
   [Sys.int_size] independent simulation lanes at once. *)

type expr =
  | Zero
  | One
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

(* Recursive Shannon expansion on the highest pin: split the table into
   the pin=0 and pin=1 cofactors and rebuild f = (~x & f0) | (x & f1),
   simplifying the constant and equal-cofactor cases. The XOR case
   (f1 = ~f0) is detected on the cofactor tables so XOR2/XOR3/XNOR2
   lower to single lxor chains instead of mux trees. *)
let rec of_table ~arity ~table =
  if arity < 0 || arity > Cell.max_arity then invalid_arg "Lower.of_table: arity";
  if arity = 0 then if table land 1 <> 0 then One else Zero
  else begin
    let half = 1 lsl (arity - 1) in
    let mask = (1 lsl half) - 1 in
    let t0 = table land mask and t1 = (table lsr half) land mask in
    if t0 = t1 then of_table ~arity:(arity - 1) ~table:t0
    else
      let x = Var (arity - 1) in
      if t1 = lnot t0 land mask then
        match of_table ~arity:(arity - 1) ~table:t0 with
        | Zero -> x
        | One -> Not x
        | f0 -> Xor (x, f0)
      else
        let f0 = of_table ~arity:(arity - 1) ~table:t0 in
        let f1 = of_table ~arity:(arity - 1) ~table:t1 in
        match (f0, f1) with
        | Zero, f1 -> And (x, f1)
        | One, f1 -> Or (Not x, f1)
        | f0, Zero -> And (Not x, f0)
        | f0, One -> Or (x, f0)
        | f0, f1 -> Or (And (Not x, f0), And (x, f1))
  end

let of_cell (c : Cell.t) = of_table ~arity:c.Cell.arity ~table:c.Cell.table

let rec eval e (ins : int array) =
  match e with
  | Zero -> 0
  | One -> -1
  | Var j -> ins.(j)
  | Not a -> lnot (eval a ins)
  | And (a, b) -> eval a ins land eval b ins
  | Or (a, b) -> eval a ins lor eval b ins
  | Xor (a, b) -> eval a ins lxor eval b ins

let rec op_count = function
  | Zero | One | Var _ -> 0
  | Not a -> 1 + op_count a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + op_count a + op_count b

(* Compile to a closure with the variable -> wire indirection resolved at
   build time: the hot per-gate evaluation performs only array loads and
   bitwise ops, no pattern matches. *)
let rec compile e ~(inputs : int array) : int array -> int =
  match e with
  | Zero -> fun _ -> 0
  | One -> fun _ -> -1
  | Var j ->
    let w = inputs.(j) in
    fun values -> Array.unsafe_get values w
  | Not a ->
    let fa = compile a ~inputs in
    fun values -> lnot (fa values)
  | And (a, b) ->
    let fa = compile a ~inputs and fb = compile b ~inputs in
    fun values -> fa values land fb values
  | Or (a, b) ->
    let fa = compile a ~inputs and fb = compile b ~inputs in
    fun values -> fa values lor fb values
  | Xor (a, b) ->
    let fa = compile a ~inputs and fb = compile b ~inputs in
    fun values -> fa values lxor fb values

let rec to_string = function
  | Zero -> "0"
  | One -> "1"
  | Var j -> Printf.sprintf "x%d" j
  | Not a -> Printf.sprintf "~%s" (to_string a)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (to_string a) (to_string b)
