(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
    guarding every record of the campaign verdict journal. Pure OCaml,
    table-driven; values are in \[0, 2^32). *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s]; [?crc] continues a running digest
    (pass a previous result to checksum a concatenation
    incrementally). *)

val bytes : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [b] starting at [pos]. *)
