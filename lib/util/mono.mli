(** Monotonic clock for deadlines, leases and timeouts.

    {!now} is [CLOCK_MONOTONIC]: seconds since an arbitrary fixed origin,
    strictly unaffected by NTP steps, [settimeofday] or leap-second
    smearing. Use it for every duration comparison ([deadline = now ()
    +. timeout]); never mix its values with [Unix.gettimeofday] — the
    origins differ. On (exotic) platforms without [clock_gettime] it
    degrades to [gettimeofday]. *)

val now : unit -> float
(** Seconds since an arbitrary origin, monotonically non-decreasing. *)
