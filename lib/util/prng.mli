(** Deterministic splitmix64 pseudo-random number generator.

    Used wherever the library needs reproducible randomness (random netlist
    generation in tests, fault sampling in campaigns) so that experiments are
    repeatable without threading OCaml's global [Random] state around. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from a seed. Equal seeds yield equal
    streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in \[0, bound) by rejection
    sampling (exactly uniform — no modulo bias). [bound] must be
    positive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform float in \[0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for parallel deterministic streams). *)

val save : t -> string
(** Serialize the exact generator state (a short printable token). The
    source generator is not advanced. *)

val restore : string -> t
(** Rebuild a generator from {!save}'s output; the restored generator
    replays the identical stream the saved one would have produced.
    Raises [Invalid_argument] on a malformed token. *)
