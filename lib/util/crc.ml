let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let bytes ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Crc.bytes";
  let table = Lazy.force table in
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask32

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
