(** Capped exponential backoff with deterministic jitter.

    The delay for attempt [k] is drawn uniformly from the upper half of
    [\[0, min cap (base * factor^k)\]] ("equal jitter"): retries spread
    out instead of stampeding in lockstep, but never collapse to a
    near-zero sleep. The jitter comes from an explicit {!Prng}, so a run
    that hits the same failures sleeps the same amounts — campaign
    reproducibility extends to the retry schedule.

    Used by the {!Pruning_fi.Durable} supervisor between fresh-system
    retries and by {!Pruning_fi.Worker} between coordinator
    reconnects. *)

type policy = {
  base : float;  (** first delay ceiling, in seconds *)
  cap : float;  (** delay ceiling every later attempt saturates at *)
  factor : float;  (** ceiling growth per attempt *)
}

val default_policy : policy
(** [{ base = 0.05; cap = 5.0; factor = 2.0 }] — a network client's
    reconnect schedule. *)

val retry_policy : policy
(** [{ base = 0.002; cap = 0.05; factor = 4.0 }] — in-process retry
    pacing (the {!Pruning_fi.Durable} supervisor), fast enough to be
    invisible in tests. *)

type t

val create : ?policy:policy -> Prng.t -> t
(** Fresh backoff state at attempt 0. Raises [Invalid_argument] unless
    [0 < base <= cap] and [factor >= 1]. The generator is advanced one
    draw per {!next}. *)

val next : t -> float
(** The delay (seconds) to sleep before the next attempt; advances the
    attempt counter. *)

val attempts : t -> int
(** Attempts consumed so far (the number of {!next} calls since the last
    {!reset}). *)

val reset : t -> unit
(** Back to attempt 0 — call after a success so the next failure starts
    from [base] again. *)
