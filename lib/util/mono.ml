external now : unit -> float = "pruning_mono_now"
