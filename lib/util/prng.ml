type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Draws are 62 uniform bits; values falling into the final partial bucket
   of [bound] are rejected so every residue is equally likely (no modulo
   bias). Rejection probability is < bound / 2^62 per draw. *)
let max_raw = 0x3FFFFFFFFFFFFFFF (* 2^62 - 1 *)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = raw mod bound in
    if raw - v > max_raw - bound + 1 then draw () else v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992. (* 2^53 *)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = mix (next_int64 t) }

(* The whole generator state is the single splitmix counter; the
   serialization is its unsigned hex rendering, prefixed so malformed or
   truncated journal fields fail loudly in [restore]. *)
let save t = Printf.sprintf "splitmix64:%016Lx" t.state

let restore s =
  let prefix = "splitmix64:" in
  let plen = String.length prefix in
  if String.length s <> plen + 16 || not (String.sub s 0 plen = prefix) then
    invalid_arg "Prng.restore: malformed state";
  match Int64.of_string_opt ("0x" ^ String.sub s plen 16) with
  | Some state -> { state }
  | None -> invalid_arg "Prng.restore: malformed state"
