type policy = {
  base : float;
  cap : float;
  factor : float;
}

let default_policy = { base = 0.05; cap = 5.0; factor = 2.0 }
let retry_policy = { base = 0.002; cap = 0.05; factor = 4.0 }

type t = {
  policy : policy;
  rng : Prng.t;
  mutable attempt : int;
}

let create ?(policy = default_policy) rng =
  if not (policy.base > 0. && policy.cap >= policy.base && policy.factor >= 1.) then
    invalid_arg "Backoff.create: need 0 < base <= cap and factor >= 1";
  { policy; rng; attempt = 0 }

let next t =
  (* factor^attempt overflows to infinity for large attempt counts; the
     [min] then simply holds the ceiling at [cap]. *)
  let ceiling = min t.policy.cap (t.policy.base *. (t.policy.factor ** float_of_int t.attempt)) in
  t.attempt <- t.attempt + 1;
  (ceiling /. 2.) +. (Prng.float t.rng *. ceiling /. 2.)

let attempts t = t.attempt
let reset t = t.attempt <- 0
