/* Monotonic wall-clock for lease/deadline arithmetic.

   OCaml 5.1's Unix module exposes only gettimeofday, which an NTP step
   can move by minutes in either direction; CLOCK_MONOTONIC cannot.
   Falls back to gettimeofday only where clock_gettime is unavailable. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value pruning_mono_now(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
