(* Self-chaos: the deterministic infrastructure fault plan and the
   hardening it forces. Plan byte-identity and budget properties
   (QCheck), poisoned-chunk quarantine with resume, misbehaving-client
   blacklisting, cross-validation (clean pass and mismatch detection),
   the worker's receive deadline, journal disk-failure surfacing, and
   the headline invariant: a campaign under a full chaos plan either
   completes with stats bit-identical to the chaos-free reference or
   fails resumably and reaches them via --resume. *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Chaos = Pruning_fi.Chaos
module Coordinator = Pruning_fi.Coordinator
module Durable = Pruning_fi.Durable
module Fault_space = Pruning_fi.Fault_space
module Journal = Pruning_fi.Journal
module Proto = Pruning_fi.Proto
module Worker = Pruning_fi.Worker
module System = Pruning_cpu.System
module Backoff = Pruning_util.Backoff

let all_sites =
  [
    Chaos.Send;
    Chaos.Recv;
    Chaos.Journal_write;
    Chaos.Journal_fsync;
    Chaos.Journal_rename;
    Chaos.Exec;
    Chaos.Dispatch;
    Chaos.Drain;
    Chaos.Seal;
    Chaos.Disk;
    Chaos.Verdict;
  ]

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- the plan itself -------------------------------------------------- *)

(* The headline determinism property: materializing the same seed twice
   yields byte-identical plans at every site. *)
let prop_plan_byte_identity =
  QCheck2.Test.make ~name:"chaos: same seed, byte-identical plan" ~count:200 QCheck2.Gen.int
    (fun seed ->
      List.for_all
        (fun site ->
          Chaos.plan_to_string (Chaos.plan ~seed site ~n:96)
          = Chaos.plan_to_string (Chaos.plan ~seed site ~n:96))
        all_sites)

(* Budget accounting: a plan never injects more than its budget, and the
   live counters agree with the materialized plan. *)
let prop_plan_budget =
  QCheck2.Test.make ~name:"chaos: budget bounds injections" ~count:200
    QCheck2.Gen.(pair int (int_range 0 16))
    (fun (seed, budget) ->
      let profile = { Chaos.default_profile with Chaos.budget } in
      let faults =
        Array.fold_left
          (fun acc a -> if a = Chaos.Pass then acc else acc + 1)
          0
          (Chaos.plan ~profile ~seed Chaos.Send ~n:512)
      in
      faults <= budget)

let test_plan_distinct_seeds () =
  (* Not a certainty for an arbitrary pair of seeds, but for this fixed
     pair (checked once, deterministic) the plans must differ. *)
  let fingerprint seed =
    String.concat "|"
      (List.map (fun s -> Chaos.plan_to_string (Chaos.plan ~seed s ~n:512)) all_sites)
  in
  check_bool "seeds 1 and 2 give different plans" false (fingerprint 1 = fingerprint 2)

(* Per-site streams are independent: the sequence one site observes does
   not depend on how many draws other sites made in between. *)
let test_site_stream_independence () =
  let profile = { Chaos.default_profile with Chaos.budget = max_int } in
  let seed = 7 in
  let reference = Chaos.plan ~profile ~seed Chaos.Send ~n:64 in
  let t = Chaos.create ~profile ~seed () in
  let interleaved =
    Array.init 64 (fun _ ->
        ignore (Chaos.draw t Chaos.Recv);
        ignore (Chaos.draw t Chaos.Exec);
        let a = Chaos.draw t Chaos.Send in
        ignore (Chaos.draw t Chaos.Journal_write);
        a)
  in
  check_string "send stream unaffected by other sites"
    (Chaos.plan_to_string reference)
    (Chaos.plan_to_string interleaved)

let test_exhaustion_and_quiet () =
  let profile = { Chaos.quiet_profile with Chaos.net_reset = 1.; budget = 5 } in
  let t = Chaos.create ~profile ~seed:3 () in
  for i = 1 to 5 do
    check_bool (Printf.sprintf "fault %d injected" i) true (Chaos.draw t Chaos.Send = Chaos.Reset)
  done;
  check_bool "budget spent" true (Chaos.exhausted t);
  check_int "injected counter" 5 (Chaos.injected t);
  for _ = 1 to 100 do
    check_bool "quiet after exhaustion" true (Chaos.draw t Chaos.Send = Chaos.Pass)
  done;
  (* The all-zero profile is a plan that never fires at all. *)
  Array.iter
    (fun a -> check_bool "quiet profile is a no-op" true (a = Chaos.Pass))
    (Chaos.plan ~profile:Chaos.quiet_profile ~seed:3 Chaos.Send ~n:64)

(* --- shared toy-campaign scaffolding (mirrors test_dist) -------------- *)

let toy_cycles = 8
let toy_n = 60
let toy_seed = 21

let toy_parts () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (space, campaign)

let toy_engine ?skip () =
  let space, campaign = toy_parts () in
  { Worker.campaign; space; skip; kernel = Campaign.Scalar }

let toy_reference () =
  let space, campaign = toy_parts () in
  Campaign.run_sample campaign ~space ~rng:(Prng.create toy_seed) ~n:toy_n ()

let make_header () =
  {
    Journal.core = "toy";
    program = "toy";
    cycles = toy_cycles;
    seed = toy_seed;
    samples = toy_n;
    prune = false;
    audit = 0.;
    shards = 0;
    batched = false;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create toy_seed);
    shard_prng = [||];
  }

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-chaos-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  d

let test_config =
  {
    Coordinator.default_config with
    Coordinator.chunk_size = 4;
    lease = 5.;
    tick = 0.01;
    drain = 10.;
  }

let event_log () =
  let lock = Mutex.create () in
  let events = ref [] in
  let push e =
    Mutex.lock lock;
    events := e :: !events;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let es = List.rev !events in
    Mutex.unlock lock;
    es
  in
  (push, all)

let wait_for ?(timeout = 20.) pred what =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.01
  done;
  if not (pred ()) then Alcotest.fail ("timed out waiting for " ^ what)

let serve_bg coord ~header ?journal ?resume ?chaos ?on_event () =
  let result = ref None in
  let thread =
    Thread.create
      (fun () ->
        result :=
          Some
            (match Coordinator.serve coord ~header ?journal ?resume ?chaos ?on_event () with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  let join () =
    Thread.join thread;
    match !result with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false
  in
  join

let work_bg ~port ~name ?reconnect_backoff ?max_reconnects ?recv_timeout ?chaos () =
  let report = ref None in
  let thread =
    Thread.create
      (fun () ->
        report :=
          Some
            (match
               Worker.run ~host:"127.0.0.1" ~port
                 ~resolve:(fun _ -> toy_engine ())
                 ~name ?reconnect_backoff ?max_reconnects ?recv_timeout ?chaos ()
             with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  let join () =
    Thread.join thread;
    match !report with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false
  in
  join

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* --- quarantine ------------------------------------------------------- *)

(* A poisoned chunk: enough distinct workers die holding a chunk's lease
   and the coordinator quarantines it — journaled, reported, excluded
   from the stats — instead of re-dispatching it to (and killing) every
   future worker. A later resume retries the chunk from scratch and
   reaches the chaos-free stats. *)
let test_poison_quarantine_and_resume () =
  let reference = toy_reference () in
  let dir = scratch_dir () in
  let header = make_header () in
  let config = { test_config with Coordinator.poison_threshold = 2 } in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header ~journal:dir ~on_event:push () in
  (* Two "workers" that lease every chunk and die without a verdict:
     after the second distinct death per chunk, every chunk must be
     quarantined rather than requeued a third time. *)
  List.iter
    (fun name ->
      let fd = connect port in
      Proto.send fd (Proto.Hello { version = Proto.version; name; epoch = -1 });
      (match Proto.recv fd with
      | Proto.Welcome _ -> ()
      | _ -> Alcotest.fail "expected Welcome");
      let rec grab () =
        Proto.send fd Proto.Request;
        match Proto.recv fd with
        | Proto.Assign _ -> grab ()
        | Proto.Wait | Proto.Done -> ()
        | _ -> Alcotest.fail "unexpected reply to Request"
      in
      grab ();
      (* Die with every lease in hand. *)
      Unix.close fd;
      (* Let the coordinator notice the death before the next victim
         joins, so the second victim re-leases the requeued chunks. *)
      wait_for
        (fun () ->
          List.exists
            (function
              | Coordinator.Left { worker; _ } -> worker = name
              | _ -> false)
            (all ()))
        (name ^ " to be seen dying"))
    [ "victim-a"; "victim-b" ];
  let r = join () in
  let n_chunks = (toy_n + config.Coordinator.chunk_size - 1) / config.Coordinator.chunk_size in
  check_bool "not completed" false r.Coordinator.completed;
  check_int "every chunk quarantined" n_chunks (List.length r.Coordinator.poisoned);
  check_bool "quarantine events emitted" true
    (List.exists
       (function
         | Coordinator.Quarantined { deaths = 2; _ } -> true
         | _ -> false)
       (all ()));
  (* The journal recorded the quarantines... *)
  let _, entries, _, w = Journal.resume ~dir () in
  Journal.close w;
  check_bool "Poisoned entries journaled" true
    (Array.exists
       (function
         | Journal.Poisoned _ -> true
         | _ -> false)
       entries);
  (* ...and a resumed service retries the chunks fresh: with a healthy
     worker the campaign completes bit-identically. *)
  let coord2 = Coordinator.create ~config () in
  let port2 = Coordinator.port coord2 in
  let join2 = serve_bg coord2 ~header ~journal:dir ~resume:true () in
  let wjoin = work_bg ~port:port2 ~name:"healthy" () in
  let rep = wjoin () in
  let r2 = join2 () in
  check_bool "resume completed" true r2.Coordinator.completed;
  check_bool "nothing quarantined on resume" true (r2.Coordinator.poisoned = []);
  check_stats "quarantine resume parity" reference r2.Coordinator.stats;
  check_bool "healthy worker done" true (rep.Worker.ended = Worker.Campaign_done);
  rm_rf dir

(* --- blacklisting ----------------------------------------------------- *)

(* A client that keeps sending corrupt frames accumulates strikes and is
   refused re-admission by name, while an honest worker finishes the
   campaign untouched. *)
let test_blacklist () =
  let reference = toy_reference () in
  let config = { test_config with Coordinator.blacklist_threshold = 2 } in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ()) ~on_event:push () in
  let corrupt_frame () =
    let b = Bytes.of_string (Proto.encode_frame (Proto.encode Proto.Request)) in
    Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) lxor 0x20));
    Bytes.to_string b
  in
  let expect_disconnect label fd =
    match Proto.recv fd with
    | exception (Proto.Closed | Proto.Error _ | Unix.Unix_error _) -> Unix.close fd
    | _ -> Alcotest.fail (label ^ ": connection must be dropped")
  in
  (* Two strikes under the same name... *)
  for i = 1 to 2 do
    let fd = connect port in
    Proto.send fd (Proto.Hello { version = Proto.version; name = "evil"; epoch = -1 });
    (match Proto.recv fd with
    | Proto.Welcome _ -> ()
    | _ -> Alcotest.fail "expected Welcome");
    let garbage = corrupt_frame () in
    ignore (Unix.write_substring fd garbage 0 (String.length garbage));
    expect_disconnect (Printf.sprintf "strike %d" i) fd
  done;
  (* ...and the third Hello is refused outright. *)
  let fd = connect port in
  Proto.send fd (Proto.Hello { version = Proto.version; name = "evil"; epoch = -1 });
  expect_disconnect "blacklisted hello" fd;
  wait_for
    (fun () ->
      List.exists
        (function
          | Coordinator.Blacklisted { worker = "evil"; _ } -> true
          | _ -> false)
        (all ()))
    "the blacklist event";
  let wjoin = work_bg ~port ~name:"honest" () in
  let rep = wjoin () in
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_int "one name blacklisted" 1 r.Coordinator.blacklisted;
  check_int "no mismatches" 0 r.Coordinator.mismatches;
  check_stats "blacklist parity" reference r.Coordinator.stats;
  check_bool "honest worker done" true (rep.Worker.ended = Worker.Campaign_done)

(* --- cross-validation ------------------------------------------------- *)

(* verify_frac = 1: every chunk is re-issued once, preferring a second
   worker; with honest workers the pass is silent (no duplicates, no
   mismatches) and the stats are untouched. *)
let test_verify_clean () =
  let reference = toy_reference () in
  let config = { test_config with Coordinator.verify_frac = 1. } in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let join = serve_bg coord ~header:(make_header ()) () in
  let w1 = work_bg ~port ~name:"w1" () in
  let w2 = work_bg ~port ~name:"w2" () in
  let r1 = w1 () and r2 = w2 () in
  let r = join () in
  let n_chunks = (toy_n + config.Coordinator.chunk_size - 1) / config.Coordinator.chunk_size in
  check_bool "completed" true r.Coordinator.completed;
  check_int "every chunk verified" n_chunks r.Coordinator.verified;
  check_int "no mismatches" 0 r.Coordinator.mismatches;
  check_int "verification not counted as duplicates" 0 r.Coordinator.duplicates;
  check_stats "verified parity" reference r.Coordinator.stats;
  check_bool "workers done" true
    (r1.Worker.ended = Worker.Campaign_done && r2.Worker.ended = Worker.Campaign_done)

(* A verifier that disagrees with the recorded verdicts opens a quorum
   arbitration. Here the fleet is just the origin and the challenger, so
   no eligible voter exists: the dispute times out under [arb_patience],
   counts as unresolved (exit 19 at the CLI), and the chunk's
   verification is settled rather than re-issued forever — the dissenter
   keeps its connection (it may be the honest one). *)
let test_verify_mismatch () =
  let config =
    {
      test_config with
      Coordinator.verify_frac = 1.;
      chunk_size = toy_n (* one chunk *);
      arb_patience = 0.2;
    }
  in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ()) ~on_event:push () in
  (* The rogue verifier connects first but stays quiet, so the honest
     worker is never "alone" and the verification pass waits for the
     rogue instead of self-verifying. *)
  let rogue = connect port in
  Proto.send rogue (Proto.Hello { version = Proto.version; name = "rogue"; epoch = -1 });
  (match Proto.recv rogue with
  | Proto.Welcome _ -> ()
  | _ -> Alcotest.fail "expected Welcome");
  let wjoin = work_bg ~port ~name:"honest" () in
  wait_for
    (fun () ->
      List.exists
        (function
          | Coordinator.Progress { done_; _ } -> done_ = toy_n
          | _ -> false)
        (all ()))
    "the honest worker to finish the data pass";
  (* All data chunks are complete, so the rogue's Request yields the
     verification lease (origin differs); it answers with a verdict that
     can never be right. *)
  Proto.send rogue Proto.Request;
  (match Proto.recv rogue with
  | Proto.Assign { chunk_id; lo; _ } ->
    Proto.send rogue (Proto.Results { chunk_id; results = [| (lo, Journal.Sdc 999999) |] });
    Proto.send rogue (Proto.Chunk_done { chunk_id })
  | _ -> Alcotest.fail "expected the verification Assign");
  (* The dissenter is no longer summarily dropped — arbitration keeps it
     around as a potential honest party. It hangs up on its own. *)
  Unix.close rogue;
  let rep = wjoin () in
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_int "mismatch surfaced" 1 r.Coordinator.mismatches;
  check_int "no quorum reachable: dispute unresolved" 1 r.Coordinator.arb_unresolved;
  check_int "nothing resolved" 0 r.Coordinator.arb_resolved;
  check_int "failed verification is settled, not re-verified" 0 r.Coordinator.verified;
  check_bool "mismatch event names the rogue" true
    (List.exists
       (function
         | Coordinator.Mismatch { worker = "rogue"; _ } -> true
         | _ -> false)
       (all ()));
  (* Depending on scheduling the dispute either times out under
     [arb_patience] or surfaces during the drain phase ("mismatch after
     completion") — both are the no-voters-reachable failure. *)
  check_bool "arbitration failure surfaced" true
    (List.exists
       (function
         | Coordinator.Arbitration_failed { reason; _ } ->
           contains reason "patience" || contains reason "no voters"
         | _ -> false)
       (all ()));
  check_bool "honest worker done" true (rep.Worker.ended = Worker.Campaign_done)

(* --- worker receive deadline ------------------------------------------ *)

(* A coordinator that accepts and then never speaks must not hang the
   worker: the read deadline converts the silence into a lost session,
   and the worker gives up after its reconnect budget. *)
let test_worker_recv_deadline () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop = ref false in
  let accepted = ref [] in
  let acceptor =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.select [ fd ] [] [] 0.05 with
          | [ _ ], _, _ -> accepted := fst (Unix.accept fd) :: !accepted
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let fast = { Backoff.base = 0.01; cap = 0.05; factor = 2. } in
  let report =
    Worker.run ~host:"127.0.0.1" ~port
      ~resolve:(fun _ -> toy_engine ())
      ~name:"deadline" ~recv_timeout:0.3 ~reconnect_backoff:fast ~max_reconnects:2 ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  stop := true;
  Thread.join acceptor;
  List.iter (fun c -> try Unix.close c with Unix.Unix_error _ -> ()) !accepted;
  Unix.close fd;
  (match report.Worker.ended with
  | Worker.Gave_up _ -> ()
  | _ -> Alcotest.fail "silent coordinator must make the worker give up");
  check_bool "gave up promptly, did not hang" true (elapsed < 15.)

(* --- journal failure surfacing ---------------------------------------- *)

(* An injected ENOSPC on the very first append must surface as a clean
   [Journal.Error] (exit 17 at the CLI) — and a chaos-free resume of the
   same directory completes with the reference statistics. *)
let test_journal_enospc_resume () =
  let space, campaign = toy_parts () in
  let reference = Campaign.run_sample campaign ~space ~rng:(Prng.create toy_seed) ~n:toy_n () in
  let dir = scratch_dir () in
  let chaos =
    Chaos.create
      ~profile:{ Chaos.quiet_profile with Chaos.journal_enospc = 1.; budget = 1 }
      ~seed:11 ()
  in
  (match
     Durable.run campaign ~space ~seed:toy_seed ~n:toy_n ~ident:("toy", "toy") ~journal:dir
       ~chaos ()
   with
  | exception Journal.Error msg ->
    check_bool "names the injected errno" true
      (let lower = String.lowercase_ascii msg in
       let has needle =
         let nl = String.length needle and ll = String.length lower in
         let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
         go 0
       in
       has "space" || has "enospc")
  | _ -> Alcotest.fail "injected ENOSPC must raise Journal.Error");
  let resumed =
    Durable.run campaign ~space ~seed:toy_seed ~n:toy_n ~ident:("toy", "toy") ~journal:dir
      ~resume:true ()
  in
  check_bool "resume completed" true resumed.Durable.completed;
  check_stats "ENOSPC resume parity" reference resumed.Durable.stats;
  rm_rf dir

(* An injected fsync failure while sealing a segment: same contract —
   sticky [Journal.Error], resumable, nothing lost. *)
let test_journal_fsync_resume () =
  let dir = scratch_dir () in
  let header = make_header () in
  let chaos =
    Chaos.create
      ~profile:{ Chaos.quiet_profile with Chaos.journal_fsync = 1.; budget = 1 }
      ~seed:5 ()
  in
  let w = Journal.create ~records_per_segment:4 ~chaos ~dir header in
  (match
     for i = 0 to 5 do
       Journal.append w (Journal.Outcome (i, Journal.Benign))
     done
   with
  | exception Journal.Error _ -> ()
  | () -> Alcotest.fail "injected fsync failure must raise Journal.Error");
  Journal.close w;
  let _, entries, _, w2 = Journal.resume ~dir () in
  Journal.close w2;
  check_bool "records before the failure survive" true (Array.length entries >= 4);
  rm_rf dir

(* --- the headline invariant ------------------------------------------- *)

(* Under a full chaos plan on both sides of the wire (and on the
   journal), a campaign either completes directly with stats
   bit-identical to the chaos-free reference, or fails resumably and
   reaches the identical stats after --resume. Every seed must land in
   one of those two outcomes — nothing else. *)
let test_soak_invariant () =
  let reference = toy_reference () in
  let header = make_header () in
  (* Crank the journal and network rates well above the defaults so a
     60-sample toy campaign actually meets some faults; keep stalls
     short so the suite stays quick. *)
  let soak_profile =
    {
      Chaos.default_profile with
      Chaos.net_delay = 0.05;
      net_corrupt = 0.03;
      net_truncate = 0.02;
      net_reset = 0.02;
      net_slow = 0.01;
      max_delay = 0.02;
      journal_short = 0.02;
      journal_enospc = 0.01;
      journal_eio = 0.01;
      stall = 0.05;
      budget = 48;
    }
  in
  (* Corrupt frames from a chaotic worker are indistinguishable from a
     hostile client; disable blacklisting so chaos cannot lock the
     worker out of its own campaign (the CLI soak keeps it on and
     tolerates the locked-out worker instead). *)
  let config = { test_config with Coordinator.blacklist_threshold = 0 } in
  let fast = { Backoff.base = 0.01; cap = 0.1; factor = 2. } in
  List.iter
    (fun seed ->
      let label what = Printf.sprintf "soak seed %d: %s" seed what in
      let dir = scratch_dir () in
      let run ~resume ~chaos_seed =
        let coord = Coordinator.create ~config () in
        let port = Coordinator.port coord in
        let chaos =
          Option.map
            (fun s -> Chaos.create ~profile:soak_profile ~seed:s ())
            chaos_seed
        in
        let join = serve_bg coord ~header ~journal:dir ~resume ?chaos () in
        let workers =
          List.init 2 (fun i ->
              work_bg ~port
                ~name:(Printf.sprintf "w%d" i)
                ~reconnect_backoff:fast ~max_reconnects:30
                ?chaos:
                  (Option.map
                     (fun s -> Chaos.create ~profile:soak_profile ~seed:(s + 1000 + i) ())
                     chaos_seed)
                ())
        in
        (* A worker may legitimately give up if chaos killed the
           coordinator's journal; the resume round finishes the job. *)
        List.iter (fun j -> ignore (j ())) workers;
        match join () with
        | r -> Some r
        | exception Journal.Error _ -> None
      in
      let rec settle round ~resume ~chaos_seed =
        if round > 4 then Alcotest.fail (label "did not settle in 4 rounds")
        else
          match run ~resume ~chaos_seed with
          | Some r when r.Coordinator.completed && r.Coordinator.poisoned = [] -> r
          | _ ->
            (* Resumable failure (journal fault, quarantine, interrupted):
               finish chaos-free from the journal. *)
            settle (round + 1) ~resume:true ~chaos_seed:None
      in
      let r = settle 0 ~resume:false ~chaos_seed:(Some seed) in
      check_int (label "no mismatches") 0 r.Coordinator.mismatches;
      check_stats (label "bit-identical to the chaos-free reference") reference
        r.Coordinator.stats;
      rm_rf dir)
    [ 1; 2; 3 ]

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_plan_byte_identity; prop_plan_budget ]
  @ [
      Alcotest.test_case "plans differ across seeds" `Quick test_plan_distinct_seeds;
      Alcotest.test_case "site streams are independent" `Quick test_site_stream_independence;
      Alcotest.test_case "budget exhaustion and quiet profile" `Quick test_exhaustion_and_quiet;
      Alcotest.test_case "poisoned chunks quarantined, resume recovers" `Quick
        test_poison_quarantine_and_resume;
      Alcotest.test_case "corrupt-frame clients blacklisted" `Quick test_blacklist;
      Alcotest.test_case "cross-validation: clean pass" `Quick test_verify_clean;
      Alcotest.test_case "cross-validation: mismatch detected" `Quick test_verify_mismatch;
      Alcotest.test_case "worker receive deadline" `Quick test_worker_recv_deadline;
      Alcotest.test_case "journal ENOSPC surfaces and resumes" `Quick test_journal_enospc_resume;
      Alcotest.test_case "journal fsync failure surfaces and resumes" `Quick
        test_journal_fsync_resume;
      Alcotest.test_case "soak: chaos-free parity or resumable" `Slow test_soak_invariant;
    ]
