(* The bit-parallel (PPSFP) engine.

   Three layers of evidence:
   - every cell's Shannon-lowered formula equals its truth table on every
     input pattern, in every lane (exhaustive, plus random tables);
   - the lane-parallel simulator is cycle-identical to the scalar
     simulator on whole CPU systems while no lane diverges, and lane
     flips stay confined to their lane;
   - batched campaign verdicts — SDC cycles included — are bit-identical
     to the scalar checkpointed engine over hundreds of random faults on
     both cores, across lane fills and checkpoint intervals. *)

open Helpers
module Lower = Pruning_cell.Lower
module Bitsim = Pruning_sim.Bitsim
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module System = Pruning_cpu.System
module Memory = Pruning_cpu.Memory
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs

(* ------------------------------------------------------------------ *)
(* Lowering: formula = truth table, all patterns, all lanes. *)

(* Pack every input pattern of an [arity]-pin cell across the lanes: lane
   [l] carries pattern [l mod 2^arity], so all [Bitsim.n_lanes] lanes are
   exercised even for small cells. Pin [j]'s packed word has bit [l] set
   iff pattern [l mod 2^arity] sets pin [j]. *)
let packed_pins arity =
  let n_patterns = 1 lsl arity in
  Array.init arity (fun j ->
      let w = ref 0 in
      for lane = 0 to Bitsim.n_lanes - 1 do
        if (lane mod n_patterns) lsr j land 1 = 1 then w := !w lor (1 lsl lane)
      done;
      !w)

let check_table ~what ~arity ~table out =
  let n_patterns = 1 lsl arity in
  for lane = 0 to Bitsim.n_lanes - 1 do
    let expect = table lsr (lane mod n_patterns) land 1 in
    if (out lsr lane) land 1 <> expect then
      Alcotest.failf "%s (arity %d, table %#x): lane %d (pattern %d) got %d, want %d" what arity
        table lane (lane mod n_patterns)
        ((out lsr lane) land 1)
        expect
  done

let test_lower_cells_exhaustive () =
  List.iter
    (fun (cell : Cell.t) ->
      let e = Lower.of_cell cell in
      let pins = packed_pins cell.Cell.arity in
      check_table ~what:(cell.Cell.name ^ "/eval") ~arity:cell.Cell.arity ~table:cell.Cell.table
        (Lower.eval e pins);
      (* The compiled closure reads pins through a wire-value array. *)
      let inputs = Array.init cell.Cell.arity (fun j -> j) in
      let f = Lower.compile e ~inputs in
      check_table ~what:(cell.Cell.name ^ "/compile") ~arity:cell.Cell.arity ~table:cell.Cell.table
        (f pins))
    Cell.all

let test_lower_random_tables () =
  let rng = Prng.create 0xBEEF in
  for _ = 1 to 500 do
    let arity = Prng.int rng (Cell.max_arity + 1) in
    let table = Prng.int rng (1 lsl (1 lsl arity)) in
    let e = Lower.of_table ~arity ~table in
    check_table ~what:"random" ~arity ~table (Lower.eval e (packed_pins arity))
  done

(* ------------------------------------------------------------------ *)
(* Whole-system lockstep: with no injected divergence, every lane of the
   bit-parallel simulator equals the scalar simulator on every wire of
   every cycle. *)

let check_lockstep name sim bsim nl ~cycles =
  let n_wires = Netlist.n_wires nl in
  for cycle = 0 to cycles - 1 do
    Sim.eval sim;
    Bitsim.eval bsim;
    for w = 0 to n_wires - 1 do
      let expect = Bitsim.splat (Sim.peek sim w) in
      let got = Bitsim.peek bsim w in
      if got <> expect then
        Alcotest.failf "%s: cycle %d wire %d (%s): packed %#x, scalar %b" name cycle w
          (Netlist.wire_name nl w) got (Sim.peek sim w)
    done;
    Sim.latch sim;
    Bitsim.latch bsim
  done

let test_lockstep_avr () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let sys = System.create_avr ~netlist:nl ~program "avr/fib" in
  let lanes = System.create_avr_lanes ~netlist:nl ~program "avr/fib" in
  check_lockstep "avr" sys.System.sim lanes.System.l_bsim nl ~cycles:150

let test_lockstep_msp () =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib in
  let sys = System.create_msp ~netlist:nl ~program "msp/fib" in
  let lanes = System.create_msp_lanes ~netlist:nl ~program "msp/fib" in
  check_lockstep "msp430" sys.System.sim lanes.System.l_bsim nl ~cycles:150

let test_lane_isolation () =
  (* Flip one flop in one lane of a live AVR run: only that lane may ever
     differ from lane 0, and resetting the lane restores full agreement. *)
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let lanes = System.create_avr_lanes ~netlist:nl ~program "avr/fib" in
  let bsim = lanes.System.l_bsim in
  Bitsim.run bsim ~cycles:20;
  let lane = 17 in
  let fid = (Netlist.find_flop nl "pc[1]").Netlist.flop_id in
  Bitsim.flip_flop_lane bsim fid ~lane;
  let others = lnot (1 lsl lane) in
  for _ = 1 to 30 do
    Bitsim.eval bsim;
    for w = 0 to Netlist.n_wires nl - 1 do
      let v = Bitsim.peek bsim w in
      let diff = (v lxor - (v land 1)) land others in
      if diff <> 0 then
        Alcotest.failf "lane isolation: wire %s differs outside lane %d (diff %#x)"
          (Netlist.wire_name nl w) lane diff
    done;
    Bitsim.latch bsim
  done;
  Bitsim.reset_lane bsim ~lane;
  Memory.lane_reset lanes.System.l_ram ~lane;
  Bitsim.eval bsim;
  for w = 0 to Netlist.n_wires nl - 1 do
    let v = Bitsim.peek bsim w in
    if v lxor - (v land 1) <> 0 then
      Alcotest.failf "reset_lane: wire %s still diverged" (Netlist.wire_name nl w)
  done

(* ------------------------------------------------------------------ *)
(* Differential campaign: batched verdicts = scalar verdicts. *)

let total_cycles = 120
let n_pairs = 500

let avr_makers () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  ( nl,
    (fun () -> System.create_avr ~netlist:nl ~program "avr/fib"),
    fun () -> System.create_avr_lanes ~netlist:nl ~program "avr/fib" )

let msp_makers () =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  ( nl,
    (fun () -> System.create_msp ~netlist:nl ~program "msp/fib"),
    fun () -> System.create_msp_lanes ~netlist:nl ~program "msp/fib" )

let verdict_to_string v = Format.asprintf "%a" Campaign.pp_verdict v

let check_batched_matches_scalar name (nl, make, make_lanes) =
  let n_flops = Array.length nl.Netlist.flops in
  let rng = Prng.create 0xDECAF in
  let faults =
    Array.init n_pairs (fun _ ->
        (nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id, Prng.int rng total_cycles))
  in
  (* Scalar reference verdicts (checkpointed engine, validated against
     from-scratch re-simulation by the checkpoint suite). *)
  let scalar = Campaign.create ~make ~total_cycles () in
  let expected =
    Array.map (fun (flop_id, cycle) -> Campaign.inject scalar ~flop_id ~cycle) faults
  in
  (* Several checkpoint intervals — including every-cycle snapshots and
     checkpointing disabled — and several lane fills, down to 3 lanes
     (heavy refill pressure: most faults wait for a freed lane). *)
  List.iter
    (fun (interval, lanes) ->
      let campaign =
        Campaign.create ~checkpoint_interval:interval ~make ~make_lanes ~total_cycles ()
      in
      let got = Campaign.inject_batch campaign ~lanes ~faults () in
      Array.iteri
        (fun i v ->
          if v <> expected.(i) then
            Alcotest.failf "%s K=%d lanes=%d (flop %d, cycle %d): batched=%s, scalar=%s" name
              interval lanes (fst faults.(i)) (snd faults.(i)) (verdict_to_string v)
              (verdict_to_string expected.(i)))
        got)
    [
      (1, Campaign.max_fault_lanes);
      (13, Campaign.max_fault_lanes);
      (37, Campaign.max_fault_lanes);
      (total_cycles + 5, Campaign.max_fault_lanes);
      (13, 3);
      (13, 7);
    ]

let test_batched_avr () = check_batched_matches_scalar "avr" (avr_makers ())
let test_batched_msp () = check_batched_matches_scalar "msp430" (msp_makers ())

let test_run_sample_batched_stats () =
  (* Identical seed => identical fault list => identical stats, with and
     without a skip predicate. *)
  let nl, make, make_lanes = avr_makers () in
  let space = Fault_space.full nl ~cycles:total_cycles in
  let campaign = Campaign.create ~make ~make_lanes ~total_cycles () in
  let scalar = Campaign.run_sample campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  let batched = Campaign.run_sample_batched campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  check_bool "stats equal" true (scalar = batched);
  let skip ~flop_id ~cycle = (flop_id + cycle) mod 3 = 0 in
  let scalar_s = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip () in
  let batched_s =
    Campaign.run_sample_batched campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip ()
  in
  check_bool "stats equal (skip)" true (scalar_s = batched_s);
  check_bool "some skipped" true (batched_s.Campaign.skipped > 0);
  check_int "invariant" batched_s.Campaign.injections
    (batched_s.Campaign.benign + batched_s.Campaign.latent + batched_s.Campaign.sdc)

let suite =
  [
    Alcotest.test_case "lowered cells = truth tables (all lanes)" `Quick
      test_lower_cells_exhaustive;
    Alcotest.test_case "lowered random tables (500)" `Quick test_lower_random_tables;
    Alcotest.test_case "bitsim = sim lockstep (AVR)" `Quick test_lockstep_avr;
    Alcotest.test_case "bitsim = sim lockstep (MSP430)" `Quick test_lockstep_msp;
    Alcotest.test_case "lane flip stays confined; reset restores" `Quick test_lane_isolation;
    Alcotest.test_case "batched = scalar verdicts (AVR, 500 faults)" `Quick test_batched_avr;
    Alcotest.test_case "batched = scalar verdicts (MSP430, 500 faults)" `Quick test_batched_msp;
    Alcotest.test_case "run_sample_batched = run_sample stats" `Quick
      test_run_sample_batched_stats;
  ]
