(* Differential validation of the checkpointed campaign engine: for every
   checkpoint interval — including K=1 (a snapshot every cycle) and
   K > total_cycles (checkpointing effectively disabled) — the verdict of
   every (flop, cycle) fault must be bit-identical to a from-scratch
   re-simulation, divergence cycles included. Plus: multi-domain
   run_sample must produce exactly the single-domain stats. *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs

let total_cycles = 120
let n_pairs = 500

let avr_make () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  fun () -> System.create_avr ~netlist:nl ~program "avr/fib"

(* The seed engine, re-implemented verbatim as the reference: build a
   fresh system, simulate fault-free from reset to the injection cycle,
   flip, then watch the outputs to the horizon and compare the final
   architectural state. *)
module Reference = struct
  type t = {
    make : unit -> System.t;
    out_wires : int array;
    golden_outputs : bool array array;
    golden_flops : bool array;
    golden_ram : int array;
  }

  let output_wires (nl : Netlist.t) =
    List.concat_map (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires) nl.Netlist.outputs
    |> Array.of_list

  let read_outputs sim out_wires = Array.map (fun w -> Sim.peek sim w) out_wires

  let read_flops sim (nl : Netlist.t) =
    Array.map (fun (f : Netlist.flop) -> Sim.peek sim f.Netlist.q) nl.Netlist.flops

  let create ~make =
    let sys = make () in
    let nl = sys.System.netlist in
    let out_wires = output_wires nl in
    let golden_outputs = Array.make total_cycles [||] in
    for cycle = 0 to total_cycles - 1 do
      Sim.eval sys.System.sim;
      golden_outputs.(cycle) <- read_outputs sys.System.sim out_wires;
      Sim.latch sys.System.sim
    done;
    Sim.eval sys.System.sim;
    {
      make;
      out_wires;
      golden_outputs;
      golden_flops = read_flops sys.System.sim nl;
      golden_ram = Array.copy sys.System.ram;
    }

  let inject t ~flop_id ~cycle =
    let sys = t.make () in
    let sim = sys.System.sim in
    let nl = sys.System.netlist in
    for _ = 1 to cycle do
      Sim.step sim ()
    done;
    Sim.eval sim;
    Sim.set_flop sim flop_id (not (Sim.get_flop sim flop_id));
    let divergence = ref None in
    let c = ref cycle in
    while !divergence = None && !c < total_cycles do
      Sim.eval sim;
      if read_outputs sim t.out_wires <> t.golden_outputs.(!c) then divergence := Some !c
      else begin
        Sim.latch sim;
        incr c
      end
    done;
    match !divergence with
    | Some n -> Campaign.Sdc n
    | None ->
      Sim.eval sim;
      if read_flops sim nl = t.golden_flops && sys.System.ram = t.golden_ram then Campaign.Benign
      else Campaign.Latent

  let verdict_to_string v = Format.asprintf "%a" Campaign.pp_verdict v
end

let test_differential () =
  let make = avr_make () in
  let nl = (make ()).System.netlist in
  let n_flops = Array.length nl.Netlist.flops in
  let rng = Prng.create 0xC0FFEE in
  let pairs =
    Array.init n_pairs (fun _ ->
        (nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id, Prng.int rng total_cycles))
  in
  let reference = Reference.create ~make in
  let expected =
    Array.map (fun (flop_id, cycle) -> Reference.inject reference ~flop_id ~cycle) pairs
  in
  List.iter
    (fun interval ->
      let campaign = Campaign.create ~checkpoint_interval:interval ~make ~total_cycles () in
      Array.iteri
        (fun i (flop_id, cycle) ->
          let got = Campaign.inject campaign ~flop_id ~cycle in
          if got <> expected.(i) then
            Alcotest.failf "K=%d (flop %d, cycle %d): checkpointed=%s, from-scratch=%s" interval
              flop_id cycle
              (Reference.verdict_to_string got)
              (Reference.verdict_to_string expected.(i)))
        pairs)
    [ 1; 13; 37; total_cycles + 5 ]

let test_repeated_injections_consistent () =
  (* The verdict memo must never change a result: injecting the same fault
     twice (memo cold, then warm) and interleaved with other faults on the
     shared worker must be reproducible. *)
  let make = avr_make () in
  let nl = (make ()).System.netlist in
  let campaign = Campaign.create ~checkpoint_interval:8 ~make ~total_cycles () in
  let rng = Prng.create 99 in
  let n_flops = Array.length nl.Netlist.flops in
  for _ = 1 to 100 do
    let flop_id = nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id in
    let cycle = Prng.int rng total_cycles in
    let v1 = Campaign.inject campaign ~flop_id ~cycle in
    let v2 = Campaign.inject campaign ~flop_id ~cycle in
    check_bool "cold = warm" true (v1 = v2)
  done

let test_parallel_determinism () =
  let make = avr_make () in
  let nl = (make ()).System.netlist in
  let space = Fault_space.full nl ~cycles:total_cycles in
  let campaign = Campaign.create ~make ~total_cycles () in
  let run jobs = Campaign.run_sample campaign ~space ~rng:(Prng.create 31337) ~n:60 ~jobs () in
  let seq = run 1 in
  let par = run 4 in
  check_bool "jobs 4 = jobs 1" true (seq = par);
  check_int "invariant holds" seq.Campaign.injections
    (seq.Campaign.benign + seq.Campaign.latent + seq.Campaign.sdc);
  (* And with a skip predicate active. *)
  let skip ~flop_id ~cycle = (flop_id + cycle) mod 3 = 0 in
  let run_skip jobs =
    Campaign.run_sample campaign ~space ~rng:(Prng.create 31337) ~n:60 ~skip ~jobs ()
  in
  let seq_s = run_skip 1 in
  let par_s = run_skip 3 in
  check_bool "skip: jobs 3 = jobs 1" true (seq_s = par_s);
  check_bool "some skipped" true (seq_s.Campaign.skipped > 0);
  check_int "skip invariant" seq_s.Campaign.injections
    (seq_s.Campaign.benign + seq_s.Campaign.latent + seq_s.Campaign.sdc);
  check_int "totals" 60 (seq_s.Campaign.injections + seq_s.Campaign.skipped)

let suite =
  [
    Alcotest.test_case "checkpointed = from-scratch (500 pairs, 4 intervals)" `Quick
      test_differential;
    Alcotest.test_case "memoized verdicts reproducible" `Quick test_repeated_injections_consistent;
    Alcotest.test_case "parallel campaign deterministic" `Quick test_parallel_determinism;
  ]
