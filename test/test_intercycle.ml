open Helpers
module Oracle = Pruning_fi.Oracle
module Intercycle = Pruning_fi.Intercycle
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs
module Campaign = Pruning_fi.Campaign

(* A register that is written once and then sits still: its fault defers
   through every idle cycle. *)
let idle_register_netlist () =
  let open Signal in
  let c = create_circuit "idle" in
  let load = input c "load" 1 in
  let value = input c "value" 4 in
  let r = reg c "r" 4 in
  connect r (mux2 load value (q r));
  (* Observable only through a gated output. *)
  let expose = input c "expose" 1 in
  output c "out" (mux2 expose (q r) (const c ~width:4 0));
  Synth.to_netlist c

let test_defers_idle_register () =
  let nl = idle_register_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "load" 0;
  Sim.set_port sim "value" 5;
  Sim.set_port sim "expose" 0;
  Sim.eval sim;
  let f = (Netlist.find_flop nl "r[2]").Netlist.flop_id in
  check_bool "idle flop defers" true (Oracle.defers sim ~flop_id:f);
  (* While exposed, the fault is visible: it does not defer. *)
  Sim.set_port sim "expose" 1;
  Sim.eval sim;
  check_bool "exposed flop does not defer" false (Oracle.defers sim ~flop_id:f);
  (* While being overwritten, the fault dies: it does not defer either
     (it is benign instead). *)
  Sim.set_port sim "expose" 0;
  Sim.set_port sim "load" 1;
  Sim.eval sim;
  check_bool "overwritten flop does not defer" false (Oracle.defers sim ~flop_id:f);
  check_bool "overwritten flop is benign" true (Oracle.one_cycle_benign sim ~flop_id:f)

let test_defers_excludes_masked () =
  (* Deferring and one-cycle-benign are mutually exclusive: a deferring
     fault survives in its flop, a benign one dies. *)
  let nl = idle_register_netlist () in
  let sim = Sim.create nl in
  let rng = Prng.create 5 in
  for _ = 1 to 40 do
    Sim.set_port sim "load" (Prng.int rng 2);
    Sim.set_port sim "value" (Prng.int rng 16);
    Sim.set_port sim "expose" (Prng.int rng 2);
    Sim.eval sim;
    Array.iter
      (fun (f : Netlist.flop) ->
        let d = Oracle.defers sim ~flop_id:f.Netlist.flop_id in
        let b = Oracle.one_cycle_benign sim ~flop_id:f.Netlist.flop_id in
        check_bool "not both" false (d && b))
      nl.Netlist.flops;
    Sim.latch sim
  done

let test_classes_on_idle_register () =
  let nl = idle_register_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "load" 0;
  Sim.set_port sim "value" 9;
  Sim.set_port sim "expose" 0;
  (* 10 fully idle cycles: every flop forms a single class. *)
  let t = Intercycle.compute sim ~flops:nl.Netlist.flops ~cycles:10 in
  check_int "one class per flop" (Array.length nl.Netlist.flops) t.Intercycle.n_classes;
  check_bool "10x reduction" true (Intercycle.reduction_factor t >= 10. -. 1e-9);
  check_int "representative is cycle 0" 0 (Intercycle.representative t ~flop_index:0 ~cycle:7)

let test_classes_respect_events () =
  let nl = idle_register_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "load" 0;
  Sim.set_port sim "value" 3;
  Sim.set_port sim "expose" 0;
  (* Expose the register in cycle 2 only: runs break there. *)
  let t =
    (* drive inputs cycle by cycle via a device *)
    let cycle = ref 0 in
    let dev =
      {
        Sim.dev_name = "stim";
        dev_comb =
          (fun _ write ->
            let port = Netlist.find_input_port nl "expose" in
            write port.Netlist.port_wires.(0) (!cycle = 2));
        dev_clock = (fun _ -> incr cycle);
        dev_save =
          (fun () ->
            let saved = !cycle in
            fun () -> cycle := saved);
      }
    in
    Sim.add_device sim dev;
    Intercycle.compute sim ~flops:nl.Netlist.flops ~cycles:6
  in
  (* A fault deferring from cycle 1 into the exposed cycle 2 behaves
     exactly like one injected at 2, so [0..2] is one class; the run
     breaks after the visible cycle: [3..5] is the next. *)
  check_int "two classes per flop" (2 * Array.length nl.Netlist.flops) t.Intercycle.n_classes;
  check_int "rep of cycle 1" 0 (Intercycle.representative t ~flop_index:1 ~cycle:1);
  check_int "rep of cycle 2" 0 (Intercycle.representative t ~flop_index:1 ~cycle:2);
  check_int "rep of cycle 5" 3 (Intercycle.representative t ~flop_index:1 ~cycle:5)

let test_equivalence_sound_in_campaign () =
  (* Representatives carry the class verdict: injecting any member of a
     class gives the same campaign outcome as injecting the
     representative (sampled on the AVR register file). *)
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let nl = System.avr_netlist () in
  let make () = System.create_avr ~netlist:nl ~program "fib" in
  let horizon = 220 in
  let rf = Array.of_list (Netlist.flops_matching nl ~prefix:"rf_2") in
  let sys = make () in
  let t = Intercycle.compute sys.System.sim ~flops:rf ~cycles:horizon in
  check_bool "rf classes collapse a lot" true (Intercycle.reduction_factor t > 5.);
  let campaign = Campaign.create ~make ~total_cycles:horizon () in
  let rng = Prng.create 17 in
  for _ = 1 to 12 do
    let fi = Prng.int rng (Array.length rf) in
    let cycle = Prng.int rng horizon in
    let rep = Intercycle.representative t ~flop_index:fi ~cycle in
    let flop_id = rf.(fi).Netlist.flop_id in
    let v_member = Campaign.inject campaign ~flop_id ~cycle in
    let v_rep = Campaign.inject campaign ~flop_id ~cycle:rep in
    check_bool
      (Printf.sprintf "class verdicts agree (%s, %d ~ %d)" rf.(fi).Netlist.flop_name cycle rep)
      true (v_member = v_rep)
  done

let suite =
  [
    Alcotest.test_case "defers: idle register" `Quick test_defers_idle_register;
    Alcotest.test_case "defers excludes masked" `Quick test_defers_excludes_masked;
    Alcotest.test_case "classes on idle register" `Quick test_classes_on_idle_register;
    Alcotest.test_case "classes respect events" `Quick test_classes_respect_events;
    Alcotest.test_case "equivalence sound in campaign" `Slow test_equivalence_sound_in_campaign;
  ]
