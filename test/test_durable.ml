(* The durable campaign layer: crash-safe journal (round-trip, segment
   rotation, torn-tail truncation at awkward byte offsets), kill/resume
   bit-identity on both cores and both engines, the supervisor's
   retry/crash accounting, the per-experiment watchdog, and the MATE
   soundness sentinel (sound MATEs audit clean; an artificially unsound
   MATE is quarantined without aborting the campaign). *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Durable = Pruning_fi.Durable
module Journal = Pruning_fi.Journal
module Fault_space = Pruning_fi.Fault_space
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Term = Pruning_mate.Term

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

(* --- scratch directories (self-cleaning, collision-free) ------------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-durable-%d" !scratch_counter)
  in
  rm_rf d;
  d

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc buf;
  close_out oc

let copy_journal src dst =
  rm_rf dst;
  Sys.mkdir dst 0o755;
  Array.iter (fun e -> copy_file (Filename.concat src e) (Filename.concat dst e)) (Sys.readdir src)

let truncate_file path bytes_off_end =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = max 0 (len - bytes_off_end) in
  let buf = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc buf;
  close_out oc

let append_garbage path bytes =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc (String.make bytes '\x5a');
  close_out oc

(* --- journal unit tests ---------------------------------------------- *)

let header ?(shards = 1) ?(batched = false) ?(audit = 0.) ?(samples = 10) () =
  {
    Journal.core = "avr";
    program = "fib";
    cycles = 120;
    seed = 42;
    samples;
    prune = audit > 0.;
    audit;
    shards;
    batched;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create 42);
    shard_prng = Array.init shards (fun s -> Prng.save (Prng.create (100 + s)));
  }

let entries_10 =
  [|
    Journal.Outcome (0, Journal.Benign);
    Journal.Outcome (1, Journal.Latent);
    Journal.Outcome (2, Journal.Sdc 37);
    Journal.Outcome (3, Journal.Skipped);
    Journal.Quarantine 4;
    Journal.Outcome (4, Journal.Sdc 0);
    Journal.Outcome (5, Journal.Crashed);
    Journal.Outcome (6, Journal.Benign);
    Journal.Quarantine 0;
    Journal.Outcome (7, Journal.Skipped);
  |]

let test_journal_round_trip () =
  let dir = scratch_dir () in
  let h = header ~shards:3 ~audit:0.25 () in
  let w = Journal.create ~records_per_segment:4 ~dir h in
  Array.iter (Journal.append w) entries_10;
  Journal.close w;
  (* 10 records at 4 per segment: two sealed segments plus an active one. *)
  check_bool "exists" true (Journal.exists ~dir);
  check_bool "seg 0 sealed" true (Sys.file_exists (Filename.concat dir "seg-000000.bin"));
  check_bool "seg 1 sealed" true (Sys.file_exists (Filename.concat dir "seg-000001.bin"));
  check_bool "active present" true (Sys.file_exists (Filename.concat dir "active.bin"));
  let h', entries, dropped = Journal.load ~dir in
  check_bool "header round-trips" true (h' = h);
  check_int "no torn bytes" 0 dropped;
  check_bool "entries round-trip" true (entries = entries_10);
  (* Creating over a live journal must refuse, not overwrite. *)
  (match Journal.create ~dir h with
  | exception Journal.Error _ -> ()
  | w ->
    Journal.close w;
    Alcotest.fail "create over an existing journal must raise");
  rm_rf dir

(* Chop the active segment at several byte offsets — mid-CRC, mid-record
   body, exactly one record, the whole file — and check resume keeps only
   whole intact records and reports exactly the torn remainder. *)
let test_journal_torn_tail () =
  let reference = scratch_dir () in
  let w = Journal.create ~records_per_segment:4 ~dir:reference (header ()) in
  Array.iter (Journal.append w) entries_10;
  Journal.close w;
  (* records_per_segment = 4: 8 records sealed in two segments, records
     8 and 9 (26 bytes) in active.bin. *)
  List.iter
    (fun cut ->
      let dir = scratch_dir () in
      copy_journal reference dir;
      truncate_file (Filename.concat dir "active.bin") cut;
      let active_len = max 0 (26 - cut) in
      let expect_n = 8 + (active_len / 13) in
      let expect_dropped = active_len mod 13 in
      let _, entries, dropped, w = Journal.resume ~records_per_segment:4 ~dir () in
      Journal.close w;
      check_int (Printf.sprintf "cut %d: entries" cut) expect_n (Array.length entries);
      check_bool
        (Printf.sprintf "cut %d: prefix" cut)
        true
        (entries = Array.sub entries_10 0 expect_n);
      check_int (Printf.sprintf "cut %d: dropped" cut) expect_dropped dropped;
      (* The truncation is persisted: a second open sees a clean tail. *)
      let _, entries2, dropped2 = Journal.load ~dir in
      check_bool (Printf.sprintf "cut %d: clean reopen" cut) true (entries2 = entries);
      check_int (Printf.sprintf "cut %d: clean reopen drop" cut) 0 dropped2;
      rm_rf dir)
    [ 1; 4; 12; 13; 14; 25; 26; 100 ];
  rm_rf reference

(* A bit flipped inside a sealed segment is real corruption, not a torn
   tail: resume must refuse loudly rather than resume wrong statistics. *)
let test_journal_sealed_corruption () =
  let dir = scratch_dir () in
  let w = Journal.create ~records_per_segment:4 ~dir (header ()) in
  Array.iter (Journal.append w) entries_10;
  Journal.close w;
  let seg = Filename.concat dir "seg-000001.bin" in
  let ic = open_in_bin seg in
  let buf = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set buf 20 (Char.chr (Char.code (Bytes.get buf 20) lxor 1));
  let oc = open_out_bin seg in
  output_bytes oc buf;
  close_out oc;
  (match Journal.load ~dir with
  | exception Journal.Error _ -> ()
  | _ -> Alcotest.fail "corrupt sealed segment must raise");
  rm_rf dir

(* --- durable runs on the real cores ---------------------------------- *)

let total_cycles = 120
let n_samples = 400

let avr_makers () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  ( nl,
    (fun () -> System.create_avr ~netlist:nl ~program "avr/fib"),
    (fun () -> System.create_avr_lanes ~netlist:nl ~program "avr/fib"),
    fun ~trace -> System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib" )

let msp_makers () =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  ( nl,
    (fun () -> System.create_msp ~netlist:nl ~program "msp/fib"),
    (fun () -> System.create_msp_lanes ~netlist:nl ~program "msp/fib"),
    fun ~trace -> System.create_msp_delta ~netlist:nl ~program ~trace "msp/fib" )

let build makers =
  let nl, make, make_lanes, make_delta = makers in
  let space = Fault_space.full nl ~cycles:total_cycles in
  let campaign = Campaign.create ~make ~make_lanes ~make_delta ~total_cycles () in
  (space, campaign)

(* A fresh durable run (no journal) must be a drop-in replacement for the
   plain engines: bit-identical statistics for the same seed. *)
let test_durable_matches_run_sample () =
  let space, campaign = build (avr_makers ()) in
  let seed = 7 in
  let plain =
    Campaign.run_sample campaign ~space ~rng:(Prng.create seed) ~n:n_samples ()
  in
  let durable = Durable.run campaign ~space ~seed ~n:n_samples () in
  check_stats "scalar" plain durable.Durable.stats;
  check_bool "completed" true durable.Durable.completed;
  let batched =
    Durable.run campaign ~space ~seed ~n:n_samples ~batched:true ()
  in
  check_stats "batched" plain batched.Durable.stats;
  let delta =
    Durable.run campaign ~space ~seed ~n:n_samples ~kernel:Campaign.Delta ()
  in
  check_stats "delta" plain delta.Durable.stats;
  (* ~batched:true and a conflicting ~kernel must be rejected. *)
  match
    Durable.run campaign ~space ~seed ~n:1 ~batched:true ~kernel:Campaign.Delta ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting ~batched/~kernel must raise"

(* Kill/resume bit-identity: run to completion for the reference stats,
   then run the same campaign with a stop switch thrown partway, tear the
   journal's tail (as a SIGKILL mid-append would), resume, and require
   statistics bit-identical to the uninterrupted run. *)
let check_kill_resume label makers ~jobs ~kernel =
  let space, campaign = build makers in
  let seed = 13 in
  let ident = ("test", label) in
  let run ?journal ?resume ?should_stop () =
    Durable.run campaign ~space ~seed ~n:n_samples ~ident ~jobs ~kernel
      ~records_per_segment:64 ?journal ?resume ?should_stop ()
  in
  let reference = run () in
  check_bool (label ^ ": reference complete") true reference.Durable.completed;
  let dir = scratch_dir () in
  (* The batched engine polls once per window (~250 samples), the
     sequential kernels once per sample; pick a threshold that stops
     every engine partway. *)
  let stop_after = if kernel = Campaign.Batched then 1 else 120 in
  let polls = Atomic.make 0 in
  let interrupted =
    run ~journal:dir
      ~should_stop:(fun () ->
        Atomic.incr polls;
        Atomic.get polls > stop_after)
      ()
  in
  check_bool (label ^ ": interrupted early") false interrupted.Durable.completed;
  append_garbage (Filename.concat dir "active.bin") 7;
  let resumed = run ~journal:dir ~resume:true () in
  check_bool (label ^ ": resumed complete") true resumed.Durable.completed;
  check_bool (label ^ ": recovered something") true (resumed.Durable.recovered > 0);
  check_bool
    (label ^ ": recovered partially")
    true
    (resumed.Durable.recovered < n_samples);
  check_int (label ^ ": torn bytes dropped") 7 resumed.Durable.dropped_bytes;
  check_stats label reference.Durable.stats resumed.Durable.stats;
  rm_rf dir

let test_kill_resume_avr_scalar () =
  check_kill_resume "avr-scalar" (avr_makers ()) ~jobs:1 ~kernel:Campaign.Scalar
let test_kill_resume_avr_jobs () =
  check_kill_resume "avr-jobs4" (avr_makers ()) ~jobs:4 ~kernel:Campaign.Scalar
let test_kill_resume_avr_batched () =
  check_kill_resume "avr-batched" (avr_makers ()) ~jobs:1 ~kernel:Campaign.Batched
let test_kill_resume_avr_delta () =
  check_kill_resume "avr-delta" (avr_makers ()) ~jobs:1 ~kernel:Campaign.Delta
let test_kill_resume_msp_scalar () =
  check_kill_resume "msp-scalar" (msp_makers ()) ~jobs:1 ~kernel:Campaign.Scalar
let test_kill_resume_msp_batched () =
  check_kill_resume "msp-batched" (msp_makers ()) ~jobs:1 ~kernel:Campaign.Batched

(* Resuming under a different invocation must refuse with Journal.Error
   (a silent mismatch would make the journal's verdicts mean the wrong
   thing). *)
let test_resume_mismatch () =
  let space, campaign = build (avr_makers ()) in
  let dir = scratch_dir () in
  let r =
    Durable.run campaign ~space ~seed:3 ~n:50 ~ident:("avr", "fib") ~journal:dir ()
  in
  check_bool "complete" true r.Durable.completed;
  (match
     Durable.run campaign ~space ~seed:3 ~n:60 ~ident:("avr", "fib") ~journal:dir ~resume:true ()
   with
  | exception Journal.Error msg -> check_bool "names the field" true (contains msg "samples")
  | _ -> Alcotest.fail "mismatched resume must raise");
  (match
     Durable.run campaign ~space ~seed:4 ~n:50 ~ident:("avr", "fib") ~journal:dir ~resume:true ()
   with
  | exception Journal.Error _ -> ()
  | _ -> Alcotest.fail "mismatched seed must raise");
  rm_rf dir

(* --- a tiny hand-built system for supervisor/sentinel tests ----------- *)

(* figure1_seq with undriven inputs: every flop reloads false each cycle,
   so the golden run is constant and a flipped flop perturbs at most its
   injection cycle. Flipping [a] is invisible on the outputs (f = NAND(a,
   0) = 1 either way) — always benign; flipping [e] inverts output h —
   always SDC. That gives us one honestly-prunable flop and one flop any
   MATE claim about is a lie. *)
let toy_cycles = 8

let toy_campaign () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (nl, make, space, campaign)

let flop_named (nl : Netlist.t) name =
  let found = ref None in
  Array.iter
    (fun (f : Netlist.flop) -> if f.Netlist.flop_name = name then found := Some f.Netlist.flop_id)
    nl.Netlist.flops;
  match !found with
  | Some id -> id
  | None -> Alcotest.fail ("no flop named " ^ name)

let toy_pruner _nl make space ~flop =
  let set = Mateset.build [ (flop, [ Term.always_true ]) ] in
  let trace = System.record (make ()) ~cycles:toy_cycles in
  let triggers = Replay.triggers set trace in
  Replay.pruner set triggers ~space ()

let hooks_of_pruner p =
  {
    Durable.masking = (fun ~flop_id ~cycle -> Replay.masking p ~flop_id ~cycle);
    quarantine = Replay.quarantine p;
    describe = Replay.describe_mate p;
  }

let toy_n = 60

(* Transient failures are retried on fresh systems and leave the
   statistics untouched; a persistent failure becomes [Crashed] for that
   one sample and the campaign still completes. *)
let test_supervisor_retries () =
  let _, _, space, campaign = toy_campaign () in
  let seed = 21 in
  let clean = Durable.run campaign ~space ~seed ~n:toy_n () in
  let transient =
    Durable.run campaign ~space ~seed ~n:toy_n
      ~fault:(fun ~shard:_ ~index ~attempt ->
        if index = 3 && attempt = 0 then failwith "chaos: transient")
      ()
  in
  check_bool "transient retried" true (transient.Durable.retried >= 1);
  check_stats "transient stats unchanged" clean.Durable.stats transient.Durable.stats;
  let persistent =
    Durable.run campaign ~space ~seed ~n:toy_n ~retries:2
      ~fault:(fun ~shard:_ ~index ~attempt:_ ->
        if index = 5 then failwith "chaos: persistent")
      ()
  in
  check_bool "persistent completes" true persistent.Durable.completed;
  check_int "persistent crashed" 1 persistent.Durable.stats.Campaign.crashed;
  check_int "persistent retried" 3 persistent.Durable.retried;
  check_int "one fewer injection" (clean.Durable.stats.Campaign.injections - 1)
    persistent.Durable.stats.Campaign.injections

(* The watchdog kills over-budget experiments; the supervisor records
   them as crashed and the campaign finishes. A generous budget changes
   nothing. Runs on the AVR core: its experiments genuinely consume many
   simulated cycles (the toy circuit resolves every fault within one). *)
let test_watchdog_budget () =
  let n = 100 in
  let seed = 22 in
  let space, campaign = build (avr_makers ()) in
  let clean = Durable.run campaign ~space ~seed ~n () in
  let generous = Durable.run campaign ~space ~seed ~n ~budget:1_000_000 () in
  check_stats "generous budget is invisible" clean.Durable.stats generous.Durable.stats;
  (* A fresh campaign so the clean run's memoized verdicts cannot rescue
     over-budget experiments. *)
  let space, campaign = build (avr_makers ()) in
  let starved = Durable.run campaign ~space ~seed ~n ~budget:1 ~retries:1 () in
  check_bool "starved completes" true starved.Durable.completed;
  check_bool "some experiments crash" true (starved.Durable.stats.Campaign.crashed > 0);
  check_int "accounting closes" n
    (starved.Durable.stats.Campaign.injections + starved.Durable.stats.Campaign.skipped
   + starved.Durable.stats.Campaign.crashed)

(* Sound MATE + audit 1.0: every pruned fault is injected for auditing,
   confirmed benign, and counted as skipped — statistics identical to the
   unaudited pruned run, zero violations, zero quarantines. *)
let test_audit_sound_mate () =
  let nl, make, space, campaign = toy_campaign () in
  let seed = 23 in
  let a = flop_named nl "a" in
  let p0 = toy_pruner nl make space ~flop:a in
  let skip ~flop_id ~cycle = Replay.pruned p0 ~flop_id ~cycle in
  let unaudited = Durable.run campaign ~space ~seed ~n:toy_n ~skip () in
  check_bool "something was pruned" true (unaudited.Durable.stats.Campaign.skipped > 0);
  let p1 = toy_pruner nl make space ~flop:a in
  let audited =
    Durable.run campaign ~space ~seed ~n:toy_n
      ~skip:(fun ~flop_id ~cycle -> Replay.pruned p1 ~flop_id ~cycle)
      ~audit:(1.0, hooks_of_pruner p1) ()
  in
  check_stats "audit of a sound MATE is invisible" unaudited.Durable.stats audited.Durable.stats;
  check_int "every pruned fault audited" unaudited.Durable.stats.Campaign.skipped
    audited.Durable.audit.Durable.audited;
  check_int "no violations" 0 (List.length audited.Durable.audit.Durable.violations);
  check_int "no quarantines" 0 (List.length audited.Durable.audit.Durable.quarantined);
  check_bool "pruner untouched" true (Replay.quarantined p1 = [])

(* Unsound MATE (claims flop e benign; flipping e is always SDC): the
   sentinel catches the first audited e-fault, quarantines the MATE, and
   the campaign degrades to injecting e's faults — final statistics equal
   the completely unpruned run, and nothing aborts. *)
let test_audit_quarantines_unsound_mate () =
  let nl, make, space, campaign = toy_campaign () in
  let seed = 24 in
  let clean = Durable.run campaign ~space ~seed ~n:toy_n () in
  let p = toy_pruner nl make space ~flop:(flop_named nl "e") in
  let audited =
    Durable.run campaign ~space ~seed ~n:toy_n
      ~skip:(fun ~flop_id ~cycle -> Replay.pruned p ~flop_id ~cycle)
      ~audit:(1.0, hooks_of_pruner p) ()
  in
  check_bool "completes despite violations" true audited.Durable.completed;
  check_int "no crashes" 0 audited.Durable.stats.Campaign.crashed;
  check_bool "violation detected" true (audited.Durable.audit.Durable.violations <> []);
  check_bool "MATE quarantined" true
    (List.mem 0 audited.Durable.audit.Durable.quarantined && Replay.quarantined p = [ 0 ]);
  (let v = List.hd audited.Durable.audit.Durable.violations in
   check_int "violating flop" (flop_named nl "e") v.Durable.v_flop_id;
   check_bool "real verdict is non-benign" true (v.Durable.v_verdict <> Campaign.Benign);
   check_bool "names the MATE" true (List.mem 0 v.Durable.v_mates));
  check_stats "degrades to the unpruned statistics" clean.Durable.stats audited.Durable.stats

(* Quarantine events live in the journal: a resumed run re-applies them
   to its (fresh) pruner before re-running anything, so the statistics
   still converge to the unpruned run's. *)
let test_audit_resume_replays_quarantine () =
  let nl, make, space, campaign = toy_campaign () in
  let seed = 25 in
  let clean = Durable.run campaign ~space ~seed ~n:toy_n () in
  let e = flop_named nl "e" in
  let dir = scratch_dir () in
  let p0 = toy_pruner nl make space ~flop:e in
  let polls = ref 0 in
  let first =
    Durable.run campaign ~space ~seed ~n:toy_n
      ~skip:(fun ~flop_id ~cycle -> Replay.pruned p0 ~flop_id ~cycle)
      ~audit:(1.0, hooks_of_pruner p0) ~journal:dir
      ~should_stop:(fun () ->
        incr polls;
        (* Stop once the sentinel has fired at least once. *)
        Replay.quarantined p0 <> [] && !polls > 2)
      ()
  in
  check_bool "stopped early" false first.Durable.completed;
  check_bool "quarantine journaled before stop" true (Replay.quarantined p0 = [ 0 ]);
  let p1 = toy_pruner nl make space ~flop:e in
  let resumed =
    Durable.run campaign ~space ~seed ~n:toy_n
      ~skip:(fun ~flop_id ~cycle -> Replay.pruned p1 ~flop_id ~cycle)
      ~audit:(1.0, hooks_of_pruner p1) ~journal:dir ~resume:true ()
  in
  check_bool "resumed completes" true resumed.Durable.completed;
  check_bool "quarantine replayed into the fresh pruner" true (Replay.quarantined p1 = [ 0 ]);
  check_stats "resumed equals unpruned" clean.Durable.stats resumed.Durable.stats;
  rm_rf dir

(* Satellite fix: a skip/prune lookup for a flop outside the fault space
   is an explicit error path (logged once, counted), never a silent
   "not pruned" that hides a stale fault list. *)
let test_pruner_unknown_flop () =
  let nl, make, space, _ = toy_campaign () in
  let p = toy_pruner nl make space ~flop:(flop_named nl "a") in
  check_int "starts clean" 0 (Replay.unknown_count p);
  check_bool "unknown flop injects" false (Replay.pruned p ~flop_id:9999 ~cycle:0);
  check_bool "unknown flop masks nothing" true (Replay.masking p ~flop_id:9999 ~cycle:0 = []);
  check_int "counted" 2 (Replay.unknown_count p);
  check_bool "known flop still pruned" true
    (Replay.pruned p ~flop_id:(flop_named nl "a") ~cycle:0)

let suite =
  [
    Alcotest.test_case "journal round trip and rotation" `Quick test_journal_round_trip;
    Alcotest.test_case "journal torn tail truncation" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal sealed-segment corruption" `Quick test_journal_sealed_corruption;
    Alcotest.test_case "durable matches run_sample" `Slow test_durable_matches_run_sample;
    Alcotest.test_case "kill/resume avr scalar" `Slow test_kill_resume_avr_scalar;
    Alcotest.test_case "kill/resume avr jobs=4" `Slow test_kill_resume_avr_jobs;
    Alcotest.test_case "kill/resume avr batched" `Slow test_kill_resume_avr_batched;
    Alcotest.test_case "kill/resume avr delta" `Slow test_kill_resume_avr_delta;
    Alcotest.test_case "kill/resume msp scalar" `Slow test_kill_resume_msp_scalar;
    Alcotest.test_case "kill/resume msp batched" `Slow test_kill_resume_msp_batched;
    Alcotest.test_case "resume mismatch refused" `Quick test_resume_mismatch;
    Alcotest.test_case "supervisor retries and crash accounting" `Quick test_supervisor_retries;
    Alcotest.test_case "watchdog budget" `Quick test_watchdog_budget;
    Alcotest.test_case "audit: sound MATE is invisible" `Quick test_audit_sound_mate;
    Alcotest.test_case "audit: unsound MATE quarantined" `Quick test_audit_quarantines_unsound_mate;
    Alcotest.test_case "audit: resume replays quarantine" `Quick test_audit_resume_replays_quarantine;
    Alcotest.test_case "pruner: unknown flop is an error path" `Quick test_pruner_unknown_flop;
  ]
