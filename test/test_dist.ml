(* The distributed campaign layer: wire-protocol framing (round-trip,
   truncation, corruption, malformed messages), and coordinator/worker
   chaos paths — stats parity distributed-vs-local on both cores and
   both engines, straggler lease re-dispatch with duplicate dedup, a
   SIGKILLed worker mid-chunk, coordinator kill/resume from its journal,
   and protocol-violating clients that must never corrupt a campaign. *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Durable = Pruning_fi.Durable
module Fault_space = Pruning_fi.Fault_space
module Journal = Pruning_fi.Journal
module Proto = Pruning_fi.Proto
module Coordinator = Pruning_fi.Coordinator
module Worker = Pruning_fi.Worker
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Term = Pruning_mate.Term

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-dist-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  d

(* --- wire protocol: frames and messages ------------------------------ *)

let sample_header =
  {
    Journal.core = "avr";
    program = "fib";
    cycles = 120;
    seed = 42;
    samples = 10;
    prune = true;
    audit = 0.;
    shards = 0;
    batched = false;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create 42);
    shard_prng = [||];
  }

let all_msgs =
  [
    Proto.Hello { version = Proto.version; name = "worker-1"; epoch = -1 };
    Proto.Welcome { header = sample_header; suspicion = 2 };
    Proto.Request;
    Proto.Assign
      { Proto.chunk_id = 3; lo = 12; hi = 15; model = 0; model_param = 0; purpose = Proto.Data };
    Proto.Wait;
    Proto.Results
      {
        chunk_id = 3;
        results =
          [|
            (12, Journal.Benign);
            (13, Journal.Latent);
            (14, Journal.Sdc 37);
            (15, Journal.Skipped);
            (16, Journal.Crashed);
          |];
      };
    Proto.Chunk_done { chunk_id = 3 };
    Proto.Heartbeat;
    Proto.Done;
  ]

let test_msg_round_trip () =
  List.iteri
    (fun i m ->
      check_bool (Printf.sprintf "msg %d round-trips" i) true (Proto.decode (Proto.encode m) = m))
    all_msgs

(* The streaming decoder must reassemble frames regardless of how the
   byte stream is sliced — including one byte at a time. *)
let test_decoder_streaming () =
  let wire = String.concat "" (List.map (fun m -> Proto.encode_frame (Proto.encode m)) all_msgs) in
  let run_with step =
    let d = Proto.decoder () in
    let got = ref [] in
    let i = ref 0 in
    while !i < String.length wire do
      let n = min step (String.length wire - !i) in
      Proto.feed d (Bytes.of_string (String.sub wire !i n)) n;
      i := !i + n;
      let continue = ref true in
      while !continue do
        match Proto.next_frame d with
        | None -> continue := false
        | Some payload -> got := Proto.decode payload :: !got
      done
    done;
    check_bool (Printf.sprintf "all frames at step %d" step) true (List.rev !got = all_msgs)
  in
  List.iter run_with [ 1; 3; 7; String.length wire ]

let test_frame_corruption () =
  let frame = Proto.encode_frame (Proto.encode Proto.Request) in
  (* Flip one payload bit: the CRC must catch it. *)
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt 8 (Char.chr (Char.code (Bytes.get corrupt 8) lxor 0x40));
  let d = Proto.decoder () in
  Proto.feed d corrupt (Bytes.length corrupt);
  (match Proto.next_frame d with
  | exception Proto.Error _ -> ()
  | _ -> Alcotest.fail "corrupt frame must raise");
  (* A length field beyond the cap is rejected before any allocation. *)
  let huge = Bytes.make 8 '\xff' in
  let d = Proto.decoder () in
  Proto.feed d huge 8;
  match Proto.next_frame d with
  | exception Proto.Error _ -> ()
  | _ -> Alcotest.fail "oversized frame length must raise"

let test_frame_sockets () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  List.iter (fun m -> Proto.send a m) all_msgs;
  List.iteri
    (fun i m -> check_bool (Printf.sprintf "socket msg %d" i) true (Proto.recv b = m))
    all_msgs;
  (* Clean EOF at a frame boundary is Closed, not an error... *)
  Unix.close a;
  (match Proto.recv b with
  | exception Proto.Closed -> ()
  | _ -> Alcotest.fail "EOF at boundary must raise Closed");
  Unix.close b;
  (* ...but EOF mid-frame is a truncation error. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame =
    Proto.encode_frame
      (Proto.encode
         (Proto.Assign
            { chunk_id = 1; lo = 0; hi = 9; model = 0; model_param = 0; purpose = Proto.Data }))
  in
  let partial = String.sub frame 0 (String.length frame - 2) in
  ignore (Unix.write_substring a partial 0 (String.length partial));
  Unix.close a;
  (match Proto.recv b with
  | exception Proto.Error _ -> ()
  | _ -> Alcotest.fail "EOF mid-frame must raise Error");
  Unix.close b

let test_malformed_messages () =
  let expect_error label s =
    match Proto.decode s with
    | exception Proto.Error _ -> ()
    | _ -> Alcotest.fail (label ^ " must raise")
  in
  expect_error "empty" "";
  expect_error "unknown tag" "Z";
  expect_error "trailing garbage" (Proto.encode Proto.Request ^ "x");
  expect_error "truncated Assign" "A\x01\x00\x00";
  (* A Results header claiming more entries than the payload could hold. *)
  expect_error "absurd results count" "r\x00\x00\x00\x00\xff\xff\xff\x00";
  expect_error "unknown outcome kind"
    "r\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x09\x00\x00\x00\x00";
  expect_error "bad Welcome header" "W\x03\x00\x00\x00abc"

(* --- coordinator/worker integration ---------------------------------- *)

let toy_cycles = 8
let toy_n = 60
let toy_seed = 21

let toy_parts () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (nl, make, space, campaign)

let toy_engine ?skip () =
  let _, _, space, campaign = toy_parts () in
  { Worker.campaign; space; skip; kernel = Campaign.Scalar }

(* One MATE claiming flop [a] always benign — honestly prunable in this
   circuit, and rebuilt deterministically by every worker. *)
let toy_prune_skip () =
  let nl, make, space, _ = toy_parts () in
  let a = ref (-1) in
  Array.iter
    (fun (f : Netlist.flop) -> if f.Netlist.flop_name = "a" then a := f.Netlist.flop_id)
    nl.Netlist.flops;
  let set = Mateset.build [ (!a, [ Term.always_true ]) ] in
  let trace = System.record (make ()) ~cycles:toy_cycles in
  let triggers = Replay.triggers set trace in
  let p = Replay.pruner set triggers ~space () in
  fun ~flop_id ~cycle -> Replay.pruned p ~flop_id ~cycle

let make_header ?(core = "toy") ?(program = "toy") ?(cycles = toy_cycles) ?(samples = toy_n)
    ?(seed = toy_seed) ?(prune = false) () =
  {
    Journal.core;
    program;
    cycles;
    seed;
    samples;
    prune;
    audit = 0.;
    shards = 0;
    batched = false;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create seed);
    shard_prng = [||];
  }

let test_config =
  {
    Coordinator.default_config with
    Coordinator.chunk_size = 4;
    lease = 5.;
    tick = 0.01;
    drain = 10.;
  }

(* Thread-collected events, and serve/work running off the main thread. *)
let event_log () =
  let lock = Mutex.create () in
  let events = ref [] in
  let push e =
    Mutex.lock lock;
    events := e :: !events;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let es = List.rev !events in
    Mutex.unlock lock;
    es
  in
  (push, all)

let wait_for ?(timeout = 20.) pred what =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.01
  done;
  if not (pred ()) then Alcotest.fail ("timed out waiting for " ^ what)

let serve_bg coord ~header ?journal ?resume ?should_stop ?on_event () =
  let result = ref None in
  let thread =
    Thread.create
      (fun () ->
        result :=
          Some
            (match Coordinator.serve coord ~header ?journal ?resume ?should_stop ?on_event () with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  let join () =
    Thread.join thread;
    match !result with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false
  in
  join

let work_bg ~port ~name ~resolve ?retry_backoff ?reconnect_backoff ?max_reconnects
    ?results_per_frame ?heartbeat ?fault () =
  let report = ref None in
  let thread =
    Thread.create
      (fun () ->
        report :=
          Some
            (match
               Worker.run ~host:"127.0.0.1" ~port ~resolve ~name ?retry_backoff ?reconnect_backoff
                 ?max_reconnects ?results_per_frame ?heartbeat ?fault ()
             with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  let join () =
    Thread.join thread;
    match !report with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false
  in
  join

let toy_reference ?skip () =
  let _, _, space, campaign = toy_parts () in
  Campaign.run_sample campaign ~space ~rng:(Prng.create toy_seed) ~n:toy_n ?skip ()

(* Plain fleet, no chaos: three workers must reproduce the local stats
   bit-for-bit, with and without a deterministic pruner on every node. *)
let test_parity_toy () =
  List.iter
    (fun prune ->
      let reference =
        toy_reference ?skip:(if prune then Some (toy_prune_skip ()) else None) ()
      in
      let coord = Coordinator.create ~config:test_config () in
      let port = Coordinator.port coord in
      let join = serve_bg coord ~header:(make_header ~prune ()) () in
      let workers =
        List.init 3 (fun i ->
            work_bg ~port
              ~name:(Printf.sprintf "w%d" i)
              ~resolve:(fun _ ->
                toy_engine ?skip:(if prune then Some (toy_prune_skip ()) else None) ())
              ())
      in
      let reports = List.map (fun j -> j ()) workers in
      let r = join () in
      let label = if prune then "toy pruned" else "toy" in
      check_bool (label ^ ": completed") true r.Coordinator.completed;
      check_int (label ^ ": workers") 3 r.Coordinator.workers;
      check_int (label ^ ": mismatches") 0 r.Coordinator.mismatches;
      check_stats label reference r.Coordinator.stats;
      List.iter
        (fun rep -> check_bool (label ^ ": worker done") true (rep.Worker.ended = Worker.Campaign_done))
        reports;
      check_bool (label ^ ": all samples submitted once or more") true
        (List.fold_left (fun acc rep -> acc + rep.Worker.submitted) 0 reports >= toy_n);
      if prune then check_bool (label ^ ": something pruned") true (reference.Campaign.skipped > 0))
    [ false; true ]

(* Distributed-vs-local parity on the real cores, with a mixed fleet:
   one scalar, one batched and one delta worker (their verdicts are
   bit-identical, so mixing kernels is legal). *)
let check_parity_core label makers =
  let build () =
    let nl, make, make_lanes, make_delta = makers in
    let space = Fault_space.full nl ~cycles:120 in
    let campaign = Campaign.create ~make ~make_lanes ~make_delta ~total_cycles:120 () in
    (space, campaign)
  in
  let n = 200 in
  let seed = 7 in
  let reference =
    let space, campaign = build () in
    Campaign.run_sample campaign ~space ~rng:(Prng.create seed) ~n ()
  in
  let config = { test_config with Coordinator.chunk_size = 16 } in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let header = make_header ~core:label ~program:"fib" ~cycles:120 ~samples:n ~seed () in
  let join = serve_bg coord ~header () in
  let engine kernel _ =
    let space, campaign = build () in
    { Worker.campaign; space; skip = None; kernel }
  in
  let w1 = work_bg ~port ~name:"scalar" ~resolve:(engine Campaign.Scalar) () in
  let w2 = work_bg ~port ~name:"batched" ~resolve:(engine Campaign.Batched) () in
  let w3 = work_bg ~port ~name:"delta" ~resolve:(engine Campaign.Delta) () in
  let r1 = w1 () and r2 = w2 () and r3 = w3 () in
  let r = join () in
  check_bool (label ^ ": completed") true r.Coordinator.completed;
  check_int (label ^ ": mismatches") 0 r.Coordinator.mismatches;
  check_stats (label ^ ": mixed fleet parity") reference r.Coordinator.stats;
  check_bool (label ^ ": all finished") true
    (r1.Worker.ended = Worker.Campaign_done
    && r2.Worker.ended = Worker.Campaign_done
    && r3.Worker.ended = Worker.Campaign_done)

let avr_makers () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  ( nl,
    (fun () -> System.create_avr ~netlist:nl ~program "avr/fib"),
    (fun () -> System.create_avr_lanes ~netlist:nl ~program "avr/fib"),
    fun ~trace -> System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib" )

let msp_makers () =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  ( nl,
    (fun () -> System.create_msp ~netlist:nl ~program "msp/fib"),
    (fun () -> System.create_msp_lanes ~netlist:nl ~program "msp/fib"),
    fun ~trace -> System.create_msp_delta ~netlist:nl ~program ~trace "msp/fib" )

let test_parity_avr () = check_parity_core "avr" (avr_makers ())
let test_parity_msp () = check_parity_core "msp430" (msp_makers ())

(* A straggler: stalls mid-chunk long past its lease, so the chunk is
   re-dispatched and recomputed by the healthy worker — then the
   straggler wakes up and delivers anyway. Its late verdicts must be
   deduplicated (asserted equal), never double-counted. *)
let test_straggler_dedup () =
  let reference = toy_reference () in
  let config = { test_config with Coordinator.lease = 0.3 } in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ()) ~on_event:push () in
  let stalled = ref false in
  let straggler =
    work_bg ~port ~name:"straggler"
      ~resolve:(fun _ -> toy_engine ())
      ~heartbeat:30. ~results_per_frame:1
      ~fault:(fun ~chunk_id:_ ~index:_ ~attempt:_ ->
        if not !stalled then begin
          stalled := true;
          Unix.sleepf 1.2
        end)
      ()
  in
  (* Let the straggler grab (and stall on) a chunk before the healthy
     worker joins, so the re-dispatch is guaranteed to happen. *)
  wait_for (fun () -> !stalled) "straggler to stall";
  let healthy = work_bg ~port ~name:"healthy" ~resolve:(fun _ -> toy_engine ()) () in
  let r_straggler = straggler () in
  let r_healthy = healthy () in
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_stats "straggler parity" reference r.Coordinator.stats;
  check_bool "lease was re-dispatched" true (r.Coordinator.redispatched >= 1);
  check_bool "late duplicates deduplicated" true (r.Coordinator.duplicates >= 1);
  check_int "no mismatches" 0 r.Coordinator.mismatches;
  check_bool "straggler still finished" true (r_straggler.Worker.ended = Worker.Campaign_done);
  check_bool "healthy finished" true (r_healthy.Worker.ended = Worker.Campaign_done);
  check_bool "expiry event emitted" true
    (List.exists
       (function
         | Coordinator.Redispatched { reason = "lease expired"; _ } -> true
         | _ -> false)
       (all ()))

(* The acceptance scenario: three workers, one SIGKILLed mid-chunk (a
   real OS process, killed for real), campaign completes with stats
   bit-identical to the single-process run. The victim is the
   dist_victim helper executable: it handshakes, takes a chunk lease,
   and stalls forever on its first experiment. (Unix.fork is off limits
   here — earlier suites spawn domains — so it is a spawned process.) *)
let test_sigkill_worker () =
  let reference = toy_reference () in
  let coord = Coordinator.create ~config:test_config () in
  let port = Coordinator.port coord in
  let victim_exe = Filename.concat (Filename.dirname Sys.executable_name) "dist_victim.exe" in
  let victim =
    Unix.create_process victim_exe
      [| victim_exe; string_of_int port |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ()) ~on_event:push () in
  let victim_leased () =
    List.exists
      (function
        | Coordinator.Assigned { worker = "victim"; _ } -> true
        | _ -> false)
      (all ())
  in
  wait_for victim_leased "the victim to hold a chunk lease";
  Unix.kill victim Sys.sigkill;
  let _, status = Unix.waitpid [] victim in
  check_bool "victim really SIGKILLed" true (status = Unix.WSIGNALED Sys.sigkill);
  let w1 = work_bg ~port ~name:"w1" ~resolve:(fun _ -> toy_engine ()) () in
  let w2 = work_bg ~port ~name:"w2" ~resolve:(fun _ -> toy_engine ()) () in
  let r1 = w1 () and r2 = w2 () in
  let r = join () in
  check_bool "completed without the victim" true r.Coordinator.completed;
  check_stats "SIGKILL parity" reference r.Coordinator.stats;
  check_int "three workers joined" 3 r.Coordinator.workers;
  check_bool "victim's chunk re-dispatched" true (r.Coordinator.redispatched >= 1);
  check_int "no mismatches" 0 r.Coordinator.mismatches;
  check_bool "survivors finished" true
    (r1.Worker.ended = Worker.Campaign_done && r2.Worker.ended = Worker.Campaign_done);
  check_bool "victim death observed" true
    (List.exists
       (function
         | Coordinator.Left { worker = "victim"; _ } -> true
         | _ -> false)
       (all ()))

(* Coordinator kill/resume: stop the coordinator partway (its worker is
   left to give up reconnecting), then resume from the journal with a
   fresh coordinator and worker — recovered verdicts are not recomputed
   and the final stats match the uninterrupted local run. The journal is
   marked distributed (shards = 0), so a local Durable resume on it must
   refuse. *)
let test_coordinator_resume () =
  let reference = toy_reference () in
  let dir = scratch_dir () in
  let header = make_header () in
  let seen = Atomic.make 0 in
  let coord1 = Coordinator.create ~config:test_config () in
  let port1 = Coordinator.port coord1 in
  let join1 =
    serve_bg coord1 ~header ~journal:dir
      ~should_stop:(fun () -> Atomic.get seen >= 20)
      ~on_event:(function
        | Coordinator.Progress { done_; _ } -> Atomic.set seen done_
        | _ -> ())
      ()
  in
  let fast_giveup = { Pruning_util.Backoff.base = 0.01; cap = 0.05; factor = 2. } in
  let w1 =
    work_bg ~port:port1 ~name:"phase1"
      ~resolve:(fun _ -> toy_engine ())
      ~results_per_frame:1 ~reconnect_backoff:fast_giveup ~max_reconnects:2 ()
  in
  let r1 = join1 () in
  check_bool "phase 1 interrupted" false r1.Coordinator.completed;
  (match (w1 ()).Worker.ended with
  | Worker.Gave_up _ -> ()
  | _ -> Alcotest.fail "orphaned worker must give up reconnecting");
  (* A distributed journal is not resumable by the local runner. *)
  (let _, _, space, campaign = toy_parts () in
   match
     Durable.run campaign ~space ~seed:toy_seed ~n:toy_n ~ident:("toy", "toy") ~journal:dir
       ~resume:true ()
   with
  | exception Journal.Error _ -> ()
  | _ -> Alcotest.fail "local resume of a distributed journal must refuse");
  let coord2 = Coordinator.create ~config:test_config () in
  let port2 = Coordinator.port coord2 in
  let join2 = serve_bg coord2 ~header ~journal:dir ~resume:true () in
  let w2 = work_bg ~port:port2 ~name:"phase2" ~resolve:(fun _ -> toy_engine ()) () in
  let rep2 = w2 () in
  let r2 = join2 () in
  check_bool "phase 2 completed" true r2.Coordinator.completed;
  check_bool "recovered some verdicts" true (r2.Coordinator.recovered >= 20);
  check_bool "recovered only part" true (r2.Coordinator.recovered < toy_n);
  check_stats "resume parity" reference r2.Coordinator.stats;
  check_bool "phase 2 worker done" true (rep2.Worker.ended = Worker.Campaign_done);
  check_bool "phase 2 did real work" true (rep2.Worker.submitted > 0);
  rm_rf dir

(* Misbehaving clients: a wrong protocol version, out-of-range sample
   indices, and a verdict that contradicts the recorded one. Each only
   costs the offender its connection; the campaign completes with clean
   statistics either way, and the disagreement is surfaced. *)
let test_rogue_clients () =
  let reference = toy_reference () in
  let coord = Coordinator.create ~config:test_config () in
  let port = Coordinator.port coord in
  let join = serve_bg coord ~header:(make_header ()) () in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  let expect_disconnect label fd =
    match Proto.recv fd with
    | exception (Proto.Closed | Proto.Error _ | Unix.Unix_error _) -> Unix.close fd
    | _ -> Alcotest.fail (label ^ ": rogue client must be disconnected")
  in
  (* Wrong protocol version: refused before any campaign state. *)
  let bad_version = connect () in
  Proto.send bad_version (Proto.Hello { version = 99; name = "from-the-future"; epoch = -1 });
  expect_disconnect "bad version" bad_version;
  (* Speaking before Hello: refused. *)
  let no_hello = connect () in
  Proto.send no_hello Proto.Request;
  expect_disconnect "no hello" no_hello;
  (* A rogue that holds its connection open while an honest worker runs
     the campaign, then submits an out-of-range index... *)
  let rogue = connect () in
  Proto.send rogue (Proto.Hello { version = Proto.version; name = "rogue"; epoch = -1 });
  (match Proto.recv rogue with
  | Proto.Welcome { header = h; _ } -> check_bool "rogue got the real header" true (h = make_header ())
  | _ -> Alcotest.fail "expected Welcome");
  let rogue2 = connect () in
  Proto.send rogue2 (Proto.Hello { version = Proto.version; name = "rogue2"; epoch = -1 });
  (match Proto.recv rogue2 with
  | Proto.Welcome _ -> ()
  | _ -> Alcotest.fail "expected Welcome");
  let worker = work_bg ~port ~name:"honest" ~resolve:(fun _ -> toy_engine ()) () in
  let rep = worker () in
  check_bool "honest worker done" true (rep.Worker.ended = Worker.Campaign_done);
  (* ...the campaign is complete; now both rogues strike during the
     coordinator's drain window. Sdc toy_cycles+999 can never be a real
     verdict, so this is a guaranteed determinism mismatch. *)
  Proto.send rogue2 (Proto.Results { chunk_id = 0; results = [| (toy_n + 5, Journal.Benign) |] });
  expect_disconnect "out-of-range index" rogue2;
  Proto.send rogue (Proto.Results { chunk_id = 0; results = [| (0, Journal.Sdc 999) |] });
  expect_disconnect "mismatched verdict" rogue;
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_int "one mismatch surfaced" 1 r.Coordinator.mismatches;
  (* A drain-phase dissenter cannot recruit voters: the dispute counts as
     unresolved (exit 19 upstairs) and the recorded verdict stands. *)
  check_int "drain-time dispute unresolved" 1 r.Coordinator.arb_unresolved;
  check_stats "first verdict kept" reference r.Coordinator.stats

let suite =
  [
    Alcotest.test_case "messages round-trip" `Quick test_msg_round_trip;
    Alcotest.test_case "streaming decoder reassembly" `Quick test_decoder_streaming;
    Alcotest.test_case "frame corruption detected" `Quick test_frame_corruption;
    Alcotest.test_case "frames over sockets, EOF semantics" `Quick test_frame_sockets;
    Alcotest.test_case "malformed messages rejected" `Quick test_malformed_messages;
    Alcotest.test_case "parity: toy fleet, plain and pruned" `Quick test_parity_toy;
    Alcotest.test_case "parity: avr mixed scalar+batched+delta fleet" `Slow test_parity_avr;
    Alcotest.test_case "parity: msp430 mixed scalar+batched+delta fleet" `Slow test_parity_msp;
    Alcotest.test_case "straggler lease re-dispatch + dedup" `Quick test_straggler_dedup;
    Alcotest.test_case "SIGKILLed worker mid-chunk" `Quick test_sigkill_worker;
    Alcotest.test_case "coordinator kill/resume from journal" `Quick test_coordinator_resume;
    Alcotest.test_case "rogue clients cannot corrupt a campaign" `Quick test_rogue_clients;
  ]
