open Helpers
module Fault_space = Pruning_fi.Fault_space
module Oracle = Pruning_fi.Oracle
module Campaign = Pruning_fi.Campaign
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs

let test_fault_space_sizes () =
  let nl = counter_netlist () in
  let space = Fault_space.full nl ~cycles:100 in
  check_int "full size" 400 (Fault_space.size space);
  let b = Netlist.Builder.create "mixed" in
  let mk name =
    let q = Netlist.Builder.add_wire b (name ^ "_q") in
    Netlist.Builder.add_flop b name ~d:q ~q
  in
  mk "rf_1[0]";
  mk "rf_1[1]";
  mk "pc[0]";
  let nl2 = Netlist.Builder.finalize b in
  let space2 = Fault_space.without_prefix nl2 ~prefix:"rf_" ~cycles:10 in
  check_int "without rf" 10 (Fault_space.size space2);
  check_bool "flop_index present" true (Fault_space.flop_index space2 2 = Some 0);
  check_bool "flop_index excluded" true (Fault_space.flop_index space2 0 = None);
  Alcotest.check_raises "bad cycles" (Invalid_argument "Fault_space: cycles must be positive")
    (fun () -> ignore (Fault_space.full nl ~cycles:0))

(* A circuit where masking is fully understood: out = sel ? b : a, all of
   a, b, sel registered. A fault in register a is one-cycle benign iff
   sel = 1 (out unchanged AND a's next value overwrites the flip, which it
   does because a_reg reloads from the input every cycle). *)
let mux_netlist () =
  let open Signal in
  let c = create_circuit "muxreg" in
  let a_in = input c "a_in" 1 in
  let b_in = input c "b_in" 1 in
  let s_in = input c "s_in" 1 in
  let a = reg c "a" 1 in
  let b = reg c "b" 1 in
  let s = reg c "s" 1 in
  connect a a_in;
  connect b b_in;
  connect s s_in;
  output c "out" (mux2 (q s) (q b) (q a));
  Synth.to_netlist c

let test_oracle_mux () =
  let nl = mux_netlist () in
  let sim = Sim.create nl in
  let flop name = (Netlist.find_flop nl name).Netlist.flop_id in
  (* Load a=1, b=0, s=1. *)
  Sim.set_port sim "a_in" 1;
  Sim.set_port sim "b_in" 0;
  Sim.set_port sim "s_in" 1;
  Sim.step sim ();
  Sim.eval sim;
  (* sel=1: out = b; fault in a is invisible and overwritten -> benign. *)
  check_bool "a benign when deselected" true (Oracle.one_cycle_benign sim ~flop_id:(flop "a[0]"));
  check_bool "b effective when selected" false (Oracle.one_cycle_benign sim ~flop_id:(flop "b[0]"));
  (* sel fault: flips out from b=0 to a=1 -> effective. *)
  check_bool "s effective (a<>b)" false (Oracle.one_cycle_benign sim ~flop_id:(flop "s[0]"));
  (* Make a = b: now the select fault is masked. *)
  Sim.set_port sim "b_in" 1;
  Sim.step sim ();
  Sim.eval sim;
  check_bool "s benign (a=b)" true (Oracle.one_cycle_benign sim ~flop_id:(flop "s[0]"))

let test_oracle_restores_state () =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~cycles:5 ();
  Sim.eval sim;
  let before = Array.init (Netlist.n_wires nl) (fun w -> Sim.peek sim w) in
  ignore (Oracle.one_cycle_benign sim ~flop_id:0);
  let after = Array.init (Netlist.n_wires nl) (fun w -> Sim.peek sim w) in
  check_bool "state restored" true (before = after)

let test_oracle_sweep_counter () =
  (* In an always-enabled counter every flop feeds the adder and the
     output port, so every fault is effective in its first cycle. *)
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  let verdicts = Oracle.sweep sim ~flops:nl.Netlist.flops ~cycles:8 in
  Array.iteri
    (fun cycle row ->
      Array.iteri
        (fun i benign ->
          check_bool (Printf.sprintf "cycle %d flop %d" cycle i) false benign)
        row)
    verdicts;
  check_int "sim advanced" 8 (Sim.cycle sim)

let test_campaign_verdicts () =
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let make () = System.create_avr ~program "fib" in
  let campaign = Campaign.create ~make ~total_cycles:300 () in
  let nl = (make ()).System.netlist in
  (* A fault in the high PC bit early on derails the program: SDC. *)
  let pc11 = (Netlist.find_flop nl "pc[11]").Netlist.flop_id in
  (match Campaign.inject campaign ~flop_id:pc11 ~cycle:5 with
  | Campaign.Sdc _ -> ()
  | v -> Alcotest.failf "expected SDC, got %s" (Format.asprintf "%a" Campaign.pp_verdict v));
  (* A fault in a never-used register r2 after its last architectural use:
     r2 is not read by fib, but it is still netlist state: Latent. *)
  let r2 = (Netlist.find_flop nl "rf_2[0]").Netlist.flop_id in
  (match Campaign.inject campaign ~flop_id:r2 ~cycle:50 with
  | Campaign.Latent -> ()
  | v ->
    Alcotest.failf "expected latent, got %s" (Format.asprintf "%a" Campaign.pp_verdict v));
  (* A fault in the instruction register's valid bit during the halt loop
     at worst re-executes the jump: check it classifies deterministically
     and injection is reproducible. *)
  let v1 = Campaign.inject campaign ~flop_id:pc11 ~cycle:5 in
  let v2 = Campaign.inject campaign ~flop_id:pc11 ~cycle:5 in
  check_bool "deterministic" true (v1 = v2)

let test_campaign_benign_via_oracle_agreement () =
  (* Any fault the one-cycle oracle calls benign must be benign in the
     full campaign as well (sufficiency of intra-cycle masking). *)
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let make () = System.create_avr ~program "fib" in
  let campaign = Campaign.create ~make ~total_cycles:260 () in
  let sys = make () in
  let nl = sys.System.netlist in
  let rng = Prng.create 2024 in
  let flops = nl.Netlist.flops in
  let checked = ref 0 in
  let cycle = ref 0 in
  while !checked < 25 && !cycle < 250 do
    Sim.eval sys.System.sim;
    for _ = 1 to 3 do
      let f = flops.(Prng.int rng (Array.length flops)) in
      if !checked < 25 && Oracle.one_cycle_benign sys.System.sim ~flop_id:f.Netlist.flop_id
      then begin
        incr checked;
        match Campaign.inject campaign ~flop_id:f.Netlist.flop_id ~cycle:!cycle with
        | Campaign.Benign -> ()
        | v ->
          Alcotest.failf "oracle-benign fault (%s, %d) became %s" f.Netlist.flop_name !cycle
            (Format.asprintf "%a" Campaign.pp_verdict v)
      end
    done;
    Sim.latch sys.System.sim;
    incr cycle
  done;
  check_bool "found benign samples" true (!checked > 0)

let test_campaign_sampling () =
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let make () = System.create_avr ~program "fib" in
  let campaign = Campaign.create ~make ~total_cycles:150 () in
  let nl = (make ()).System.netlist in
  let space = Fault_space.full nl ~cycles:150 in
  let rng = Prng.create 7 in
  let stats = Campaign.run_sample campaign ~space ~rng ~n:30 () in
  check_int "all accounted" 30 (stats.Campaign.benign + stats.Campaign.latent + stats.Campaign.sdc);
  check_int "all injected" 30 stats.Campaign.injections;
  check_int "none skipped" 0 stats.Campaign.skipped;
  (* With a skip-everything filter no experiments run: skips are counted
     in their own field, keeping injections = benign + latent + sdc. *)
  let stats2 =
    Campaign.run_sample campaign ~space ~rng ~n:10 ~skip:(fun ~flop_id:_ ~cycle:_ -> true) ()
  in
  check_int "all skipped" 0 stats2.Campaign.injections;
  check_int "skipped counted apart" 10 stats2.Campaign.skipped;
  check_int "no verdicts for skips" 0
    (stats2.Campaign.benign + stats2.Campaign.latent + stats2.Campaign.sdc)

let suite =
  [
    Alcotest.test_case "fault space sizes" `Quick test_fault_space_sizes;
    Alcotest.test_case "oracle on mux circuit" `Quick test_oracle_mux;
    Alcotest.test_case "oracle restores state" `Quick test_oracle_restores_state;
    Alcotest.test_case "oracle sweep counter" `Quick test_oracle_sweep_counter;
    Alcotest.test_case "campaign verdicts" `Quick test_campaign_verdicts;
    Alcotest.test_case "campaign agrees with oracle" `Quick test_campaign_benign_via_oracle_agreement;
    Alcotest.test_case "campaign sampling" `Quick test_campaign_sampling;
  ]
