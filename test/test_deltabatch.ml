(* The batched activity-gated delta kernel.

   Evidence layers:
   - batched-delta campaign verdicts — SDC cycles included — are
     bit-identical to the scalar checkpointed engine and the
     single-fault delta engine over hundreds of random faults on both
     cores, across checkpoint intervals and lane widths;
   - a qcheck property re-asserts the same triple identity for random
     fault packs, lane counts and checkpoint intervals;
   - all four run_sample engines produce identical stats for equal
     seeds, with and without a skip predicate;
   - the retirement property: every mid-pass Benign retirement the
     batched engine performs (lane dirty set emptied before the
     horizon) is confirmed Benign by scalar replay of that fault. *)

open Helpers
module Deltabatch = Pruning_sim.Deltabatch
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs

let total_cycles = 120
let n_pairs = 400

(* Makers over one shared synthesized core per ISA (synthesis is the
   expensive part; every campaign below reuses the netlist). *)
let avr_makers =
  lazy
    (let nl = System.avr_netlist () in
     let program = Avr_asm.assemble Programs.avr_fib_halting in
     ( nl,
       (fun () -> System.create_avr ~netlist:nl ~program "avr/fib"),
       (fun ~trace -> System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib"),
       fun ~trace -> System.create_avr_delta_batch ~netlist:nl ~program ~trace "avr/fib" ))

let msp_makers =
  lazy
    (let nl = System.msp_netlist () in
     let program = Msp_asm.assemble Programs.msp_fib_halting in
     ( nl,
       (fun () -> System.create_msp ~netlist:nl ~program "msp/fib"),
       (fun ~trace -> System.create_msp_delta ~netlist:nl ~program ~trace "msp/fib"),
       fun ~trace -> System.create_msp_delta_batch ~netlist:nl ~program ~trace "msp/fib" ))

let verdict_to_string v = Format.asprintf "%a" Campaign.pp_verdict v

let random_faults nl rng n =
  let n_flops = Array.length nl.Netlist.flops in
  Array.init n (fun _ ->
      (nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id, Prng.int rng total_cycles))

let check_batch_matches_scalar name (nl, make, _make_delta, make_delta_batch) =
  let faults = random_faults nl (Prng.create 0xDECAF) n_pairs in
  (* Scalar reference verdicts (checkpointed engine, validated against
     from-scratch re-simulation by the checkpoint suite). *)
  let scalar = Campaign.create ~make ~total_cycles () in
  let expected =
    Array.map (fun (flop_id, cycle) -> Campaign.inject scalar ~flop_id ~cycle) faults
  in
  (* Sweep checkpoint intervals (which change the memo protocol) and
     lane widths (which change the refill schedule); neither may change
     a verdict. *)
  List.iter
    (fun (interval, lanes) ->
      let campaign =
        Campaign.create ~checkpoint_interval:interval ~make ~make_delta_batch ~total_cycles ()
      in
      let verdicts = Campaign.inject_delta_batch campaign ?lanes ~faults () in
      Array.iteri
        (fun i v ->
          if v <> expected.(i) then
            Alcotest.failf "%s K=%d lanes=%s (flop %d, cycle %d): batched-delta=%s, scalar=%s"
              name interval
              (match lanes with
              | None -> "max"
              | Some l -> string_of_int l)
              (fst faults.(i)) (snd faults.(i)) (verdict_to_string v)
              (verdict_to_string expected.(i)))
        verdicts)
    [ (1, None); (13, None); (total_cycles + 5, None); (13, Some 1); (13, Some 7) ]

let test_batch_avr () = check_batch_matches_scalar "avr" (Lazy.force avr_makers)
let test_batch_msp () = check_batch_matches_scalar "msp430" (Lazy.force msp_makers)

(* ------------------------------------------------------------------ *)
(* qcheck: for random fault packs, lane counts and checkpoint
   intervals, on either core, the batched-delta verdicts equal both the
   single-fault delta verdicts and the scalar verdicts — and every
   mid-pass Benign retirement is confirmed Benign by scalar replay. *)

let prop_pack_identity =
  let gen =
    QCheck2.Gen.(
      quad bool (int_range 1 (total_cycles + 5)) (int_range 1 Campaign.max_delta_lanes)
        (pair (int_range 1 60) int))
  in
  QCheck2.Test.make ~name:"deltabatch: random packs match delta and scalar" ~count:10 gen
    (fun (use_msp, interval, lanes, (n, seed)) ->
      let nl, make, make_delta, make_delta_batch =
        Lazy.force (if use_msp then msp_makers else avr_makers)
      in
      let faults = random_faults nl (Prng.create (seed land max_int)) n in
      let campaign =
        Campaign.create ~checkpoint_interval:interval ~make ~make_delta ~make_delta_batch
          ~total_cycles ()
      in
      let retired = ref [] in
      let batched =
        Campaign.inject_delta_batch campaign ~lanes
          ~on_benign_retire:(fun ~index ~cycle -> retired := (index, cycle) :: !retired)
          ~faults ()
      in
      Array.iteri
        (fun i (flop_id, cycle) ->
          let d = Campaign.inject_delta campaign ~flop_id ~cycle in
          if batched.(i) <> d then
            QCheck2.Test.fail_reportf "flop %d cycle %d: batched=%s delta=%s" flop_id cycle
              (verdict_to_string batched.(i))
              (verdict_to_string d);
          let s = Campaign.inject campaign ~flop_id ~cycle in
          if batched.(i) <> s then
            QCheck2.Test.fail_reportf "flop %d cycle %d: batched=%s scalar=%s" flop_id cycle
              (verdict_to_string batched.(i))
              (verdict_to_string s))
        faults;
      List.iter
        (fun (index, rc) ->
          let flop_id, cycle = faults.(index) in
          if batched.(index) <> Campaign.Benign then
            QCheck2.Test.fail_reportf "early retirement at cycle %d but verdict %s" rc
              (verdict_to_string batched.(index));
          let s = Campaign.inject campaign ~flop_id ~cycle in
          if s <> Campaign.Benign then
            QCheck2.Test.fail_reportf
              "lane retired at cycle %d (flop %d, injected %d) but scalar says %s" rc flop_id
              cycle (verdict_to_string s))
        !retired;
      true)

(* ------------------------------------------------------------------ *)

let test_run_sample_stats () =
  (* Identical seed => identical fault list => identical stats across
     all four engines, with and without a skip predicate. *)
  let nl, make, make_delta, make_delta_batch = Lazy.force avr_makers in
  let space = Fault_space.full nl ~cycles:total_cycles in
  let campaign = Campaign.create ~make ~make_delta ~make_delta_batch ~total_cycles () in
  let scalar = Campaign.run_sample campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  let delta = Campaign.run_sample_delta campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  let batched =
    Campaign.run_sample_delta_batched campaign ~space ~rng:(Prng.create 4242) ~n:150 ()
  in
  check_bool "delta-batched = scalar stats" true (batched = scalar);
  check_bool "delta-batched = delta stats" true (batched = delta);
  let skip ~flop_id ~cycle = (flop_id + cycle) mod 3 = 0 in
  let scalar_s = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip () in
  let batched_s =
    Campaign.run_sample_delta_batched campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip ~lanes:9 ()
  in
  check_bool "stats equal (skip, lanes=9)" true (scalar_s = batched_s);
  check_bool "some skipped" true (batched_s.Campaign.skipped > 0);
  check_int "invariant" batched_s.Campaign.injections
    (batched_s.Campaign.benign + batched_s.Campaign.latent + batched_s.Campaign.sdc)

let test_early_retirement_exercised () =
  (* The mid-pass Benign retirement path must actually fire on a real
     workload, and each retirement must be scalar-Benign. *)
  let nl, make, _, make_delta_batch = Lazy.force avr_makers in
  let faults = random_faults nl (Prng.create 0xF00D) 300 in
  let campaign = Campaign.create ~make ~make_delta_batch ~total_cycles () in
  let retired = ref 0 in
  let verdicts =
    Campaign.inject_delta_batch campaign
      ~on_benign_retire:(fun ~index ~cycle ->
        incr retired;
        check_bool "retirement strictly before horizon" true (cycle < total_cycles);
        let flop_id, fc = faults.(index) in
        let s = Campaign.inject campaign ~flop_id ~cycle:fc in
        if s <> Campaign.Benign then
          Alcotest.failf "lane retired at cycle %d (flop %d, injected %d) but scalar says %s"
            cycle flop_id fc (verdict_to_string s))
      ~faults ()
  in
  check_bool "some lanes retired early" true (!retired > 0);
  Array.iter
    (fun (flop_id, cycle) -> ignore (flop_id, cycle))
    faults;
  (* Every early retirement also landed as a Benign verdict. *)
  check_bool "retired <= benign verdicts" true
    (!retired <= Array.fold_left (fun a v -> if v = Campaign.Benign then a + 1 else a) 0 verdicts)

let test_lanes_validation () =
  let _, make, _, make_delta_batch = Lazy.force avr_makers in
  let campaign = Campaign.create ~make ~make_delta_batch ~total_cycles () in
  let faults = [| (0, 0) |] in
  Alcotest.check_raises "lanes = 0 rejected"
    (Invalid_argument
       (Printf.sprintf "Campaign.inject_delta_batch: lanes must be in [1, %d]"
          Campaign.max_delta_lanes)) (fun () ->
      ignore (Campaign.inject_delta_batch campaign ~lanes:0 ~faults ()));
  Alcotest.check_raises "lanes > max rejected"
    (Invalid_argument
       (Printf.sprintf "Campaign.inject_delta_batch: lanes must be in [1, %d]"
          Campaign.max_delta_lanes)) (fun () ->
      ignore (Campaign.inject_delta_batch campaign ~lanes:(Campaign.max_delta_lanes + 1) ~faults ()))

let suite =
  [
    Alcotest.test_case "batched-delta = scalar verdicts (AVR, 400 faults)" `Quick test_batch_avr;
    Alcotest.test_case "batched-delta = scalar verdicts (MSP430, 400 faults)" `Quick
      test_batch_msp;
    QCheck_alcotest.to_alcotest prop_pack_identity;
    Alcotest.test_case "run_sample_delta_batched = scalar = delta stats" `Quick
      test_run_sample_stats;
    Alcotest.test_case "mid-pass retirements => Benign under scalar replay" `Quick
      test_early_retirement_exercised;
    Alcotest.test_case "lane width validation" `Quick test_lanes_validation;
  ]
