(* Byzantine-tolerant verdicts: quorum arbitration, worker reputation,
   and the liar-chaos soak. The headline invariant: with f < K/2 lying
   workers among a fleet of at least 3, a fully cross-validated campaign
   completes with statistics bit-identical to an honest single-process
   reference, every lie outvoted by quorum and journaled as an
   [Arbitrated] override, and the liar quarantined by reputation.
   Scripted Proto clients additionally pin the mechanics one message at
   a time: a 1v1 split resolved (and overturned) by one recruited
   ballot, the no-quorum path counting as unresolved (exit 19 at the
   CLI), reputation travelling back in [Welcome], and the journal
   record's saturation rules. *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Chaos = Pruning_fi.Chaos
module Coordinator = Pruning_fi.Coordinator
module Fault_space = Pruning_fi.Fault_space
module Journal = Pruning_fi.Journal
module Proto = Pruning_fi.Proto
module Reputation = Pruning_fi.Reputation
module Worker = Pruning_fi.Worker
module System = Pruning_cpu.System

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- toy-campaign scaffolding (mirrors test_dist) --------------------- *)

let toy_cycles = 8
let toy_n = 60
let toy_seed = 21

let toy_parts () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (space, campaign)

let toy_engine () =
  let space, campaign = toy_parts () in
  { Worker.campaign; space; skip = None; kernel = Campaign.Scalar }

let toy_reference () =
  let space, campaign = toy_parts () in
  Campaign.run_sample campaign ~space ~rng:(Prng.create toy_seed) ~n:toy_n ()

let make_header ?(samples = toy_n) () =
  {
    Journal.core = "toy";
    program = "toy";
    cycles = toy_cycles;
    seed = toy_seed;
    samples;
    prune = false;
    audit = 0.;
    shards = 0;
    batched = false;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create toy_seed);
    shard_prng = [||];
  }

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-byz-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  d

let test_config =
  {
    Coordinator.default_config with
    Coordinator.chunk_size = 4;
    lease = 5.;
    tick = 0.01;
    drain = 10.;
  }

let event_log () =
  let lock = Mutex.create () in
  let events = ref [] in
  let push e =
    Mutex.lock lock;
    events := e :: !events;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let es = List.rev !events in
    Mutex.unlock lock;
    es
  in
  (push, all)

let serve_bg coord ~header ?journal ?resume ?on_event () =
  let result = ref None in
  let thread =
    Thread.create
      (fun () ->
        result :=
          Some
            (match Coordinator.serve coord ~header ?journal ?resume ?on_event () with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  fun () ->
    Thread.join thread;
    match !result with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false

let work_bg ~port ~name ?chaos () =
  let report = ref None in
  let thread =
    Thread.create
      (fun () ->
        report :=
          Some
            (match
               Worker.run ~host:"127.0.0.1" ~port ~resolve:(fun _ -> toy_engine ()) ~name ?chaos ()
             with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  fun () ->
    Thread.join thread;
    match !report with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false

(* --- scripted Proto clients ------------------------------------------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* Handshake and return the suspicion score the coordinator holds
   against this name. *)
let hello fd name =
  Proto.send fd (Proto.Hello { version = Proto.version; name; epoch = -1 });
  match Proto.recv fd with
  | Proto.Welcome { suspicion; _ } -> suspicion
  | _ -> Alcotest.fail "expected Welcome"

(* Request until assigned (Wait is legal while another client's frames
   are still in flight towards the coordinator). The scripted scenarios
   are sequenced so that at each request exactly one kind of work can
   ever be offered to this client — so the purpose check is a real
   assertion, not a filter. *)
let request_assign ?expect_purpose fd =
  let deadline = Unix.gettimeofday () +. 20. in
  let rec go () =
    Proto.send fd Proto.Request;
    match Proto.recv fd with
    | Proto.Assign c ->
      (match expect_purpose with
      | Some p when c.Proto.purpose <> p ->
        Alcotest.fail
          (Printf.sprintf "expected a %s assignment, got %s of chunk %d" (Proto.purpose_name p)
             (Proto.purpose_name c.Proto.purpose) c.Proto.chunk_id)
      | _ -> ());
      c
    | Proto.Wait when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      go ()
    | Proto.Wait -> Alcotest.fail "timed out waiting for an assignment"
    | _ -> Alcotest.fail "expected Assign"
  in
  go ()

(* Submit one whole chunk with [verdict_at] choosing each sample's
   claim, then declare it done. *)
let submit fd (c : Proto.chunk) verdict_at =
  let results =
    Array.init (c.Proto.hi - c.Proto.lo + 1) (fun k -> (c.Proto.lo + k, verdict_at (c.Proto.lo + k)))
  in
  Proto.send fd (Proto.Results { chunk_id = c.Proto.chunk_id; results });
  Proto.send fd (Proto.Chunk_done { chunk_id = c.Proto.chunk_id })

(* Poll Request until the coordinator says Done (Wait while an
   arbitration or verification is still settling). *)
let await_done fd =
  let deadline = Unix.gettimeofday () +. 20. in
  let rec go () =
    Proto.send fd Proto.Request;
    match Proto.recv fd with
    | Proto.Done -> ()
    | Proto.Wait when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.02;
      go ()
    | Proto.Wait -> Alcotest.fail "timed out polling for Done"
    | Proto.Assign c ->
      (* Late housekeeping work (a re-queued verification): answer it
         honestly and keep polling. *)
      submit fd c (fun _ -> Journal.Benign);
      go ()
    | _ -> Alcotest.fail "expected Done or Wait"
  in
  go ()

(* --- 1v1 split: one recruited ballot settles it ----------------------- *)

(* Alice records chunk 0 honestly; Bob's verification pass claims an
   impossible verdict on one sample. Carol, neither disputant, is
   recruited as the quorum ballot: the recorded verdict wins 2-1, the
   dispute resolves without overturning anything, and Bob's arbitration
   loss travels back as suspicion in his next Welcome. *)
let test_split_vote_resolved () =
  let n = 16 in
  let config =
    { test_config with Coordinator.chunk_size = 8; verify_frac = 1.; quorum = 3 }
  in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ~samples:n ()) ~on_event:push () in
  let alice = connect port and bob = connect port and carol = connect port in
  ignore (hello alice "alice");
  ignore (hello bob "bob");
  ignore (hello carol "carol");
  (* Alice takes chunk 0, Bob chunk 1 — both recorded all-Benign. *)
  let c0 = request_assign ~expect_purpose:Proto.Data alice in
  submit alice c0 (fun _ -> Journal.Benign);
  let c1 = request_assign ~expect_purpose:Proto.Data bob in
  submit bob c1 (fun _ -> Journal.Benign);
  (* Bob's next assignment is the cross-validation of Alice's chunk
     (never his own); he lies on its first sample. *)
  let v0 = request_assign ~expect_purpose:Proto.Verify bob in
  check_int "bob verifies alice's chunk" c0.Proto.chunk_id v0.Proto.chunk_id;
  Proto.send bob
    (Proto.Results { chunk_id = v0.Proto.chunk_id; results = [| (v0.Proto.lo, Journal.Sdc 999999) |] });
  Proto.send bob (Proto.Chunk_done { chunk_id = v0.Proto.chunk_id });
  (* Alice absorbs chunk 1's verification (she can never ballot her own
     chunk's dispute, so this is the only work she can be offered). *)
  let v1 = request_assign ~expect_purpose:Proto.Verify alice in
  check_int "alice verifies bob's chunk" c1.Proto.chunk_id v1.Proto.chunk_id;
  submit alice v1 (fun _ -> Journal.Benign);
  (* Carol is neither origin nor challenger: her Request is answered
     with the arbitration ballot for the disputed chunk. *)
  let a0 = request_assign ~expect_purpose:Proto.Arbitrate carol in
  check_int "ballot re-issues the disputed chunk" c0.Proto.chunk_id a0.Proto.chunk_id;
  submit carol a0 (fun _ -> Journal.Benign);
  await_done alice;
  await_done bob;
  await_done carol;
  (* Bob's arbitration loss is visible to a reconnecting "bob". *)
  let bob2 = connect port in
  check_int "suspicion travels in Welcome" (Reputation.weight Reputation.Arbitration_loss)
    (hello bob2 "bob");
  List.iter Unix.close [ alice; bob; carol; bob2 ];
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_int "one dispute" 1 r.Coordinator.mismatches;
  check_int "resolved by quorum" 1 r.Coordinator.arb_resolved;
  check_int "recorded verdict stood" 0 r.Coordinator.arb_overturned;
  check_int "nothing unresolved" 0 r.Coordinator.arb_unresolved;
  check_bool "no quarantine below threshold" true (r.Coordinator.suspects = []);
  check_bool "arbitration provenance names carol and bob" true
    (List.exists
       (function
         | Coordinator.Arbitrated { voters = [ "carol" ]; losers; overturned = false; _ } ->
           List.mem "bob" losers
         | _ -> false)
       (all ()))

(* --- overturn + journal override + resume ----------------------------- *)

(* This time the first-recorded verdict is the lie: Bob poisons one
   sample of his own data chunk, Alice's verification pass disputes it,
   and Carol's ballot overturns the recorded verdict. The journal then
   carries both the lying Outcome and the Arbitrated override — fsck
   decodes the arbitration, and a resume reconstructs the corrected
   statistics with no workers at all. *)
let test_overturn_journaled_and_resumed () =
  let n = 16 in
  let dir = scratch_dir () in
  let config =
    { test_config with Coordinator.chunk_size = 8; verify_frac = 1.; quorum = 3 }
  in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let join = serve_bg coord ~header:(make_header ~samples:n ()) ~journal:dir () in
  let alice = connect port and bob = connect port and carol = connect port in
  ignore (hello bob "bob");
  ignore (hello alice "alice");
  ignore (hello carol "carol");
  let c0 = request_assign ~expect_purpose:Proto.Data bob in
  submit bob c0 (fun i -> if i = c0.Proto.lo then Journal.Sdc 42 else Journal.Benign);
  let c1 = request_assign ~expect_purpose:Proto.Data alice in
  submit alice c1 (fun _ -> Journal.Benign);
  let v0 = request_assign ~expect_purpose:Proto.Verify alice in
  check_int "alice verifies bob's chunk" c0.Proto.chunk_id v0.Proto.chunk_id;
  submit alice v0 (fun _ -> Journal.Benign);
  (* Bob is the disputed verdict's origin, so the only work left for him
     is chunk 1's verification; Carol then gets the ballot. *)
  let v1 = request_assign ~expect_purpose:Proto.Verify bob in
  check_int "bob verifies alice's chunk" c1.Proto.chunk_id v1.Proto.chunk_id;
  submit bob v1 (fun _ -> Journal.Benign);
  let a0 = request_assign ~expect_purpose:Proto.Arbitrate carol in
  submit carol a0 (fun _ -> Journal.Benign);
  await_done bob;
  await_done alice;
  await_done carol;
  List.iter Unix.close [ alice; bob; carol ];
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_int "resolved" 1 r.Coordinator.arb_resolved;
  check_int "overturned" 1 r.Coordinator.arb_overturned;
  check_int "benign after override" n r.Coordinator.stats.Campaign.benign;
  check_int "no sdc survives the quorum" 0 r.Coordinator.stats.Campaign.sdc;
  (* fsck decodes the arbitration record instead of flagging it. *)
  let f = Journal.fsck ~dir in
  check_bool "journal clean" true (f.Journal.fsck_errors = []);
  check_int "one arbitrated record" 1 f.Journal.fsck_counts.(7);
  check_int "fsck sees the overturn" 1 f.Journal.fsck_overturned;
  check_int "fsck sums the ballots" 1 f.Journal.fsck_arb_ballots;
  (* A resume replays Outcome(lie) then Arbitrated(truth): the override
     wins and the campaign completes instantly, worker-free. *)
  let coord2 = Coordinator.create ~config () in
  let join2 = serve_bg coord2 ~header:(make_header ~samples:n ()) ~journal:dir ~resume:true () in
  let r2 = join2 () in
  check_bool "resume completed without workers" true r2.Coordinator.completed;
  check_int "all verdicts recovered" n r2.Coordinator.recovered;
  check_int "override survives resume" n r2.Coordinator.stats.Campaign.benign;
  check_int "no resurrected lie" 0 r2.Coordinator.stats.Campaign.sdc;
  rm_rf dir

(* --- no quorum reachable: unresolved, not deadlocked ------------------ *)

(* With only the two disputants connected no ballot can ever be cast:
   the arbitration must time out under [arb_patience] and count as
   unresolved — the documented exit-19 trigger — instead of stalling
   the campaign forever. *)
let test_no_quorum_unresolved () =
  let n = 16 in
  let config =
    {
      test_config with
      Coordinator.chunk_size = 8;
      verify_frac = 1.;
      quorum = 3;
      arb_patience = 0.3;
    }
  in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ~samples:n ()) ~on_event:push () in
  let alice = connect port and bob = connect port in
  ignore (hello alice "alice");
  ignore (hello bob "bob");
  let c0 = request_assign ~expect_purpose:Proto.Data alice in
  submit alice c0 (fun _ -> Journal.Benign);
  let c1 = request_assign ~expect_purpose:Proto.Data bob in
  submit bob c1 (fun _ -> Journal.Benign);
  let v0 = request_assign ~expect_purpose:Proto.Verify bob in
  Proto.send bob
    (Proto.Results { chunk_id = v0.Proto.chunk_id; results = [| (v0.Proto.lo, Journal.Sdc 999999) |] });
  Proto.send bob (Proto.Chunk_done { chunk_id = v0.Proto.chunk_id });
  (* Chunk 1's verification still completes honestly meanwhile. *)
  let v1 = request_assign ~expect_purpose:Proto.Verify alice in
  check_int "alice verifies bob's chunk" c1.Proto.chunk_id v1.Proto.chunk_id;
  submit alice v1 (fun _ -> Journal.Benign);
  await_done alice;
  await_done bob;
  List.iter Unix.close [ alice; bob ];
  let r = join () in
  check_bool "completed despite the dispute" true r.Coordinator.completed;
  check_int "dispute surfaced" 1 r.Coordinator.mismatches;
  check_int "nothing resolved" 0 r.Coordinator.arb_resolved;
  check_int "unresolved (exit 19 upstairs)" 1 r.Coordinator.arb_unresolved;
  check_bool "patience timeout surfaced" true
    (List.exists
       (function
         | Coordinator.Arbitration_failed { reason; _ } -> contains reason "patience"
         | _ -> false)
       (all ()))

(* --- the liar-chaos soak ---------------------------------------------- *)

(* Two honest workers and one armed with the liar chaos profile race
   through a fully cross-validated campaign. Every lie the liar frames
   (CRC-clean — the corruption happens before framing) surfaces as a
   verdict mismatch, is outvoted by an honest ballot, and feeds the
   liar's suspicion until reputation quarantines it. The final
   statistics are bit-identical to the honest single-process reference
   and the journal carries every arbitration. *)
let test_liar_soak () =
  let reference = toy_reference () in
  let dir = scratch_dir () in
  let config =
    { test_config with Coordinator.verify_frac = 1.; quorum = 3; suspect_threshold = 5 }
  in
  let coord = Coordinator.create ~config () in
  let port = Coordinator.port coord in
  let push, all = event_log () in
  let join = serve_bg coord ~header:(make_header ()) ~journal:dir ~on_event:push () in
  let w1 = work_bg ~port ~name:"honest-1" () in
  let w2 = work_bg ~port ~name:"honest-2" () in
  let liar =
    work_bg ~port ~name:"liar" ~chaos:(Chaos.create ~profile:Chaos.liar_profile ~seed:7 ()) ()
  in
  let r1 = w1 () and r2 = w2 () and rl = liar () in
  let r = join () in
  check_bool "completed" true r.Coordinator.completed;
  check_bool "all workers done" true
    (r1.Worker.ended = Worker.Campaign_done
    && r2.Worker.ended = Worker.Campaign_done
    && rl.Worker.ended = Worker.Campaign_done);
  (* The headline: lies happened, every one was settled by quorum, and
     the stats are exactly the honest reference. *)
  check_bool "the liar actually lied" true (r.Coordinator.mismatches > 0);
  check_int "every dispute resolved" r.Coordinator.mismatches r.Coordinator.arb_resolved;
  check_int "no unresolved dispute" 0 r.Coordinator.arb_unresolved;
  check_stats "bit-identical to honest reference" reference r.Coordinator.stats;
  (* Reputation quarantined the liar — and only the liar. *)
  check_bool "liar quarantined" true (List.mem_assoc "liar" r.Coordinator.suspects);
  check_bool "honest workers unsuspected" true
    (List.for_all (fun (w, _) -> w = "liar") r.Coordinator.suspects);
  check_bool "quarantine event emitted" true
    (List.exists
       (function
         | Coordinator.Suspected { worker = "liar"; _ } -> true
         | _ -> false)
       (all ()));
  (* Every arbitration is journaled with provenance, and the journal
     stays resumable. *)
  let f = Journal.fsck ~dir in
  check_bool "journal clean" true (f.Journal.fsck_errors = []);
  check_int "arbitrations journaled" r.Coordinator.arb_resolved f.Journal.fsck_counts.(7);
  check_int "overturns journaled" r.Coordinator.arb_overturned f.Journal.fsck_overturned;
  rm_rf dir

(* --- Arbitrated record: packing limits -------------------------------- *)

(* The 13-byte record packs winner kind, loser kind, overturned flag,
   voter count (saturating at 15) and the winner's Sdc cycle (saturating
   at 2^21 - 1); a losing Sdc's cycle is dropped by design. *)
let test_arbitrated_record_packing () =
  let dir = scratch_dir () in
  let entries =
    [
      Journal.Outcome (0, Journal.Sdc 7);
      Journal.Arbitrated
        { index = 0; outcome = Journal.Benign; loser = Journal.Sdc 7; voters = 1; overturned = true };
      Journal.Arbitrated
        {
          index = 1;
          outcome = Journal.Sdc 123456;
          loser = Journal.Latent;
          voters = 3;
          overturned = false;
        };
      (* Saturation: 99 voters records as 15, a huge Sdc cycle clamps to
         the 21-bit maximum. *)
      Journal.Arbitrated
        {
          index = 2;
          outcome = Journal.Sdc 10_000_000;
          loser = Journal.Crashed;
          voters = 99;
          overturned = true;
        };
    ]
  in
  let w = Journal.create ~dir (make_header ()) in
  List.iter (Journal.append w) entries;
  Journal.close w;
  let _, got, dropped = Journal.load ~dir in
  check_int "no torn bytes" 0 dropped;
  check_int "all records back" (List.length entries) (Array.length got);
  check_bool "overturn round-trips, losing Sdc cycle dropped" true
    (got.(1)
    = Journal.Arbitrated
        { index = 0; outcome = Journal.Benign; loser = Journal.Sdc 0; voters = 1; overturned = true }
    );
  check_bool "winner Sdc cycle preserved" true
    (got.(2)
    = Journal.Arbitrated
        {
          index = 1;
          outcome = Journal.Sdc 123456;
          loser = Journal.Latent;
          voters = 3;
          overturned = false;
        });
  check_bool "voters and cycle saturate" true
    (got.(3)
    = Journal.Arbitrated
        {
          index = 2;
          outcome = Journal.Sdc 0x1FFFFF;
          loser = Journal.Crashed;
          voters = 15;
          overturned = true;
        });
  let f = Journal.fsck ~dir in
  check_int "fsck counts arbitrated" 3 f.Journal.fsck_counts.(7);
  check_int "fsck counts overturns" 2 f.Journal.fsck_overturned;
  check_int "fsck sums ballots (saturated)" (1 + 3 + 15) f.Journal.fsck_arb_ballots;
  rm_rf dir

(* --- reputation is a pure function of the event sequence -------------- *)

let prop_reputation_pure =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 64)
        (pair (int_range 0 3)
           (int_range 0 2 >|= function
            | 0 -> Reputation.Arbitration_loss
            | 1 -> Reputation.Corrupt_frame
            | _ -> Reputation.Lease_expiry)))
  in
  QCheck2.Test.make ~name:"reputation: score is a pure fold over the event sequence" ~count:200 gen
    (fun raw ->
      let events = List.map (fun (w, e) -> (Printf.sprintf "w%d" w, e)) raw in
      (* Batch reconstruction and incremental recording agree... *)
      let batch = Reputation.of_events events in
      let incr = Reputation.create () in
      List.iter
        (fun (name, e) ->
          let running = Reputation.record incr ~name e in
          (* ...and [record] returns the running score it just stored. *)
          if running <> Reputation.score incr name then QCheck2.Test.fail_report "running score drifted")
        events;
      Reputation.scores batch = Reputation.scores incr
      &&
      (* The audit identity: each name's score is the weighted event
         count, independent of interleaving with other names. *)
      List.for_all
        (fun (name, _) ->
          Reputation.score batch name
          = List.fold_left
              (fun acc (n, e) -> if n = name then acc + Reputation.weight e else acc)
              0 events)
        events)

let suite =
  [
    Alcotest.test_case "1v1 split resolved by one ballot" `Quick test_split_vote_resolved;
    Alcotest.test_case "overturn journaled, fsck'd and resumed" `Quick
      test_overturn_journaled_and_resumed;
    Alcotest.test_case "no quorum: unresolved, not deadlocked" `Quick test_no_quorum_unresolved;
    Alcotest.test_case "liar-chaos soak: bit-identical + quarantined" `Quick test_liar_soak;
    Alcotest.test_case "Arbitrated record packing limits" `Quick test_arbitrated_record_packing;
    QCheck_alcotest.to_alcotest prop_reputation_pure;
  ]
