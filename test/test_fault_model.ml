(* First-class fault models: spec parsing, model-keyed fault spaces,
   SET cone expansion against an independent brute-force reachability,
   intermittent:1 degenerating exactly to SEU, scalar/delta verdict
   identity for every model on both cores, model-aware MATE lifting
   under --audit 1.0, and the journal/proto plumbing that pins the
   model (header field, per-record nibble, chunk descriptor, resume
   refusal). *)

open Helpers
module Fault_model = Pruning_fi.Fault_model
module Fault_space = Pruning_fi.Fault_space
module Campaign = Pruning_fi.Campaign
module Durable = Pruning_fi.Durable
module Journal = Pruning_fi.Journal
module Proto = Pruning_fi.Proto
module Oracle = Pruning_fi.Oracle
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Term = Pruning_mate.Term
module Crc = Pruning_util.Crc

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

(* --- spec parsing and the pinned id/param encoding ------------------- *)

let test_parse () =
  let ok spec m =
    match Fault_model.of_string spec with
    | Ok got -> check_bool (spec ^ " parses") true (got = m)
    | Error e -> Alcotest.fail (spec ^ " rejected: " ^ e)
  in
  ok "seu" Fault_model.Seu;
  ok "set" Fault_model.Set;
  ok "mbu:2" (Fault_model.Mbu 2);
  ok "mbu:17" (Fault_model.Mbu 17);
  ok "intermittent:1" (Fault_model.Intermittent 1);
  ok "intermittent:9" (Fault_model.Intermittent 9);
  List.iter
    (fun spec ->
      match Fault_model.of_string spec with
      | Ok _ -> Alcotest.fail (spec ^ " must be rejected")
      | Error _ -> ())
    [ "mbu"; "intermittent"; "mbu:0"; "mbu:-2"; "intermittent:0"; "mbu:x"; "flub"; "seu:3"; "" ];
  (* name round-trips through of_string. *)
  List.iter
    (fun m ->
      match Fault_model.of_string (Fault_model.name m) with
      | Ok got -> check_bool (Fault_model.name m ^ " round-trips") true (got = m)
      | Error e -> Alcotest.fail e)
    [ Fault_model.Seu; Fault_model.Set; Fault_model.Mbu 3; Fault_model.Intermittent 4 ];
  (* Wire/journal ids are pinned forever. *)
  check_int "seu id" 0 (Fault_model.id Fault_model.Seu);
  check_int "set id" 1 (Fault_model.id Fault_model.Set);
  check_int "mbu id" 2 (Fault_model.id (Fault_model.Mbu 2));
  check_int "intermittent id" 3 (Fault_model.id (Fault_model.Intermittent 5));
  check_int "intermittent param" 5 (Fault_model.param (Fault_model.Intermittent 5));
  List.iter
    (fun m ->
      match Fault_model.of_id_param (Fault_model.id m) (Fault_model.param m) with
      | Some got -> check_bool "id/param round-trips" true (got = m)
      | None -> Alcotest.fail "id/param round-trip lost the model")
    [ Fault_model.Seu; Fault_model.Set; Fault_model.Mbu 2; Fault_model.Intermittent 7 ];
  check_bool "unknown id" true (Fault_model.base_name_of_id 9 = None);
  check_bool "unknown id/param" true (Fault_model.of_id_param 9 0 = None)

(* --- model-keyed space shapes ---------------------------------------- *)

let test_space_shapes () =
  let nl = figure1_seq_netlist () in
  let cycles = 8 in
  let nf = Netlist.n_flops nl in
  check_int "five flops" 5 nf;
  let seu = Fault_space.full nl ~cycles in
  check_int "seu keys" nf (Fault_space.n_keys seu);
  check_int "seu size" (nf * cycles) (Fault_space.size seu);
  check_int "seu hold" 1 (Fault_space.hold seu);
  let set = Fault_space.full ~model:Fault_model.Set nl ~cycles in
  check_int "set keys" (Netlist.n_gates nl) (Fault_space.n_keys set);
  let mbu = Fault_space.full ~model:(Fault_model.Mbu 2) nl ~cycles in
  check_int "mbu keys" (nf - 1) (Fault_space.n_keys mbu);
  check_int "mbu expansion width" 2 (Array.length (Fault_space.expand mbu 1));
  let interm = Fault_space.full ~model:(Fault_model.Intermittent 3) nl ~cycles in
  check_int "intermittent keys" nf (Fault_space.n_keys interm);
  check_int "intermittent hold" 3 (Fault_space.hold interm);
  check_int "intermittent expansion" 1 (Array.length (Fault_space.expand interm 2));
  (* A cluster wider than the core is a spec error, not a crash later. *)
  (match Fault_space.full ~model:(Fault_model.Mbu (nf + 1)) nl ~cycles with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized mbu cluster must be rejected");
  (* figure1_seq's flops reload from primary inputs, so no gate cone
     reaches a flop D pin: every SET expansion is empty (nothing
     latches; trivially benign). *)
  for g = 0 to Netlist.n_gates nl - 1 do
    check_int "empty SET expansion" 0 (Array.length (Fault_space.expand set g))
  done

(* --- SET expansion vs brute-force forward reachability --------------- *)

(* Independent of Cone: mark wires forward-reachable from the gate's
   output through combinational gates only; the expansion must be
   exactly the flops whose D pin is marked. *)
let brute_set_members (nl : Netlist.t) gate_idx =
  let marked = Array.make (Netlist.n_wires nl) false in
  let rec mark w =
    if not marked.(w) then begin
      marked.(w) <- true;
      Array.iter (fun g -> mark nl.Netlist.gates.(g).Netlist.output) nl.Netlist.readers.(w)
    end
  in
  mark nl.Netlist.gates.(gate_idx).Netlist.output;
  let out = ref [] in
  Array.iter
    (fun (f : Netlist.flop) -> if marked.(f.Netlist.d) then out := f.Netlist.flop_id :: !out)
    nl.Netlist.flops;
  List.sort compare !out

let test_set_expansion_brute () =
  let nl = counter_netlist () in
  let space = Fault_space.full ~model:Fault_model.Set nl ~cycles:10 in
  let nonempty = ref 0 in
  for g = 0 to Netlist.n_gates nl - 1 do
    let expanded = Array.to_list (Fault_space.expand space g) in
    if expanded <> [] then incr nonempty;
    check_bool
      (Printf.sprintf "gate %d expansion" g)
      true
      (expanded = brute_set_members nl g)
  done;
  (* The counter's increment logic feeds its own flops: the test must
     not pass vacuously on all-empty expansions. *)
  check_bool "some gate reaches a flop" true (!nonempty > 0)

(* --- multi-flop one-cycle masking ground truth ----------------------- *)

let test_multi_benign () =
  let nl = figure1_seq_netlist () in
  let sim = Sim.create nl in
  Sim.eval sim;
  let fid name = (Netlist.find_flop nl name).Netlist.flop_id in
  (* All flops reset to 0: f = NAND(a, b) = 1 either way, so flipping
     [a] alone is invisible; h = INV(e) makes any set containing [e]
     visible. *)
  check_bool "a alone benign" true (Oracle.multi_benign sim ~flop_ids:[ fid "a" ]);
  check_bool "e alone visible" false (Oracle.multi_benign sim ~flop_ids:[ fid "e" ]);
  check_bool "a+e visible" false (Oracle.multi_benign sim ~flop_ids:[ fid "a"; fid "e" ]);
  (* c and d feed the same XOR: flipped together they cancel on g. *)
  check_bool "c+d cancel" true (Oracle.multi_benign sim ~flop_ids:[ fid "c"; fid "d" ])

(* --- verdict identity across engines and models ---------------------- *)

let avr_build ~model ~cycles =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let make () = System.create_avr ~netlist:nl ~program "avr/fib" in
  let make_lanes () = System.create_avr_lanes ~netlist:nl ~program "avr/fib" in
  let make_delta ~trace = System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib" in
  let make_delta_batch ~trace =
    System.create_avr_delta_batch ~netlist:nl ~program ~trace "avr/fib"
  in
  let space = Fault_space.full ~model nl ~cycles in
  let campaign () =
    Campaign.create ~make ~make_lanes ~make_delta ~make_delta_batch ~total_cycles:cycles ()
  in
  (space, campaign)

let msp_build ~model ~cycles =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  let make () = System.create_msp ~netlist:nl ~program "msp/fib" in
  let make_delta ~trace = System.create_msp_delta ~netlist:nl ~program ~trace "msp/fib" in
  let space = Fault_space.full ~model nl ~cycles in
  let campaign () = Campaign.create ~make ~make_delta ~total_cycles:cycles () in
  (space, campaign)

(* intermittent:1 is SEU by definition: same draws (flop-keyed space),
   same verdicts, on the reference engine and on delta. *)
let test_intermittent_one_is_seu () =
  let cycles = 120 and n = 200 and seed = 9 in
  let seu_space, seu_campaign = avr_build ~model:Fault_model.Seu ~cycles in
  let i1_space, i1_campaign = avr_build ~model:(Fault_model.Intermittent 1) ~cycles in
  let seu =
    Campaign.run_sample (seu_campaign ()) ~space:seu_space ~rng:(Prng.create seed) ~n ()
  in
  let i1 = Campaign.run_sample (i1_campaign ()) ~space:i1_space ~rng:(Prng.create seed) ~n () in
  check_stats "intermittent:1 scalar = seu scalar" seu i1;
  let i1d =
    Campaign.run_sample_delta (i1_campaign ()) ~space:i1_space ~rng:(Prng.create seed) ~n ()
  in
  check_stats "intermittent:1 delta = seu scalar" seu i1d;
  (* And the two spaces draw the identical fault list. *)
  let c = seu_campaign () in
  let a = Campaign.draw_samples c ~space:seu_space ~rng:(Prng.create seed) ~n in
  let b = Campaign.draw_samples c ~space:i1_space ~rng:(Prng.create seed) ~n in
  check_bool "identical draws" true (a = b)

let check_engines label (space, campaign) ~n ~seed =
  let scalar = Campaign.run_sample (campaign ()) ~space ~rng:(Prng.create seed) ~n () in
  check_bool (label ^ ": something ran") true (scalar.Campaign.injections > 0);
  let delta = Campaign.run_sample_delta (campaign ()) ~space ~rng:(Prng.create seed) ~n () in
  check_stats (label ^ ": delta = scalar") scalar delta;
  (scalar, delta)

let test_avr_models_scalar_delta () =
  let cycles = 120 and n = 120 and seed = 5 in
  List.iter
    (fun model ->
      let label = "avr/" ^ Fault_model.name model in
      let b = avr_build ~model ~cycles in
      let scalar, _ = check_engines label b ~n ~seed in
      (* The wide engines fall back per-fault for non-SEU models and
         must still match bit-for-bit. *)
      let space, campaign = b in
      let batched =
        Campaign.run_sample_batched (campaign ()) ~space ~rng:(Prng.create seed) ~n ()
      in
      check_stats (label ^ ": batched fallback = scalar") scalar batched;
      let delta_batched =
        Campaign.run_sample_delta_batched (campaign ()) ~space ~rng:(Prng.create seed) ~n ()
      in
      check_stats (label ^ ": delta-batched fallback = scalar") scalar delta_batched)
    [ Fault_model.Set; Fault_model.Mbu 2; Fault_model.Intermittent 3 ]

let test_msp_models_scalar_delta () =
  let cycles = 100 and n = 60 and seed = 5 in
  List.iter
    (fun model ->
      let label = "msp/" ^ Fault_model.name model in
      ignore (check_engines label (msp_build ~model ~cycles) ~n ~seed))
    [ Fault_model.Set; Fault_model.Mbu 2; Fault_model.Intermittent 3 ]

(* --- model-aware MATE lifting under the audit sentinel --------------- *)

(* figure1_seq with undriven inputs (see test_durable): flipping [a] is
   invisible forever (f = NAND(a, 0) = 1), so an always-true MATE on [a]
   is sound; flipping [e] always inverts output h, so the same claim on
   [e] is a lie the sentinel must catch — under every model. *)
let toy_cycles = 8

let toy_campaign ~model () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full ~model nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (nl, make, space, campaign)

let flop_named (nl : Netlist.t) name = (Netlist.find_flop nl name).Netlist.flop_id

let toy_pruner make space ~flop =
  let set = Mateset.build [ (flop, [ Term.always_true ]) ] in
  let trace = System.record (make ()) ~cycles:toy_cycles in
  let triggers = Replay.triggers set trace in
  Replay.pruner set triggers ~space ()

let lifted_hooks space p =
  {
    Durable.masking =
      Fault_space.lift_masking space ~masking:(fun ~flop_id ~cycle ->
          Replay.masking p ~flop_id ~cycle);
    quarantine = Replay.quarantine p;
    describe = Replay.describe_mate p;
  }

let test_audit_sound_per_model () =
  List.iter
    (fun model ->
      let nl, make, space, campaign = toy_campaign ~model () in
      let p = toy_pruner make space ~flop:(flop_named nl "a") in
      let skip =
        Fault_space.lift_pruned space ~pruned:(fun ~flop_id ~cycle ->
            Replay.pruned p ~flop_id ~cycle)
      in
      let r =
        Durable.run campaign ~space ~seed:3 ~n:60 ~skip ~audit:(1.0, lifted_hooks space p) ()
      in
      let label = Fault_model.name model in
      check_bool (label ^ " completes") true r.Durable.completed;
      check_int (label ^ ": zero violations") 0 (List.length r.Durable.audit.Durable.violations);
      check_int (label ^ ": zero quarantines") 0
        (List.length r.Durable.audit.Durable.quarantined);
      check_int (label ^ ": every pruned fault audited") r.Durable.stats.Campaign.skipped
        r.Durable.audit.Durable.audited;
      (* The single-flop MATE may prune flop-keyed models; it must never
         prune a multi-flop cluster wholesale. *)
      match model with
      | Fault_model.Mbu _ | Fault_model.Set ->
        check_int (label ^ ": multi-flop faults never pruned") 0
          r.Durable.stats.Campaign.skipped
      | Fault_model.Seu | Fault_model.Intermittent _ ->
        check_bool (label ^ ": something pruned") true (r.Durable.stats.Campaign.skipped > 0))
    [
      Fault_model.Seu;
      Fault_model.Set;
      Fault_model.Mbu 2;
      Fault_model.Intermittent 1;
      Fault_model.Intermittent 3;
    ]

let test_audit_quarantines_unsound_per_model () =
  List.iter
    (fun model ->
      let nl, make, space, campaign = toy_campaign ~model () in
      let p = toy_pruner make space ~flop:(flop_named nl "e") in
      let skip =
        Fault_space.lift_pruned space ~pruned:(fun ~flop_id ~cycle ->
            Replay.pruned p ~flop_id ~cycle)
      in
      let r =
        Durable.run campaign ~space ~seed:3 ~n:60 ~skip ~audit:(1.0, lifted_hooks space p) ()
      in
      let label = Fault_model.name model in
      check_bool (label ^ " completes despite violations") true r.Durable.completed;
      check_bool (label ^ ": violation caught") true
        (List.length r.Durable.audit.Durable.violations >= 1);
      check_bool (label ^ ": offending MATE quarantined") true
        (Replay.quarantined p <> []))
    [ Fault_model.Seu; Fault_model.Intermittent 2 ]

(* --- journal pinning: header field, per-record model nibble ----------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-fault-model-%d" !scratch_counter)
  in
  rm_rf d;
  d

let header ~model =
  {
    Journal.core = "toy";
    program = "p";
    cycles = 8;
    seed = 1;
    samples = 6;
    prune = false;
    audit = 0.;
    shards = 1;
    batched = false;
    epoch = 0;
    fault_model = model;
    prng = Prng.save (Prng.create 1);
    shard_prng = [| Prng.save (Prng.create 2) |];
  }

let craft_record ~model ~kind ~a ~b =
  let buf = Bytes.create 13 in
  Bytes.set buf 0 (Char.chr ((model lsl 4) lor kind));
  let put32 pos v =
    for k = 0 to 3 do
      Bytes.set buf (pos + k) (Char.chr ((v lsr (8 * k)) land 0xFF))
    done
  in
  put32 1 a;
  put32 5 b;
  put32 9 (Crc.bytes buf ~pos:0 ~len:9);
  Bytes.to_string buf

let test_journal_model_pinning () =
  let dir = scratch_dir () in
  let model = Fault_model.Mbu 2 in
  let w = Journal.create ~dir (header ~model) in
  Journal.append w (Journal.Outcome (0, Journal.Benign));
  Journal.append w (Journal.Outcome (1, Journal.Sdc 4));
  Journal.append w (Journal.Outcome (2, Journal.Skipped));
  Journal.close w;
  (* The header round-trips the model, and read_header needs no segments. *)
  check_bool "read_header model" true ((Journal.read_header ~dir).Journal.fault_model = model);
  let h, entries, torn = Journal.load ~dir in
  check_bool "load model" true (h.Journal.fault_model = model);
  check_int "entries" 3 (Array.length entries);
  check_int "no torn bytes" 0 torn;
  (* fsck attributes every record to the header's model, cleanly. *)
  let r = Journal.fsck ~dir in
  check_bool "clean" true (r.Journal.fsck_errors = []);
  (match r.Journal.fsck_models with
  | [ (id, counts) ] ->
    check_int "model id" (Fault_model.id model) id;
    check_int "benign under model" 1 counts.(0);
    check_int "sdc under model" 1 counts.(2);
    check_int "skipped under model" 1 counts.(3)
  | l -> Alcotest.fail (Printf.sprintf "expected one model row, got %d" (List.length l)));
  (* Foreign nibbles: an unknown model id and a header-disagreeing one
     are problems to report, never a crash. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "active.bin")
  in
  output_string oc (craft_record ~model:9 ~kind:0 ~a:3 ~b:0);
  output_string oc (craft_record ~model:0 ~kind:1 ~a:4 ~b:0);
  close_out oc;
  let r = Journal.fsck ~dir in
  (* Three rows: nibble 9 is both unknown and header-disagreeing, nibble
     0 disagrees with the pinned mbu:2. *)
  check_int "both foreign nibbles reported" 3 (List.length r.Journal.fsck_errors);
  check_bool "unknown id named" true
    (List.exists (fun (_, p) -> contains p "unknown fault-model id 9") r.Journal.fsck_errors);
  check_bool "disagreeing id named" true
    (List.exists (fun (_, p) -> contains p "header pins") r.Journal.fsck_errors);
  check_int "records still counted" 5 r.Journal.fsck_records;
  check_int "three model rows now" 3 (List.length r.Journal.fsck_models);
  rm_rf dir

(* Resuming a journal under a different model must refuse, naming the
   field (bin/campaign additionally maps this to its own exit code via
   read_header before any engine is built). *)
let test_resume_model_mismatch () =
  let dir = scratch_dir () in
  let _, _, space, campaign = toy_campaign ~model:Fault_model.Seu () in
  let r = Durable.run campaign ~space ~seed:3 ~n:20 ~ident:("toy", "p") ~journal:dir () in
  check_bool "complete" true r.Durable.completed;
  let _, _, space2, campaign2 = toy_campaign ~model:(Fault_model.Mbu 2) () in
  (match
     Durable.run campaign2 ~space:space2 ~seed:3 ~n:20 ~ident:("toy", "p") ~journal:dir
       ~resume:true ()
   with
  | exception Journal.Error msg -> check_bool "names fault_model" true (contains msg "fault_model")
  | _ -> Alcotest.fail "model-mismatched resume must raise");
  rm_rf dir

(* --- proto: the chunk descriptor pins model and parameter ------------ *)

let test_proto_chunk_model () =
  let chunk =
    { Proto.chunk_id = 5; lo = 1; hi = 9; model = 3; model_param = 7; purpose = Proto.Verify }
  in
  match Proto.decode (Proto.encode (Proto.Assign chunk)) with
  | Proto.Assign got ->
    check_int "chunk_id" chunk.Proto.chunk_id got.Proto.chunk_id;
    check_int "model" chunk.Proto.model got.Proto.model;
    check_int "model_param" chunk.Proto.model_param got.Proto.model_param;
    check_bool "purpose" true (got.Proto.purpose = Proto.Verify)
  | _ -> Alcotest.fail "Assign did not round-trip"

let suite =
  [
    Alcotest.test_case "spec parsing and pinned ids" `Quick test_parse;
    Alcotest.test_case "model-keyed space shapes" `Quick test_space_shapes;
    Alcotest.test_case "SET expansion = brute reachability" `Quick test_set_expansion_brute;
    Alcotest.test_case "multi-flop one-cycle masking oracle" `Quick test_multi_benign;
    Alcotest.test_case "intermittent:1 degenerates to seu" `Slow test_intermittent_one_is_seu;
    Alcotest.test_case "avr: scalar/delta/fallback identity" `Slow test_avr_models_scalar_delta;
    Alcotest.test_case "msp: scalar/delta identity" `Slow test_msp_models_scalar_delta;
    Alcotest.test_case "audit 1.0 clean per model" `Quick test_audit_sound_per_model;
    Alcotest.test_case "audit quarantines unsound MATE" `Quick
      test_audit_quarantines_unsound_per_model;
    Alcotest.test_case "journal pins the model" `Quick test_journal_model_pinning;
    Alcotest.test_case "resume refuses a model mismatch" `Quick test_resume_model_mismatch;
    Alcotest.test_case "proto chunk carries the model" `Quick test_proto_chunk_model;
  ]
