(* Additional unit coverage across modules: memory devices, system
   harness, reference-model corners, RTL introspection, replay/select
   details, disassembly. *)

open Helpers
module Memory = Pruning_cpu.Memory
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Avr_isa = Pruning_cpu.Avr_isa
module Msp_asm = Pruning_cpu.Msp_asm
module Msp_isa = Pruning_cpu.Msp_isa
module Msp_ref = Pruning_cpu.Msp_ref
module Programs = Pruning_cpu.Programs
module Search = Pruning_mate.Search
module Term = Pruning_mate.Term
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Select = Pruning_mate.Select
module Fault_space = Pruning_fi.Fault_space

(* ---- memory devices ------------------------------------------------ *)

let test_avr_rom_beyond_end () =
  (* Fetching past the program end executes as NOP and the core just runs
     through empty memory. *)
  let program = Avr_asm.assemble [ Avr_asm.I (Avr_isa.Ldi (16, 42)) ] in
  let sys = System.create_avr ~program "tiny" in
  System.run sys ~cycles:50;
  Sim.eval sys.System.sim;
  let v = ref 0 in
  for i = 0 to 7 do
    let w = Netlist.find_wire sys.System.netlist (Printf.sprintf "rf_16[%d]" i) in
    if Sim.peek sys.System.sim w then v := !v lor (1 lsl i)
  done;
  check_int "ldi executed" 42 !v;
  check_int "pc ran on" 50 (Sim.get_port sys.System.sim "pmem_addr")

let test_msp_memory_word_semantics () =
  let program = Msp_asm.assemble [ Msp_asm.I (Msp_isa.Jmp (Msp_isa.Rel (-1))) ] in
  let sys = System.create_msp ~words:64 ~program "tiny" in
  (* Byte address bit 0 is ignored; addresses wrap modulo the size. *)
  check_int "program word 0" program.(0) sys.System.ram.(0);
  System.run sys ~cycles:20;
  check_int "still there" program.(0) sys.System.ram.(0)

let test_msp_memory_program_too_large () =
  Alcotest.check_raises "too large" (Invalid_argument "Memory.msp_memory: program too large")
    (fun () ->
      ignore (System.create_msp ~words:2 ~program:(Array.make 3 0) "boom"))

(* ---- reference models ----------------------------------------------- *)

let test_msp_ref_special_registers () =
  let t = Msp_ref.create ~words:64 ~program:[| 0x4303 (* MOV #0,R3 encoded as reg mov *) |] in
  check_int "r3 reads 0" 0 (Msp_ref.read_reg t 3);
  check_int "r0 is pc" 0 (Msp_ref.read_reg t 0);
  t.Msp_ref.flag_c <- true;
  t.Msp_ref.flag_v <- true;
  check_int "sr packs flags" 0b1001 (Msp_ref.read_reg t 2)

let test_avr_ref_halt_is_sticky () =
  let program = Avr_asm.assemble [ Avr_asm.L "h"; Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "h")) ] in
  let t = Pruning_cpu.Avr_ref.create ~program () in
  Pruning_cpu.Avr_ref.run t ~max_steps:10;
  check_bool "halted" true t.Pruning_cpu.Avr_ref.halted;
  let steps = t.Pruning_cpu.Avr_ref.steps in
  Pruning_cpu.Avr_ref.step t;
  check_int "no further steps" steps t.Pruning_cpu.Avr_ref.steps

(* ---- disassembly ----------------------------------------------------- *)

let test_avr_disassemble () =
  let words = Avr_asm.assemble [ Avr_asm.I (Avr_isa.Add (1, 2)); Avr_asm.I Avr_isa.Nop ] in
  Alcotest.(check (list string)) "listing" [ "ADD r1, r2"; "NOP" ] (Avr_asm.disassemble words);
  Alcotest.(check (list string)) "unknown word" [ ".word 0xFFFF" ]
    (Avr_asm.disassemble [| 0xFFFF |])

let test_msp_disassemble () =
  let words =
    Msp_asm.assemble
      [ Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 7, Msp_isa.Dreg 4)); Msp_asm.I (Msp_isa.Rra 5) ]
  in
  Alcotest.(check (list string)) "listing" [ "MOV #7, R4"; "RRA R5" ] (Msp_asm.disassemble words)

(* ---- RTL introspection ----------------------------------------------- *)

let test_circuit_introspection () =
  let open Signal in
  let c = create_circuit "intro" in
  let x = input c "x" 4 in
  let r = reg c ~init:3 "r" 4 in
  connect r (q r +: x);
  output c "o" (q r);
  Alcotest.(check (list (pair string int))) "inputs" [ ("x", 4) ] (circuit_inputs c);
  check_int "one reg" 1 (List.length (circuit_regs c));
  check_int "one output" 1 (List.length (circuit_outputs c));
  check_string "name" "intro" (circuit_name c);
  check_bool "nodes allocated" true (node_count c > 0)

let test_signal_errors () =
  let open Signal in
  let c = create_circuit "err" in
  Alcotest.check_raises "bad width" (Invalid_argument "Signal: bad width 0") (fun () ->
      ignore (input c "w0" 0));
  Alcotest.check_raises "const overflow"
    (Invalid_argument "Signal.const: 9 does not fit in 3 bits") (fun () ->
      ignore (const c ~width:3 9));
  let x = input c "x" 2 in
  Alcotest.check_raises "bit range" (Invalid_argument "Signal.bit 5 of width 2") (fun () ->
      ignore (bit x 5));
  Alcotest.check_raises "select range" (Invalid_argument "Signal.select [3:1] of width 2")
    (fun () -> ignore (select x ~hi:3 ~lo:1));
  Alcotest.check_raises "mux too many"
    (Invalid_argument "Signal.mux: more cases than selector values") (fun () ->
      ignore (mux (bit x 0) [ x; x; x ]));
  Alcotest.check_raises "dup port" (Invalid_argument "Signal.input: duplicate port x") (fun () ->
      ignore (input c "x" 2))

(* ---- replay/select corners -------------------------------------------- *)

let tiny_setup () =
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let sim = Sim.create nl in
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  (* 12 cycles to cross the one-byte bitset boundary in triggers. *)
  for i = 0 to 11 do
    List.iter
      (fun name -> Sim.set_port sim (name ^ "_in") (if (i + Char.code name.[0]) mod 3 = 0 then 1 else 0))
      [ "a"; "b"; "c"; "d"; "e" ];
    Sim.step sim ~trace ()
  done;
  (nl, set, trace)

let test_triggers_multibyte () =
  let nl, set, trace = tiny_setup () in
  let triggers = Replay.triggers set trace in
  check_int "12 cycles" 12 (Replay.n_cycles triggers);
  (* trigger_count sums over all cycles including cycle >= 8 *)
  let total =
    List.init (Mateset.size set) (fun i -> Replay.trigger_count triggers i)
    |> List.fold_left ( + ) 0
  in
  let by_cycles =
    List.init (Mateset.size set) (fun i ->
        List.length
          (List.filter (fun cycle -> Replay.triggered triggers ~mate:i ~cycle) (List.init 12 Fun.id)))
    |> List.fold_left ( + ) 0
  in
  check_int "count = cycles marked" by_cycles total;
  ignore nl

let test_masked_subset_smaller () =
  let nl, set, trace = tiny_setup () in
  let triggers = Replay.triggers set trace in
  let space = Fault_space.full nl ~cycles:12 in
  let all = Replay.masked_count (Replay.masked set triggers ~space ()) in
  let none = Replay.masked_count (Replay.masked set triggers ~space ~subset:[] ()) in
  check_int "empty subset masks nothing" 0 none;
  check_bool "full set masks something" true (all > 0);
  (* any singleton subset is at most the total *)
  for i = 0 to Mateset.size set - 1 do
    let single = Replay.masked_count (Replay.masked set triggers ~space ~subset:[ i ] ()) in
    check_bool "singleton <= all" true (single <= all)
  done

let test_select_top_overshoot () =
  let nl, set, trace = tiny_setup () in
  let triggers = Replay.triggers set trace in
  let space = Fault_space.full nl ~cycles:12 in
  let ranking = Select.rank set triggers ~space in
  let top_huge = Select.top ranking ~n:100000 in
  (* top drops zero-credit mates *)
  List.iter
    (fun i -> check_bool "has credit" true (List.assoc i ranking > 0))
    top_huge;
  check_bool "bounded by set size" true (List.length top_huge <= Mateset.size set);
  ignore nl

let test_space_cycles_exceed_trace () =
  (* A space longer than the trace is clamped: the replayable prefix masks
     exactly what a trace-length space masks, and the rows beyond the
     trace stay all-false (nothing provable without trace data). *)
  let nl, set, trace = tiny_setup () in
  let triggers = Replay.triggers set trace in
  let space = Fault_space.full nl ~cycles:50 in
  let matrix = Replay.masked set triggers ~space () in
  check_int "matrix spans the space" 50 (Array.length matrix);
  let clamped = Fault_space.full nl ~cycles:(Replay.n_cycles triggers) in
  let prefix = Replay.masked set triggers ~space:clamped () in
  check_int "same masking as trace-length space" (Replay.masked_count prefix)
    (Replay.masked_count matrix);
  for cycle = Replay.n_cycles triggers to 49 do
    Array.iter (fun b -> check_bool "beyond trace all-false" false b) matrix.(cycle)
  done

(* ---- search statistics ------------------------------------------------ *)

let test_unreachable_flop_always_true () =
  (* A flop whose Q drives nothing is trivially always-benign. *)
  let b = Netlist.Builder.create "island" in
  let q = Netlist.Builder.add_wire b "q" in
  let d = Netlist.Builder.add_wire b "d" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| q |] d;
  Netlist.Builder.add_flop b "f" ~d ~q;
  (* d is consumed by the flop, q only by the INV; the INV output feeds
     the flop D, so the fault does reach a sink. Add a true island: *)
  let q2 = Netlist.Builder.add_wire b "q2" in
  let d2 = Netlist.Builder.add_wire b "d2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.BUF) [| q |] d2;
  Netlist.Builder.add_flop b "g" ~d:d2 ~q:q2;
  let nl = Netlist.Builder.finalize b in
  (* q2 has no readers at all: a fault in flop g goes nowhere. *)
  let g = Netlist.find_flop nl "g" in
  let result = Search.search_wire nl Search.default_params g.Netlist.q in
  (match result.Search.outcome with
  | Search.Mates [ t ] -> check_bool "always true" true (Term.equal t Term.always_true)
  | _ -> Alcotest.fail "expected the always-true MATE");
  (* while flop f's fault reaches both flop Ds: check it is handled too *)
  let f = Netlist.find_flop nl "f" in
  let rf = Search.search_wire nl Search.default_params f.Netlist.q in
  check_bool "f not always-true" true (rf.Search.outcome <> Search.Mates [ Term.always_true ])

let test_search_pair_degenerate () =
  (* A "pair" of the same wire is just the single-wire problem. *)
  let nl = figure1_netlist () in
  let d = Netlist.find_wire nl "d" in
  let single = Search.search_wire nl Search.default_params d in
  let pair = Search.search_pair nl Search.default_params d d in
  check_int "same cone" single.Search.cone_size pair.Search.cone_size;
  match (single.Search.outcome, pair.Search.outcome) with
  | Search.Mates a, Search.Mates b ->
    Alcotest.(check int) "same mates" (List.length a) (List.length b)
  | _ -> Alcotest.fail "expected mates on both"

let suite =
  [
    Alcotest.test_case "avr rom beyond end" `Quick test_avr_rom_beyond_end;
    Alcotest.test_case "msp memory word semantics" `Quick test_msp_memory_word_semantics;
    Alcotest.test_case "msp program too large" `Quick test_msp_memory_program_too_large;
    Alcotest.test_case "msp ref special registers" `Quick test_msp_ref_special_registers;
    Alcotest.test_case "avr ref halt sticky" `Quick test_avr_ref_halt_is_sticky;
    Alcotest.test_case "avr disassemble" `Quick test_avr_disassemble;
    Alcotest.test_case "msp disassemble" `Quick test_msp_disassemble;
    Alcotest.test_case "circuit introspection" `Quick test_circuit_introspection;
    Alcotest.test_case "signal errors" `Quick test_signal_errors;
    Alcotest.test_case "triggers multibyte" `Quick test_triggers_multibyte;
    Alcotest.test_case "masked subsets" `Quick test_masked_subset_smaller;
    Alcotest.test_case "select top overshoot" `Quick test_select_top_overshoot;
    Alcotest.test_case "space longer than trace" `Quick test_space_cycles_exceed_trace;
    Alcotest.test_case "unreachable flop" `Quick test_unreachable_flop_always_true;
    Alcotest.test_case "degenerate pair" `Quick test_search_pair_degenerate;
  ]
