open Helpers
module Stats = Pruning_util.Stats
module Table = Pruning_util.Table
module Mono = Pruning_util.Mono

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "mean_int" 2. (Stats.mean_int [ 1; 2; 3 ])

let test_stats_median () =
  check_float "odd" 3. (Stats.median [ 5.; 3.; 1. ]);
  check_float "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  check_float "empty" 0. (Stats.median []);
  check_float "median_int" 2.5 (Stats.median_int [ 1; 2; 3; 4 ])

let test_stats_stddev () =
  check_float "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "pair" 1. (Stats.stddev [ 1.; 3. ]);
  check_float "singleton" 0. (Stats.stddev [ 7. ])

let test_percentage () =
  check_float "half" 50. (Stats.percentage 1 2);
  check_float "zero denominator" 0. (Stats.percentage 5 0)

let test_prng_determinism () =
  let a = Prng.create 7 in
  let b = Prng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_split_independent () =
  let rng = Prng.create 11 in
  let forked = Prng.split rng in
  let xs = List.init 20 (fun _ -> Prng.int rng 1000) in
  let ys = List.init 20 (fun _ -> Prng.int forked 1000) in
  check_bool "streams differ" true (xs <> ys)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 5 in
  let original = List.init 50 Fun.id in
  let shuffled = Prng.shuffle rng original in
  check_bool "same multiset" true (List.sort compare shuffled = original);
  check_bool "actually moved" true (shuffled <> original)

let test_prng_float_range () =
  let rng = Prng.create 23 in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_pick () =
  let rng = Prng.create 9 in
  for _ = 1 to 50 do
    check_bool "member" true (List.mem (Prng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Prng.pick rng ([] : int list)))

let test_prng_save_restore () =
  (* Exact round-trip: a restored sampler continues the stream the saved
     one would have produced, for any seed and any save point. *)
  let prop =
    QCheck.Test.make ~name:"prng save/restore resumes the exact stream" ~count:200
      QCheck.(pair small_nat (int_bound 50))
      (fun (seed, warmup) ->
        let rng = Prng.create seed in
        for _ = 1 to warmup do
          ignore (Prng.int rng 1000)
        done;
        let snap = Prng.save rng in
        let expected = List.init 20 (fun _ -> Prng.int rng 1_000_000) in
        let restored = Prng.restore snap in
        expected = List.init 20 (fun _ -> Prng.int restored 1_000_000))
  in
  QCheck.Test.check_exn prop;
  (* The serialized form is stable and self-describing. *)
  let rng = Prng.create 42 in
  let s = Prng.save rng in
  check_bool "tagged" true (String.length s = 27 && String.sub s 0 11 = "splitmix64:");
  check_string "idempotent" s (Prng.save (Prng.restore s));
  List.iter
    (fun bad ->
      match Prng.restore bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("restore must reject " ^ bad))
    [ ""; "splitmix64:"; "splitmix64:xyz"; "splitmix64:00112233445566778"; "mt19937:0011223344556677" ]

let test_crc32 () =
  (* The CRC-32 (IEEE) check value, and incremental = one-shot. *)
  let crc_check = Pruning_util.Crc.string "123456789" in
  check_int "check value" 0xCBF43926 crc_check;
  check_int "empty" 0 (Pruning_util.Crc.string "");
  let whole = Pruning_util.Crc.string "hello, world" in
  let part = Pruning_util.Crc.string "hello," in
  let b = Bytes.of_string "hello, world" in
  check_int "incremental" whole (Pruning_util.Crc.bytes ~crc:part b ~pos:6 ~len:6);
  check_bool "bit flip detected" true (whole <> Pruning_util.Crc.string "hello, worle")

let test_backoff_envelope () =
  (* Equal jitter: attempt k draws from [c/2, c) with c = min(cap,
     base*factor^k), so delays are bounded, grow towards the cap, and
     never collapse to zero (no same-instant retry storms). *)
  let module Backoff = Pruning_util.Backoff in
  let policy = { Backoff.base = 0.1; cap = 1.; factor = 2. } in
  let bo = Backoff.create ~policy (Prng.create 5) in
  List.iteri
    (fun k ceiling ->
      let d = Backoff.next bo in
      check_bool
        (Printf.sprintf "attempt %d in envelope" k)
        true
        (d >= (ceiling /. 2.) -. 1e-9 && d < ceiling);
      check_int "attempts counted" (k + 1) (Backoff.attempts bo))
    [ 0.1; 0.2; 0.4; 0.8; 1.0; 1.0; 1.0 ];
  Backoff.reset bo;
  check_int "reset clears attempts" 0 (Backoff.attempts bo);
  let d = Backoff.next bo in
  check_bool "reset restarts at base" true (d >= 0.05 -. 1e-9 && d < 0.1)

let test_backoff_deterministic () =
  let module Backoff = Pruning_util.Backoff in
  let draws seed =
    let bo = Backoff.create ~policy:Backoff.default_policy (Prng.create seed) in
    List.init 10 (fun _ -> Backoff.next bo)
  in
  check_bool "same rng, same schedule" true (draws 7 = draws 7);
  check_bool "different rng, different jitter" true (draws 7 <> draws 8);
  List.iter
    (fun policy ->
      match Backoff.create ~policy (Prng.create 1) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid policy must be rejected")
    [
      { Backoff.base = 0.; cap = 1.; factor = 2. };
      { Backoff.base = 2.; cap = 1.; factor = 2. };
      { Backoff.base = 0.1; cap = 1.; factor = 0.5 };
    ]

let test_table_render () =
  let t = Table.create [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "") in
  check_int "line count" 5 (List.length lines);
  check_string "header" "name    n" (List.nth lines 0);
  check_string "row 1" "alpha   1" (List.nth lines 2);
  check_string "row 2" "b      22" (List.nth lines 4)

let test_table_padding_and_errors () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  check_bool "padded ok" true (String.length (Table.render t) > 0);
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2"; "3"; "4" ])

(* The monotonic clock never steps backwards and tracks real elapsed
   time well enough for lease/deadline arithmetic. *)
let test_mono_clock () =
  let t0 = Mono.now () in
  let prev = ref t0 in
  for _ = 1 to 1000 do
    let t = Mono.now () in
    check_bool "monotone non-decreasing" true (t >= !prev);
    prev := t
  done;
  Unix.sleepf 0.05;
  let dt = Mono.now () -. t0 in
  check_bool "advances with real time" true (dt >= 0.04);
  check_bool "stays in the right ballpark" true (dt < 10.)

let suite =
  [
    Alcotest.test_case "monotonic clock" `Quick test_mono_clock;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats median" `Quick test_stats_median;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats percentage" `Quick test_percentage;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng float" `Quick test_prng_float_range;
    Alcotest.test_case "prng pick" `Quick test_prng_pick;
    Alcotest.test_case "prng save/restore" `Quick test_prng_save_restore;
    Alcotest.test_case "crc32" `Quick test_crc32;
    Alcotest.test_case "backoff envelope and reset" `Quick test_backoff_envelope;
    Alcotest.test_case "backoff determinism and validation" `Quick test_backoff_deterministic;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table padding and errors" `Quick test_table_padding_and_errors;
  ]
