(* Test helper for test_dist: a worker that completes the handshake,
   takes a chunk lease, and then stalls forever on its first experiment.
   The SIGKILL chaos test launches it as a real OS process (via
   create_process — Unix.fork is unavailable once domains exist) and
   kills it mid-chunk; it must never submit a single verdict. *)

module Journal = Pruning_fi.Journal
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module Worker = Pruning_fi.Worker
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs

let () =
  let port = int_of_string Sys.argv.(1) in
  (* Any engine works: the stall fires before the first injection, so
     the fault list and verdicts of this engine are never used. *)
  let resolve (h : Journal.header) =
    let nl = System.avr_netlist () in
    let program = Avr_asm.assemble Programs.avr_fib_halting in
    let make () = System.create_avr ~netlist:nl ~program "avr/fib" in
    let campaign = Campaign.create ~make ~total_cycles:h.Journal.cycles () in
    let space = Fault_space.full nl ~cycles:h.Journal.cycles in
    { Worker.campaign; space; skip = None; kernel = Campaign.Scalar }
  in
  ignore
    (Worker.run ~host:"127.0.0.1" ~port ~resolve ~name:"victim"
       ~fault:(fun ~chunk_id:_ ~index:_ ~attempt:_ -> Unix.sleep 3600)
       ())
