(* The activity-gated delta kernel.

   Evidence layers:
   - delta campaign verdicts — SDC cycles included — are bit-identical
     to the scalar checkpointed engine over hundreds of random faults on
     both cores, across checkpoint intervals (which the delta kernel
     ignores: its verdicts may not depend on them) and sample configs;
   - delta, scalar and batched run_sample stats coincide for equal
     seeds, with and without a skip predicate;
   - the retirement property: whenever the kernel's dirty set empties
     before the horizon, scalar replay of the same fault is Benign —
     empty-dirty-set retirement never misclassifies. *)

open Helpers
module Deltasim = Pruning_sim.Deltasim
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs

let total_cycles = 120
let n_pairs = 400

(* Makers: scalar + batched + delta over one shared synthesized core. *)
let avr_makers () =
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  ( nl,
    (fun () -> System.create_avr ~netlist:nl ~program "avr/fib"),
    (fun () -> System.create_avr_lanes ~netlist:nl ~program "avr/fib"),
    fun ~trace -> System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib" )

let msp_makers () =
  let nl = System.msp_netlist () in
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  ( nl,
    (fun () -> System.create_msp ~netlist:nl ~program "msp/fib"),
    (fun () -> System.create_msp_lanes ~netlist:nl ~program "msp/fib"),
    fun ~trace -> System.create_msp_delta ~netlist:nl ~program ~trace "msp/fib" )

let verdict_to_string v = Format.asprintf "%a" Campaign.pp_verdict v

let check_delta_matches_scalar name (nl, make, _make_lanes, make_delta) =
  let n_flops = Array.length nl.Netlist.flops in
  let rng = Prng.create 0xDECAF in
  let faults =
    Array.init n_pairs (fun _ ->
        (nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id, Prng.int rng total_cycles))
  in
  (* Scalar reference verdicts (checkpointed engine, validated against
     from-scratch re-simulation by the checkpoint suite). *)
  let scalar = Campaign.create ~make ~total_cycles () in
  let expected =
    Array.map (fun (flop_id, cycle) -> Campaign.inject scalar ~flop_id ~cycle) faults
  in
  (* The delta kernel never looks at checkpoints; running it inside
     campaigns with different intervals asserts exactly that. *)
  List.iter
    (fun interval ->
      let campaign =
        Campaign.create ~checkpoint_interval:interval ~make ~make_delta ~total_cycles ()
      in
      Array.iteri
        (fun i (flop_id, cycle) ->
          let v = Campaign.inject_delta campaign ~flop_id ~cycle in
          if v <> expected.(i) then
            Alcotest.failf "%s K=%d (flop %d, cycle %d): delta=%s, scalar=%s" name interval
              flop_id cycle (verdict_to_string v)
              (verdict_to_string expected.(i)))
        faults)
    [ 1; 13; total_cycles + 5 ]

let test_delta_avr () = check_delta_matches_scalar "avr" (avr_makers ())
let test_delta_msp () = check_delta_matches_scalar "msp430" (msp_makers ())

let test_run_sample_delta_stats () =
  (* Identical seed => identical fault list => identical stats across all
     three engines, with and without a skip predicate. *)
  let nl, make, make_lanes, make_delta = avr_makers () in
  let space = Fault_space.full nl ~cycles:total_cycles in
  let campaign = Campaign.create ~make ~make_lanes ~make_delta ~total_cycles () in
  let scalar = Campaign.run_sample campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  let batched = Campaign.run_sample_batched campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  let delta = Campaign.run_sample_delta campaign ~space ~rng:(Prng.create 4242) ~n:150 () in
  check_bool "delta = scalar stats" true (delta = scalar);
  check_bool "delta = batched stats" true (delta = batched);
  let skip ~flop_id ~cycle = (flop_id + cycle) mod 3 = 0 in
  let scalar_s = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip () in
  let delta_s = Campaign.run_sample_delta campaign ~space ~rng:(Prng.create 7) ~n:150 ~skip () in
  check_bool "stats equal (skip)" true (scalar_s = delta_s);
  check_bool "some skipped" true (delta_s.Campaign.skipped > 0);
  check_int "invariant" delta_s.Campaign.injections
    (delta_s.Campaign.benign + delta_s.Campaign.latent + delta_s.Campaign.sdc)

(* ------------------------------------------------------------------ *)
(* Retirement soundness, tested on the raw kernel: drive Deltasim by
   hand, and whenever the dirty set empties strictly before the horizon,
   the scalar engine must classify the same fault Benign. *)

let test_empty_dirty_set_is_benign () =
  let nl, make, _, make_delta = avr_makers () in
  let scalar = Campaign.create ~make ~total_cycles () in
  let sys = make () in
  let trace = System.record sys ~cycles:total_cycles in
  let d = make_delta ~trace in
  let ds = d.System.d_dsim in
  let n_flops = Array.length nl.Netlist.flops in
  let rng = Prng.create 0xF00D in
  let retired = ref 0 in
  for _ = 1 to 300 do
    let flop_id = nl.Netlist.flops.(Prng.int rng n_flops).Netlist.flop_id in
    let cycle = Prng.int rng total_cycles in
    Deltasim.attach ds ~cycle;
    Deltasim.flip_flop ds flop_id;
    (* Mirror the engine's observation order: a fault that corrupts an
       output is SDC and never retires, even if it re-converges later. *)
    let converged_at = ref None in
    let stop = ref false in
    let c = ref cycle in
    while (not !stop) && !converged_at = None && !c < total_cycles do
      Deltasim.propagate ds;
      if Deltasim.output_diverged ds then stop := true
      else if Deltasim.converged ds then converged_at := Some !c
      else begin
        Deltasim.latch ds;
        incr c
      end
    done;
    match !converged_at with
    | None -> ()
    | Some rc ->
      incr retired;
      check_bool "converged kernel has empty dirty set" true (Deltasim.n_dirty ds = 0);
      check_bool "converged kernel has clean devices" true (Deltasim.devices_clean ds);
      let v = Campaign.inject scalar ~flop_id ~cycle in
      if v <> Campaign.Benign then
        Alcotest.failf
          "empty dirty set at cycle %d (flop %d, injected %d) but scalar says %s" rc flop_id
          cycle (verdict_to_string v)
  done;
  (* The property must actually have been exercised. *)
  check_bool "some lanes retired early" true (!retired > 0)

let suite =
  [
    Alcotest.test_case "delta = scalar verdicts (AVR, 400 faults)" `Quick test_delta_avr;
    Alcotest.test_case "delta = scalar verdicts (MSP430, 400 faults)" `Quick test_delta_msp;
    Alcotest.test_case "run_sample_delta = scalar = batched stats" `Quick
      test_run_sample_delta_stats;
    Alcotest.test_case "empty dirty set => Benign under scalar replay" `Quick
      test_empty_dirty_set_is_benign;
  ]
