(* The self-healing layer: sliding-window restart budgets, the process
   supervisor itself (completion, restart-until-healed, SIGKILLed
   children, budget exhaustion, non-critical fleet members, cooperative
   stop, zombie-free reaping), coordinator epoch failover (a surviving
   worker rejoins a resumed coordinator, re-delivers in-flight verdicts
   and the final stats stay bit-identical), the journal's epoch
   persistence and offline fsck, and the process/disk chaos sites. *)

open Helpers
module Campaign = Pruning_fi.Campaign
module Chaos = Pruning_fi.Chaos
module Coordinator = Pruning_fi.Coordinator
module Fault_space = Pruning_fi.Fault_space
module Journal = Pruning_fi.Journal
module Supervisor = Pruning_fi.Supervisor
module Worker = Pruning_fi.Worker
module System = Pruning_cpu.System
module Backoff = Pruning_util.Backoff

let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pruning-sup-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf d;
  d

(* --- the restart budget ---------------------------------------------- *)

let test_budget_window () =
  let b = Supervisor.Budget.create ~max_restarts:3 ~window:10. in
  check_bool "1st admitted" true (Supervisor.Budget.note b ~now:0.);
  check_bool "2nd admitted" true (Supervisor.Budget.note b ~now:1.);
  check_bool "3rd admitted" true (Supervisor.Budget.note b ~now:2.);
  check_int "window full" 3 (Supervisor.Budget.used b ~now:2.);
  check_bool "4th refused" false (Supervisor.Budget.note b ~now:3.);
  (* A refused request is not recorded: nothing was restarted. *)
  check_int "refusal not recorded" 3 (Supervisor.Budget.used b ~now:3.);
  (* The timestamp at 0. ages out of the window at 10. *)
  check_bool "admitted once the oldest ages out" true (Supervisor.Budget.note b ~now:10.5);
  check_int "window holds three again" 3 (Supervisor.Budget.used b ~now:10.5);
  check_bool "and is full again" false (Supervisor.Budget.note b ~now:10.6);
  (* Quiet time regenerates the whole budget. *)
  check_int "all aged out" 0 (Supervisor.Budget.used b ~now:30.);
  check_bool "regenerated" true (Supervisor.Budget.note b ~now:30.)

let test_budget_zero () =
  let b = Supervisor.Budget.create ~max_restarts:0 ~window:1. in
  check_bool "zero budget refuses the first restart" false (Supervisor.Budget.note b ~now:0.)

let test_budget_validation () =
  (match Supervisor.Budget.create ~max_restarts:(-1) ~window:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget must raise");
  match Supervisor.Budget.create ~max_restarts:1 ~window:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive window must raise"

(* --- the supervisor over real processes ------------------------------ *)

(* The test binary already runs domains, so it cannot fork; children are
   real processes via create_process — the supervisor takes any
   pid-returning spawn. *)
let sh script () =
  Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; script |] Unix.stdin Unix.stdout Unix.stderr

let fast_config =
  {
    Supervisor.default_config with
    Supervisor.backoff = { Backoff.base = 0.01; cap = 0.05; factor = 2. };
    grace = 2.;
    tick = 0.01;
  }

let test_completed () =
  let started = ref 0 in
  let r =
    Supervisor.run ~config:fast_config
      ~on_event:(function Supervisor.Started _ -> incr started | _ -> ())
      [ { Supervisor.name = "c"; spawn = sh "exit 0"; critical = true } ]
  in
  (match r.Supervisor.outcome with
  | Supervisor.Completed 0 -> ()
  | _ -> Alcotest.fail "clean critical exit must complete the service");
  check_int "no restarts" 0 r.Supervisor.restarts;
  check_int "spawned once" 1 !started

let test_exhaustion () =
  let cfg = { fast_config with Supervisor.max_restarts = 2; window = 60. } in
  let gave_up = ref false in
  let r =
    Supervisor.run ~config:cfg
      ~on_event:(function Supervisor.Gave_up _ -> gave_up := true | _ -> ())
      [ { Supervisor.name = "c"; spawn = sh "exit 3"; critical = true } ]
  in
  (match r.Supervisor.outcome with
  | Supervisor.Exhausted { name = "c"; last_code = 3 } -> ()
  | _ -> Alcotest.fail "a persistently dying child must exhaust its budget");
  check_int "budget restarts spent first" 2 r.Supervisor.restarts;
  check_bool "Gave_up event emitted" true !gave_up

(* A counter file makes the child deterministically flaky: two failing
   incarnations, then success. The supervisor must ride it out. *)
let flaky_script counter ~failures ~fail_cmd =
  Printf.sprintf "n=$(cat %s 2>/dev/null || echo 0); n=$((n+1)); echo $n > %s; if [ $n -le %d ]; then %s; fi"
    counter counter failures fail_cmd

let test_flaky_heals () =
  let dir = scratch_dir () in
  Unix.mkdir dir 0o755;
  let script = flaky_script (Filename.concat dir "n") ~failures:2 ~fail_cmd:"exit 1" in
  let r =
    Supervisor.run ~config:fast_config
      [ { Supervisor.name = "flaky"; spawn = sh script; critical = true } ]
  in
  (match r.Supervisor.outcome with
  | Supervisor.Completed 0 -> ()
  | _ -> Alcotest.fail "a healing child must complete the service");
  check_int "exactly two restarts" 2 r.Supervisor.restarts;
  rm_rf dir

(* Death by SIGKILL — no exit code, no cleanup — is just another restart
   candidate. *)
let test_sigkilled_child_restarts () =
  let dir = scratch_dir () in
  Unix.mkdir dir 0o755;
  let script = flaky_script (Filename.concat dir "n") ~failures:2 ~fail_cmd:"kill -9 $$" in
  let signaled = ref false in
  let r =
    Supervisor.run ~config:fast_config
      ~on_event:(function
        | Supervisor.Exited { signaled = true; _ } -> signaled := true
        | _ -> ())
      [ { Supervisor.name = "victim"; spawn = sh script; critical = true } ]
  in
  (match r.Supervisor.outcome with
  | Supervisor.Completed 0 -> ()
  | _ -> Alcotest.fail "SIGKILLed child must be restarted to completion");
  check_int "two kills, two restarts" 2 r.Supervisor.restarts;
  check_bool "death by signal was observed" true !signaled;
  rm_rf dir

(* A non-critical fleet member finishing cleanly stays down; one dying is
   restarted without ending the service. *)
let test_noncritical_policy () =
  let dir = scratch_dir () in
  Unix.mkdir dir 0o755;
  let marker = Filename.concat dir "spawns" in
  let finished = ref false in
  let r =
    Supervisor.run ~config:fast_config
      ~on_event:(function
        | Supervisor.Finished { name = "done-worker"; _ } -> finished := true
        | _ -> ())
      [
        { Supervisor.name = "coord"; spawn = sh "sleep 0.5"; critical = true };
        {
          Supervisor.name = "done-worker";
          spawn = sh (Printf.sprintf "echo x >> %s" marker);
          critical = false;
        };
        {
          Supervisor.name = "flaky-worker";
          spawn = sh (flaky_script (Filename.concat dir "n") ~failures:1 ~fail_cmd:"exit 7");
          critical = false;
        };
      ]
  in
  (match r.Supervisor.outcome with
  | Supervisor.Completed 0 -> ()
  | _ -> Alcotest.fail "worker deaths must not end the service");
  check_bool "clean worker reported finished" true !finished;
  (* The finished worker was spawned exactly once — never restarted. *)
  let ic = open_in marker in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  check_int "finished worker spawned once" 1 !lines;
  check_int "flaky worker restarted" 1 r.Supervisor.restarts;
  rm_rf dir

let test_stopped () =
  let t0 = Unix.gettimeofday () in
  let r =
    Supervisor.run ~config:fast_config
      ~should_stop:(fun () -> Unix.gettimeofday () -. t0 > 0.15)
      [ { Supervisor.name = "c"; spawn = sh "sleep 30"; critical = true } ]
  in
  check_bool "stop request honored" true (r.Supervisor.outcome = Supervisor.Stopped);
  check_bool "shutdown did not wait for the sleep" true (Unix.gettimeofday () -. t0 < 10.)

let test_spec_validation () =
  (match Supervisor.run [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no children must raise");
  (match Supervisor.run [ { Supervisor.name = "a"; spawn = sh "exit 0"; critical = false } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no critical child must raise");
  match
    Supervisor.run
      [
        { Supervisor.name = "a"; spawn = sh "exit 0"; critical = true };
        { Supervisor.name = "b"; spawn = sh "exit 0"; critical = true };
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "two critical children must raise"

(* --- coordinator epoch failover -------------------------------------- *)

let toy_cycles = 8
let toy_n = 60
let toy_seed = 21

let toy_parts () =
  let nl = figure1_seq_netlist () in
  let make () =
    {
      System.kind = System.Avr;
      name = "toy";
      netlist = nl;
      sim = Sim.create nl;
      ram = [||];
      rf_prefix = "!none";
    }
  in
  let space = Fault_space.full nl ~cycles:toy_cycles in
  let campaign = Campaign.create ~make ~total_cycles:toy_cycles () in
  (space, campaign)

let toy_engine () =
  let space, campaign = toy_parts () in
  { Worker.campaign; space; skip = None; kernel = Campaign.Scalar }

let toy_reference () =
  let space, campaign = toy_parts () in
  Campaign.run_sample campaign ~space ~rng:(Prng.create toy_seed) ~n:toy_n ()

let make_header () =
  {
    Journal.core = "toy";
    program = "toy";
    cycles = toy_cycles;
    seed = toy_seed;
    samples = toy_n;
    prune = false;
    audit = 0.;
    shards = 0;
    batched = false;
    epoch = 0;
    fault_model = Pruning_fi.Fault_model.Seu;
    prng = Prng.save (Prng.create toy_seed);
    shard_prng = [||];
  }

let check_stats label (a : Campaign.stats) (b : Campaign.stats) =
  check_int (label ^ ": injections") a.Campaign.injections b.Campaign.injections;
  check_int (label ^ ": benign") a.Campaign.benign b.Campaign.benign;
  check_int (label ^ ": latent") a.Campaign.latent b.Campaign.latent;
  check_int (label ^ ": sdc") a.Campaign.sdc b.Campaign.sdc;
  check_int (label ^ ": skipped") a.Campaign.skipped b.Campaign.skipped;
  check_int (label ^ ": crashed") a.Campaign.crashed b.Campaign.crashed

let test_config =
  {
    Coordinator.default_config with
    Coordinator.chunk_size = 4;
    lease = 5.;
    tick = 0.01;
    drain = 10.;
  }

let serve_bg coord ~header ?journal ?resume ?should_stop ?on_event () =
  let result = ref None in
  let thread =
    Thread.create
      (fun () ->
        result :=
          Some
            (match Coordinator.serve coord ~header ?journal ?resume ?should_stop ?on_event () with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  fun () ->
    Thread.join thread;
    match !result with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false

let work_bg ~port ~name ~resolve ?reconnect_backoff ?max_reconnects ?results_per_frame ?readdress
    () =
  let report = ref None in
  let thread =
    Thread.create
      (fun () ->
        report :=
          Some
            (match
               Worker.run ~host:"127.0.0.1" ~port ~resolve ~name ?reconnect_backoff
                 ?max_reconnects ?results_per_frame ?readdress ()
             with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  fun () ->
    Thread.join thread;
    match !report with
    | Some (Ok r) -> r
    | Some (Error e) -> raise e
    | None -> assert false

(* The failover contract end-to-end, in-process: coordinator 1 dies
   partway; the surviving worker — generous reconnect budget, readdress
   following a mutable "port file" — rejoins coordinator 2 (resumed from
   the journal under a bumped epoch), re-delivers its in-flight verdicts,
   and the campaign finishes with stats bit-identical to the
   uninterrupted local reference. *)
let test_epoch_failover () =
  let reference = toy_reference () in
  let dir = scratch_dir () in
  let header = make_header () in
  let seen = Atomic.make 0 in
  let coord1 = Coordinator.create ~config:test_config () in
  let port1 = Coordinator.port coord1 in
  let addr = Atomic.make port1 in
  let join1 =
    serve_bg coord1 ~header ~journal:dir
      ~should_stop:(fun () -> Atomic.get seen >= 20)
      ~on_event:(function
        | Coordinator.Progress { done_; _ } -> Atomic.set seen done_
        | _ -> ())
      ()
  in
  let patient = { Backoff.base = 0.02; cap = 0.1; factor = 2. } in
  let w =
    work_bg ~port:port1 ~name:"survivor"
      ~resolve:(fun _ -> toy_engine ())
      ~results_per_frame:1 ~reconnect_backoff:patient ~max_reconnects:1000
      ~readdress:(fun () -> Some ("127.0.0.1", Atomic.get addr))
      ()
  in
  let r1 = join1 () in
  check_bool "phase 1 interrupted" false r1.Coordinator.completed;
  check_int "phase 1 serves epoch 0" 0 r1.Coordinator.epoch;
  (* The worker is now retrying a dead address. Resume on a fresh
     ephemeral port and let readdress steer it over. *)
  let coord2 = Coordinator.create ~config:test_config () in
  Atomic.set addr (Coordinator.port coord2);
  let rejoined = Atomic.make 0 in
  let join2 =
    serve_bg coord2 ~header ~journal:dir ~resume:true
      ~on_event:(function
        | Coordinator.Rejoined { stale_epoch = 0; epoch = 1; _ } -> Atomic.incr rejoined
        | _ -> ())
      ()
  in
  let r2 = join2 () in
  let rep = w () in
  check_bool "phase 2 completed" true r2.Coordinator.completed;
  check_int "epoch bumped by the resume" 1 r2.Coordinator.epoch;
  check_bool "recovered some verdicts" true (r2.Coordinator.recovered >= 20);
  check_bool "worker rejoin detected" true (r2.Coordinator.rejoined >= 1);
  check_bool "rejoin event carried both epochs" true (Atomic.get rejoined >= 1);
  check_stats "failover parity" reference r2.Coordinator.stats;
  check_bool "worker finished the campaign" true (rep.Worker.ended = Worker.Campaign_done);
  check_int "worker handshook two generations" 2 rep.Worker.epochs;
  check_bool "worker re-delivered in-flight verdicts" true (rep.Worker.redelivered > 0);
  check_bool "worker reconnected at least once" true (rep.Worker.reconnects >= 1);
  rm_rf dir

(* --- journal: epoch persistence and fsck ------------------------------ *)

let test_epoch_identity () =
  let h = make_header () in
  check_bool "epoch excluded from identity" true
    (Journal.same_campaign h { h with Journal.epoch = 5 });
  check_bool "core still part of identity" false
    (Journal.same_campaign h { h with Journal.core = "other" });
  (* require_match must also wave a bumped epoch through. *)
  Journal.require_match ~what:"test" h { h with Journal.epoch = 3 }

let test_update_header_epoch () =
  let dir = scratch_dir () in
  let header = make_header () in
  let w = Journal.create ~dir header in
  Journal.append w (Journal.Outcome (0, Journal.Benign));
  Journal.close w;
  Journal.update_header ~dir { header with Journal.epoch = 1 };
  let h, entries, _ = Journal.load ~dir in
  check_int "epoch persisted" 1 h.Journal.epoch;
  check_int "records untouched by the header swap" 1 (Array.length entries);
  (match Journal.update_header ~dir:(scratch_dir ()) header with
  | exception Journal.Error _ -> ()
  | () -> Alcotest.fail "update_header without a journal must raise");
  rm_rf dir

let test_fsck () =
  let dir = scratch_dir () in
  let header = make_header () in
  let w = Journal.create ~dir header in
  Journal.append w (Journal.Outcome (0, Journal.Benign));
  Journal.append w (Journal.Outcome (1, Journal.Sdc 3));
  Journal.append w (Journal.Outcome (2, Journal.Crashed));
  Journal.append w (Journal.Poisoned 7);
  Journal.close w;
  let r = Journal.fsck ~dir in
  check_bool "clean journal has no errors" true (r.Journal.fsck_errors = []);
  check_int "records" 4 r.Journal.fsck_records;
  check_int "benign count" 1 r.Journal.fsck_counts.(0);
  check_int "sdc count" 1 r.Journal.fsck_counts.(2);
  check_int "crashed count" 1 r.Journal.fsck_counts.(4);
  check_int "poisoned count" 1 r.Journal.fsck_counts.(6);
  check_int "covered samples" 3 r.Journal.fsck_covered;
  (match r.Journal.fsck_header with
  | Some h -> check_bool "header readable" true (Journal.same_campaign h header)
  | None -> Alcotest.fail "fsck must read the header");
  (* Corrupt the active segment: fsck reports damage, never raises. *)
  let active = Filename.concat dir "active.bin" in
  let fd = Unix.openfile active [ Unix.O_WRONLY ] 0 in
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let r2 = Journal.fsck ~dir in
  check_bool "corruption shows up as torn bytes" true (r2.Journal.fsck_torn_bytes > 0);
  check_bool "intact prefix count dropped" true (r2.Journal.fsck_records < 4);
  rm_rf dir;
  (* A missing journal is a report full of errors, not an exception. *)
  let r3 = Journal.fsck ~dir:(scratch_dir ()) in
  check_bool "missing journal reported" true (r3.Journal.fsck_errors <> []);
  check_bool "missing header is None" true (r3.Journal.fsck_header = None)

(* --- process and disk chaos sites ------------------------------------ *)

let test_process_sites_plan () =
  (* The default profile must never fire at the process sites: an
     unsupervised campaign cannot absorb a self-kill, and the chaos-soak
     exit-code contract depends on it. *)
  List.iter
    (fun site ->
      Array.iter
        (fun a -> check_bool "default profile quiet at process sites" true (a = Chaos.Pass))
        (Chaos.plan ~seed:5 site ~n:512))
    [ Chaos.Dispatch; Chaos.Drain; Chaos.Seal; Chaos.Disk ];
  (* The process profile arms kills and disk pressure — deterministically
     per seed, like every other site. *)
  let profile = { Chaos.process_profile with Chaos.budget = max_int } in
  let draws site = Chaos.plan ~profile ~seed:5 site ~n:4096 in
  check_bool "process profile kills at dispatch" true
    (Array.exists (fun a -> a = Chaos.Kill) (draws Chaos.Dispatch));
  check_bool "process profile kills at drain" true
    (Array.exists (fun a -> a = Chaos.Kill) (draws Chaos.Drain));
  check_bool "process profile pressures the disk" true
    (Array.exists (fun a -> a = Chaos.Disk_full) (draws Chaos.Disk));
  check_string "kill renders" "kill" (Chaos.action_to_string Chaos.Kill);
  check_string "disk-full renders" "disk-full" (Chaos.action_to_string Chaos.Disk_full)

(* Injected disk pressure at the Disk site: the writer pauses and
   retries instead of failing, records survive, and the stall is
   visible through [stalled] (the coordinator's backpressure signal). *)
let test_disk_pressure_append () =
  let dir = scratch_dir () in
  let header = make_header () in
  let chaos =
    Chaos.create ~profile:{ Chaos.quiet_profile with Chaos.disk_full = 1.; budget = 3 } ~seed:9 ()
  in
  let w = Journal.create ~chaos ~dir header in
  Journal.append w (Journal.Outcome (0, Journal.Benign));
  check_bool "writer reports pressure" true (Journal.stalled w);
  Journal.append w (Journal.Outcome (1, Journal.Latent));
  Journal.close w;
  let h, entries, torn = Journal.load ~dir in
  check_int "no torn bytes" 0 torn;
  check_int "both records survived the pressure" 2 (Array.length entries);
  check_bool "identity intact" true (Journal.same_campaign h header);
  rm_rf dir

let suite =
  [
    Alcotest.test_case "budget: sliding window math" `Quick test_budget_window;
    Alcotest.test_case "budget: zero budget" `Quick test_budget_zero;
    Alcotest.test_case "budget: validation" `Quick test_budget_validation;
    Alcotest.test_case "supervisor: clean completion" `Quick test_completed;
    Alcotest.test_case "supervisor: budget exhaustion escalates" `Quick test_exhaustion;
    Alcotest.test_case "supervisor: flaky child heals" `Quick test_flaky_heals;
    Alcotest.test_case "supervisor: SIGKILLed child restarts" `Quick test_sigkilled_child_restarts;
    Alcotest.test_case "supervisor: non-critical policy" `Quick test_noncritical_policy;
    Alcotest.test_case "supervisor: cooperative stop" `Quick test_stopped;
    Alcotest.test_case "supervisor: spec validation" `Quick test_spec_validation;
    Alcotest.test_case "failover: worker rejoins bumped epoch, stats identical" `Slow
      test_epoch_failover;
    Alcotest.test_case "journal: epoch is not identity" `Quick test_epoch_identity;
    Alcotest.test_case "journal: update_header persists the epoch" `Quick test_update_header_epoch;
    Alcotest.test_case "journal: fsck" `Quick test_fsck;
    Alcotest.test_case "chaos: process sites and profiles" `Quick test_process_sites_plan;
    Alcotest.test_case "chaos: disk pressure pauses, not fails" `Quick test_disk_pressure_append;
  ]
