let () =
  Alcotest.run "pruning"
    [
      ("util", Test_util.suite);
      ("cell", Test_cell.suite);
      ("netlist", Test_netlist.suite);
      ("rtl", Test_rtl.suite);
      ("sim", Test_sim.suite);
      ("vcd", Test_vcd.suite);
      ("cpu", Test_cpu.suite);
      ("fi", Test_fi.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("bitsim", Test_bitsim.suite);
      ("deltasim", Test_deltasim.suite);
      ("deltabatch", Test_deltabatch.suite);
      ("durable", Test_durable.suite);
      ("dist", Test_dist.suite);
      ("chaos", Test_chaos.suite);
      ("supervisor", Test_supervisor.suite);
      ("mate", Test_mate.suite);
      ("properties", Test_properties.suite);
      ("extensions", Test_extensions.suite);
      ("collapse", Test_collapse.suite);
      ("more", Test_more.suite);
      ("msp-fsm", Test_msp_fsm.suite);
      ("rtl-eval", Test_rtl_eval.suite);
      ("intercycle", Test_intercycle.suite);
      ("waveform", Test_waveform.suite);
      ("polish", Test_polish.suite);
      ("search-extra", Test_search_extra.suite);
      ("report", Test_report.suite);
      ("fault-model", Test_fault_model.suite);
      ("byzantine", Test_byzantine.suite);
    ]
