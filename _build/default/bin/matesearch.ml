(* matesearch: run the heuristic MATE search on a netlist and print the
   discovered fault-masking terms.

   Input is either one of the built-in cores (--core avr|msp430) or a
   netlist in the textual interchange format (--netlist file). *)

module Netlist = Pruning_netlist.Netlist
module Textio = Pruning_netlist.Textio
module Vcd = Pruning_vcd.Vcd
module Search = Pruning_mate.Search
module Mate_term = Pruning_mate.Term
module Mateset = Pruning_mate.Mateset
module System = Pruning_cpu.System
open Cmdliner

let load_netlist core file =
  match (core, file) with
  | Some "avr", None -> Ok (System.avr_netlist ())
  | Some "msp430", None -> Ok (System.msp_netlist ())
  | Some other, None -> Error (Printf.sprintf "unknown core %S (avr|msp430)" other)
  | None, Some path -> begin
    try Ok (Textio.load path) with
    | Sys_error m | Failure m -> Error m
    | Netlist.Invalid m -> Error ("invalid netlist: " ^ m)
  end
  | Some _, Some _ -> Error "--core and --netlist are mutually exclusive"
  | None, None -> Error "one of --core or --netlist is required"

let run core file vcd exclude_prefix depth max_terms max_candidates verbose =
  match load_netlist core file with
  | Error m ->
    prerr_endline ("matesearch: " ^ m);
    1
  | Ok nl ->
    let params =
      { Search.default_params with Search.depth; max_terms; max_candidates }
    in
    let flops =
      match exclude_prefix with
      | None -> Array.to_list nl.Netlist.flops
      | Some prefix -> Netlist.flops_excluding nl ~prefix
    in
    Printf.printf "netlist %s: %d gates, %d flops; searching %d faulty wires\n%!"
      nl.Netlist.name (Netlist.n_gates nl) (Netlist.n_flops nl) (List.length flops);
    let traces =
      match vcd with
      | None -> []
      | Some path ->
        let trace = Vcd.reorder (Vcd.parse_file path) nl in
        Printf.printf "seeding from %s (%d cycles)\n%!" path (Pruning_sim.Trace.n_cycles trace);
        [ trace ]
    in
    let report = Search.search_flops ~params ~traces nl flops in
    Printf.printf
      "search finished in %.2fs: %d unmaskable, %d candidates tried, %d MATEs\n"
      report.Search.runtime_s (Search.n_unmaskable report)
      (Search.total_candidates report) (Search.total_mates report);
    let set = Mateset.of_report report in
    Printf.printf "%d distinct MATEs after merging\n" (Mateset.size set);
    if verbose then
      List.iter
        (fun (fr : Search.flop_result) ->
          match fr.Search.result.Search.outcome with
          | Search.Unmaskable ->
            Printf.printf "%-16s unmaskable\n" fr.Search.flop.Netlist.flop_name
          | Search.Mates [] -> Printf.printf "%-16s no MATE found\n" fr.Search.flop.Netlist.flop_name
          | Search.Mates mates ->
            Printf.printf "%-16s %d MATEs, e.g. %s\n" fr.Search.flop.Netlist.flop_name
              (List.length mates)
              (Mate_term.to_string nl (List.hd mates)))
        report.Search.flop_results;
    0

let core =
  Arg.(value & opt (some string) None & info [ "core" ] ~docv:"CORE" ~doc:"Built-in core: avr or msp430.")

let netlist_file =
  Arg.(value & opt (some file) None & info [ "netlist" ] ~docv:"FILE" ~doc:"Netlist in textual interchange format.")

let exclude =
  Arg.(value & opt (some string) None
       & info [ "exclude-prefix" ] ~docv:"PREFIX"
           ~doc:"Exclude flip-flops whose name starts with PREFIX (e.g. rf_).")

let depth =
  Arg.(value & opt int Search.default_params.Search.depth
       & info [ "depth" ] ~doc:"Fault-propagation search depth.")

let max_terms =
  Arg.(value & opt int Search.default_params.Search.max_terms
       & info [ "max-terms" ] ~doc:"Gate-masking terms per MATE.")

let max_candidates =
  Arg.(value & opt int Search.default_params.Search.max_candidates
       & info [ "max-candidates" ] ~doc:"Candidate budget per faulty wire.")

let vcd =
  Arg.(value & opt (some file) None
       & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Exemplary execution trace (VCD, e.g. from cpusim --vcd) used to seed the search.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-flop results.")

let cmd =
  let doc = "heuristic fault-masking-term (MATE) search" in
  Cmd.v
    (Cmd.info "matesearch" ~doc)
    Term.(
      const run $ core $ netlist_file $ vcd $ exclude $ depth $ max_terms $ max_candidates
      $ verbose)

let () = exit (Cmd.eval' cmd)
