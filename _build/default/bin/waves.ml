(* waves: render recorded execution traces as ASCII waveforms.

   Works either from a live simulation of a built-in core/program or from
   a VCD file produced by cpusim (plus the matching --core to resolve
   wire names). *)

module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Waveform = Pruning_sim.Waveform
module Vcd = Pruning_vcd.Vcd
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
open Cmdliner

let default_names core =
  match core with
  | "msp430" -> [ "state"; "pc"; "ir"; "mem_addr"; "mem_wen" ]
  | _ -> [ "pc"; "ir"; "ir_valid[0]"; "sreg"; "portb" ]

let run core program vcd names from_cycle cycles =
  let netlist =
    match core with
    | "avr" -> System.avr_netlist ()
    | "msp430" -> System.msp_netlist ()
    | other ->
      prerr_endline ("waves: unknown core " ^ other);
      exit 1
  in
  let trace =
    match vcd with
    | Some path -> Vcd.reorder (Vcd.parse_file path) netlist
    | None ->
      let sys =
        match (core, program) with
        | "avr", "fib" -> System.create_avr ~netlist ~program:(Avr_asm.assemble Programs.avr_fib) "w"
        | "avr", "conv" ->
          System.create_avr ~netlist ~program:(Avr_asm.assemble Programs.avr_conv) "w"
        | "avr", "sort" ->
          System.create_avr ~netlist ~program:(Avr_asm.assemble Programs.avr_sort) "w"
        | "msp430", "fib" ->
          System.create_msp ~netlist ~program:(Msp_asm.assemble Programs.msp_fib) "w"
        | "msp430", "conv" ->
          System.create_msp ~netlist ~program:(Msp_asm.assemble Programs.msp_conv) "w"
        | _ ->
          prerr_endline "waves: unknown program (fib|conv|sort)";
          exit 1
      in
      System.record sys ~cycles:(from_cycle + cycles)
  in
  let wf = Waveform.create netlist trace in
  let names = if names = [] then default_names core else names in
  (try print_string (Waveform.render wf ~names ~from_cycle ~cycles) with
  | Not_found ->
    prerr_endline "waves: unknown wire or group name";
    exit 1
  | Invalid_argument m ->
    prerr_endline ("waves: " ^ m);
    exit 1);
  0

let core = Arg.(value & opt string "avr" & info [ "core" ] ~doc:"avr or msp430.")
let program = Arg.(value & opt string "fib" & info [ "program" ] ~doc:"fib, conv or sort.")
let vcd = Arg.(value & opt (some file) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Use a recorded VCD instead of simulating.")
let names = Arg.(value & opt_all string [] & info [ "w"; "wire" ] ~docv:"NAME" ~doc:"Wire or group to display (repeatable).")
let from_cycle = Arg.(value & opt int 0 & info [ "from" ] ~doc:"First cycle.")
let cycles = Arg.(value & opt int 60 & info [ "cycles" ] ~doc:"Window length.")

let cmd =
  Cmd.v
    (Cmd.info "waves" ~doc:"ASCII waveforms of core execution traces")
    Term.(const run $ core $ program $ vcd $ names $ from_cycle $ cycles)

let () = exit (Cmd.eval' cmd)
