(** Recorded wire-level execution trace.

    One packed bit row per clock cycle holding the stabilized value of
    every wire in that cycle (the paper's VCD-equivalent input to MATE
    selection and fault-space accounting). *)

type t

val create : n_wires:int -> t

val n_wires : t -> int

val n_cycles : t -> int

val append : t -> bool array -> unit
(** Record one cycle; the array length must equal [n_wires]. The array is
    copied. *)

val get : t -> cycle:int -> int -> bool
(** [get t ~cycle wire]. Raises [Invalid_argument] out of range. *)

val row : t -> cycle:int -> bool array
(** A fresh array with all wire values of one cycle. *)

val changed : t -> cycle:int -> int -> bool
(** [changed t ~cycle w] is true when the value of [w] differs from the
    previous cycle (always true at cycle 0): the VCD writer's delta
    source. *)
