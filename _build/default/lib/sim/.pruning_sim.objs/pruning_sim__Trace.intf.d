lib/sim/trace.mli:
