lib/sim/sim.mli: Pruning_netlist Trace
