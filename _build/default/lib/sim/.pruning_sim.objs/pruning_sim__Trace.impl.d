lib/sim/trace.ml: Array Bytes Char
