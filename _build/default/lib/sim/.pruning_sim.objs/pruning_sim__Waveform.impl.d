lib/sim/waveform.ml: Array Buffer List Printf Pruning_netlist String Trace
