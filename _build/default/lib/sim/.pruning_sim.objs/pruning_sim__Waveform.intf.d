lib/sim/waveform.mli: Pruning_netlist Trace
