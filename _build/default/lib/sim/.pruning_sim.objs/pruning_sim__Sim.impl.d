lib/sim/sim.ml: Array List Printf Pruning_cell Pruning_netlist Trace
