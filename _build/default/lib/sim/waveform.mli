(** ASCII waveform rendering of recorded traces — the debugging view for
    traces and MATE trigger windows.

    Single wires render as edge-styled lanes:
    {v
clk        _-_-_-_-
ir_valid   ___-----
    v}
    and multi-bit groups (wires named [base[i]]) as hex-value lanes with
    [|] marking change points. *)

type t

val create : Pruning_netlist.Netlist.t -> Trace.t -> t

val wire_lane : t -> string -> from_cycle:int -> cycles:int -> string
(** One wire by name, e.g. ["ir_valid[0]"]. Raises [Not_found]. *)

val vector_lane : t -> string -> from_cycle:int -> cycles:int -> string
(** A register/port group by base name, e.g. ["pc"] collects [pc[0..n]].
    Values are rendered in hex, one change per [|]. Raises [Not_found]
    when no wire matches. *)

val render : t -> names:string list -> from_cycle:int -> cycles:int -> string
(** Multi-lane view; each name is rendered as a vector when several wires
    share the base name and as a single wire otherwise. Includes a cycle
    ruler. *)
