type t = {
  n_wires : int;
  bytes_per_cycle : int;
  mutable rows : Bytes.t array; (* capacity-grown *)
  mutable n_cycles : int;
}

let create ~n_wires =
  if n_wires <= 0 then invalid_arg "Trace.create";
  { n_wires; bytes_per_cycle = (n_wires + 7) / 8; rows = Array.make 64 Bytes.empty; n_cycles = 0 }

let n_wires t = t.n_wires
let n_cycles t = t.n_cycles

let ensure_capacity t =
  if t.n_cycles >= Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) Bytes.empty in
    Array.blit t.rows 0 bigger 0 t.n_cycles;
    t.rows <- bigger
  end

let append t values =
  if Array.length values <> t.n_wires then invalid_arg "Trace.append: width mismatch";
  ensure_capacity t;
  let row = Bytes.make t.bytes_per_cycle '\000' in
  for w = 0 to t.n_wires - 1 do
    if values.(w) then begin
      let byte = Char.code (Bytes.get row (w lsr 3)) in
      Bytes.set row (w lsr 3) (Char.chr (byte lor (1 lsl (w land 7))))
    end
  done;
  t.rows.(t.n_cycles) <- row;
  t.n_cycles <- t.n_cycles + 1

let check t ~cycle w =
  if cycle < 0 || cycle >= t.n_cycles then invalid_arg "Trace: cycle out of range";
  if w < 0 || w >= t.n_wires then invalid_arg "Trace: wire out of range"

let get_unchecked t cycle w =
  Char.code (Bytes.get t.rows.(cycle) (w lsr 3)) land (1 lsl (w land 7)) <> 0

let get t ~cycle w =
  check t ~cycle w;
  get_unchecked t cycle w

let row t ~cycle =
  if cycle < 0 || cycle >= t.n_cycles then invalid_arg "Trace.row: cycle out of range";
  Array.init t.n_wires (fun w -> get_unchecked t cycle w)

let changed t ~cycle w =
  check t ~cycle w;
  if cycle = 0 then true
  else get_unchecked t cycle w <> get_unchecked t (cycle - 1) w
