module Netlist = Pruning_netlist.Netlist

type t = {
  nl : Netlist.t;
  trace : Trace.t;
}

let create nl trace =
  if Trace.n_wires trace <> Netlist.n_wires nl then
    invalid_arg "Waveform.create: trace does not match netlist";
  { nl; trace }

let check_window t ~from_cycle ~cycles =
  if from_cycle < 0 || cycles < 1 || from_cycle + cycles > Trace.n_cycles t.trace then
    invalid_arg "Waveform: window out of range"

let label_width = 14
let label name = Printf.sprintf "%-*s" label_width name

let vector_wires t base =
  (* A group is either a named port or a family of base[i] wires. *)
  let from_port =
    match Netlist.find_output_port t.nl base with
    | p -> Some p.Netlist.port_wires
    | exception Not_found -> begin
      match Netlist.find_input_port t.nl base with
      | p -> Some p.Netlist.port_wires
      | exception Not_found -> None
    end
  in
  match from_port with
  | Some wires when Array.length wires > 0 -> wires
  | _ -> begin
    let rec collect i acc =
      match Netlist.find_wire t.nl (Printf.sprintf "%s[%d]" base i) with
      | w -> collect (i + 1) (w :: acc)
      | exception Not_found -> List.rev acc
    in
    match collect 0 [] with
    | [] -> raise Not_found
    | wires -> Array.of_list wires
  end

let vector_value t wires cycle =
  let v = ref 0 in
  Array.iteri (fun i w -> if Trace.get t.trace ~cycle w then v := !v lor (1 lsl i)) wires;
  !v

(* Every lane renders one fixed-width cell per cycle so lanes align. *)
let wire_cells t name ~cell ~from_cycle ~cycles =
  let w = Netlist.find_wire t.nl name in
  let buffer = Buffer.create (cycles * cell) in
  for cycle = from_cycle to from_cycle + cycles - 1 do
    Buffer.add_string buffer
      (String.make cell (if Trace.get t.trace ~cycle w then '-' else '_'))
  done;
  Buffer.contents buffer

let vector_cells t base ~cell ~from_cycle ~cycles =
  let wires = vector_wires t base in
  let hex_digits = (Array.length wires + 3) / 4 in
  let buffer = Buffer.create (cycles * cell) in
  let previous = ref (-1) in
  for cycle = from_cycle to from_cycle + cycles - 1 do
    let v = vector_value t wires cycle in
    if v <> !previous then begin
      let s = Printf.sprintf "|%0*x" hex_digits v in
      let s = if String.length s > cell then String.sub s 0 cell else s in
      Buffer.add_string buffer (Printf.sprintf "%-*s" cell s);
      previous := v
    end
    else Buffer.add_string buffer (String.make cell ' ')
  done;
  Buffer.contents buffer

let is_vector t name =
  match vector_wires t name with
  | _ -> true
  | exception Not_found -> false

let cell_width t names =
  let digits =
    List.filter_map
      (fun name ->
        if is_vector t name then Some (((Array.length (vector_wires t name) + 3) / 4) + 1)
        else None)
      names
  in
  List.fold_left max 2 digits

let ruler ~cell ~from_cycle ~cycles =
  let buffer = Buffer.create (cycles * cell) in
  Buffer.add_string buffer (label "cycle");
  for i = 0 to cycles - 1 do
    let c = from_cycle + i in
    if c mod 5 = 0 then Buffer.add_string buffer (Printf.sprintf "%-*d" cell c)
    else Buffer.add_string buffer (String.make cell ' ')
  done;
  Buffer.contents buffer

let wire_lane t name ~from_cycle ~cycles =
  check_window t ~from_cycle ~cycles;
  label name ^ wire_cells t name ~cell:1 ~from_cycle ~cycles

let vector_lane t base ~from_cycle ~cycles =
  check_window t ~from_cycle ~cycles;
  let cell = cell_width t [ base ] in
  label base ^ vector_cells t base ~cell ~from_cycle ~cycles

let render t ~names ~from_cycle ~cycles =
  check_window t ~from_cycle ~cycles;
  let cell = cell_width t names in
  let lane name =
    if is_vector t name then label name ^ vector_cells t name ~cell ~from_cycle ~cycles
    else label name ^ wire_cells t name ~cell ~from_cycle ~cycles
  in
  String.concat "\n" (ruler ~cell ~from_cycle ~cycles :: List.map lane names) ^ "\n"
