(** End-to-end fault-injection campaign: the experiment a HAFI platform
    runs for every non-pruned fault. Each experiment boots a fresh system,
    runs it to the injection cycle, flips one flip-flop, and runs to the
    campaign horizon while watching the primary outputs.

    Verdicts:
    - [Benign]: outputs matched the golden run at every cycle and the
      final architectural state (flip-flops + memory) is identical;
    - [Latent]: outputs matched throughout, but internal state differs at
      the horizon (the fault may still surface later);
    - [Sdc n]: silent data corruption — outputs first diverged from the
      golden run at cycle [n]. *)

type verdict =
  | Benign
  | Latent
  | Sdc of int

type t

val create : make:(unit -> Pruning_cpu.System.t) -> total_cycles:int -> t
(** Runs the golden experiment once and caches its observables. [make]
    must produce a fresh, deterministic system each call. *)

val inject : t -> flop_id:int -> cycle:int -> verdict
(** One fault-injection experiment. [cycle] must be < [total_cycles]. *)

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
}

val run_sample :
  t ->
  space:Fault_space.t ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?skip:(flop_id:int -> cycle:int -> bool) ->
  unit ->
  stats
(** Randomly sample [n] faults from [space] and run them. [skip] marks
    faults already pruned (counted as [benign] without running — exactly
    what a MATE-enriched platform would do). *)

val pp_verdict : Format.formatter -> verdict -> unit
