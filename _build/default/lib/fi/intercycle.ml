module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim

type t = {
  flops : Netlist.flop array;
  cycles : int;
  class_id : int array array;
  n_classes : int;
}

let compute sim ~flops ~cycles =
  let nf = Array.length flops in
  let class_id = Array.init cycles (fun _ -> Array.make nf (-1)) in
  let next_class = ref 0 in
  (* The class of each flop's currently open run; -1 when no run is open. *)
  let open_run = Array.make nf (-1) in
  for cycle = 0 to cycles - 1 do
    Sim.eval sim;
    Array.iteri
      (fun fi (f : Netlist.flop) ->
        let id =
          match open_run.(fi) with
          | -1 ->
            let id = !next_class in
            incr next_class;
            id
          | id -> id
        in
        class_id.(cycle).(fi) <- id;
        (* If the fault defers, (f, cycle+1) joins the same class. *)
        if cycle < cycles - 1 && Oracle.defers sim ~flop_id:f.Netlist.flop_id then
          open_run.(fi) <- id
        else open_run.(fi) <- -1)
      flops;
    Sim.latch sim
  done;
  { flops; cycles; class_id; n_classes = !next_class }

let n_faults t = Array.length t.flops * t.cycles

let reduction_factor t =
  if t.n_classes = 0 then 1. else float_of_int (n_faults t) /. float_of_int t.n_classes

let representative t ~flop_index ~cycle =
  let id = t.class_id.(cycle).(flop_index) in
  let rec back c = if c > 0 && t.class_id.(c - 1).(flop_index) = id then back (c - 1) else c in
  back cycle
