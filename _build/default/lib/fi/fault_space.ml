module Netlist = Pruning_netlist.Netlist

type t = {
  netlist : Netlist.t;
  flops : Netlist.flop array;
  cycles : int;
}

let check_cycles cycles = if cycles <= 0 then invalid_arg "Fault_space: cycles must be positive"

let full netlist ~cycles =
  check_cycles cycles;
  { netlist; flops = Array.copy netlist.Netlist.flops; cycles }

let without_prefix netlist ~prefix ~cycles =
  check_cycles cycles;
  { netlist; flops = Array.of_list (Netlist.flops_excluding netlist ~prefix); cycles }

let size t = Array.length t.flops * t.cycles

let flop_index t flop_id =
  let n = Array.length t.flops in
  let rec go i =
    if i >= n then None
    else if t.flops.(i).Netlist.flop_id = flop_id then Some i
    else go (i + 1)
  in
  go 0
