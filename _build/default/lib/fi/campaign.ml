module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module System = Pruning_cpu.System
module Prng = Pruning_util.Prng

type verdict =
  | Benign
  | Latent
  | Sdc of int

type t = {
  make : unit -> System.t;
  total_cycles : int;
  out_wires : int array;
  golden_outputs : bool array array;  (** per cycle *)
  golden_flops : bool array;  (** at horizon *)
  golden_ram : int array;  (** at horizon *)
}

let output_wires nl =
  List.concat_map
    (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
    nl.Netlist.outputs
  |> Array.of_list

let read_outputs sim out_wires = Array.map (fun w -> Sim.peek sim w) out_wires

let read_flops sim nl =
  Array.map (fun (f : Netlist.flop) -> Sim.peek sim f.Netlist.q) nl.Netlist.flops

let create ~make ~total_cycles =
  let sys = make () in
  let nl = sys.System.netlist in
  let out_wires = output_wires nl in
  let golden_outputs = Array.make total_cycles [||] in
  for cycle = 0 to total_cycles - 1 do
    Sim.eval sys.System.sim;
    golden_outputs.(cycle) <- read_outputs sys.System.sim out_wires;
    Sim.latch sys.System.sim
  done;
  Sim.eval sys.System.sim;
  {
    make;
    total_cycles;
    out_wires;
    golden_outputs;
    golden_flops = read_flops sys.System.sim nl;
    golden_ram = Array.copy sys.System.ram;
  }

let inject t ~flop_id ~cycle =
  if cycle < 0 || cycle >= t.total_cycles then invalid_arg "Campaign.inject: cycle out of range";
  let sys = t.make () in
  let sim = sys.System.sim in
  let nl = sys.System.netlist in
  (* Run fault-free up to the injection cycle. *)
  for _ = 1 to cycle do
    Sim.step sim ()
  done;
  Sim.eval sim;
  Sim.set_flop sim flop_id (not (Sim.get_flop sim flop_id));
  (* Continue, watching the outputs. *)
  let divergence = ref None in
  let c = ref cycle in
  while !divergence = None && !c < t.total_cycles do
    Sim.eval sim;
    if read_outputs sim t.out_wires <> t.golden_outputs.(!c) then divergence := Some !c
    else begin
      Sim.latch sim;
      incr c
    end
  done;
  match !divergence with
  | Some n -> Sdc n
  | None ->
    Sim.eval sim;
    if read_flops sim nl = t.golden_flops && sys.System.ram = t.golden_ram then Benign
    else Latent

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
}

let run_sample t ~space ~rng ~n ?(skip = fun ~flop_id:_ ~cycle:_ -> false) () =
  let flops = space.Fault_space.flops in
  let stats = ref { injections = 0; benign = 0; latent = 0; sdc = 0 } in
  for _ = 1 to n do
    let flop = flops.(Prng.int rng (Array.length flops)) in
    let cycle = Prng.int rng (min space.Fault_space.cycles t.total_cycles) in
    let flop_id = flop.Netlist.flop_id in
    let s = !stats in
    if skip ~flop_id ~cycle then stats := { s with benign = s.benign + 1 }
    else begin
      let s = { s with injections = s.injections + 1 } in
      stats :=
        (match inject t ~flop_id ~cycle with
        | Benign -> { s with benign = s.benign + 1 }
        | Latent -> { s with latent = s.latent + 1 }
        | Sdc _ -> { s with sdc = s.sdc + 1 })
    end
  done;
  !stats

let pp_verdict ppf = function
  | Benign -> Format.fprintf ppf "benign"
  | Latent -> Format.fprintf ppf "latent"
  | Sdc n -> Format.fprintf ppf "SDC@%d" n
