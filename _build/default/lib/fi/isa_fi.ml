module Avr_ref = Pruning_cpu.Avr_ref
module Prng = Pruning_util.Prng

type verdict =
  | Benign
  | Latent
  | Sdc

type experiment = {
  reg : int;
  bit : int;
  at_step : int;
}

let golden_cache : (int array * int, Avr_ref.t) Hashtbl.t = Hashtbl.create 4

let golden ~program ~max_steps =
  match Hashtbl.find_opt golden_cache (program, max_steps) with
  | Some t -> t
  | None ->
    let t = Avr_ref.create ~program () in
    Avr_ref.run t ~max_steps;
    Hashtbl.replace golden_cache (program, max_steps) t;
    t

let avr_inject ~program ~max_steps { reg; bit; at_step } =
  if reg < 0 || reg > 31 then invalid_arg "Isa_fi: register out of range";
  if bit < 0 || bit > 7 then invalid_arg "Isa_fi: bit out of range";
  let g = golden ~program ~max_steps in
  let faulty = Avr_ref.create ~program () in
  Avr_ref.run faulty ~max_steps:at_step;
  faulty.Avr_ref.rf.(reg) <- faulty.Avr_ref.rf.(reg) lxor (1 lsl bit);
  Avr_ref.run faulty ~max_steps:(max_steps - at_step);
  if
    faulty.Avr_ref.ram <> g.Avr_ref.ram
    || faulty.Avr_ref.portb_writes <> g.Avr_ref.portb_writes
  then Sdc
  else if
    faulty.Avr_ref.rf <> g.Avr_ref.rf
    || faulty.Avr_ref.flag_c <> g.Avr_ref.flag_c
    || faulty.Avr_ref.flag_z <> g.Avr_ref.flag_z
    || faulty.Avr_ref.flag_n <> g.Avr_ref.flag_n
    || faulty.Avr_ref.flag_v <> g.Avr_ref.flag_v
  then Latent
  else Benign

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
}

let avr_campaign ~program ~max_steps ~rng ~n ?(regs = List.init 32 Fun.id) () =
  let regs = Array.of_list regs in
  let stats = ref { injections = 0; benign = 0; latent = 0; sdc = 0 } in
  for _ = 1 to n do
    let experiment =
      {
        reg = regs.(Prng.int rng (Array.length regs));
        bit = Prng.int rng 8;
        at_step = Prng.int rng (max 1 max_steps);
      }
    in
    let s = { !stats with injections = !stats.injections + 1 } in
    stats :=
      (match avr_inject ~program ~max_steps experiment with
      | Benign -> { s with benign = s.benign + 1 }
      | Latent -> { s with latent = s.latent + 1 }
      | Sdc -> { s with sdc = s.sdc + 1 })
  done;
  !stats

let pp_verdict ppf = function
  | Benign -> Format.fprintf ppf "benign"
  | Latent -> Format.fprintf ppf "latent"
  | Sdc -> Format.fprintf ppf "SDC"
