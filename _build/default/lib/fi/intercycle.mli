(** Inter-cycle fault equivalence classes.

    The paper points out that faults in the general-purpose register file
    "naturally live longer than one clock cycle" and are "more likely to
    be pruned on an inter-cycle pruning strategy" — the def/use-style
    collapsing used by ISA-level tools. This module computes those classes
    on the gate level: consecutive cycles in which a flop's fault defers
    unchanged (per {!Oracle.defers}) form one equivalence class, and a
    campaign needs to run only one experiment per class.

    MATEs (intra-cycle) and these classes (inter-cycle) compose: a class
    whose representative is pruned by a MATE... cannot exist — a deferring
    fault is by definition not masked — so the two prune disjoint parts of
    the fault space, exactly the complementarity the paper describes. *)

type t = {
  flops : Pruning_netlist.Netlist.flop array;
  cycles : int;
  class_id : int array array;  (** [cycle].(flop position): class index *)
  n_classes : int;
}

val compute : Pruning_sim.Sim.t -> flops:Pruning_netlist.Netlist.flop array -> cycles:int -> t
(** Advance the simulation [cycles] cycles, computing the deferral runs of
    every listed flop. *)

val n_faults : t -> int

val reduction_factor : t -> float
(** [n_faults / n_classes]: how many times fewer experiments an
    equivalence-aware campaign runs. *)

val representative : t -> flop_index:int -> cycle:int -> int
(** First cycle of the (flop, cycle) fault's class. *)
