lib/fi/isa_fi.ml: Array Format Fun Hashtbl List Pruning_cpu Pruning_util
