lib/fi/isa_fi.mli: Format Pruning_util
