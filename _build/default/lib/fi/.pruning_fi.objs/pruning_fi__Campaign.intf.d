lib/fi/campaign.mli: Fault_space Format Pruning_cpu Pruning_util
