lib/fi/oracle.mli: Pruning_netlist Pruning_sim
