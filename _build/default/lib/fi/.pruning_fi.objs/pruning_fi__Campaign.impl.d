lib/fi/campaign.ml: Array Fault_space Format List Pruning_cpu Pruning_netlist Pruning_sim Pruning_util
