lib/fi/oracle.ml: Array List Pruning_netlist Pruning_sim
