lib/fi/fault_space.mli: Pruning_netlist
