lib/fi/intercycle.ml: Array Oracle Pruning_netlist Pruning_sim
