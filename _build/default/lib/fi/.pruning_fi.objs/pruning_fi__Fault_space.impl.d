lib/fi/fault_space.ml: Array Pruning_netlist
