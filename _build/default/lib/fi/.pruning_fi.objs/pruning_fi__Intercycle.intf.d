lib/fi/intercycle.mli: Pruning_netlist Pruning_sim
