(** ISA-level fault injection on the architectural reference models — the
    software-based layer of the paper's Section 6.3.

    The paper argues that intra-cycle MATEs are most effective for
    microarchitectural state (stage buffers, status register) while faults
    in the general-purpose register file are ISA-visible and better served
    by software-based fault injection, and envisions combining HAFI at
    flip-flop level with ISA-level injection for register faults. This
    module provides that ISA-level layer for the AVR model: flip one
    register bit between two instructions of the reference interpreter and
    classify the outcome architecturally. *)

type verdict =
  | Benign  (** outputs and final architectural state match the golden run *)
  | Latent  (** outputs match but registers/flags differ at the horizon *)
  | Sdc  (** memory contents or the PORTB write sequence differ *)

type experiment = {
  reg : int;  (** register 0..31 *)
  bit : int;  (** bit 0..7 *)
  at_step : int;  (** instruction count before the flip *)
}

val avr_inject : program:int array -> max_steps:int -> experiment -> verdict
(** Run the golden interpreter to the halt point (or [max_steps]), then a
    faulty twin with the register bit flipped after [at_step] retired
    instructions, and compare. *)

type stats = {
  injections : int;
  benign : int;
  latent : int;
  sdc : int;
}

val avr_campaign :
  program:int array ->
  max_steps:int ->
  rng:Pruning_util.Prng.t ->
  n:int ->
  ?regs:int list ->
  unit ->
  stats
(** Sampled register-file campaign. [regs] restricts the injected
    registers (default: all 32). *)

val pp_verdict : Format.formatter -> verdict -> unit
