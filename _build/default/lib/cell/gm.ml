type literal = {
  pin : int;
  value : bool;
}

type term = literal list

let check_faulty (cell : Cell.t) faulty =
  if faulty = [] then invalid_arg "Gm: empty faulty set";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun pin ->
      if pin < 0 || pin >= cell.arity then
        invalid_arg (Printf.sprintf "Gm: pin %d outside %s" pin cell.name);
      if Hashtbl.mem seen pin then invalid_arg "Gm: duplicate faulty pin";
      Hashtbl.add seen pin ())
    faulty

let bitmask_of_pins pins = List.fold_left (fun m pin -> m lor (1 lsl pin)) 0 pins

(* Enumerate the assignments of the bit positions present in [mask];
   applies [f] to each assignment (an int whose set bits are within
   [mask]). *)
let iter_assignments mask f =
  let rec positions m = if m = 0 then [] else (m land -m) :: positions (m land (m - 1)) in
  let bits = Array.of_list (positions mask) in
  let n = Array.length bits in
  for combo = 0 to (1 lsl n) - 1 do
    let assignment = ref 0 in
    for j = 0 to n - 1 do
      if combo land (1 lsl j) <> 0 then assignment := !assignment lor bits.(j)
    done;
    f !assignment
  done

(* Masking property for a partial assignment (amask, avals): for every
   completion of trusted-but-unassigned pins, the output is constant over
   all values of the faulty pins. *)
let assignment_masks (cell : Cell.t) ~fmask ~amask ~avals =
  let all_pins = (1 lsl cell.arity) - 1 in
  let free = all_pins land lnot fmask land lnot amask in
  let ok = ref true in
  iter_assignments free (fun beta ->
      if !ok then begin
        let base = avals lor beta in
        let reference = Cell.eval_pattern cell base in
        iter_assignments fmask (fun s ->
            if Cell.eval_pattern cell (base lor s) <> reference then ok := false)
      end);
  !ok

let term_of_assignment amask avals =
  let rec build pin =
    if amask lsr pin = 0 then []
    else if amask land (1 lsl pin) <> 0 then
      { pin; value = avals land (1 lsl pin) <> 0 } :: build (pin + 1)
    else build (pin + 1)
  in
  build 0

let masks cell ~faulty term =
  check_faulty cell faulty;
  let fmask = bitmask_of_pins faulty in
  let amask = bitmask_of_pins (List.map (fun l -> l.pin) term) in
  if amask land fmask <> 0 then invalid_arg "Gm.masks: term mentions a faulty pin";
  let avals =
    List.fold_left (fun v l -> if l.value then v lor (1 lsl l.pin) else v) 0 term
  in
  assignment_masks cell ~fmask ~amask ~avals

(* A found term (amask', avals') subsumes (amask, avals) when it is a
   sub-assignment: amask' included in amask with agreeing values. *)
let subsumed found amask avals =
  List.exists
    (fun (amask', avals') -> amask' land lnot amask = 0 && avals land amask' = avals')
    found

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go n 0

let masking_terms (cell : Cell.t) ~faulty =
  check_faulty cell faulty;
  let fmask = bitmask_of_pins faulty in
  let all_pins = (1 lsl cell.arity) - 1 in
  let tmask = all_pins land lnot fmask in
  (* Trusted-pin subsets by ascending size, so minimality is a simple
     subsumption check against already-found terms. *)
  let subsets = ref [] in
  iter_assignments tmask (fun amask -> subsets := amask :: !subsets);
  let subsets = List.sort (fun a b -> compare (popcount a) (popcount b)) !subsets in
  let found = ref [] in
  List.iter
    (fun amask ->
      iter_assignments amask (fun avals ->
          if
            (not (subsumed !found amask avals))
            && assignment_masks cell ~fmask ~amask ~avals
          then found := (amask, avals) :: !found))
    subsets;
  !found
  |> List.rev
  |> List.map (fun (amask, avals) -> term_of_assignment amask avals)

let pin_name index = Printf.sprintf "a%d" (index + 1)

let term_to_string (_cell : Cell.t) term =
  match term with
  | [] -> "(true)"
  | _ ->
    let literal l = (if l.value then "" else "!") ^ pin_name l.pin in
    "(" ^ String.concat " & " (List.map literal term) ^ ")"

let cache : (Cell.kind * int, term list) Hashtbl.t = Hashtbl.create 64

let memoized_masking_terms (cell : Cell.t) ~faulty =
  check_faulty cell faulty;
  let key = (cell.kind, bitmask_of_pins faulty) in
  match Hashtbl.find_opt cache key with
  | Some terms -> terms
  | None ->
    let terms = masking_terms cell ~faulty in
    Hashtbl.add cache key terms;
    terms
