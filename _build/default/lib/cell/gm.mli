(** Gate-masking terms (Section 4, step 1 of the paper).

    For a cell with boolean function [F] and a set [S] of {e faulty} input
    pins, a gate-masking term is a minimal partial assignment [alpha] to
    pins outside [S] such that, for {e every} completion of the remaining
    trusted pins, the output of [F] is independent of the pins in [S].
    When [alpha] holds at run time, a fault entering the gate through any
    pin of [S] cannot change the gate output: the fault is stopped at this
    gate.

    Example from the paper: for a multiplexer [MUX(x, a, b)] with faulty
    select [{x}], the terms are [(not a && not b)] and [(a && b)] — if both
    data inputs agree, the select no longer matters. *)

type literal = {
  pin : int;  (** input-pin index of the cell *)
  value : bool;  (** required pin value *)
}

type term = literal list
(** A conjunction of pin literals, sorted by pin index, each pin at most
    once. The empty list is the always-true term (the output never depends
    on the faulty pins). *)

val masking_terms : Cell.t -> faulty:int list -> term list
(** [masking_terms cell ~faulty] computes all minimal gate-masking terms
    for the given faulty-pin set. The result contains only pins outside
    [faulty]. Terms are minimal: no term is implied by another returned
    term. Returns [[]] when the cell has no fault-masking capability for
    this faulty set (e.g. XOR gates). Raises [Invalid_argument] if [faulty]
    is empty, contains duplicates, or mentions pins outside the cell. *)

val masks : Cell.t -> faulty:int list -> term -> bool
(** [masks cell ~faulty term] checks the defining property directly (used
    by tests and by callers that build candidate terms themselves): under
    every completion of trusted pins consistent with [term], the cell
    output is constant across all values of the [faulty] pins. *)

val term_to_string : Cell.t -> term -> string
(** Human-readable rendering such as ["(!a2 & b)"] using generic pin
    names [a1], [a2], ... *)

val memoized_masking_terms : Cell.t -> faulty:int list -> term list
(** Same as {!masking_terms} but cached per (cell kind, faulty set); the
    whole-netlist MATE search calls this once per gate instance. *)
