(** Standard-cell library.

    A functional model of the combinational cells of a small ASIC standard
    cell library (the set mirrors the freely available 15nm Open Cell
    Library the paper synthesized against). Each cell is a single-output
    boolean function of up to {!max_arity} inputs, represented by its truth
    table. Sequential elements (D flip-flops) are not cells: the netlist
    layer models them separately, because the fault model and the simulator
    treat state elements specially.

    Pin conventions (input index order):
    - [MUX2]: inputs [(a, b, s)], output [s ? b : a];
    - [AOI21]: inputs [(a1, a2, b)], output [not ((a1 && a2) || b)];
    - [OAI21]: inputs [(a1, a2, b)], output [not ((a1 || a2) && b)];
    - [AOI22]/[OAI22]: two pairs, analogous;
    - [XOR3] is the full-adder sum, [MAJ3] the full-adder carry. *)

type kind =
  | INV
  | BUF
  | NAND2
  | NAND3
  | NAND4
  | NOR2
  | NOR3
  | NOR4
  | AND2
  | AND3
  | AND4
  | OR2
  | OR3
  | OR4
  | XOR2
  | XNOR2
  | MUX2
  | AOI21
  | AOI22
  | OAI21
  | OAI22
  | XOR3
  | MAJ3
  | TIEL  (** constant 0, no inputs *)
  | TIEH  (** constant 1, no inputs *)

type t = private {
  kind : kind;
  name : string;  (** library name, e.g. ["NAND2_X1"] *)
  arity : int;  (** number of input pins *)
  table : int;  (** truth table: bit [i] is the output for input pattern [i],
                    where bit [j] of [i] is the value of pin [j] *)
}

val max_arity : int
(** Largest cell arity in the library (4). *)

val of_kind : kind -> t
(** The library cell for a kind. *)

val all : t list
(** The whole catalogue. *)

val find_by_name : string -> t option
(** Look up a cell by its library name. *)

val eval : t -> bool array -> bool
(** [eval cell pins] applies the cell function. Raises [Invalid_argument]
    if [Array.length pins <> cell.arity]. *)

val eval_pattern : t -> int -> bool
(** [eval_pattern cell i] is the output for the input pattern [i] (bit [j]
    of [i] = pin [j]). *)

val kind_to_string : kind -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
