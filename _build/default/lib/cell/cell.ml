type kind =
  | INV
  | BUF
  | NAND2
  | NAND3
  | NAND4
  | NOR2
  | NOR3
  | NOR4
  | AND2
  | AND3
  | AND4
  | OR2
  | OR3
  | OR4
  | XOR2
  | XNOR2
  | MUX2
  | AOI21
  | AOI22
  | OAI21
  | OAI22
  | XOR3
  | MAJ3
  | TIEL
  | TIEH

type t = {
  kind : kind;
  name : string;
  arity : int;
  table : int;
}

let max_arity = 4

let kind_to_string = function
  | INV -> "INV"
  | BUF -> "BUF"
  | NAND2 -> "NAND2"
  | NAND3 -> "NAND3"
  | NAND4 -> "NAND4"
  | NOR2 -> "NOR2"
  | NOR3 -> "NOR3"
  | NOR4 -> "NOR4"
  | AND2 -> "AND2"
  | AND3 -> "AND3"
  | AND4 -> "AND4"
  | OR2 -> "OR2"
  | OR3 -> "OR3"
  | OR4 -> "OR4"
  | XOR2 -> "XOR2"
  | XNOR2 -> "XNOR2"
  | MUX2 -> "MUX2"
  | AOI21 -> "AOI21"
  | AOI22 -> "AOI22"
  | OAI21 -> "OAI21"
  | OAI22 -> "OAI22"
  | XOR3 -> "XOR3"
  | MAJ3 -> "MAJ3"
  | TIEL -> "TIEL"
  | TIEH -> "TIEH"

(* The boolean function of each kind, over a pin-value vector. The truth
   tables below are derived from these reference functions at module
   initialization, so the table and the function cannot drift apart. *)
let semantics kind (pin : int -> bool) =
  match kind with
  | INV -> not (pin 0)
  | BUF -> pin 0
  | NAND2 -> not (pin 0 && pin 1)
  | NAND3 -> not (pin 0 && pin 1 && pin 2)
  | NAND4 -> not (pin 0 && pin 1 && pin 2 && pin 3)
  | NOR2 -> not (pin 0 || pin 1)
  | NOR3 -> not (pin 0 || pin 1 || pin 2)
  | NOR4 -> not (pin 0 || pin 1 || pin 2 || pin 3)
  | AND2 -> pin 0 && pin 1
  | AND3 -> pin 0 && pin 1 && pin 2
  | AND4 -> pin 0 && pin 1 && pin 2 && pin 3
  | OR2 -> pin 0 || pin 1
  | OR3 -> pin 0 || pin 1 || pin 2
  | OR4 -> pin 0 || pin 1 || pin 2 || pin 3
  | XOR2 -> pin 0 <> pin 1
  | XNOR2 -> pin 0 = pin 1
  | MUX2 -> if pin 2 then pin 1 else pin 0
  | AOI21 -> not ((pin 0 && pin 1) || pin 2)
  | AOI22 -> not ((pin 0 && pin 1) || (pin 2 && pin 3))
  | OAI21 -> not ((pin 0 || pin 1) && pin 2)
  | OAI22 -> not ((pin 0 || pin 1) && (pin 2 || pin 3))
  | XOR3 -> (pin 0 <> pin 1) <> pin 2
  | MAJ3 -> (pin 0 && pin 1) || (pin 1 && pin 2) || (pin 0 && pin 2)
  | TIEL -> false
  | TIEH -> true

let arity_of_kind = function
  | TIEL | TIEH -> 0
  | INV | BUF -> 1
  | NAND2 | NOR2 | AND2 | OR2 | XOR2 | XNOR2 -> 2
  | NAND3 | NOR3 | AND3 | OR3 | MUX2 | AOI21 | OAI21 | XOR3 | MAJ3 -> 3
  | NAND4 | NOR4 | AND4 | OR4 | AOI22 | OAI22 -> 4

let table_of_kind kind =
  let arity = arity_of_kind kind in
  let table = ref 0 in
  for pattern = (1 lsl arity) - 1 downto 0 do
    let pin j = pattern land (1 lsl j) <> 0 in
    if semantics kind pin then table := !table lor (1 lsl pattern)
  done;
  !table

let make kind =
  {
    kind;
    name = kind_to_string kind ^ "_X1";
    arity = arity_of_kind kind;
    table = table_of_kind kind;
  }

let all_kinds =
  [
    INV; BUF; NAND2; NAND3; NAND4; NOR2; NOR3; NOR4; AND2; AND3; AND4; OR2;
    OR3; OR4; XOR2; XNOR2; MUX2; AOI21; AOI22; OAI21; OAI22; XOR3; MAJ3;
    TIEL; TIEH;
  ]

let all = List.map make all_kinds

let of_kind kind = List.find (fun c -> c.kind = kind) all

let find_by_name name = List.find_opt (fun c -> c.name = name) all

let eval_pattern cell pattern = cell.table land (1 lsl pattern) <> 0

let eval cell pins =
  if Array.length pins <> cell.arity then
    invalid_arg
      (Printf.sprintf "Cell.eval %s: expected %d pins, got %d" cell.name
         cell.arity (Array.length pins));
  let pattern = ref 0 in
  for j = 0 to cell.arity - 1 do
    if pins.(j) then pattern := !pattern lor (1 lsl j)
  done;
  eval_pattern cell !pattern

let equal a b = a.kind = b.kind

let pp ppf cell = Format.fprintf ppf "%s" cell.name
