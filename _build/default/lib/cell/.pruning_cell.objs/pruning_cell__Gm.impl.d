lib/cell/gm.ml: Array Cell Hashtbl List Printf String
