lib/cell/cell.ml: Array Format List Printf
