lib/cell/gm.mli: Cell
