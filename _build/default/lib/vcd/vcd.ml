module Netlist = Pruning_netlist.Netlist
module Trace = Pruning_sim.Trace

(* VCD identifier codes: little-endian base 94 over printable ASCII. *)
let id_of_index index =
  let buffer = Buffer.create 4 in
  let rec go n =
    Buffer.add_char buffer (Char.chr (33 + (n mod 94)));
    if n >= 94 then go ((n / 94) - 1)
  in
  go index;
  Buffer.contents buffer

let sanitize name = String.map (fun c -> if c = ' ' || c = '$' then '_' else c) name

let emit (nl : Netlist.t) trace add =
  if Trace.n_wires trace <> Netlist.n_wires nl then
    invalid_arg "Vcd: trace does not match netlist";
  let out fmt = Printf.ksprintf add fmt in
  out "$date\n  (pruning)\n$end\n";
  out "$version\n  pruning VCD writer\n$end\n";
  out "$timescale 1ns $end\n";
  out "$scope module %s $end\n" (sanitize nl.Netlist.name);
  for w = 0 to Netlist.n_wires nl - 1 do
    out "$var wire 1 %s %s $end\n" (id_of_index w) (sanitize (Netlist.wire_name nl w))
  done;
  out "$upscope $end\n$enddefinitions $end\n";
  let n_cycles = Trace.n_cycles trace in
  for cycle = 0 to n_cycles - 1 do
    out "#%d\n" cycle;
    if cycle = 0 then out "$dumpvars\n";
    for w = 0 to Netlist.n_wires nl - 1 do
      if Trace.changed trace ~cycle w then
        out "%c%s\n" (if Trace.get trace ~cycle w then '1' else '0') (id_of_index w)
    done;
    if cycle = 0 then out "$end\n"
  done;
  out "#%d\n" n_cycles

let write nl trace oc = emit nl trace (output_string oc)

let write_file nl trace path =
  let oc = open_out path in
  (try write nl trace oc
   with e ->
     close_out oc;
     raise e);
  close_out oc

let to_string nl trace =
  let buffer = Buffer.create 65536 in
  emit nl trace (Buffer.add_string buffer);
  Buffer.contents buffer

type parsed = {
  wire_names : string array;
  trace : Trace.t;
}

let split_words line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  let names = ref [] in
  let ids = Hashtbl.create 256 in
  let n_vars = ref 0 in
  let in_definitions = ref true in
  let body = ref [] in
  List.iteri
    (fun lineno line ->
      if !in_definitions then
        match split_words line with
        | [ "$var"; "wire"; "1"; id; name; "$end" ] ->
          Hashtbl.replace ids id !n_vars;
          names := name :: !names;
          incr n_vars
        | "$enddefinitions" :: _ -> in_definitions := false
        | _ -> ()
      else if line <> "" then body := (lineno + 1, line) :: !body)
    lines;
  if !n_vars = 0 then failwith "Vcd.parse: no variables declared";
  let trace = Trace.create ~n_wires:!n_vars in
  let current = Array.make !n_vars false in
  let have_time = ref false in
  let pending = ref false in
  let flush_row () =
    if !have_time then Trace.append trace current;
    pending := false
  in
  List.iter
    (fun (lineno, line) ->
      if String.length line > 0 && line.[0] = '#' then begin
        flush_row ();
        have_time := true
      end
      else if line = "$dumpvars" || line = "$end" then ()
      else begin
        let value =
          match line.[0] with
          | '0' -> false
          | '1' -> true
          | _ -> failwith (Printf.sprintf "Vcd.parse: line %d: unsupported: %s" lineno line)
        in
        let id = String.sub line 1 (String.length line - 1) in
        (match Hashtbl.find_opt ids id with
        | Some index -> current.(index) <- value
        | None -> failwith (Printf.sprintf "Vcd.parse: line %d: unknown id %s" lineno id));
        pending := true
      end)
    (List.rev !body);
  (* Tolerate dumps without the trailing timestamp marker. *)
  if !pending then flush_row ();
  { wire_names = Array.of_list (List.rev !names); trace }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let reorder parsed (nl : Netlist.t) =
  let index_of = Hashtbl.create 1024 in
  Array.iteri (fun i name -> Hashtbl.replace index_of name i) parsed.wire_names;
  let nw = Netlist.n_wires nl in
  let mapping =
    Array.init nw (fun w ->
        let name = sanitize (Netlist.wire_name nl w) in
        match Hashtbl.find_opt index_of name with
        | Some i -> i
        | None -> failwith (Printf.sprintf "Vcd.reorder: wire %s not in dump" name))
  in
  let out = Trace.create ~n_wires:nw in
  for cycle = 0 to Trace.n_cycles parsed.trace - 1 do
    let row = Trace.row parsed.trace ~cycle in
    Trace.append out (Array.map (fun i -> row.(i)) mapping)
  done;
  out
