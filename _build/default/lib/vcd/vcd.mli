(** Value-change-dump (IEEE 1364) writing and parsing.

    The paper's flow records a VCD per program/processor from netlist
    simulation and replays it for MATE selection; this module provides the
    same interchange point. Every netlist wire becomes a 1-bit VCD
    variable; one clock cycle is one timestep. Only scalar variables and
    the subset of the format we emit are supported by the parser. *)

val write : Pruning_netlist.Netlist.t -> Pruning_sim.Trace.t -> out_channel -> unit
(** Dump a trace. Variable names are the netlist wire names. *)

val write_file : Pruning_netlist.Netlist.t -> Pruning_sim.Trace.t -> string -> unit

val to_string : Pruning_netlist.Netlist.t -> Pruning_sim.Trace.t -> string

type parsed = {
  wire_names : string array;  (** by parsed wire index *)
  trace : Pruning_sim.Trace.t;  (** values indexed by parsed wire index *)
}

val parse : string -> parsed
(** Parse VCD text. Raises [Failure] with a line diagnostic on input we do
    not understand. *)

val parse_file : string -> parsed

val reorder : parsed -> Pruning_netlist.Netlist.t -> Pruning_sim.Trace.t
(** Re-index a parsed trace onto a netlist's wire numbering by name.
    Raises [Failure] if a netlist wire is missing from the dump. *)
