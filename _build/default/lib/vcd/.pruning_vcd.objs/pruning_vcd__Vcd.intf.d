lib/vcd/vcd.mli: Pruning_netlist Pruning_sim
