lib/vcd/vcd.ml: Array Buffer Char Hashtbl List Printf Pruning_netlist Pruning_sim String
