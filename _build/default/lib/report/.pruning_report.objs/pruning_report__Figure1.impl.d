lib/report/figure1.ml: Array Buffer Fun List Option Printf Pruning_cell Pruning_fi Pruning_mate Pruning_netlist Pruning_sim Pruning_util String
