lib/report/figure1.mli: Pruning_netlist
