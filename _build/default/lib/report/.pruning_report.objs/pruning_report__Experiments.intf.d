lib/report/experiments.mli: Pruning_cpu Pruning_fi Pruning_mate Pruning_netlist Pruning_sim Pruning_util
