module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone
module Cell = Pruning_cell.Cell
module Sim = Pruning_sim.Sim
module Trace = Pruning_sim.Trace
module Search = Pruning_mate.Search
module Term = Pruning_mate.Term
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Fault_space = Pruning_fi.Fault_space

let state_names = [ "a"; "b"; "c"; "d"; "e" ]

let build ~sequential =
  let b = Netlist.Builder.create (if sequential then "figure1seq" else "figure1") in
  let wire = Netlist.Builder.add_wire b in
  let state name =
    if sequential then begin
      let d_in = wire (name ^ "_in") in
      let q = wire name in
      Netlist.Builder.add_flop b name ~d:d_in ~q;
      Netlist.Builder.add_input_port b (name ^ "_in") [| d_in |];
      q
    end
    else begin
      let w = wire name in
      Netlist.Builder.add_input_port b name [| w |];
      w
    end
  in
  let a = state "a" in
  let wb = state "b" in
  let c = state "c" in
  let d = state "d" in
  let e = state "e" in
  let f = wire "f" and g = wire "g" and h = wire "h" in
  let k = wire "k" and l = wire "l" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.NAND2) [| a; wb |] f;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.XOR2) [| c; d |] g;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| e |] h;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| g; f |] k;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.OR2) [| g; h |] l;
  Netlist.Builder.add_output_port b "k" [| k |];
  Netlist.Builder.add_output_port b "l" [| l |];
  Netlist.Builder.add_output_port b "h" [| h |];
  Netlist.Builder.finalize b

let combinational () = build ~sequential:false
let sequential () = build ~sequential:true

let default_stimulus =
  [
    [ 1; 0; 1; 1; 0 ];
    [ 0; 1; 1; 0; 0 ];
    [ 1; 1; 0; 1; 0 ];
    [ 1; 1; 1; 1; 1 ];
    [ 0; 0; 0; 0; 0 ];
    [ 1; 0; 1; 0; 1 ];
    [ 1; 1; 1; 0; 0 ];
    [ 0; 1; 0; 1; 0 ];
  ]

let render_figure1a () =
  let nl = combinational () in
  let buffer = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "Figure 1a: fault cone and MATEs of the example circuit\n";
  out "  A = NAND(a,b)->f  B = XOR(c,d)->g  C = INV(e)->h\n";
  out "  D = AND(g,f)->k   E = OR(g,h)->l   outputs: k, l, h\n\n";
  let d = Netlist.find_wire nl "d" in
  let cone = Cone.compute nl d in
  let wires =
    List.init (Netlist.n_wires nl) Fun.id
    |> List.filter (Cone.member cone)
    |> List.map (Netlist.wire_name nl)
  in
  out "  fault cone of d: {%s} (%d gates)\n" (String.concat ", " wires) (Cone.size cone);
  out "  border wires: {%s}\n"
    (String.concat ", " (List.map (Netlist.wire_name nl) cone.Cone.border));
  List.iter
    (fun name ->
      let result = Search.search_wire nl Search.default_params (Netlist.find_wire nl name) in
      match result.Search.outcome with
      | Search.Unmaskable -> out "  %s: unmaskable (a path has no masking-capable gate)\n" name
      | Search.Mates mates ->
        out "  MATE(%s) = %s\n" name
          (String.concat " or " (List.map (Term.to_string nl) mates)))
    state_names;
  Buffer.contents buffer

let render_figure1b () =
  let nl = sequential () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let sim = Sim.create nl in
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  List.iter
    (fun values ->
      List.iter2 (fun name v -> Sim.set_port sim (name ^ "_in") v) state_names values;
      Sim.step sim ~trace ())
    default_stimulus;
  let cycles = List.length default_stimulus in
  let space = Fault_space.full nl ~cycles in
  let triggers = Replay.triggers set trace in
  let matrix = Replay.masked set triggers ~space () in
  let buffer = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "Figure 1b: fault-space pruning (%d flops x %d cycles)\n" (Netlist.n_flops nl) cycles;
  out "  '#' possibly effective, '.' pruned by a triggered MATE\n\n";
  out "       cycle 12345678\n";
  Array.iteri
    (fun _ (flop : Netlist.flop) ->
      let fi = Option.get (Fault_space.flop_index space flop.Netlist.flop_id) in
      out "  %-10s " flop.Netlist.flop_name;
      for cycle = 0 to cycles - 1 do
        out "%c" (if matrix.(cycle).(fi) then '.' else '#')
      done;
      out "\n")
    space.Fault_space.flops;
  let pruned = Replay.masked_count matrix in
  out "\n  pruned %d of %d faults (%.1f%%)\n" pruned (Fault_space.size space)
    (Pruning_util.Stats.percentage pruned (Fault_space.size space));
  Buffer.contents buffer
