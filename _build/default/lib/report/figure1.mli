(** The paper's running example (Figure 1): the five-gate circuit, its
    fault cone for wire [d], and the per-cycle fault-space pruning
    picture.

    Circuit: A = NAND(a,b) -> f, B = XOR(c,d) -> g, C = INV(e) -> h,
    D = AND(g,f) -> k, E = OR(g,h) -> l; outputs k, l and h. *)

val combinational : unit -> Pruning_netlist.Netlist.t
(** Inputs a..e are primary inputs (Figure 1a). *)

val sequential : unit -> Pruning_netlist.Netlist.t
(** Inputs a..e are flip-flops loaded from primary inputs [a_in]..[e_in]
    (the 5-flop x 8-cycle fault space of Figure 1b). *)

val default_stimulus : int list list
(** Eight cycles of [a; b; c; d; e] input values used by the Figure 1b
    reproduction. *)

val render_figure1a : unit -> string
(** Text rendering of Figure 1a: the cone of [d], its border wires, and
    the discovered MATEs (expected: exactly the paper's [(!f & h)]),
    plus the unmaskability of [e]. *)

val render_figure1b : unit -> string
(** Text rendering of Figure 1b: the 5 x 8 fault-space matrix where [.]
    marks a fault pruned by a triggered MATE and [#] a possibly effective
    fault, one row per flip-flop. *)
