(** Evaluation harness: reproduces the paper's experiments (Tables 1-3)
    on the two cores and the two test programs.

    [prepare] does the heavy lifting once per core — synthesize, simulate
    fib and conv for the trace length (the paper's 8500 cycles), run the
    MATE search for both faulty-wire sets ("FF" and "FF w/o RF") and
    replay the traces — and the table builders render the paper's rows
    from it. *)

type setup = {
  core_name : string;  (** "AVR" or "MSP430" *)
  netlist : Pruning_netlist.Netlist.t;
  rf_prefix : string;
  programs : (string * (Pruning_netlist.Netlist.t -> Pruning_cpu.System.t)) list;
      (** program name -> fresh system on a shared netlist *)
}

val avr_setup : unit -> setup
(** fib and conv on the AVR core. *)

val msp_setup : unit -> setup

type prepared = {
  setup : setup;
  params : Pruning_mate.Search.params;
  cycles : int;
  traces : (string * Pruning_sim.Trace.t) list;
  report_ff : Pruning_mate.Search.report;
  report_norf : Pruning_mate.Search.report;
  set_ff : Pruning_mate.Mateset.t;
  set_norf : Pruning_mate.Mateset.t;
  triggers_ff : (string * Pruning_mate.Replay.triggers) list;
  triggers_norf : (string * Pruning_mate.Replay.triggers) list;
  space_ff : Pruning_fi.Fault_space.t;
  space_norf : Pruning_fi.Fault_space.t;
}

val prepare :
  ?params:Pruning_mate.Search.params -> ?cycles:int -> setup -> prepared
(** [cycles] defaults to the paper's 8500. *)

val table1 : prepared list -> Pruning_util.Table.t
(** "Statistic for the heuristic MATE search": faulty wires, average and
    median cone, runtime, unmaskable wires, candidates, MATEs — one column
    pair (FF, FF w/o RF) per prepared core. *)

val table23 : prepared -> Pruning_util.Table.t
(** The paper's Table 2 (AVR) / Table 3 (MSP430): complete-set statistics
    per program and fault set, then top-\{10,50,100,200\} subsets selected
    on each program and cross-evaluated on both. *)

val mate_cost_table : prepared -> Pruning_util.Table.t
(** Section 6.1: LUT cost of the effective and top-N MATE sets. *)

type reduction_summary = {
  program : string;
  ff_percent : float;
  norf_percent : float;
}

val reductions : prepared -> reduction_summary list
(** Complete-set fault-space reduction per program (used by tests to check
    the headline shape claims). *)

val top_n_reduction :
  prepared -> select_on:string -> evaluate_on:string -> rf:bool -> n:int -> float
(** Percentage of the fault space pruned by the top-[n] MATEs selected on
    one program's trace and evaluated on another's. [rf] = include the
    register file (the "FF" column). *)
