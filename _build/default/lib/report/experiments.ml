module Netlist = Pruning_netlist.Netlist
module Trace = Pruning_sim.Trace
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Select = Pruning_mate.Select
module Cost = Pruning_mate.Cost
module Fault_space = Pruning_fi.Fault_space
module Table = Pruning_util.Table
module Stats = Pruning_util.Stats

type setup = {
  core_name : string;
  netlist : Netlist.t;
  rf_prefix : string;
  programs : (string * (Netlist.t -> System.t)) list;
}

let avr_setup () =
  let netlist = System.avr_netlist () in
  let make items name nl = System.create_avr ~netlist:nl ~program:(Avr_asm.assemble items) name in
  {
    core_name = "AVR";
    netlist;
    rf_prefix = Pruning_cpu.Avr_core.rf_prefix;
    programs =
      [ ("fib", make Programs.avr_fib "avr/fib"); ("conv", make Programs.avr_conv "avr/conv") ];
  }

let msp_setup () =
  let netlist = System.msp_netlist () in
  let make items name nl = System.create_msp ~netlist:nl ~program:(Msp_asm.assemble items) name in
  {
    core_name = "MSP430";
    netlist;
    rf_prefix = Pruning_cpu.Msp_core.rf_prefix;
    programs =
      [ ("fib", make Programs.msp_fib "msp/fib"); ("conv", make Programs.msp_conv "msp/conv") ];
  }

type prepared = {
  setup : setup;
  params : Search.params;
  cycles : int;
  traces : (string * Trace.t) list;
  report_ff : Search.report;
  report_norf : Search.report;
  set_ff : Mateset.t;
  set_norf : Mateset.t;
  triggers_ff : (string * Replay.triggers) list;
  triggers_norf : (string * Replay.triggers) list;
  space_ff : Fault_space.t;
  space_norf : Fault_space.t;
}

let prepare ?(params = Search.default_params) ?(cycles = 8500) setup =
  let nl = setup.netlist in
  let traces =
    List.map
      (fun (name, make) ->
        let sys = make nl in
        (name, System.record sys ~cycles))
      setup.programs
  in
  let all_flops = Array.to_list nl.Netlist.flops in
  let report_ff = Search.search_flops ~params ~traces:(List.map snd traces) nl all_flops in
  (* Per-wire results are independent, so the "FF w/o RF" report is the
     full report down-selected (with honest per-wire runtimes). *)
  let norf_flops = Netlist.flops_excluding nl ~prefix:setup.rf_prefix in
  let norf_ids = List.map (fun (f : Netlist.flop) -> f.Netlist.flop_id) norf_flops in
  let report_norf =
    Search.restrict report_ff (fun f -> List.mem f.Netlist.flop_id norf_ids)
  in
  let set_ff = Mateset.of_report report_ff in
  let set_norf = Mateset.of_report report_norf in
  {
    setup;
    params;
    cycles;
    traces;
    report_ff;
    report_norf;
    set_ff;
    set_norf;
    triggers_ff = List.map (fun (name, trace) -> (name, Replay.triggers set_ff trace)) traces;
    triggers_norf = List.map (fun (name, trace) -> (name, Replay.triggers set_norf trace)) traces;
    space_ff = Fault_space.full nl ~cycles;
    space_norf = Fault_space.without_prefix nl ~prefix:setup.rf_prefix ~cycles;
  }

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

let pow_string v =
  (* Compact 3.1e7-style rendering for large candidate counts, matching
     the paper's notation. *)
  if v < 1_000_000 then string_of_int v
  else Printf.sprintf "%.0fe6" (float_of_int v /. 1e6)

let table1 prepared_list =
  let headers =
    "metric"
    :: List.concat_map
         (fun p -> [ p.setup.core_name ^ " FF"; p.setup.core_name ^ " FF w/o RF" ])
         prepared_list
  in
  let t = Table.create headers in
  let row label f =
    Table.add_row t (label :: List.concat_map (fun p -> [ f p p.report_ff; f p p.report_norf ]) prepared_list)
  in
  row "Faulty wires" (fun _ r -> string_of_int (Search.n_faulty_wires r));
  row "Avg. cone [#gates]" (fun _ r -> Printf.sprintf "%.0f" (Search.avg_cone r));
  row "Med. cone [#gates]" (fun _ r -> Printf.sprintf "%.0f" (Search.median_cone r));
  row "Run time [s]" (fun _ r -> Printf.sprintf "%.1f" r.Search.runtime_s);
  row "#Unmaskable" (fun _ r -> string_of_int (Search.n_unmaskable r));
  row "#MATE candidates" (fun _ r -> pow_string (Search.total_candidates r));
  row "#MATE" (fun _ r -> string_of_int (Search.total_mates r));
  t

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3                                                       *)

let triggers_for p ~rf program =
  List.assoc program (if rf then p.triggers_ff else p.triggers_norf)

let set_for p ~rf = if rf then p.set_ff else p.set_norf
let space_for p ~rf = if rf then p.space_ff else p.space_norf

let effective_input_stats p ~rf program =
  let set = set_for p ~rf in
  let triggers = triggers_for p ~rf program in
  let effective = Replay.effective_indices triggers in
  let inputs =
    List.map
      (fun i -> float_of_int (Pruning_mate.Term.n_inputs set.Mateset.mates.(i).Mateset.term))
      effective
  in
  (List.length effective, Stats.mean inputs, Stats.stddev inputs)

let full_reduction p ~rf program =
  let set = set_for p ~rf in
  let triggers = triggers_for p ~rf program in
  Replay.reduction_percent set triggers ~space:(space_for p ~rf) ()

let ranking p ~rf ~select_on =
  Select.rank (set_for p ~rf) (triggers_for p ~rf select_on) ~space:(space_for p ~rf)

let top_n_reduction p ~select_on ~evaluate_on ~rf ~n =
  let subset = Select.top (ranking p ~rf ~select_on) ~n in
  Replay.reduction_percent (set_for p ~rf)
    (triggers_for p ~rf evaluate_on)
    ~space:(space_for p ~rf) ~subset ()

let program_names p = List.map fst p.setup.programs

let table23 p =
  let programs = program_names p in
  let headers =
    "metric"
    :: List.concat_map (fun prog -> [ prog ^ " FF"; prog ^ " FF w/o RF" ]) programs
  in
  let t = Table.create headers in
  let per_column f =
    List.concat_map (fun prog -> [ f ~rf:true prog; f ~rf:false prog ]) programs
  in
  Table.add_row t
    ("#Effective MATEs"
    :: per_column (fun ~rf prog ->
           let n, _, _ = effective_input_stats p ~rf prog in
           string_of_int n));
  Table.add_row t
    ("Avg. #inputs"
    :: per_column (fun ~rf prog ->
           let _, avg, std = effective_input_stats p ~rf prog in
           Printf.sprintf "%.1f±%.1f" avg std));
  Table.add_row t
    ("Masked faults"
    :: per_column (fun ~rf prog -> Printf.sprintf "%.2f%%" (full_reduction p ~rf prog)));
  List.iter
    (fun select_on ->
      Table.add_separator t;
      List.iter
        (fun n ->
          Table.add_row t
            (Printf.sprintf "Top %d (sel. %s)" n select_on
            :: per_column (fun ~rf prog ->
                   Printf.sprintf "%.2f%%" (top_n_reduction p ~select_on ~evaluate_on:prog ~rf ~n))))
        [ 10; 50; 100; 200 ])
    programs;
  t

(* ------------------------------------------------------------------ *)

let mate_cost_table p =
  let t = Table.create [ "MATE set"; "#MATEs"; "avg inputs"; "max inputs"; "LUTs" ] in
  let add label set subset =
    let summary = Cost.summarize set ?subset () in
    Table.add_row t
      [
        label;
        string_of_int summary.Cost.n_mates;
        Printf.sprintf "%.1f±%.1f" summary.Cost.avg_inputs summary.Cost.stddev_inputs;
        string_of_int summary.Cost.max_inputs;
        string_of_int summary.Cost.total_luts;
      ]
  in
  add "complete (FF)" p.set_ff None;
  add "complete (FF w/o RF)" p.set_norf None;
  List.iter
    (fun (select_on, _) ->
      List.iter
        (fun n ->
          let subset = Select.top (ranking p ~rf:true ~select_on) ~n in
          add (Printf.sprintf "top %d (FF, sel. %s)" n select_on) p.set_ff (Some subset))
        [ 50; 100 ])
    p.setup.programs;
  t

type reduction_summary = {
  program : string;
  ff_percent : float;
  norf_percent : float;
}

let reductions p =
  List.map
    (fun prog ->
      {
        program = prog;
        ff_percent = full_reduction p ~rf:true prog;
        norf_percent = full_reduction p ~rf:false prog;
      })
    (program_names p)
