lib/netlist/dot.mli: Cone Netlist
