lib/netlist/cone.ml: Array List Netlist Queue
