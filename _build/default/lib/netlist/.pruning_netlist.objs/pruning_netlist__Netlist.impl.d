lib/netlist/netlist.ml: Array Hashtbl List Option Printf Pruning_cell Queue String
