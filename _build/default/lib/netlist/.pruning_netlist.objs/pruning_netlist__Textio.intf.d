lib/netlist/textio.mli: Netlist
