lib/netlist/netlist.mli: Pruning_cell
