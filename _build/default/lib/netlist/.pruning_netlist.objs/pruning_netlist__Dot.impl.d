lib/netlist/dot.ml: Array Buffer Cone List Netlist Printf Pruning_cell String
