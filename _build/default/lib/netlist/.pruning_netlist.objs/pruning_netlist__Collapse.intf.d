lib/netlist/collapse.mli: Netlist
