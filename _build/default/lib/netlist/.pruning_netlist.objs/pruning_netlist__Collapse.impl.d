lib/netlist/collapse.ml: Array Fun Hashtbl List Netlist Option Pruning_cell
