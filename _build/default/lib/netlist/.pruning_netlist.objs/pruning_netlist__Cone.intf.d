lib/netlist/cone.mli: Netlist
