lib/netlist/textio.ml: Array Buffer Filename List Netlist Option Printf Pruning_cell String
