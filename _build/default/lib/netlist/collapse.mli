(** Structural stuck-at fault collapsing.

    The paper's related-work section contrasts MATEs with classic fault
    collapsing, which statically groups stuck-at faults with identical
    error behaviour before any test/injection campaign, and notes that
    "the combination of MATEs and fault collapsing could be profitable
    when all wires are subject to injection". This module provides that
    static layer: the textbook equivalence rules per gate type, closed
    under union-find.

    Rules implemented (single-output gates):
    - AND: output s-a-0 == each input s-a-0; NAND: output s-a-1 == each
      input s-a-0;
    - OR: output s-a-1 == each input s-a-1; NOR: output s-a-0 == each
      input s-a-1;
    - INV: output s-a-0 == input s-a-1 and vice versa; BUF: both
      polarities pass through;
    - fanout-free chains collapse transitively (via union-find).

    XOR/XNOR/MUX/AOI/OAI have no input-output equivalences under the
    single-fault assumption and contribute no rules. *)

type polarity =
  | Stuck_at_0
  | Stuck_at_1

type fault = {
  wire : Netlist.wire;
  polarity : polarity;
}

type t
(** Collapsed fault universe of one netlist. *)

val compute : Netlist.t -> t

val n_faults : t -> int
(** Total stuck-at faults: 2 x wires. *)

val n_classes : t -> int
(** Number of equivalence classes after collapsing. *)

val collapse_ratio : t -> float
(** [n_classes / n_faults] — the fraction of faults an injection campaign
    must still consider (always <= 1). *)

val representative : t -> fault -> fault
(** Canonical representative of a fault's equivalence class. *)

val equivalent : t -> fault -> fault -> bool

val classes : t -> fault list list
(** All classes with more than one member, largest first. *)
