module Cell = Pruning_cell.Cell

let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
      (List.init (String.length s) (String.get s)))

let to_string ?highlight_cone (nl : Netlist.t) =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let in_cone w =
    match highlight_cone with
    | Some cone -> Cone.member cone w
    | None -> false
  in
  let gate_in_cone (g : Netlist.gate) = in_cone g.output in
  out "digraph \"%s\" {\n  rankdir=LR;\n  node [fontname=monospace];\n" (escape nl.name);
  Array.iter
    (fun (g : Netlist.gate) ->
      let style = if gate_in_cone g then ", style=filled, fillcolor=lightsalmon" else "" in
      out "  g%d [shape=box, label=\"%s\"%s];\n" g.gate_id
        (Cell.kind_to_string g.cell.Cell.kind)
        style)
    nl.gates;
  Array.iter
    (fun (f : Netlist.flop) ->
      out "  f%d [shape=Msquare, label=\"%s\"];\n" f.flop_id (escape f.flop_name))
    nl.flops;
  let wire_source w =
    match nl.driver.(w) with
    | Netlist.Driver_gate gid -> Printf.sprintf "g%d" gid
    | Netlist.Driver_flop fid -> Printf.sprintf "f%d" fid
    | Netlist.Driver_input ->
      Printf.sprintf "w%d" w (* a dedicated node per primary-input wire *)
  in
  (* Primary inputs and outputs as ovals. *)
  List.iter
    (fun (p : Netlist.port) ->
      Array.iter
        (fun w -> out "  w%d [shape=oval, label=\"%s\"];\n" w (escape (Netlist.wire_name nl w)))
        p.port_wires)
    nl.inputs;
  List.iter
    (fun (p : Netlist.port) ->
      Array.iter
        (fun w ->
          out "  o%d [shape=oval, label=\"%s\", peripheries=2];\n" w
            (escape (Netlist.wire_name nl w));
          out "  %s -> o%d;\n" (wire_source w) w)
        p.port_wires)
    nl.outputs;
  let edge_attr w =
    let border =
      match highlight_cone with
      | Some cone -> List.mem w cone.Cone.border
      | None -> false
    in
    if in_cone w then " [color=red, penwidth=2]"
    else if border then " [style=dashed, color=blue]"
    else ""
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      Array.iter (fun w -> out "  %s -> g%d%s;\n" (wire_source w) g.gate_id (edge_attr w)) g.inputs)
    nl.gates;
  Array.iter
    (fun (f : Netlist.flop) -> out "  %s -> f%d%s;\n" (wire_source f.d) f.flop_id (edge_attr f.d))
    nl.flops;
  out "}\n";
  Buffer.contents buffer

let to_file ?highlight_cone nl path =
  let oc = open_out path in
  (try output_string oc (to_string ?highlight_cone nl)
   with e ->
     close_out oc;
     raise e);
  close_out oc
