(** Textual netlist interchange format.

    A small line-oriented format standing in for the structural Verilog the
    paper's flow exchanged between Design Compiler and the MATE search. One
    declaration per line:

    {v
netlist <name>
wire <id> <name>
gate <cellname> <out> <in...>
flop <name> <init:0|1> <d> <q>
input <port> <wire...>
output <port> <wire...>
    v}

    Wires must be declared before use; ids must be dense and ascending. *)

val save : Netlist.t -> string -> unit
(** Write a netlist to a file. *)

val to_string : Netlist.t -> string

val load : string -> Netlist.t
(** Read a netlist from a file. Raises [Netlist.Invalid] or [Failure] on
    malformed input. *)

val of_string : name:string -> string -> Netlist.t
(** Parse from a string; [name] is a fallback if the text has no
    [netlist] line. *)
