(** Fault cones (Section 3 of the paper).

    The fault cone of a wire [w] is the set of wires and combinational
    gates that a wrong value on [w] could reach within the current clock
    cycle: the forward closure of [w] through gates, stopping at flip-flop
    D pins and primary outputs. {e Border wires} are inputs of cone gates
    driven from outside the cone; only they can carry trusted values into
    the cone and mask the fault. *)

type t = {
  source : Netlist.wire;
  in_cone : bool array;  (** per wire: belongs to the cone *)
  gates : Netlist.gate list;  (** cone gates, in netlist topological order *)
  border : Netlist.wire list;  (** distinct border wires, ascending *)
  sinks_flops : int list;  (** flop ids whose D pin lies in the cone *)
  sinks_outputs : Netlist.wire list;  (** primary-output wires in the cone *)
  source_is_sink : bool;
      (** the faulty wire itself feeds a flop D or is a primary output, so
          no gate can ever mask it *)
}

val compute : Netlist.t -> Netlist.wire -> t
(** Forward cone of one wire. *)

val compute_multi : Netlist.t -> Netlist.wire list -> t
(** Joint forward cone of several simultaneously faulty wires (the paper's
    Section 6.2 multi-bit fault extension). [source] is the first wire;
    [source_is_sink] is true when {e any} source feeds a sink directly.
    Raises [Invalid_argument] on an empty list. *)

val size : t -> int
(** Number of gates in the cone (the paper's cone-size metric). *)

val member : t -> Netlist.wire -> bool

val border_count : t -> int
