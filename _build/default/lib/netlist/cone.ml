type t = {
  source : Netlist.wire;
  in_cone : bool array;
  gates : Netlist.gate list;
  border : Netlist.wire list;
  sinks_flops : int list;
  sinks_outputs : Netlist.wire list;
  source_is_sink : bool;
}

let compute_multi (nl : Netlist.t) sources =
  let source =
    match sources with
    | [] -> invalid_arg "Cone.compute_multi: no sources"
    | s :: _ -> s
  in
  let nw = Netlist.n_wires nl in
  let in_cone = Array.make nw false in
  let gate_in_cone = Array.make (Netlist.n_gates nl) false in
  let frontier = Queue.create () in
  List.iter
    (fun s ->
      if not in_cone.(s) then begin
        in_cone.(s) <- true;
        Queue.add s frontier
      end)
    sources;
  while not (Queue.is_empty frontier) do
    let w = Queue.pop frontier in
    Array.iter
      (fun gid ->
        if not gate_in_cone.(gid) then begin
          gate_in_cone.(gid) <- true;
          let out = nl.gates.(gid).output in
          if not in_cone.(out) then begin
            in_cone.(out) <- true;
            Queue.add out frontier
          end
        end)
      nl.readers.(w)
  done;
  (* Cone gates in topological order: filter the precomputed order. *)
  let gates =
    Array.to_list nl.topo
    |> List.filter_map (fun gid -> if gate_in_cone.(gid) then Some nl.gates.(gid) else None)
  in
  (* Border wires: inputs of cone gates outside the cone. *)
  let border_flags = Array.make nw false in
  List.iter
    (fun (g : Netlist.gate) ->
      Array.iter (fun w -> if not in_cone.(w) then border_flags.(w) <- true) g.inputs)
    gates;
  let border = ref [] in
  for w = nw - 1 downto 0 do
    if border_flags.(w) then border := w :: !border
  done;
  (* Sinks. *)
  let sinks_flops = ref [] in
  let sinks_outputs = ref [] in
  for w = nw - 1 downto 0 do
    if in_cone.(w) then begin
      if Array.length nl.flop_readers.(w) > 0 then
        sinks_flops := Array.to_list nl.flop_readers.(w) @ !sinks_flops;
      if nl.is_primary_output.(w) then sinks_outputs := w :: !sinks_outputs
    end
  done;
  let source_is_sink =
    List.exists
      (fun s -> nl.is_primary_output.(s) || Array.length nl.flop_readers.(s) > 0)
      sources
  in
  {
    source;
    in_cone;
    gates;
    border = !border;
    sinks_flops = !sinks_flops;
    sinks_outputs = !sinks_outputs;
    source_is_sink;
  }

let compute nl source = compute_multi nl [ source ]

let size t = List.length t.gates
let member t w = t.in_cone.(w)
let border_count t = List.length t.border
