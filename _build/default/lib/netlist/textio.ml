module Cell = Pruning_cell.Cell

let to_string (nl : Netlist.t) =
  let buffer = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "netlist %s\n" nl.name;
  Array.iteri (fun w name -> out "wire %d %s\n" w name) nl.wire_names;
  Array.iter
    (fun (g : Netlist.gate) ->
      out "gate %s %d %s\n" g.cell.Cell.name g.output
        (String.concat " " (List.map string_of_int (Array.to_list g.inputs))))
    nl.gates;
  Array.iter
    (fun (f : Netlist.flop) ->
      out "flop %s %d %d %d\n" f.flop_name (if f.init then 1 else 0) f.d f.q)
    nl.flops;
  let port kind (p : Netlist.port) =
    out "%s %s %s\n" kind p.port_name
      (String.concat " " (List.map string_of_int (Array.to_list p.port_wires)))
  in
  List.iter (port "input") nl.inputs;
  List.iter (port "output") nl.outputs;
  Buffer.contents buffer

let save nl path =
  let oc = open_out path in
  (try output_string oc (to_string nl)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let of_string ~name text =
  let lines = String.split_on_char '\n' text in
  let declared_name =
    List.find_map
      (fun line ->
        match split_words line with
        | [ "netlist"; n ] -> Some n
        | _ -> None)
      lines
  in
  let builder = Netlist.Builder.create (Option.value ~default:name declared_name) in
  let expected_wire = ref 0 in
  let parse_wire s =
    match int_of_string_opt s with
    | Some w -> w
    | None -> failwith (Printf.sprintf "Textio: bad wire id %S" s)
  in
  let handle_line lineno line =
    match split_words line with
    | [] -> ()
    | "#" :: _ -> ()
    | [ "netlist"; _ ] -> ()
    | [ "wire"; id; wname ] ->
      let id = parse_wire id in
      if id <> !expected_wire then
        failwith
          (Printf.sprintf "Textio: line %d: wire id %d, expected %d" lineno id !expected_wire);
      incr expected_wire;
      ignore (Netlist.Builder.add_wire builder wname)
    | "gate" :: cellname :: out :: ins ->
      let cell =
        match Cell.find_by_name cellname with
        | Some c -> c
        | None -> failwith (Printf.sprintf "Textio: line %d: unknown cell %s" lineno cellname)
      in
      Netlist.Builder.add_gate builder cell
        (Array.of_list (List.map parse_wire ins))
        (parse_wire out)
    | [ "flop"; fname; init; d; q ] ->
      Netlist.Builder.add_flop builder ~init:(init = "1") fname ~d:(parse_wire d)
        ~q:(parse_wire q)
    | "input" :: pname :: wires ->
      Netlist.Builder.add_input_port builder pname
        (Array.of_list (List.map parse_wire wires))
    | "output" :: pname :: wires ->
      Netlist.Builder.add_output_port builder pname
        (Array.of_list (List.map parse_wire wires))
    | _ -> failwith (Printf.sprintf "Textio: line %d: unparseable: %s" lineno line)
  in
  List.iteri (fun i l -> handle_line (i + 1) l) lines;
  Netlist.Builder.finalize builder

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~name:(Filename.remove_extension (Filename.basename path)) text
