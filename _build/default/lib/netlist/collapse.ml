module Cell = Pruning_cell.Cell

type polarity =
  | Stuck_at_0
  | Stuck_at_1

type fault = {
  wire : Netlist.wire;
  polarity : polarity;
}

type t = {
  parent : int array;  (** union-find over 2 x wires *)
  n_wires : int;
}

let id f = (2 * f.wire) + match f.polarity with Stuck_at_0 -> 0 | Stuck_at_1 -> 1

let fault_of_id i =
  { wire = i / 2; polarity = (if i land 1 = 0 then Stuck_at_0 else Stuck_at_1) }

let rec find t i =
  if t.parent.(i) = i then i
  else begin
    let root = find t t.parent.(i) in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then t.parent.(max ra rb) <- min ra rb

(* The net-level soundness condition: an input-pin rule may only be
   applied when the pin's net has no other observer (single gate reader,
   no flop, not a primary output) — otherwise the input fault has side
   effects the output fault does not. *)
let single_observer (nl : Netlist.t) w =
  Array.length nl.Netlist.readers.(w) = 1
  && Array.length nl.Netlist.flop_readers.(w) = 0
  && not nl.Netlist.is_primary_output.(w)

let compute (nl : Netlist.t) =
  let n_wires = Netlist.n_wires nl in
  let t = { parent = Array.init (2 * n_wires) Fun.id; n_wires } in
  let sa0 w = { wire = w; polarity = Stuck_at_0 } in
  let sa1 w = { wire = w; polarity = Stuck_at_1 } in
  Array.iter
    (fun (g : Netlist.gate) ->
      let out = g.Netlist.output in
      let each_input rule =
        Array.iter (fun w -> if single_observer nl w then rule w) g.Netlist.inputs
      in
      match g.Netlist.cell.Cell.kind with
      | Cell.AND2 | Cell.AND3 | Cell.AND4 ->
        each_input (fun w -> union t (id (sa0 w)) (id (sa0 out)))
      | Cell.NAND2 | Cell.NAND3 | Cell.NAND4 ->
        each_input (fun w -> union t (id (sa0 w)) (id (sa1 out)))
      | Cell.OR2 | Cell.OR3 | Cell.OR4 ->
        each_input (fun w -> union t (id (sa1 w)) (id (sa1 out)))
      | Cell.NOR2 | Cell.NOR3 | Cell.NOR4 ->
        each_input (fun w -> union t (id (sa1 w)) (id (sa0 out)))
      | Cell.INV ->
        each_input (fun w ->
            union t (id (sa0 w)) (id (sa1 out));
            union t (id (sa1 w)) (id (sa0 out)))
      | Cell.BUF ->
        each_input (fun w ->
            union t (id (sa0 w)) (id (sa0 out));
            union t (id (sa1 w)) (id (sa1 out)))
      | Cell.XOR2 | Cell.XNOR2 | Cell.MUX2 | Cell.AOI21 | Cell.AOI22 | Cell.OAI21
      | Cell.OAI22 | Cell.XOR3 | Cell.MAJ3 | Cell.TIEL | Cell.TIEH -> ())
    nl.Netlist.gates;
  t

let n_faults t = 2 * t.n_wires

let n_classes t =
  let count = ref 0 in
  for i = 0 to (2 * t.n_wires) - 1 do
    if find t i = i then incr count
  done;
  !count

let collapse_ratio t = float_of_int (n_classes t) /. float_of_int (n_faults t)

let representative t f = fault_of_id (find t (id f))

let equivalent t a b = find t (id a) = find t (id b)

let classes t =
  let by_root = Hashtbl.create 64 in
  for i = 0 to (2 * t.n_wires) - 1 do
    let root = find t i in
    let members = Option.value ~default:[] (Hashtbl.find_opt by_root root) in
    Hashtbl.replace by_root root (fault_of_id i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> if List.length members > 1 then members :: acc else acc)
    by_root []
  |> List.sort (fun a b -> compare (List.length b) (List.length a))
