(** Graphviz export, mainly for debugging small circuits and for the
    quickstart example. *)

val to_string : ?highlight_cone:Cone.t -> Netlist.t -> string
(** Render the netlist as a [dot] digraph. When [highlight_cone] is given,
    cone gates and wires are drawn filled and border wires dashed, matching
    Figure 1a of the paper. *)

val to_file : ?highlight_cone:Cone.t -> Netlist.t -> string -> unit
