(** Plain-text table rendering for the evaluation harness.

    Renders the rows of the paper's Tables 1-3 in aligned monospace columns,
    in the spirit of the original publication. *)

type align =
  | Left
  | Right

type t
(** A table under construction. *)

val create : ?align:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [align] gives per-column alignment; it defaults to [Left] for the first
    column and [Right] for the rest, a layout that suits label + numbers. *)

val add_row : t -> string list -> unit
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule (used to separate table sections). *)

val render : t -> string
(** Render to a string, including a title rule and header. *)

val print : ?title:string -> t -> unit
(** Render to stdout with an optional title line. *)
