type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Separator

type t = {
  headers : string list;
  align : align list;
  mutable rows : row list; (* reversed *)
}

let default_align headers =
  match headers with
  | [] -> []
  | _ :: rest -> Left :: List.map (fun _ -> Right) rest

let create ?align headers =
  let align =
    match align with
    | Some a -> a
    | None -> default_align headers
  in
  { headers; align; rows = [] }

let add_row t cells =
  let ncols = List.length t.headers in
  let n = List.length cells in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let column_widths t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let update cells =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) cells
  in
  update t.headers;
  List.iter
    (function
      | Cells cells -> update cells
      | Separator -> ())
    t.rows;
  widths

let pad align width cell =
  let n = String.length cell in
  if n >= width then cell
  else
    let fill = String.make (width - n) ' ' in
    match align with
    | Left -> cell ^ fill
    | Right -> fill ^ cell

let render t =
  let widths = column_widths t in
  let aligns = Array.of_list t.align in
  let align_of i = if i < Array.length aligns then aligns.(i) else Right in
  let render_cells cells =
    cells
    |> List.mapi (fun i cell -> pad (align_of i) widths.(i) cell)
    |> String.concat "  "
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1)) in
  let rule = String.make (max total 1) '-' in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (render_cells t.headers);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer rule;
  Buffer.add_char buffer '\n';
  List.iter
    (function
      | Cells cells ->
        Buffer.add_string buffer (render_cells cells);
        Buffer.add_char buffer '\n'
      | Separator ->
        Buffer.add_string buffer rule;
        Buffer.add_char buffer '\n')
    (List.rev t.rows);
  Buffer.contents buffer

let print ?title t =
  (match title with
  | Some s -> Printf.printf "%s\n" s
  | None -> ());
  print_string (render t)
