let mean = function
  | [] -> 0.
  | values -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let stddev values =
  match values with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean values in
    let sq = List.map (fun v -> (v -. m) *. (v -. m)) values in
    sqrt (mean sq)

let median values =
  match values with
  | [] -> 0.
  | _ ->
    let sorted = List.sort compare values in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let mean_int values = mean (List.map float_of_int values)
let median_int values = median (List.map float_of_int values)

let percentage part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
