(** Small descriptive-statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean. Returns [0.] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. Returns [0.] on lists shorter than 2. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths). Returns
    [0.] on the empty list. *)

val mean_int : int list -> float
(** [mean] over integers. *)

val median_int : int list -> float
(** [median] over integers. *)

val percentage : int -> int -> float
(** [percentage part whole] is [100. *. part / whole], or [0.] when [whole]
    is zero. *)
