lib/util/prng.mli:
