lib/util/stats.mli:
