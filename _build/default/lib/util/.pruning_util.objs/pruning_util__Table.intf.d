lib/util/table.mli:
