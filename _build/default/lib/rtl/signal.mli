(** Word-level RTL construction DSL.

    A hardcaml-flavoured combinator library for describing synchronous
    circuits, which {!Synth} then lowers ("technology-maps") onto the
    standard-cell netlist. Signals are bit vectors (LSB first) built as a
    hash-consed DAG with aggressive constant folding, so the emitted
    netlist contains no constant-feeding logic.

    All vectors belong to a {!circuit}; mixing circuits raises
    [Invalid_argument], as do width mismatches. Widths are 1..62 (vector
    constants are plain [int]s). *)

type circuit
type t
(** A bit-vector signal. Single bits are width-1 vectors. *)

type reg
(** A register (bank of D flip-flops) whose next-value input is connected
    after creation, enabling feedback. *)

val create_circuit : string -> circuit

val input : circuit -> string -> int -> t
(** Declare a primary-input port of the given width. Port names must be
    unique within the circuit. *)

val const : circuit -> width:int -> int -> t
(** Constant vector. Bits above [width] must be zero. *)

val vdd : circuit -> t
(** Width-1 constant 1. *)

val gnd : circuit -> t
(** Width-1 constant 0. *)

val width : t -> int

val reg : circuit -> ?init:int -> string -> int -> reg
(** [reg c name width] declares a register bank; its flip-flops will be
    named [name[i]] in the netlist. [init] is the reset value (default 0). *)

val q : reg -> t
(** Current-state output of a register. *)

val connect : reg -> t -> unit
(** Connect the next-state input. Must be called exactly once per register
    before synthesis. *)

val connect_en : reg -> enable:t -> t -> unit
(** [connect_en r ~enable v] holds the register unless [enable] (width 1)
    is set: sugar for [connect r (mux2 enable v (q r))]. *)

val output : circuit -> string -> t -> unit
(** Declare a primary-output port. *)

(** {1 Bitwise logic} (operand widths must match) *)

val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t

(** {1 Arithmetic} *)

val ( +: ) : t -> t -> t
(** Modular addition, result has operand width. *)

val ( -: ) : t -> t -> t

val add_carry : t -> t -> cin:t -> t * t
(** Full addition: [(sum, carry_out)] with a width-1 carry-in. *)

val sub_borrow : t -> t -> bin:t -> t * t
(** [a - b - bin] as [(difference, borrow_out)]. *)

(** {1 Comparison} (width-1 results) *)

val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
(** Unsigned less-than. *)

val is_zero : t -> t

val eq_const : t -> int -> t
(** [eq_const v k] compares against a constant without creating one. *)

(** {1 Selection and assembly} *)

val mux2 : t -> t -> t -> t
(** [mux2 sel if_one if_zero]; [sel] has width 1, branches equal width. *)

val mux : t -> t list -> t
(** [mux sel cases] selects [cases[sel]] through a balanced MUX2 tree.
    When [cases] is shorter than [2^width sel], the last case is
    replicated; [cases] must be non-empty and at most [2^width sel]
    long. *)

val bit : t -> int -> t
(** [bit v i] extracts bit [i] (LSB = 0) as a width-1 vector. *)

val select : t -> hi:int -> lo:int -> t
(** Contiguous slice, inclusive. *)

val cat : t -> t -> t
(** [cat hi lo] concatenates; [lo] supplies the least-significant bits. *)

val concat : t list -> t
(** [concat [msb; ...; lsb]]. *)

val repeat : t -> int -> t
(** [repeat b n] replicates a width-1 vector [n] times. *)

val uresize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sresize : t -> int -> t
(** Sign-extend or truncate. *)

val sll : t -> int -> t
(** Logical shift left by a constant, keeping width. *)

val srl : t -> int -> t
(** Logical shift right by a constant, keeping width. *)

val reduce_or : t -> t
(** OR of all bits. *)

val reduce_and : t -> t

val reduce_xor : t -> t

(** {1 Introspection used by the synthesizer} *)

type bit_node = private
  | Const of bool
  | Input of { port : string; index : int; id : int }
  | Regq of { reg : reg_def; index : int; id : int }
  | Op of { op : op; args : bit_node array; id : int }

and op =
  | Op_not
  | Op_and
  | Op_or
  | Op_xor
  | Op_mux  (** args \[f; t; s\]: output [s ? t : f], matching cell MUX2 *)
  | Op_xor3
  | Op_maj3

and reg_def = private {
  reg_name : string;
  reg_width : int;
  reg_init : int;
  mutable reg_next : bit_node array option;
  mutable reg_q : bit_node array;
}

val bits : t -> bit_node array
val circuit_name : circuit -> string
val circuit_inputs : circuit -> (string * int) list
(** In declaration order. *)

val circuit_outputs : circuit -> (string * t) list
val circuit_regs : circuit -> reg_def list
val node_count : circuit -> int
(** Number of distinct hash-consed nodes, a pre-synthesis size measure. *)
