module Cell = Pruning_cell.Cell
module Netlist = Pruning_netlist.Netlist

let cell_of_op : Signal.op -> Cell.kind = function
  | Signal.Op_not -> Cell.INV
  | Signal.Op_and -> Cell.AND2
  | Signal.Op_or -> Cell.OR2
  | Signal.Op_xor -> Cell.XOR2
  | Signal.Op_mux -> Cell.MUX2
  | Signal.Op_xor3 -> Cell.XOR3
  | Signal.Op_maj3 -> Cell.MAJ3

let fused_kind : Signal.op -> Cell.kind option = function
  | Signal.Op_and -> Some Cell.NAND2
  | Signal.Op_or -> Some Cell.NOR2
  | Signal.Op_xor -> Some Cell.XNOR2
  | Signal.Op_not | Signal.Op_mux | Signal.Op_xor3 | Signal.Op_maj3 -> None

let node_id (b : Signal.bit_node) =
  match b with
  | Signal.Const _ -> -1
  | Signal.Input { id; _ } | Signal.Regq { id; _ } | Signal.Op { id; _ } -> id

let to_netlist circuit =
  let builder = Netlist.Builder.create (Signal.circuit_name circuit) in
  let regs = Signal.circuit_regs circuit in
  let outputs = Signal.circuit_outputs circuit in
  (* Root bit arrays: every register next-state plus every output. *)
  let reg_roots =
    List.map
      (fun (r : Signal.reg_def) ->
        match r.Signal.reg_next with
        | Some next -> (r, next)
        | None ->
          invalid_arg (Printf.sprintf "Synth: register %s never connected" r.Signal.reg_name))
      regs
  in
  (* Fanout counting over the DAG, multiplicity included, so the NAND/NOR/
     XNOR fusion only triggers for single-use inner nodes. *)
  let fanout : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let bump b =
    let id = node_id b in
    if id >= 0 then Hashtbl.replace fanout id (1 + Option.value ~default:0 (Hashtbl.find_opt fanout id))
  in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let rec visit (b : Signal.bit_node) =
    let id = node_id b in
    if id < 0 || Hashtbl.mem visited id then ()
    else begin
      Hashtbl.add visited id ();
      match b with
      | Signal.Op { args; _ } ->
        Array.iter bump args;
        Array.iter visit args
      | Signal.Const _ | Signal.Input _ | Signal.Regq _ -> ()
    end
  in
  let visit_roots bits = Array.iter (fun b -> bump b; visit b) bits in
  List.iter (fun (_, next) -> visit_roots next) reg_roots;
  List.iter (fun (_, v) -> visit_roots (Signal.bits v)) outputs;
  let fanout_of b = Option.value ~default:0 (Hashtbl.find_opt fanout (node_id b)) in
  (* Pre-create input-port and flop-Q wires so references resolve without
     ordering concerns (registers may feed back into themselves). *)
  let input_wires : (string, Netlist.wire array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, w) ->
      let wires =
        Array.init w (fun i -> Netlist.Builder.add_wire builder (Printf.sprintf "%s[%d]" name i))
      in
      Hashtbl.add input_wires name wires;
      Netlist.Builder.add_input_port builder name wires)
    (Signal.circuit_inputs circuit);
  let q_wires : (string, Netlist.wire array) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Signal.reg_def) ->
      let wires =
        Array.init r.Signal.reg_width (fun i ->
            Netlist.Builder.add_wire builder (Printf.sprintf "%s[%d]" r.Signal.reg_name i))
      in
      Hashtbl.add q_wires r.Signal.reg_name wires)
    regs;
  (* Shared constant drivers, created on demand. *)
  let const_wire_cache = [| None; None |] in
  let const_wire v =
    let idx = if v then 1 else 0 in
    match const_wire_cache.(idx) with
    | Some w -> w
    | None ->
      let w = Netlist.Builder.add_wire builder (if v then "const1" else "const0") in
      Netlist.Builder.add_gate builder
        (Cell.of_kind (if v then Cell.TIEH else Cell.TIEL))
        [||] w;
      const_wire_cache.(idx) <- Some w;
      w
  in
  let memo : (int, Netlist.wire) Hashtbl.t = Hashtbl.create 4096 in
  let gate_counter = ref 0 in
  let new_wire () =
    incr gate_counter;
    Netlist.Builder.add_wire builder (Printf.sprintf "n%d" !gate_counter)
  in
  let rec emit (b : Signal.bit_node) : Netlist.wire =
    match b with
    | Signal.Const v -> const_wire v
    | Signal.Input { port; index; _ } -> (Hashtbl.find input_wires port).(index)
    | Signal.Regq { reg; index; _ } -> (Hashtbl.find q_wires reg.Signal.reg_name).(index)
    | Signal.Op { op; args; id } -> begin
      match Hashtbl.find_opt memo id with
      | Some w -> w
      | None ->
        let w =
          match (op, args) with
          | Signal.Op_not, [| Signal.Op { op = inner_op; args = inner_args; _ } as inner |]
            when fused_kind inner_op <> None
                 && fanout_of inner = 1
                 && not (Hashtbl.mem memo (node_id inner)) ->
            (* Fuse NOT(AND/OR/XOR) into NAND2/NOR2/XNOR2. *)
            let kind = Option.get (fused_kind inner_op) in
            let in_wires = Array.map emit inner_args in
            let out = new_wire () in
            Netlist.Builder.add_gate builder (Cell.of_kind kind) in_wires out;
            out
          | _ ->
            let in_wires = Array.map emit args in
            let out = new_wire () in
            Netlist.Builder.add_gate builder (Cell.of_kind (cell_of_op op)) in_wires out;
            out
        in
        Hashtbl.add memo id w;
        w
    end
  in
  (* Flops. *)
  List.iter
    (fun ((r : Signal.reg_def), next) ->
      let qs = Hashtbl.find q_wires r.Signal.reg_name in
      Array.iteri
        (fun i d_bit ->
          let d = emit d_bit in
          let init = r.Signal.reg_init land (1 lsl i) <> 0 in
          Netlist.Builder.add_flop builder ~init
            (Printf.sprintf "%s[%d]" r.Signal.reg_name i)
            ~d ~q:qs.(i))
        next)
    reg_roots;
  (* Output ports. *)
  List.iter
    (fun (name, v) ->
      let wires = Array.map emit (Signal.bits v) in
      Netlist.Builder.add_output_port builder name wires)
    outputs;
  Netlist.Builder.finalize builder
