type t = {
  circuit : Signal.circuit;
  inputs : (string, int) Hashtbl.t;
  regs : (string, int) Hashtbl.t;  (** current state per register *)
  reg_defs : Signal.reg_def list;
  outputs : (string * Signal.t) list;
  memo : (int, bool) Hashtbl.t;  (** per-evaluation bit cache *)
  mutable cyc : int;
}

let create circuit =
  let reg_defs = Signal.circuit_regs circuit in
  List.iter
    (fun (r : Signal.reg_def) ->
      if r.Signal.reg_next = None then
        invalid_arg (Printf.sprintf "Eval: register %s never connected" r.Signal.reg_name))
    reg_defs;
  let regs = Hashtbl.create 16 in
  List.iter (fun (r : Signal.reg_def) -> Hashtbl.replace regs r.Signal.reg_name r.Signal.reg_init) reg_defs;
  let inputs = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace inputs name 0) (Signal.circuit_inputs circuit);
  {
    circuit;
    inputs;
    regs;
    reg_defs;
    outputs = Signal.circuit_outputs circuit;
    memo = Hashtbl.create 1024;
    cyc = 0;
  }

let set_input t name value =
  (match List.assoc_opt name (Signal.circuit_inputs t.circuit) with
  | None -> raise Not_found
  | Some width ->
    if value < 0 || value lsr width <> 0 then
      invalid_arg (Printf.sprintf "Eval.set_input %s: %d does not fit in %d bits" name value width));
  Hashtbl.replace t.inputs name value

let node_id (b : Signal.bit_node) =
  match b with
  | Signal.Const _ -> -1
  | Signal.Input { id; _ } | Signal.Regq { id; _ } | Signal.Op { id; _ } -> id

let rec eval_bit t (b : Signal.bit_node) =
  match b with
  | Signal.Const v -> v
  | Signal.Input { port; index; _ } -> Hashtbl.find t.inputs port land (1 lsl index) <> 0
  | Signal.Regq { reg; index; _ } ->
    Hashtbl.find t.regs reg.Signal.reg_name land (1 lsl index) <> 0
  | Signal.Op { op; args; id } -> begin
    match Hashtbl.find_opt t.memo id with
    | Some v -> v
    | None ->
      let v =
        match op with
        | Signal.Op_not -> not (eval_bit t args.(0))
        | Signal.Op_and -> eval_bit t args.(0) && eval_bit t args.(1)
        | Signal.Op_or -> eval_bit t args.(0) || eval_bit t args.(1)
        | Signal.Op_xor -> eval_bit t args.(0) <> eval_bit t args.(1)
        | Signal.Op_mux ->
          if eval_bit t args.(2) then eval_bit t args.(1) else eval_bit t args.(0)
        | Signal.Op_xor3 -> eval_bit t args.(0) <> eval_bit t args.(1) <> eval_bit t args.(2)
        | Signal.Op_maj3 ->
          let a = eval_bit t args.(0) and b = eval_bit t args.(1) and c = eval_bit t args.(2) in
          (a && b) || (b && c) || (a && c)
      in
      Hashtbl.replace t.memo id v;
      v
  end

let eval_bits t bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if eval_bit t b then v := !v lor (1 lsl i)) bits;
  !v

let output t name =
  match List.assoc_opt name t.outputs with
  | Some signal -> eval_bits t (Signal.bits signal)
  | None -> raise Not_found

let reg_value t name =
  match Hashtbl.find_opt t.regs name with
  | Some v -> v
  | None -> raise Not_found

let step t =
  (* All next-values from the pre-latch state (memo shared across the
     whole evaluation of this cycle), then commit. *)
  let nexts =
    List.map
      (fun (r : Signal.reg_def) ->
        match r.Signal.reg_next with
        | Some bits -> (r.Signal.reg_name, eval_bits t bits)
        | None -> assert false)
      t.reg_defs
  in
  List.iter (fun (name, v) -> Hashtbl.replace t.regs name v) nexts;
  Hashtbl.reset t.memo;
  t.cyc <- t.cyc + 1

let cycle t = t.cyc

(* The memo must also be invalidated when inputs change between
   evaluations within a cycle; wrap the accessors. *)
let set_input t name value =
  set_input t name value;
  Hashtbl.reset t.memo

let _ = node_id
