lib/rtl/synth.ml: Array Hashtbl List Option Printf Pruning_cell Pruning_netlist Signal
