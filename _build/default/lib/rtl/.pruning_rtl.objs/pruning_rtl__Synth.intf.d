lib/rtl/synth.mli: Pruning_netlist Signal
