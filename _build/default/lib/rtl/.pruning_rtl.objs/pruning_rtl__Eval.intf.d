lib/rtl/eval.mli: Signal
