lib/rtl/signal.mli:
