lib/rtl/eval.ml: Array Hashtbl List Printf Signal
