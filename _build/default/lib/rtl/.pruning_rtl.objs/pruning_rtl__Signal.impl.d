lib/rtl/signal.ml: Array Hashtbl List Printf String
