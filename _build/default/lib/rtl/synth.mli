(** Technology mapping: lower an RTL {!Signal.circuit} onto the standard
    cell library, producing a flat {!Pruning_netlist.Netlist.t}.

    The mapping is structural: every hash-consed DAG node becomes one gate
    ([Op_and] -> AND2, [Op_mux] -> MUX2, [Op_xor3] -> XOR3 full-adder sum,
    [Op_maj3] -> MAJ3 carry, ...), with a peephole pass that fuses a
    single-fanout AND/OR/XOR feeding a NOT into NAND2/NOR2/XNOR2 cells, as
    an area-optimizing ASIC flow would. Registers become D flip-flops named
    [<reg>[<i>]]; input/output ports become netlist ports with wires named
    [<port>[<i>]]. Constants are driven by TIEL/TIEH cells (and are rare,
    because the DSL constant-folds). *)

val to_netlist : Signal.circuit -> Pruning_netlist.Netlist.t
(** Raises [Invalid_argument] if some register was never [connect]ed. *)
