type op =
  | Op_not
  | Op_and
  | Op_or
  | Op_xor
  | Op_mux
  | Op_xor3
  | Op_maj3

type bit_node =
  | Const of bool
  | Input of { port : string; index : int; id : int }
  | Regq of { reg : reg_def; index : int; id : int }
  | Op of { op : op; args : bit_node array; id : int }

and reg_def = {
  reg_name : string;
  reg_width : int;
  reg_init : int;
  mutable reg_next : bit_node array option;
  mutable reg_q : bit_node array;
}

type circuit = {
  circ_name : string;
  mutable circ_inputs : (string * int) list; (* reversed *)
  mutable circ_outputs : (string * t) list; (* reversed *)
  mutable circ_regs : reg_def list; (* reversed *)
  cons : (op * int array, bit_node) Hashtbl.t;
  mutable next_id : int;
}

and t = {
  circ : circuit;
  vbits : bit_node array;
}

type reg = {
  r_def : reg_def;
  r_circ : circuit;
}

let create_circuit name =
  {
    circ_name = name;
    circ_inputs = [];
    circ_outputs = [];
    circ_regs = [];
    cons = Hashtbl.create 1024;
    next_id = 0;
  }

let circuit_name c = c.circ_name
let circuit_inputs c = List.rev c.circ_inputs
let circuit_outputs c = List.rev c.circ_outputs
let circuit_regs c = List.rev c.circ_regs
let node_count c = c.next_id

let width v = Array.length v.vbits
let bits v = v.vbits

let bit_id = function
  | Const false -> -1
  | Const true -> -2
  | Input { id; _ } | Regq { id; _ } | Op { id; _ } -> id

let fresh c =
  let id = c.next_id in
  c.next_id <- id + 1;
  id

let mk_op c op args =
  let key = (op, Array.map bit_id args) in
  match Hashtbl.find_opt c.cons key with
  | Some b -> b
  | None ->
    let b = Op { op; args; id = fresh c } in
    Hashtbl.add c.cons key b;
    b

let bfalse = Const false
let btrue = Const true
let bconst b = if b then btrue else bfalse
let same a b = bit_id a = bit_id b

let complement a b =
  let inv x y =
    match y with
    | Op { op = Op_not; args; _ } -> same args.(0) x
    | Const _ | Input _ | Regq _ | Op _ -> false
  in
  inv a b || inv b a

let bnot c a =
  match a with
  | Const b -> bconst (not b)
  | Op { op = Op_not; args; _ } -> args.(0)
  | Input _ | Regq _ | Op _ -> mk_op c Op_not [| a |]

let order2 a b = if bit_id a <= bit_id b then (a, b) else (b, a)

let band c a b =
  match (a, b) with
  | Const false, _ | _, Const false -> bfalse
  | Const true, x | x, Const true -> x
  | _ when same a b -> a
  | _ when complement a b -> bfalse
  | _ ->
    let a, b = order2 a b in
    mk_op c Op_and [| a; b |]

let bor c a b =
  match (a, b) with
  | Const true, _ | _, Const true -> btrue
  | Const false, x | x, Const false -> x
  | _ when same a b -> a
  | _ when complement a b -> btrue
  | _ ->
    let a, b = order2 a b in
    mk_op c Op_or [| a; b |]

let bxor c a b =
  match (a, b) with
  | Const false, x | x, Const false -> x
  | Const true, x | x, Const true -> bnot c x
  | _ when same a b -> bfalse
  | _ when complement a b -> btrue
  | _ ->
    let a, b = order2 a b in
    mk_op c Op_xor [| a; b |]

(* mux: s ? t : f. Cell MUX2 pin order is (f, t, s). *)
let bmux c ~s ~t ~f =
  match s with
  | Const true -> t
  | Const false -> f
  | _ when same t f -> t
  | _ -> begin
    match (t, f) with
    | Const true, Const false -> s
    | Const false, Const true -> bnot c s
    | Const true, _ -> bor c s f
    | Const false, _ -> band c (bnot c s) f
    | _, Const true -> bor c (bnot c s) t
    | _, Const false -> band c s t
    | _ when same t s -> bor c s f
    | _ when same f s -> band c s t
    | _ -> mk_op c Op_mux [| f; t; s |]
  end

let sort3 a b d =
  let l = List.sort (fun x y -> compare (bit_id x) (bit_id y)) [ a; b; d ] in
  match l with
  | [ x; y; z ] -> (x, y, z)
  | _ -> assert false

let bxor3 c a b d =
  match (a, b, d) with
  | Const v, x, y | x, Const v, y | x, y, Const v ->
    if v then bnot c (bxor c x y) else bxor c x y
  | _ when same a b -> d
  | _ when same a d -> b
  | _ when same b d -> a
  | _ when complement a b -> bnot c d
  | _ when complement a d -> bnot c b
  | _ when complement b d -> bnot c a
  | _ ->
    let a, b, d = sort3 a b d in
    mk_op c Op_xor3 [| a; b; d |]

let bmaj3 c a b d =
  match (a, b, d) with
  | Const v, x, y | x, Const v, y | x, y, Const v ->
    if v then bor c x y else band c x y
  | _ when same a b -> a
  | _ when same a d -> a
  | _ when same b d -> b
  | _ when complement a b -> d
  | _ when complement a d -> b
  | _ when complement b d -> a
  | _ ->
    let a, b, d = sort3 a b d in
    mk_op c Op_maj3 [| a; b; d |]

(* ------------------------------------------------------------------ *)
(* Vector layer                                                        *)

let check_same_circuit a b =
  if a.circ != b.circ then invalid_arg "Signal: operands from different circuits"

let check_same_width what a b =
  check_same_circuit a b;
  if width a <> width b then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" what (width a) (width b))

let check_width_range w =
  if w < 1 || w > 62 then invalid_arg (Printf.sprintf "Signal: bad width %d" w)

let const c ~width:w value =
  check_width_range w;
  if value lsr w <> 0 || value < 0 then
    invalid_arg (Printf.sprintf "Signal.const: %d does not fit in %d bits" value w);
  { circ = c; vbits = Array.init w (fun i -> bconst (value land (1 lsl i) <> 0)) }

let vdd c = const c ~width:1 1
let gnd c = const c ~width:1 0

let input c name w =
  check_width_range w;
  if List.mem_assoc name c.circ_inputs then
    invalid_arg (Printf.sprintf "Signal.input: duplicate port %s" name);
  c.circ_inputs <- (name, w) :: c.circ_inputs;
  { circ = c; vbits = Array.init w (fun index -> Input { port = name; index; id = fresh c }) }

let reg c ?(init = 0) name w =
  check_width_range w;
  if init < 0 || init lsr w <> 0 then
    invalid_arg (Printf.sprintf "Signal.reg %s: init %d does not fit" name init);
  if List.exists (fun r -> String.equal r.reg_name name) c.circ_regs then
    invalid_arg (Printf.sprintf "Signal.reg: duplicate register %s" name);
  let def = { reg_name = name; reg_width = w; reg_init = init; reg_next = None; reg_q = [||] } in
  def.reg_q <- Array.init w (fun index -> Regq { reg = def; index; id = fresh c });
  c.circ_regs <- def :: c.circ_regs;
  { r_def = def; r_circ = c }

let q r = { circ = r.r_circ; vbits = r.r_def.reg_q }

let connect r v =
  if v.circ != r.r_circ then invalid_arg "Signal.connect: wrong circuit";
  if width v <> r.r_def.reg_width then
    invalid_arg
      (Printf.sprintf "Signal.connect %s: width %d, expected %d" r.r_def.reg_name (width v)
         r.r_def.reg_width);
  match r.r_def.reg_next with
  | Some _ -> invalid_arg (Printf.sprintf "Signal.connect %s: already connected" r.r_def.reg_name)
  | None -> r.r_def.reg_next <- Some v.vbits

let output c name v =
  if v.circ != c then invalid_arg "Signal.output: wrong circuit";
  if List.mem_assoc name c.circ_outputs then
    invalid_arg (Printf.sprintf "Signal.output: duplicate port %s" name);
  c.circ_outputs <- (name, v) :: c.circ_outputs

let map2 what f a b =
  check_same_width what a b;
  { circ = a.circ; vbits = Array.init (width a) (fun i -> f a.circ a.vbits.(i) b.vbits.(i)) }

let ( &: ) a b = map2 "(&:)" band a b
let ( |: ) a b = map2 "(|:)" bor a b
let ( ^: ) a b = map2 "(^:)" bxor a b
let ( ~: ) a = { circ = a.circ; vbits = Array.map (bnot a.circ) a.vbits }

let expect_bit what v =
  if width v <> 1 then invalid_arg (Printf.sprintf "Signal.%s: expected width 1" what);
  v.vbits.(0)

let add_carry a b ~cin =
  check_same_width "add_carry" a b;
  check_same_circuit a cin;
  let c = a.circ in
  let carry = ref (expect_bit "add_carry cin" cin) in
  let sum =
    Array.init (width a) (fun i ->
        let s = bxor3 c a.vbits.(i) b.vbits.(i) !carry in
        carry := bmaj3 c a.vbits.(i) b.vbits.(i) !carry;
        s)
  in
  ({ circ = c; vbits = sum }, { circ = c; vbits = [| !carry |] })

let ( +: ) a b = fst (add_carry a b ~cin:(gnd a.circ))

let sub_borrow a b ~bin =
  check_same_width "sub_borrow" a b;
  (* a - b - bin = a + ~b + (1 - bin); carry-out 0 means borrow. *)
  let c = a.circ in
  let nbin = { circ = c; vbits = [| bnot c (expect_bit "sub_borrow bin" bin) |] } in
  let diff, carry = add_carry a ~:b ~cin:nbin in
  (diff, { circ = c; vbits = [| bnot c carry.vbits.(0) |] })

let ( -: ) a b = fst (sub_borrow a b ~bin:(gnd a.circ))

let bit v i =
  if i < 0 || i >= width v then invalid_arg (Printf.sprintf "Signal.bit %d of width %d" i (width v));
  { circ = v.circ; vbits = [| v.vbits.(i) |] }

let select v ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width v then
    invalid_arg (Printf.sprintf "Signal.select [%d:%d] of width %d" hi lo (width v));
  { circ = v.circ; vbits = Array.sub v.vbits lo (hi - lo + 1) }

let cat hi lo =
  check_same_circuit hi lo;
  { circ = hi.circ; vbits = Array.append lo.vbits hi.vbits }

let concat = function
  | [] -> invalid_arg "Signal.concat: empty"
  | first :: rest -> List.fold_left (fun acc v -> cat acc v) first rest

let repeat b n =
  let bnode = expect_bit "repeat" b in
  if n < 1 then invalid_arg "Signal.repeat: n < 1";
  { circ = b.circ; vbits = Array.make n bnode }

let uresize v w =
  check_width_range w;
  let cur = width v in
  if w = cur then v
  else if w < cur then select v ~hi:(w - 1) ~lo:0
  else
    { circ = v.circ; vbits = Array.append v.vbits (Array.make (w - cur) bfalse) }

let sresize v w =
  check_width_range w;
  let cur = width v in
  if w <= cur then uresize v w
  else
    let sign = v.vbits.(cur - 1) in
    { circ = v.circ; vbits = Array.append v.vbits (Array.make (w - cur) sign) }

let sll v n =
  if n < 0 then invalid_arg "Signal.sll";
  let w = width v in
  let shifted i = if i < n then bfalse else v.vbits.(i - n) in
  { circ = v.circ; vbits = Array.init w shifted }

let srl v n =
  if n < 0 then invalid_arg "Signal.srl";
  let w = width v in
  let shifted i = if i + n < w then v.vbits.(i + n) else bfalse in
  { circ = v.circ; vbits = Array.init w shifted }

(* Balanced binary reduction for shallow logic depth. *)
let reduce f c nodes =
  let rec go = function
    | [] -> assert false
    | [ x ] -> x
    | nodes ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> f c x y :: pair rest
      in
      go (pair nodes)
  in
  go nodes

let reduce_or v = { circ = v.circ; vbits = [| reduce bor v.circ (Array.to_list v.vbits) |] }
let reduce_and v = { circ = v.circ; vbits = [| reduce band v.circ (Array.to_list v.vbits) |] }
let reduce_xor v = { circ = v.circ; vbits = [| reduce bxor v.circ (Array.to_list v.vbits) |] }

let ( ==: ) a b =
  check_same_width "(==:)" a b;
  let c = a.circ in
  let equal_bits =
    Array.to_list (Array.init (width a) (fun i -> bnot c (bxor c a.vbits.(i) b.vbits.(i))))
  in
  { circ = c; vbits = [| reduce band c equal_bits |] }

let ( <>: ) a b = ~:(a ==: b)

let is_zero v =
  { circ = v.circ; vbits = [| bnot v.circ (reduce bor v.circ (Array.to_list v.vbits)) |] }

let eq_const v k = v ==: const v.circ ~width:(width v) k

let ( <: ) a b =
  let _, borrow = sub_borrow a b ~bin:(gnd a.circ) in
  borrow

let mux2 sel if_one if_zero =
  check_same_width "mux2" if_one if_zero;
  check_same_circuit sel if_one;
  let s = expect_bit "mux2 sel" sel in
  let c = sel.circ in
  {
    circ = c;
    vbits = Array.init (width if_one) (fun i -> bmux c ~s ~t:if_one.vbits.(i) ~f:if_zero.vbits.(i));
  }

let mux sel cases =
  let n = List.length cases in
  if n = 0 then invalid_arg "Signal.mux: no cases";
  let w = width sel in
  if w > 8 then invalid_arg "Signal.mux: selector wider than 8 bits";
  let total = 1 lsl w in
  if n > total then invalid_arg "Signal.mux: more cases than selector values";
  let case_width =
    match cases with
    | c :: _ -> width c
    | [] -> assert false
  in
  List.iter
    (fun c ->
      if width c <> case_width then invalid_arg "Signal.mux: case width mismatch";
      check_same_circuit sel c)
    cases;
  let last = List.nth cases (n - 1) in
  let padded = Array.make total last in
  List.iteri (fun i c -> padded.(i) <- c) cases;
  let rec level j remaining =
    match remaining with
    | [ x ] -> x
    | _ ->
      let s = bit sel j in
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | zero :: one :: rest -> mux2 s one zero :: pair rest
      in
      level (j + 1) (pair remaining)
  in
  level 0 (Array.to_list padded)

let connect_en r ~enable v = connect r (mux2 enable v (q r))
