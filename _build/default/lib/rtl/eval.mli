(** Direct evaluation of an RTL {!Signal.circuit}, without synthesis.

    This is an independent reference semantics for the DSL: it interprets
    the hash-consed bit DAG per cycle. Cross-checking it against
    {!Synth.to_netlist} + the netlist simulator validates the technology
    mapper end to end (used extensively by the test suite, including on
    the full CPU cores).

    The evaluator is register-accurate and cycle-accurate: {!step}
    computes every register's next value from the current state and the
    primary inputs, then latches. *)

type t

val create : Signal.circuit -> t
(** Registers start at their [init] values; inputs at 0. Raises
    [Invalid_argument] if some register was never connected. *)

val set_input : t -> string -> int -> unit
(** Drive an input port (LSB-first integer). Raises [Not_found] for
    unknown ports, [Invalid_argument] for out-of-range values. *)

val output : t -> string -> int
(** Value of an output port under the current state and inputs. *)

val reg_value : t -> string -> int
(** Current value of a register bank. Raises [Not_found]. *)

val step : t -> unit
(** Advance one clock cycle. *)

val cycle : t -> int
