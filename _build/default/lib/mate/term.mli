(** Fault-masking terms over netlist wires.

    A term is a conjunction of wire literals (wire = 0 / wire = 1),
    normalized: sorted by wire index, each wire at most once. A MATE is
    such a term over the border wires of a fault cone; when it holds in a
    cycle of the fault-free execution, the corresponding faults are benign
    (Section 3 of the paper). *)

type literal = {
  wire : Pruning_netlist.Netlist.wire;
  value : bool;
}

type t = private literal list
(** Normalized conjunction; the empty list is the always-true term. *)

val of_literals : (Pruning_netlist.Netlist.wire * bool) list -> t option
(** Normalize; [None] when contradictory (some wire required both 0 and
    1). Duplicate consistent literals collapse. *)

val always_true : t

val conjoin : t -> t -> t option
(** Conjunction, [None] on contradiction. *)

val holds : t -> (Pruning_netlist.Netlist.wire -> bool) -> bool
(** Evaluate under a wire valuation. *)

val literals : t -> literal list
val inputs : t -> Pruning_netlist.Netlist.wire list
(** Distinct wires mentioned (the MATE's hardware inputs). *)

val n_inputs : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : Pruning_netlist.Netlist.t -> t -> string
(** e.g. ["(!f & h)"] with netlist wire names. *)
