module Netlist = Pruning_netlist.Netlist

type literal = {
  wire : Netlist.wire;
  value : bool;
}

type t = literal list

let always_true = []

let of_literals pairs =
  let sorted = List.sort_uniq compare (List.map (fun (wire, value) -> { wire; value }) pairs) in
  let rec consistent = function
    | a :: (b :: _ as rest) -> if a.wire = b.wire then None else consistent rest
    | [ _ ] | [] -> Some sorted
  in
  consistent sorted

let conjoin a b = of_literals (List.map (fun l -> (l.wire, l.value)) (a @ b))

let holds t valuation = List.for_all (fun l -> valuation l.wire = l.value) t

let literals t = t
let inputs t = List.map (fun l -> l.wire) t
let n_inputs t = List.length t
let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string nl t =
  match t with
  | [] -> "(true)"
  | _ ->
    let literal l = (if l.value then "" else "!") ^ Netlist.wire_name nl l.wire in
    "(" ^ String.concat " & " (List.map literal t) ^ ")"
