module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone
module Cell = Pruning_cell.Cell
module Gm = Pruning_cell.Gm
module Stats = Pruning_util.Stats

type params = {
  depth : int;
  max_terms : int;
  max_candidates : int;
  max_options : int;
  beam : int;
  max_situations : int;
  max_mates : int;
}

let default_params =
  {
    depth = 8;
    max_terms = 8;
    max_candidates = 2_000;
    max_options = 64;
    beam = 8;
    max_situations = 12;
    max_mates = 64;
  }

type outcome =
  | Unmaskable
  | Mates of Term.t list

type wire_result = {
  wire : Netlist.wire;
  cone_size : int;
  n_options : int;
  candidates_tried : int;
  outcome : outcome;
  time_s : float;
}

type flop_result = {
  flop : Netlist.flop;
  result : wire_result;
}

type report = {
  params : params;
  flop_results : flop_result list;
  runtime_s : float;
}

(* ------------------------------------------------------------------ *)
(* Ternary values: 0, 1, U (golden-equal, unknown), F (possibly faulty) *)

let v0 = 0
let v1 = 1
let vu = 2
let vf = 3

(* Enumerate the assignments of the bit positions present in [mask]. *)
let iter_assignments mask f =
  let rec positions m = if m = 0 then [] else (m land -m) :: positions (m land (m - 1)) in
  let bits = Array.of_list (positions mask) in
  let n = Array.length bits in
  for combo = 0 to (1 lsl n) - 1 do
    let a = ref 0 in
    for j = 0 to n - 1 do
      if combo land (1 lsl j) <> 0 then a := !a lor bits.(j)
    done;
    f !a
  done

(* Abstract evaluation of one cell over packed ternary pin values (2 bits
   per pin). *)
let eval_gate_uncached (cell : Cell.t) packed =
  let fixed = ref 0 and u_mask = ref 0 and f_mask = ref 0 in
  for pin = 0 to cell.Cell.arity - 1 do
    match (packed lsr (2 * pin)) land 3 with
    | v when v = v0 -> ()
    | v when v = v1 -> fixed := !fixed lor (1 lsl pin)
    | v when v = vu -> u_mask := !u_mask lor (1 lsl pin)
    | _ -> f_mask := !f_mask lor (1 lsl pin)
  done;
  let f_dependent = ref false in
  let seen0 = ref false and seen1 = ref false in
  iter_assignments !u_mask (fun u ->
      if not !f_dependent then begin
        let base = !fixed lor u in
        let reference = Cell.eval_pattern cell base in
        iter_assignments !f_mask (fun f ->
            if Cell.eval_pattern cell (base lor f) <> reference then f_dependent := true);
        if reference then seen1 := true else seen0 := true
      end);
  if !f_dependent then vf
  else if !seen0 && !seen1 then vu
  else if !seen1 then v1
  else v0

(* One flat cache row per (cell function, arity). *)
let eval_cache : (int, int array) Hashtbl.t = Hashtbl.create 64

let cache_row (cell : Cell.t) =
  let key = (cell.Cell.table lsl 3) lor cell.Cell.arity in
  match Hashtbl.find_opt eval_cache key with
  | Some row -> row
  | None ->
    let row = Array.init 256 (fun packed -> eval_gate_uncached cell packed) in
    Hashtbl.replace eval_cache key row;
    row

(* ------------------------------------------------------------------ *)
(* Cone evaluation state.                                               *)

type cone_eval = {
  nl : Netlist.t;
  values : Bytes.t;  (** per wire: v0/v1/vu/vf *)
  baseline : Bytes.t;  (** values with no literals set *)
  rows : int array array;  (** per cone gate: eval-cache row *)
  cone_gates : Netlist.gate array;  (** topological order *)
  sink_index : int array;  (** indices into cone_gates whose output sinks *)
  border_wires : Netlist.wire array;
  in_cone : bool array;
  in_support : bool array;  (** wires in the transitive fanin of border *)
  topo_pos : int array;  (** per gate id: position in the global topo *)
  sources : Netlist.wire list;
  gate_depth : (int, int) Hashtbl.t;  (** cone-gate BFS distance *)
  downstream : (Netlist.wire, int list) Hashtbl.t;
      (** per literal-candidate wire: support gates downstream of it, in
          topological order (computed on demand) *)
  gate_stamp : int array;  (** scratch for merging downstream lists *)
  pin_stamp : int array;  (** per wire: literal-pinned in this validation *)
  mutable stamp : int;
  mutable touched : Netlist.wire list;  (** wires differing from baseline *)
}

let gate_value ev (g : Netlist.gate) =
  let packed = ref 0 in
  let ins = g.Netlist.inputs in
  for pin = 0 to Array.length ins - 1 do
    packed := !packed lor (Char.code (Bytes.get ev.values ins.(pin)) lsl (2 * pin))
  done;
  (cache_row g.Netlist.cell).(!packed)

let make_cone_eval (nl : Netlist.t) (cone : Cone.t) sources =
  let nw = Netlist.n_wires nl in
  let is_sink w =
    Array.length nl.Netlist.flop_readers.(w) > 0 || nl.Netlist.is_primary_output.(w)
  in
  let cone_gates = Array.of_list cone.Cone.gates in
  let sink_index =
    Array.to_list (Array.mapi (fun i g -> (i, g)) cone_gates)
    |> List.filter_map (fun (i, (g : Netlist.gate)) -> if is_sink g.Netlist.output then Some i else None)
    |> Array.of_list
  in
  (* Support: transitive fanin of border wires, disjoint from the cone. *)
  let in_support = Array.make nw false in
  let stack = ref cone.Cone.border in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | w :: rest ->
      stack := rest;
      if not in_support.(w) then begin
        in_support.(w) <- true;
        match nl.Netlist.driver.(w) with
        | Netlist.Driver_gate gid ->
          Array.iter (fun i -> stack := i :: !stack) nl.Netlist.gates.(gid).Netlist.inputs
        | Netlist.Driver_input | Netlist.Driver_flop _ -> ()
      end
  done;
  let topo_pos = Array.make (Netlist.n_gates nl) 0 in
  Array.iteri (fun pos gid -> topo_pos.(gid) <- pos) nl.Netlist.topo;
  (* Baseline: everything U, then constants propagated through support. *)
  let values = Bytes.make nw (Char.chr vu) in
  let ev =
    {
      nl;
      values;
      baseline = Bytes.make nw (Char.chr vu);
      rows = Array.map (fun (g : Netlist.gate) -> cache_row g.Netlist.cell) cone_gates;
      cone_gates;
      sink_index;
      border_wires = Array.of_list cone.Cone.border;
      in_cone = Array.copy cone.Cone.in_cone;
      in_support;
      topo_pos;
      sources;
      gate_depth = Hashtbl.create 64;
      downstream = Hashtbl.create 64;
      gate_stamp = Array.make (Netlist.n_gates nl) 0;
      pin_stamp = Array.make nw 0;
      stamp = 0;
      touched = [];
    }
  in
  Array.iter
    (fun gid ->
      let g = nl.Netlist.gates.(gid) in
      if in_support.(g.Netlist.output) then Bytes.set values g.Netlist.output (Char.chr (gate_value ev g)))
    nl.Netlist.topo;
  Bytes.blit values 0 ev.baseline 0 nw;
  (* BFS distances of cone gates from the sources. *)
  let seen_wire = Hashtbl.create 64 in
  let frontier = Queue.create () in
  List.iter
    (fun source ->
      Queue.add (source, 0) frontier;
      Hashtbl.replace seen_wire source ())
    sources;
  while not (Queue.is_empty frontier) do
    let w, d = Queue.pop frontier in
    Array.iter
      (fun gid ->
        if not (Hashtbl.mem ev.gate_depth gid) then begin
          Hashtbl.replace ev.gate_depth gid (d + 1);
          let out = nl.Netlist.gates.(gid).Netlist.output in
          if not (Hashtbl.mem seen_wire out) then begin
            Hashtbl.replace seen_wire out ();
            Queue.add (out, d + 1) frontier
          end
        end)
      nl.Netlist.readers.(w)
  done;
  ev

let value ev w = Char.code (Bytes.get ev.values w)
let set_value ev w v = Bytes.set ev.values w (Char.chr v)
let border_wires_of ev = ev.border_wires

(* Support gates downstream of a wire, topologically sorted; memoized per
   cone_eval because candidate literals recur on the same wires. *)
let downstream_gates ev w =
  match Hashtbl.find_opt ev.downstream w with
  | Some gates -> gates
  | None ->
    let seen = Hashtbl.create 32 in
    let rec mark w =
      Array.iter
        (fun gid ->
          let out = ev.nl.Netlist.gates.(gid).Netlist.output in
          if ev.in_support.(out) && not (Hashtbl.mem seen gid) then begin
            Hashtbl.replace seen gid ();
            mark out
          end)
        ev.nl.Netlist.readers.(w)
    in
    mark w;
    let gates = Hashtbl.fold (fun gid () acc -> gid :: acc) seen [] in
    let gates = List.sort (fun a b -> compare ev.topo_pos.(a) ev.topo_pos.(b)) gates in
    Hashtbl.replace ev.downstream w gates;
    gates

(* Candidate evaluation: reset to baseline, apply literals, constant-
   propagate them through the support logic, then evaluate the cone with
   the source marked possibly-faulty. True iff no sink is possibly
   faulty. *)
let validate ev literals =
  List.iter (fun w -> Bytes.set ev.values w (Bytes.get ev.baseline w)) ev.touched;
  ev.touched <- [];
  let touch w = ev.touched <- w :: ev.touched in
  ev.stamp <- ev.stamp + 1;
  let stamp = ev.stamp in
  List.iter
    (fun (l : Term.literal) ->
      set_value ev l.Term.wire (if l.Term.value then v1 else v0);
      ev.pin_stamp.(l.Term.wire) <- stamp;
      touch l.Term.wire)
    literals;
  let dirty =
    List.concat_map (fun (l : Term.literal) -> downstream_gates ev l.Term.wire) literals
    |> List.filter (fun gid ->
           if ev.gate_stamp.(gid) = stamp then false
           else begin
             ev.gate_stamp.(gid) <- stamp;
             true
           end)
    |> List.sort (fun a b -> compare ev.topo_pos.(a) ev.topo_pos.(b))
  in
  List.iter
    (fun gid ->
      let g = ev.nl.Netlist.gates.(gid) in
      (* A literal pins its wire: a support gate driving it must not
         overwrite the constraint (contradictory candidates simply never
         trigger at run time). *)
      if ev.pin_stamp.(g.Netlist.output) <> stamp then begin
        let v = gate_value ev g in
        if v <> value ev g.Netlist.output then begin
          set_value ev g.Netlist.output v;
          touch g.Netlist.output
        end
      end)
    dirty;
  (* Cone evaluation. *)
  List.iter
    (fun source ->
      set_value ev source vf;
      touch source)
    ev.sources;
  let n = Array.length ev.cone_gates in
  for i = 0 to n - 1 do
    let g = ev.cone_gates.(i) in
    let packed = ref 0 in
    let ins = g.Netlist.inputs in
    for pin = 0 to Array.length ins - 1 do
      packed := !packed lor (Char.code (Bytes.get ev.values ins.(pin)) lsl (2 * pin))
    done;
    let v = ev.rows.(i).(!packed) in
    if v <> value ev g.Netlist.output then begin
      set_value ev g.Netlist.output v;
      touch g.Netlist.output
    end
  done;
  Array.for_all (fun i -> value ev ev.cone_gates.(i).Netlist.output <> vf) ev.sink_index

let fault_extent ev =
  let sinks = ref 0 and gates = ref 0 in
  Array.iter
    (fun (g : Netlist.gate) -> if value ev g.Netlist.output = vf then incr gates)
    ev.cone_gates;
  Array.iter
    (fun i -> if value ev ev.cone_gates.(i).Netlist.output = vf then incr sinks)
    ev.sink_index;
  (!sinks * 10_000) + !gates

(* The gate-masking terms available against the gate's currently-faulty
   pins, instantiated to wires. Terms may only constrain non-cone wires;
   literals already satisfied by the current evaluation are dropped, and
   terms contradicting a known support constant are unusable. *)
let dynamic_gate_terms ev (g : Netlist.gate) =
  let dyn_faulty = ref [] in
  Array.iteri (fun pin w -> if value ev w = vf then dyn_faulty := pin :: !dyn_faulty) g.Netlist.inputs;
  match !dyn_faulty with
  | [] -> []
  | faulty ->
    let usable (term : Gm.term) =
      let rec go acc = function
        | [] -> Term.of_literals acc
        | (l : Gm.literal) :: rest ->
          let w = g.Netlist.inputs.(l.Gm.pin) in
          if ev.in_cone.(w) then None
          else begin
            let wanted = if l.Gm.value then v1 else v0 in
            let current = value ev w in
            if current = wanted then go acc rest
            else if current = vu then go ((w, l.Gm.value) :: acc) rest
            else None (* contradicts a propagated constant *)
          end
      in
      go [] term
    in
    List.filter_map usable (Gm.memoized_masking_terms g.Netlist.cell ~faulty)

(* Extension options for the current evaluation: blockable gates on the
   fault frontier within the BFS depth, nearest first. *)
let dynamic_options ev params =
  let with_depth =
    Array.to_list ev.cone_gates
    |> List.filter_map (fun (g : Netlist.gate) ->
           match Hashtbl.find_opt ev.gate_depth g.Netlist.gate_id with
           | Some d when d <= params.depth && value ev g.Netlist.output = vf -> Some (d, g)
           | _ -> None)
  in
  List.stable_sort (fun (d1, _) (d2, _) -> compare d1 d2) with_depth
  |> List.concat_map (fun (_, g) -> List.map (fun t -> (g, t)) (dynamic_gate_terms ev g))
  |> List.filteri (fun i _ -> i < params.max_options)

(* Optimistic reachability: evaluate the cone assuming every blockable
   gate within reach is blocked (output U). If a sink is still possibly
   faulty, no combination of gate-masking terms can mask the wire: the
   paper's "path where no gate can mask the fault" early abort, made
   value-aware. *)
let optimistic_escape ev params =
  ignore (validate ev []);
  List.iter (fun w -> Bytes.set ev.values w (Bytes.get ev.baseline w)) ev.touched;
  ev.touched <- [];
  List.iter
    (fun source ->
      set_value ev source vf;
      ev.touched <- source :: ev.touched)
    ev.sources;
  Array.iter
    (fun (g : Netlist.gate) ->
      let v = gate_value ev g in
      let v =
        if v = vf then begin
          let within_depth =
            match Hashtbl.find_opt ev.gate_depth g.Netlist.gate_id with
            | Some d -> d <= params.depth
            | None -> false
          in
          if within_depth && dynamic_gate_terms ev g <> [] then vu else vf
        end
        else v
      in
      set_value ev g.Netlist.output v;
      ev.touched <- g.Netlist.output :: ev.touched)
    ev.cone_gates;
  let escaped =
    Array.exists (fun i -> value ev ev.cone_gates.(i).Netlist.output = vf) ev.sink_index
  in
  escaped

(* Greedy literal minimization: drop literals (in the given order) whose
   removal keeps the candidate valid, producing MATEs that trigger as
   often as possible. *)
let minimize_literals ev literals =
  let rec go kept = function
    | [] -> kept
    | (l : Term.literal) :: rest ->
      let without = kept @ rest in
      if validate ev without then go kept rest else go (kept @ [ l ]) rest
  in
  go [] literals

let minimize_term ev term =
  match
    Term.of_literals
      (List.map
         (fun (l : Term.literal) -> (l.Term.wire, l.Term.value))
         (minimize_literals ev (Term.literals term)))
  with
  | Some t -> t
  | None -> term

(* ------------------------------------------------------------------ *)
(* Trace-seeded candidates: the most frequent border situations of an
   exemplary execution, validated as full cubes and generalized. *)

module Trace = Pruning_sim.Trace

let seeded_mates ev params trace found tried =
  let borders = border_wires_of ev in
  if Array.length borders = 0 then ()
  else begin
    let cycles = Trace.n_cycles trace in
    (* Distance of each border wire: nearest cone gate reading it. *)
    let depth_of w =
      Array.fold_left
        (fun acc gid ->
          match Hashtbl.find_opt ev.gate_depth gid with
          | Some d -> min acc d
          | None -> acc)
        max_int ev.nl.Netlist.readers.(w)
    in
    let tagged = Array.map (fun w -> (w, depth_of w)) borders in
    (* Near borders (selects, enables, decode) define the situation; far
       borders (mostly sibling data) are recorded per representative cycle
       and generalized away during minimization. *)
    let near =
      Array.to_list tagged
      |> List.filter (fun (_, d) -> d <= params.depth)
      |> List.map fst
      |> Array.of_list
    in
    let far =
      Array.to_list tagged
      |> List.filter (fun (_, d) -> d > params.depth)
      |> List.sort (fun (_, d1) (_, d2) -> compare d2 d1)
      |> List.map fst
    in
    if Array.length near = 0 then ()
    else begin
      (* Representative cycle and frequency per near-border signature. *)
      let classes : (string, int * int) Hashtbl.t = Hashtbl.create 256 in
      let signature cycle =
        String.init (Array.length near) (fun i ->
            if Trace.get trace ~cycle near.(i) then '1' else '0')
      in
      for cycle = 0 to cycles - 1 do
        let s = signature cycle in
        match Hashtbl.find_opt classes s with
        | Some (rep, n) -> Hashtbl.replace classes s (rep, n + 1)
        | None -> Hashtbl.add classes s (cycle, 1)
      done;
      let situations =
        Hashtbl.fold (fun _ (rep, n) acc -> (rep, n) :: acc) classes []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      let literal_at cycle w =
        { Term.wire = w; Term.value = Trace.get trace ~cycle w }
      in
      (* Drop far literals first, in one block when possible. *)
      let near_literals cycle =
        List.map (literal_at cycle) (List.rev (Array.to_list near)) |> List.rev
      in
      let valid_seen = ref 0 in
      List.iter
        (fun (rep, _) ->
          if !valid_seen < params.max_situations && !tried < 4 * params.max_candidates
          then begin
            let near_lits = near_literals rep in
            let far_lits = List.map (literal_at rep) far in
            incr tried;
            if validate ev (far_lits @ near_lits) then begin
              incr valid_seen;
              incr tried;
              let remaining =
                if validate ev near_lits then near_lits (* far block dropped *)
                else far_lits @ near_lits
              in
              tried := !tried + List.length remaining;
              let minimal = minimize_literals ev remaining in
              match
                Term.of_literals
                  (List.map (fun (l : Term.literal) -> (l.Term.wire, l.Term.value)) minimal)
              with
              | Some t -> Hashtbl.replace found t ()
              | None -> ()
            end
          end)
        situations
    end
  end

(* ------------------------------------------------------------------ *)

let search_sources ?(traces = []) nl params wires =
  let wire =
    match wires with
    | [] -> invalid_arg "Search: no faulty wires"
    | w :: _ -> w
  in
  let cone = Cone.compute_multi nl wires in
  let cone_size = Cone.size cone in
  if cone.Cone.source_is_sink then
    { wire; cone_size; n_options = 0; candidates_tried = 0; outcome = Unmaskable; time_s = 0. }
  else begin
    let ev = make_cone_eval nl cone wires in
    if Array.length ev.sink_index = 0 then
      { wire; cone_size; n_options = 0; candidates_tried = 0; outcome = Mates [ Term.always_true ]; time_s = 0. }
    else if optimistic_escape ev params then
      { wire; cone_size; n_options = 0; candidates_tried = 0; outcome = Unmaskable; time_s = 0. }
    else begin
      let tried = ref 0 in
      let found : (Term.t, unit) Hashtbl.t = Hashtbl.create 32 in
      let attempted : (Term.t, unit) Hashtbl.t = Hashtbl.create 512 in
      ignore (validate ev []);
      let n_options = List.length (dynamic_options ev params) in
      (* Beam search, guided by how far each extension shrinks the fault
         frontier. [ev] holds the evaluation of [literals] on entry. *)
      let rec extend literals n_selected parent_extent =
        if !tried < params.max_candidates && n_selected < params.max_terms then begin
          let options = dynamic_options ev params in
          let children = ref [] in
          List.iter
            (fun ((_ : Netlist.gate), term) ->
              if !tried < params.max_candidates then begin
                match Term.conjoin literals term with
                | None -> ()
                | Some conj ->
                  if (not (Term.equal conj literals)) && not (Hashtbl.mem attempted conj) then begin
                    Hashtbl.replace attempted conj ();
                    incr tried;
                    if validate ev (Term.literals conj) then Hashtbl.replace found conj ()
                    else begin
                      let extent = fault_extent ev in
                      if extent < parent_extent then children := (conj, extent) :: !children
                    end
                  end
              end)
            options;
          let beam =
            List.sort (fun (_, a) (_, b) -> compare a b) !children
            |> List.filteri (fun i _ -> i < params.beam)
          in
          List.iter
            (fun (conj, extent) ->
              if !tried < params.max_candidates then begin
                ignore (validate ev (Term.literals conj));
                extend conj (n_selected + 1) extent
              end)
            beam;
          (* Restore the parent evaluation for our caller. *)
          ignore (validate ev (Term.literals literals))
        end
      in
      let initial_extent = fault_extent ev in
      extend Term.always_true 0 (initial_extent + 1);
      List.iter (fun trace -> seeded_mates ev params trace found tried) traces;
      (* Minimize the found candidates (dropping superfluous literals so
         MATEs trigger as often as possible), within a second budget. *)
      let raw = Hashtbl.fold (fun t () acc -> t :: acc) found [] in
      let raw =
        List.sort
          (fun a b -> compare (Term.n_inputs a) (Term.n_inputs b))
          raw
      in
      let minimize_budget = ref params.max_candidates in
      let mates =
        List.map
          (fun t ->
            if !minimize_budget > Term.n_inputs t * Term.n_inputs t then begin
              minimize_budget := !minimize_budget - (Term.n_inputs t * Term.n_inputs t);
              minimize_term ev t
            end
            else t)
          raw
      in
      let mates = List.sort_uniq Term.compare mates in
      (* Keep the cheapest MATEs: they trigger most often and replay cost
         is linear in the retained set size. *)
      let mates =
        List.sort
          (fun a b ->
            match compare (Term.n_inputs a) (Term.n_inputs b) with
            | 0 -> Term.compare a b
            | c -> c)
          mates
        |> List.filteri (fun i _ -> i < params.max_mates)
        |> List.sort Term.compare
      in
      { wire; cone_size; n_options; candidates_tried = !tried; outcome = Mates mates; time_s = 0. }
    end
  end

let search_wire ?traces nl params wire = search_sources ?traces nl params [ wire ]

let search_pair ?traces nl params w1 w2 = search_sources ?traces nl params [ w1; w2 ]

let timed_search_wire ?traces nl params wire =
  let start = Unix.gettimeofday () in
  let result = search_wire ?traces nl params wire in
  { result with time_s = Unix.gettimeofday () -. start }

let search_flops ?(params = default_params) ?traces nl flops =
  let start = Unix.gettimeofday () in
  let flop_results =
    List.map
      (fun (f : Netlist.flop) ->
        { flop = f; result = timed_search_wire ?traces nl params f.Netlist.q })
      flops
  in
  { params; flop_results; runtime_s = Unix.gettimeofday () -. start }

let restrict report keep =
  let flop_results = List.filter (fun fr -> keep fr.flop) report.flop_results in
  {
    report with
    flop_results;
    runtime_s = List.fold_left (fun acc fr -> acc +. fr.result.time_s) 0. flop_results;
  }

let n_faulty_wires report = List.length report.flop_results

let cone_sizes report = List.map (fun fr -> fr.result.cone_size) report.flop_results

let avg_cone report = Stats.mean_int (cone_sizes report)
let median_cone report = Stats.median_int (cone_sizes report)

let n_unmaskable report =
  List.length
    (List.filter
       (fun fr ->
         match fr.result.outcome with
         | Unmaskable -> true
         | Mates _ -> false)
       report.flop_results)

let total_candidates report =
  List.fold_left (fun acc fr -> acc + fr.result.candidates_tried) 0 report.flop_results

let total_mates report =
  List.fold_left
    (fun acc fr ->
      acc
      +
      match fr.result.outcome with
      | Unmaskable -> 0
      | Mates l -> List.length l)
    0 report.flop_results
