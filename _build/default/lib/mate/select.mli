(** Trace-driven selection of high-impact MATEs (Section 4, step 3).

    The paper's procedure: rank MATEs by the number of faults they mask
    over a selection trace, then walk the trace crediting each MATE only
    with faults no higher-ranked MATE already masks in that cycle, and
    keep the top N by credited hits. A subset selected on one program can
    then be evaluated on another (the cross-validation of Tables 2/3). *)

val rank :
  Mateset.t -> Replay.triggers -> space:Pruning_fi.Fault_space.t -> (int * int) list
(** Mate indices with credited hit counts, most useful first. Ties break
    toward cheaper terms (fewer inputs). *)

val top : (int * int) list -> n:int -> int list
(** The first [n] mate indices of a ranking (all of them when the ranking
    is shorter). Mates with zero credited hits are dropped. *)
