module Fault_space = Pruning_fi.Fault_space
module Netlist = Pruning_netlist.Netlist

let rank (set : Mateset.t) triggers ~space =
  let raw = Replay.raw_masked_per_mate set triggers ~space in
  let n_mates = Array.length set.Mateset.mates in
  let order = Array.init n_mates Fun.id in
  Array.sort
    (fun a b ->
      match compare raw.(b) raw.(a) with
      | 0 -> compare (Term.n_inputs set.Mateset.mates.(a).Mateset.term)
               (Term.n_inputs set.Mateset.mates.(b).Mateset.term)
      | c -> c)
    order;
  (* Dense flop indices per mate, restricted to the space. *)
  let max_id =
    Array.fold_left
      (fun acc (f : Netlist.flop) -> max acc f.Netlist.flop_id)
      (-1)
      space.Fault_space.netlist.Netlist.flops
  in
  let table = Array.make (max_id + 1) (-1) in
  Array.iteri (fun i (f : Netlist.flop) -> table.(f.Netlist.flop_id) <- i) space.Fault_space.flops;
  let mate_flops =
    Array.map
      (fun (m : Mateset.mate) ->
        List.filter_map
          (fun fid -> if fid < Array.length table && table.(fid) >= 0 then Some table.(fid) else None)
          m.Mateset.flop_ids)
      set.Mateset.mates
  in
  let nf = Array.length space.Fault_space.flops in
  let cycles = min space.Fault_space.cycles (Replay.n_cycles triggers) in
  let credited = Array.make n_mates 0 in
  let cycle_mask = Array.make nf 0 in
  (* cycle_mask.(f) = cycle+1 marks f as already masked in this cycle,
     avoiding a per-cycle array clear. *)
  for cycle = 0 to cycles - 1 do
    Array.iter
      (fun i ->
        if Replay.triggered triggers ~mate:i ~cycle then
          List.iter
            (fun f ->
              if cycle_mask.(f) <> cycle + 1 then begin
                cycle_mask.(f) <- cycle + 1;
                credited.(i) <- credited.(i) + 1
              end)
            mate_flops.(i))
      order
  done;
  Array.to_list order
  |> List.map (fun i -> (i, credited.(i)))
  |> List.sort (fun (a, ca) (b, cb) ->
         match compare cb ca with
         | 0 ->
           compare
             (Term.n_inputs set.Mateset.mates.(a).Mateset.term)
             (Term.n_inputs set.Mateset.mates.(b).Mateset.term)
         | c -> c)

let top ranking ~n =
  ranking
  |> List.filter (fun (_, credits) -> credits > 0)
  |> List.filteri (fun i _ -> i < n)
  |> List.map fst
