(** Heuristic MATE search (Section 4 of the paper).

    For every possibly-faulty wire the search:

    + extracts the fault cone and the gate-masking terms (GM) of every
      cone gate, with the gate's in-cone pins as the distrusted set and
      literals over its border pins only;
    + aborts early ({!Unmaskable}) when the faulty wire directly feeds a
      flip-flop or primary output, or when the fault can reach a sink
      through gates that have no masking capability at all (the paper's
      "path where no gate can mask the fault");
    + otherwise combines up to [max_terms] GM terms into candidate MATEs
      and validates each candidate by {e ternary cone simulation}: the
      faulty wire is F ("possibly differs from the golden run"), candidate
      literals fix their border wires, all other wires are U ("equal in
      both runs, value unknown"), and cone gates evaluate over
      \{0, 1, U, F\}. The candidate is a MATE iff no cone sink (flip-flop
      D pin or primary output) evaluates to F.

    Candidate generation is fault-frontier directed: a partial candidate
    that fails validation is extended only with terms anchored at gates
    whose output is currently F, up to [max_candidates] validations per
    wire. Validation by value propagation is strictly stronger than the
    paper's path-cut check (a border literal can force a cone wire to a
    known constant, which can block further gates for free), so the
    candidate budget buys more than it would there; the knob is
    correspondingly lower by default. *)

type params = {
  depth : int;  (** BFS radius (in gates from the faulty wire) within
                    which GM terms are collected (paper: 8) *)
  max_terms : int;
      (** GM terms per MATE. The paper uses 4 with a rich AOI/OAI-heavy
          netlist; our mapper decomposes multiplexing into finer 2-input
          gates, so more (finer) terms are needed to express the same
          condition — the default is 8. MATE hardware cost is governed by
          the resulting input count, which stays comparable. *)
  max_candidates : int;  (** candidate validations per faulty wire *)
  max_options : int;  (** cap on (gate, GM-term) extension pairs per node *)
  beam : int;  (** beam width of the frontier-shrinking search *)
  max_situations : int;
      (** distinct trace situations seeded per faulty wire when an
          exemplary trace is available *)
  max_mates : int;
      (** MATEs retained per faulty wire (cheapest-first); replay cost is
          linear in the retained set *)
}

val default_params : params
(** [{ depth = 8; max_terms = 8; max_candidates = 2_000; max_options = 64;
      beam = 8; max_situations = 12; max_mates = 64 }] *)

type outcome =
  | Unmaskable
      (** structurally unmaskable: the wire feeds a sink directly, or some
          propagation path has no masking-capable gate *)
  | Mates of Term.t list
      (** validated MATEs; may be empty when the budget found none *)

type wire_result = {
  wire : Pruning_netlist.Netlist.wire;
  cone_size : int;  (** gates in the fault cone *)
  n_options : int;  (** (gate, GM-term) pairs collected *)
  candidates_tried : int;
  outcome : outcome;
  time_s : float;  (** wall time spent on this wire *)
}

val search_wire :
  ?traces:Pruning_sim.Trace.t list ->
  Pruning_netlist.Netlist.t ->
  params ->
  Pruning_netlist.Netlist.wire ->
  wire_result
(** When [traces] (exemplary fault-free executions of the same netlist)
    are given, the search additionally seeds candidates from them: for
    the most frequent distinct border-wire situations, the full situation
    cube is validated and then greedily generalized by dropping literals
    (far-from-the-cone first). The paper describes exactly this use of an
    "exemplary execution flow to find and select MATEs"; seeded MATEs are
    guaranteed to trigger on the trace. The purely structural
    frontier-directed beam search runs either way. *)

type flop_result = {
  flop : Pruning_netlist.Netlist.flop;
  result : wire_result;
}

type report = {
  params : params;
  flop_results : flop_result list;
  runtime_s : float;
}

val search_pair :
  ?traces:Pruning_sim.Trace.t list ->
  Pruning_netlist.Netlist.t ->
  params ->
  Pruning_netlist.Netlist.wire ->
  Pruning_netlist.Netlist.wire ->
  wire_result
(** Section 6.2 extension: MATEs for a simultaneous 2-bit fault. The joint
    fault cone of both wires is analyzed with both sources marked faulty;
    a resulting MATE proves the double fault benign within one cycle.
    [wire] in the result is the first of the pair. *)

val search_flops :
  ?params:params ->
  ?traces:Pruning_sim.Trace.t list ->
  Pruning_netlist.Netlist.t ->
  Pruning_netlist.Netlist.flop list ->
  report
(** Search the Q output of every given flop (the paper's faulty-wire sets
    "FF" and "FF w/o RF"). *)

val restrict : report -> (Pruning_netlist.Netlist.flop -> bool) -> report
(** Down-select a report to a flop subset (per-wire results are
    independent); the runtime becomes the sum of the kept wires' times. *)

(** Aggregates for Table 1. *)

val n_faulty_wires : report -> int
val avg_cone : report -> float
val median_cone : report -> float

val n_unmaskable : report -> int
(** Structurally unmaskable wires (early aborts). *)

val total_candidates : report -> int
val total_mates : report -> int
