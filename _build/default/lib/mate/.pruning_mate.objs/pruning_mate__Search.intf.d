lib/mate/search.mli: Pruning_netlist Pruning_sim Term
