lib/mate/term.ml: List Pruning_netlist Stdlib String
