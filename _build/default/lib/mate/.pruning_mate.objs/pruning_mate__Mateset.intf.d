lib/mate/mateset.mli: Search Term
