lib/mate/search.ml: Array Bytes Char Hashtbl List Pruning_cell Pruning_netlist Pruning_sim Pruning_util Queue String Term Unix
