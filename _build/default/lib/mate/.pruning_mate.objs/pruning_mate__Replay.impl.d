lib/mate/replay.ml: Array Bytes Char Fun List Mateset Pruning_fi Pruning_netlist Pruning_sim Pruning_util Term
