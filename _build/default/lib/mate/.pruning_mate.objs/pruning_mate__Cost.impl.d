lib/mate/cost.ml: Array Fun List Mateset Pruning_util Term
