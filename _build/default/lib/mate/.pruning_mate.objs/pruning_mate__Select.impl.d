lib/mate/select.ml: Array Fun List Mateset Pruning_fi Pruning_netlist Replay Term
