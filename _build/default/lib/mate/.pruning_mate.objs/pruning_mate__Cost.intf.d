lib/mate/cost.mli: Mateset Term
