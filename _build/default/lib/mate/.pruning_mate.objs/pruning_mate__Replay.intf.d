lib/mate/replay.mli: Mateset Pruning_fi Pruning_sim
