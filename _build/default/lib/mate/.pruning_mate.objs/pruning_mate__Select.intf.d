lib/mate/select.mli: Mateset Pruning_fi Replay
