lib/mate/mateset.ml: Array Hashtbl List Pruning_netlist Search Term
