lib/mate/term.mli: Pruning_netlist
