(** FPGA cost model for MATE sets (Section 6.1 of the paper).

    A MATE is a product term; an FPGA k-LUT (k = 6 assumed, as on the
    Virtex-6 class devices the paper cites) absorbs 6 inputs, and each
    additional cascaded LUT contributes 5 more (one input chains the
    previous stage). *)

val luts_for_inputs : int -> int
(** [luts_for_inputs n] for an [n]-input product term; 0 inputs cost no
    logic. *)

val mate_luts : Term.t -> int

type summary = {
  n_mates : int;
  avg_inputs : float;
  stddev_inputs : float;
  max_inputs : int;
  total_luts : int;
}

val summarize : Mateset.t -> ?subset:int list -> unit -> summary
