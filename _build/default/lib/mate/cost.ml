module Stats = Pruning_util.Stats

let lut_width = 6

let luts_for_inputs n =
  if n <= 0 then 0
  else if n <= lut_width then 1
  else 1 + ((n - lut_width + (lut_width - 2)) / (lut_width - 1))

let mate_luts term = luts_for_inputs (Term.n_inputs term)

type summary = {
  n_mates : int;
  avg_inputs : float;
  stddev_inputs : float;
  max_inputs : int;
  total_luts : int;
}

let summarize (set : Mateset.t) ?subset () =
  let indices =
    match subset with
    | Some l -> l
    | None -> List.init (Array.length set.Mateset.mates) Fun.id
  in
  let input_counts =
    List.map (fun i -> Term.n_inputs set.Mateset.mates.(i).Mateset.term) indices
  in
  {
    n_mates = List.length indices;
    avg_inputs = Stats.mean_int input_counts;
    stddev_inputs = Stats.stddev (List.map float_of_int input_counts);
    max_inputs = List.fold_left max 0 input_counts;
    total_luts = List.fold_left (fun acc n -> acc + luts_for_inputs n) 0 input_counts;
  }
