(* ------------------------------------------------------------------ *)
(* AVR                                                                  *)

let fib_terms = 24

(* Register allocation for the AVR programs:
   r16 multiplicand / fib a     r17 multiplier / fib b
   r18 product / fill counter   r19 mul bit counter / fib tmp
   r20 accumulator              r21 outer index n
   r26 X pointer *)

let avr_fib_body jump_back =
  let open Avr_isa in
  let open Avr_asm in
  [
    L "start";
    I (Ldi (16, 0));
    I (Ldi (17, 1));
    I (Ldi (26, 0));
    I (Ldi (18, fib_terms));
    L "loop";
    I (St_x_inc 16);
    I (Out (io_portb, 16));
    I (Mov (19, 16));
    I (Add (16, 17));
    I (Mov (17, 19));
    I (Dec 18);
    I (Brne (Label "loop"));
  ]
  @ jump_back

let avr_fib = avr_fib_body [ Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "start")) ]

let avr_fib_halting =
  avr_fib_body [ Avr_asm.L "halt"; Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "halt")) ]

let avr_fib_expected =
  let out = Array.make fib_terms 0 in
  let a = ref 0 and b = ref 1 in
  for i = 0 to fib_terms - 1 do
    out.(i) <- !a;
    let next = (!a + !b) land 0xFF in
    a := !b;
    b := next
  done;
  (* The program stores a before updating, so fix the off-by-one: out
     holds a_0 .. a_23 with a_0 = 0, matching the loop above where a is
     stored first. *)
  ignore b;
  out

(* Shift-add multiply macro: r18 = r16 * r17 (clobbers r16, r17, r19). *)
let avr_mul_macro suffix =
  let open Avr_isa in
  let open Avr_asm in
  let mull = "mul" ^ suffix and skipl = "skip" ^ suffix in
  [
    I (Ldi (18, 0));
    I (Ldi (19, 8));
    L mull;
    I (Lsr 17);
    I (Brcc (Label skipl));
    I (Add (18, 16));
    L skipl;
    I (Add (16, 16)) (* LSL r16 *);
    I (Dec 19);
    I (Brne (Label mull));
  ]

let avr_conv_term suffix ~delta ~coeff =
  let open Avr_isa in
  let open Avr_asm in
  [ I (Mov (26, 21)) ]
  @ (if delta > 0 then [ I (Subi (26, delta)) ] else [])
  @ [ I (Ld_x 16); I (Ldi (17, coeff)) ]
  @ avr_mul_macro suffix
  @ [ I (Add (20, 18)) ]

let avr_conv_coeffs = [ 3; 5; 7 ]
let avr_conv_n = 16
let avr_conv_out_base = 34

let avr_conv_body jump_back =
  let open Avr_isa in
  let open Avr_asm in
  [
    L "start";
    (* fill x[0..15] with 3 + 7i *)
    I (Ldi (26, 0));
    I (Ldi (16, 3));
    I (Ldi (17, 7));
    I (Ldi (18, avr_conv_n));
    L "fill";
    I (St_x_inc 16);
    I (Add (16, 17));
    I (Dec 18);
    I (Brne (Label "fill"));
    I (Ldi (21, 2));
    L "outer";
    I (Ldi (20, 0));
  ]
  @ avr_conv_term "0" ~delta:0 ~coeff:(List.nth avr_conv_coeffs 0)
  @ avr_conv_term "1" ~delta:1 ~coeff:(List.nth avr_conv_coeffs 1)
  @ avr_conv_term "2" ~delta:2 ~coeff:(List.nth avr_conv_coeffs 2)
  @ [
      I (Mov (26, 21));
      I (Subi (26, (256 - avr_conv_out_base) land 0xFF)) (* r26 += out_base *);
      I (St_x 20);
      I (Out (io_portb, 20));
      I (Subi (21, 0xFF)) (* n += 1 *);
      I (Cpi (21, avr_conv_n));
      I (Brne (Label "outer"));
    ]
  @ jump_back

let avr_conv = avr_conv_body [ Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "start")) ]

let avr_conv_halting =
  avr_conv_body [ Avr_asm.L "halt"; Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "halt")) ]

(* Bubble sort over RAM[0..15]: r16/r17 scratch, r20 pass counter, r21
   inner counter, X the compare pointer. *)
let avr_sort_body jump_back =
  let open Avr_isa in
  let open Avr_asm in
  [
    L "start";
    I (Ldi (26, 0));
    I (Ldi (16, 231));
    I (Ldi (17, 13));
    I (Ldi (18, 16));
    L "fill";
    I (St_x_inc 16);
    I (Sub (16, 17));
    I (Dec 18);
    I (Brne (Label "fill"));
    I (Ldi (20, 15));
    L "pass";
    I (Ldi (26, 0));
    I (Mov (21, 20));
    L "inner";
    I (Ld_x 16);
    I (Adiw (26, 1));
    I (Ld_x 17);
    I (Cp (17, 16));
    I (Brcc (Label "noswap"));
    I (St_x 16);
    I (Sbiw (26, 1));
    I (St_x 17);
    I (Adiw (26, 1));
    L "noswap";
    I (Dec 21);
    I (Brne (Label "inner"));
    I (Dec 20);
    I (Brne (Label "pass"));
    I (Ldi (26, 0));
    I (Ld_x 16);
    I (Out (io_portb, 16));
  ]
  @ jump_back

let avr_sort = avr_sort_body [ Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "start")) ]

let avr_sort_halting =
  avr_sort_body [ Avr_asm.L "halt"; Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "halt")) ]

let avr_sort_expected =
  let values = Array.init 16 (fun i -> (231 - (13 * i)) land 0xFF) in
  Array.sort compare values;
  values

let conv_x i = (3 + (7 * i)) land 0xFF

let avr_conv_expected =
  List.init (avr_conv_n - 2) (fun i ->
      let n = i + 2 in
      let y = (3 * conv_x n) + (5 * conv_x (n - 1)) + (7 * conv_x (n - 2)) in
      (avr_conv_out_base + n, y land 0xFF))

(* ------------------------------------------------------------------ *)
(* MSP430                                                               *)

let msp_fib_base = 0x200
let msp_conv_x_base = 0x200
let msp_conv_y_base = 0x240

let msp_fib_body jump_back =
  let open Msp_isa in
  let open Msp_asm in
  [
    L "start";
    I (Mov (Imm 0, Dreg 4));
    I (Mov (Imm 1, Dreg 5));
    I (Mov (Imm msp_fib_base, Dreg 6));
    I (Mov (Imm fib_terms, Dreg 7));
    L "loop";
    I (Mov (Reg 4, Dindexed (6, 0)));
    I (Add (Imm 2, Dreg 6));
    I (Mov (Reg 4, Dreg 8));
    I (Add (Reg 5, Dreg 4));
    I (Mov (Reg 8, Dreg 5));
    I (Sub (Imm 1, Dreg 7));
    I (Jnz (Label "loop"));
  ]
  @ jump_back

let msp_fib = msp_fib_body [ Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "start")) ]

let msp_fib_halting =
  msp_fib_body [ Msp_asm.L "halt"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "halt")) ]

let msp_fib_expected =
  let out = Array.make fib_terms 0 in
  let a = ref 0 and b = ref 1 in
  for i = 0 to fib_terms - 1 do
    out.(i) <- !a;
    let next = (!a + !b) land 0xFFFF in
    a := !b;
    b := next
  done;
  out

(* acc += coeff * x (repeated addition): expects the x word in R10, uses
   R11 as the repeat counter, accumulates into R8. *)
let msp_term suffix ~coeff =
  let open Msp_isa in
  let open Msp_asm in
  let looplabel = "term" ^ suffix in
  [ I (Mov (Imm coeff, Dreg 11)); L looplabel; I (Add (Reg 10, Dreg 8));
    I (Sub (Imm 1, Dreg 11)); I (Jnz (Label looplabel)) ]

let msp_conv_n = 16

let msp_conv_body jump_back =
  let open Msp_isa in
  let open Msp_asm in
  [
    L "start";
    (* fill x[0..15] with 3 + 7i *)
    I (Mov (Imm msp_conv_x_base, Dreg 6));
    I (Mov (Imm 3, Dreg 4));
    I (Mov (Imm msp_conv_n, Dreg 7));
    L "fill";
    I (Mov (Reg 4, Dindexed (6, 0)));
    I (Add (Imm 2, Dreg 6));
    I (Add (Imm 7, Dreg 4));
    I (Sub (Imm 1, Dreg 7));
    I (Jnz (Label "fill"));
    I (Mov (Imm 2, Dreg 5));
    L "outer";
    I (Mov (Imm 0, Dreg 8));
    (* R6 = &x[n] *)
    I (Mov (Reg 5, Dreg 6));
    I (Add (Reg 6, Dreg 6));
    I (Add (Imm msp_conv_x_base, Dreg 6));
    I (Mov (Indirect 6, Dreg 10));
  ]
  @ msp_term "0" ~coeff:3
  @ [ I (Sub (Imm 2, Dreg 6)); I (Mov (Indirect 6, Dreg 10)) ]
  @ msp_term "1" ~coeff:5
  @ [ I (Sub (Imm 2, Dreg 6)); I (Mov (Indirect 6, Dreg 10)) ]
  @ msp_term "2" ~coeff:7
  @ [
      (* store y[n] at y_base + 2n *)
      I (Mov (Reg 5, Dreg 6));
      I (Add (Reg 6, Dreg 6));
      I (Add (Imm msp_conv_y_base, Dreg 6));
      I (Mov (Reg 8, Dindexed (6, 0)));
      I (Add (Imm 1, Dreg 5));
      I (Cmp (Imm msp_conv_n, Dreg 5));
      I (Jnz (Label "outer"));
    ]
  @ jump_back

let msp_conv = msp_conv_body [ Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "start")) ]

let msp_conv_halting =
  msp_conv_body [ Msp_asm.L "halt"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "halt")) ]

let msp_conv_expected =
  let x i = (3 + (7 * i)) land 0xFFFF in
  List.init (msp_conv_n - 2) (fun i ->
      let n = i + 2 in
      let y = (3 * x n) + (5 * x (n - 1)) + (7 * x (n - 2)) in
      (msp_conv_y_base + (2 * n), y land 0xFFFF))
