type item =
  | L of string
  | I of Msp_isa.t

let resolve_target labels next_address = function
  | Msp_isa.Rel _ as t -> t
  | Msp_isa.Label name -> begin
    match Hashtbl.find_opt labels name with
    | Some dest -> Msp_isa.Rel (dest - next_address)
    | None -> invalid_arg (Printf.sprintf "Msp_asm: undefined label %s" name)
  end

let resolve labels address (insn : Msp_isa.t) : Msp_isa.t =
  (* Jump offsets are relative to the address after the (one-word) jump. *)
  let r = resolve_target labels (address + 1) in
  match insn with
  | Msp_isa.Jnz t -> Msp_isa.Jnz (r t)
  | Msp_isa.Jz t -> Msp_isa.Jz (r t)
  | Msp_isa.Jnc t -> Msp_isa.Jnc (r t)
  | Msp_isa.Jc t -> Msp_isa.Jc (r t)
  | Msp_isa.Jn t -> Msp_isa.Jn (r t)
  | Msp_isa.Jge t -> Msp_isa.Jge (r t)
  | Msp_isa.Jl t -> Msp_isa.Jl (r t)
  | Msp_isa.Jmp t -> Msp_isa.Jmp (r t)
  | Msp_isa.Mov _ | Msp_isa.Add _ | Msp_isa.Addc _ | Msp_isa.Sub _ | Msp_isa.Subc _
  | Msp_isa.Cmp _ | Msp_isa.Bit _ | Msp_isa.Bic _ | Msp_isa.Bis _ | Msp_isa.Xor _
  | Msp_isa.And_ _ | Msp_isa.Rrc _ | Msp_isa.Rra _ | Msp_isa.Swpb _ | Msp_isa.Sxt _ -> insn

let assemble items =
  let labels = Hashtbl.create 16 in
  let address = ref 0 in
  List.iter
    (function
      | L name ->
        if Hashtbl.mem labels name then
          invalid_arg (Printf.sprintf "Msp_asm: duplicate label %s" name);
        Hashtbl.add labels name !address
      | I insn -> address := !address + Msp_isa.size insn)
    items;
  let words = ref [] in
  let address = ref 0 in
  List.iter
    (function
      | L _ -> ()
      | I insn ->
        let encoded = Msp_isa.encode (resolve labels !address insn) in
        List.iter (fun w -> words := w :: !words) encoded;
        address := !address + Msp_isa.size insn)
    items;
  Array.of_list (List.rev !words)

let disassemble words =
  let rec go i acc =
    if i >= Array.length words then List.rev acc
    else
      match Msp_isa.decode words i with
      | Some (insn, size) -> go (i + size) (Msp_isa.to_string insn :: acc)
      | None -> go (i + 1) (Printf.sprintf ".word 0x%04X" words.(i) :: acc)
  in
  go 0 []
