(** The paper's two test programs — a Fibonacci sequence computation and a
    convolution — for both cores, plus their architecturally expected
    results (used by integration tests and by the fault-injection campaign
    to classify outcomes).

    Both programs run forever: they recompute their result and jump back
    to the start, so any trace length (the paper uses 8500 cycles) is
    meaningful. The [\*_halting] variants end in a self-jump after one
    pass, for golden-model comparisons. *)

(** {1 AVR} *)

val avr_fib : Avr_asm.item list
(** 24 Fibonacci numbers (mod 256) stored at RAM\[0..23\] and mirrored to
    PORTB. *)

val avr_fib_halting : Avr_asm.item list

val avr_fib_expected : int array
(** Expected RAM\[0..23\]. *)

val avr_conv : Avr_asm.item list
(** x\[i\] = 3 + 7i (mod 256) for i < 16 at RAM\[0..15\]; y = x * \[3;5;7\]
    (shift-add multiply) at RAM\[34..47\]; each y\[n\] also goes to PORTB. *)

val avr_conv_halting : Avr_asm.item list

val avr_conv_expected : (int * int) list
(** (address, value) pairs for y. *)

val avr_sort : Avr_asm.item list
(** Bubble sort of 16 bytes at RAM\[0..15\] (filled with 231 - 13i), using
    the ADIW/SBIW pointer arithmetic; the smallest element goes to PORTB. *)

val avr_sort_halting : Avr_asm.item list

val avr_sort_expected : int array
(** Expected RAM\[0..15\] after one pass of the program. *)

(** {1 MSP430} *)

val msp_fib : Msp_asm.item list
(** 24 Fibonacci numbers (mod 2^16) at word address 0x200/2 upward. *)

val msp_fib_halting : Msp_asm.item list

val msp_fib_expected : int array

val msp_fib_base : int
(** Byte address of the fib output array (0x200). *)

val msp_conv : Msp_asm.item list
(** x\[i\] = 3 + 7i at 0x200; y\[n\] = 3x\[n\] + 5x\[n-1\] + 7x\[n-2\]
    (multiply by repeated addition) at 0x240 + 2n, n in 2..15. *)

val msp_conv_halting : Msp_asm.item list

val msp_conv_expected : (int * int) list
(** (byte address, value) pairs for y. *)
