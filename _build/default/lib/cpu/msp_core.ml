open Pruning_rtl.Signal

let rf_prefix = "rf_"

let state_fetch = 0
let state_src = 1
let state_src_idx = 2
let state_dst = 3
let state_dst_idx = 4
let state_exec = 5
let state_wb = 6

let circuit () =
  let c = create_circuit "msp430" in
  let zero16 = const c ~width:16 0 in
  let two16 = const c ~width:16 2 in
  let st k = const c ~width:3 k in

  (* ---- primary inputs ------------------------------------------------ *)
  let mem_rdata = input c "mem_rdata" 16 in

  (* ---- state ----------------------------------------------------------- *)
  let pc = reg c "pc" 16 in
  let sp = reg c "sp" 16 in
  let sr = reg c "sr" 4 in
  let ir = reg c "ir" 16 in
  let state = reg c "state" 3 in
  let srcval = reg c "srcval" 16 in
  let dstval = reg c "dstval" 16 in
  let ea = reg c "ea" 16 in
  let res = reg c "res" 16 in
  let rf = Array.init 12 (fun i -> reg c (Printf.sprintf "%s%d" rf_prefix (i + 4)) 16) in

  let sq = q state in
  let s_fetch = eq_const sq state_fetch in
  let s_src = eq_const sq state_src in
  let s_src_idx = eq_const sq state_src_idx in
  let s_dst = eq_const sq state_dst in
  let s_dst_idx = eq_const sq state_dst_idx in
  let s_exec = eq_const sq state_exec in
  let s_wb = eq_const sq state_wb in
  ignore s_src_idx;
  ignore s_dst_idx;

  let c_flag = bit (q sr) 0 in
  let z_flag = bit (q sr) 1 in
  let n_flag = bit (q sr) 2 in
  let v_flag = bit (q sr) 3 in

  (* ---- decode ----------------------------------------------------------- *)
  let irq = q ir in
  let is_jump = eq_const (select irq ~hi:15 ~lo:13) 0b001 in
  let is_fmt2 = eq_const (select irq ~hi:15 ~lo:10) 0b000100 in
  let op4 = select irq ~hi:15 ~lo:12 in
  let s_field = select irq ~hi:11 ~lo:8 in
  let d_field = select irq ~hi:3 ~lo:0 in
  let as_mode = select irq ~hi:5 ~lo:4 in
  let ad = bit irq 7 in
  let fmt2_op = select irq ~hi:9 ~lo:7 in
  let cond = select irq ~hi:12 ~lo:10 in
  let operand_reg = mux2 is_fmt2 d_field s_field in
  let as00 = eq_const as_mode 0b00 in
  let as01 = eq_const as_mode 0b01 in
  let as10 = eq_const as_mode 0b10 in
  let as11 = eq_const as_mode 0b11 in
  let is_fmt1 op = eq_const op4 op &: ~:is_jump &: ~:is_fmt2 in
  let is_mov = is_fmt1 0x4 in
  let is_add = is_fmt1 0x5 in
  let is_addc = is_fmt1 0x6 in
  let is_subc = is_fmt1 0x7 in
  let is_sub = is_fmt1 0x8 in
  let is_cmp = is_fmt1 0x9 in
  let is_bit = is_fmt1 0xB in
  let is_bic = is_fmt1 0xC in
  let is_bis = is_fmt1 0xD in
  let is_xor = is_fmt1 0xE in
  let is_and = is_fmt1 0xF in
  let is_rrc = is_fmt2 &: eq_const fmt2_op 0b000 in
  let is_swpb = is_fmt2 &: eq_const fmt2_op 0b001 in
  let is_rra = is_fmt2 &: eq_const fmt2_op 0b010 in
  let is_sxt = is_fmt2 &: eq_const fmt2_op 0b011 in

  (* ---- register-file read port (single, state-muxed) -------------------- *)
  let read_sel = mux2 s_dst d_field operand_reg in
  let read_val =
    mux read_sel
      ([ q pc; q sp; uresize (q sr) 16; zero16 ] @ Array.to_list (Array.map q rf))
  in

  (* ---- ALU (operands from the operand latches) --------------------------- *)
  let src_op = q srcval in
  let alu_dst = mux2 is_fmt2 (q srcval) (q dstval) in
  let is_sub_like = is_sub |: is_subc |: is_cmp in
  let is_arith = is_add |: is_addc |: is_sub_like in
  let b_add = mux2 is_sub_like ~:src_op src_op in
  let cin = mux2 (is_sub |: is_cmp) (vdd c) (mux2 (is_addc |: is_subc) c_flag (gnd c)) in
  let aresult, cout = add_carry alu_dst b_add ~cin in
  let and_r = alu_dst &: src_op in
  let bic_r = alu_dst &: ~:src_op in
  let bis_r = alu_dst |: src_op in
  let xor_r = alu_dst ^: src_op in
  let rrc_r = cat c_flag (select alu_dst ~hi:15 ~lo:1) in
  let rra_r = cat (bit alu_dst 15) (select alu_dst ~hi:15 ~lo:1) in
  let swpb_r = cat (select alu_dst ~hi:7 ~lo:0) (select alu_dst ~hi:15 ~lo:8) in
  let sxt_r = sresize (select alu_dst ~hi:7 ~lo:0) 16 in
  let result =
    mux2 is_mov src_op
      (mux2 is_arith aresult
         (mux2 (is_and |: is_bit) and_r
            (mux2 is_bic bic_r
               (mux2 is_bis bis_r
                  (mux2 is_xor xor_r
                     (mux2 is_rrc rrc_r
                        (mux2 is_rra rra_r (mux2 is_swpb swpb_r (mux2 is_sxt sxt_r zero16)))))))))
  in

  (* ---- flags -------------------------------------------------------------- *)
  let res_zero = is_zero result in
  let res_neg = bit result 15 in
  let logic_flags = is_and |: is_bit |: is_xor |: is_sxt in
  let shift_flags = is_rrc |: is_rra in
  let sets_flags = is_arith |: logic_flags |: shift_flags in
  let v_arith =
    let a15 = bit alu_dst 15 and b15 = bit b_add 15 and r15 = bit aresult 15 in
    a15 &: b15 &: ~:r15 |: (~:a15 &: ~:b15 &: r15)
  in
  let c_val = mux2 is_arith cout (mux2 shift_flags (bit alu_dst 0) ~:res_zero) in
  let v_val = mux2 is_arith v_arith (mux2 is_xor (bit src_op 15 &: bit (q dstval) 15) (gnd c)) in
  let flags = concat [ v_val; res_neg; res_zero; c_val ] in
  connect sr (mux2 (s_exec &: sets_flags) flags (q sr));

  (* ---- jump resolution (in the SRC state, straight after fetch) ----------- *)
  let taken =
    mux cond
      [
        ~:z_flag; z_flag; ~:c_flag; c_flag; n_flag; ~:(n_flag ^: v_flag); n_flag ^: v_flag;
        vdd c;
      ]
  in
  let jump_offset = sll (sresize (select irq ~hi:9 ~lo:0) 16) 1 in
  let jump_target = q pc +: jump_offset in

  (* ---- write-back control --------------------------------------------------- *)
  let writes_result = ~:(is_cmp |: is_bit) in
  let wb_to_reg = mux2 is_fmt2 as00 ~:ad in
  let inc_write = s_src &: ~:is_jump &: as11 in
  let inc_val = read_val +: two16 in
  let wb_write = s_wb &: writes_result &: wb_to_reg in
  Array.iteri
    (fun i r ->
      let rn = i + 4 in
      let write_inc = inc_write &: eq_const operand_reg rn in
      let write_wb = wb_write &: eq_const d_field rn in
      connect r (mux2 write_inc inc_val (mux2 write_wb (q res) (q r))))
    rf;
  connect sp
    (mux2
       (inc_write &: eq_const operand_reg 1)
       inc_val
       (mux2 (wb_write &: eq_const d_field 1) (q res) (q sp)));

  (* ---- PC ---------------------------------------------------------------------- *)
  let pc_plus2 = q pc +: two16 in
  let pc_src =
    mux2 is_jump
      (mux2 taken jump_target (q pc))
      (mux2 (as01 |: (as11 &: eq_const operand_reg 0)) pc_plus2 (q pc))
  in
  let pc_dst = mux2 (ad &: ~:is_fmt2) pc_plus2 (q pc) in
  let pc_wb = mux2 (wb_write &: eq_const d_field 0) (q res) (q pc) in
  connect pc (mux sq [ pc_plus2; pc_src; q pc; pc_dst; q pc; q pc; pc_wb ]);

  (* ---- microarchitectural latches ----------------------------------------------- *)
  connect ir (mux2 s_fetch mem_rdata irq);
  let src_in_src = mux2 as00 read_val (mux2 (as10 |: as11) mem_rdata (q srcval)) in
  connect srcval
    (mux2 (s_src &: ~:is_jump) src_in_src (mux2 s_src_idx mem_rdata (q srcval)));
  connect dstval
    (mux2 (s_dst &: ~:ad) read_val (mux2 s_dst_idx mem_rdata (q dstval)));
  let ea_capture = (s_src &: ~:is_jump &: as01) |: (s_dst &: ad) in
  connect ea (mux2 ea_capture (read_val +: mem_rdata) (q ea));
  connect res (mux2 s_exec result (q res));

  (* ---- FSM ------------------------------------------------------------------------ *)
  let after_src = mux2 is_fmt2 (st state_exec) (st state_dst) in
  let next_src =
    mux2 is_jump (st state_fetch) (mux2 as01 (st state_src_idx) after_src)
  in
  let next_dst = mux2 ad (st state_dst_idx) (st state_exec) in
  connect state
    (mux sq
       [
         st state_src; next_src; after_src; next_dst; st state_exec; st state_wb;
         st state_fetch;
       ]);

  (* ---- memory port (primary outputs) ------------------------------------------------ *)
  let mem_wen = s_wb &: writes_result &: ~:wb_to_reg in
  let addr_src =
    mux2 is_jump zero16 (mux2 as01 (q pc) (mux2 (as10 |: as11) read_val zero16))
  in
  let addr_dst = mux2 (ad &: ~:is_fmt2) (q pc) zero16 in
  let addr_wb = mux2 mem_wen (q ea) zero16 in
  output c "mem_addr" (mux sq [ q pc; addr_src; q ea; addr_dst; q ea; zero16; addr_wb ]);
  output c "mem_wen" mem_wen;
  output c "mem_wdata" (mux2 mem_wen (q res) zero16);
  c

let build () = Pruning_rtl.Synth.to_netlist (circuit ())
