type t = {
  program : int array;
  mutable pc : int;
  rf : int array;
  ram : int array;
  mutable flag_c : bool;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mutable flag_v : bool;
  mutable flag_s : bool;
  mutable portb : int;
  mutable pinb : int;
  mutable portb_writes : int list;
  mutable halted : bool;
  mutable steps : int;
}

let create ?(pinb = 0) ~program () =
  {
    program;
    pc = 0;
    rf = Array.make 32 0;
    ram = Array.make 256 0;
    flag_c = false;
    flag_z = false;
    flag_n = false;
    flag_v = false;
    flag_s = false;
    portb = 0;
    pinb;
    portb_writes = [];
    halted = false;
    steps = 0;
  }

let bit7 v = v land 0x80 <> 0

let update_s t = t.flag_s <- t.flag_n <> t.flag_v

(* Shared flag updates mirroring the gate-level ALU. *)
let set_zn t s =
  t.flag_z <- s = 0;
  t.flag_n <- bit7 s

let add_op t a b cin =
  let total = a + b + cin in
  let s = total land 0xFF in
  t.flag_c <- total > 0xFF;
  t.flag_v <- (bit7 a && bit7 b && not (bit7 s)) || ((not (bit7 a)) && not (bit7 b) && bit7 s);
  set_zn t s;
  update_s t;
  s

let sub_flags t a b s =
  t.flag_v <- (bit7 a && not (bit7 b) && not (bit7 s)) || ((not (bit7 a)) && bit7 b && bit7 s)

let sub_op ?(chain_z = false) t a b bin =
  let total = a - b - bin in
  let s = total land 0xFF in
  t.flag_c <- total < 0;
  sub_flags t a b s;
  t.flag_n <- bit7 s;
  t.flag_z <- (if chain_z then t.flag_z && s = 0 else s = 0);
  update_s t;
  s

let logic_op t s =
  t.flag_v <- false;
  set_zn t s;
  update_s t;
  s

let shift_op t a top =
  let s = (a lsr 1) lor if top then 0x80 else 0 in
  t.flag_c <- a land 1 = 1;
  set_zn t s;
  t.flag_v <- t.flag_n <> t.flag_c;
  update_s t;
  s

let io_read t a =
  if a = Avr_isa.io_pinb then t.pinb else if a = Avr_isa.io_portb then t.portb else 0

let rel_target t = function
  | Avr_isa.Rel k -> (t.pc + 1 + k) land 0xFFF
  | Avr_isa.Label _ -> invalid_arg "Avr_ref: unresolved label in program"

let step t =
  if not t.halted then begin
    let word = if t.pc < Array.length t.program then t.program.(t.pc) else 0 in
    let next = (t.pc + 1) land 0xFFF in
    let rf = t.rf in
    let jump target = t.pc <- target in
    t.pc <- next;
    (match Avr_isa.decode word with
    | None | Some Avr_isa.Nop -> ()
    | Some (Avr_isa.Mov (d, r)) -> rf.(d) <- rf.(r)
    | Some (Avr_isa.Add (d, r)) -> rf.(d) <- add_op t rf.(d) rf.(r) 0
    | Some (Avr_isa.Adc (d, r)) -> rf.(d) <- add_op t rf.(d) rf.(r) (Bool.to_int t.flag_c)
    | Some (Avr_isa.Sub (d, r)) -> rf.(d) <- sub_op t rf.(d) rf.(r) 0
    | Some (Avr_isa.Sbc (d, r)) ->
      rf.(d) <- sub_op ~chain_z:true t rf.(d) rf.(r) (Bool.to_int t.flag_c)
    | Some (Avr_isa.And_ (d, r)) -> rf.(d) <- logic_op t (rf.(d) land rf.(r))
    | Some (Avr_isa.Or_ (d, r)) -> rf.(d) <- logic_op t (rf.(d) lor rf.(r))
    | Some (Avr_isa.Eor (d, r)) -> rf.(d) <- logic_op t (rf.(d) lxor rf.(r))
    | Some (Avr_isa.Cp (d, r)) -> ignore (sub_op t rf.(d) rf.(r) 0)
    | Some (Avr_isa.Cpc (d, r)) ->
      ignore (sub_op ~chain_z:true t rf.(d) rf.(r) (Bool.to_int t.flag_c))
    | Some (Avr_isa.Ldi (d, k)) -> rf.(d) <- k
    | Some (Avr_isa.Subi (d, k)) -> rf.(d) <- sub_op t rf.(d) k 0
    | Some (Avr_isa.Sbci (d, k)) -> rf.(d) <- sub_op ~chain_z:true t rf.(d) k (Bool.to_int t.flag_c)
    | Some (Avr_isa.Andi (d, k)) -> rf.(d) <- logic_op t (rf.(d) land k)
    | Some (Avr_isa.Ori (d, k)) -> rf.(d) <- logic_op t (rf.(d) lor k)
    | Some (Avr_isa.Cpi (d, k)) -> ignore (sub_op t rf.(d) k 0)
    | Some (Avr_isa.Com d) ->
      rf.(d) <- logic_op t (lnot rf.(d) land 0xFF);
      t.flag_c <- true
    | Some (Avr_isa.Neg d) ->
      let s = -rf.(d) land 0xFF in
      sub_flags t 0 rf.(d) s;
      t.flag_c <- s <> 0;
      set_zn t s;
      update_s t;
      rf.(d) <- s
    | Some (Avr_isa.Swap d) ->
      rf.(d) <- ((rf.(d) lsl 4) lor (rf.(d) lsr 4)) land 0xFF
    | Some (Avr_isa.Inc d) ->
      let s = (rf.(d) + 1) land 0xFF in
      t.flag_v <- rf.(d) = 0x7F;
      set_zn t s;
      update_s t;
      rf.(d) <- s
    | Some (Avr_isa.Dec d) ->
      let s = (rf.(d) - 1) land 0xFF in
      t.flag_v <- rf.(d) = 0x80;
      set_zn t s;
      update_s t;
      rf.(d) <- s
    | Some (Avr_isa.Lsr d) -> rf.(d) <- shift_op t rf.(d) false
    | Some (Avr_isa.Ror d) -> rf.(d) <- shift_op t rf.(d) t.flag_c
    | Some (Avr_isa.Asr d) -> rf.(d) <- shift_op t rf.(d) (bit7 rf.(d))
    | Some (Avr_isa.Ld_x d) -> rf.(d) <- t.ram.(rf.(26))
    | Some (Avr_isa.Ld_x_inc d) ->
      rf.(d) <- t.ram.(rf.(26));
      rf.(26) <- (rf.(26) + 1) land 0xFF
    | Some (Avr_isa.St_x r) -> t.ram.(rf.(26)) <- rf.(r)
    | Some (Avr_isa.St_x_inc r) ->
      t.ram.(rf.(26)) <- rf.(r);
      rf.(26) <- (rf.(26) + 1) land 0xFF
    | Some (Avr_isa.Adiw (rp, k)) ->
      let v16 = rf.(rp) lor (rf.(rp + 1) lsl 8) in
      let total = v16 + k in
      let r16 = total land 0xFFFF in
      t.flag_c <- total > 0xFFFF;
      t.flag_v <- v16 land 0x8000 = 0 && r16 land 0x8000 <> 0;
      t.flag_n <- r16 land 0x8000 <> 0;
      t.flag_z <- r16 = 0;
      update_s t;
      rf.(rp) <- r16 land 0xFF;
      rf.(rp + 1) <- r16 lsr 8
    | Some (Avr_isa.Sbiw (rp, k)) ->
      let v16 = rf.(rp) lor (rf.(rp + 1) lsl 8) in
      let total = v16 - k in
      let r16 = total land 0xFFFF in
      t.flag_c <- total < 0;
      t.flag_v <- v16 land 0x8000 <> 0 && r16 land 0x8000 = 0;
      t.flag_n <- r16 land 0x8000 <> 0;
      t.flag_z <- r16 = 0;
      update_s t;
      rf.(rp) <- r16 land 0xFF;
      rf.(rp + 1) <- r16 lsr 8
    | Some (Avr_isa.In_ (d, a)) -> rf.(d) <- io_read t a
    | Some (Avr_isa.Out (a, r)) ->
      if a = Avr_isa.io_portb then begin
        t.portb <- rf.(r);
        t.portb_writes <- rf.(r) :: t.portb_writes
      end
    | Some (Avr_isa.Rjmp tg) ->
      let dest = rel_target { t with pc = t.pc - 1 } tg in
      if dest = (t.pc - 1) land 0xFFF then t.halted <- true else jump dest
    | Some (Avr_isa.Breq tg) -> if t.flag_z then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brne tg) ->
      if not t.flag_z then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brcs tg) -> if t.flag_c then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brcc tg) ->
      if not t.flag_c then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brmi tg) -> if t.flag_n then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brpl tg) ->
      if not t.flag_n then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brvs tg) -> if t.flag_v then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brvc tg) ->
      if not t.flag_v then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brlt tg) -> if t.flag_s then jump (rel_target { t with pc = t.pc - 1 } tg)
    | Some (Avr_isa.Brge tg) ->
      if not t.flag_s then jump (rel_target { t with pc = t.pc - 1 } tg));
    t.steps <- t.steps + 1
  end

let run t ~max_steps =
  let budget = ref max_steps in
  while (not t.halted) && !budget > 0 do
    step t;
    decr budget
  done
