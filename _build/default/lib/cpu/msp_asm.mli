(** Two-pass assembler for the MSP430 subset. Instructions may span
    several words (immediates and indexed operands add extension words);
    jump offsets are resolved in words. *)

type item =
  | L of string
  | I of Msp_isa.t

val assemble : item list -> int array
(** Raises [Invalid_argument] on duplicate/undefined labels or encoding
    errors. *)

val disassemble : int array -> string list
