(** Environment devices for the two cores: instruction ROM, data RAM,
    unified memory, and input pins. These model everything outside the
    synthesized netlist (the paper's system model injects faults only into
    the CPU's flip-flops; memories are architectural state). *)

type backing = int array
(** Live view of a memory device's contents. *)

val read_port : Pruning_netlist.Netlist.port -> Pruning_sim.Sim.reader -> int
(** Decode a port's wires into an integer (LSB first). *)

val write_port : Pruning_netlist.Netlist.port -> Pruning_sim.Sim.writer -> int -> unit

val avr_rom : Pruning_netlist.Netlist.t -> program:int array -> Pruning_sim.Sim.device
(** Combinational program ROM: drives [instr] with [program.(pmem_addr)]
    (NOP beyond the end). *)

val avr_ram : Pruning_netlist.Netlist.t -> backing * Pruning_sim.Sim.device
(** 256-byte data RAM on ports [dmem_addr]/[dmem_rdata]/[dmem_wdata]/
    [dmem_wen]. Reads are combinational; writes latch at the clock edge. *)

val avr_pins : Pruning_netlist.Netlist.t -> value:int -> Pruning_sim.Sim.device
(** Constant input pins on [io_in]. *)

val msp_memory :
  Pruning_netlist.Netlist.t -> words:int -> program:int array -> backing * Pruning_sim.Sim.device
(** Unified 16-bit-word memory for the MSP430 core on ports [mem_addr]
    (byte address; bit 0 ignored) / [mem_rdata] / [mem_wdata] / [mem_wen].
    [program] is loaded from word 0. *)
