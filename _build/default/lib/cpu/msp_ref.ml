type t = {
  mem : int array;
  mutable pc : int;
  regs : int array;
  mutable flag_c : bool;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mutable flag_v : bool;
  mutable halted : bool;
  mutable steps : int;
}

let create ~words ~program =
  if Array.length program > words then invalid_arg "Msp_ref.create: program too large";
  let mem = Array.make words 0 in
  Array.blit program 0 mem 0 (Array.length program);
  {
    mem;
    pc = 0;
    regs = Array.make 16 0;
    flag_c = false;
    flag_z = false;
    flag_n = false;
    flag_v = false;
    halted = false;
    steps = 0;
  }

let sr_value t =
  Bool.to_int t.flag_c lor (Bool.to_int t.flag_z lsl 1) lor (Bool.to_int t.flag_n lsl 2)
  lor (Bool.to_int t.flag_v lsl 3)

let read_reg t r =
  match r with
  | 0 -> t.pc
  | 2 -> sr_value t
  | 3 -> 0
  | _ -> t.regs.(r)

let write_reg t r v =
  match r with
  | 0 -> t.pc <- v land 0xFFFE
  | 2 | 3 -> () (* MOV to SR/CG unsupported in the core, ignored here too *)
  | _ -> t.regs.(r) <- v land 0xFFFF

let word_index t byte_addr = byte_addr lsr 1 mod Array.length t.mem

let read_mem t addr = t.mem.(word_index t addr)
let write_mem t addr v = t.mem.(word_index t addr) <- v land 0xFFFF

let bit15 v = v land 0x8000 <> 0

let set_zn t r =
  t.flag_z <- r = 0;
  t.flag_n <- bit15 r

let resolve_src t = function
  | Msp_isa.Reg r -> read_reg t r
  | Msp_isa.Indexed (r, x) -> read_mem t ((read_reg t r + x) land 0xFFFF)
  | Msp_isa.Indirect r -> read_mem t (read_reg t r)
  | Msp_isa.Indirect_inc r ->
    let v = read_mem t (read_reg t r) in
    write_reg t r (read_reg t r + 2);
    v
  | Msp_isa.Imm v -> v land 0xFFFF

(* Destination as an lvalue: (current value, writer). *)
let resolve_dst t = function
  | Msp_isa.Dreg r -> (read_reg t r, fun v -> write_reg t r v)
  | Msp_isa.Dindexed (r, x) ->
    let addr = (read_reg t r + x) land 0xFFFF in
    (read_mem t addr, fun v -> write_mem t addr v)

let arith t dst b cin =
  let total = dst + b + cin in
  let r = total land 0xFFFF in
  t.flag_c <- total > 0xFFFF;
  t.flag_v <-
    (bit15 dst && bit15 b && not (bit15 r)) || ((not (bit15 dst)) && not (bit15 b) && bit15 r);
  set_zn t r;
  r

let logic_flags t r v =
  set_zn t r;
  t.flag_c <- r <> 0;
  t.flag_v <- v

let fmt1 t src dst ~write compute =
  let s = resolve_src t src in
  let d, writer = resolve_dst t dst in
  let r = compute s d in
  if write then writer r

let fmt2 t r compute =
  let v = read_reg t r in
  write_reg t r (compute v)

let jump t taken off =
  (* pc has already advanced past the (one-word) jump. *)
  if taken then begin
    if off = -1 then t.halted <- true else t.pc <- (t.pc + (2 * off)) land 0xFFFF
  end

let off_of = function
  | Msp_isa.Rel k -> k
  | Msp_isa.Label _ -> invalid_arg "Msp_ref: unresolved label in program"

let step t =
  if not t.halted then begin
    match Msp_isa.decode t.mem (word_index t t.pc) with
    | None -> t.pc <- (t.pc + 2) land 0xFFFF
    | Some (insn, size) ->
      t.pc <- (t.pc + (2 * size)) land 0xFFFF;
      (match insn with
      | Msp_isa.Mov (s, d) -> fmt1 t s d ~write:true (fun s _ -> s)
      | Msp_isa.Add (s, d) -> fmt1 t s d ~write:true (fun s d -> arith t d s 0)
      | Msp_isa.Addc (s, d) ->
        fmt1 t s d ~write:true (fun s d -> arith t d s (Bool.to_int t.flag_c))
      | Msp_isa.Sub (s, d) -> fmt1 t s d ~write:true (fun s d -> arith t d (lnot s land 0xFFFF) 1)
      | Msp_isa.Subc (s, d) ->
        fmt1 t s d ~write:true (fun s d -> arith t d (lnot s land 0xFFFF) (Bool.to_int t.flag_c))
      | Msp_isa.Cmp (s, d) -> fmt1 t s d ~write:false (fun s d -> arith t d (lnot s land 0xFFFF) 1)
      | Msp_isa.Bit (s, d) ->
        fmt1 t s d ~write:false (fun s d ->
            let r = s land d in
            logic_flags t r false;
            r)
      | Msp_isa.Bic (s, d) -> fmt1 t s d ~write:true (fun s d -> d land lnot s land 0xFFFF)
      | Msp_isa.Bis (s, d) -> fmt1 t s d ~write:true (fun s d -> s lor d)
      | Msp_isa.Xor (s, d) ->
        fmt1 t s d ~write:true (fun s d ->
            let r = s lxor d in
            logic_flags t r (bit15 s && bit15 d);
            r)
      | Msp_isa.And_ (s, d) ->
        fmt1 t s d ~write:true (fun s d ->
            let r = s land d in
            logic_flags t r false;
            r)
      | Msp_isa.Rrc r ->
        fmt2 t r (fun v ->
            let res = (v lsr 1) lor if t.flag_c then 0x8000 else 0 in
            t.flag_c <- v land 1 = 1;
            set_zn t res;
            t.flag_v <- false;
            res)
      | Msp_isa.Rra r ->
        fmt2 t r (fun v ->
            let res = (v lsr 1) lor (v land 0x8000) in
            t.flag_c <- v land 1 = 1;
            set_zn t res;
            t.flag_v <- false;
            res)
      | Msp_isa.Swpb r -> fmt2 t r (fun v -> ((v land 0xFF) lsl 8) lor (v lsr 8))
      | Msp_isa.Sxt r ->
        fmt2 t r (fun v ->
            let res = if v land 0x80 <> 0 then v lor 0xFF00 else v land 0xFF in
            logic_flags t res false;
            res)
      | Msp_isa.Jnz tg -> jump t (not t.flag_z) (off_of tg)
      | Msp_isa.Jz tg -> jump t t.flag_z (off_of tg)
      | Msp_isa.Jnc tg -> jump t (not t.flag_c) (off_of tg)
      | Msp_isa.Jc tg -> jump t t.flag_c (off_of tg)
      | Msp_isa.Jn tg -> jump t t.flag_n (off_of tg)
      | Msp_isa.Jge tg -> jump t (t.flag_n = t.flag_v) (off_of tg)
      | Msp_isa.Jl tg -> jump t (t.flag_n <> t.flag_v) (off_of tg)
      | Msp_isa.Jmp tg -> jump t true (off_of tg));
      t.steps <- t.steps + 1
  end

let run t ~max_steps =
  let budget = ref max_steps in
  while (not t.halted) && !budget > 0 do
    step t;
    decr budget
  done
