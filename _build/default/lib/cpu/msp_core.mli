(** MSP430-compatible 16-bit multi-cycle core (gate level).

    A size-optimized microcoded implementation: a 7-state FSM (fetch,
    source fetch, source-indexed fetch, destination fetch,
    destination-indexed fetch, execute, write-back) sequences each
    instruction over 2-7 clock cycles through a single memory port and a
    single register-file read port — the style of CPU for which the paper
    reports the larger intra-cycle masking potential, because much state
    (IR, operand latches, effective address, result, FSM state) lives
    outside the register file between cycles.

    Ports:
    - in  [mem_rdata](16);
    - out [mem_addr](16) (byte address, bit 0 ignored), [mem_wdata](16),
      [mem_wen](1).

    Flop names: general-purpose registers r4..r15 are [rf_<n>[<bit>]];
    PC/SP/SR and the microarchitectural latches have their own names. *)

val circuit : unit -> Pruning_rtl.Signal.circuit
(** The RTL description, pre-synthesis (a fresh circuit per call). *)

val build : unit -> Pruning_netlist.Netlist.t

val rf_prefix : string
(** ["rf_"]. *)

(** FSM state encoding, exposed for tests and tracing. *)

val state_fetch : int
val state_src : int
val state_src_idx : int
val state_dst : int
val state_dst_idx : int
val state_exec : int
val state_wb : int
