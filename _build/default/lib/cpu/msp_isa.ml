type target =
  | Label of string
  | Rel of int

type src =
  | Reg of int
  | Indexed of int * int
  | Indirect of int
  | Indirect_inc of int
  | Imm of int

type dst =
  | Dreg of int
  | Dindexed of int * int

type t =
  | Mov of src * dst
  | Add of src * dst
  | Addc of src * dst
  | Sub of src * dst
  | Subc of src * dst
  | Cmp of src * dst
  | Bit of src * dst
  | Bic of src * dst
  | Bis of src * dst
  | Xor of src * dst
  | And_ of src * dst
  | Rrc of int
  | Rra of int
  | Swpb of int
  | Sxt of int
  | Jnz of target
  | Jz of target
  | Jnc of target
  | Jc of target
  | Jn of target
  | Jge of target
  | Jl of target
  | Jmp of target

let bad fmt = Printf.ksprintf invalid_arg fmt

let check_reg what r = if r < 0 || r > 15 then bad "Msp_isa: %s: r%d out of range" what r

let check_gp what r =
  check_reg what r;
  if r = 2 || r = 3 then bad "Msp_isa: %s: r%d (SR/CG) not usable here" what r

let check_word what v = if v < 0 || v > 0xFFFF then bad "Msp_isa: %s: %d not a 16-bit word" what v

let src_fields what = function
  | Reg r ->
    check_reg what r;
    (r, 0b00, [])
  | Indexed (r, x) ->
    check_gp what r;
    check_word what (x land 0xFFFF);
    (r, 0b01, [ x land 0xFFFF ])
  | Indirect r ->
    check_gp what r;
    (r, 0b10, [])
  | Indirect_inc r ->
    check_gp what r;
    (r, 0b11, [])
  | Imm v ->
    check_word what (v land 0xFFFF);
    (0 (* PC *), 0b11, [ v land 0xFFFF ])

let dst_fields what = function
  | Dreg r ->
    check_reg what r;
    (r, 0, [])
  | Dindexed (r, x) ->
    check_gp what r;
    check_word what (x land 0xFFFF);
    (r, 1, [ x land 0xFFFF ])

let format1 opcode src dst what =
  let sreg, as_mode, src_ext = src_fields what src in
  let dreg, ad, dst_ext = dst_fields what dst in
  ((opcode lsl 12) lor (sreg lsl 8) lor (ad lsl 7) lor (as_mode lsl 4) lor dreg)
  :: (src_ext @ dst_ext)

let format2 op3 r what =
  check_gp what r;
  [ 0x1000 lor (op3 lsl 7) lor r ]

let jump cond target what =
  match target with
  | Label l -> bad "Msp_isa: %s: unresolved label %s" what l
  | Rel off ->
    if off < -512 || off > 511 then bad "Msp_isa: %s: offset %d out of range" what off;
    [ 0x2000 lor (cond lsl 10) lor (off land 0x3FF) ]

let encode = function
  | Mov (s, d) -> format1 0x4 s d "MOV"
  | Add (s, d) -> format1 0x5 s d "ADD"
  | Addc (s, d) -> format1 0x6 s d "ADDC"
  | Subc (s, d) -> format1 0x7 s d "SUBC"
  | Sub (s, d) -> format1 0x8 s d "SUB"
  | Cmp (s, d) -> format1 0x9 s d "CMP"
  | Bit (s, d) -> format1 0xB s d "BIT"
  | Bic (s, d) -> format1 0xC s d "BIC"
  | Bis (s, d) -> format1 0xD s d "BIS"
  | Xor (s, d) -> format1 0xE s d "XOR"
  | And_ (s, d) -> format1 0xF s d "AND"
  | Rrc r -> format2 0b000 r "RRC"
  | Swpb r -> format2 0b001 r "SWPB"
  | Rra r -> format2 0b010 r "RRA"
  | Sxt r -> format2 0b011 r "SXT"
  | Jnz t -> jump 0 t "JNZ"
  | Jz t -> jump 1 t "JZ"
  | Jnc t -> jump 2 t "JNC"
  | Jc t -> jump 3 t "JC"
  | Jn t -> jump 4 t "JN"
  | Jge t -> jump 5 t "JGE"
  | Jl t -> jump 6 t "JL"
  | Jmp t -> jump 7 t "JMP"

let src_size = function
  | Reg _ | Indirect _ | Indirect_inc _ -> 0
  | Indexed _ | Imm _ -> 1

let dst_size = function
  | Dreg _ -> 0
  | Dindexed _ -> 1

let size = function
  | Mov (s, d)
  | Add (s, d)
  | Addc (s, d)
  | Sub (s, d)
  | Subc (s, d)
  | Cmp (s, d)
  | Bit (s, d)
  | Bic (s, d)
  | Bis (s, d)
  | Xor (s, d)
  | And_ (s, d) -> 1 + src_size s + dst_size d
  | Rrc _ | Rra _ | Swpb _ | Sxt _ -> 1
  | Jnz _ | Jz _ | Jnc _ | Jc _ | Jn _ | Jge _ | Jl _ | Jmp _ -> 1

let sign_extend bits v = if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let decode words i =
  if i < 0 || i >= Array.length words then None
  else
    let word = words.(i) in
    let next = ref (i + 1) in
    let ext () =
      if !next >= Array.length words then None
      else begin
        let v = words.(!next) in
        incr next;
        Some v
      end
    in
    let bind o f =
      match o with
      | Some v -> f v
      | None -> None
    in
    if word lsr 13 = 0b001 then begin
      let off = sign_extend 10 (word land 0x3FF) in
      let t = Rel off in
      let jump =
        match (word lsr 10) land 0x7 with
        | 0 -> Jnz t
        | 1 -> Jz t
        | 2 -> Jnc t
        | 3 -> Jc t
        | 4 -> Jn t
        | 5 -> Jge t
        | 6 -> Jl t
        | _ -> Jmp t
      in
      Some (jump, 1)
    end
    else if word lsr 10 = 0b000100 then begin
      let r = word land 0xF in
      if (word lsr 4) land 0x3 <> 0 then None
      else
        match (word lsr 7) land 0x7 with
        | 0 -> Some (Rrc r, 1)
        | 1 -> Some (Swpb r, 1)
        | 2 -> Some (Rra r, 1)
        | 3 -> Some (Sxt r, 1)
        | _ -> None
    end
    else begin
      let op = word lsr 12 in
      let sreg = (word lsr 8) land 0xF in
      let dreg = word land 0xF in
      let ad = (word lsr 7) land 1 in
      let as_mode = (word lsr 4) land 0x3 in
      let src =
        match as_mode with
        | 0b00 -> Some (Reg sreg)
        | 0b01 -> bind (ext ()) (fun x -> Some (Indexed (sreg, x)))
        | 0b10 -> Some (Indirect sreg)
        | _ -> if sreg = 0 then bind (ext ()) (fun v -> Some (Imm v)) else Some (Indirect_inc sreg)
      in
      bind src (fun src ->
          let dst =
            if ad = 0 then Some (Dreg dreg)
            else bind (ext ()) (fun x -> Some (Dindexed (dreg, x)))
          in
          bind dst (fun dst ->
              let mk ctor = Some (ctor, !next - i) in
              match op with
              | 0x4 -> mk (Mov (src, dst))
              | 0x5 -> mk (Add (src, dst))
              | 0x6 -> mk (Addc (src, dst))
              | 0x7 -> mk (Subc (src, dst))
              | 0x8 -> mk (Sub (src, dst))
              | 0x9 -> mk (Cmp (src, dst))
              | 0xB -> mk (Bit (src, dst))
              | 0xC -> mk (Bic (src, dst))
              | 0xD -> mk (Bis (src, dst))
              | 0xE -> mk (Xor (src, dst))
              | 0xF -> mk (And_ (src, dst))
              | _ -> None))
    end

let reg_name r =
  match r with
  | 0 -> "PC"
  | 1 -> "SP"
  | 2 -> "SR"
  | 3 -> "CG"
  | _ -> Printf.sprintf "R%d" r

let src_to_string = function
  | Reg r -> reg_name r
  | Indexed (r, x) -> Printf.sprintf "%d(%s)" x (reg_name r)
  | Indirect r -> Printf.sprintf "@%s" (reg_name r)
  | Indirect_inc r -> Printf.sprintf "@%s+" (reg_name r)
  | Imm v -> Printf.sprintf "#%d" v

let dst_to_string = function
  | Dreg r -> reg_name r
  | Dindexed (r, x) -> Printf.sprintf "%d(%s)" x (reg_name r)

let target_to_string = function
  | Label l -> l
  | Rel k -> Printf.sprintf ".%+d" k

let to_string = function
  | Mov (s, d) -> Printf.sprintf "MOV %s, %s" (src_to_string s) (dst_to_string d)
  | Add (s, d) -> Printf.sprintf "ADD %s, %s" (src_to_string s) (dst_to_string d)
  | Addc (s, d) -> Printf.sprintf "ADDC %s, %s" (src_to_string s) (dst_to_string d)
  | Sub (s, d) -> Printf.sprintf "SUB %s, %s" (src_to_string s) (dst_to_string d)
  | Subc (s, d) -> Printf.sprintf "SUBC %s, %s" (src_to_string s) (dst_to_string d)
  | Cmp (s, d) -> Printf.sprintf "CMP %s, %s" (src_to_string s) (dst_to_string d)
  | Bit (s, d) -> Printf.sprintf "BIT %s, %s" (src_to_string s) (dst_to_string d)
  | Bic (s, d) -> Printf.sprintf "BIC %s, %s" (src_to_string s) (dst_to_string d)
  | Bis (s, d) -> Printf.sprintf "BIS %s, %s" (src_to_string s) (dst_to_string d)
  | Xor (s, d) -> Printf.sprintf "XOR %s, %s" (src_to_string s) (dst_to_string d)
  | And_ (s, d) -> Printf.sprintf "AND %s, %s" (src_to_string s) (dst_to_string d)
  | Rrc r -> Printf.sprintf "RRC %s" (reg_name r)
  | Rra r -> Printf.sprintf "RRA %s" (reg_name r)
  | Swpb r -> Printf.sprintf "SWPB %s" (reg_name r)
  | Sxt r -> Printf.sprintf "SXT %s" (reg_name r)
  | Jnz t -> Printf.sprintf "JNZ %s" (target_to_string t)
  | Jz t -> Printf.sprintf "JZ %s" (target_to_string t)
  | Jnc t -> Printf.sprintf "JNC %s" (target_to_string t)
  | Jc t -> Printf.sprintf "JC %s" (target_to_string t)
  | Jn t -> Printf.sprintf "JN %s" (target_to_string t)
  | Jge t -> Printf.sprintf "JGE %s" (target_to_string t)
  | Jl t -> Printf.sprintf "JL %s" (target_to_string t)
  | Jmp t -> Printf.sprintf "JMP %s" (target_to_string t)
