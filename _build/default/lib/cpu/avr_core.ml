open Pruning_rtl.Signal

let rf_prefix = "rf_"

let circuit () =
  let c = create_circuit "avr8" in
  let zero8 = const c ~width:8 0 in
  let one8 = const c ~width:8 1 in

  (* ---- primary inputs -------------------------------------------- *)
  let instr = input c "instr" 16 in
  let dmem_rdata = input c "dmem_rdata" 8 in
  let io_in = input c "io_in" 8 in

  (* ---- state ------------------------------------------------------ *)
  let pc = reg c "pc" 12 in
  let ir = reg c "ir" 16 in
  let ir_valid = reg c "ir_valid" 1 in
  let sreg = reg c "sreg" 5 in
  let portb = reg c "portb" 8 in
  let tcnt = reg c "tcnt" 8 in
  let rf = Array.init 32 (fun i -> reg c (Printf.sprintf "%s%d" rf_prefix i) 8) in

  let iv = q ir_valid in
  let irq = q ir in
  let c_flag = bit (q sreg) 0 in
  let z_flag = bit (q sreg) 1 in
  let n_flag = bit (q sreg) 2 in
  let v_flag = bit (q sreg) 3 in
  let s_flag = bit (q sreg) 4 in

  (* ---- decode ------------------------------------------------------ *)
  let op6 = select irq ~hi:15 ~lo:10 in
  let op5 = select irq ~hi:15 ~lo:11 in
  let op7 = select irq ~hi:15 ~lo:9 in
  let op4 = select irq ~hi:15 ~lo:12 in
  let low4 = select irq ~hi:3 ~lo:0 in
  let is_add = eq_const op6 0b000011 in
  let is_adc = eq_const op6 0b000111 in
  let is_sub = eq_const op6 0b000110 in
  let is_sbc = eq_const op6 0b000010 in
  let is_and = eq_const op6 0b001000 in
  let is_eor = eq_const op6 0b001001 in
  let is_or = eq_const op6 0b001010 in
  let is_mov = eq_const op6 0b001011 in
  let is_cp = eq_const op6 0b000101 in
  let is_cpc = eq_const op6 0b000001 in
  let is_cpi = eq_const op4 0b0011 in
  let is_sbci = eq_const op4 0b0100 in
  let is_subi = eq_const op4 0b0101 in
  let is_ori = eq_const op4 0b0110 in
  let is_andi = eq_const op4 0b0111 in
  let is_ldi = eq_const op4 0b1110 in
  let is_onereg = eq_const op7 0b1001010 in
  let is_com = is_onereg &: eq_const low4 0b0000 in
  let is_swap = is_onereg &: eq_const low4 0b0010 in
  let is_neg = is_onereg &: eq_const low4 0b0001 in
  let is_inc = is_onereg &: eq_const low4 0b0011 in
  let is_asr = is_onereg &: eq_const low4 0b0101 in
  let is_lsr = is_onereg &: eq_const low4 0b0110 in
  let is_ror = is_onereg &: eq_const low4 0b0111 in
  let is_dec = is_onereg &: eq_const low4 0b1010 in
  let is_ldclass = eq_const op7 0b1001000 in
  let is_stclass = eq_const op7 0b1001001 in
  let is_x = eq_const low4 0xC in
  let is_x_inc = eq_const low4 0xD in
  let is_ld = is_ldclass &: (is_x |: is_x_inc) in
  let is_st = is_stclass &: (is_x |: is_x_inc) in
  let is_postinc = (is_ldclass |: is_stclass) &: is_x_inc in
  let is_wordop = eq_const op7 0b1001011 in
  let is_adiw = is_wordop &: ~:(bit irq 8) in
  let is_in = eq_const op5 0b10110 in
  let is_out = eq_const op5 0b10111 in
  let is_rjmp = eq_const op4 0b1100 in
  let is_br = eq_const op5 0b11110 |: eq_const op5 0b11111 in

  (* ---- operand fetch ----------------------------------------------- *)
  let d_field = select irq ~hi:8 ~lo:4 in
  let imm_d = cat (vdd c) (select irq ~hi:7 ~lo:4) in
  let r_field = cat (bit irq 9) low4 in
  let k_imm = cat (select irq ~hi:11 ~lo:8) low4 in
  let io_addr = cat (select irq ~hi:10 ~lo:9) low4 in
  let is_imm_class = is_cpi |: is_sbci |: is_subi |: is_ori |: is_andi |: is_ldi in
  let rd_sel = mux2 is_imm_class imm_d d_field in
  let rf_q = Array.to_list (Array.map q rf) in
  let rd_val = mux rd_sel rf_q in
  let rr_val = mux r_field rf_q in
  let b_val = mux2 is_imm_class k_imm rr_val in

  (* ---- ALU ---------------------------------------------------------- *)
  let a_val = rd_val in
  let add_b = mux2 is_inc one8 b_val in
  let add_cin = is_adc &: c_flag in
  let sum, cout = add_carry a_val add_b ~cin:add_cin in
  let sub_a = mux2 is_neg zero8 a_val in
  let sub_b = mux2 is_dec one8 (mux2 is_neg a_val b_val) in
  let sub_bin = (is_sbc |: is_sbci |: is_cpc) &: c_flag in
  let diff, bout = sub_borrow sub_a sub_b ~bin:sub_bin in
  let a7 = bit a_val 7 in
  let ovf_add =
    let b7 = bit add_b 7 and s7 = bit sum 7 in
    a7 &: b7 &: ~:s7 |: (~:a7 &: ~:b7 &: s7)
  in
  let ovf_sub =
    let a7' = bit sub_a 7 and b7 = bit sub_b 7 and s7 = bit diff 7 in
    a7' &: ~:b7 &: ~:s7 |: (~:a7' &: b7 &: s7)
  in
  let and_r = a_val &: b_val in
  let or_r = a_val |: b_val in
  let xor_r = a_val ^: b_val in
  let com_r = ~:a_val in
  let shift_top = mux2 is_ror c_flag (mux2 is_asr a7 (gnd c)) in
  let shift_r = cat shift_top (select a_val ~hi:7 ~lo:1) in
  let swap_r = cat (select a_val ~hi:3 ~lo:0) (select a_val ~hi:7 ~lo:4) in
  (* 16-bit ADIW/SBIW on the register pairs r24..r31 *)
  let pair_sel = select irq ~hi:5 ~lo:4 in
  let k6 = uresize (cat (select irq ~hi:7 ~lo:6) low4) 16 in
  let pair_value p = cat (q rf.(p + 1)) (q rf.(p)) in
  let rd16 = mux pair_sel [ pair_value 24; pair_value 26; pair_value 28; pair_value 30 ] in
  let wsum, wcout = add_carry rd16 k6 ~cin:(gnd c) in
  let wdiff, wbout = sub_borrow rd16 k6 ~bin:(gnd c) in
  let wres = mux2 is_adiw wsum wdiff in
  let rd15 = bit rd16 15 and wr15_sum = bit wsum 15 and wr15_diff = bit wdiff 15 in
  let w_c = mux2 is_adiw wcout wbout in
  let w_v = mux2 is_adiw (~:rd15 &: wr15_sum) (rd15 &: ~:wr15_diff) in
  let w_n = mux2 is_adiw wr15_sum wr15_diff in
  let w_z = is_zero wres in
  let in_r =
    mux2 (eq_const io_addr Avr_isa.io_pinb) io_in
      (mux2 (eq_const io_addr Avr_isa.io_portb) (q portb)
         (mux2 (eq_const io_addr 0x32) (q tcnt) zero8))
  in
  let is_addclass = is_add |: is_adc |: is_inc in
  let is_subclass =
    is_sub |: is_subi |: is_sbc |: is_sbci |: is_cp |: is_cpi |: is_cpc |: is_dec |: is_neg
  in
  let is_logic = is_and |: is_andi |: is_or |: is_ori |: is_eor |: is_com in
  let is_shift = is_lsr |: is_ror |: is_asr in
  let logic_r =
    mux2 (is_and |: is_andi) and_r (mux2 (is_or |: is_ori) or_r (mux2 is_eor xor_r com_r))
  in
  let result =
    mux2 is_addclass sum
      (mux2 is_subclass diff
         (mux2 is_logic logic_r
            (mux2 is_shift shift_r
               (mux2 is_swap swap_r
                  (mux2 (is_mov |: is_ldi) b_val
                     (mux2 is_ld dmem_rdata (mux2 is_in in_r zero8)))))))
  in

  (* ---- flags --------------------------------------------------------- *)
  let res_zero = is_zero result in
  let a0 = bit a_val 0 in
  let c_sub_class = is_sub |: is_subi |: is_sbc |: is_sbci |: is_cp |: is_cpi |: is_cpc |: is_neg in
  let c_en = iv &: (is_add |: is_adc |: c_sub_class |: is_com |: is_shift |: is_wordop) in
  let c_val =
    mux2 is_wordop w_c
      (mux2 is_com (vdd c) (mux2 is_shift a0 (mux2 (is_add |: is_adc) cout bout)))
  in
  let flag_any = is_addclass |: is_subclass |: is_logic |: is_shift |: is_wordop in
  let z_en = iv &: flag_any in
  let z_chain = is_sbc |: is_sbci |: is_cpc in
  let z_val = mux2 is_wordop w_z (mux2 z_chain (z_flag &: res_zero) res_zero) in
  let n_val = mux2 is_wordop w_n (bit result 7) in
  let v_val =
    mux2 is_wordop w_v
      (mux2 is_addclass ovf_add
         (mux2 is_subclass ovf_sub (mux2 is_shift (bit result 7 ^: c_val) (gnd c))))
  in
  let s_val = n_val ^: v_val in
  let c_next = mux2 c_en c_val c_flag in
  let z_next = mux2 z_en z_val z_flag in
  let n_next = mux2 z_en n_val n_flag in
  let v_next = mux2 z_en v_val v_flag in
  let s_next = mux2 z_en s_val s_flag in
  connect sreg (concat [ s_next; v_next; n_next; z_next; c_next ]);

  (* ---- register-file write-back -------------------------------------- *)
  let writes_rd =
    is_addclass
    |: (is_sub |: is_subi |: is_sbc |: is_sbci |: is_dec |: is_neg)
    |: is_logic |: is_shift |: is_swap
    |: (is_mov |: is_ldi)
    |: is_ld |: is_in
  in
  let wen = iv &: writes_rd in
  let postinc = iv &: is_postinc in
  let word_wen = iv &: is_wordop in
  Array.iteri
    (fun i r ->
      let write_this = wen &: eq_const rd_sel i in
      let next = mux2 write_this result (q r) in
      let next = if i = 26 then mux2 postinc (q r +: one8) next else next in
      let next =
        if i >= 24 then begin
          (* ADIW/SBIW write both halves of the selected pair. *)
          let this_pair = word_wen &: eq_const pair_sel ((i - 24) / 2) in
          let half = if i land 1 = 0 then select wres ~hi:7 ~lo:0 else select wres ~hi:15 ~lo:8 in
          mux2 this_pair half next
        end
        else next
      in
      connect r next)
    rf;

  (* ---- PORTB and timer ------------------------------------------------ *)
  let out_portb = iv &: is_out &: eq_const io_addr Avr_isa.io_portb in
  connect portb (mux2 out_portb rd_val (q portb));
  connect tcnt (q tcnt +: one8);

  (* ---- control flow --------------------------------------------------- *)
  let sext7 = sresize (select irq ~hi:9 ~lo:3) 12 in
  let sext12 = sresize (select irq ~hi:11 ~lo:0) 12 in
  let offset = mux2 is_rjmp sext12 sext7 in
  let target = q pc +: offset in
  let br_flag =
    mux (select irq ~hi:2 ~lo:0) [ c_flag; z_flag; n_flag; v_flag; s_flag; gnd c ]
  in
  let br_cond = mux2 (bit irq 10) ~:br_flag br_flag in
  let br_taken = iv &: (is_rjmp |: (is_br &: br_cond)) in
  connect pc (mux2 br_taken target (q pc +: const c ~width:12 1));
  connect ir instr;
  connect ir_valid ~:br_taken;

  (* ---- primary outputs ------------------------------------------------- *)
  let mem_active = iv &: (is_ld |: is_st) in
  let st_active = iv &: is_st in
  output c "pmem_addr" (q pc);
  output c "dmem_addr" (mux2 mem_active (q rf.(26)) zero8);
  output c "dmem_wen" st_active;
  output c "dmem_wdata" (mux2 st_active rd_val zero8);
  output c "portb_o" (q portb);
  c

let build () = Pruning_rtl.Synth.to_netlist (circuit ())
