(** ISA-level reference interpreter for the AVR subset.

    An architectural golden model: it executes instructions atomically with
    no pipeline, and is used (a) to validate the gate-level core in tests
    and (b) as the ISA-level layer of the paper's Section 6.3 discussion
    (software-visible state = registers + memory + ports). The free-running
    timer TCNT0 is the one piece of cycle-dependent state it does not
    model; programs compared against the core must not read it. *)

type t = {
  program : int array;
  mutable pc : int;
  rf : int array;  (** 32 registers *)
  ram : int array;  (** 256 bytes *)
  mutable flag_c : bool;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mutable flag_v : bool;
  mutable flag_s : bool;  (** N xor V, kept in sync on every flag update *)
  mutable portb : int;
  mutable pinb : int;  (** input pins seen by IN *)
  mutable portb_writes : int list;  (** most recent first *)
  mutable halted : bool;  (** reached [RJMP .] *)
  mutable steps : int;
}

val create : ?pinb:int -> program:int array -> unit -> t

val step : t -> unit
(** Execute one instruction. Unknown words execute as NOP. No-op once
    [halted]. *)

val run : t -> max_steps:int -> unit
(** Step until halt or the step budget is exhausted. *)
