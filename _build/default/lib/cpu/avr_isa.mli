(** AVR instruction subset: encoding and decoding.

    The 8-bit AVR-compatible core implements the subset below with the
    original ATmega instruction encodings. Branch targets are PC-relative
    word offsets; the assembler resolves labels to offsets.

    Restrictions mirrored from the core (documented deviations from a full
    ATmega): immediate instructions require [r16]..[r31] as on real AVR;
    data addressing uses the X pointer's low byte only (256-byte data
    space); [LD Rd, X+] must not target r26. *)

type target =
  | Label of string  (** resolved by the assembler *)
  | Rel of int  (** signed word offset, relative to the next instruction *)

type t =
  | Nop
  | Mov of int * int  (** [Mov (rd, rr)]: rd <- rr *)
  | Add of int * int
  | Adc of int * int
  | Sub of int * int
  | Sbc of int * int
  | And_ of int * int
  | Or_ of int * int
  | Eor of int * int
  | Cp of int * int
  | Cpc of int * int
  | Ldi of int * int  (** [Ldi (rd, k)], rd in 16..31, k in 0..255 *)
  | Subi of int * int
  | Sbci of int * int
  | Andi of int * int
  | Ori of int * int
  | Cpi of int * int
  | Com of int
  | Neg of int
  | Swap of int
  | Inc of int
  | Dec of int
  | Lsr of int
  | Ror of int
  | Asr of int
  | Ld_x of int  (** [LD Rd, X] *)
  | Ld_x_inc of int  (** [LD Rd, X+] *)
  | St_x of int  (** [ST X, Rr] *)
  | St_x_inc of int  (** [ST X+, Rr] *)
  | Adiw of int * int
      (** [Adiw (rp, k)]: 16-bit add of k (0..63) to the register pair
          rp:rp+1, rp in \{24, 26, 28, 30\} *)
  | Sbiw of int * int  (** 16-bit subtract from a register pair *)
  | In_ of int * int  (** [In_ (rd, io_addr)] *)
  | Out of int * int  (** [Out (io_addr, rr)] *)
  | Rjmp of target
  | Breq of target
  | Brne of target
  | Brcs of target
  | Brcc of target
  | Brmi of target  (** branch if N set *)
  | Brpl of target  (** branch if N clear *)
  | Brvs of target  (** branch if V set *)
  | Brvc of target  (** branch if V clear *)
  | Brlt of target  (** branch if S = N xor V set (signed less-than) *)
  | Brge of target  (** branch if S clear (signed greater-or-equal) *)

val lsl_ : int -> t
(** LSL Rd, the standard alias for ADD Rd,Rd. *)

val rol : int -> t
(** ROL Rd = ADC Rd,Rd. *)

val encode : t -> int
(** 16-bit instruction word. Raises [Invalid_argument] on out-of-range
    operands or unresolved labels. *)

val decode : int -> t option
(** Inverse of {!encode} for the implemented subset ([None] otherwise).
    Branches decode to [Rel] targets. Aliases decode to their underlying
    instruction. *)

val to_string : t -> string
(** Assembly-ish rendering, e.g. ["ADD r16, r17"]. *)

(** I/O addresses implemented by the core. *)

val io_portb : int
(** Output port register (0x18). *)

val io_pinb : int
(** Input pins (0x16). *)
