module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim

type backing = int array

let read_port (port : Netlist.port) (read : Sim.reader) =
  let v = ref 0 in
  Array.iteri (fun i w -> if read w then v := !v lor (1 lsl i)) port.Netlist.port_wires;
  !v

let write_port (port : Netlist.port) (write : Sim.writer) value =
  Array.iteri (fun i w -> write w (value land (1 lsl i) <> 0)) port.Netlist.port_wires

let array_saver mem () =
  let copy = Array.copy mem in
  fun () -> Array.blit copy 0 mem 0 (Array.length mem)

let avr_rom nl ~program =
  let addr_port = Netlist.find_output_port nl "pmem_addr" in
  let instr_port = Netlist.find_input_port nl "instr" in
  Sim.pure_device "avr-rom" (fun read write ->
      let addr = read_port addr_port read in
      let word = if addr < Array.length program then program.(addr) else 0 (* NOP *) in
      write_port instr_port write word)

let avr_ram nl =
  let mem = Array.make 256 0 in
  let addr_port = Netlist.find_output_port nl "dmem_addr" in
  let rdata_port = Netlist.find_input_port nl "dmem_rdata" in
  let wdata_port = Netlist.find_output_port nl "dmem_wdata" in
  let wen_port = Netlist.find_output_port nl "dmem_wen" in
  let device =
    {
      Sim.dev_name = "avr-ram";
      dev_comb =
        (fun read write -> write_port rdata_port write mem.(read_port addr_port read land 0xFF));
      dev_clock =
        (fun read ->
          if read_port wen_port read = 1 then
            mem.(read_port addr_port read land 0xFF) <- read_port wdata_port read land 0xFF);
      dev_save = array_saver mem;
    }
  in
  (mem, device)

let avr_pins nl ~value =
  let io_port = Netlist.find_input_port nl "io_in" in
  Sim.pure_device "avr-pins" (fun _read write -> write_port io_port write value)

let msp_memory nl ~words ~program =
  if Array.length program > words then invalid_arg "Memory.msp_memory: program too large";
  let mem = Array.make words 0 in
  Array.blit program 0 mem 0 (Array.length program);
  let addr_port = Netlist.find_output_port nl "mem_addr" in
  let rdata_port = Netlist.find_input_port nl "mem_rdata" in
  let wdata_port = Netlist.find_output_port nl "mem_wdata" in
  let wen_port = Netlist.find_output_port nl "mem_wen" in
  let word_index read = read_port addr_port read lsr 1 mod words in
  let device =
    {
      Sim.dev_name = "msp-memory";
      dev_comb = (fun read write -> write_port rdata_port write mem.(word_index read));
      dev_clock =
        (fun read ->
          if read_port wen_port read = 1 then
            mem.(word_index read) <- read_port wdata_port read land 0xFFFF);
      dev_save = array_saver mem;
    }
  in
  (mem, device)
