(** AVR-compatible 8-bit two-stage pipelined core (gate level).

    Microarchitecture: an IF stage (12-bit PC, instruction register + valid
    bit; one branch delay bubble) and an EX stage (decode, 32x8 register
    file, 8-bit ALU with C/Z/N/V flags, load/store via the X pointer's low
    byte, PORTB output register, free-running 8-bit timer TCNT0 readable
    via IN). See {!Avr_isa} for the instruction subset.

    Ports:
    - in  [instr](16): instruction word at [pmem_addr];
    - in  [dmem_rdata](8): data memory read value at [dmem_addr];
    - in  [io_in](8): PINB input pins;
    - out [pmem_addr](12), [dmem_addr](8), [dmem_wdata](8), [dmem_wen](1),
      [portb_o](8).

    Register-file flip-flops are named [rf_<n>[<bit>]] so fault-set
    selection can include or exclude them by the ["rf_"] prefix. *)

val circuit : unit -> Pruning_rtl.Signal.circuit
(** The RTL description, pre-synthesis (a fresh circuit per call). *)

val build : unit -> Pruning_netlist.Netlist.t
(** Synthesize a fresh netlist of the core. *)

val rf_prefix : string
(** Flop-name prefix of the register file (["rf_"]). *)
