(** Two-pass assembler for the AVR subset. *)

type item =
  | L of string  (** label definition *)
  | I of Avr_isa.t  (** instruction *)

val assemble : item list -> int array
(** Resolve labels to relative offsets and encode. Raises
    [Invalid_argument] on duplicate or undefined labels and on encoding
    errors (with the offending label or instruction named). *)

val disassemble : int array -> string list
(** Best-effort listing (".word 0x...." for unknown encodings). *)
