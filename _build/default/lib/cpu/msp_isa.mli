(** MSP430 instruction subset: encoding and decoding.

    Word-sized operations only (B/W bit forced to word). Source addressing
    modes: register, indexed [X(Rn)], indirect [@Rn], indirect
    auto-increment [@Rn+]; immediates are emitted as [@PC+] exactly like
    the real ISA. Destination modes: register and indexed. The constant
    generator (r2/r3 special cases) is not used by the assembler; r3 reads
    as zero in the core.

    Registers: r0 = PC, r1 = SP, r2 = SR, r3 = CG, r4..r15 general
    purpose. *)

type target =
  | Label of string
  | Rel of int  (** signed word offset relative to the next instruction *)

type src =
  | Reg of int
  | Indexed of int * int  (** [Indexed (rn, x)] = x(Rn) *)
  | Indirect of int  (** @Rn *)
  | Indirect_inc of int  (** @Rn+ *)
  | Imm of int  (** #x, encoded as @PC+ *)

type dst =
  | Dreg of int
  | Dindexed of int * int

(** Two-operand instructions are [op src dst] with dst as the left ALU
    operand (e.g. [Sub (src, dst)] computes dst - src). *)
type t =
  | Mov of src * dst
  | Add of src * dst
  | Addc of src * dst
  | Sub of src * dst
  | Subc of src * dst
  | Cmp of src * dst
  | Bit of src * dst
  | Bic of src * dst
  | Bis of src * dst
  | Xor of src * dst
  | And_ of src * dst
  | Rrc of int  (** register mode only in this subset *)
  | Rra of int
  | Swpb of int
  | Sxt of int
  | Jnz of target
  | Jz of target
  | Jnc of target
  | Jc of target
  | Jn of target
  | Jge of target
  | Jl of target
  | Jmp of target

val size : t -> int
(** Number of 16-bit words the instruction occupies (1..3). *)

val encode : t -> int list
(** Instruction word followed by extension words (source first). Raises
    [Invalid_argument] on bad operands or unresolved labels. *)

val decode : int array -> int -> (t * int) option
(** [decode words i] decodes the instruction starting at word index [i],
    returning it and its size. *)

val to_string : t -> string
