lib/cpu/msp_core.mli: Pruning_netlist Pruning_rtl
