lib/cpu/programs.mli: Avr_asm Msp_asm
