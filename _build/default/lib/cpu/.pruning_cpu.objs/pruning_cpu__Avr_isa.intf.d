lib/cpu/avr_isa.mli:
