lib/cpu/avr_asm.mli: Avr_isa
