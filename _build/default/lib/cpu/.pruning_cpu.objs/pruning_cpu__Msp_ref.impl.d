lib/cpu/msp_ref.ml: Array Bool Msp_isa
