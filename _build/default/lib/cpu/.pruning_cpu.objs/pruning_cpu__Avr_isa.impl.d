lib/cpu/avr_isa.ml: Printf
