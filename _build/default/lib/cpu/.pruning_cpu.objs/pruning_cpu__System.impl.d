lib/cpu/system.ml: Avr_core Memory Msp_core Pruning_netlist Pruning_sim
