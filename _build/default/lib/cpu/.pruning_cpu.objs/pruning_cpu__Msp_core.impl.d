lib/cpu/msp_core.ml: Array Printf Pruning_rtl
