lib/cpu/avr_asm.ml: Array Avr_isa Hashtbl List Printf
