lib/cpu/avr_core.mli: Pruning_netlist Pruning_rtl
