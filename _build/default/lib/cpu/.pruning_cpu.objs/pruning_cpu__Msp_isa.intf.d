lib/cpu/msp_isa.mli:
