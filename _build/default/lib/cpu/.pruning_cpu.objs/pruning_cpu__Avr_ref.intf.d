lib/cpu/avr_ref.mli:
