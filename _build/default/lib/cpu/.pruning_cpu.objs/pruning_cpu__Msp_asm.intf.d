lib/cpu/msp_asm.mli: Msp_isa
