lib/cpu/msp_isa.ml: Array Printf
