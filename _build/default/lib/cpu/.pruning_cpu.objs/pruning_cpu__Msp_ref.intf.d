lib/cpu/msp_ref.mli:
