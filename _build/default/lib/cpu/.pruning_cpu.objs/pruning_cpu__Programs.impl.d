lib/cpu/programs.ml: Array Avr_asm Avr_isa List Msp_asm Msp_isa
