lib/cpu/avr_core.ml: Array Avr_isa Printf Pruning_rtl
