lib/cpu/system.mli: Memory Pruning_netlist Pruning_sim
