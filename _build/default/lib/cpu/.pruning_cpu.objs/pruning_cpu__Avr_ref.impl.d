lib/cpu/avr_ref.ml: Array Avr_isa Bool
