lib/cpu/msp_asm.ml: Array Hashtbl List Msp_isa Printf
