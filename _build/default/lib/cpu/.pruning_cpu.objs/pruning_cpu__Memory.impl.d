lib/cpu/memory.ml: Array Pruning_netlist Pruning_sim
