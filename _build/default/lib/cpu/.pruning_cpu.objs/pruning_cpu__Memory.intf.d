lib/cpu/memory.mli: Pruning_netlist Pruning_sim
