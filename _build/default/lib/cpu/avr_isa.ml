type target =
  | Label of string
  | Rel of int

type t =
  | Nop
  | Mov of int * int
  | Add of int * int
  | Adc of int * int
  | Sub of int * int
  | Sbc of int * int
  | And_ of int * int
  | Or_ of int * int
  | Eor of int * int
  | Cp of int * int
  | Cpc of int * int
  | Ldi of int * int
  | Subi of int * int
  | Sbci of int * int
  | Andi of int * int
  | Ori of int * int
  | Cpi of int * int
  | Com of int
  | Neg of int
  | Swap of int
  | Inc of int
  | Dec of int
  | Lsr of int
  | Ror of int
  | Asr of int
  | Ld_x of int
  | Ld_x_inc of int
  | St_x of int
  | St_x_inc of int
  | Adiw of int * int
  | Sbiw of int * int
  | In_ of int * int
  | Out of int * int
  | Rjmp of target
  | Breq of target
  | Brne of target
  | Brcs of target
  | Brcc of target
  | Brmi of target
  | Brpl of target
  | Brvs of target
  | Brvc of target
  | Brlt of target
  | Brge of target

let lsl_ rd = Add (rd, rd)
let rol rd = Adc (rd, rd)

let io_portb = 0x18
let io_pinb = 0x16

let bad fmt = Printf.ksprintf invalid_arg fmt

let check_reg what r = if r < 0 || r > 31 then bad "Avr_isa: %s: register r%d out of range" what r

let check_hreg what r =
  if r < 16 || r > 31 then bad "Avr_isa: %s: register r%d not in r16..r31" what r

let check_imm what k = if k < 0 || k > 255 then bad "Avr_isa: %s: immediate %d out of range" what k

let check_io what a = if a < 0 || a > 63 then bad "Avr_isa: %s: i/o address %d out of range" what a

let rel what bits = function
  | Label l -> bad "Avr_isa: %s: unresolved label %s" what l
  | Rel k ->
    let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
    if k < lo || k > hi then bad "Avr_isa: %s: offset %d out of range" what k;
    k land ((1 lsl bits) - 1)

(* Two-register format: oooooo rd dddd rrrr with r = {bit9, bits3..0}. *)
let two_reg opcode6 rd rr what =
  check_reg what rd;
  check_reg what rr;
  (opcode6 lsl 10) lor ((rr lsr 4) lsl 9) lor (rd lsl 4) lor (rr land 0xF)

(* Immediate format: oooo KKKK dddd KKKK with d = 16 + field. *)
let imm_op opcode4 rd k what =
  check_hreg what rd;
  check_imm what k;
  (opcode4 lsl 12) lor ((k lsr 4) lsl 8) lor ((rd - 16) lsl 4) lor (k land 0xF)

(* One-register format: 1001 010d dddd oooo. *)
let one_reg op4 rd what =
  check_reg what rd;
  0x9400 lor (rd lsl 4) lor op4

let ldst load inc r what =
  check_reg what r;
  if load && inc && r = 26 then bad "Avr_isa: %s: LD r26, X+ would double-write r26" what;
  (if load then 0x9000 else 0x9200) lor (r lsl 4) lor if inc then 0xD else 0xC

(* Word format: 1001 011o KKdd KKKK with the pair dd in {24,26,28,30}. *)
let word_op o rp k what =
  if rp <> 24 && rp <> 26 && rp <> 28 && rp <> 30 then
    bad "Avr_isa: %s: register pair r%d invalid (24/26/28/30)" what rp;
  if k < 0 || k > 63 then bad "Avr_isa: %s: constant %d out of range" what k;
  let dd = (rp - 24) / 2 in
  0x9600 lor (o lsl 8) lor ((k lsr 4) lsl 6) lor (dd lsl 4) lor (k land 0xF)

(* Branch format: 1111 0skk kkkk ksss; bs=0 -> BRBS, bs=1 -> BRBC. *)
let branch bs sreg_bit target what =
  let k = rel what 7 target in
  0xF000 lor (bs lsl 10) lor (k lsl 3) lor sreg_bit

let encode = function
  | Nop -> 0x0000
  | Mov (rd, rr) -> two_reg 0b001011 rd rr "MOV"
  | Add (rd, rr) -> two_reg 0b000011 rd rr "ADD"
  | Adc (rd, rr) -> two_reg 0b000111 rd rr "ADC"
  | Sub (rd, rr) -> two_reg 0b000110 rd rr "SUB"
  | Sbc (rd, rr) -> two_reg 0b000010 rd rr "SBC"
  | And_ (rd, rr) -> two_reg 0b001000 rd rr "AND"
  | Or_ (rd, rr) -> two_reg 0b001010 rd rr "OR"
  | Eor (rd, rr) -> two_reg 0b001001 rd rr "EOR"
  | Cp (rd, rr) -> two_reg 0b000101 rd rr "CP"
  | Cpc (rd, rr) -> two_reg 0b000001 rd rr "CPC"
  | Ldi (rd, k) -> imm_op 0b1110 rd k "LDI"
  | Subi (rd, k) -> imm_op 0b0101 rd k "SUBI"
  | Sbci (rd, k) -> imm_op 0b0100 rd k "SBCI"
  | Andi (rd, k) -> imm_op 0b0111 rd k "ANDI"
  | Ori (rd, k) -> imm_op 0b0110 rd k "ORI"
  | Cpi (rd, k) -> imm_op 0b0011 rd k "CPI"
  | Com rd -> one_reg 0b0000 rd "COM"
  | Neg rd -> one_reg 0b0001 rd "NEG"
  | Swap rd -> one_reg 0b0010 rd "SWAP"
  | Inc rd -> one_reg 0b0011 rd "INC"
  | Asr rd -> one_reg 0b0101 rd "ASR"
  | Lsr rd -> one_reg 0b0110 rd "LSR"
  | Ror rd -> one_reg 0b0111 rd "ROR"
  | Dec rd -> one_reg 0b1010 rd "DEC"
  | Ld_x rd -> ldst true false rd "LD X"
  | Ld_x_inc rd -> ldst true true rd "LD X+"
  | St_x rr -> ldst false false rr "ST X"
  | St_x_inc rr -> ldst false true rr "ST X+"
  | Adiw (rp, k) -> word_op 0 rp k "ADIW"
  | Sbiw (rp, k) -> word_op 1 rp k "SBIW"
  | In_ (rd, a) ->
    check_reg "IN" rd;
    check_io "IN" a;
    0xB000 lor ((a lsr 4) lsl 9) lor (rd lsl 4) lor (a land 0xF)
  | Out (a, rr) ->
    check_reg "OUT" rr;
    check_io "OUT" a;
    0xB800 lor ((a lsr 4) lsl 9) lor (rr lsl 4) lor (a land 0xF)
  | Rjmp target -> 0xC000 lor rel "RJMP" 12 target
  | Breq target -> branch 0 1 target "BREQ"
  | Brne target -> branch 1 1 target "BRNE"
  | Brcs target -> branch 0 0 target "BRCS"
  | Brcc target -> branch 1 0 target "BRCC"
  | Brmi target -> branch 0 2 target "BRMI"
  | Brpl target -> branch 1 2 target "BRPL"
  | Brvs target -> branch 0 3 target "BRVS"
  | Brvc target -> branch 1 3 target "BRVC"
  | Brlt target -> branch 0 4 target "BRLT"
  | Brge target -> branch 1 4 target "BRGE"

let sign_extend bits v = if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let decode word =
  if word < 0 || word > 0xFFFF then None
  else if word = 0 then Some Nop
  else
    let op6 = word lsr 10 in
    let rd = (word lsr 4) land 0x1F in
    let rr = (((word lsr 9) land 1) lsl 4) lor (word land 0xF) in
    let two ctor = Some (ctor (rd, rr)) in
    match op6 with
    | 0b000001 -> two (fun (d, r) -> Cpc (d, r))
    | 0b000010 -> two (fun (d, r) -> Sbc (d, r))
    | 0b000011 -> two (fun (d, r) -> Add (d, r))
    | 0b000101 -> two (fun (d, r) -> Cp (d, r))
    | 0b000110 -> two (fun (d, r) -> Sub (d, r))
    | 0b000111 -> two (fun (d, r) -> Adc (d, r))
    | 0b001000 -> two (fun (d, r) -> And_ (d, r))
    | 0b001001 -> two (fun (d, r) -> Eor (d, r))
    | 0b001010 -> two (fun (d, r) -> Or_ (d, r))
    | 0b001011 -> two (fun (d, r) -> Mov (d, r))
    | _ -> begin
      let op4 = word lsr 12 in
      let imm_d = 16 + ((word lsr 4) land 0xF) in
      let imm_k = (((word lsr 8) land 0xF) lsl 4) lor (word land 0xF) in
      match op4 with
      | 0b0011 -> Some (Cpi (imm_d, imm_k))
      | 0b0100 -> Some (Sbci (imm_d, imm_k))
      | 0b0101 -> Some (Subi (imm_d, imm_k))
      | 0b0110 -> Some (Ori (imm_d, imm_k))
      | 0b0111 -> Some (Andi (imm_d, imm_k))
      | 0b1110 -> Some (Ldi (imm_d, imm_k))
      | 0b1100 -> Some (Rjmp (Rel (sign_extend 12 (word land 0xFFF))))
      | _ ->
        if word lsr 9 = 0b1001011 then begin
          let k = (((word lsr 6) land 0x3) lsl 4) lor (word land 0xF) in
          let rp = 24 + (2 * ((word lsr 4) land 0x3)) in
          if (word lsr 8) land 1 = 0 then Some (Adiw (rp, k)) else Some (Sbiw (rp, k))
        end
        else if word lsr 9 = 0b1001010 then begin
          match word land 0xF with
          | 0b0000 -> Some (Com rd)
          | 0b0001 -> Some (Neg rd)
          | 0b0010 -> Some (Swap rd)
          | 0b0011 -> Some (Inc rd)
          | 0b0101 -> Some (Asr rd)
          | 0b0110 -> Some (Lsr rd)
          | 0b0111 -> Some (Ror rd)
          | 0b1010 -> Some (Dec rd)
          | _ -> None
        end
        else if word lsr 9 = 0b1001000 then begin
          match word land 0xF with
          | 0xC -> Some (Ld_x rd)
          | 0xD -> Some (Ld_x_inc rd)
          | _ -> None
        end
        else if word lsr 9 = 0b1001001 then begin
          match word land 0xF with
          | 0xC -> Some (St_x rd)
          | 0xD -> Some (St_x_inc rd)
          | _ -> None
        end
        else if word lsr 11 = 0b10110 then
          Some (In_ (rd, (((word lsr 9) land 0x3) lsl 4) lor (word land 0xF)))
        else if word lsr 11 = 0b10111 then
          Some (Out ((((word lsr 9) land 0x3) lsl 4) lor (word land 0xF), rd))
        else if word lsr 11 = 0b11110 || word lsr 11 = 0b11111 then begin
          let offset = Rel (sign_extend 7 ((word lsr 3) land 0x7F)) in
          let set = (word lsr 10) land 1 = 0 in
          match (set, word land 0x7) with
          | true, 1 -> Some (Breq offset)
          | false, 1 -> Some (Brne offset)
          | true, 0 -> Some (Brcs offset)
          | false, 0 -> Some (Brcc offset)
          | true, 2 -> Some (Brmi offset)
          | false, 2 -> Some (Brpl offset)
          | true, 3 -> Some (Brvs offset)
          | false, 3 -> Some (Brvc offset)
          | true, 4 -> Some (Brlt offset)
          | false, 4 -> Some (Brge offset)
          | _ -> None
        end
        else None
    end

let target_to_string = function
  | Label l -> l
  | Rel k -> Printf.sprintf ".%+d" k

let to_string = function
  | Nop -> "NOP"
  | Mov (d, r) -> Printf.sprintf "MOV r%d, r%d" d r
  | Add (d, r) -> Printf.sprintf "ADD r%d, r%d" d r
  | Adc (d, r) -> Printf.sprintf "ADC r%d, r%d" d r
  | Sub (d, r) -> Printf.sprintf "SUB r%d, r%d" d r
  | Sbc (d, r) -> Printf.sprintf "SBC r%d, r%d" d r
  | And_ (d, r) -> Printf.sprintf "AND r%d, r%d" d r
  | Or_ (d, r) -> Printf.sprintf "OR r%d, r%d" d r
  | Eor (d, r) -> Printf.sprintf "EOR r%d, r%d" d r
  | Cp (d, r) -> Printf.sprintf "CP r%d, r%d" d r
  | Cpc (d, r) -> Printf.sprintf "CPC r%d, r%d" d r
  | Ldi (d, k) -> Printf.sprintf "LDI r%d, %d" d k
  | Subi (d, k) -> Printf.sprintf "SUBI r%d, %d" d k
  | Sbci (d, k) -> Printf.sprintf "SBCI r%d, %d" d k
  | Andi (d, k) -> Printf.sprintf "ANDI r%d, %d" d k
  | Ori (d, k) -> Printf.sprintf "ORI r%d, %d" d k
  | Cpi (d, k) -> Printf.sprintf "CPI r%d, %d" d k
  | Com d -> Printf.sprintf "COM r%d" d
  | Neg d -> Printf.sprintf "NEG r%d" d
  | Swap d -> Printf.sprintf "SWAP r%d" d
  | Inc d -> Printf.sprintf "INC r%d" d
  | Dec d -> Printf.sprintf "DEC r%d" d
  | Lsr d -> Printf.sprintf "LSR r%d" d
  | Ror d -> Printf.sprintf "ROR r%d" d
  | Asr d -> Printf.sprintf "ASR r%d" d
  | Ld_x d -> Printf.sprintf "LD r%d, X" d
  | Ld_x_inc d -> Printf.sprintf "LD r%d, X+" d
  | St_x r -> Printf.sprintf "ST X, r%d" r
  | St_x_inc r -> Printf.sprintf "ST X+, r%d" r
  | Adiw (rp, k) -> Printf.sprintf "ADIW r%d:%d, %d" (rp + 1) rp k
  | Sbiw (rp, k) -> Printf.sprintf "SBIW r%d:%d, %d" (rp + 1) rp k
  | In_ (d, a) -> Printf.sprintf "IN r%d, 0x%02X" d a
  | Out (a, r) -> Printf.sprintf "OUT 0x%02X, r%d" a r
  | Rjmp t -> Printf.sprintf "RJMP %s" (target_to_string t)
  | Breq t -> Printf.sprintf "BREQ %s" (target_to_string t)
  | Brne t -> Printf.sprintf "BRNE %s" (target_to_string t)
  | Brcs t -> Printf.sprintf "BRCS %s" (target_to_string t)
  | Brcc t -> Printf.sprintf "BRCC %s" (target_to_string t)
  | Brmi t -> Printf.sprintf "BRMI %s" (target_to_string t)
  | Brpl t -> Printf.sprintf "BRPL %s" (target_to_string t)
  | Brvs t -> Printf.sprintf "BRVS %s" (target_to_string t)
  | Brvc t -> Printf.sprintf "BRVC %s" (target_to_string t)
  | Brlt t -> Printf.sprintf "BRLT %s" (target_to_string t)
  | Brge t -> Printf.sprintf "BRGE %s" (target_to_string t)
