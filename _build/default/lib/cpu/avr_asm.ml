type item =
  | L of string
  | I of Avr_isa.t

let resolve_target labels address target =
  match target with
  | Avr_isa.Rel _ -> target
  | Avr_isa.Label name -> begin
    match Hashtbl.find_opt labels name with
    | Some dest -> Avr_isa.Rel (dest - (address + 1))
    | None -> invalid_arg (Printf.sprintf "Avr_asm: undefined label %s" name)
  end

let resolve labels address (insn : Avr_isa.t) : Avr_isa.t =
  let r = resolve_target labels address in
  match insn with
  | Avr_isa.Rjmp t -> Avr_isa.Rjmp (r t)
  | Avr_isa.Breq t -> Avr_isa.Breq (r t)
  | Avr_isa.Brne t -> Avr_isa.Brne (r t)
  | Avr_isa.Brcs t -> Avr_isa.Brcs (r t)
  | Avr_isa.Brcc t -> Avr_isa.Brcc (r t)
  | Avr_isa.Brmi t -> Avr_isa.Brmi (r t)
  | Avr_isa.Brpl t -> Avr_isa.Brpl (r t)
  | Avr_isa.Brvs t -> Avr_isa.Brvs (r t)
  | Avr_isa.Brvc t -> Avr_isa.Brvc (r t)
  | Avr_isa.Brlt t -> Avr_isa.Brlt (r t)
  | Avr_isa.Brge t -> Avr_isa.Brge (r t)
  | Avr_isa.Nop | Avr_isa.Mov _ | Avr_isa.Add _ | Avr_isa.Adc _ | Avr_isa.Sub _
  | Avr_isa.Sbc _ | Avr_isa.And_ _ | Avr_isa.Or_ _ | Avr_isa.Eor _ | Avr_isa.Cp _
  | Avr_isa.Cpc _ | Avr_isa.Ldi _ | Avr_isa.Subi _ | Avr_isa.Sbci _ | Avr_isa.Andi _
  | Avr_isa.Ori _ | Avr_isa.Cpi _ | Avr_isa.Com _ | Avr_isa.Neg _ | Avr_isa.Swap _
  | Avr_isa.Inc _ | Avr_isa.Dec _ | Avr_isa.Lsr _ | Avr_isa.Ror _ | Avr_isa.Asr _
  | Avr_isa.Ld_x _ | Avr_isa.Ld_x_inc _ | Avr_isa.St_x _ | Avr_isa.St_x_inc _
  | Avr_isa.Adiw _ | Avr_isa.Sbiw _ | Avr_isa.In_ _ | Avr_isa.Out _ -> insn

let assemble items =
  let labels = Hashtbl.create 16 in
  let address = ref 0 in
  List.iter
    (function
      | L name ->
        if Hashtbl.mem labels name then
          invalid_arg (Printf.sprintf "Avr_asm: duplicate label %s" name);
        Hashtbl.add labels name !address
      | I _ -> incr address)
    items;
  let words = ref [] in
  let address = ref 0 in
  List.iter
    (function
      | L _ -> ()
      | I insn ->
        words := Avr_isa.encode (resolve labels !address insn) :: !words;
        incr address)
    items;
  Array.of_list (List.rev !words)

let disassemble words =
  Array.to_list words
  |> List.map (fun word ->
         match Avr_isa.decode word with
         | Some insn -> Avr_isa.to_string insn
         | None -> Printf.sprintf ".word 0x%04X" word)
