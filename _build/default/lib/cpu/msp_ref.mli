(** ISA-level reference interpreter for the MSP430 subset (architectural
    golden model for the multi-cycle core; word-sized operations on a
    unified word-addressed memory). *)

type t = {
  mem : int array;  (** 16-bit words; program loaded from word 0 *)
  mutable pc : int;  (** byte address *)
  regs : int array;  (** r1 (SP), r4..r15 live here; r0/r2/r3 special *)
  mutable flag_c : bool;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mutable flag_v : bool;
  mutable halted : bool;  (** reached [JMP .] *)
  mutable steps : int;
}

val create : words:int -> program:int array -> t

val step : t -> unit
(** Execute one instruction (no-op once halted; unknown words skip). *)

val run : t -> max_steps:int -> unit

val read_reg : t -> int -> int
(** r0 = PC, r2 = SR bits (C,Z,N,V in bits 0..3), r3 = 0. *)
