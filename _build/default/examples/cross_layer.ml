(* Cross-layer fault injection (Section 6.3 of the paper).

   MATEs prune faults that die within one clock cycle — highly effective
   for microarchitectural state (instruction register, status flags, stage
   buffers) but nearly powerless for the general-purpose register file,
   where a fault typically lives until the register is overwritten. The
   paper therefore envisions combining HAFI at flip-flop level (with MATE
   pruning) for the microarchitecture with software-based fault injection
   at ISA level for the registers.

   This example quantifies both layers on the AVR running fib:
     1. flip-flop level: MATE coverage split by register-file vs. other
        flip-flops (reproducing the paper's observation);
     2. ISA level: a register-file campaign on the architectural reference
        model, where every register bit at every instruction boundary is
        reachable.

   Run with: dune exec examples/cross_layer.exe *)

module Netlist = Pruning_netlist.Netlist
module Fault_space = Pruning_fi.Fault_space
module Isa_fi = Pruning_fi.Isa_fi
module Intercycle = Pruning_fi.Intercycle
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Prng = Pruning_util.Prng
open Pruning_cpu

let () =
  let cycles = 2500 in
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in

  print_endline "=== layer 1: flip-flop level (HAFI + MATEs) ===";
  let trace = System.record (System.create_avr ~netlist:nl ~program "fib") ~cycles in
  let params = { Search.default_params with Search.max_candidates = 1000; max_situations = 10 } in
  let report = Search.search_flops ~params ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let triggers = Replay.triggers set trace in
  let show label space =
    Printf.printf "  %-28s %6d faults, MATEs prune %5.2f%%\n" label (Fault_space.size space)
      (Replay.reduction_percent set triggers ~space ())
  in
  show "all flip-flops:" (Fault_space.full nl ~cycles);
  show "register file only:"
    (let space = Fault_space.full nl ~cycles in
     {
       space with
       Fault_space.flops =
         Array.of_list (Netlist.flops_matching nl ~prefix:"rf_");
     });
  show "microarchitecture (w/o RF):" (Fault_space.without_prefix nl ~prefix:"rf_" ~cycles);
  print_endline
    "  -> intra-cycle masking concentrates outside the register file,\n\
    \     exactly the paper's Section 6.3 observation.";

  print_endline "\n=== layer 1b: inter-cycle equivalence (register file) ===";
  (* Register-file faults live long: consecutive cycles with no read and
     no write collapse into one equivalence class. *)
  let rf_sample = Array.of_list (Netlist.flops_matching nl ~prefix:"rf_1") in
  let horizon = 500 in
  let sys = System.create_avr ~netlist:nl ~program "fib-ic" in
  let classes = Intercycle.compute sys.System.sim ~flops:rf_sample ~cycles:horizon in
  Printf.printf
    "  %d register-file flops x %d cycles = %d faults collapse into %d classes (%.1fx)\n"
    (Array.length rf_sample) horizon (Intercycle.n_faults classes)
    classes.Intercycle.n_classes (Intercycle.reduction_factor classes);
  print_endline
    "  -> the long-lived register faults MATEs cannot touch are exactly\n\
    \     the ones inter-cycle equivalence collapses (paper, Section 7).";

  print_endline "\n=== layer 2: ISA level (software FI on the reference model) ===";
  let halting = Avr_asm.assemble Programs.avr_fib_halting in
  let max_steps = 400 in
  let rng = Prng.create 99 in
  let stats = Isa_fi.avr_campaign ~program:halting ~max_steps ~rng ~n:500 () in
  Printf.printf
    "  %d sampled register-bit flips at instruction boundaries:\n\
    \  %d benign (%.1f%%), %d latent, %d SDC\n"
    stats.Isa_fi.injections stats.Isa_fi.benign
    (100. *. float_of_int stats.Isa_fi.benign /. float_of_int stats.Isa_fi.injections)
    stats.Isa_fi.latent stats.Isa_fi.sdc;
  print_endline
    "  -> register faults are architecturally visible state: the ISA layer\n\
    \     classifies them with full controllability, completing the\n\
    \     cross-layer campaign the paper proposes."
