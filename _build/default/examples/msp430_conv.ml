(* MATE transferability on the MSP430 core (the cross-validation question
   of the paper's Tables 2/3): select the top-N MATEs on one program's
   trace and evaluate the fault-space reduction on the other program.

   Run with: dune exec examples/msp430_conv.exe  (add --quick) *)

module Netlist = Pruning_netlist.Netlist
module Fault_space = Pruning_fi.Fault_space
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Select = Pruning_mate.Select
module Cost = Pruning_mate.Cost
open Pruning_cpu

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let cycles = if quick then 2000 else 8500 in
  let params =
    if quick then { Search.default_params with Search.max_candidates = 500; max_situations = 6 }
    else Search.default_params
  in
  let nl = System.msp_netlist () in
  Printf.printf "MSP430 core: %d gates, %d flip-flops (multi-cycle FSM)\n%!"
    (Netlist.n_gates nl) (Netlist.n_flops nl);
  let record items name =
    let sys = System.create_msp ~netlist:nl ~program:(Msp_asm.assemble items) name in
    System.record sys ~cycles
  in
  let trace_fib = record Programs.msp_fib "msp/fib" in
  let trace_conv = record Programs.msp_conv "msp/conv" in
  Printf.printf "traces recorded: fib and conv, %d cycles each\n%!" cycles;
  let report =
    Search.search_flops ~params ~traces:[ trace_fib; trace_conv ] nl
      (Array.to_list nl.Netlist.flops)
  in
  let set = Mateset.of_report report in
  Printf.printf "MATE search: %.1fs, %d MATEs (%d distinct)\n%!" report.Search.runtime_s
    (Search.total_mates report) (Mateset.size set);
  let space = Fault_space.without_prefix nl ~prefix:"rf_" ~cycles in
  let triggers_fib = Replay.triggers set trace_fib in
  let triggers_conv = Replay.triggers set trace_conv in
  let reduction triggers subset = Replay.reduction_percent set triggers ~space ?subset () in
  Printf.printf "\nfault set: FF w/o RF (%d flops x %d cycles)\n"
    (Array.length space.Fault_space.flops) cycles;
  Printf.printf "complete set:          fib %5.2f%%   conv %5.2f%%\n"
    (reduction triggers_fib None) (reduction triggers_conv None);
  List.iter
    (fun n ->
      let sel_fib = Select.top (Select.rank set triggers_fib ~space) ~n in
      let sel_conv = Select.top (Select.rank set triggers_conv ~space) ~n in
      Printf.printf "top-%-3d sel. on fib:   fib %5.2f%%   conv %5.2f%%   (transfer)\n" n
        (reduction triggers_fib (Some sel_fib))
        (reduction triggers_conv (Some sel_fib));
      Printf.printf "top-%-3d sel. on conv:  fib %5.2f%%   conv %5.2f%%\n" n
        (reduction triggers_fib (Some sel_conv))
        (reduction triggers_conv (Some sel_conv));
      let summary = Cost.summarize set ~subset:sel_fib () in
      Printf.printf "        hardware cost of the fib selection: %d LUTs, %.1f inputs/MATE\n"
        summary.Cost.total_luts summary.Cost.avg_inputs)
    [ 10; 50 ]
