(* Quickstart: the paper's Figure 1 on five gates.

   Builds the example circuit, extracts the fault cone of wire d, runs the
   MATE search, and prints the per-cycle fault-space pruning picture —
   everything in Section 3 of the paper, reproduced end to end.

   Run with: dune exec examples/quickstart.exe *)

module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone
module Dot = Pruning_netlist.Dot
module Figure1 = Pruning_report.Figure1

let () =
  print_string (Figure1.render_figure1a ());
  print_newline ();
  print_string (Figure1.render_figure1b ());
  (* Also demonstrate the graphviz export with the cone highlighted. *)
  let nl = Figure1.combinational () in
  let cone = Cone.compute nl (Netlist.find_wire nl "d") in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "figure1a.dot" in
  Dot.to_file ~highlight_cone:cone nl path;
  Printf.printf "\ngraphviz rendering of the highlighted cone written to %s\n" path
