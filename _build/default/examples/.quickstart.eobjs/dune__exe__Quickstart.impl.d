examples/quickstart.ml: Filename Printf Pruning_netlist Pruning_report
