examples/avr_fib.mli:
