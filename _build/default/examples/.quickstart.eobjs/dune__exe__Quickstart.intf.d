examples/quickstart.mli:
