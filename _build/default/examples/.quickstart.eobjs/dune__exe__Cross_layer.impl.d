examples/cross_layer.ml: Array Avr_asm Printf Programs Pruning_cpu Pruning_fi Pruning_mate Pruning_netlist Pruning_util System
