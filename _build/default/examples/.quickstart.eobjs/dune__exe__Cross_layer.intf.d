examples/cross_layer.mli:
