examples/avr_fib.ml: Array Avr_asm List Printf Programs Pruning_cpu Pruning_fi Pruning_mate Pruning_netlist Pruning_sim Pruning_util Sys System
