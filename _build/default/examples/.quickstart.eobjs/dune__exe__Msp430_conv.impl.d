examples/msp430_conv.ml: Array List Msp_asm Printf Programs Pruning_cpu Pruning_fi Pruning_mate Pruning_netlist Sys System
