examples/hafi_campaign.mli:
