examples/msp430_conv.mli:
