(* End-to-end MATE flow on the AVR core running the Fibonacci program:

   1. assemble fib and simulate it on the gate-level core (recording the
      wire-level trace the paper obtains from netlist simulation);
   2. run the heuristic MATE search over all flip-flops;
   3. replay the trace, select the top-50 MATEs and report the fault-space
      reduction for both fault sets ("FF" and "FF w/o RF");
   4. validate a sample of pruned faults against the one-cycle masking
      oracle (every pruned fault must be provably benign).

   Run with: dune exec examples/avr_fib.exe  (add --quick for a short run) *)

module Netlist = Pruning_netlist.Netlist
module Sim = Pruning_sim.Sim
module Oracle = Pruning_fi.Oracle
module Fault_space = Pruning_fi.Fault_space
module Search = Pruning_mate.Search
module Term = Pruning_mate.Term
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Select = Pruning_mate.Select
module Prng = Pruning_util.Prng
open Pruning_cpu

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let cycles = if quick then 1500 else 8500 in
  let params =
    if quick then { Search.default_params with Search.max_candidates = 500; max_situations = 6 }
    else Search.default_params
  in
  let nl = System.avr_netlist () in
  Printf.printf "AVR core: %d gates, %d flip-flops\n%!" (Netlist.n_gates nl) (Netlist.n_flops nl);

  (* 1. trace *)
  let program = Avr_asm.assemble Programs.avr_fib in
  let sys = System.create_avr ~netlist:nl ~program "avr/fib" in
  let trace = System.record sys ~cycles in
  Printf.printf "recorded %d cycles of fib()\n%!" cycles;

  (* 2. search *)
  let report = Search.search_flops ~params ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops) in
  Printf.printf "MATE search: %.1fs, %d unmaskable wires, %d MATEs found\n%!"
    report.Search.runtime_s (Search.n_unmaskable report) (Search.total_mates report);
  let set = Mateset.of_report report in

  (* 3. replay, select, report *)
  let triggers = Replay.triggers set trace in
  let space_ff = Fault_space.full nl ~cycles in
  let space_norf = Fault_space.without_prefix nl ~prefix:"rf_" ~cycles in
  let show label space =
    let full = Replay.reduction_percent set triggers ~space () in
    let ranking = Select.rank set triggers ~space in
    let top50 = Select.top ranking ~n:50 in
    let top = Replay.reduction_percent set triggers ~space ~subset:top50 () in
    Printf.printf "%-12s complete set prunes %5.2f%%, top-50 MATEs prune %5.2f%%\n" label full top
  in
  show "FF:" space_ff;
  show "FF w/o RF:" space_norf;
  (let ranking = Select.rank set triggers ~space:space_ff in
   match Select.top ranking ~n:3 with
   | [] -> ()
   | best ->
     print_endline "highest-impact MATEs:";
     List.iter
       (fun i ->
         let m = set.Mateset.mates.(i) in
         Printf.printf "  %s  (masks %d flops)\n"
           (Term.to_string nl m.Mateset.term)
           (List.length m.Mateset.flop_ids))
       best);

  (* 4. oracle validation on a sample *)
  let matrix = Replay.masked set triggers ~space:space_ff () in
  let pruned = ref [] in
  Array.iteri
    (fun cycle row ->
      Array.iteri (fun fi masked -> if masked then pruned := (cycle, fi) :: !pruned) row)
    matrix;
  let rng = Prng.create 1 in
  let sample =
    Prng.shuffle rng !pruned
    |> List.filteri (fun i _ -> i < 50)
    |> List.sort compare (* ascending cycles: one progressive simulation *)
  in
  let sys2 = System.create_avr ~netlist:nl ~program "avr/fib-oracle" in
  let at_cycle = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun (cycle, fi) ->
      System.run sys2 ~cycles:(cycle - !at_cycle);
      at_cycle := cycle;
      Sim.eval sys2.System.sim;
      incr checked;
      let flop = space_ff.Fault_space.flops.(fi) in
      if not (Oracle.one_cycle_benign sys2.System.sim ~flop_id:flop.Netlist.flop_id) then begin
        Printf.printf "SOUNDNESS VIOLATION at (%s, %d)!\n" flop.Netlist.flop_name cycle;
        exit 1
      end)
    sample;
  Printf.printf "oracle cross-check: %d sampled pruned faults, all provably benign\n" !checked
