open Helpers
module Collapse = Pruning_netlist.Collapse

let sa0 w = { Collapse.wire = w; Collapse.polarity = Collapse.Stuck_at_0 }
let sa1 w = { Collapse.wire = w; Collapse.polarity = Collapse.Stuck_at_1 }

(* A fanout-free chain: in -> INV -> AND2(with in2) -> out. *)
let chain_netlist () =
  let b = Netlist.Builder.create "chain" in
  let wire = Netlist.Builder.add_wire b in
  let i1 = wire "i1" and i2 = wire "i2" in
  let m = wire "m" in
  let o = wire "o" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| i1 |] m;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| m; i2 |] o;
  Netlist.Builder.add_input_port b "i1" [| i1 |];
  Netlist.Builder.add_input_port b "i2" [| i2 |];
  Netlist.Builder.add_output_port b "o" [| o |];
  Netlist.Builder.finalize b

let test_chain_equivalences () =
  let nl = chain_netlist () in
  let t = Collapse.compute nl in
  let w = Netlist.find_wire nl in
  (* AND: input s-a-0 == output s-a-0 (both inputs are single-observer) *)
  check_bool "m sa0 == o sa0" true (Collapse.equivalent t (sa0 (w "m")) (sa0 (w "o")));
  check_bool "i2 sa0 == o sa0" true (Collapse.equivalent t (sa0 (w "i2")) (sa0 (w "o")));
  (* INV: i1 sa1 == m sa0, which chains into o sa0 *)
  check_bool "i1 sa1 == o sa0" true (Collapse.equivalent t (sa1 (w "i1")) (sa0 (w "o")));
  check_bool "i1 sa0 == m sa1" true (Collapse.equivalent t (sa0 (w "i1")) (sa1 (w "m")));
  (* Non-equivalences *)
  check_bool "i2 sa1 distinct" false (Collapse.equivalent t (sa1 (w "i2")) (sa1 (w "o")));
  check_bool "polarities distinct" false (Collapse.equivalent t (sa0 (w "o")) (sa1 (w "o")))

let test_fanout_blocks_collapsing () =
  (* When the AND input also feeds a second gate, the input fault is no
     longer equivalent to the output fault. *)
  let b = Netlist.Builder.create "fanout" in
  let wire = Netlist.Builder.add_wire b in
  let i1 = wire "i1" and i2 = wire "i2" in
  let o1 = wire "o1" and o2 = wire "o2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| i1; i2 |] o1;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.BUF) [| i1 |] o2;
  Netlist.Builder.add_input_port b "i1" [| i1 |];
  Netlist.Builder.add_input_port b "i2" [| i2 |];
  Netlist.Builder.add_output_port b "o1" [| o1 |];
  Netlist.Builder.add_output_port b "o2" [| o2 |];
  let nl = Netlist.Builder.finalize b in
  let t = Collapse.compute nl in
  let w = Netlist.find_wire nl in
  check_bool "fanout stem not collapsed" false
    (Collapse.equivalent t (sa0 (w "i1")) (sa0 (w "o1")));
  check_bool "single-observer input still collapses" true
    (Collapse.equivalent t (sa0 (w "i2")) (sa0 (w "o1")))

let test_xor_no_rules () =
  let nl = figure1_netlist () in
  let t = Collapse.compute nl in
  let w = Netlist.find_wire nl in
  (* XOR gate B contributes no equivalences for c/d. *)
  check_bool "xor input not collapsed" false (Collapse.equivalent t (sa0 (w "c")) (sa0 (w "g")));
  (* But the NAND gate A does: a sa0 == f sa1. *)
  check_bool "nand rule" true (Collapse.equivalent t (sa0 (w "a")) (sa1 (w "f")))

let test_counts_and_ratio () =
  let nl = chain_netlist () in
  let t = Collapse.compute nl in
  check_int "total faults" 8 (Collapse.n_faults t);
  (* classes: {m0,i2_0,o0,i1_1}, {i1_0,m1}, {i2_1}, {o1} = 4 *)
  check_int "classes" 4 (Collapse.n_classes t);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Collapse.collapse_ratio t);
  let big = List.hd (Collapse.classes t) in
  check_int "largest class" 4 (List.length big)

let test_representative_idempotent () =
  let nl = counter_netlist () in
  let t = Collapse.compute nl in
  for w = 0 to Netlist.n_wires nl - 1 do
    List.iter
      (fun f ->
        let r = Collapse.representative t f in
        check_bool "rep of rep" true (Collapse.representative t r = r);
        check_bool "f ~ rep f" true (Collapse.equivalent t f r))
      [ sa0 w; sa1 w ]
  done

let test_cores_collapse_meaningfully () =
  (* The cores are mux/xor-heavy with high fanout, so net-level stuck-at
     collapsing removes only a few percent — but it must remove some and
     never merge across polarities of the same primary output. *)
  let nl = Pruning_cpu.System.avr_netlist () in
  let t = Collapse.compute nl in
  check_bool "collapses something" true (Collapse.n_classes t < Collapse.n_faults t);
  check_bool "ratio sane" true (Collapse.collapse_ratio t > 0.5 && Collapse.collapse_ratio t < 1.);
  let out = (Netlist.find_output_port nl "pmem_addr").Netlist.port_wires.(0) in
  check_bool "polarity split" false (Collapse.equivalent t (sa0 out) (sa1 out))

let suite =
  [
    Alcotest.test_case "chain equivalences" `Quick test_chain_equivalences;
    Alcotest.test_case "fanout blocks collapsing" `Quick test_fanout_blocks_collapsing;
    Alcotest.test_case "xor has no rules" `Quick test_xor_no_rules;
    Alcotest.test_case "counts and ratio" `Quick test_counts_and_ratio;
    Alcotest.test_case "representative idempotent" `Quick test_representative_idempotent;
    Alcotest.test_case "core collapse ratio" `Quick test_cores_collapse_meaningfully;
  ]
