open Helpers

(* ------------------------------------------------------------------ *)
(* Reference semantics for randomized equivalence checking: a small
   expression AST evaluated both through the DSL->synthesis->simulator
   pipeline and directly over integers. *)

type expr =
  | X of int
  | Konst of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mux of expr * expr * expr  (* select by LSB of first *)
  | Eq of expr * expr  (* 0/1 result, zero-extended *)
  | Lt of expr * expr

let w = 6
let mask = (1 lsl w) - 1

let rec eval_int env = function
  | X i -> env.(i)
  | Konst k -> k land mask
  | Not e -> lnot (eval_int env e) land mask
  | And (a, b) -> eval_int env a land eval_int env b
  | Or (a, b) -> eval_int env a lor eval_int env b
  | Xor (a, b) -> eval_int env a lxor eval_int env b
  | Add (a, b) -> (eval_int env a + eval_int env b) land mask
  | Sub (a, b) -> (eval_int env a - eval_int env b) land mask
  | Mux (s, a, b) -> if eval_int env s land 1 = 1 then eval_int env a else eval_int env b
  | Eq (a, b) -> if eval_int env a = eval_int env b then 1 else 0
  | Lt (a, b) -> if eval_int env a < eval_int env b then 1 else 0

let rec build c inputs = function
  | X i -> inputs.(i)
  | Konst k -> Signal.const c ~width:w (k land mask)
  | Not e -> Signal.( ~: ) (build c inputs e)
  | And (a, b) -> Signal.( &: ) (build c inputs a) (build c inputs b)
  | Or (a, b) -> Signal.( |: ) (build c inputs a) (build c inputs b)
  | Xor (a, b) -> Signal.( ^: ) (build c inputs a) (build c inputs b)
  | Add (a, b) -> Signal.( +: ) (build c inputs a) (build c inputs b)
  | Sub (a, b) -> Signal.( -: ) (build c inputs a) (build c inputs b)
  | Mux (s, a, b) ->
    Signal.mux2 (Signal.bit (build c inputs s) 0) (build c inputs a) (build c inputs b)
  | Eq (a, b) -> Signal.uresize (Signal.( ==: ) (build c inputs a) (build c inputs b)) w
  | Lt (a, b) -> Signal.uresize (Signal.( <: ) (build c inputs a) (build c inputs b)) w

let rec random_expr rng depth =
  if depth = 0 then if Prng.bool rng then X (Prng.int rng 3) else Konst (Prng.int rng (mask + 1))
  else
    let sub () = random_expr rng (depth - 1) in
    match Prng.int rng 10 with
    | 0 -> Not (sub ())
    | 1 -> And (sub (), sub ())
    | 2 -> Or (sub (), sub ())
    | 3 -> Xor (sub (), sub ())
    | 4 -> Add (sub (), sub ())
    | 5 -> Sub (sub (), sub ())
    | 6 -> Mux (sub (), sub (), sub ())
    | 7 -> Eq (sub (), sub ())
    | 8 -> Lt (sub (), sub ())
    | _ -> X (Prng.int rng 3)

let check_expr_equivalence expr vectors =
  let c = Signal.create_circuit "expr" in
  let inputs = Array.init 3 (fun i -> Signal.input c (Printf.sprintf "x%d" i) w) in
  Signal.output c "y" (build c inputs expr);
  let nl = Synth.to_netlist c in
  let sim = Sim.create nl in
  List.iter
    (fun env ->
      Array.iteri (fun i v -> Sim.set_port sim (Printf.sprintf "x%d" i) v) env;
      Sim.eval sim;
      let got = Sim.get_port sim "y" in
      let expected = eval_int env expr land mask in
      if got <> expected then
        Alcotest.failf "expr mismatch: got %d, expected %d (inputs %d %d %d)" got expected
          env.(0) env.(1) env.(2))
    vectors

let test_random_expressions () =
  let rng = Prng.create 42 in
  for _ = 1 to 60 do
    let expr = random_expr rng 4 in
    let vectors = List.init 20 (fun _ -> Array.init 3 (fun _ -> Prng.int rng (mask + 1))) in
    check_expr_equivalence expr vectors
  done

(* ------------------------------------------------------------------ *)
(* Directed tests *)

let test_constant_folding () =
  let c = Signal.create_circuit "fold" in
  let x = Signal.input c "x" 4 in
  let zero = Signal.const c ~width:4 0 in
  let ones = Signal.const c ~width:4 15 in
  (* All of these should fold to constants or pass-throughs: no gates. *)
  Signal.output c "and0" (Signal.( &: ) x zero);
  Signal.output c "or1" (Signal.( |: ) x ones);
  Signal.output c "xorx" (Signal.( ^: ) x x);
  Signal.output c "passthrough" (Signal.( &: ) x ones);
  let nl = Synth.to_netlist c in
  (* Only TIE cells remain. *)
  List.iter
    (fun (kind, _) ->
      if kind <> Cell.TIEL && kind <> Cell.TIEH then
        Alcotest.failf "unexpected gate kind %s" (Cell.kind_to_string kind))
    (Netlist.cell_histogram nl);
  let sim = Sim.create nl in
  Sim.set_port sim "x" 11;
  Sim.eval sim;
  check_int "and0" 0 (Sim.get_port sim "and0");
  check_int "or1" 15 (Sim.get_port sim "or1");
  check_int "xorx" 0 (Sim.get_port sim "xorx");
  check_int "passthrough" 11 (Sim.get_port sim "passthrough")

let test_hash_consing_shares () =
  let c = Signal.create_circuit "share" in
  let x = Signal.input c "x" 8 in
  let y = Signal.input c "y" 8 in
  let a = Signal.( &: ) x y in
  let b = Signal.( &: ) x y in
  Signal.output c "o1" a;
  Signal.output c "o2" b;
  let nl = Synth.to_netlist c in
  check_int "only 8 AND gates" 8 (Netlist.n_gates nl)

let test_nand_fusion () =
  let c = Signal.create_circuit "fuse" in
  let x = Signal.input c "x" 1 in
  let y = Signal.input c "y" 1 in
  Signal.output c "nand" (Signal.( ~: ) (Signal.( &: ) x y));
  let nl = Synth.to_netlist c in
  check_int "one gate" 1 (Netlist.n_gates nl);
  Alcotest.(check (list (pair string int)))
    "fused to NAND2"
    [ ("NAND2", 1) ]
    (List.map (fun (k, n) -> (Cell.kind_to_string k, n)) (Netlist.cell_histogram nl))

let test_no_fusion_with_fanout () =
  (* When the AND output is used elsewhere too, the fusion must not fire. *)
  let c = Signal.create_circuit "nofuse" in
  let x = Signal.input c "x" 1 in
  let y = Signal.input c "y" 1 in
  let a = Signal.( &: ) x y in
  Signal.output c "nand" (Signal.( ~: ) a);
  Signal.output c "and" a;
  let nl = Synth.to_netlist c in
  let hist = List.map (fun (k, n) -> (Cell.kind_to_string k, n)) (Netlist.cell_histogram nl) in
  check_int "two gates" 2 (Netlist.n_gates nl);
  check_bool "has AND2" true (List.mem_assoc "AND2" hist);
  check_bool "has INV" true (List.mem_assoc "INV" hist)

let test_adder_carry () =
  let c = Signal.create_circuit "adder" in
  let x = Signal.input c "x" 4 in
  let y = Signal.input c "y" 4 in
  let cin = Signal.input c "cin" 1 in
  let sum, cout = Signal.add_carry x y ~cin in
  Signal.output c "sum" sum;
  Signal.output c "cout" cout;
  let nl = Synth.to_netlist c in
  let sim = Sim.create nl in
  for x_v = 0 to 15 do
    for y_v = 0 to 15 do
      for c_v = 0 to 1 do
        Sim.set_port sim "x" x_v;
        Sim.set_port sim "y" y_v;
        Sim.set_port sim "cin" c_v;
        Sim.eval sim;
        let total = x_v + y_v + c_v in
        check_int "sum" (total land 15) (Sim.get_port sim "sum");
        check_int "cout" (total lsr 4) (Sim.get_port sim "cout")
      done
    done
  done

let test_sub_borrow () =
  let c = Signal.create_circuit "sub" in
  let x = Signal.input c "x" 4 in
  let y = Signal.input c "y" 4 in
  let diff, borrow = Signal.sub_borrow x y ~bin:(Signal.gnd c) in
  Signal.output c "diff" diff;
  Signal.output c "borrow" borrow;
  let sim = Sim.create (Synth.to_netlist c) in
  for x_v = 0 to 15 do
    for y_v = 0 to 15 do
      Sim.set_port sim "x" x_v;
      Sim.set_port sim "y" y_v;
      Sim.eval sim;
      check_int "diff" ((x_v - y_v) land 15) (Sim.get_port sim "diff");
      check_int "borrow" (if x_v < y_v then 1 else 0) (Sim.get_port sim "borrow")
    done
  done

let test_mux_tree () =
  let c = Signal.create_circuit "muxtree" in
  let sel = Signal.input c "sel" 3 in
  let cases = List.init 5 (fun i -> Signal.const c ~width:8 (10 * (i + 1))) in
  Signal.output c "y" (Signal.mux sel cases);
  let sim = Sim.create (Synth.to_netlist c) in
  List.iteri
    (fun i expected ->
      Sim.set_port sim "sel" i;
      Sim.eval sim;
      check_int (Printf.sprintf "case %d" i) expected (Sim.get_port sim "y"))
    [ 10; 20; 30; 40; 50 ];
  (* Out-of-range selects replicate the last case. *)
  Sim.set_port sim "sel" 7;
  Sim.eval sim;
  check_int "padded case" 50 (Sim.get_port sim "y")

let test_register_counter () =
  let nl = counter_netlist () in
  check_int "four flops" 4 (Netlist.n_flops nl);
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  for i = 0 to 20 do
    Sim.eval sim;
    check_int (Printf.sprintf "count at %d" i) (i land 15) (Sim.get_port sim "count_o");
    let expected_wrap = if i land 15 = 15 then 1 else 0 in
    check_int "wrap" expected_wrap (Sim.get_port sim "wrap");
    Sim.latch sim
  done;
  (* Disable holds the value. *)
  Sim.set_port sim "enable" 0;
  let held = ref (-1) in
  Sim.eval sim;
  held := Sim.get_port sim "count_o";
  for _ = 1 to 5 do
    Sim.latch sim;
    Sim.eval sim;
    check_int "held" !held (Sim.get_port sim "count_o")
  done

let test_register_init () =
  let open Signal in
  let c = create_circuit "init" in
  let r = reg c ~init:9 "r" 4 in
  connect r (q r);
  output c "o" (q r);
  let sim = Sim.create (Synth.to_netlist c) in
  Sim.eval sim;
  check_int "init value" 9 (Sim.get_port sim "o")

let test_unconnected_register_rejected () =
  let open Signal in
  let c = create_circuit "dangling" in
  let r = reg c "r" 2 in
  output c "o" (q r);
  Alcotest.check_raises "unconnected" (Invalid_argument "Synth: register r never connected")
    (fun () -> ignore (Synth.to_netlist c))

let test_width_mismatch_rejected () =
  let open Signal in
  let c = create_circuit "bad" in
  let x = input c "x" 4 in
  let y = input c "y" 5 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Signal.(&:): width mismatch (4 vs 5)") (fun () ->
      ignore (( &: ) x y))

let test_resize_and_slice () =
  let open Signal in
  let c = create_circuit "slice" in
  let x = input c "x" 8 in
  output c "hi" (select x ~hi:7 ~lo:4);
  output c "lo" (select x ~hi:3 ~lo:0);
  output c "ext" (uresize (select x ~hi:3 ~lo:0) 8);
  output c "sext" (sresize (select x ~hi:3 ~lo:0) 8);
  output c "cat" (cat (select x ~hi:3 ~lo:0) (select x ~hi:7 ~lo:4));
  output c "sll" (sll x 3);
  output c "srl" (srl x 3);
  let sim = Sim.create (Synth.to_netlist c) in
  Sim.set_port sim "x" 0xAC;
  Sim.eval sim;
  check_int "hi nibble" 0xA (Sim.get_port sim "hi");
  check_int "lo nibble" 0xC (Sim.get_port sim "lo");
  check_int "zero extend" 0x0C (Sim.get_port sim "ext");
  check_int "sign extend" 0xFC (Sim.get_port sim "sext");
  check_int "swapped" 0xCA (Sim.get_port sim "cat");
  check_int "sll" 0x60 (Sim.get_port sim "sll");
  check_int "srl" 0x15 (Sim.get_port sim "srl")

let test_reductions () =
  let open Signal in
  let c = create_circuit "reduce" in
  let x = input c "x" 5 in
  output c "any" (reduce_or x);
  output c "all" (reduce_and x);
  output c "parity" (reduce_xor x);
  output c "zero" (is_zero x);
  let sim = Sim.create (Synth.to_netlist c) in
  let cases = [ (0, 0, 0, 0, 1); (31, 1, 1, 1, 0); (5, 1, 0, 0, 0); (7, 1, 0, 1, 0) ] in
  List.iter
    (fun (v, any, all, parity, zero) ->
      Sim.set_port sim "x" v;
      Sim.eval sim;
      check_int "any" any (Sim.get_port sim "any");
      check_int "all" all (Sim.get_port sim "all");
      check_int "parity" parity (Sim.get_port sim "parity");
      check_int "zero" zero (Sim.get_port sim "zero"))
    cases

let suite =
  [
    Alcotest.test_case "random expression equivalence" `Quick test_random_expressions;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "hash consing shares" `Quick test_hash_consing_shares;
    Alcotest.test_case "nand fusion" `Quick test_nand_fusion;
    Alcotest.test_case "no fusion with fanout" `Quick test_no_fusion_with_fanout;
    Alcotest.test_case "adder exhaustive" `Quick test_adder_carry;
    Alcotest.test_case "subtractor exhaustive" `Quick test_sub_borrow;
    Alcotest.test_case "mux tree" `Quick test_mux_tree;
    Alcotest.test_case "register counter" `Quick test_register_counter;
    Alcotest.test_case "register init" `Quick test_register_init;
    Alcotest.test_case "unconnected register rejected" `Quick test_unconnected_register_rejected;
    Alcotest.test_case "width mismatch rejected" `Quick test_width_mismatch_rejected;
    Alcotest.test_case "resize and slice" `Quick test_resize_and_slice;
    Alcotest.test_case "reductions" `Quick test_reductions;
  ]
