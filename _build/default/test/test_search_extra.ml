open Helpers
module Search = Pruning_mate.Search
module Term = Pruning_mate.Term
module Oracle = Pruning_fi.Oracle

(* Extra search-level properties: trace-seeded generation, literal
   pinning through the support logic, restrict, and soundness of seeded
   MATEs on sequential circuits driven by real stimuli. *)

(* A circuit with derived support logic: out = (en1 & en2) ? a : b, all
   registered; en = en1 & en2 is a support gate between the literal wires
   and the cone. *)
let gated_netlist () =
  let open Signal in
  let c = create_circuit "gated" in
  let a_in = input c "a_in" 1 in
  let b_in = input c "b_in" 1 in
  let e1_in = input c "e1_in" 1 in
  let e2_in = input c "e2_in" 1 in
  let a = reg c "a" 1 in
  let b = reg c "b" 1 in
  let e1 = reg c "e1" 1 in
  let e2 = reg c "e2" 1 in
  connect a a_in;
  connect b b_in;
  connect e1 e1_in;
  connect e2 e2_in;
  output c "out" (mux2 (q e1 &: q e2) (q a) (q b));
  Synth.to_netlist c

let record_gated stimulus =
  let nl = gated_netlist () in
  let sim = Sim.create nl in
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  List.iter
    (fun (a, b, e1, e2) ->
      Sim.set_port sim "a_in" a;
      Sim.set_port sim "b_in" b;
      Sim.set_port sim "e1_in" e1;
      Sim.set_port sim "e2_in" e2;
      Sim.step sim ~trace ())
    stimulus;
  (nl, trace)

let test_seeded_search_finds_mates () =
  (* With e1=e2=1 the mux selects a, so faults in b are benign; the trace
     contains such cycles and seeding must find a MATE for b that holds
     there. *)
  let stimulus =
    [ (1, 0, 1, 1); (0, 1, 1, 1); (1, 1, 0, 1); (0, 0, 1, 0); (1, 0, 1, 1) ]
  in
  let nl, trace = record_gated stimulus in
  let b_flop = Netlist.find_flop nl "b[0]" in
  let result =
    Search.search_wire ~traces:[ trace ] nl Search.default_params b_flop.Netlist.q
  in
  match result.Search.outcome with
  | Search.Unmaskable -> Alcotest.fail "b is maskable when deselected"
  | Search.Mates mates ->
    check_bool "found mates" true (mates <> []);
    (* At least one mate holds in a cycle where e1 & e2 were both 1
       (cycles 1 and 2 carry state loaded from rows 0 and 1). *)
    let holds_somewhere t =
      List.exists
        (fun cycle -> Term.holds t (fun w -> Trace.get trace ~cycle w))
        [ 1; 2 ]
    in
    check_bool "a seeded mate triggers on the trace" true (List.exists holds_somewhere mates)

let test_seeded_soundness_against_oracle () =
  (* Every seeded MATE that holds in some cycle of a fresh run must agree
     with the one-cycle oracle. *)
  let rng = Prng.create 99 in
  let stimulus =
    List.init 24 (fun _ -> (Prng.int rng 2, Prng.int rng 2, Prng.int rng 2, Prng.int rng 2))
  in
  let nl, trace = record_gated stimulus in
  let report =
    Search.search_flops ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops)
  in
  let sim = Sim.create nl in
  List.iter
    (fun (a, b, e1, e2) ->
      Sim.set_port sim "a_in" a;
      Sim.set_port sim "b_in" b;
      Sim.set_port sim "e1_in" e1;
      Sim.set_port sim "e2_in" e2;
      Sim.eval sim;
      List.iter
        (fun (fr : Search.flop_result) ->
          match fr.Search.result.Search.outcome with
          | Search.Unmaskable -> ()
          | Search.Mates mates ->
            List.iter
              (fun term ->
                if Term.holds term (fun w -> Sim.peek sim w) then
                  check_bool
                    (Printf.sprintf "%s sound" fr.Search.flop.Netlist.flop_name)
                    true
                    (Oracle.one_cycle_benign sim ~flop_id:fr.Search.flop.Netlist.flop_id))
              mates)
        report.Search.flop_results;
      Sim.latch sim)
    stimulus

let test_seeded_soundness_random_netlists () =
  (* Random netlists driven by random stimuli: seeded + structural MATEs
     must all satisfy the oracle. Reuses the generator from Test_mate. *)
  let rng = Prng.create 31337 in
  for index = 1 to 25 do
    let nl = Test_mate.random_netlist rng index in
    let input_wires =
      List.concat_map (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
        nl.Netlist.inputs
    in
    let sim = Sim.create nl in
    let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
    let stimulus =
      List.init 25 (fun _ -> List.map (fun w -> (w, Prng.bool rng)) input_wires)
    in
    List.iter
      (fun values ->
        List.iter (fun (w, v) -> Sim.set_input sim w v) values;
        Sim.step sim ~trace ())
      stimulus;
    let report = Search.search_flops ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops) in
    let sim2 = Sim.create nl in
    List.iter
      (fun values ->
        List.iter (fun (w, v) -> Sim.set_input sim2 w v) values;
        Sim.eval sim2;
        List.iter
          (fun (fr : Search.flop_result) ->
            match fr.Search.result.Search.outcome with
            | Search.Unmaskable -> ()
            | Search.Mates mates ->
              List.iter
                (fun term ->
                  if Term.holds term (fun w -> Sim.peek sim2 w) then
                    if
                      not
                        (Oracle.one_cycle_benign sim2 ~flop_id:fr.Search.flop.Netlist.flop_id)
                    then
                      Alcotest.failf "netlist %d: unsound seeded MATE %s for %s" index
                        (Term.to_string nl term) fr.Search.flop.Netlist.flop_name)
                mates)
          report.Search.flop_results;
        Sim.latch sim2)
      stimulus
  done

let test_restrict () =
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let restricted =
    Search.restrict report (fun f -> f.Netlist.flop_name <> "e")
  in
  check_int "one fewer wire" (Search.n_faulty_wires report - 1)
    (Search.n_faulty_wires restricted);
  check_int "e was the unmaskable one" 0 (Search.n_unmaskable restricted);
  check_bool "runtime non-negative" true (restricted.Search.runtime_s >= 0.)

let test_literal_pinning_through_support () =
  (* The select of the gated mux is en = e1 & e2 (a support gate). A MATE
     using literals on e1 and e2 relies on constant propagation; a MATE
     with a literal directly on en must not be clobbered by the support
     update of its driver. Both must validate for faults in b. *)
  let stimulus = [ (1, 0, 1, 1); (1, 0, 1, 1) ] in
  let nl, trace = record_gated stimulus in
  ignore trace;
  let b_flop = Netlist.find_flop nl "b[0]" in
  let result = Search.search_wire nl Search.default_params b_flop.Netlist.q in
  match result.Search.outcome with
  | Search.Unmaskable -> Alcotest.fail "maskable"
  | Search.Mates mates ->
    (* Structural search alone must find a select-based mate. *)
    check_bool "structural mates exist" true (mates <> [])

let suite =
  [
    Alcotest.test_case "seeding finds trace mates" `Quick test_seeded_search_finds_mates;
    Alcotest.test_case "seeded mates sound (gated)" `Quick test_seeded_soundness_against_oracle;
    Alcotest.test_case "seeded mates sound (random)" `Slow test_seeded_soundness_random_netlists;
    Alcotest.test_case "report restrict" `Quick test_restrict;
    Alcotest.test_case "literal pinning" `Quick test_literal_pinning_through_support;
  ]
