open Helpers
module Search = Pruning_mate.Search
module Term = Pruning_mate.Term
module Oracle = Pruning_fi.Oracle
module Isa_fi = Pruning_fi.Isa_fi
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs

(* ------------------------------------------------------------------ *)
(* Section 6.2: 2-bit faults                                            *)

let test_pair_cone () =
  let nl = figure1_netlist () in
  let w = Netlist.find_wire nl in
  let cone = Cone.compute_multi nl [ w "c"; w "d" ] in
  (* Joint cone of c and d: both inputs of the XOR. *)
  List.iter (fun n -> check_bool ("in: " ^ n) true (Cone.member cone (w n))) [ "c"; "d"; "g"; "k"; "l" ];
  check_bool "f is border" true (List.mem (w "f") cone.Cone.border);
  check_bool "c not border" false (List.mem (w "c") cone.Cone.border)

let test_pair_search_figure1 () =
  let nl = figure1_netlist () in
  let w = Netlist.find_wire nl in
  let result = Search.search_pair nl Search.default_params (w "c") (w "d") in
  match result.Search.outcome with
  | Search.Unmaskable -> Alcotest.fail "pair (c,d) should be maskable"
  | Search.Mates mates ->
    (* The same border MATE (!f & h) cuts both propagation trees. *)
    let f = w "f" and h = w "h" in
    check_bool "contains (!f & h)" true
      (List.exists
         (fun t ->
           List.map (fun (l : Term.literal) -> (l.Term.wire, l.Term.value)) (Term.literals t)
           = [ (f, false); (h, true) ])
         mates)

let test_pair_oracle_exhaustive () =
  (* Every pair MATE on the sequential figure-1 circuit must satisfy the
     2-bit oracle in every state where it holds. *)
  let nl = figure1_seq_netlist () in
  let flops = nl.Netlist.flops in
  let sim = Sim.create nl in
  let input_wires =
    List.concat_map (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires) nl.Netlist.inputs
  in
  let n = Array.length flops in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let result =
        Search.search_pair nl Search.default_params flops.(a).Netlist.q flops.(b).Netlist.q
      in
      match result.Search.outcome with
      | Search.Unmaskable -> ()
      | Search.Mates mates ->
        for pattern = 0 to (1 lsl n) - 1 do
          Array.iteri
            (fun i (f : Netlist.flop) ->
              Sim.set_flop sim f.Netlist.flop_id (pattern land (1 lsl i) <> 0))
            flops;
          List.iter (fun w -> Sim.set_input sim w false) input_wires;
          Sim.eval sim;
          List.iter
            (fun term ->
              if Term.holds term (fun w -> Sim.peek sim w) then
                check_bool
                  (Printf.sprintf "pair (%s,%s) sound at %d" flops.(a).Netlist.flop_name
                     flops.(b).Netlist.flop_name pattern)
                  true
                  (Oracle.pair_benign sim ~flop_a:flops.(a).Netlist.flop_id
                     ~flop_b:flops.(b).Netlist.flop_id))
            mates
        done
    done
  done

let test_pair_soundness_random () =
  let rng = Prng.create 777444 in
  for index = 1 to 12 do
    let nl = Test_mate.random_netlist rng index in
    let flops = nl.Netlist.flops in
    if Array.length flops >= 2 then begin
      let a = flops.(0) and b = flops.(Array.length flops - 1) in
      let result = Search.search_pair nl Search.default_params a.Netlist.q b.Netlist.q in
      match result.Search.outcome with
      | Search.Unmaskable -> ()
      | Search.Mates mates ->
        let sim = Sim.create nl in
        let input_wires =
          List.concat_map
            (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
            nl.Netlist.inputs
        in
        for _ = 1 to 30 do
          List.iter (fun w -> Sim.set_input sim w (Prng.bool rng)) input_wires;
          Sim.eval sim;
          List.iter
            (fun term ->
              if Term.holds term (fun w -> Sim.peek sim w) then
                check_bool "pair mate sound" true
                  (Oracle.pair_benign sim ~flop_a:a.Netlist.flop_id ~flop_b:b.Netlist.flop_id))
            mates;
          Sim.latch sim
        done
    end
  done

(* ------------------------------------------------------------------ *)
(* Section 6.2: upsets held over several cycles                          *)

let test_sustained_counter_effective () =
  (* A counter bit forced wrong over any window is never benign. *)
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~cycles:3 ();
  Sim.eval sim;
  check_bool "sustained counter fault effective" false
    (Oracle.sustained_benign sim ~flop_id:0 ~hold:3)

let test_sustained_restores_state () =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~cycles:5 ();
  Sim.eval sim;
  let before = Sim.get_port sim "count_o" in
  let cycle_before = Sim.cycle sim in
  ignore (Oracle.sustained_benign sim ~flop_id:2 ~hold:4);
  Sim.eval sim;
  check_int "value restored" before (Sim.get_port sim "count_o");
  check_int "cycle restored" cycle_before (Sim.cycle sim)

let test_sustained_matches_mate_window () =
  (* Paper 6.2: a MATE holding through a whole window proves a sustained
     upset benign. The gated mux keeps register b deselected as long as
     e1 & e2 stay high, so b's select-MATE holds for every cycle of the
     window and a multi-cycle upset in b is benign. *)
  let open Signal in
  let c = create_circuit "gated2" in
  let a_in = input c "a_in" 1 in
  let b_in = input c "b_in" 1 in
  let e1_in = input c "e1_in" 1 in
  let e2_in = input c "e2_in" 1 in
  let a = reg c "a" 1 in
  let b = reg c "b" 1 in
  let e1 = reg c "e1" 1 in
  let e2 = reg c "e2" 1 in
  connect a a_in;
  connect b b_in;
  connect e1 e1_in;
  connect e2 e2_in;
  output c "out" (mux2 (q e1 &: q e2) (q a) (q b));
  let nl = Synth.to_netlist c in
  let b_flop = Netlist.find_flop nl "b[0]" in
  let result = Search.search_wire nl Search.default_params b_flop.Netlist.q in
  let mates =
    match result.Search.outcome with
    | Search.Mates m -> m
    | Search.Unmaskable -> Alcotest.fail "b maskable"
  in
  let sim = Sim.create nl in
  Sim.set_port sim "a_in" 1;
  Sim.set_port sim "b_in" 0;
  Sim.set_port sim "e1_in" 1;
  Sim.set_port sim "e2_in" 1;
  Sim.run sim ~cycles:2 ();
  Sim.eval sim;
  (* The select MATE holds now and, with constant inputs, forever. *)
  check_bool "a mate holds" true
    (List.exists (fun t -> Term.holds t (fun w -> Sim.peek sim w)) mates);
  check_bool "3-cycle upset in b benign" true
    (Oracle.sustained_benign sim ~flop_id:b_flop.Netlist.flop_id ~hold:3);
  (* Deselect: the same upset becomes effective. *)
  Sim.set_port sim "e1_in" 0;
  Sim.run sim ~cycles:2 ();
  Sim.eval sim;
  check_bool "upset effective when selected" false
    (Oracle.sustained_benign sim ~flop_id:b_flop.Netlist.flop_id ~hold:3)

(* ------------------------------------------------------------------ *)
(* Section 6.3: ISA-level injection                                      *)

let fib_program = Avr_asm.assemble Programs.avr_fib_halting

let test_isa_benign_overwrite () =
  (* r16 is loaded by the first instruction, so a pre-existing flip in it
     is architecturally benign. *)
  let v = Isa_fi.avr_inject ~program:fib_program ~max_steps:2000 { Isa_fi.reg = 16; bit = 3; at_step = 0 } in
  check_bool "overwritten flip benign" true (v = Isa_fi.Benign)

let test_isa_sdc_in_loop () =
  (* Flipping the accumulator mid-loop corrupts the stored sequence. *)
  let v = Isa_fi.avr_inject ~program:fib_program ~max_steps:2000 { Isa_fi.reg = 16; bit = 0; at_step = 40 } in
  check_bool "accumulator flip is SDC" true (v = Isa_fi.Sdc)

let test_isa_latent_unused_register () =
  (* r5 is never touched by fib: the flip survives to the horizon but
     never becomes visible. *)
  let v = Isa_fi.avr_inject ~program:fib_program ~max_steps:2000 { Isa_fi.reg = 5; bit = 7; at_step = 10 } in
  check_bool "unused register flip latent" true (v = Isa_fi.Latent)

let test_isa_campaign_stats () =
  let rng = Prng.create 11 in
  let stats = Isa_fi.avr_campaign ~program:fib_program ~max_steps:1200 ~rng ~n:60 () in
  check_int "all ran" 60 stats.Isa_fi.injections;
  check_int "partition" 60 (stats.Isa_fi.benign + stats.Isa_fi.latent + stats.Isa_fi.sdc);
  (* fib touches only a few registers: most random flips are latent *)
  check_bool "latent dominates" true (stats.Isa_fi.latent > stats.Isa_fi.sdc);
  (* restricting to an unused register: everything latent *)
  let stats5 = Isa_fi.avr_campaign ~program:fib_program ~max_steps:1200 ~rng ~n:20 ~regs:[ 5 ] () in
  check_int "unused register all latent" 20 stats5.Isa_fi.latent

let test_isa_invalid_args () =
  Alcotest.check_raises "bad reg" (Invalid_argument "Isa_fi: register out of range") (fun () ->
      ignore (Isa_fi.avr_inject ~program:fib_program ~max_steps:10 { Isa_fi.reg = 32; bit = 0; at_step = 0 }));
  Alcotest.check_raises "bad bit" (Invalid_argument "Isa_fi: bit out of range") (fun () ->
      ignore (Isa_fi.avr_inject ~program:fib_program ~max_steps:10 { Isa_fi.reg = 0; bit = 8; at_step = 0 }))

let suite =
  [
    Alcotest.test_case "pair cone" `Quick test_pair_cone;
    Alcotest.test_case "pair search (fig1 c+d)" `Quick test_pair_search_figure1;
    Alcotest.test_case "pair oracle exhaustive" `Quick test_pair_oracle_exhaustive;
    Alcotest.test_case "pair soundness random" `Slow test_pair_soundness_random;
    Alcotest.test_case "sustained: counter effective" `Quick test_sustained_counter_effective;
    Alcotest.test_case "sustained: state restored" `Quick test_sustained_restores_state;
    Alcotest.test_case "sustained: MATE window benign" `Slow test_sustained_matches_mate_window;
    Alcotest.test_case "isa: benign overwrite" `Quick test_isa_benign_overwrite;
    Alcotest.test_case "isa: SDC in loop" `Quick test_isa_sdc_in_loop;
    Alcotest.test_case "isa: latent unused reg" `Quick test_isa_latent_unused_register;
    Alcotest.test_case "isa: campaign stats" `Quick test_isa_campaign_stats;
    Alcotest.test_case "isa: invalid args" `Quick test_isa_invalid_args;
  ]
