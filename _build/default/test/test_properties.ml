(* Property-based tests (QCheck, registered as alcotest cases).

   These complement the hand-rolled randomized tests with shrinking
   generators over the core data structures: terms, traces, statistics,
   gate-masking semantics, VCD round-trips. *)

open Helpers
module Term = Pruning_mate.Term
module Stats = Pruning_util.Stats
module Vcd = Pruning_vcd.Vcd

let literal_gen = QCheck2.Gen.(pair (int_range 0 15) bool)
let literals_gen = QCheck2.Gen.(list_size (int_range 0 8) literal_gen)

let prop_term_normalization =
  QCheck2.Test.make ~name:"term: of_literals normalizes" ~count:500 literals_gen (fun pairs ->
      match Term.of_literals pairs with
      | None ->
        (* Contradiction: some wire appears with both polarities. *)
        List.exists (fun (w, v) -> List.mem (w, not v) pairs) pairs
      | Some t ->
        let ls = Term.literals t in
        (* sorted strictly by wire *)
        let rec sorted = function
          | (a : Term.literal) :: (b : Term.literal) :: rest ->
            a.Term.wire < b.Term.wire && sorted (b :: rest)
          | [ _ ] | [] -> true
        in
        sorted ls
        (* and faithful: every input literal is represented *)
        && List.for_all
             (fun (w, v) ->
               List.exists (fun (l : Term.literal) -> l.Term.wire = w && l.Term.value = v) ls)
             pairs)

let prop_term_conjoin_holds =
  QCheck2.Test.make ~name:"term: conjoin = intersection of models" ~count:500
    QCheck2.Gen.(pair literals_gen literals_gen)
    (fun (p1, p2) ->
      match (Term.of_literals p1, Term.of_literals p2) with
      | Some t1, Some t2 -> begin
        (* evaluate under a specific valuation derived from p1+p2 *)
        let valuation w = List.assoc_opt w (p1 @ p2) = Some true in
        match Term.conjoin t1 t2 with
        | Some t -> Term.holds t valuation = (Term.holds t1 valuation && Term.holds t2 valuation)
        | None ->
          (* contradictory: there is a wire with both polarities across them *)
          List.exists
            (fun (l : Term.literal) ->
              List.exists
                (fun (m : Term.literal) -> l.Term.wire = m.Term.wire && l.Term.value <> m.Term.value)
                (Term.literals t2))
            (Term.literals t1)
      end
      | _ -> QCheck2.assume_fail ())

let prop_term_conjoin_commutative =
  QCheck2.Test.make ~name:"term: conjoin commutative" ~count:300
    QCheck2.Gen.(pair literals_gen literals_gen)
    (fun (p1, p2) ->
      match (Term.of_literals p1, Term.of_literals p2) with
      | Some t1, Some t2 -> begin
        match (Term.conjoin t1 t2, Term.conjoin t2 t1) with
        | Some a, Some b -> Term.equal a b
        | None, None -> true
        | _ -> false
      end
      | _ -> QCheck2.assume_fail ())

let prop_stats_mean_bounds =
  QCheck2.Test.make ~name:"stats: min <= mean <= max" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_stats_median_is_member_or_midpoint =
  QCheck2.Test.make ~name:"stats: median within range" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.median xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"trace: append/get roundtrip" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 70) (int_range 1 20) >>= fun (w, c) ->
      list_repeat c (list_repeat w bool) >|= fun rows -> (w, rows))
    (fun (w, rows) ->
      let t = Trace.create ~n_wires:w in
      List.iter (fun row -> Trace.append t (Array.of_list row)) rows;
      Trace.n_cycles t = List.length rows
      && List.for_all2
           (fun cycle row ->
             List.for_all2 (fun wire v -> Trace.get t ~cycle wire = v) (List.init w Fun.id) row)
           (List.init (List.length rows) Fun.id)
           rows)

let prop_gm_terms_mask =
  (* For random cells and faulty sets: every returned masking term indeed
     masks (checked by the independent [Gm.masks] definition). *)
  QCheck2.Test.make ~name:"gm: returned terms mask" ~count:300
    QCheck2.Gen.(
      oneofl (List.filter (fun (c : Cell.t) -> c.Cell.arity > 0) Cell.all) >>= fun cell ->
      int_range 0 (cell.Cell.arity - 1) >>= fun pin ->
      int_range 0 (cell.Cell.arity - 1) >|= fun pin2 -> (cell, List.sort_uniq compare [ pin; pin2 ]))
    (fun (cell, faulty) ->
      let terms = Gm.masking_terms cell ~faulty in
      List.for_all (fun t -> Gm.masks cell ~faulty t) terms)

let prop_prng_int_bounds =
  QCheck2.Test.make ~name:"prng: int stays in bounds" ~count:200
    QCheck2.Gen.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.int rng bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_vcd_roundtrip =
  QCheck2.Test.make ~name:"vcd: random counter traces roundtrip" ~count:25
    QCheck2.Gen.(int_range 1 40)
    (fun cycles ->
      let nl = counter_netlist () in
      let sim = Sim.create nl in
      Sim.set_port sim "enable" 1;
      let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
      Sim.run sim ~trace ~cycles ();
      let back = Vcd.reorder (Vcd.parse (Vcd.to_string nl trace)) nl in
      Trace.n_cycles back = cycles
      && List.for_all
           (fun cycle ->
             List.for_all
               (fun w -> Trace.get trace ~cycle w = Trace.get back ~cycle w)
               (List.init (Netlist.n_wires nl) Fun.id))
           (List.init cycles Fun.id))

let prop_shuffle_permutation =
  QCheck2.Test.make ~name:"prng: shuffle is a permutation" ~count:200
    QCheck2.Gen.(pair int (list_size (int_range 0 50) int))
    (fun (seed, xs) ->
      let rng = Prng.create seed in
      List.sort compare (Prng.shuffle rng xs) = List.sort compare xs)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_term_normalization;
      prop_term_conjoin_holds;
      prop_term_conjoin_commutative;
      prop_stats_mean_bounds;
      prop_stats_median_is_member_or_midpoint;
      prop_trace_roundtrip;
      prop_gm_terms_mask;
      prop_prng_int_bounds;
      prop_vcd_roundtrip;
      prop_shuffle_permutation;
    ]
